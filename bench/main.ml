(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI) at the scale selected by MRSL_SCALE
   (smoke | default | full), runs a Bechamel micro-benchmark per
   artifact measuring its computational kernel, and emits a
   machine-readable BENCH_1.json (micro wall times, work-stealing
   scheduler speedups, memo hit rates, telemetry snapshot) that the CI
   regression gate (ci/bench_gate.exe) consumes.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table2 fig11 -- selected artifacts
     dune exec bench/main.exe -- micro        -- micro-benchmarks only

   MRSL_BENCH_OUT overrides the JSON output path (default BENCH_1.json). *)

module Json = Mrsl.Telemetry.Json

let scale = Experiments.Scale.current ()

let seed =
  match Sys.getenv_opt "MRSL_SEED" with
  | Some s -> ( try int_of_string s with Failure _ -> 2011)
  | None -> 2011

let bench_out =
  match Sys.getenv_opt "MRSL_BENCH_OUT" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_1.json"

(* MRSL_TRACE_OUT=trace.json records the whole bench run under a Trace
   sink and writes Chrome trace-event JSON (Perfetto-loadable) on exit;
   the CI trace pass validates the artifact with ci/trace_check.exe. *)
let trace_out =
  match Sys.getenv_opt "MRSL_TRACE_OUT" with
  | Some p when p <> "" -> Some p
  | _ -> None

(* The quality artifact (ci/quality_gate.exe compares it against
   bench/baseline/QUALITY_1.json). MRSL_QUALITY_OUT overrides the path;
   MRSL_QUALITY_INJECT=overconfident (or a float temperature > 1)
   injects a deterministic calibration regression into the shadow-eval
   scoring — the CI negative test — without touching any probability a
   run actually serves. *)
let quality_out =
  match Sys.getenv_opt "MRSL_QUALITY_OUT" with
  | Some p when p <> "" -> p
  | _ -> "QUALITY_1.json"

let quality_inject =
  match Sys.getenv_opt "MRSL_QUALITY_INJECT" with
  | None | Some "" -> None
  | Some "overconfident" -> Some 4.0
  | Some s -> float_of_string_opt s

(* Accumulators for the JSON report, filled as sections run. *)
let micro_rows : (string * float) list ref = ref []
let section_rows : (string * float) list ref = ref []
let parallel_block : Json.t option ref = ref None
let cache_block : Json.t option ref = ref None
let serve_block : Json.t option ref = ref None
let chaos_block : Json.t option ref = ref None
let resources_block : Json.t option ref = ref None
let kernel_block : Json.t option ref = ref None

let section title body = Printf.printf "\n=== %s ===\n%s%!" title body

let timed_section id title f =
  let rng = Prob.Rng.create (seed + Hashtbl.hash id) in
  let t0 = Unix.gettimeofday () in
  let body = f rng in
  section title body;
  let dt = Unix.gettimeofday () -. t0 in
  section_rows := (id, dt) :: !section_rows;
  Printf.printf "[%s completed in %.1fs at scale=%s]\n%!" id dt
    scale.Experiments.Scale.name

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per paper artifact,
   exercising the computational kernel that artifact measures. *)

type fixture = {
  network : Bayesnet.Network.t;
  points : int array array;
  model : Mrsl.Model.t;
  masked_tuples : Relation.Tuple.t array;  (** one missing value each *)
  multi_tuple : Relation.Tuple.t;  (** two missing values *)
  workload : Relation.Tuple.t list;
  cards : int array;
}

let micro_fixture () =
  let rng = Prob.Rng.create seed in
  let entry = Bayesnet.Catalog.find "BN8" in
  let network = Bayesnet.Network.generate rng entry.topology in
  let train = Bayesnet.Network.sample_instance rng network 2000 in
  let points = Relation.Instance.complete_part train in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
      train
  in
  let masked_tuples =
    Relation.Instance.tuples
      (Relation.Instance.mask_exact rng ~missing:1
         (Bayesnet.Network.sample_instance rng network 64))
  in
  let multi_tuple =
    let t = Relation.Tuple.of_point (Bayesnet.Network.sample_point rng network) in
    t.(1) <- None;
    t.(3) <- None;
    t
  in
  let workload =
    Array.to_list
      (Relation.Instance.tuples
         (Relation.Instance.mask_uniform rng ~max_missing:3
            (Bayesnet.Network.sample_instance rng network 32)))
  in
  {
    network;
    points;
    model;
    masked_tuples;
    multi_tuple;
    workload;
    cards = Bayesnet.Topology.cardinalities entry.topology;
  }

let infer_batch ?method_ fx () =
  Array.iter
    (fun tup ->
      match Relation.Tuple.missing tup with
      | a :: _ -> ignore (Mrsl.Infer_single.infer ?method_ fx.model tup a)
      | [] -> ())
    fx.masked_tuples

let micro_tests fx =
  let open Bechamel in
  let schema = Mrsl.Model.schema fx.model in
  [
    (* Table I: catalog/topology construction and depth computation. *)
    Test.make ~name:"table1/catalog-depth"
      (Staged.stage (fun () ->
           List.iter
             (fun (e : Bayesnet.Catalog.entry) ->
               ignore (Bayesnet.Topology.depth e.topology))
             Bayesnet.Catalog.all));
    (* Fig 4: Apriori mining and full model learning. *)
    Test.make ~name:"fig4/apriori-mine"
      (Staged.stage (fun () ->
           ignore
             (Mining.Apriori.mine
                ~config:{ threshold = 0.02; max_itemsets = 1000 }
                ~cards:fx.cards fx.points)));
    Test.make ~name:"fig4/model-learn"
      (Staged.stage (fun () ->
           ignore
             (Mrsl.Model.learn_points
                ~params:
                  { Mrsl.Model.default_params with support_threshold = 0.02 }
                schema fx.points)));
    (* Table II / Fig 5: single-attribute inference under two methods. *)
    Test.make ~name:"table2/infer-best-averaged"
      (Staged.stage (infer_batch ~method_:Mrsl.Voting.best_averaged fx));
    Test.make ~name:"fig5/infer-all-weighted"
      (Staged.stage (infer_batch ~method_:Mrsl.Voting.all_weighted fx));
    (* Fig 6: lattice matching, the support-sensitive kernel. *)
    Test.make ~name:"fig6/lattice-matching"
      (Staged.stage (fun () ->
           Array.iter
             (fun tup ->
               match Relation.Tuple.missing tup with
               | a :: _ ->
                   ignore (Mrsl.Lattice.matching (Mrsl.Model.lattice fx.model a) tup)
               | [] -> ())
             fx.masked_tuples));
    (* Fig 8: the exact-posterior reference computation. *)
    Test.make ~name:"fig8/exact-posterior"
      (Staged.stage (fun () ->
           Array.iter
             (fun tup ->
               if not (Relation.Tuple.is_complete tup) then
                 ignore (Bayesnet.Network.posterior_joint fx.network tup))
             fx.masked_tuples));
    (* Fig 9: batched default-method inference. *)
    Test.make ~name:"fig9/inference-batch" (Staged.stage (infer_batch fx));
    (* Fig 10: one Gibbs run over a 2-missing tuple. *)
    Test.make ~name:"fig10/gibbs-run"
      (Staged.stage
         (let sampler = Mrsl.Gibbs.sampler fx.model in
          fun () ->
            ignore
              (Mrsl.Gibbs.run
                 ~config:{ burn_in = 20; samples = 100 }
                 (Prob.Rng.create 7) sampler fx.multi_tuple)));
    (* Fig 11: the two workload strategies. *)
    Test.make ~name:"fig11/workload-tuple-at-a-time"
      (Staged.stage
         (let sampler = Mrsl.Gibbs.sampler fx.model in
          fun () ->
            ignore
              (Mrsl.Workload.run
                 ~config:{ burn_in = 10; samples = 50 }
                 ~strategy:Mrsl.Workload.Tuple_at_a_time (Prob.Rng.create 7)
                 sampler fx.workload)));
    Test.make ~name:"fig11/workload-tuple-dag"
      (Staged.stage
         (let sampler = Mrsl.Gibbs.sampler fx.model in
          fun () ->
            ignore
              (Mrsl.Workload.run
                 ~config:{ burn_in = 10; samples = 50 }
                 ~strategy:Mrsl.Workload.Tuple_dag (Prob.Rng.create 7) sampler
                 fx.workload)));
    (* Ablations: tuple-DAG construction. *)
    Test.make ~name:"ablation/tuple-dag-build"
      (Staged.stage (fun () -> ignore (Mrsl.Tuple_dag.build fx.workload)));
    (* Baselines: BN structure learning and the DN fit. *)
    Test.make ~name:"baselines/bn-structure-fit"
      (Staged.stage (fun () ->
           ignore (Bayesnet.Structure_learn.fit ~cards:fx.cards fx.points)));
    Test.make ~name:"baselines/independent-product"
      (Staged.stage (fun () ->
           ignore
             (Baselines.Independent_product.infer_joint fx.model fx.multi_tuple)));
    (* Missingness: masking pass. *)
    Test.make ~name:"missingness/mcar-mask"
      (Staged.stage
         (let inst =
            Relation.Instance.of_points
              (Mrsl.Model.schema fx.model)
              (Array.to_list fx.points)
          in
          fun () ->
            ignore
              (Relation.Missingness.mask (Prob.Rng.create 3)
                 (Relation.Missingness.Mcar 0.1) inst)));
    (* Query layer: top-k worlds over a derived database. *)
    Test.make ~name:"query/top-k-worlds"
      (Staged.stage
         (let db =
            Probdb.Pdb.derive
              ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 50 }
              (Prob.Rng.create 5) fx.model
              (Relation.Instance.make
                 (Mrsl.Model.schema fx.model)
                 (Array.to_list
                    (Array.sub fx.masked_tuples 0 8)))
          in
          fun () -> ignore (Probdb.Pdb.top_k_worlds db 20)));
  ]

(* Fig 11 tuple-DAG workload under the work-stealing scheduler at several
   domain counts, plus the seed's static-partition fork/join as the
   reference it replaced. Emitted into BENCH_1.json: wall time, sweep
   counts, shared-sample counts, memo hit rates, and speedups. *)
let run_parallel_bench fx =
  let samples = 50 and burn_in = 10 in
  let workload = fx.workload in
  let tuples = List.length workload in
  let hit_rate telemetry =
    match Mrsl.Telemetry.histogram telemetry "gibbs.memo_hit_rate" with
    | Some s when s.Mrsl.Telemetry.count > 0 -> s.Mrsl.Telemetry.mean
    | _ -> 0.
  in
  let runs =
    List.map
      (fun domains ->
        let telemetry = Mrsl.Telemetry.create () in
        (* Double-accounting guard: the per-run registry is fresh, but
           the domain pool — and the per-domain DLS sampler caches in it
           — persists across sections. Record both facts: a [pool.reused]
           marker event when warm domains are reused, and whether this
           run's counters really start from zero (the gate fails the run
           otherwise). *)
        let pool_alive = Mrsl.Domain_pool.size (Mrsl.Domain_pool.get ()) in
        if pool_alive > 0 then
          Mrsl.Trace.instant ~cat:"sched"
            ~args:
              [
                ("domains_alive", Mrsl.Trace.Int pool_alive);
                ("run_domains", Mrsl.Trace.Int domains);
              ]
            "pool.reused";
        let counters_start_zero =
          Mrsl.Telemetry.counter telemetry "parallel.steals" = 0
          && Mrsl.Telemetry.counter telemetry "parallel.tasks" = 0
          && Mrsl.Telemetry.counter telemetry "parallel.sweeps" = 0
        in
        let stats =
          Experiments.Framework.parallel_workload_stats ~telemetry ~domains
            ~seed fx.model ~samples ~burn_in workload
        in
        ( domains, stats, hit_rate telemetry,
          Mrsl.Telemetry.counter telemetry "parallel.steals",
          Mrsl.Telemetry.counter telemetry "parallel.tasks",
          counters_start_zero, pool_alive ))
      [ 1; 2; 4 ]
  in
  let wall_of d =
    let _, s, _, _, _, _, _ =
      List.find (fun (d', _, _, _, _, _, _) -> d' = d) runs
    in
    s.Mrsl.Workload.wall_seconds
  in
  (* The seed's static partition at 4 domains, chunks run back-to-back:
     total work, the honest single-core comparison (and an upper bound on
     its multicore wall). *)
  let static =
    Experiments.Framework.static_partition_stats ~domains:4 ~seed fx.model
      ~samples ~burn_in workload
  in
  let speedup denom num = if num > 0. then denom /. num else Float.nan in
  let run_json
      (domains, (s : Mrsl.Workload.stats), rate, steals, tasks, zero, pool) =
    Json.Obj
      [
        ("domains", Json.Int domains);
        ("wall_seconds", Json.Float s.wall_seconds);
        ("sweeps", Json.Int s.sweeps);
        ("recorded", Json.Int s.recorded);
        ("shared", Json.Int s.shared);
        ("memo_hit_rate", Json.Float rate);
        ("steals", Json.Int steals);
        ("tasks", Json.Int tasks);
        ("counters_start_zero", Json.Bool zero);
        ("pool_domains_alive", Json.Int pool);
        ("speedup_vs_domains1", Json.Float (speedup (wall_of 1) s.wall_seconds));
      ]
  in
  let block =
    Json.Obj
      [
        ("workload_tuples", Json.Int tuples);
        ("samples_per_tuple", Json.Int samples);
        ("burn_in", Json.Int burn_in);
        ("runs", Json.List (List.map run_json runs));
        ( "static_partition_domains4",
          Json.Obj
            [
              ("wall_seconds", Json.Float static.wall_seconds);
              ("sweeps", Json.Int static.sweeps);
              ("shared", Json.Int static.shared);
            ] );
        ( "workstealing_domains4_speedup_vs_static",
          Json.Float (speedup static.wall_seconds (wall_of 4)) );
      ]
  in
  parallel_block := Some block;
  let rows =
    List.map
      (fun (domains, (s : Mrsl.Workload.stats), rate, steals, _, _, _) ->
        Experiments.Report.
          [
            S (Printf.sprintf "work-stealing domains:%d" domains);
            F s.wall_seconds; I s.sweeps; I s.shared; P rate; I steals;
          ])
      runs
    @ [
        Experiments.Report.
          [
            S "static partition domains:4 (seed)"; F static.wall_seconds;
            I static.sweeps; I static.shared; P 0.; I 0;
          ];
      ]
  in
  section "parallel"
    (Experiments.Report.render
       ~title:
         (Printf.sprintf
            "Fig 11 workload (%d tuples) under the work-stealing scheduler"
            tuples)
       ~header:[ "configuration"; "wall (s)"; "sweeps"; "shared"; "memo hit"; "steals" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Resource baseline (ROADMAP item 2's measured starting line):
   allocation per kernel run for the two gated micros, GC collection
   counts, peak heap, per-domain utilization from a pooled run, and the
   posterior cache's accounted-vs-reachable byte cross-check. Runs with
   a Resource monitor installed — but outside the Bechamel timing loop,
   so the gated ns/run numbers are unaffected. *)

let run_resources fx =
  let mon = Mrsl.Resource.create () in
  Mrsl.Resource.install mon;
  Fun.protect ~finally:(fun () -> ignore (Mrsl.Resource.uninstall ()))
  @@ fun () ->
  let reps = 10 in
  let measure name f =
    (* One warm run hoists lattice/sampler setup and memo fills out of
       the measurement, then a major collection settles the heap. *)
    f ();
    Gc.full_major ();
    let s0 = Gc.quick_stat () in
    let a0 = Gc.allocated_bytes () in
    for _ = 1 to reps do
      f ()
    done;
    let a1 = Gc.allocated_bytes () in
    let s1 = Gc.quick_stat () in
    let alloc = (a1 -. a0) /. float_of_int reps in
    ( name,
      alloc,
      Json.Obj
        [
          ("name", Json.String name);
          ("alloc_bytes_per_run", Json.Float alloc);
          ( "minor_collections_per_run",
            Json.Float
              (float_of_int (s1.Gc.minor_collections - s0.Gc.minor_collections)
              /. float_of_int reps) );
          ( "major_collections",
            Json.Int (s1.Gc.major_collections - s0.Gc.major_collections) );
        ] )
  in
  let gibbs_kernel =
    let sampler = Mrsl.Gibbs.sampler fx.model in
    fun () ->
      ignore
        (Mrsl.Gibbs.run
           ~config:{ burn_in = 20; samples = 100 }
           (Prob.Rng.create 7) sampler fx.multi_tuple)
  in
  let measured =
    [
      measure "mrsl/table2/infer-best-averaged"
        (infer_batch ~method_:Mrsl.Voting.best_averaged fx);
      measure "mrsl/fig10/gibbs-run" gibbs_kernel;
    ]
  in
  (* Per-domain utilization from a saturating pooled run. *)
  let _ =
    Mrsl.Parallel.run
      ~config:{ burn_in = 20; samples = 200 }
      ~domains:4 ~seed fx.model fx.workload
  in
  let util = Mrsl.Resource.utilization () in
  (* Cache accounted-vs-reachable cross-check over the micro workload.
     The empty-cache footprint (shard array, empty hashtables, LRU
     sentinels) is measured first and subtracted, so the ratio compares
     the budget's per-entry cost model against what entries actually
     cost on the heap — accounted/growth < 1 means under-counting. *)
  let cache = Mrsl.Posterior_cache.create ~max_bytes:(8 * 1024 * 1024) () in
  let reachable_empty = Mrsl.Posterior_cache.reachable_bytes cache in
  Array.iter
    (fun tup ->
      match Relation.Tuple.missing tup with
      | a :: _ -> ignore (Mrsl.Infer_single.infer ~cache fx.model tup a)
      | [] -> ())
    fx.masked_tuples;
  let cs = Mrsl.Posterior_cache.stats cache in
  let reachable = Mrsl.Posterior_cache.reachable_bytes cache in
  let growth = max 0 (reachable - reachable_empty) in
  let ratio =
    if growth = 0 then 1.
    else float_of_int cs.Mrsl.Posterior_cache.bytes /. float_of_int growth
  in
  (* A forced major + sample guarantees the gc.* counters land in the
     global telemetry snapshot the gate's --require-counter reads. *)
  Gc.full_major ();
  Mrsl.Resource.sample mon;
  let s = Gc.quick_stat () in
  resources_block :=
    Some
      (Json.Obj
         [
           ("rows", Json.List (List.map (fun (_, _, j) -> j) measured));
           ( "gc",
             Json.Obj
               [
                 ("minor_collections", Json.Int s.Gc.minor_collections);
                 ("major_collections", Json.Int s.Gc.major_collections);
                 ("compactions", Json.Int s.Gc.compactions);
                 ("heap_bytes", Json.Int (s.Gc.heap_words * 8));
                 ("top_heap_bytes", Json.Int (s.Gc.top_heap_words * 8));
               ] );
           ( "domains",
             Json.List
               (List.map
                  (fun (d, u) ->
                    Json.Obj
                      [
                        ("domain", Json.Int d); ("utilization", Json.Float u);
                      ])
                  util) );
           ( "cache",
             Json.Obj
               [
                 ("accounted_bytes", Json.Int cs.Mrsl.Posterior_cache.bytes);
                 ("reachable_bytes", Json.Int reachable);
                 ("reachable_growth_bytes", Json.Int growth);
                 ("accounted_per_growth", Json.Float ratio);
               ] );
         ]);
  let body =
    Experiments.Report.render ~title:"Resource baseline (alloc bytes/run)"
      ~header:[ "kernel"; "alloc bytes/run" ]
      (List.map
         (fun (name, alloc, _) -> Experiments.Report.[ S name; F alloc ])
         measured)
    ^ Printf.sprintf
        "peak heap %.1f MiB; cache accounted %d vs reachable growth %d \
         bytes (x%.2f); utilization %s\n"
        (float_of_int (s.Gc.top_heap_words * 8) /. 1048576.)
        cs.Mrsl.Posterior_cache.bytes growth ratio
        (String.concat " "
           (List.map (fun (d, u) -> Printf.sprintf "%d=%.2f" d u) util))
  in
  section "resources" body

(* ------------------------------------------------------------------ *)
(* Compiled-kernel comparison (ROADMAP item 2): the two gated micros
   timed interpreted vs compiled in the same process, with allocation
   per run, plus the bit-identity cross-check the gate requires before
   it will accept any speedup number. Manual timing (not Bechamel):
   each mode needs the global kernel switch held across its whole
   timing loop. *)

let run_kernel () =
  let fx = micro_fixture () in
  let with_kernel b f =
    let prev = Mrsl.Kernel.enabled () in
    Mrsl.Kernel.set_enabled b;
    Fun.protect ~finally:(fun () -> Mrsl.Kernel.set_enabled prev) f
  in
  let time_alloc f =
    (* One warm run hoists kernel compilation and lattice setup out of
       the measurement; rep count adapts so each loop runs ~0.3s. *)
    f ();
    let t0 = Unix.gettimeofday () in
    f ();
    let once = Unix.gettimeofday () -. t0 in
    let reps = max 5 (min 200 (int_of_float (0.3 /. Float.max 1e-6 once))) in
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let a1 = Gc.allocated_bytes () in
    (dt /. float_of_int reps *. 1e9, (a1 -. a0) /. float_of_int reps)
  in
  let gibbs_config = { Mrsl.Gibbs.burn_in = 20; samples = 100 } in
  let gibbs_run () =
    (* A fresh unmemoized sampler per run: every sweep pays the full
       voting cost, which is exactly what the kernel compiles away —
       a shared memo would hide both paths behind hash probes. *)
    let sampler = Mrsl.Gibbs.sampler ~memoize:false fx.model in
    ignore
      (Mrsl.Gibbs.run ~config:gibbs_config (Prob.Rng.create 7) sampler
         fx.multi_tuple)
  in
  let measure name f =
    let i_ns, i_alloc = with_kernel false (fun () -> time_alloc f) in
    let c_ns, c_alloc = with_kernel true (fun () -> time_alloc f) in
    let speedup = if c_ns > 0. then i_ns /. c_ns else 0. in
    (name, i_ns, c_ns, speedup, i_alloc, c_alloc)
  in
  let rows =
    [
      measure "mrsl/table2/infer-best-averaged"
        (infer_batch ~method_:Mrsl.Voting.best_averaged fx);
      measure "mrsl/fig10/gibbs-run" gibbs_run;
    ]
  in
  (* Bit-identity: every masked tuple under all four methods, and a
     fixed-seed Gibbs joint — compiled must equal interpreted exactly. *)
  let posterior b method_ tup a =
    with_kernel b (fun () ->
        Array.copy
          (Mrsl.Infer_single.infer ~method_ fx.model tup a :> float array))
  in
  let voting_identical =
    Array.for_all
      (fun tup ->
        match Relation.Tuple.missing tup with
        | a :: _ ->
            List.for_all
              (fun m -> posterior false m tup a = posterior true m tup a)
              Mrsl.Voting.all_methods
        | [] -> true)
      fx.masked_tuples
  in
  let gibbs_joint b =
    with_kernel b (fun () ->
        let sampler = Mrsl.Gibbs.sampler ~memoize:false fx.model in
        Array.copy
          ((Mrsl.Gibbs.run ~config:gibbs_config (Prob.Rng.create 7) sampler
              fx.multi_tuple)
             .joint
            :> float array))
  in
  let bit_identical = voting_identical && gibbs_joint false = gibbs_joint true in
  kernel_block :=
    Some
      (Json.Obj
         [
           ( "rows",
             Json.List
               (List.map
                  (fun (name, i_ns, c_ns, speedup, i_alloc, c_alloc) ->
                    Json.Obj
                      [
                        ("name", Json.String name);
                        ("interpreted_ns_per_run", Json.Float i_ns);
                        ("compiled_ns_per_run", Json.Float c_ns);
                        ("speedup", Json.Float speedup);
                        ("interpreted_alloc_bytes_per_run", Json.Float i_alloc);
                        ("compiled_alloc_bytes_per_run", Json.Float c_alloc);
                      ])
                  rows) );
           ("bit_identical", Json.Bool bit_identical);
         ]);
  let body =
    Experiments.Report.render ~title:"Compiled kernels vs interpreted"
      ~header:
        [ "benchmark"; "interp ns"; "compiled ns"; "speedup"; "interp alloc"; "compiled alloc" ]
      (List.map
         (fun (name, i_ns, c_ns, speedup, i_alloc, c_alloc) ->
           Experiments.Report.[ S name; F i_ns; F c_ns; F speedup; F i_alloc; F c_alloc ])
         rows)
    ^ Printf.sprintf "bit_identical: %b\n" bit_identical
  in
  section "kernel" body

let write_bench_json () =
  let number_rows rows key =
    Json.List
      (List.rev_map
         (fun (name, v) ->
           Json.Obj [ ("name", Json.String name); (key, Json.Float v) ])
         rows)
  in
  let fields =
    [
      ("schema_version", Json.Int 1);
      ("scale", Json.String scale.Experiments.Scale.name);
      ("seed", Json.Int seed);
      ("generated_unix", Json.Float (Unix.time ()));
      ("micro", number_rows !micro_rows "ns_per_run");
      ("sections", number_rows !section_rows "wall_seconds");
    ]
    @ (match !parallel_block with
      | Some block -> [ ("parallel", block) ]
      | None -> [])
    @ (match !cache_block with
      | Some block -> [ ("cache", block) ]
      | None -> [])
    @ (match !serve_block with
      | Some block -> [ ("serve", block) ]
      | None -> [])
    @ (match !chaos_block with
      | Some block -> [ ("serve_chaos", block) ]
      | None -> [])
    @ (match !resources_block with
      | Some block -> [ ("resources", block) ]
      | None -> [])
    @ (match !kernel_block with
      | Some block -> [ ("kernel", block) ]
      | None -> [])
    @ [ ("telemetry", Mrsl.Telemetry.to_json Mrsl.Telemetry.global) ]
  in
  let oc = open_out bench_out in
  output_string oc (Json.to_string (Json.Obj fields));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n[wrote %s]\n%!" bench_out

let run_micro () =
  let open Bechamel in
  let fx = micro_fixture () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  (* The Bechamel measurement loop runs each kernel thousands of times;
     tracing it would both distort the gated ns/run numbers and overflow
     the default ring buffers. Suspend the sink for the timing loop only
     — fixture setup and the parallel bench below stay traced. *)
  let raw =
    let sink = Mrsl.Trace.uninstall () in
    Fun.protect ~finally:(fun () -> Option.iter Mrsl.Trace.install sink)
      (fun () ->
        Benchmark.all cfg instances
          (Test.make_grouped ~name:"mrsl" (micro_tests fx)))
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  micro_rows := List.filter (fun (_, ns) -> Float.is_finite ns) rows;
  let body =
    Experiments.Report.render ~title:"Bechamel micro-benchmarks"
      ~header:[ "benchmark"; "ns/run"; "ms/run" ]
      (List.map
         (fun (name, ns) -> Experiments.Report.[ S name; F ns; F (ns /. 1e6) ])
         rows)
  in
  section "micro" body;
  run_parallel_bench fx;
  run_resources fx

(* ------------------------------------------------------------------ *)
(* Fault-containment exercise: drives every degradation path of the
   robustness layer under deterministic injection so the corresponding
   telemetry counters (fault.*, degrade.*, gibbs.retries,
   csv.rows_skipped) land in the BENCH JSON, where the CI fault pass
   asserts their presence. Injection rates come from the MRSL_FAULT_
   environment variables when set, otherwise from a built-in config. *)

let render_faults rng =
  let buf = Buffer.create 512 in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let entry = Bayesnet.Catalog.find "BN8" in
  let network = Bayesnet.Network.generate rng entry.topology in
  let train = Bayesnet.Network.sample_instance rng network 400 in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.02 }
      train
  in
  let workload =
    Array.to_list
      (Relation.Instance.tuples
         (Relation.Instance.mask_uniform rng ~max_missing:2
            (Bayesnet.Network.sample_instance rng network 16)))
  in
  let retry_tuple =
    (Relation.Instance.tuples
       (Relation.Instance.mask_exact rng ~missing:1
          (Bayesnet.Network.sample_instance rng network 1))).(0)
  in
  let cfg =
    if Mrsl.Fault_inject.active () then Mrsl.Fault_inject.current ()
    else
      {
        Mrsl.Fault_inject.disabled with
        seed;
        task_failure_rate = 0.25;
        csv_corruption_rate = 0.25;
        nonconvergence_rate = 1.0;
        voter_drop_rate = 1.0;
      }
  in
  let tg = Mrsl.Telemetry.global in
  out "injection: %s" (Mrsl.Fault_inject.describe cfg);
  Mrsl.Fault_inject.with_config cfg (fun () ->
      (* 1. CSV corruption survived by the lenient reader. *)
      let text = Relation.Csv_io.write_string train in
      let corrupted, lines = Mrsl.Fault_inject.corrupt_csv text in
      let inst, errs =
        Relation.Csv_io.read_string_lenient ~file:"<bench>" corrupted
      in
      Mrsl.Telemetry.add tg "fault.injected.csv_rows" (List.length lines);
      Mrsl.Telemetry.add tg "csv.rows_skipped" (List.length errs);
      out "csv: %d rows corrupted; lenient read kept %d tuples, skipped %d"
        (List.length lines) (Relation.Instance.size inst) (List.length errs);
      (* 2. Contained scheduler run at the configured task-failure rate. *)
      let contained =
        Mrsl.Parallel.run_contained
          ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 50 }
          ~domains:2 ~policy:Mrsl.Parallel.Skip_and_report ~seed model
          workload
      in
      out "scheduler: %d tuples inferred, %d skipped (%d sweeps)"
        (List.length contained.result.estimates)
        (List.length contained.faults)
        contained.result.stats.sweeps;
      (* 2b. Pinned full-rate containment so fault.task_failures and
         fault.tuples_skipped are non-zero for every seed. *)
      let pinned =
        Mrsl.Fault_inject.with_config
          { cfg with task_failure_rate = 1.0 }
          (fun () ->
            Mrsl.Parallel.run_contained
              ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 50 }
              ~domains:2 ~policy:Mrsl.Parallel.Skip_and_report ~seed model
              (match workload with a :: b :: c :: _ -> [ a; b; c ] | w -> w))
      in
      out "scheduler (rate 1.0): %d/3 tuples skipped"
        (List.length pinned.faults);
      (* 3. Forced non-convergence: retries with doubled draws until the
         budget runs out, then a flagged degraded estimate. *)
      let checked =
        Mrsl.Fault_inject.with_config
          { cfg with nonconvergence_rate = 1.0 }
          (fun () ->
            let sampler = Mrsl.Gibbs.sampler model in
            Mrsl.Diagnostics.run_with_retries
              ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 50 }
              (Prob.Rng.create seed) sampler retry_tuple)
      in
      out "retries: %d attempts, %d sweeps, converged=%b" checked.attempts
        checked.total_sweeps checked.converged;
      (* 4. The degradation ladder's lower rungs, exercised directly and
         via dropped voter sets. *)
      let card = Relation.Schema.cardinality (Mrsl.Model.schema model) 0 in
      ignore
        (Mrsl.Infer_single.degrade ~card
           (Mrsl.Infer_single.marginal_prior model 0));
      ignore (Mrsl.Infer_single.degrade ~card None);
      (match
         List.find_opt (fun t -> Relation.Tuple.missing t <> []) workload
       with
      | Some t ->
          let a = List.hd (Relation.Tuple.missing t) in
          ignore (Mrsl.Infer_single.infer model t a)
      | None -> ());
      out "ladder: marginal-prior and uniform rungs exercised");
  List.iter
    (fun key ->
      out "counter %-24s %d" key (Mrsl.Telemetry.counter tg key))
    [
      "fault.injected.csv_rows"; "csv.rows_skipped"; "fault.task_failures";
      "fault.tuples_skipped"; "fault.upstream_skipped"; "gibbs.retries";
      "degrade.nonconverged"; "degrade.marginal_prior"; "degrade.uniform";
    ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Quality artifact: the paper's one-shot offline evaluation (Section
   VI) as an always-on monitor. Fixed sizes — independent of MRSL_SCALE
   — so the checked-in baseline QUALITY json is scale-invariant: every
   number in the artifact is a deterministic function of the seed (no
   wall times), which is what lets ci/quality_gate.exe pin
   [scores.cells] exactly and tolerance-band the rest. *)

let render_quality rng =
  let buf = Buffer.create 512 in
  let entry = Bayesnet.Catalog.find "BN8" in
  let network = Bayesnet.Network.generate rng entry.topology in
  let train = Bayesnet.Network.sample_instance rng network 2000 in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.02 }
      train
  in
  (* Shadow-eval fixture: complete tuples whose known cells the monitor
     deterministically masks and re-infers. *)
  let eval =
    Relation.Instance.tuples (Bayesnet.Network.sample_instance rng network 300)
  in
  let workload =
    Array.to_list
      (Relation.Instance.tuples
         (Relation.Instance.mask_uniform rng ~max_missing:2
            (Bayesnet.Network.sample_instance rng network 24)))
  in
  let config =
    match quality_inject with
    | None -> Mrsl.Quality.default_config
    | Some gamma -> { Mrsl.Quality.default_config with sharpen = gamma }
  in
  (match quality_inject with
  | Some gamma ->
      Buffer.add_string buf
        (Printf.sprintf "INJECTED calibration regression: sharpen=%g\n" gamma)
  | None -> ());
  (* A fresh registry scopes the ensemble-health denominators
     (gibbs.chains / gibbs.checked / degrade.nonconverged) to this
     section, keeping the artifact independent of which other bench
     sections ran first. The monitor's quality.* stream still lands in
     the global registry for the BENCH telemetry snapshot. *)
  let registry = Mrsl.Telemetry.create () in
  let monitor = Mrsl.Quality.create ~config () in
  let cells = Mrsl.Quality.shadow_eval monitor model eval in
  Buffer.add_string buf
    (Printf.sprintf "shadow-eval: %d cells scored over %d tuples\n" cells
       (Array.length eval));
  (* Monitored multi-attribute inference feeds the drift aggregate; the
     monitor observes after sampling, so this run is bit-identical to an
     unmonitored one. *)
  ignore
    (Mrsl.Parallel.run
       ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 50 }
       ~domains:2 ~telemetry:registry ~quality:monitor ~seed model workload);
  (* Convergence-checked inference: a few checked runs, the first with a
     forced non-convergence so the health share is exercised. *)
  let sampler = Mrsl.Gibbs.sampler model in
  (match workload with
  | first :: rest ->
      Mrsl.Fault_inject.with_config
        {
          Mrsl.Fault_inject.disabled with
          seed;
          nonconvergence_rate = 1.0;
        }
        (fun () ->
          ignore
            (Mrsl.Diagnostics.run_with_retries
               ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 50 }
               ~policy:
                 { Mrsl.Diagnostics.default_retry_policy with max_retries = 1 }
               ~telemetry:registry (Prob.Rng.create seed) sampler first));
      List.iteri
        (fun i tup ->
          if i < 3 then
            ignore
              (Mrsl.Diagnostics.run_with_retries
                 ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 50 }
                 ~telemetry:registry
                 (Prob.Rng.create (seed + i + 1))
                 sampler tup))
        rest
  | [] -> ());
  Mrsl.Quality.publish ~registry monitor;
  let oc = open_out quality_out in
  output_string oc (Json.to_string (Mrsl.Quality.to_json ~registry monitor));
  output_char oc '\n';
  close_out oc;
  Buffer.add_string buf (Mrsl.Quality.render ~registry monitor);
  Buffer.add_string buf (Printf.sprintf "\n[wrote %s]\n" quality_out);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Posterior-cache artifact: the evidence-keyed cache on the serving hot
   path, measured on a workload built to have high signature sharing.

   The schema pairs chain-correlated attributes (the miner turns these
   into meta-rules) with high-cardinality iid noise attributes whose
   pairs with any head fall below the support threshold — so the noise
   never reaches a rule body, is lattice-irrelevant, and distinct tuples
   that differ only in noise share one evidence signature. The workload
   is [patterns] evidence patterns x [variants] noise variants: the
   tuple DAG sees distinct incomparable tuples (no sample sharing), but
   the cache collapses their posterior computations.

   Three sequential runs from identical RNG seeds: uncached, cached with
   a cold cache, cached again with the same (now warm) cache — each on a
   fresh sampler so the per-sampler CPD memo starts empty and the cache
   is the only carried state. Estimates must be bit-identical across all
   three; walls, hit rate, and dedup fan-out land in BENCH_1.json, and
   the cache.* counters (global registry) feed ci/bench_gate
   --require-counter. Fixed sizes, independent of MRSL_SCALE. *)

let render_cache rng =
  let buf = Buffer.create 512 in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let dep = 4 and noise = 2 in
  let dep_card = 3 and noise_card = 16 in
  let arity = dep + noise in
  let schema =
    Relation.Schema.of_cardinalities
      (List.init arity (fun i -> if i < dep then dep_card else noise_card))
  in
  (* a.(0) uniform; a.(i) copies a.(i-1) with probability 0.8; noise iid.
     With threshold 0.03, a (noise=v, head=w) pair has support ~
     1/16 * 1/3 ~ 0.021 < 0.03 and never becomes a rule body, while
     correlated pairs sit near 1/3 * 0.8 ~ 0.27. *)
  let sample_point () =
    let p = Array.make arity 0 in
    p.(0) <- Prob.Rng.int rng dep_card;
    for i = 1 to dep - 1 do
      p.(i) <-
        (if Prob.Rng.float rng < 0.8 then p.(i - 1)
         else Prob.Rng.int rng dep_card)
    done;
    for j = dep to arity - 1 do
      p.(j) <- Prob.Rng.int rng noise_card
    done;
    p
  in
  let train = Array.init 1500 (fun _ -> sample_point ()) in
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.03 }
      schema train
  in
  let patterns = 8 and variants = 12 in
  let workload =
    List.concat
      (List.init patterns (fun k ->
           let base = sample_point () in
           List.init variants (fun v ->
               let p = Array.copy base in
               p.(dep) <- ((v * 5) + k) mod noise_card;
               p.(dep + 1) <- ((v * 11) + (3 * k)) mod noise_card;
               let t = Relation.Tuple.of_point p in
               t.(k mod dep) <- None;
               if k land 1 = 1 then t.((k + 1) mod dep) <- None;
               t)))
  in
  let config = { Mrsl.Gibbs.burn_in = 5; samples = 30 } in
  let run_with sampler =
    Mrsl.Workload.run ~config (Prob.Rng.create (seed + 17)) sampler workload
  in
  let uncached = run_with (Mrsl.Gibbs.sampler model) in
  let cache = Mrsl.Posterior_cache.create () in
  let cold = run_with (Mrsl.Gibbs.sampler ~cache model) in
  let cold_stats = Mrsl.Posterior_cache.stats cache in
  let warm = run_with (Mrsl.Gibbs.sampler ~cache model) in
  let stats = Mrsl.Posterior_cache.stats cache in
  let identical (a : Mrsl.Workload.result) (b : Mrsl.Workload.result) =
    List.length a.estimates = List.length b.estimates
    && List.for_all2
         (fun (ta, (ea : Mrsl.Gibbs.estimate)) (tb, (eb : Mrsl.Gibbs.estimate)) ->
           ta = tb && (ea.joint :> float array) = (eb.joint :> float array))
         a.estimates b.estimates
  in
  let bit_identical = identical uncached cold && identical uncached warm in
  let wall (r : Mrsl.Workload.result) = r.stats.wall_seconds in
  let speedup denom num = if num > 0. then denom /. num else Float.nan in
  out "workload: %d tuples (%d evidence patterns x %d noise variants)"
    (List.length workload) patterns variants;
  out "uncached:    %.3fs (%d sweeps)" (wall uncached) uncached.stats.sweeps;
  out "cached cold: %.3fs  speedup %.2fx  (%d hits / %d misses, fanout %d)"
    (wall cold)
    (speedup (wall uncached) (wall cold))
    cold_stats.hits cold_stats.misses cold_stats.dedup_fanout;
  out "cached warm: %.3fs  speedup %.2fx  (hit rate %.3f over both runs)"
    (wall warm)
    (speedup (wall uncached) (wall warm))
    (Mrsl.Posterior_cache.hit_rate cache);
  out "cache: %d entries, %d bytes, %d evictions" stats.entries stats.bytes
    stats.evictions;
  out "estimates bit-identical across all three runs: %b" bit_identical;
  if not bit_identical then
    failwith "posterior cache changed sampling output (bit-identity broken)";
  cache_block :=
    Some
      (Json.Obj
         [
           ("workload_tuples", Json.Int (List.length workload));
           ("evidence_patterns", Json.Int patterns);
           ("noise_variants", Json.Int variants);
           ("samples_per_tuple", Json.Int config.samples);
           ("burn_in", Json.Int config.burn_in);
           ("uncached_wall_seconds", Json.Float (wall uncached));
           ("cold_wall_seconds", Json.Float (wall cold));
           ("warm_wall_seconds", Json.Float (wall warm));
           ("speedup_cold", Json.Float (speedup (wall uncached) (wall cold)));
           ("speedup_warm", Json.Float (speedup (wall uncached) (wall warm)));
           ("cold_hits", Json.Int cold_stats.hits);
           ("cold_misses", Json.Int cold_stats.misses);
           ("hits", Json.Int stats.hits);
           ("misses", Json.Int stats.misses);
           ("hit_rate", Json.Float (Mrsl.Posterior_cache.hit_rate cache));
           ("dedup_fanout", Json.Int stats.dedup_fanout);
           ("evictions", Json.Int stats.evictions);
           ("entries", Json.Int stats.entries);
           ("bytes", Json.Int stats.bytes);
           ("bit_identical", Json.Bool bit_identical);
         ]);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Serving artifact: an in-process [mrsl serve] daemon on a temp Unix
   socket, driven over real sockets by a client on the bench domain.
   Measures the transport + engine round trip the daemon adds on top of
   raw inference: sequential request latency (p50/p99 µs), pipelined
   sustained throughput (req/s), the dedup fan-out of a batch of
   identical concurrent requests, and a hot model swap mid-stream. The
   two named rows land in BENCH_1.json for ci/bench_gate.exe
   (--require-latency p99 ceilings; req/s floors vs the baseline).
   Fixed sizes, independent of MRSL_SCALE; single-missing requests only,
   so every answer is exact (RNG-free) and the numbers measure serving,
   not sampling. *)

let render_serve rng =
  let buf = Buffer.create 512 in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let entry = Bayesnet.Catalog.find "BN8" in
  let network = Bayesnet.Network.generate rng entry.topology in
  let train = Bayesnet.Network.sample_instance rng network 1500 in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.02 }
      train
  in
  let model_path = Filename.temp_file "mrsl-bench-model" ".mrsl" in
  Mrsl.Model_io.save model_path model;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrsl-bench-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Serving.Protocol.Unix_socket sock in
  (* Global registry on purpose: the serve.* counters land in the BENCH
     telemetry snapshot, where the CI gate can --require-counter them. *)
  let config =
    {
      Serving.Engine.default_config with
      seed;
      gibbs = { Mrsl.Gibbs.burn_in = 10; samples = 50 };
    }
  in
  let engine = Serving.Engine.create ~config ~model_path () in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let server_config =
    { (Serving.Server.default_config endpoint) with tick = 0.01 }
  in
  let server =
    Domain.spawn (fun () ->
        Serving.Server.run ~stop
          ~on_ready:(fun () -> Atomic.set ready true)
          server_config engine)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server;
      Sys.remove model_path)
    (fun () ->
      let client = Serving.Client.connect_retry endpoint in
      Fun.protect
        ~finally:(fun () -> Serving.Client.close client)
        (fun () ->
          let schema = Mrsl.Model.schema model in
          let masked =
            Relation.Instance.tuples
              (Relation.Instance.mask_exact rng ~missing:1
                 (Bayesnet.Network.sample_instance rng network 64))
          in
          let to_labels tup =
            Array.mapi
              (fun a cell ->
                Option.map
                  (fun v ->
                    Relation.Attribute.value_label
                      (Relation.Schema.attribute schema a)
                      v)
                  cell)
              tup
          in
          let requests =
            Array.map
              (fun t -> Serving.Protocol.(req (Infer (to_labels t))))
              masked
          in
          let nth i = requests.(i mod Array.length requests) in
          let expect_ok line =
            if not (String.length line > 7 && String.sub line 0 7 = "{\"ok\":t")
            then failwith (Printf.sprintf "serve bench: error response %s" line)
          in
          (* Warm the cache and the code paths out of the measurement. *)
          for i = 0 to 63 do
            expect_ok (Serving.Client.rpc client (nth i))
          done;
          (* Sequential round-trip latency: one request in flight. *)
          let n_seq = 400 in
          let lat_us = Array.make n_seq 0. in
          let t0 = Mrsl.Clock.now () in
          for i = 0 to n_seq - 1 do
            let s = Mrsl.Clock.now_ns () in
            expect_ok (Serving.Client.rpc client (nth i));
            lat_us.(i) <-
              float_of_int
                (Mrsl.Clock.duration_ns ~start:s ~stop:(Mrsl.Clock.now_ns ()))
              /. 1e3
          done;
          let seq_wall = Mrsl.Clock.now () -. t0 in
          Array.sort compare lat_us;
          let pct p =
            lat_us.(min (n_seq - 1) (int_of_float (p *. float_of_int n_seq)))
          in
          let seq_p50 = pct 0.50 and seq_p99 = pct 0.99 in
          let seq_rps = float_of_int n_seq /. seq_wall in
          (* Pipelined sustained throughput: windows of concurrent
             requests, each window drained as server batches. *)
          let windows = 8 and window = 64 in
          let n_pipe = windows * window in
          let t0 = Mrsl.Clock.now () in
          for w = 0 to windows - 1 do
            for i = 0 to window - 1 do
              Serving.Client.send client (nth ((w * window) + i))
            done;
            for _ = 1 to window do
              expect_ok (Serving.Client.recv client)
            done
          done;
          let pipe_wall = Mrsl.Clock.now () -. t0 in
          let pipe_rps = float_of_int n_pipe /. pipe_wall in
          (* Dedup fan-out: a burst of identical requests must collapse
             to (at most) one posterior computation via prewarm. *)
          let fanout_before =
            (Mrsl.Posterior_cache.stats (Serving.Engine.cache engine))
              .dedup_fanout
          in
          for _ = 1 to window do
            Serving.Client.send client (nth 0)
          done;
          for _ = 1 to window do
            expect_ok (Serving.Client.recv client)
          done;
          let fanout =
            (Mrsl.Posterior_cache.stats (Serving.Engine.cache engine))
              .dedup_fanout - fanout_before
          in
          (* Hot swap mid-stream: requests pipelined around a reload all
             get answered; the epoch advances. *)
          let epoch_before = Serving.Engine.epoch engine in
          for i = 0 to 7 do
            Serving.Client.send client (nth i)
          done;
          Serving.Client.send client Serving.Protocol.(req (Reload None));
          for i = 8 to 15 do
            Serving.Client.send client (nth i)
          done;
          for _ = 1 to 17 do
            expect_ok (Serving.Client.recv client)
          done;
          let epoch_after = Serving.Engine.epoch engine in
          if epoch_after = epoch_before then
            failwith "serve bench: reload did not advance the model epoch";
          out "sequential: %d reqs in %.3fs = %.0f req/s  p50 %.0fus  p99 %.0fus"
            n_seq seq_wall seq_rps seq_p50 seq_p99;
          out "pipelined:  %d reqs in %.3fs = %.0f req/s (windows of %d)"
            n_pipe pipe_wall pipe_rps window;
          out "dedup: %d identical concurrent requests -> fanout %d" window
            fanout;
          out "hot swap: epoch %d -> %d with 16 requests in flight, none dropped"
            epoch_before epoch_after;
          let row name requests wall rps p50 p99 =
            Json.Obj
              [
                ("name", Json.String name);
                ("requests", Json.Int requests);
                ("wall_seconds", Json.Float wall);
                ("req_per_s", Json.Float rps);
                ("p50_us", Json.Float p50);
                ("p99_us", Json.Float p99);
              ]
          in
          (* Server-side per-phase decomposition of the same traffic:
             the daemon runs in-process on the global registry, so its
             queue-wait / compute / flush-wait histograms are readable
             right here. Emitted into the artifact for the CI histogram
             gate (--require-histogram / --histogram-p99). *)
          let phase key name =
            match Mrsl.Telemetry.histogram Mrsl.Telemetry.global name with
            | None -> (key, Json.Obj [ ("count", Json.Int 0) ])
            | Some (s : Mrsl.Telemetry.summary) ->
                ( key,
                  Json.Obj
                    [
                      ("count", Json.Int s.count);
                      ("p50_ms", Json.Float (s.p50 *. 1000.));
                      ("p99_ms", Json.Float (s.p99 *. 1000.));
                      ("max_ms", Json.Float (s.max *. 1000.));
                    ] )
          in
          let phase_p99 name =
            match Mrsl.Telemetry.histogram Mrsl.Telemetry.global name with
            | None -> 0.
            | Some s -> s.Mrsl.Telemetry.p99 *. 1000.
          in
          out
            "phases (server-side p99): queue %.2fms  compute %.2fms  flush \
             %.2fms  total %.2fms"
            (phase_p99 "serve.queue_wait_seconds")
            (phase_p99 "serve.compute_seconds")
            (phase_p99 "serve.flush_wait_seconds")
            (phase_p99 "serve.latency_seconds");
          serve_block :=
            Some
              (Json.Obj
                 [
                   ( "rows",
                     Json.List
                       [
                         row "sequential" n_seq seq_wall seq_rps seq_p50
                           seq_p99;
                         (* Pipelined latency is a window property, not a
                            per-request one; only its throughput is
                            meaningful (and gated). *)
                         row "pipelined" n_pipe pipe_wall pipe_rps 0. 0.;
                       ] );
                   ( "phases",
                     Json.Obj
                       [
                         phase "queue_wait" "serve.queue_wait_seconds";
                         phase "compute" "serve.compute_seconds";
                         phase "flush_wait" "serve.flush_wait_seconds";
                         phase "total" "serve.latency_seconds";
                       ] );
                   ("dedup_burst", Json.Int window);
                   ("dedup_fanout", Json.Int fanout);
                   ("epoch_before", Json.Int epoch_before);
                   ("epoch_after", Json.Int epoch_after);
                 ])));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Serving chaos harness: the same in-process daemon pattern as the
   serve artifact, but configured hostile-small (tiny queue, connection
   cap, aggressive idle reaper, low output ceiling) and then attacked:
   an accept storm past the cap, a slow-loris half frame, a peer that
   stops reading under injected write stalls, a zero-budget deadline,
   an overload burst deep enough to trip the cache-only rung, and a
   torn-frame + connection-drop injection run driven through the
   retrying client — whose surviving answers must stay bit-identical
   to a local reference engine. The daemon must stay live through all
   of it. Counters land in the global registry, where the CI chaos
   pass --require-counter's every defense. *)

let render_chaos rng =
  let buf = Buffer.create 512 in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let entry = Bayesnet.Catalog.find "BN8" in
  let network = Bayesnet.Network.generate rng entry.topology in
  let train = Bayesnet.Network.sample_instance rng network 800 in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.02 }
      train
  in
  let model_path = Filename.temp_file "mrsl-chaos-model" ".mrsl" in
  Mrsl.Model_io.save model_path model;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrsl-chaos-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Serving.Protocol.Unix_socket sock in
  let config =
    {
      Serving.Engine.default_config with
      seed;
      gibbs = { Mrsl.Gibbs.burn_in = 10; samples = 50 };
    }
  in
  (* Global registry on purpose, like render_serve: the serve.* and
     fault.injected.* counters must land in the BENCH telemetry
     snapshot for the chaos gate. *)
  let engine = Serving.Engine.create ~config ~model_path () in
  (* The uninjected reference for survivor bit-identity, on a private
     registry so its traffic never pollutes the gated counters. *)
  let local =
    Serving.Engine.create
      ~telemetry:(Mrsl.Telemetry.create ())
      ~config ~model_path ()
  in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let server_config =
    {
      (Serving.Server.default_config endpoint) with
      tick = 0.005;
      batch_max = 8;
      queue_capacity = 64;
      max_conns = 4;
      idle_timeout = 0.3;
      out_buf_max = 2048;
      shed_watermark = 0.75;
    }
  in
  let server =
    Domain.spawn (fun () ->
        Serving.Server.run ~stop
          ~on_ready:(fun () -> Atomic.set ready true)
          server_config engine)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server;
      Sys.remove model_path)
    (fun () ->
      let schema = Mrsl.Model.schema model in
      let masked =
        Relation.Instance.tuples
          (Relation.Instance.mask_exact rng ~missing:1
             (Bayesnet.Network.sample_instance rng network 64))
      in
      let to_labels tup =
        Array.mapi
          (fun a cell ->
            Option.map
              (fun v ->
                Relation.Attribute.value_label
                  (Relation.Schema.attribute schema a)
                  v)
              cell)
          tup
      in
      let infer_op i =
        Serving.Protocol.Infer (to_labels masked.(i mod Array.length masked))
      in
      let error_code line =
        match Json.of_string line with
        | j -> (
            match Json.member "error" j with
            | Some e -> (
                match Json.member "code" e with
                | Some (Json.String c) -> Some c
                | _ -> None)
            | None -> None)
        | exception Json.Parse_error _ -> None
      in
      (* Epoch-stripped payload, as `mrsl client verify` compares:
         model epochs are process-unique by construction. *)
      let payload line =
        match Json.of_string line with
        | Json.Obj fields ->
            Json.to_string ~pretty:false
              (Json.Obj (List.filter (fun (k, _) -> k <> "epoch") fields))
        | j -> Json.to_string ~pretty:false j
        | exception Json.Parse_error _ -> line
      in
      (* A connection both admitted and alive: the accept storm and the
         reaper phases leave corpses the server only collects on its
         next tick, so a bare connect may be rejected off the cap. *)
      let rec fresh_conn ?(tries = 100) () =
        let c = Serving.Client.connect ~timeout:5. endpoint in
        match Serving.Client.rpc c Serving.Protocol.(req Ping) with
        | line when error_code line = None -> c
        | _ | (exception End_of_file) | (exception Unix.Unix_error _) ->
            Serving.Client.close c;
            if tries = 0 then failwith "chaos: no live connection obtainable";
            Unix.sleepf 0.02;
            fresh_conn ~tries:(tries - 1) ()
      in
      (* Phase 1 — accept storm: 12 connects against max_conns = 4. The
         overflow must be rejected with one structured line each; the
         admitted-but-silent rest must be reaped by the idle killer. *)
      let storm = 12 in
      let conns =
        List.init storm (fun _ -> Serving.Client.connect ~timeout:3. endpoint)
      in
      let rejected = ref 0 and reaped = ref 0 in
      List.iter
        (fun c ->
          (match Serving.Client.recv c with
          | line ->
              if error_code line = Some "serve.conn_rejected" then
                incr rejected
          | exception End_of_file -> incr reaped
          | exception Serving.Client.Timeout -> ());
          Serving.Client.close c)
        conns;
      if !rejected = 0 then failwith "chaos: accept storm never rejected";
      if !reaped = 0 then failwith "chaos: idle reaper never fired";
      out "accept storm: %d conns -> %d rejected at the cap, %d idle-reaped"
        storm !rejected !reaped;
      (* Phase 2 — slow-loris: half a frame, then silence. The reaper
         must kill it (completed frames, not bytes, reset the clock). *)
      let sl = Serving.Client.connect ~timeout:3. endpoint in
      Serving.Client.send_partial sl "{\"op\":\"pi";
      (match Serving.Client.recv sl with
      | _ -> failwith "chaos: slow-loris got a response to half a frame"
      | exception End_of_file -> ()
      | exception Serving.Client.Timeout ->
          failwith "chaos: slow-loris connection was never killed");
      Serving.Client.close sl;
      out "slow-loris: half-frame connection killed by the idle reaper";
      (* Phase 3 — stalled writes: every flush moves one byte while the
         victim pipelines pings it never reads; the server must cut the
         connection at the output ceiling, not buffer without bound. *)
      let victim = fresh_conn () in
      Mrsl.Fault_inject.with_config
        { Mrsl.Fault_inject.disabled with seed; stall_write_rate = 1.0 }
        (fun () ->
          (* The cut can land mid-loop: once the server's RST arrives, a
             further pipelined send raises EPIPE — that, like recv's
             End_of_file/ECONNRESET, IS the ceiling firing. *)
          match
            for _ = 1 to 200 do
              Serving.Client.send victim Serving.Protocol.(req Ping)
            done
          with
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
            ->
              ()
          | () -> (
              match Serving.Client.recv victim with
              | _ ->
                  failwith
                    "chaos: victim outran a fully stalled write — impossible"
              | exception End_of_file -> ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
              | exception Serving.Client.Timeout ->
                  failwith "chaos: out-buffer ceiling never cut the victim"));
      Serving.Client.close victim;
      out "stalled writes: non-reading peer cut at the %d-byte ceiling"
        server_config.Serving.Server.out_buf_max;
      (* Phase 4 — zero budget: a deadline_ms=0 request must be shed
         with the structured deadline error, never computed. *)
      let c = fresh_conn () in
      let line =
        Serving.Client.rpc c
          (Serving.Protocol.req ~deadline_ms:0 (infer_op 0))
      in
      if error_code line <> Some "serve.deadline_exceeded" then
        failwith
          (Printf.sprintf "chaos: zero deadline answered %s" line);
      out "deadline: zero-budget request shed with serve.deadline_exceeded";
      (* Phase 5 — overload burst: 96 pipelined cold requests against a
         64-deep queue. The tail must be refused (serve.overloaded),
         the above-watermark batches must shed (serve.shed), and every
         shed request must succeed on sequential retry. *)
      let burst = 96 in
      let responses = Hashtbl.create burst in
      for i = 0 to burst - 1 do
        Serving.Client.send c
          (Serving.Protocol.req ~id:(Json.Int i) (infer_op i))
      done;
      for _ = 1 to burst do
        let line = Serving.Client.recv c in
        match Json.member "id" (Json.of_string line) with
        | Some (Json.Int i) -> Hashtbl.replace responses i line
        | _ -> failwith "chaos: burst response without an id"
      done;
      let shed_count = ref 0 and ok_count = ref 0 and recovered = ref 0 in
      for i = 0 to burst - 1 do
        let line = Hashtbl.find responses i in
        match error_code line with
        | None -> incr ok_count
        | Some ("serve.shed" | "serve.overloaded") -> incr shed_count
        | Some other ->
            failwith (Printf.sprintf "chaos: unexpected burst error %s" other)
      done;
      if !shed_count = 0 then
        failwith "chaos: overload burst never tripped the shedding ladder";
      for i = 0 to burst - 1 do
        if error_code (Hashtbl.find responses i) <> None then begin
          let line =
            Serving.Client.rpc c
              (Serving.Protocol.req ~id:(Json.Int i) (infer_op i))
          in
          if error_code line <> None then
            failwith
              (Printf.sprintf "chaos: retry after shed still failing: %s" line)
          else incr recovered
        end
      done;
      Serving.Client.close c;
      out
        "overload: burst of %d -> %d answered, %d shed/refused, all %d \
         recovered on retry"
        burst !ok_count !shed_count !recovered;
      (* Phase 6 — torn frames + connection drops, retried by the
         idempotent client; every survivor must be bit-identical to the
         uninjected local reference. *)
      let c = fresh_conn () in
      let survivors = ref 0 and mismatches = ref 0 and lost = ref 0 in
      Mrsl.Fault_inject.with_config
        {
          Mrsl.Fault_inject.disabled with
          seed;
          torn_frame_rate = 0.2;
          conn_drop_rate = 0.2;
        }
        (fun () ->
          for i = 0 to 31 do
            let req =
              Serving.Protocol.req ~id:(Json.Int (1000 + i)) (infer_op i)
            in
            match
              Serving.Client.rpc_retry ~attempts:8 ~delay:0.02 ~seed c req
            with
            | line ->
                incr survivors;
                let reference = Serving.Engine.handle_request local req in
                if payload line <> payload (String.trim reference) then begin
                  incr mismatches;
                  out "MISMATCH\n  served: %s\n  local:  %s" line
                    (String.trim reference)
                end
            | exception (End_of_file | Serving.Client.Timeout | Unix.Unix_error _)
              ->
                incr lost
          done);
      Serving.Client.close c;
      if !survivors = 0 then
        failwith "chaos: no request survived torn-frame/drop injection";
      if !mismatches > 0 then
        failwith
          (Printf.sprintf "chaos: %d survivor(s) not bit-identical"
             !mismatches);
      out
        "injection: %d/32 survived torn frames + conn drops (%d exhausted \
         retries), all bit-identical to local inference"
        !survivors !lost;
      (* Finale — the daemon took all of it and still answers. *)
      let c = fresh_conn () in
      let line = Serving.Client.rpc c Serving.Protocol.(req Ping) in
      if error_code line <> None then
        failwith (Printf.sprintf "chaos: daemon unhealthy at the end: %s" line);
      Serving.Client.close c;
      out "alive: daemon healthy after the full chaos run";
      chaos_block :=
        Some
          (Json.Obj
             [
               ("storm_conns", Json.Int storm);
               ("rejected", Json.Int !rejected);
               ("idle_reaped", Json.Int !reaped);
               ("burst", Json.Int burst);
               ("burst_ok", Json.Int !ok_count);
               ("burst_shed", Json.Int !shed_count);
               ("burst_recovered", Json.Int !recovered);
               ("injected_survivors", Json.Int !survivors);
               ("injected_lost", Json.Int !lost);
               ("injected_mismatches", Json.Int !mismatches);
               ("bit_identical", Json.Bool (!mismatches = 0));
               ("alive", Json.Bool true);
             ]));
  Buffer.contents buf

let artifacts =
  [
    ( "table1",
      "Table I: benchmark network characteristics",
      fun _rng -> Experiments.Table1.render () );
    ( "fig4",
      "Fig 4: learning the MRSL model",
      fun rng -> Experiments.Fig4.render rng scale );
    ( "table2",
      "Table II: accuracy of single-variable inference",
      fun rng -> Experiments.Table2.render rng scale );
    ( "fig5",
      "Fig 5: accuracy vs training set size",
      fun rng -> Experiments.Fig5.render rng scale );
    ( "fig6",
      "Fig 6: accuracy vs support threshold",
      fun rng -> Experiments.Fig6.render rng scale );
    ( "fig8",
      "Fig 8: accuracy vs network properties",
      fun rng -> Experiments.Fig8.render rng scale );
    ( "fig9",
      "Fig 9: inference time vs model size",
      fun rng -> Experiments.Fig9.render rng scale );
    ( "fig10",
      "Fig 10: accuracy of multi-variable inference",
      fun rng -> Experiments.Fig10.render rng scale );
    ( "fig11",
      "Fig 11: efficiency of multi-variable inference",
      fun rng -> Experiments.Fig11.render rng scale );
    ( "missingness",
      "Missingness mechanisms: MCAR / MAR / MNAR robustness",
      fun rng -> Experiments.Missingness_exp.render rng scale );
    ( "baselines",
      "Baselines: MRSL vs independent product, learned BN, backoff DN",
      fun rng -> Experiments.Baselines_exp.render rng scale );
    ( "ablations",
      "Ablations: maxItemsets, smoothing floor, Gibbs strategy, memoization",
      fun rng -> Experiments.Ablations.render rng scale );
    ( "faults",
      "Fault containment: injection, degradation ladder, retries",
      render_faults );
    ( "quality",
      "Quality: shadow-mask calibration, drift, ensemble health",
      render_quality );
    ( "cache",
      "Posterior cache: hit rate, dedup fan-out, cached-vs-uncached speedup",
      render_cache );
    ( "serve",
      "Serving daemon: request latency, throughput, dedup, hot swap",
      render_serve );
    ( "chaos",
      "Serving chaos: overload shedding, deadlines, reaping, injection",
      render_chaos );
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map (fun (id, _, _) -> id) artifacts @ [ "micro"; "kernel" ]
  in
  if Mrsl.Fault_inject.install_from_env () then
    Printf.printf "fault injection active: %s\n%!"
      (Mrsl.Fault_inject.describe (Mrsl.Fault_inject.current ()));
  Printf.printf "MRSL reproduction benches (scale=%s, seed=%d)\n%!"
    scale.Experiments.Scale.name seed;
  let sink =
    match trace_out with
    | None -> None
    | Some _ ->
        let s = Mrsl.Trace.create () in
        Mrsl.Trace.install s;
        Some s
  in
  List.iter
    (fun id ->
      if id = "micro" then run_micro ()
      else if id = "kernel" then run_kernel ()
      else
        match List.find_opt (fun (i, _, _) -> i = id) artifacts with
        | Some (id, title, f) -> timed_section id title f
        | None ->
            Printf.eprintf "unknown artifact %S (known: %s, micro, kernel)\n%!"
              id
              (String.concat ", " (List.map (fun (i, _, _) -> i) artifacts)))
    requested;
  (match (sink, trace_out) with
  | Some sink, Some path ->
      ignore (Mrsl.Trace.uninstall ());
      Mrsl.Trace.write_chrome sink path;
      Printf.printf "[trace: %d events (%d dropped) -> %s]\n%!"
        (Mrsl.Trace.event_count sink)
        (Mrsl.Trace.dropped sink) path
  | _ -> ());
  write_bench_json ()
