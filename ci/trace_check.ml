(* Trace artifact validator for the CI trace pass.

   Parses a Chrome trace-event JSON file produced by `mrsl infer --trace`
   or the bench harness (MRSL_TRACE_OUT) and asserts it is a usable
   observability artifact:

     - the JSON parses and has a traceEvents array with at least one
       non-metadata event;
     - dropped == 0 (no ring-buffer overflow at the default capacity);
     - at least --min-tracks distinct tracks (one per domain);
     - every --require-cat CATEGORY (repeatable) has >= 1 event;
     - with --require-steal-flows: at least one steal flow start ("s")
       and one matching flow end ("f") in category "steal";
     - with --require-rhat-counters: at least one "gibbs.convergence"
       counter event carrying an "rhat" series value.

   Usage:
     trace_check --trace t.json [--min-tracks N] [--require-steal-flows]
                 [--require-rhat-counters] [--require-cat CAT]...

   Exit codes: 0 ok, 1 validation failure, 2 usage/IO error. *)

module Json = Mrsl.Telemetry.Json

let usage () =
  prerr_endline
    "usage: trace_check --trace <t.json> [--min-tracks N] \
     [--require-steal-flows] [--require-rhat-counters] [--require-cat CAT]...";
  exit 2

let parse_args () =
  let trace = ref None
  and min_tracks = ref 1
  and steal_flows = ref false
  and rhat = ref false
  and cats = ref [] in
  let rec go = function
    | [] -> ()
    | "--trace" :: v :: rest ->
        trace := Some v;
        go rest
    | "--min-tracks" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> min_tracks := n
        | _ -> usage ());
        go rest
    | "--require-steal-flows" :: rest ->
        steal_flows := true;
        go rest
    | "--require-rhat-counters" :: rest ->
        rhat := true;
        go rest
    | "--require-cat" :: v :: rest ->
        cats := v :: !cats;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match !trace with
  | Some t -> (t, !min_tracks, !steal_flows, !rhat, List.rev !cats)
  | None -> usage ()

let () =
  let path, min_tracks, want_steals, want_rhat, required_cats =
    parse_args ()
  in
  let text =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "trace_check: cannot read %s: %s\n%!" path msg;
      exit 2
  in
  let json =
    try Json.of_string text
    with Json.Parse_error msg ->
      Printf.eprintf "trace_check: %s is not valid JSON: %s\n%!" path msg;
      exit 1
  in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ ->
        Printf.eprintf "trace_check: %s has no traceEvents array\n%!" path;
        exit 1
  in
  let str k o =
    match Json.member k o with Some (Json.String s) -> Some s | _ -> None
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let tracks = Hashtbl.create 8 in
  let cat_counts = Hashtbl.create 16 in
  let n_events = ref 0 in
  let steal_starts = ref 0 and steal_ends = ref 0 in
  let rhat_counters = ref 0 in
  List.iter
    (fun ev ->
      match str "ph" ev with
      | Some "M" | None -> ()
      | Some ph ->
          incr n_events;
          (match Json.member "pid" ev with
          | Some (Json.Int pid) -> Hashtbl.replace tracks pid ()
          | _ -> ());
          (match str "cat" ev with
          | Some cat ->
              Hashtbl.replace cat_counts cat
                (1 + Option.value ~default:0 (Hashtbl.find_opt cat_counts cat));
              if cat = "steal" && ph = "s" then incr steal_starts;
              if cat = "steal" && ph = "f" then incr steal_ends
          | None -> ());
          if ph = "C" && str "name" ev = Some "gibbs.convergence" then
            match Json.member "args" ev with
            | Some args when Json.member "rhat" args <> None ->
                incr rhat_counters
            | _ -> ())
    events;
  if !n_events = 0 then fail "no events (only metadata) in traceEvents";
  (match Json.member "dropped" json with
  | Some (Json.Int 0) -> ()
  | Some (Json.Int n) ->
      fail "%d events dropped (ring-buffer overflow at default capacity)" n
  | _ -> fail "no top-level \"dropped\" field");
  let n_tracks = Hashtbl.length tracks in
  if n_tracks < min_tracks then
    fail "only %d track(s), expected >= %d (one per domain)" n_tracks
      min_tracks;
  List.iter
    (fun cat ->
      match Hashtbl.find_opt cat_counts cat with
      | Some n when n > 0 -> ()
      | _ -> fail "no events in required category %S" cat)
    required_cats;
  if want_steals then begin
    if !steal_starts = 0 then fail "no steal flow-start (\"s\") events";
    if !steal_ends = 0 then fail "no steal flow-end (\"f\") events"
  end;
  if want_rhat && !rhat_counters = 0 then
    fail "no gibbs.convergence counter events with an rhat series";
  match !failures with
  | [] ->
      Printf.printf
        "trace_check: %s ok (%d events, %d tracks, %d steal flows, %d rhat \
         points, 0 dropped)\n"
        path !n_events n_tracks !steal_starts !rhat_counters
  | fs ->
      Printf.eprintf "trace_check: %s FAILED:\n" path;
      List.iter (fun f -> Printf.eprintf "  - %s\n" f) (List.rev fs);
      exit 1
