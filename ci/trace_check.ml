(* Trace artifact validator for the CI trace pass.

   Parses a Chrome trace-event JSON file produced by `mrsl infer --trace`
   or the bench harness (MRSL_TRACE_OUT) and asserts it is a usable
   observability artifact:

     - the JSON parses and has a traceEvents array with at least one
       non-metadata event;
     - dropped == 0 (no ring-buffer overflow at the default capacity);
     - at least --min-tracks distinct tracks (one per domain);
     - every --require-cat CATEGORY (repeatable) has >= 1 event;
     - with --require-steal-flows: at least one steal flow start ("s")
       and one matching flow end ("f") in category "steal";
     - with --require-rhat-counters: at least one "gibbs.convergence"
       counter event carrying an "rhat" series value;
     - with --require-serve-flows: at least one "serve.request" flow,
       and for every distinct flow id the start ("s") and end ("f")
       counts balance (>= 1 each), with at least one end landing inside
       some "serve.batch" complete-slice interval — i.e. every admitted
       request's arrow terminates on the batch that served it. Requests
       shed by the deadline ladder are exempted from the inside-a-batch
       rule (their flow ends at answer time, outside any batch slice):
       a "serve.request.done" instant whose args carry the same flow id
       with outcome "deadline_exceeded" marks the exemption.

   Usage:
     trace_check --trace t.json [--min-tracks N] [--require-steal-flows]
                 [--require-rhat-counters] [--require-serve-flows]
                 [--require-cat CAT]...

   Exit codes: 0 ok, 1 validation failure, 2 usage/IO error. *)

module Json = Mrsl.Telemetry.Json

let usage () =
  prerr_endline
    "usage: trace_check --trace <t.json> [--min-tracks N] \
     [--require-steal-flows] [--require-rhat-counters] \
     [--require-serve-flows] [--require-cat CAT]...";
  exit 2

let parse_args () =
  let trace = ref None
  and min_tracks = ref 1
  and steal_flows = ref false
  and rhat = ref false
  and serve_flows = ref false
  and cats = ref [] in
  let rec go = function
    | [] -> ()
    | "--trace" :: v :: rest ->
        trace := Some v;
        go rest
    | "--min-tracks" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> min_tracks := n
        | _ -> usage ());
        go rest
    | "--require-steal-flows" :: rest ->
        steal_flows := true;
        go rest
    | "--require-rhat-counters" :: rest ->
        rhat := true;
        go rest
    | "--require-serve-flows" :: rest ->
        serve_flows := true;
        go rest
    | "--require-cat" :: v :: rest ->
        cats := v :: !cats;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match !trace with
  | Some t ->
      (t, !min_tracks, !steal_flows, !rhat, !serve_flows, List.rev !cats)
  | None -> usage ()

let () =
  let path, min_tracks, want_steals, want_rhat, want_serve, required_cats =
    parse_args ()
  in
  let text =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "trace_check: cannot read %s: %s\n%!" path msg;
      exit 2
  in
  let json =
    try Json.of_string text
    with Json.Parse_error msg ->
      Printf.eprintf "trace_check: %s is not valid JSON: %s\n%!" path msg;
      exit 1
  in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ ->
        Printf.eprintf "trace_check: %s has no traceEvents array\n%!" path;
        exit 1
  in
  let str k o =
    match Json.member k o with Some (Json.String s) -> Some s | _ -> None
  in
  let num k o =
    match Json.member k o with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  let int_field k o =
    match Json.member k o with Some (Json.Int n) -> Some n | _ -> None
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let tracks = Hashtbl.create 8 in
  let cat_counts = Hashtbl.create 16 in
  let n_events = ref 0 in
  let steal_starts = ref 0 and steal_ends = ref 0 in
  let rhat_counters = ref 0 in
  (* serve-flow bookkeeping: batch slice intervals, per-id start/end
     counts and end timestamps, and the deadline-shed exemption set. *)
  let serve_batches = ref [] in
  let serve_flows : (int, int * int * float list) Hashtbl.t =
    Hashtbl.create 64
  in
  let deadline_flows : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match str "ph" ev with
      | Some "M" | None -> ()
      | Some ph ->
          incr n_events;
          (match Json.member "pid" ev with
          | Some (Json.Int pid) -> Hashtbl.replace tracks pid ()
          | _ -> ());
          (match str "cat" ev with
          | Some cat ->
              Hashtbl.replace cat_counts cat
                (1 + Option.value ~default:0 (Hashtbl.find_opt cat_counts cat));
              if cat = "steal" && ph = "s" then incr steal_starts;
              if cat = "steal" && ph = "f" then incr steal_ends;
              if cat = "serve" then begin
                let name = str "name" ev in
                (if ph = "X" && name = Some "serve.batch" then
                   match (num "ts" ev, num "dur" ev) with
                   | Some ts, Some dur ->
                       serve_batches := (ts, ts +. dur) :: !serve_batches
                   | _ -> ());
                (if (ph = "s" || ph = "f") && name = Some "serve.request" then
                   match int_field "id" ev with
                   | Some id ->
                       let s, f, ends =
                         Option.value ~default:(0, 0, [])
                           (Hashtbl.find_opt serve_flows id)
                       in
                       let entry =
                         if ph = "s" then (s + 1, f, ends)
                         else
                           ( s,
                             f + 1,
                             match num "ts" ev with
                             | Some ts -> ts :: ends
                             | None -> ends )
                       in
                       Hashtbl.replace serve_flows id entry
                   | None -> ());
                if ph = "i" && name = Some "serve.request.done" then
                  match Json.member "args" ev with
                  | Some args
                    when str "outcome" args = Some "deadline_exceeded" -> (
                      match int_field "flow" args with
                      | Some id -> Hashtbl.replace deadline_flows id ()
                      | None -> ())
                  | _ -> ()
              end
          | None -> ());
          if ph = "C" && str "name" ev = Some "gibbs.convergence" then
            match Json.member "args" ev with
            | Some args when Json.member "rhat" args <> None ->
                incr rhat_counters
            | _ -> ())
    events;
  if !n_events = 0 then fail "no events (only metadata) in traceEvents";
  (match Json.member "dropped" json with
  | Some (Json.Int 0) -> ()
  | Some (Json.Int n) ->
      fail "%d events dropped (ring-buffer overflow at default capacity)" n
  | _ -> fail "no top-level \"dropped\" field");
  let n_tracks = Hashtbl.length tracks in
  if n_tracks < min_tracks then
    fail "only %d track(s), expected >= %d (one per domain)" n_tracks
      min_tracks;
  List.iter
    (fun cat ->
      match Hashtbl.find_opt cat_counts cat with
      | Some n when n > 0 -> ()
      | _ -> fail "no events in required category %S" cat)
    required_cats;
  if want_steals then begin
    if !steal_starts = 0 then fail "no steal flow-start (\"s\") events";
    if !steal_ends = 0 then fail "no steal flow-end (\"f\") events"
  end;
  if want_rhat && !rhat_counters = 0 then
    fail "no gibbs.convergence counter events with an rhat series";
  if want_serve then begin
    if Hashtbl.length serve_flows = 0 then
      fail "no serve.request flow events";
    (* Flow timestamps and slice bounds both went through an ns->us
       float division; allow a microsecond of rounding slop on the
       interval test. *)
    let eps = 1.0 in
    let inside ts =
      List.exists (fun (lo, hi) -> ts >= lo -. eps && ts <= hi +. eps)
        !serve_batches
    in
    Hashtbl.iter
      (fun id (s, f, ends) ->
        if s <> f || s = 0 then
          fail "serve.request flow %d unbalanced: %d start(s), %d end(s)" id s
            f
        else if
          (not (List.exists inside ends))
          && not (Hashtbl.mem deadline_flows id)
        then
          fail
            "serve.request flow %d never terminates inside a serve.batch \
             slice (and is not deadline-shed)"
            id)
      serve_flows
  end;
  match !failures with
  | [] ->
      Printf.printf
        "trace_check: %s ok (%d events, %d tracks, %d steal flows, %d serve \
         flows, %d rhat points, 0 dropped)\n"
        path !n_events n_tracks !steal_starts (Hashtbl.length serve_flows)
        !rhat_counters
  | fs ->
      Printf.eprintf "trace_check: %s FAILED:\n" path;
      List.iter (fun f -> Printf.eprintf "  - %s\n" f) (List.rev fs);
      exit 1
