#!/usr/bin/env bash
# Local CI pipeline — the same steps .github/workflows/ci.yml runs.
#
#   ci/run.sh            build + tests + smoke bench + regression gate
#   ci/run.sh --no-gate  skip the bench regression gate (e.g. when
#                        refreshing the baseline itself)
#
# Environment knobs:
#   MRSL_SCALE            experiment scale preset (default here: smoke)
#   MRSL_SEED             experiment seed (default 2011)
#   MRSL_BENCH_OUT        where the bench writes its JSON (default BENCH_1.json)
#   MRSL_BENCH_TOLERANCE  gate tolerance as a fraction (default 0.25)
#   MRSL_QUALITY_TOLERANCE  quality-gate relative tolerance (default 0.10)
set -euo pipefail
cd "$(dirname "$0")/.."

GATE=1
if [ "${1:-}" = "--no-gate" ]; then GATE=0; fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke bench =="
MRSL_SCALE="${MRSL_SCALE:-smoke}" dune exec bench/main.exe -- micro cache

if [ "$GATE" = 1 ]; then
  echo "== bench regression gate =="
  # Micro regression comparison plus the posterior-cache counter gate:
  # the cache artifact must have produced real hits and a real dedup
  # fan-out, proving the serving hot path actually went through the
  # evidence-keyed cache.
  dune exec ci/bench_gate.exe -- \
    --baseline bench/baseline/BENCH_1.json \
    --current "${MRSL_BENCH_OUT:-BENCH_1.json}" \
    --require-counter cache.hits \
    --require-counter cache.dedup_fanout
else
  echo "== bench regression gate skipped (--no-gate) =="
fi

echo "== fault-injection pass =="
# Dedicated fault suite: containment determinism, degradation ladder,
# convergence retries, malformed-CSV corpus.
dune exec test/main.exe -- test faults

# Smoke bench under deterministic injection; the counter gate then
# proves every degradation/retry path actually fired and its telemetry
# landed in the JSON report.
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_FAULT.json \
MRSL_FAULT_SEED="${MRSL_FAULT_SEED:-2011}" \
MRSL_FAULT_TASK_RATE=0.25 \
MRSL_FAULT_CSV_RATE=0.25 \
MRSL_FAULT_NONCONV_RATE=1.0 \
MRSL_FAULT_VOTER_RATE=1.0 \
  dune exec bench/main.exe -- faults

dune exec ci/bench_gate.exe -- --current BENCH_FAULT.json \
  --require-counter fault.task_failures \
  --require-counter fault.tuples_skipped \
  --require-counter gibbs.retries \
  --require-counter degrade.nonconverged \
  --require-counter degrade.marginal_prior \
  --require-counter degrade.uniform \
  --require-counter csv.rows_skipped

echo "== quality pass =="
# Statistical quality gate: the bench quality artifact (shadow-masked
# calibration scores, drift, ensemble health; scale-invariant and a pure
# function of the seed) must stay within tolerance of the committed
# baseline, with scores.cells pinned exactly (shadow-mask determinism).
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_QUALITY.json \
MRSL_QUALITY_OUT=QUALITY_1.json \
  dune exec bench/main.exe -- quality

dune exec ci/quality_gate.exe -- \
  --baseline bench/baseline/QUALITY_1.json \
  --current QUALITY_1.json \
  --tolerance "${MRSL_QUALITY_TOLERANCE:-0.10}" \
  --require-metric scores.brier \
  --require-metric scores.log_loss \
  --require-metric scores.ece \
  --require-metric scores.mce \
  --require-metric drift.js_max \
  --require-metric health.nonconverged_share

# Negative test: an injected calibration regression (shadow posteriors
# sharpened to overconfidence — served probabilities untouched) must
# make the gate fail; --expect-fail inverts the exit code.
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_QUALITY_BAD.json \
MRSL_QUALITY_OUT=QUALITY_BAD.json \
MRSL_QUALITY_INJECT=overconfident \
  dune exec bench/main.exe -- quality

dune exec ci/quality_gate.exe -- \
  --baseline bench/baseline/QUALITY_1.json \
  --current QUALITY_BAD.json \
  --expect-fail

echo "== cache pass =="
# Dedicated cache suite: hit/miss/eviction accounting, epoch
# invalidation, dedup fan-out, cached-vs-uncached bit-identity.
dune exec test/main.exe -- test cache

# Negative check: disabling the cache must not change anything the CLI
# prints — estimates are bit-identical with and without the cache, and
# the CLI deliberately emits no cache statistics.
dune exec bin/mrsl_cli.exe -- infer -i examples/example.csv \
  --samples 100 --burn-in 20 --seed 2011 --cache > INFER_CACHED.out
dune exec bin/mrsl_cli.exe -- infer -i examples/example.csv \
  --samples 100 --burn-in 20 --seed 2011 --no-cache > INFER_UNCACHED.out
diff INFER_CACHED.out INFER_UNCACHED.out
echo "cache on/off outputs identical"

echo "== trace pass =="
# End-to-end traced inference on the bundled example. The artifact must
# parse as Chrome trace-event JSON with one track per domain, steal
# flow arrows, the Gibbs convergence timeline, at least one event in
# every instrumented phase, and zero dropped events.
dune exec bin/mrsl_cli.exe -- infer -i examples/example.csv \
  --samples 200 --burn-in 50 --domains 4 --seed 2011 \
  --trace TRACE_INFER.json --prometheus METRICS_INFER.prom > /dev/null
dune exec ci/trace_check.exe -- --trace TRACE_INFER.json --min-tracks 4 \
  --require-steal-flows --require-rhat-counters \
  --require-cat mine --require-cat lattice --require-cat voting \
  --require-cat gibbs --require-cat dag --require-cat io \
  --require-cat sched --require-cat steal

# Traced smoke bench: every CI run produces a parseable trace artifact,
# and the span gate proves the instrumented phases actually ran (plus
# the double-accounting guard: per-section counters start from zero).
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_TRACE.json \
MRSL_TRACE_OUT=TRACE_BENCH.json \
  dune exec bench/main.exe -- micro
dune exec ci/trace_check.exe -- --trace TRACE_BENCH.json \
  --require-cat gibbs --require-cat sched --require-cat dag \
  --require-cat learn
dune exec ci/bench_gate.exe -- --current BENCH_TRACE.json \
  --require-span model.learn \
  --require-span workload.run

echo "== CI pipeline passed =="
