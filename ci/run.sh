#!/usr/bin/env bash
# Local CI pipeline — the same steps .github/workflows/ci.yml runs.
#
#   ci/run.sh            build + tests + smoke bench + regression gate
#   ci/run.sh --no-gate  skip the bench regression gate (e.g. when
#                        refreshing the baseline itself)
#
# Environment knobs:
#   MRSL_SCALE            experiment scale preset (default here: smoke)
#   MRSL_SEED             experiment seed (default 2011)
#   MRSL_BENCH_OUT        where the bench writes its JSON (default BENCH_1.json)
#   MRSL_BENCH_TOLERANCE  gate tolerance as a fraction (default 0.25)
set -euo pipefail
cd "$(dirname "$0")/.."

GATE=1
if [ "${1:-}" = "--no-gate" ]; then GATE=0; fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke bench =="
MRSL_SCALE="${MRSL_SCALE:-smoke}" dune exec bench/main.exe -- micro

if [ "$GATE" = 1 ]; then
  echo "== bench regression gate =="
  dune exec ci/bench_gate.exe -- \
    --baseline bench/baseline/BENCH_1.json \
    --current "${MRSL_BENCH_OUT:-BENCH_1.json}"
else
  echo "== bench regression gate skipped (--no-gate) =="
fi

echo "== CI pipeline passed =="
