#!/usr/bin/env bash
# Local CI pipeline — the same steps .github/workflows/ci.yml runs.
#
#   ci/run.sh                     build + tests + benches + all gates
#   ci/run.sh --no-gate           skip every baseline-relative gate (micro
#                                 wall-time regression, serve req/s floor,
#                                 quality baseline comparison and its
#                                 negative test); absolute gates — required
#                                 counters, spans, the serve latency ceiling
#                                 and the healthy-traffic shed-rate ceiling —
#                                 still run
#   ci/run.sh --refresh-baseline  run with baseline gates off, then copy
#                                 the fresh BENCH_1.json + QUALITY_1.json
#                                 into bench/baseline/.  The one command to
#                                 run after an intentional perf or quality
#                                 change.
#
# Environment knobs:
#   MRSL_SCALE            experiment scale preset (default here: smoke)
#   MRSL_SEED             experiment seed (default 2011)
#   MRSL_BENCH_OUT        where the bench writes its JSON (default BENCH_1.json)
#   MRSL_BENCH_TOLERANCE  gate tolerance as a fraction (default 0.25)
#   MRSL_QUALITY_TOLERANCE  quality-gate relative tolerance (default 0.10)
#   MRSL_SERVE_P99_US     serve sequential p99 ceiling in µs (default 50000)
#   MRSL_SERVE_QUEUE_P99_S  healthy-serve queue-wait p99 ceiling in seconds
#                           (default 0.25)
#   MRSL_ALLOC_INFER_CEIL   allocation ceiling (bytes/run) for the
#                           table2 infer micro (default 35000, ~3x the
#                           measured smoke-scale baseline with the
#                           compiled kernels on)
#   MRSL_ALLOC_GIBBS_CEIL   allocation ceiling (bytes/run) for the
#                           fig10 gibbs micro (default 21000)
#   MRSL_KERNEL_SPEEDUP     compiled-kernel speedup floor over the
#                           interpreted path for both inference micros
#                           (default 2.0; the gate also requires the
#                           differential check's bit_identical flag)
#   MRSL_BENCH_HISTORY      bench trajectory file (default
#                           BENCH_HISTORY.jsonl); every gated run
#                           appends one summary line, and the gate
#                           fails on sustained monotone drift across
#                           the trailing window
set -euo pipefail
cd "$(dirname "$0")/.."

GATE=1
REFRESH=0
case "${1:-}" in
  "") ;;
  --no-gate) GATE=0 ;;
  --refresh-baseline) GATE=0; REFRESH=1 ;;
  *) echo "usage: ci/run.sh [--no-gate|--refresh-baseline]" >&2; exit 2 ;;
esac

echo "== dune build =="
dune build

echo "== dune fmt =="
# ocamlformat is not pinned; dune-project enables formatting for dune
# files only, so this checks stanza formatting without the binary.
dune build @fmt

echo "== dune runtest =="
dune runtest

echo "== smoke bench =="
MRSL_SCALE="${MRSL_SCALE:-smoke}" dune exec bench/main.exe -- \
  micro kernel cache serve

echo "== bench gate =="
# The counter requirements prove the posterior-cache and serving hot
# paths actually ran (real hits, real dedup fan-out, a real hot swap);
# the latency ceiling is an absolute SLO on the serving artifact.  Both
# hold even with baseline comparisons off.  With the baseline on, the
# micro wall-time comparison and the serve req/s floor apply too.
GATE_BASELINE=()
if [ "$GATE" = 1 ]; then
  GATE_BASELINE=(--baseline bench/baseline/BENCH_1.json)
else
  echo "(baseline-relative comparisons skipped)"
fi
# The allocation ceilings gate the `resources` section: bytes allocated
# per run of the two inference micros must stay under ~3x the measured
# baseline with the compiled kernels on (the ROADMAP item-2 kernel work
# lowered them ~20x; these ceilings lock that in).  The kernel gate
# requires both inference micros to run at least MRSL_KERNEL_SPEEDUP
# times faster compiled than interpreted AND the differential check to
# report bit-identical posteriors, and the counter requirements prove
# the kernel actually compiled and served hits during the bench.  The
# history file accumulates a one-line summary (key walls, req/s, alloc
# bytes, git sha) per run and the gate fails on monotone drift across
# the trailing window.
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
dune exec ci/bench_gate.exe -- \
  ${GATE_BASELINE[@]+"${GATE_BASELINE[@]}"} \
  --current "${MRSL_BENCH_OUT:-BENCH_1.json}" \
  --require-counter cache.hits \
  --require-counter cache.dedup_fanout \
  --require-counter serve.requests \
  --require-counter serve.batches \
  --require-counter serve.reloads \
  --require-counter gc.major_collections \
  --require-counter kernel.compiles \
  --require-counter kernel.hits \
  --require-latency sequential "${MRSL_SERVE_P99_US:-50000}" \
  --require-histogram serve.queue_wait_seconds \
  --require-histogram serve.compute_seconds \
  --require-histogram serve.flush_wait_seconds \
  --histogram-p99 serve.queue_wait_seconds "${MRSL_SERVE_QUEUE_P99_S:-0.25}" \
  --max-shed-rate 0.01 \
  --max-alloc-bytes mrsl/table2/infer-best-averaged \
    "${MRSL_ALLOC_INFER_CEIL:-35000}" \
  --max-alloc-bytes mrsl/fig10/gibbs-run "${MRSL_ALLOC_GIBBS_CEIL:-21000}" \
  --min-speedup mrsl/table2/infer-best-averaged \
    "${MRSL_KERNEL_SPEEDUP:-2.0}" \
  --min-speedup mrsl/fig10/gibbs-run "${MRSL_KERNEL_SPEEDUP:-2.0}" \
  --history "${MRSL_BENCH_HISTORY:-BENCH_HISTORY.jsonl}" \
  --history-window 5 --history-append --history-sha "$GIT_SHA"

echo "== serve pass =="
# Dedicated serving suite: protocol round-trips, framing limits, batch
# dedup, admission control, epoch-swap invalidation.
dune exec test/main.exe -- test serving

# End-to-end smoke against a real daemon on a temp Unix socket: learn a
# model, serve it, and drive it with the stock client — liveness, exact
# and Gibbs inference, a malformed frame that must produce a structured
# error (not a crash), a >=100-request bit-identity verification with a
# hot model swap landing mid-stream, a Prometheus scrape, and a clean
# shutdown that removes the socket.
SERVE_DIR="$(mktemp -d)"
SERVE_SOCK="$SERVE_DIR/mrsl.sock"
SERVE_CSV="$SERVE_DIR/serve.csv"
SERVE_MODEL="$SERVE_DIR/model.bin"
SERVE_PID=""
cleanup_serve() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$SERVE_DIR"
}
trap cleanup_serve EXIT

# The daemon and its clients run concurrently, so use the built binary
# directly rather than racing several `dune exec` on the build lock.
MRSL_BIN=_build/default/bin/mrsl_cli.exe

# 400 tuples, 40% masked (>=100 incomplete), up to 2 missing per tuple
# so both the exact single-missing path and the Gibbs path serve.
"$MRSL_BIN" generate --network BN8 -n 400 \
  --mask-fraction 0.4 --max-missing 2 --seed 2011 -o "$SERVE_CSV"
"$MRSL_BIN" learn -i "$SERVE_CSV" -o "$SERVE_MODEL" > /dev/null

"$MRSL_BIN" serve --model "$SERVE_MODEL" \
  --socket "$SERVE_SOCK" --seed 2011 --samples 200 --burn-in 50 \
  > "$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!

mrsl_client() { "$MRSL_BIN" client "$@"; }

# The client retries connect, so this also waits for the daemon.
mrsl_client ping --socket "$SERVE_SOCK" | grep -q '"ok":true'

# Exact inference: first request misses the cache, the repeat hits it.
SINGLE_TUPLE="$(awk -F, 'NR>1 { n=0
  for (i=1; i<=NF; i++) if ($i == "?") n++
  if (n == 1) { print; exit } }' "$SERVE_CSV")"
mrsl_client infer --socket "$SERVE_SOCK" --tuple "$SINGLE_TUPLE" \
  | grep -q '"mode":"exact"'
mrsl_client infer --socket "$SERVE_SOCK" --tuple "$SINGLE_TUPLE" \
  | grep -q '"mode":"exact"'

# Gibbs inference: a tuple with two missing values.
GIBBS_TUPLE="$(awk -F, 'NR>1 { n=0
  for (i=1; i<=NF; i++) if ($i == "?") n++
  if (n >= 2) { print; exit } }' "$SERVE_CSV")"
if [ -n "$GIBBS_TUPLE" ]; then
  mrsl_client infer --socket "$SERVE_SOCK" --tuple "$GIBBS_TUPLE" \
    | grep -q '"mode":"gibbs"'
fi

# Malformed input must come back as a structured protocol error while
# the daemon keeps serving.
RAW_RESP="$(mrsl_client raw --socket "$SERVE_SOCK" 'this is not json')"
echo "$RAW_RESP" | grep -q '"ok":false'
echo "$RAW_RESP" | grep -q 'protocol.parse'
RAW_RESP="$(mrsl_client raw --socket "$SERVE_SOCK" '{"op":"no-such-op"}')"
echo "$RAW_RESP" | grep -q 'protocol.bad_request'
mrsl_client ping --socket "$SERVE_SOCK" | grep -q '"ok":true'

# Bit-identity: every incomplete tuple of the CSV is served and compared
# against local inference through the same entry points; a hot model
# swap is issued while the verification stream is in flight (same model
# file, so posteriors must stay bit-identical and nothing may drop).
# --no-kernel pins the LOCAL reference engine to the interpreted path
# while the daemon serves compiled — so this pass is also an end-to-end
# compiled-vs-interpreted differential over live traffic.
EPOCH_BEFORE="$(mrsl_client ping --socket "$SERVE_SOCK" \
  | grep -o '"epoch":[0-9]*' | head -1 | cut -d: -f2)"
mrsl_client verify --socket "$SERVE_SOCK" --model "$SERVE_MODEL" \
  -i "$SERVE_CSV" --seed 2011 --samples 200 --burn-in 50 --no-kernel &
VERIFY_PID=$!
sleep 0.3
mrsl_client reload --socket "$SERVE_SOCK" | grep -q '"ok":true'
wait "$VERIFY_PID"
EPOCH_AFTER="$(mrsl_client ping --socket "$SERVE_SOCK" \
  | grep -o '"epoch":[0-9]*' | head -1 | cut -d: -f2)"
if [ "$EPOCH_BEFORE" = "$EPOCH_AFTER" ]; then
  echo "hot swap did not advance the model epoch" >&2
  exit 1
fi

# Live Prometheus endpoint on the same socket, with real traffic counted.
SERVE_METRICS="$(mrsl_client metrics --socket "$SERVE_SOCK")"
echo "$SERVE_METRICS" | grep -q '^mrsl_serve_requests_total'
SERVE_REQS="$(echo "$SERVE_METRICS" \
  | awk '/^mrsl_serve_requests_total/ { print int($2) }')"
if [ -z "$SERVE_REQS" ] || [ "$SERVE_REQS" -lt 100 ]; then
  echo "expected >=100 served requests, saw '${SERVE_REQS:-none}'" >&2
  exit 1
fi
mrsl_client stats --socket "$SERVE_SOCK" | grep -q '"reloads":1'

# Graceful shutdown: acked, process exits cleanly, socket unlinked.
mrsl_client shutdown --socket "$SERVE_SOCK" | grep -q '"ok":true'
wait "$SERVE_PID"
SERVE_PID=""
if [ -e "$SERVE_SOCK" ]; then
  echo "server left its socket behind" >&2
  exit 1
fi
echo "serve e2e smoke passed ($SERVE_REQS requests, epoch $EPOCH_BEFORE -> $EPOCH_AFTER)"

echo "== serve observability pass =="
# Request-scoped tracing + structured access log on a live daemon:
# every admitted request becomes a trace flow that must terminate on
# the batch slice that served it (trace_check --require-serve-flows),
# the per-phase latency breakdown is queryable live over the wire
# (stats "phases" / client profile), and the access log is
# line-delimited JSON that always captures errors and sheds.
OBS_SOCK="$SERVE_DIR/mrsl-obs.sock"
OBS_TRACE="$SERVE_DIR/serve-trace.json"
OBS_LOG="$SERVE_DIR/access.log"
"$MRSL_BIN" serve --model "$SERVE_MODEL" \
  --socket "$OBS_SOCK" --seed 2011 --samples 200 --burn-in 50 \
  --trace "$OBS_TRACE" --access-log "$OBS_LOG" --slow-ms 100 \
  > "$SERVE_DIR/serve-obs.log" 2>&1 &
SERVE_PID=$!

mrsl_client ping --socket "$OBS_SOCK" | grep -q '"ok":true'
mrsl_client infer --socket "$OBS_SOCK" --tuple "$SINGLE_TUPLE" \
  | grep -q '"mode":"exact"'
mrsl_client infer --socket "$OBS_SOCK" --tuple "$SINGLE_TUPLE" \
  | grep -q '"mode":"exact"'
if [ -n "$GIBBS_TUPLE" ]; then
  mrsl_client infer --socket "$OBS_SOCK" --tuple "$GIBBS_TUPLE" \
    | grep -q '"mode":"gibbs"'
fi
# A zero-budget request is admitted (flow started) then shed at drain
# time — its flow must still balance via the deadline exemption, and
# the shed must always reach the access log regardless of sampling.
OBS_DEADLINE="$(mrsl_client infer --socket "$OBS_SOCK" \
  --tuple "$SINGLE_TUPLE" --deadline-ms 0 || true)"
echo "$OBS_DEADLINE" | grep -q 'serve.deadline_exceeded'
# Live per-phase latency breakdown over the wire.
mrsl_client stats --socket "$OBS_SOCK" | grep -q '"phases"'
mrsl_client profile --socket "$OBS_SOCK" | grep -q 'queue_wait'
mrsl_client shutdown --socket "$OBS_SOCK" | grep -q '"ok":true'
wait "$SERVE_PID"
SERVE_PID=""

dune exec ci/trace_check.exe -- --trace "$OBS_TRACE" \
  --require-cat serve --require-serve-flows
grep -q '"outcome":"deadline_exceeded"' "$OBS_LOG"
grep -q '"outcome":"ok"' "$OBS_LOG"
echo "serve observability pass passed"

echo "== resource observability pass =="
# The daemon installs a resource monitor at startup: /metrics must carry
# the GC/memory families (sampled at scrape time, so monotone across
# scrapes) and, once a multi-missing request has exercised the worker
# pool, the per-domain utilization gauge.  The stats op and client
# profile must carry the resources block over the wire.
RES_SOCK="$SERVE_DIR/mrsl-res.sock"
"$MRSL_BIN" serve --model "$SERVE_MODEL" \
  --socket "$RES_SOCK" --seed 2011 --samples 200 --burn-in 50 \
  > "$SERVE_DIR/serve-res.log" 2>&1 &
SERVE_PID=$!

mrsl_client ping --socket "$RES_SOCK" | grep -q '"ok":true'
mrsl_client infer --socket "$RES_SOCK" --tuple "$SINGLE_TUPLE" \
  | grep -q '"mode":"exact"'
if [ -n "$GIBBS_TUPLE" ]; then
  # Multi-missing inference runs the contained worker pool, which
  # publishes the per-domain utilization snapshot.
  mrsl_client infer --socket "$RES_SOCK" --tuple "$GIBBS_TUPLE" \
    | grep -q '"mode":"gibbs"'
fi

RES_METRICS_1="$(mrsl_client metrics --socket "$RES_SOCK")"
echo "$RES_METRICS_1" | grep -q '^mrsl_gc_major_collections_total'
echo "$RES_METRICS_1" | grep -q '^mrsl_gc_minor_collections_total'
echo "$RES_METRICS_1" | grep -q '^mrsl_mem_allocated_bytes_total'
echo "$RES_METRICS_1" | grep -q '^mrsl_mem_heap_bytes'
if [ -n "$GIBBS_TUPLE" ]; then
  echo "$RES_METRICS_1" | grep -q '^mrsl_domain_utilization{domain='
fi

# More traffic, then a second scrape: the GC counters are cumulative
# deltas and must never move backwards.
mrsl_client infer --socket "$RES_SOCK" --tuple "$SINGLE_TUPLE" > /dev/null
if [ -n "$GIBBS_TUPLE" ]; then
  mrsl_client infer --socket "$RES_SOCK" --tuple "$GIBBS_TUPLE" > /dev/null
fi
RES_METRICS_2="$(mrsl_client metrics --socket "$RES_SOCK")"
GC_MAJ_1="$(echo "$RES_METRICS_1" \
  | awk '/^mrsl_gc_major_collections_total/ { print int($2) }')"
GC_MAJ_2="$(echo "$RES_METRICS_2" \
  | awk '/^mrsl_gc_major_collections_total/ { print int($2) }')"
if [ -z "$GC_MAJ_1" ] || [ -z "$GC_MAJ_2" ] \
  || [ "$GC_MAJ_2" -lt "$GC_MAJ_1" ]; then
  echo "gc counter not monotone across scrapes: '$GC_MAJ_1' -> '$GC_MAJ_2'" >&2
  exit 1
fi

# The resources block is queryable over the wire.  Capture first, then
# grep: a multi-line writer piped straight into grep -q dies of SIGPIPE
# (exit 141 under pipefail) once grep exits at the first match.
RES_STATS="$(mrsl_client stats --socket "$RES_SOCK")"
echo "$RES_STATS" | grep -q '"resources"'
RES_PROFILE="$(mrsl_client profile --socket "$RES_SOCK")"
echo "$RES_PROFILE" | grep -q 'heap'

mrsl_client shutdown --socket "$RES_SOCK" | grep -q '"ok":true'
wait "$SERVE_PID"
SERVE_PID=""

# One-shot CLI resource report over the same CSV (text and JSON forms).
RES_REPORT="$("$MRSL_BIN" resources -i "$SERVE_CSV" --samples 100 --burn-in 20 \
  --domains 2 --seed 2011)"
echo "$RES_REPORT" | grep -q 'heap'
RES_REPORT_JSON="$("$MRSL_BIN" resources -i "$SERVE_CSV" --samples 100 --burn-in 20 \
  --domains 2 --seed 2011 --json)"
echo "$RES_REPORT_JSON" | grep -q '"gc"'
echo "resource observability pass passed (gc majors $GC_MAJ_1 -> $GC_MAJ_2)"

echo "== serve chaos pass =="
# In-process chaos harness: the bench artifact drives a live daemon
# through an accept storm, slow-loris drip, stalled writes against a
# tiny output ceiling, zero-budget deadlines, an overload burst past the
# shed watermark, and torn-frame/conn-drop injection — asserting the
# daemon stays live throughout, sheds with structured serve.* errors,
# and serves every survivor bit-identically to an uninjected local
# reference engine.
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_SERVE_CHAOS.json \
  dune exec bench/main.exe -- chaos

# Every defense and every injection site must actually have fired.
dune exec ci/bench_gate.exe -- --current BENCH_SERVE_CHAOS.json \
  --require-counter serve.conn_rejected \
  --require-counter serve.idle_killed \
  --require-counter serve.out_buf_killed \
  --require-counter serve.deadline_exceeded \
  --require-counter serve.shed \
  --require-counter serve.overloaded \
  --require-counter fault.injected.torn_frames \
  --require-counter fault.injected.stalled_writes \
  --require-counter fault.injected.conn_drops

# E2E: the real daemon under write-stall injection.  Stalls delay
# flushes but never corrupt them, so a patient pipelined client still
# gets bit-identical posteriors; a zero-budget probe must come back as
# a structured shed, and the injected stalls must show on /metrics.
CHAOS_SOCK="$SERVE_DIR/mrsl-chaos.sock"
MRSL_FAULT_SEED="${MRSL_FAULT_SEED:-2011}" \
MRSL_FAULT_STALL_WRITE_RATE=0.3 \
  "$MRSL_BIN" serve --model "$SERVE_MODEL" \
  --socket "$CHAOS_SOCK" --seed 2011 --samples 200 --burn-in 50 \
  > "$SERVE_DIR/serve-chaos.log" 2>&1 &
SERVE_PID=$!

mrsl_client ping --socket "$CHAOS_SOCK" | grep -q '"ok":true'

mrsl_client verify --socket "$CHAOS_SOCK" --model "$SERVE_MODEL" \
  -i "$SERVE_CSV" --seed 2011 --samples 200 --burn-in 50

DEADLINE_RESP="$(mrsl_client infer --socket "$CHAOS_SOCK" \
  --tuple "$SINGLE_TUPLE" --deadline-ms 0 || true)"
echo "$DEADLINE_RESP" | grep -q 'serve.deadline_exceeded'

mrsl_client metrics --socket "$CHAOS_SOCK" \
  | grep -q '^mrsl_fault_injected_stalled_writes_total'
mrsl_client ping --socket "$CHAOS_SOCK" | grep -q '"ok":true'

mrsl_client shutdown --socket "$CHAOS_SOCK" | grep -q '"ok":true'
wait "$SERVE_PID"
SERVE_PID=""
echo "serve chaos e2e passed (bit-identical under stalled writes)"

echo "== fault-injection pass =="
# Dedicated fault suite: containment determinism, degradation ladder,
# convergence retries, malformed-CSV corpus.
dune exec test/main.exe -- test faults

# Smoke bench under deterministic injection; the counter gate then
# proves every degradation/retry path actually fired and its telemetry
# landed in the JSON report.
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_FAULT.json \
MRSL_FAULT_SEED="${MRSL_FAULT_SEED:-2011}" \
MRSL_FAULT_TASK_RATE=0.25 \
MRSL_FAULT_CSV_RATE=0.25 \
MRSL_FAULT_NONCONV_RATE=1.0 \
MRSL_FAULT_VOTER_RATE=1.0 \
  dune exec bench/main.exe -- faults

dune exec ci/bench_gate.exe -- --current BENCH_FAULT.json \
  --require-counter fault.task_failures \
  --require-counter fault.tuples_skipped \
  --require-counter gibbs.retries \
  --require-counter degrade.nonconverged \
  --require-counter degrade.marginal_prior \
  --require-counter degrade.uniform \
  --require-counter csv.rows_skipped

echo "== quality pass =="
# Statistical quality artifact: shadow-masked calibration scores, drift,
# ensemble health; scale-invariant and a pure function of the seed.
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_QUALITY.json \
MRSL_QUALITY_OUT=QUALITY_1.json \
  dune exec bench/main.exe -- quality

if [ "$GATE" = 1 ]; then
  # The artifact must stay within tolerance of the committed baseline,
  # with scores.cells pinned exactly (shadow-mask determinism).
  dune exec ci/quality_gate.exe -- \
    --baseline bench/baseline/QUALITY_1.json \
    --current QUALITY_1.json \
    --tolerance "${MRSL_QUALITY_TOLERANCE:-0.10}" \
    --require-metric scores.brier \
    --require-metric scores.log_loss \
    --require-metric scores.ece \
    --require-metric scores.mce \
    --require-metric drift.js_max \
    --require-metric health.nonconverged_share

  # Negative test: an injected calibration regression (shadow posteriors
  # sharpened to overconfidence — served probabilities untouched) must
  # make the gate fail; --expect-fail inverts the exit code.
  MRSL_SCALE="${MRSL_SCALE:-smoke}" \
  MRSL_BENCH_OUT=BENCH_QUALITY_BAD.json \
  MRSL_QUALITY_OUT=QUALITY_BAD.json \
  MRSL_QUALITY_INJECT=overconfident \
    dune exec bench/main.exe -- quality

  dune exec ci/quality_gate.exe -- \
    --baseline bench/baseline/QUALITY_1.json \
    --current QUALITY_BAD.json \
    --expect-fail
else
  echo "== quality baseline gate skipped (no-gate) =="
fi

echo "== cache pass =="
# Dedicated cache suite: hit/miss/eviction accounting, epoch
# invalidation, dedup fan-out, cached-vs-uncached bit-identity.
dune exec test/main.exe -- test cache

# Negative check: disabling the cache must not change anything the CLI
# prints — estimates are bit-identical with and without the cache, and
# the CLI deliberately emits no cache statistics. The header's wall
# seconds are timing noise, not output: normalize them before diffing.
dune exec bin/mrsl_cli.exe -- infer -i examples/example.csv \
  --samples 100 --burn-in 20 --seed 2011 --cache \
  | sed -E 's/[0-9]+\.[0-9]+s/TIMEs/g' > INFER_CACHED.out
dune exec bin/mrsl_cli.exe -- infer -i examples/example.csv \
  --samples 100 --burn-in 20 --seed 2011 --no-cache \
  | sed -E 's/[0-9]+\.[0-9]+s/TIMEs/g' > INFER_UNCACHED.out
diff INFER_CACHED.out INFER_UNCACHED.out
echo "cache on/off outputs identical"

echo "== trace pass =="
# End-to-end traced inference on the bundled example. The artifact must
# parse as Chrome trace-event JSON with one track per domain, steal
# flow arrows, the Gibbs convergence timeline, at least one event in
# every instrumented phase, and zero dropped events.
dune exec bin/mrsl_cli.exe -- infer -i examples/example.csv \
  --samples 200 --burn-in 50 --domains 4 --seed 2011 \
  --trace TRACE_INFER.json --prometheus METRICS_INFER.prom > /dev/null
dune exec ci/trace_check.exe -- --trace TRACE_INFER.json --min-tracks 4 \
  --require-steal-flows --require-rhat-counters \
  --require-cat mine --require-cat lattice --require-cat voting \
  --require-cat gibbs --require-cat dag --require-cat io \
  --require-cat sched --require-cat steal

# Traced smoke bench: every CI run produces a parseable trace artifact,
# and the span gate proves the instrumented phases actually ran (plus
# the double-accounting guard: per-section counters start from zero).
MRSL_SCALE="${MRSL_SCALE:-smoke}" \
MRSL_BENCH_OUT=BENCH_TRACE.json \
MRSL_TRACE_OUT=TRACE_BENCH.json \
  dune exec bench/main.exe -- micro
dune exec ci/trace_check.exe -- --trace TRACE_BENCH.json \
  --require-cat gibbs --require-cat sched --require-cat dag \
  --require-cat learn
dune exec ci/bench_gate.exe -- --current BENCH_TRACE.json \
  --require-span model.learn \
  --require-span workload.run

if [ "$REFRESH" = 1 ]; then
  echo "== refreshing bench/baseline =="
  cp "${MRSL_BENCH_OUT:-BENCH_1.json}" bench/baseline/BENCH_1.json
  cp QUALITY_1.json bench/baseline/QUALITY_1.json
  echo "baseline refreshed; review and commit bench/baseline/*.json"
fi

echo "== CI pipeline passed =="
