(* Benchmark regression gate.

   Compares a freshly generated BENCH_*.json against the committed
   baseline and fails (exit 1) when any micro artifact's ns/run regressed
   by more than the tolerance (default 25%, override with
   MRSL_BENCH_TOLERANCE, e.g. MRSL_BENCH_TOLERANCE=0.4).

   Benchmarks faster than [min_ns] in the baseline are reported but never
   fail the gate: at sub-microsecond scales the shared-CI jitter exceeds
   any plausible regression signal.

   Usage: bench_gate --baseline bench/baseline/BENCH_1.json \
                     --current BENCH_1.json

   Fault-injection mode: --require-counter NAME (repeatable) asserts
   that telemetry counter NAME is present and positive in --current —
   the CI fault pass uses this to prove the degradation/retry paths
   actually fired. Likewise --require-span NAME (repeatable) asserts
   that telemetry span NAME is present with calls > 0 — the trace pass
   uses this to prove the instrumented phases actually ran. With at
   least one requirement of either kind, --baseline becomes optional.

   Serving-latency mode: --require-latency NAME CEIL_US (repeatable)
   asserts that the current report's serve block has a row NAME whose
   p99_us is at most CEIL_US — an absolute latency SLO, deliberately
   not baseline-relative (a latency budget does not move just because
   the baseline machine was fast). Counts as a requirement, so
   --baseline is optional with it. Independently, whenever BOTH reports
   carry a serve block, every baseline row's req_per_s is a floor:
   current throughput must stay within the tolerance of it, mirroring
   the micro ns/run gate in the opposite direction.

   Histogram mode: --require-histogram NAME (repeatable) asserts that
   telemetry histogram NAME is present with count > 0 in --current —
   the serve pass uses this to prove the per-phase latency
   decomposition actually observed requests. --histogram-p99 NAME
   CEIL (repeatable) additionally bounds the histogram's p99 by an
   absolute ceiling in the histogram's own units (seconds for the
   serve.*_seconds family). Both count as requirements, so --baseline
   is optional with them.

   Shed-rate mode: --max-shed-rate FRAC asserts that the fraction of
   serving work shed by the overload ladder —
   (serve.shed + serve.deadline_exceeded + serve.overloaded) /
   (serve.requests + serve.overloaded), absent counters reading 0 —
   stays at or below FRAC. The healthy serve pass runs it near 0 (the
   ladder must not fire under normal load); the chaos pass omits it
   (shedding under hostile load is the point). Counts as a
   requirement, so --baseline is optional with it.

   Allocation mode: --max-alloc-bytes NAME CEIL (repeatable) asserts
   that the current report's resources block has a row NAME whose
   alloc_bytes_per_run is at most CEIL — the absolute allocation budget
   ROADMAP item 2's compiled kernels must beat. Counts as a
   requirement, so --baseline is optional with it.

   Kernel-speedup mode: --min-speedup NAME RATIO (repeatable) asserts
   that the current report's kernel block has a row NAME whose
   compiled-vs-interpreted speedup is at least RATIO, AND that the
   block's bit_identical flag is true — a speedup bought by diverging
   from the interpreted oracle is a correctness bug, not a win. Counts
   as a requirement, so --baseline is optional with it.

   History mode: --history FILE names a BENCH_HISTORY.jsonl trajectory
   (one JSON object per bench run: git sha, scale, key micro walls,
   serve req/s, alloc bytes). --history-append appends the current
   report's summary to it (with --history-sha SHA recorded); with
   --history-window N the gate then fails when any tracked metric
   worsened strictly monotonically across the last N runs with a
   cumulative drift beyond 10% — slow regressions each below the
   per-run tolerance, invisible to the single checked-in baseline.
   Counts as a requirement.

   Double-accounting guard: when the current report carries a
   "parallel" block, every run in it must have counters_start_zero =
   true — per-run registries must begin empty even though the domain
   pool (and its DLS memo caches) persists across sections. *)

module Json = Mrsl.Telemetry.Json

let min_ns = 5_000. (* floor below which timing noise dominates *)

let tolerance =
  match Sys.getenv_opt "MRSL_BENCH_TOLERANCE" with
  | None -> 0.25
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ ->
          Printf.eprintf "bench_gate: bad MRSL_BENCH_TOLERANCE %S\n%!" s;
          exit 2)

let usage () =
  prerr_endline
    "usage: bench_gate [--baseline <BENCH.json>] --current <BENCH.json> \
     [--require-counter NAME]... [--require-span NAME]... \
     [--require-histogram NAME]... [--histogram-p99 NAME CEIL]... \
     [--require-latency NAME CEIL_US]... [--max-shed-rate FRAC] \
     [--max-alloc-bytes NAME CEIL]... [--min-speedup NAME RATIO]... \
     [--history FILE] [--history-window N] [--history-append] \
     [--history-sha SHA]";
  prerr_endline
    "  --baseline is required unless --require-counter, --require-span, \
     --require-histogram, --histogram-p99, --require-latency, \
     --max-shed-rate, --max-alloc-bytes, --min-speedup, or --history is \
     given";
  exit 2

(* History settings, set by parse_args and consumed straight from main. *)
let history_file = ref None
let history_window = ref None
let history_append = ref false
let history_sha = ref "unknown"

let parse_args () =
  let baseline = ref None
  and current = ref None
  and counters = ref []
  and spans = ref []
  and histograms = ref []
  and hist_p99s = ref []
  and latencies = ref []
  and allocs = ref []
  and speedups = ref []
  and shed = ref None in
  let rec go = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        go rest
    | "--current" :: v :: rest ->
        current := Some v;
        go rest
    | "--require-counter" :: v :: rest ->
        counters := v :: !counters;
        go rest
    | "--require-span" :: v :: rest ->
        spans := v :: !spans;
        go rest
    | "--require-histogram" :: v :: rest ->
        histograms := v :: !histograms;
        go rest
    | "--histogram-p99" :: name :: ceil :: rest -> (
        match float_of_string_opt ceil with
        | Some c when c > 0. ->
            hist_p99s := (name, c) :: !hist_p99s;
            go rest
        | _ ->
            Printf.eprintf "bench_gate: bad histogram p99 ceiling %S\n%!" ceil;
            exit 2)
    | "--require-latency" :: name :: ceil :: rest -> (
        match float_of_string_opt ceil with
        | Some c when c > 0. ->
            latencies := (name, c) :: !latencies;
            go rest
        | _ ->
            Printf.eprintf "bench_gate: bad latency ceiling %S\n%!" ceil;
            exit 2)
    | "--max-shed-rate" :: frac :: rest -> (
        match float_of_string_opt frac with
        | Some f when f >= 0. && f <= 1. ->
            shed := Some f;
            go rest
        | _ ->
            Printf.eprintf "bench_gate: bad shed-rate bound %S\n%!" frac;
            exit 2)
    | "--max-alloc-bytes" :: name :: ceil :: rest -> (
        match float_of_string_opt ceil with
        | Some c when c > 0. ->
            allocs := (name, c) :: !allocs;
            go rest
        | _ ->
            Printf.eprintf "bench_gate: bad alloc ceiling %S\n%!" ceil;
            exit 2)
    | "--min-speedup" :: name :: ratio :: rest -> (
        match float_of_string_opt ratio with
        | Some r when r > 0. ->
            speedups := (name, r) :: !speedups;
            go rest
        | _ ->
            Printf.eprintf "bench_gate: bad speedup ratio %S\n%!" ratio;
            exit 2)
    | "--history" :: v :: rest ->
        history_file := Some v;
        go rest
    | "--history-window" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 2 ->
            history_window := Some n;
            go rest
        | _ ->
            Printf.eprintf "bench_gate: bad history window %S (need >= 2)\n%!"
              v;
            exit 2)
    | "--history-append" :: rest ->
        history_append := true;
        go rest
    | "--history-sha" :: v :: rest ->
        history_sha := v;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match
    (!baseline, !current, List.rev !counters, List.rev !spans,
     List.rev !histograms, List.rev !hist_p99s, List.rev !latencies,
     List.rev !allocs, List.rev !speedups, !shed)
  with
  | baseline, Some c, req_c, req_s, req_h, req_hp, req_l, req_a, req_k, shed
    when req_c <> [] || req_s <> [] || req_h <> [] || req_hp <> []
         || req_l <> [] || req_a <> [] || req_k <> [] || shed <> None
         || !history_file <> None ->
      (baseline, c, req_c, req_s, req_h, req_hp, req_l, req_a, req_k, shed)
  | Some _, Some c, [], [], [], [], [], [], [], None ->
      (!baseline, c, [], [], [], [], [], [], [], None)
  | _ -> usage ()

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "bench_gate: cannot open %s: %s\n%!" path msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Json.of_string s
  with Json.Parse_error msg ->
    Printf.eprintf "bench_gate: %s is not valid JSON: %s\n%!" path msg;
    exit 2

(* name -> ns_per_run for every row of the "micro" array *)
let micro_rows json =
  match Json.member "micro" json with
  | Some (Json.List rows) ->
      List.filter_map
        (fun row ->
          match (Json.member "name" row, Json.member "ns_per_run" row) with
          | Some (Json.String name), Some v -> (
              match Json.to_float v with
              | ns -> Some (name, ns)
              | exception _ -> None)
          | _ -> None)
        rows
  | _ -> []

(* name -> value for every telemetry counter of the report *)
let counter_value json name =
  match Json.member "telemetry" json with
  | None -> None
  | Some t -> (
      match Json.member "counters" t with
      | Some (Json.Obj fields) -> (
          match List.assoc_opt name fields with
          | Some (Json.Int n) -> Some (float_of_int n)
          | Some (Json.Float f) -> Some f
          | _ -> None)
      | _ -> None)

(* one field of a telemetry histogram of the report, e.g.
   telemetry.histograms.NAME.count or .p99 *)
let histogram_field json name key =
  match Json.member "telemetry" json with
  | None -> None
  | Some t -> (
      match Json.member "histograms" t with
      | Some (Json.Obj fields) -> (
          match List.assoc_opt name fields with
          | Some hist -> (
              match Json.member key hist with
              | Some v -> ( try Some (Json.to_float v) with _ -> None)
              | None -> None)
          | None -> None)
      | _ -> None)

(* calls count of a telemetry span of the report *)
let span_calls json name =
  match Json.member "telemetry" json with
  | None -> None
  | Some t -> (
      match Json.member "spans" t with
      | Some (Json.Obj fields) -> (
          match List.assoc_opt name fields with
          | Some span -> (
              match Json.member "calls" span with
              | Some (Json.Int n) -> Some n
              | _ -> None)
          | None -> None)
      | _ -> None)

(* (name, req_per_s, p99_us) for every row of the serve block *)
let serve_rows json =
  match Json.member "serve" json with
  | None -> []
  | Some serve -> (
      match Json.member "rows" serve with
      | Some (Json.List rows) ->
          List.filter_map
            (fun row ->
              match Json.member "name" row with
              | Some (Json.String name) ->
                  let num key =
                    match Json.member key row with
                    | Some v -> ( try Some (Json.to_float v) with _ -> None)
                    | None -> None
                  in
                  Some (name, num "req_per_s", num "p99_us")
              | _ -> None)
            rows
      | _ -> [])

(* name -> alloc_bytes_per_run for every row of the resources block *)
let resources_rows json =
  match Json.member "resources" json with
  | None -> []
  | Some res -> (
      match Json.member "rows" res with
      | Some (Json.List rows) ->
          List.filter_map
            (fun row ->
              match
                (Json.member "name" row, Json.member "alloc_bytes_per_run" row)
              with
              | Some (Json.String name), Some v -> (
                  match Json.to_float v with
                  | b -> Some (name, b)
                  | exception _ -> None)
              | _ -> None)
            rows
      | _ -> [])

(* name -> speedup for every row of the kernel block *)
let kernel_rows json =
  match Json.member "kernel" json with
  | None -> []
  | Some k -> (
      match Json.member "rows" k with
      | Some (Json.List rows) ->
          List.filter_map
            (fun row ->
              match (Json.member "name" row, Json.member "speedup" row) with
              | Some (Json.String name), Some v -> (
                  match Json.to_float v with
                  | s -> Some (name, s)
                  | exception _ -> None)
              | _ -> None)
            rows
      | _ -> [])

(* the kernel block's differential-check verdict *)
let kernel_bit_identical json =
  match Json.member "kernel" json with
  | None -> None
  | Some k -> (
      match Json.member "bit_identical" k with
      | Some (Json.Bool b) -> Some b
      | _ -> None)

(* --- bench history (BENCH_HISTORY.jsonl) ------------------------------ *)

let read_history_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | line ->
          let acc =
            if String.trim line = "" then acc
            else
              match Json.of_string line with
              | j -> j :: acc
              | exception Json.Parse_error _ -> acc
          in
          go acc
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

(* One-line summary of a bench report: the trajectory's unit of record.
   Metric keys are namespaced so the drift check can infer direction —
   serve.*.req_per_s worsens downward, everything else upward. *)
let history_entry_of_report json sha =
  let metrics =
    List.map
      (fun (n, ns) -> ("micro." ^ n ^ ".ns_per_run", Json.Float ns))
      (micro_rows json)
    @ List.filter_map
        (fun (n, rps, _) ->
          Option.map (fun r -> ("serve." ^ n ^ ".req_per_s", Json.Float r)) rps)
        (serve_rows json)
    @ List.map
        (fun (n, b) -> ("alloc." ^ n ^ ".bytes_per_run", Json.Float b))
        (resources_rows json)
  in
  let carry key =
    match Json.member key json with Some v -> v | None -> Json.Null
  in
  Json.Obj
    [
      ("sha", Json.String sha);
      ("scale", carry "scale");
      ("generated_unix", carry "generated_unix");
      ("metrics", Json.Obj metrics);
    ]

let history_metrics entry =
  match Json.member "metrics" entry with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match Json.to_float v with
          | f -> Some (k, f)
          | exception _ -> None)
        kvs
  | _ -> []

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* Monotone-drift detector: a metric fails when it worsened at every
   step of the window AND the cumulative drift exceeds [drift_min] —
   the slow-regression pattern a single-baseline tolerance never sees.
   Strict per-step monotonicity keeps ordinary run-to-run noise out. *)
let drift_min = 0.10

let check_history_drift entries window =
  let n = List.length entries in
  if n < window then begin
    Printf.printf
      "  %d run(s) recorded, window %d not yet filled — drift check skipped\n"
      n window;
    0
  end
  else begin
    let tail =
      let rec drop k l = if k <= 0 then l else drop (k - 1) (List.tl l) in
      drop (n - window) entries
    in
    let series = List.map history_metrics tail in
    let keys = match series with last :: _ -> List.map fst last | [] -> [] in
    let keys =
      (* tracked = present in every entry of the window *)
      List.filter
        (fun k -> List.for_all (fun m -> List.mem_assoc k m) series)
        keys
    in
    let bad = ref 0 in
    List.iter
      (fun key ->
        let vals = List.map (List.assoc key) series in
        let worse a b =
          if contains_substring key "req_per_s" then b < a else b > a
        in
        let rec monotone = function
          | a :: (b :: _ as rest) -> worse a b && monotone rest
          | _ -> true
        in
        match (vals, List.rev vals) with
        | first :: _, last :: _ when first > 0. ->
            let drift = abs_float (last -. first) /. first in
            if monotone vals && drift > drift_min then begin
              incr bad;
              Printf.printf
                "  %-44s %12.1f -> %12.1f (%+.1f%% over %d runs)  FAIL \
                 (monotone drift)\n"
                key first last
                (100. *. (last -. first) /. first)
                window
            end
        | _ -> ())
      keys;
    if !bad = 0 then
      Printf.printf "  %d tracked metric(s), no monotone drift over %d runs\n"
        (List.length keys) window;
    !bad
  end

(* Double-accounting guard over the parallel block: the bench runs each
   domain-count configuration against a fresh registry, but the domain
   pool — and the per-domain DLS sampler/memo caches inside it — is
   reused across sections. Every run therefore records whether its
   per-section counters really started from zero; a [false] here means
   some section's counts leaked into another's. *)
let check_counters_start_zero json =
  match Json.member "parallel" json with
  | None -> 0
  | Some p -> (
      match Json.member "runs" p with
      | Some (Json.List runs) ->
          List.fold_left
            (fun bad run ->
              match Json.member "counters_start_zero" run with
              | Some (Json.Bool true) | None -> bad
              | _ ->
                  let domains =
                    match Json.member "domains" run with
                    | Some (Json.Int d) -> string_of_int d
                    | _ -> "?"
                  in
                  Printf.printf
                    "  parallel run (domains=%s): counters_start_zero FAIL\n"
                    domains;
                  bad + 1)
            0 runs
      | _ -> 0)

let () =
  let ( baseline_opt, current_path, required_counters, required_spans,
        required_histograms, required_hist_p99s, required_latencies,
        required_allocs, required_speedups, max_shed_rate ) =
    parse_args ()
  in
  let cur_json = load current_path in
  (let bad = check_counters_start_zero cur_json in
   if bad > 0 then (
     Printf.printf
       "%d parallel run(s) with non-zero per-section counters at start\n" bad;
     exit 1));
  (* Fault-pass assertions: required telemetry counters must be present
     and positive in the current report. *)
  if required_counters <> [] then begin
    Printf.printf "counter gate: %s\n" current_path;
    let bad = ref 0 in
    List.iter
      (fun name ->
        match counter_value cur_json name with
        | Some v when v > 0. ->
            Printf.printf "  %-28s %12.0f  ok\n" name v
        | Some v ->
            incr bad;
            Printf.printf "  %-28s %12.0f  FAIL (not positive)\n" name v
        | None ->
            incr bad;
            Printf.printf "  %-28s %12s  FAIL (missing)\n" name "-")
      required_counters;
    if !bad > 0 then (
      Printf.printf "\n%d required counter(s) missing or zero\n" !bad;
      exit 1);
    Printf.printf "all %d required counters present and positive\n\n"
      (List.length required_counters)
  end;
  (* Trace-pass assertions: required telemetry spans must be present
     with at least one call in the current report. *)
  if required_spans <> [] then begin
    Printf.printf "span gate: %s\n" current_path;
    let bad = ref 0 in
    List.iter
      (fun name ->
        match span_calls cur_json name with
        | Some n when n > 0 ->
            Printf.printf "  %-28s %12d calls  ok\n" name n
        | Some n ->
            incr bad;
            Printf.printf "  %-28s %12d calls  FAIL (no calls)\n" name n
        | None ->
            incr bad;
            Printf.printf "  %-28s %12s  FAIL (missing)\n" name "-")
      required_spans;
    if !bad > 0 then (
      Printf.printf "\n%d required span(s) missing or never called\n" !bad;
      exit 1);
    Printf.printf "all %d required spans present\n\n"
      (List.length required_spans)
  end;
  (* Observability assertions: required telemetry histograms must be
     present with at least one observation — proof that the per-phase
     latency decomposition actually saw requests. *)
  if required_histograms <> [] then begin
    Printf.printf "histogram gate: %s\n" current_path;
    let bad = ref 0 in
    List.iter
      (fun name ->
        match histogram_field cur_json name "count" with
        | Some c when c > 0. ->
            Printf.printf "  %-28s %12.0f observations  ok\n" name c
        | Some c ->
            incr bad;
            Printf.printf "  %-28s %12.0f observations  FAIL (empty)\n" name c
        | None ->
            incr bad;
            Printf.printf "  %-28s %12s  FAIL (missing)\n" name "-")
      required_histograms;
    if !bad > 0 then (
      Printf.printf "\n%d required histogram(s) missing or empty\n" !bad;
      exit 1);
    Printf.printf "all %d required histograms populated\n\n"
      (List.length required_histograms)
  end;
  (* Histogram p99 ceilings: absolute bounds in the histogram's own
     units (seconds for the serve.*_seconds family). *)
  if required_hist_p99s <> [] then begin
    Printf.printf "histogram p99 gate: %s\n" current_path;
    let bad = ref 0 in
    List.iter
      (fun (name, ceil) ->
        match
          (histogram_field cur_json name "count",
           histogram_field cur_json name "p99")
        with
        | Some c, Some p99 when c > 0. && p99 <= ceil ->
            Printf.printf "  %-28s p99 %12.6f <= %12.6f  ok\n" name p99 ceil
        | Some c, Some p99 when c > 0. ->
            incr bad;
            Printf.printf "  %-28s p99 %12.6f >  %12.6f  FAIL\n" name p99 ceil
        | Some _, _ ->
            incr bad;
            Printf.printf "  %-28s %29s  FAIL (empty)\n" name "-"
        | None, _ ->
            incr bad;
            Printf.printf "  %-28s %29s  FAIL (missing)\n" name "-")
      required_hist_p99s;
    if !bad > 0 then (
      Printf.printf "\n%d histogram p99 ceiling(s) failed\n" !bad;
      exit 1);
    Printf.printf "all %d histogram p99 ceilings met\n\n"
      (List.length required_hist_p99s)
  end;
  (* Serving SLO assertions: named serve rows must exist with a p99 at
     or below the given absolute ceiling. *)
  if required_latencies <> [] then begin
    Printf.printf "latency gate: %s\n" current_path;
    let rows = serve_rows cur_json in
    let bad = ref 0 in
    List.iter
      (fun (name, ceil_us) ->
        match List.find_opt (fun (n, _, _) -> n = name) rows with
        | Some (_, _, Some p99) when p99 <= ceil_us ->
            Printf.printf "  %-28s p99 %9.0f us <= %9.0f us  ok\n" name p99
              ceil_us
        | Some (_, _, Some p99) ->
            incr bad;
            Printf.printf "  %-28s p99 %9.0f us >  %9.0f us  FAIL\n" name p99
              ceil_us
        | Some (_, _, None) ->
            incr bad;
            Printf.printf "  %-28s %24s  FAIL (no p99_us)\n" name "-"
        | None ->
            incr bad;
            Printf.printf "  %-28s %24s  FAIL (missing row)\n" name "-")
      required_latencies;
    if !bad > 0 then (
      Printf.printf "\n%d serving latency requirement(s) failed\n" !bad;
      exit 1);
    Printf.printf "all %d serving latency ceilings met\n\n"
      (List.length required_latencies)
  end;
  (* Shed-rate ceiling: under a healthy load the overload ladder must
     stay quiet — sheds as a fraction of offered serving work. *)
  (match max_shed_rate with
  | None -> ()
  | Some bound ->
      let c name = Option.value ~default:0. (counter_value cur_json name) in
      let sheds =
        c "serve.shed" +. c "serve.deadline_exceeded" +. c "serve.overloaded"
      in
      let offered = c "serve.requests" +. c "serve.overloaded" in
      Printf.printf "shed gate: %s\n" current_path;
      if offered <= 0. then begin
        Printf.printf
          "  no serving traffic in the report (serve.requests = 0)  FAIL\n";
        exit 1
      end;
      let rate = sheds /. offered in
      if rate <= bound then
        Printf.printf "  shed rate %.4f (%.0f/%.0f) <= %.4f  ok\n\n" rate
          sheds offered bound
      else begin
        Printf.printf "  shed rate %.4f (%.0f/%.0f) >  %.4f  FAIL\n" rate
          sheds offered bound;
        exit 1
      end);
  (* Allocation ceilings: absolute byte budgets on the resources rows —
     the baseline ROADMAP item 2's compiled kernels must beat. *)
  if required_allocs <> [] then begin
    Printf.printf "alloc gate: %s\n" current_path;
    let rows = resources_rows cur_json in
    let bad = ref 0 in
    List.iter
      (fun (name, ceil) ->
        match List.assoc_opt name rows with
        | Some b when b <= ceil ->
            Printf.printf "  %-38s %14.0f B <= %14.0f B  ok\n" name b ceil
        | Some b ->
            incr bad;
            Printf.printf "  %-38s %14.0f B >  %14.0f B  FAIL\n" name b ceil
        | None ->
            incr bad;
            Printf.printf "  %-38s %31s  FAIL (missing row)\n" name "-")
      required_allocs;
    if !bad > 0 then (
      Printf.printf "\n%d allocation ceiling(s) failed\n" !bad;
      exit 1);
    Printf.printf "all %d allocation ceilings met\n\n"
      (List.length required_allocs)
  end;
  (* Kernel speedup floors: the compiled path must beat the interpreted
     one by the given ratio, and only a bit-identical win counts. *)
  if required_speedups <> [] then begin
    Printf.printf "kernel gate: %s\n" current_path;
    let rows = kernel_rows cur_json in
    let bad = ref 0 in
    (match kernel_bit_identical cur_json with
    | Some true -> Printf.printf "  %-38s %31s  ok\n" "bit_identical" "true"
    | Some false ->
        incr bad;
        Printf.printf "  %-38s %31s  FAIL (compiled diverged)\n"
          "bit_identical" "false"
    | None ->
        incr bad;
        Printf.printf "  %-38s %31s  FAIL (missing)\n" "bit_identical" "-");
    List.iter
      (fun (name, floor) ->
        match List.assoc_opt name rows with
        | Some s when s >= floor ->
            Printf.printf "  %-38s %13.2fx >= %13.2fx  ok\n" name s floor
        | Some s ->
            incr bad;
            Printf.printf "  %-38s %13.2fx <  %13.2fx  FAIL\n" name s floor
        | None ->
            incr bad;
            Printf.printf "  %-38s %31s  FAIL (missing row)\n" name "-")
      required_speedups;
    if !bad > 0 then (
      Printf.printf "\n%d kernel speedup requirement(s) failed\n" !bad;
      exit 1);
    Printf.printf "all %d kernel speedup floors met (bit-identical)\n\n"
      (List.length required_speedups)
  end;
  (* Bench-history trajectory: append the current run's summary, then
     check the last N entries for monotone drift. The append happens
     before the check (and before any exit) so the trajectory records
     every run, including the one that trips the gate. *)
  (match !history_file with
  | None -> ()
  | Some path ->
      let entry = history_entry_of_report cur_json !history_sha in
      let existing = read_history_lines path in
      if !history_append then begin
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
        in
        output_string oc (Json.to_string ~pretty:false entry);
        output_char oc '\n';
        close_out oc;
        Printf.printf "history: appended run %s to %s (%d run(s) recorded)\n"
          !history_sha path
          (List.length existing + 1)
      end;
      (match !history_window with
      | None -> ()
      | Some window ->
          Printf.printf "history gate: %s (window %d)\n" path window;
          let entries =
            if !history_append then existing @ [ entry ] else existing
          in
          let bad = check_history_drift entries window in
          if bad > 0 then begin
            Printf.printf "\n%d metric(s) drifting monotonically\n" bad;
            exit 1
          end);
      print_newline ());
  let baseline_path =
    match baseline_opt with
    | Some b -> b
    | None ->
        (* requirements-only invocation *)
        Printf.printf "no baseline given: micro comparison skipped\n";
        exit 0
  in
  let base = micro_rows (load baseline_path) in
  let cur = micro_rows cur_json in
  if base = [] then (
    Printf.eprintf "bench_gate: no micro rows in baseline %s\n%!" baseline_path;
    exit 2);
  if cur = [] then (
    Printf.eprintf "bench_gate: no micro rows in current %s\n%!" current_path;
    exit 2);
  Printf.printf "bench gate: %s vs %s (tolerance %.0f%%, floor %.0f ns)\n"
    current_path baseline_path (100. *. tolerance) min_ns;
  Printf.printf "%-38s| %12s | %12s | %8s | %s\n" "benchmark" "baseline ns"
    "current ns" "delta" "verdict";
  Printf.printf "%s\n" (String.make 92 '-');
  let failures = ref 0 and missing = ref 0 in
  List.iter
    (fun (name, base_ns) ->
      match List.assoc_opt name cur with
      | None ->
          incr missing;
          Printf.printf "%-38s| %12.1f | %12s | %8s | MISSING\n" name base_ns
            "-" "-"
      | Some cur_ns ->
          let delta = (cur_ns -. base_ns) /. base_ns in
          let verdict =
            if delta > tolerance && base_ns >= min_ns then (
              incr failures;
              "FAIL")
            else if delta > tolerance then "noisy (below floor)"
            else if delta < -.tolerance then "improved"
            else "ok"
          in
          Printf.printf "%-38s| %12.1f | %12.1f | %+7.1f%% | %s\n" name base_ns
            cur_ns (100. *. delta) verdict)
    base;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base) then
        Printf.printf "%-38s| %12s | %12s | %8s | new (not gated)\n" name "-"
          "-" "-")
    cur;
  (* Serving throughput floor: the req/s of every baseline serve row must
     not drop by more than the tolerance. Latency ceilings stay absolute
     (--require-latency); throughput is relative, like the micro gate. *)
  let base_serve = serve_rows (load baseline_path) in
  let cur_serve = serve_rows cur_json in
  if base_serve <> [] then begin
    Printf.printf "\nserve gate (req/s floor, tolerance %.0f%%):\n"
      (100. *. tolerance);
    List.iter
      (fun (name, base_rps, _) ->
        match base_rps with
        | None -> ()
        | Some base_rps -> (
            match List.find_opt (fun (n, _, _) -> n = name) cur_serve with
            | Some (_, Some cur_rps, _) ->
                let floor = base_rps *. (1. -. tolerance) in
                if cur_rps >= floor then
                  Printf.printf
                    "  serve/%-27s| %10.0f rps vs baseline %10.0f | ok\n" name
                    cur_rps base_rps
                else begin
                  incr failures;
                  Printf.printf
                    "  serve/%-27s| %10.0f rps vs baseline %10.0f | FAIL \
                     (floor %.0f)\n"
                    name cur_rps base_rps floor
                end
            | _ ->
                incr missing;
                Printf.printf "  serve/%-27s| %10s | MISSING\n" name "-"))
      base_serve
  end;
  if !missing > 0 then (
    Printf.printf "\n%d baseline benchmark(s) missing from current run\n"
      !missing;
    exit 1);
  if !failures > 0 then (
    Printf.printf "\n%d benchmark(s) regressed beyond tolerance\n" !failures;
    exit 1);
  Printf.printf "\nall benchmarks within tolerance\n"
