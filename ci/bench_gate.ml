(* Benchmark regression gate.

   Compares a freshly generated BENCH_*.json against the committed
   baseline and fails (exit 1) when any micro artifact's ns/run regressed
   by more than the tolerance (default 25%, override with
   MRSL_BENCH_TOLERANCE, e.g. MRSL_BENCH_TOLERANCE=0.4).

   Benchmarks faster than [min_ns] in the baseline are reported but never
   fail the gate: at sub-microsecond scales the shared-CI jitter exceeds
   any plausible regression signal.

   Usage: bench_gate --baseline bench/baseline/BENCH_1.json \
                     --current BENCH_1.json *)

module Json = Mrsl.Telemetry.Json

let min_ns = 5_000. (* floor below which timing noise dominates *)

let tolerance =
  match Sys.getenv_opt "MRSL_BENCH_TOLERANCE" with
  | None -> 0.25
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ ->
          Printf.eprintf "bench_gate: bad MRSL_BENCH_TOLERANCE %S\n%!" s;
          exit 2)

let usage () =
  prerr_endline
    "usage: bench_gate --baseline <BENCH.json> --current <BENCH.json>";
  exit 2

let parse_args () =
  let baseline = ref None and current = ref None in
  let rec go = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        go rest
    | "--current" :: v :: rest ->
        current := Some v;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match (!baseline, !current) with
  | Some b, Some c -> (b, c)
  | _ -> usage ()

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "bench_gate: cannot open %s: %s\n%!" path msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Json.of_string s
  with Json.Parse_error msg ->
    Printf.eprintf "bench_gate: %s is not valid JSON: %s\n%!" path msg;
    exit 2

(* name -> ns_per_run for every row of the "micro" array *)
let micro_rows json =
  match Json.member "micro" json with
  | Some (Json.List rows) ->
      List.filter_map
        (fun row ->
          match (Json.member "name" row, Json.member "ns_per_run" row) with
          | Some (Json.String name), Some v -> (
              match Json.to_float v with
              | ns -> Some (name, ns)
              | exception _ -> None)
          | _ -> None)
        rows
  | _ -> []

let () =
  let baseline_path, current_path = parse_args () in
  let base = micro_rows (load baseline_path) in
  let cur = micro_rows (load current_path) in
  if base = [] then (
    Printf.eprintf "bench_gate: no micro rows in baseline %s\n%!" baseline_path;
    exit 2);
  if cur = [] then (
    Printf.eprintf "bench_gate: no micro rows in current %s\n%!" current_path;
    exit 2);
  Printf.printf "bench gate: %s vs %s (tolerance %.0f%%, floor %.0f ns)\n"
    current_path baseline_path (100. *. tolerance) min_ns;
  Printf.printf "%-38s| %12s | %12s | %8s | %s\n" "benchmark" "baseline ns"
    "current ns" "delta" "verdict";
  Printf.printf "%s\n" (String.make 92 '-');
  let failures = ref 0 and missing = ref 0 in
  List.iter
    (fun (name, base_ns) ->
      match List.assoc_opt name cur with
      | None ->
          incr missing;
          Printf.printf "%-38s| %12.1f | %12s | %8s | MISSING\n" name base_ns
            "-" "-"
      | Some cur_ns ->
          let delta = (cur_ns -. base_ns) /. base_ns in
          let verdict =
            if delta > tolerance && base_ns >= min_ns then (
              incr failures;
              "FAIL")
            else if delta > tolerance then "noisy (below floor)"
            else if delta < -.tolerance then "improved"
            else "ok"
          in
          Printf.printf "%-38s| %12.1f | %12.1f | %+7.1f%% | %s\n" name base_ns
            cur_ns (100. *. delta) verdict)
    base;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base) then
        Printf.printf "%-38s| %12s | %12s | %8s | new (not gated)\n" name "-"
          "-" "-")
    cur;
  if !missing > 0 then (
    Printf.printf "\n%d baseline benchmark(s) missing from current run\n"
      !missing;
    exit 1);
  if !failures > 0 then (
    Printf.printf "\n%d benchmark(s) regressed beyond %.0f%%\n" !failures
      (100. *. tolerance);
    exit 1);
  Printf.printf "\nall benchmarks within tolerance\n"
