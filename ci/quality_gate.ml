(* Statistical quality gate.

   Compares a freshly generated QUALITY_*.json (the bench "quality"
   artifact / [mrsl quality --json] schema) against the committed
   baseline and fails (exit 1) when any gated metric got {e worse} than
   the baseline beyond tolerance. "Worse" is directional: most metrics
   (Brier, log loss, ECE, MCE, drift, degradation shares) regress
   upward, top-1 accuracy regresses downward; improvements never fail.

   A metric regresses when it is worse than the baseline by more than
     max(tolerance · |baseline|, tolerance-abs)
   — the relative band handles well-separated scores, the absolute
   floor keeps near-zero baselines (drift on a healthy model, shares
   at 0) from demanding infinite precision.

   [scores.cells] is pinned {e exactly}: shadow masking is a pure
   function of (seed, row, attr), so any cell-count difference means
   the run is not comparable (different seed, data, or a determinism
   bug), which is a gate error (exit 2), not a tolerable drift.

   Usage:
     quality_gate --baseline bench/baseline/QUALITY_1.json \
                  --current QUALITY_1.json
       [--tolerance 0.10] [--tolerance-abs 0.02]
       [--metric-tolerance scores.ece=0.05]...   (absolute, per metric)
       [--require-metric drift.js_max]...        (present + finite)
       [--expect-fail]                           (invert: exit 0 iff the
                                                  gate would have failed
                                                  — the CI negative test)

   Environment: MRSL_QUALITY_TOLERANCE / MRSL_QUALITY_TOLERANCE_ABS
   override the defaults when the flags are absent. *)

module Json = Mrsl.Telemetry.Json

type direction = Higher_is_worse | Lower_is_worse

(* dotted path, direction *)
let gated =
  [
    ("scores.brier", Higher_is_worse);
    ("scores.log_loss", Higher_is_worse);
    ("scores.ece", Higher_is_worse);
    ("scores.mce", Higher_is_worse);
    ("scores.top1_accuracy", Lower_is_worse);
    ("drift.js_max", Higher_is_worse);
    ("drift.hellinger_max", Higher_is_worse);
    ("health.root_only_share", Higher_is_worse);
    ("health.degrade_marginal_share", Higher_is_worse);
    ("health.degrade_uniform_share", Higher_is_worse);
    ("health.nonconverged_share", Higher_is_worse);
  ]

let env_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f >= 0. -> f
      | _ ->
          Printf.eprintf "quality_gate: bad %s %S\n%!" name s;
          exit 2)

let usage () =
  prerr_endline
    "usage: quality_gate --baseline <QUALITY.json> --current <QUALITY.json> \
     [--tolerance F] [--tolerance-abs F] [--metric-tolerance PATH=F]... \
     [--require-metric PATH]... [--expect-fail]";
  exit 2

type args = {
  baseline : string;
  current : string;
  tolerance : float;
  tolerance_abs : float;
  per_metric : (string * float) list;  (* absolute overrides *)
  required : string list;
  expect_fail : bool;
}

let parse_args () =
  let baseline = ref None
  and current = ref None
  and tolerance = ref (env_float "MRSL_QUALITY_TOLERANCE" 0.10)
  and tolerance_abs = ref (env_float "MRSL_QUALITY_TOLERANCE_ABS" 0.02)
  and per_metric = ref []
  and required = ref []
  and expect_fail = ref false in
  let float_arg flag v =
    match float_of_string_opt v with
    | Some f when f >= 0. -> f
    | _ ->
        Printf.eprintf "quality_gate: bad %s %S\n%!" flag v;
        exit 2
  in
  let rec go = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        go rest
    | "--current" :: v :: rest ->
        current := Some v;
        go rest
    | "--tolerance" :: v :: rest ->
        tolerance := float_arg "--tolerance" v;
        go rest
    | "--tolerance-abs" :: v :: rest ->
        tolerance_abs := float_arg "--tolerance-abs" v;
        go rest
    | "--metric-tolerance" :: v :: rest ->
        (match String.index_opt v '=' with
        | Some i ->
            let path = String.sub v 0 i
            and f =
              float_arg "--metric-tolerance"
                (String.sub v (i + 1) (String.length v - i - 1))
            in
            per_metric := (path, f) :: !per_metric
        | None ->
            Printf.eprintf
              "quality_gate: --metric-tolerance wants PATH=FLOAT, got %S\n%!" v;
            exit 2);
        go rest
    | "--require-metric" :: v :: rest ->
        required := v :: !required;
        go rest
    | "--expect-fail" :: rest ->
        expect_fail := true;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match (!baseline, !current) with
  | Some baseline, Some current ->
      {
        baseline;
        current;
        tolerance = !tolerance;
        tolerance_abs = !tolerance_abs;
        per_metric = List.rev !per_metric;
        required = List.rev !required;
        expect_fail = !expect_fail;
      }
  | _ -> usage ()

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "quality_gate: cannot open %s: %s\n%!" path msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Json.of_string s
  with Json.Parse_error msg ->
    Printf.eprintf "quality_gate: %s is not valid JSON: %s\n%!" path msg;
    exit 2

(* dotted-path lookup: "scores.brier" -> member "scores" -> "brier" *)
let lookup json path =
  let rec go json = function
    | [] -> Some json
    | key :: rest -> (
        match Json.member key json with
        | Some v -> go v rest
        | None -> None)
  in
  go json (String.split_on_char '.' path)

let lookup_float json path =
  match lookup json path with
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | Some Json.Null -> Some Float.nan (* serialized non-finite *)
  | _ -> None

let () =
  let a = parse_args () in
  let base = load a.baseline and cur = load a.current in
  Printf.printf
    "quality gate: %s vs %s (tolerance %.0f%% rel, %.3g abs)%s\n" a.current
    a.baseline (100. *. a.tolerance) a.tolerance_abs
    (if a.expect_fail then " [expect-fail]" else "");
  let errors = ref 0 and failures = ref 0 in
  (* Determinism guard: the shadow-cell count must match exactly. *)
  (match (lookup_float base "scores.cells", lookup_float cur "scores.cells") with
  | Some b, Some c when b = c && Float.is_finite c ->
      Printf.printf "  %-30s %12.0f  ok (exact)\n" "scores.cells" c
  | Some b, Some c ->
      incr errors;
      Printf.printf
        "  %-30s %12.0f  ERROR (baseline %.0f — runs not comparable)\n"
        "scores.cells" c b
  | _ ->
      incr errors;
      Printf.printf "  %-30s %12s  ERROR (missing)\n" "scores.cells" "-");
  (* Presence assertions. *)
  List.iter
    (fun path ->
      match lookup_float cur path with
      | Some v when Float.is_finite v ->
          Printf.printf "  %-30s %12.5f  ok (required)\n" path v
      | Some _ ->
          incr failures;
          Printf.printf "  %-30s %12s  FAIL (not finite)\n" path "-"
      | None ->
          incr failures;
          Printf.printf "  %-30s %12s  FAIL (missing)\n" path "-")
    a.required;
  (* Directional regression checks. *)
  List.iter
    (fun (path, direction) ->
      match (lookup_float base path, lookup_float cur path) with
      | Some b, Some c when Float.is_finite b && Float.is_finite c ->
          let band =
            match List.assoc_opt path a.per_metric with
            | Some abs -> abs
            | None -> Float.max (a.tolerance *. Float.abs b) a.tolerance_abs
          in
          let worse =
            match direction with
            | Higher_is_worse -> c -. b
            | Lower_is_worse -> b -. c
          in
          if worse > band then begin
            incr failures;
            Printf.printf "  %-30s %12.5f  FAIL (baseline %.5f, band %.3g)\n"
              path c b band
          end
          else
            Printf.printf "  %-30s %12.5f  ok (baseline %.5f)\n" path c b
      | Some _, Some _ ->
          incr failures;
          Printf.printf "  %-30s %12s  FAIL (non-finite)\n" path "-"
      | None, _ ->
          (* metric absent from baseline: report, never gate — lets the
             schema grow without invalidating old baselines *)
          Printf.printf "  %-30s %12s  new (not gated)\n" path "-"
      | _, None ->
          incr failures;
          Printf.printf "  %-30s %12s  FAIL (missing from current)\n" path "-")
    gated;
  if !errors > 0 then begin
    Printf.printf "\n%d gate error(s): runs not comparable\n" !errors;
    exit 2
  end;
  if a.expect_fail then
    if !failures > 0 then begin
      Printf.printf
        "\nexpected failure observed (%d metric(s) regressed): negative test \
         passes\n"
        !failures;
      exit 0
    end
    else begin
      Printf.printf
        "\nexpected the gate to fail but every metric passed: injected \
         regression not detected\n";
      exit 1
    end
  else if !failures > 0 then begin
    Printf.printf "\n%d quality metric(s) regressed or missing\n" !failures;
    exit 1
  end
  else Printf.printf "\nall quality metrics within tolerance\n"
