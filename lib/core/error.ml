type class_ = Input | Model | Inference | Scheduler

type t = {
  class_ : class_;
  code : string;
  message : string;
  context : (string * string) list;
}

exception Mrsl_error of t

let make ?(context = []) class_ ~code message =
  { class_; code; message; context }

let class_name = function
  | Input -> "input"
  | Model -> "model"
  | Inference -> "inference"
  | Scheduler -> "scheduler"

let to_string e =
  let ctx =
    match e.context with
    | [] -> ""
    | kvs ->
        " ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "]"
  in
  Printf.sprintf "%s/%s: %s%s" (class_name e.class_) e.code e.message ctx

let pp ppf e = Format.pp_print_string ppf (to_string e)
let raise_ e = raise (Mrsl_error e)

let of_exn = function
  | Mrsl_error e -> e
  | Invalid_argument msg -> make Inference ~code:"invalid_argument" msg
  | Failure msg -> make Input ~code:"failure" msg
  | e -> make Scheduler ~code:"exception" (Printexc.to_string e)

let guard f =
  match f () with
  | v -> Ok v
  | exception Mrsl_error e -> Result.Error e
  | exception ((Stdlib.Stack_overflow | Stdlib.Out_of_memory) as e) -> raise e
  | exception e -> Result.Error (of_exn e)

let () =
  Printexc.register_printer (function
    | Mrsl_error e -> Some ("Mrsl.Error: " ^ to_string e)
    | _ -> None)
