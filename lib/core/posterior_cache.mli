(** Evidence-keyed posterior cache for the serving hot path.

    Algorithm 2's ensemble vote is a pure function of the model and the
    queried tuple's {e observed evidence signature}: the voter set is
    determined by which rule bodies hold among the tuple's known values,
    and — for a fixed lattice — only the attributes mentioned by at least
    one rule body ({!Lattice.body_attrs}) can change it. Real workloads
    contain many tuples sharing identical known-value contexts, so every
    repeated signature re-pays the lattice match + vote for nothing.
    This module memoizes those posteriors across tuples, samplers, runs
    and domains.

    {2 Key derivation}

    A cache key is [(model epoch, attribute, voting method, signature)]
    where the signature is the tuple's cells restricted to the target
    attribute's lattice-relevant context: one digit per
    [Lattice.body_attrs (Model.lattice model a)] entry, [0] for a missing
    cell and [v + 1] for a known value [v] (a mixed-radix digit string in
    radix [cardinality + 1]). Two tuples that agree on those cells receive
    {e bit-identical} posteriors from {!Infer_single.infer}, so a cached
    distribution is exactly the value the uncached computation would have
    produced — the cache can only change wall time, never output.

    {2 Invalidation}

    The model {e epoch} ({!Model.epoch} — process-unique, assigned at
    construction) is part of every key, so a retrained, reloaded or
    otherwise replaced model can never be served another model's
    posteriors: its keys simply never match. Stale-epoch entries are
    reclaimed lazily by LRU eviction, or eagerly via {!invalidate_stale}.

    {2 Concurrency and budget}

    The table is sharded (key-hash → shard), each shard a mutex-protected
    hash table threaded onto an intrusive LRU list, evicted
    least-recently-used-first whenever the shard exceeds its slice of the
    byte budget. All operations are domain-safe; a lookup takes exactly
    one shard lock.

    {2 Fault injection}

    While {!Fault_inject} voter drops are active
    ([voter_drop_rate > 0]) the cache is bypassed entirely — degraded
    posteriors are never stored and never served, so disabling the fault
    configuration cannot leak a degraded distribution into clean runs
    (the fault config can change without a model-epoch change, so keying
    alone would not protect this). *)

type t

val default_max_bytes : int
(** 64 MiB. *)

val create : ?shards:int -> ?max_bytes:int -> ?telemetry:Telemetry.t ->
  unit -> t
(** [shards] (default 16, rounded up to a power of two) independent
    mutex-protected LRU shards; [max_bytes] (default
    {!default_max_bytes}) total byte budget, split evenly across shards.
    [telemetry] (default {!Telemetry.global}) receives the [cache.*]
    counters, gauges and the lookup-latency histogram. *)

(** {1 Evidence codes}

    The wrapping full-traversal mixed-radix codes shared with the
    fault-injection sites (ISSUE: [Stdlib.Hashtbl.hash]'s bounded
    traversal made wide tuples systematically collide). *)

val tuple_code : cards:int array -> Relation.Tuple.t -> int
(** Mixed-radix code of every cell of the tuple — digit [0] for a
    missing cell, [v + 1] for value [v], radix [cards.(i) + 1] — folded
    through a splitmix64 finalizer per cell so {e every} cell influences
    the result even when the exact code would overflow (unlike
    [Stdlib.Hashtbl.hash], whose bounded traversal ignores the tail of
    wide tuples). Raises [Invalid_argument] on a [cards]/tuple arity
    mismatch. *)

val evidence_key : cards:int array -> Relation.Tuple.t -> int -> int
(** [tuple_code] further combined with the target attribute index — the
    stable per-task key used by the voter-drop and forced-nonconvergence
    fault sites. *)

val method_code : Voting.method_ -> int
(** Dense injective encoding of the four voting methods (0..3). *)

val signature : Model.t -> Relation.Tuple.t -> int -> int array
(** The lattice-relevant evidence digits described above — exposed for
    tests and key inspection. *)

(** {1 Lookup} *)

val find : t -> Model.t -> method_:Voting.method_ ->
  Relation.Tuple.t -> int -> Prob.Dist.t option
(** Lookup-only probe: the cached posterior for the task's evidence
    signature, or [None] without computing anything. The serving
    engine's overload ladder leans on this for its cache-hit-only rung —
    under pressure a hit is served for free and a miss is shed rather
    than computed. Counts [cache.hits] / [cache.misses] and observes
    [cache.lookup_seconds]; returns [None] unconditionally (nothing
    counted) while voter-drop fault injection is active, so a degraded
    generation can never satisfy a pressure probe. *)

val find_or_compute : t -> Model.t -> method_:Voting.method_ ->
  Relation.Tuple.t -> int -> (unit -> Prob.Dist.t) -> Prob.Dist.t
(** [find_or_compute t model ~method_ tup a f] — the cached posterior for
    the task's evidence signature, or [f ()] computed once and stored.
    Counts [cache.hits] / [cache.misses] and observes
    [cache.lookup_seconds]; bypasses the cache (straight to [f ()],
    nothing counted or stored) while voter-drop fault injection is
    active. *)

val prewarm : t -> Model.t -> method_:Voting.method_ ->
  compute:(Relation.Tuple.t -> int -> Prob.Dist.t) ->
  Relation.Tuple.t list -> int * int
(** Workload-level request dedup: walk every [(tuple, missing attribute)]
    task of the workload in order, group tasks by cache key, compute each
    {e distinct} posterior once (via [compute], stored in the cache) and
    let the run's own lookups fan the result out. Returns
    [(distinct, fanout)] where [fanout = tasks − distinct] is the number
    of tasks served by another task's computation; adds it to the
    [cache.dedup_fanout] counter. Emits one [cache.prewarm] trace slice.
    A no-op (returning [(0, 0)]) while voter-drop injection is active. *)

(** {1 Maintenance} *)

val invalidate_stale : t -> current:Model.t -> unit
(** Eagerly drop every entry whose epoch differs from [current]'s.
    Correctness never depends on calling this — epochs are part of the
    key — it only releases memory sooner than LRU churn would. *)

val clear : t -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  dedup_fanout : int;
  entries : int;
  bytes : int;
}

val stats : t -> stats
(** Cumulative counters plus current occupancy, summed across shards. *)

val hit_rate : t -> float
(** hits / (hits + misses), or [0.] before any probe. *)

val reachable_bytes : t -> int
(** Measured heap footprint: [Obj.reachable_words] over every shard
    table (each walked under its lock), in bytes. The accounted budget
    ({!stats}[.bytes], maintained from the per-entry estimate) must stay
    at or above this so the byte budget is a true upper bound — the
    resources report and the test suite cross-check the two. O(entries);
    meant for stats/report paths, not the serving hot path. *)

val publish : t -> unit
(** Refresh the [cache.bytes] / [cache.entries] gauges in the cache's
    telemetry registry (counters and the latency histogram are recorded
    live). *)
