(** Statistical quality observability: online calibration, drift, and
    ensemble-health monitoring.

    The paper evaluates MRSL once, offline, by KL divergence against the
    true BN posterior (Section VI). A system that {e serves} derived
    probabilities needs the same question answered continuously: are the
    probabilities still trustworthy? This module turns the paper's
    one-shot evaluation metrics into always-on monitored quantities,
    layered on the existing {!Telemetry} / {!Trace} stack:

    - a {b shadow-masking evaluator}: a deterministic, seeded fraction of
      {e known} cells is masked, re-inferred single-attribute style, and
      the posterior scored against the held-out truth — Brier score, log
      loss, top-1 accuracy;
    - an {b online calibration monitor}: fixed-width reliability bins
      over top-1 confidence yielding ECE / MCE and an exportable
      reliability-diagram table;
    - a {b drift detector}: the complete part's empirical marginal per
      attribute (the lattice root's CPD) against the aggregate inferred
      posterior, as Jensen–Shannon / Hellinger / ε-smoothed KL
      ({!Prob.Divergence}), thresholded into alerts;
    - {b ensemble-health counters} per MRSL stratum: voters per task,
      voter-specificity strata, root-only tasks, degradation-ladder rung
      shares ({!Infer_single}'s [degrade.*] path), and the Gibbs
      nonconvergence share ([degrade.nonconverged] / [gibbs.checked]).

    {b Observation only.} A monitor never feeds back into inference: it
    consumes no inference RNG, shares no sampler state, and all hooks
    ({!Workload.run}'s [?quality], {!shadow_eval}) run outside the
    sampling loops. A quality-monitored run is bit-identical to an
    unmonitored one (asserted by the test suite).

    {b Determinism.} Cell masking is a pure function of
    [(config.seed, row, attr)] — independent of call order, domain
    count, and scheduler interleavings — so two monitors with equal
    configs over equal data produce identical reports, which is what
    lets CI gate the [QUALITY_*.json] artifact against a checked-in
    baseline ([ci/quality_gate.exe]). *)

type config = {
  mask_fraction : float;
      (** fraction of known cells shadow-masked, in [0, 1] (0.2) *)
  seed : int;  (** masking-decision seed (2011) *)
  bins : int;  (** fixed-width reliability bins (10) *)
  drift_threshold : float;
      (** per-attribute JS divergence above which drift alerts (0.05) *)
  sharpen : float;
      (** posterior temperature applied {e to the shadow copies only}
          before scoring: every probability is raised to this power and
          renormalized. 1.0 (default) is the identity; > 1 produces
          overconfident predictions. This is the calibration-regression
          injection hook the CI negative test uses — it never touches
          the probabilities a run actually returns. *)
}

val default_config : config

type t
(** A quality monitor: scoring, calibration, drift, and health
    accumulators plus a telemetry sink. Internally locked — safe to
    share across domains, though the standard hooks only observe from
    the orchestrating domain. *)

val create : ?config:config -> ?telemetry:Telemetry.t -> unit -> t
(** [telemetry] (default {!Telemetry.global}) receives the [quality.*]
    counters/histograms as observations stream in and the [quality.*]
    gauges on {!publish}. Raises [Invalid_argument] on a mask fraction
    outside [0, 1], [bins < 1], or [sharpen <= 0]. *)

val config : t -> config

val should_mask : config -> row:int -> attr:int -> bool
(** The deterministic cell-selection predicate: a splitmix64 finalizer
    over [(seed, row, attr)] compared against [mask_fraction]. Pure —
    same config, same cell, same answer, at any domain count. *)

val sharpen : Prob.Dist.t -> float -> Prob.Dist.t
(** [sharpen d gamma] — each probability raised to [gamma], then
    renormalized (temperature scaling). Exposed for the injection hook
    and its tests. *)

(** {1 Observation entry points} *)

val attach_model : t -> Model.t -> unit
(** Capture the drift reference: per-attribute names and complete-part
    empirical marginals (each lattice root's CPD). Idempotent for the
    same schema shape; raises [Invalid_argument] if a different arity
    was already attached. Called implicitly by {!shadow_eval} and the
    {!Workload.run} hook. *)

val shadow_eval : ?method_:Voting.method_ -> t -> Model.t ->
  Relation.Tuple.t array -> int
(** Run the shadow-masking evaluator: for every known cell selected by
    {!should_mask}, mask it, re-infer the attribute from the remaining
    evidence ({!Infer_single.explain}, so the degradation rung and voter
    set are captured), and score the posterior against the held-out
    value. Returns the number of cells scored. Deterministic, RNG-free,
    and side-effect-free on the model and tuples (cells are masked on
    copies). *)

val score_cell : t -> attr:int -> truth:int -> Prob.Dist.t -> unit
(** Record one prediction against its held-out truth: updates the
    Brier / log-loss / top-1 sums, the reliability bins, the drift
    posterior aggregate, and the [quality.cells] counter plus
    [quality.confidence] histogram in the sink. Emits one
    [quality.scores] trace-counter sample per 64 cells when tracing is
    enabled. Raises [Invalid_argument] when [truth] is outside the
    distribution's support. *)

val observe_voters : t -> Meta_rule.t list -> unit
(** Record the voter set of one inference task into the ensemble-health
    accumulators ([quality.voters.count] / [quality.voters.specificity]
    histograms, [quality.voters.root_only] counter for tasks whose only
    voter is the specificity-0 root). *)

val observe_rung : t -> Infer_single.rung -> unit
(** Record the degradation rung one task took. {!shadow_eval} calls
    this; exposed for callers scoring cells by hand. *)

val observe_estimates : t ->
  (Relation.Tuple.t * Gibbs.estimate) list -> unit
(** Feed a workload's per-tuple estimates into the drift aggregate: each
    estimate's per-attribute marginals join the running mean posterior
    that {!drift_report} compares against the empirical marginals.
    Requires {!attach_model} first (the {!Workload.run} [?quality] hook
    does both). *)

(** {1 Reports} *)

type bin = {
  lo : float;
  hi : float;  (** the bin's confidence interval [lo, hi) *)
  count : int;
  confidence : float;  (** mean top-1 confidence of the bin; 0 if empty *)
  accuracy : float;  (** empirical top-1 accuracy of the bin; 0 if empty *)
}

val reliability : t -> bin array
(** The reliability-diagram table: [config.bins] fixed-width bins over
    top-1 confidence. A confidence of exactly 1.0 lands in the last
    bin. *)

val ece : t -> float
(** Expected calibration error: Σ_b (n_b / N) · |accuracy_b −
    confidence_b| over non-empty bins; 0 when nothing was scored. *)

val mce : t -> float
(** Maximum calibration error: max_b |accuracy_b − confidence_b| over
    non-empty bins; 0 when nothing was scored. *)

type scores = {
  cells : int;  (** shadow cells scored *)
  brier : float;  (** mean multiclass Brier score (lower is better) *)
  log_loss : float;  (** mean −ln p(truth) (lower is better) *)
  top1_accuracy : float;  (** share of cells whose mode was the truth *)
  ece : float;
  mce : float;
}

val scores : t -> scores
(** All zero (cells = 0) before any scoring. *)

type drift = {
  attr : int;
  name : string;
  observations : int;  (** posteriors aggregated for this attribute *)
  js : float;  (** JS(empirical marginal ‖ mean posterior) *)
  hellinger : float;
  kl : float;  (** ε-smoothed KL (ε = 1e-6) — always finite *)
  alert : bool;  (** [js > config.drift_threshold] *)
}

val drift_report : t -> drift list
(** One row per attribute that has received at least one posterior, in
    attribute order. Empty before {!attach_model}. *)

type health = {
  tasks : int;  (** inference tasks whose voter sets were observed *)
  voters_per_task : float;  (** mean voters per task; 0 when no tasks *)
  root_only_share : float;  (** tasks with only the stratum-0 root *)
  strata : (int * int) list;
      (** voter-specificity stratum -> voters selected, ascending *)
  degrade_marginal_share : float;
      (** rung-2 tasks / observed tasks (shadow-observed rungs) *)
  degrade_uniform_share : float;  (** rung-3 tasks / observed tasks *)
  chains : int;  (** [gibbs.chains] read from [registry] *)
  checked_runs : int;  (** [gibbs.checked] read from [registry] *)
  nonconverged_share : float;
      (** [degrade.nonconverged] / [gibbs.checked]; 0 when unchecked *)
}

val health : ?registry:Telemetry.t -> t -> health
(** Ensemble health: voter strata and rung shares from the monitor's own
    accumulators; chain, convergence-check, and nonconvergence counts
    read from [registry] (default {!Telemetry.global}), where the
    sampling layers count them. *)

(** {1 Export} *)

val publish : ?registry:Telemetry.t -> t -> unit
(** Push the current report into the sink as [quality.*] gauges and the
    [quality.drift.alerts] counter, and emit one [quality.drift.alert]
    trace instant per alerted attribute. Safe to call repeatedly (an
    online monitor republisnes on a cadence); gauges overwrite, the
    alert counter counts alert {e transitions} per publish call. *)

val to_json : ?registry:Telemetry.t -> t -> Telemetry.Json.t
(** The full machine-readable quality report — the [QUALITY_*.json]
    artifact schema consumed by [ci/quality_gate.exe]:
    [{"schema_version"; "config"; "scores"; "reliability"; "drift";
      "health"}]. *)

val render : ?registry:Telemetry.t -> t -> string
(** Human-readable report: scores, reliability diagram, per-attribute
    drift, ensemble health — the body of [mrsl quality] and the bench's
    [quality] section. *)
