type arg = Int of int | Float of float | Str of string

type phase =
  | Complete of int
  | Instant
  | Counter
  | Flow_start
  | Flow_end

type event = {
  name : string;
  cat : string;
  ts_ns : int;
  track : int;
  id : int;
  args : (string * arg) list;
  phase : phase;
}

let dummy_event =
  { name = ""; cat = ""; ts_ns = 0; track = 0; id = 0; args = []; phase = Instant }

(* One ring buffer per domain. A buffer is appended to only by the domain
   that owns it, so writes need no synchronization; readers (the
   exporters) run after the traced workload has finished. *)
type buffer = {
  owner : int;  (* domain id, the default track *)
  ring : event array;
  mutable len : int;
  mutable buf_dropped : int;
}

type sink = {
  sink_id : int;  (* distinguishes sinks across install/uninstall cycles *)
  capacity : int;
  start_ns : int;
  reg_lock : Mutex.t;
  mutable buffers : buffer list;
}

let default_capacity = 65536

let next_sink_id = Atomic.make 1

let create ?(capacity_per_domain = default_capacity) () =
  if capacity_per_domain < 1 then
    invalid_arg "Trace.create: capacity_per_domain must be >= 1";
  {
    sink_id = Atomic.fetch_and_add next_sink_id 1;
    capacity = capacity_per_domain;
    start_ns = Clock.now_ns ();
    reg_lock = Mutex.create ();
    buffers = [];
  }

let current : sink option Atomic.t = Atomic.make None

let install sink = Atomic.set current (Some sink)

let uninstall () =
  let s = Atomic.get current in
  Atomic.set current None;
  s

let installed () = Atomic.get current
let enabled () = Atomic.get current <> None

(* Domain-local cache of (sink_id, buffer): after the first event from a
   given domain under a given sink, emission is a DLS read plus an array
   store — lock-free. The registration (first event per domain per sink)
   takes the sink's lock once. *)
let dls_buffer : (int * buffer) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let local_buffer sink =
  let slot = Domain.DLS.get dls_buffer in
  match !slot with
  | Some (id, buf) when id = sink.sink_id -> buf
  | _ ->
      let buf =
        {
          owner = (Domain.self () :> int);
          ring = Array.make sink.capacity dummy_event;
          len = 0;
          buf_dropped = 0;
        }
      in
      Mutex.lock sink.reg_lock;
      sink.buffers <- buf :: sink.buffers;
      Mutex.unlock sink.reg_lock;
      slot := Some (sink.sink_id, buf);
      buf

let emit sink ev =
  let buf = local_buffer sink in
  if buf.len < Array.length buf.ring then begin
    buf.ring.(buf.len) <- ev;
    buf.len <- buf.len + 1
  end
  else buf.buf_dropped <- buf.buf_dropped + 1

let now_rel sink = Clock.duration_ns ~start:sink.start_ns ~stop:(Clock.now_ns ())

let instant ?(args = []) ~cat name =
  match Atomic.get current with
  | None -> ()
  | Some sink ->
      emit sink
        {
          name;
          cat;
          ts_ns = now_rel sink;
          track = (Domain.self () :> int);
          id = 0;
          args;
          phase = Instant;
        }

(* Alarm-safe instant: emits only when this domain's ring is already
   registered under the current sink, so it never takes [reg_lock]. A
   [Gc.alarm] handler can interrupt a thread that holds that lock (or
   any other mutex) mid-allocation; an emission path that locks would
   self-deadlock ("Resource deadlock avoided"). Returns [true] when the
   event was recorded, [false] when it was skipped (no sink, or this
   domain has not traced under the sink yet). *)
let try_instant ?(args = []) ~cat name =
  match Atomic.get current with
  | None -> false
  | Some sink -> (
      match !(Domain.DLS.get dls_buffer) with
      | Some (sid, buf) when sid = sink.sink_id ->
          (if buf.len < Array.length buf.ring then begin
             buf.ring.(buf.len) <-
               {
                 name;
                 cat;
                 ts_ns = now_rel sink;
                 track = (Domain.self () :> int);
                 id = 0;
                 args;
                 phase = Instant;
               };
             buf.len <- buf.len + 1
           end
           else buf.buf_dropped <- buf.buf_dropped + 1);
          true
      | _ -> false)

let counter ?(id = 0) ~cat name values =
  match Atomic.get current with
  | None -> ()
  | Some sink ->
      emit sink
        {
          name;
          cat;
          ts_ns = now_rel sink;
          track = (Domain.self () :> int);
          id;
          args = List.map (fun (k, v) -> (k, Float v)) values;
          phase = Counter;
        }

let complete_span ?(args = []) ~cat ~start_ns name =
  match Atomic.get current with
  | None -> ()
  | Some sink ->
      let stop = Clock.now_ns () in
      let start_rel = Clock.duration_ns ~start:sink.start_ns ~stop:start_ns in
      emit sink
        {
          name;
          cat;
          ts_ns = start_rel;
          track = (Domain.self () :> int);
          id = 0;
          args;
          phase = Complete (Clock.duration_ns ~start:start_ns ~stop);
        }

let complete ?args ~cat name f =
  match Atomic.get current with
  | None -> f ()
  | Some _ -> (
      let start_ns = Clock.now_ns () in
      match f () with
      | r ->
          complete_span ?args ~cat ~start_ns name;
          r
      | exception e ->
          complete_span ?args ~cat ~start_ns name;
          raise e)

let flow_start ?track ?(args = []) ~cat ~id name =
  match Atomic.get current with
  | None -> ()
  | Some sink ->
      let track =
        match track with Some t -> t | None -> (Domain.self () :> int)
      in
      emit sink
        { name; cat; ts_ns = now_rel sink; track; id; args; phase = Flow_start }

let flow_end ?(args = []) ~cat ~id name =
  match Atomic.get current with
  | None -> ()
  | Some sink ->
      emit sink
        {
          name;
          cat;
          ts_ns = now_rel sink;
          track = (Domain.self () :> int);
          id;
          args;
          phase = Flow_end;
        }

let with_sink ?capacity_per_domain f =
  let sink = create ?capacity_per_domain () in
  install sink;
  match f () with
  | r ->
      ignore (uninstall ());
      (r, sink)
  | exception e ->
      ignore (uninstall ());
      raise e

(* --- deterministic flow ids ----------------------------------------- *)

(* splitmix64 finalizer over (seed, kind, a, b): ids are a pure function
   of the run seed and the stable task identity, independent of domain
   count and steal interleaving. The low 62 bits keep them positive. *)
let mix ~seed ~kind ~a ~b =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.add
         (Int64.mul (Int64.of_int kind) 0xC2B2AE3D27D4EB4FL)
         (Int64.add (Int64.mul (Int64.of_int a) 0xD6E8FEB86659FD93L)
            (Int64.of_int b)))
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let v = Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL) in
  if v = 0 then 1 else v

let task_flow_id ~seed ~node = mix ~seed ~kind:1 ~a:node ~b:0
let steal_flow_id ~seed ~node = mix ~seed ~kind:2 ~a:node ~b:0
let share_flow_id ~seed ~parent ~child = mix ~seed ~kind:3 ~a:parent ~b:child
let request_flow_id ~seed ~req = mix ~seed ~kind:4 ~a:req ~b:0

(* --- inspection ------------------------------------------------------ *)

let snapshot_buffers sink =
  Mutex.lock sink.reg_lock;
  let bufs = sink.buffers in
  Mutex.unlock sink.reg_lock;
  bufs

let event_count sink =
  List.fold_left (fun acc b -> acc + b.len) 0 (snapshot_buffers sink)

let dropped sink =
  List.fold_left (fun acc b -> acc + b.buf_dropped) 0 (snapshot_buffers sink)

let events sink =
  snapshot_buffers sink
  |> List.concat_map (fun b -> Array.to_list (Array.sub b.ring 0 b.len))
  |> List.stable_sort (fun a b -> compare a.ts_ns b.ts_ns)

(* --- Chrome trace-event export --------------------------------------- *)

module Json = Telemetry.Json

let json_of_arg = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Str s -> Json.String s

let us_of_ns ns = float_of_int ns /. 1e3

let json_of_event ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ("pid", Json.Int ev.track);
      ("tid", Json.Int 0);
      ("ts", Json.Float (us_of_ns ev.ts_ns));
    ]
  in
  let args =
    match ev.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  let phase =
    match ev.phase with
    | Complete dur ->
        [ ("ph", Json.String "X"); ("dur", Json.Float (us_of_ns dur)) ]
    | Instant -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
    | Counter -> [ ("ph", Json.String "C"); ("id", Json.Int ev.id) ]
    | Flow_start -> [ ("ph", Json.String "s"); ("id", Json.Int ev.id) ]
    | Flow_end ->
        [ ("ph", Json.String "f"); ("bp", Json.String "e"); ("id", Json.Int ev.id) ]
  in
  Json.Obj (base @ phase @ args)

let to_chrome_json sink =
  let evs = events sink in
  let tracks =
    List.sort_uniq compare (List.map (fun e -> e.track) evs)
  in
  let metadata =
    List.map
      (fun t ->
        Json.Obj
          [
            ("name", Json.String "process_name");
            ("ph", Json.String "M");
            ("pid", Json.Int t);
            ("tid", Json.Int 0);
            ( "args",
              Json.Obj [ ("name", Json.String (Printf.sprintf "domain-%d" t)) ]
            );
          ])
      tracks
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.map json_of_event evs));
      ("displayTimeUnit", Json.String "ms");
      ("dropped", Json.Int (dropped sink));
      ("trackCount", Json.Int (List.length tracks));
    ]

let chrome_string sink = Json.to_string ~pretty:false (to_chrome_json sink) ^ "\n"

let write_chrome sink path =
  Out_channel.with_open_bin path (fun oc -> output_string oc (chrome_string sink))

(* --- Prometheus text exposition -------------------------------------- *)

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  "mrsl_" ^ s

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

(* Extra exposition renderers, registered by higher modules (Resource's
   labeled per-domain utilization series). Labeled series can't ride the
   generic sanitizer, and Trace sits below those modules in the library,
   so the dependency is inverted through this hook. *)
let exposition_extras : (Buffer.t -> unit) list Atomic.t = Atomic.make []

let register_exposition_extra f =
  let rec add () =
    let cur = Atomic.get exposition_extras in
    if not (Atomic.compare_and_set exposition_extras cur (f :: cur)) then
      add ()
  in
  add ()

let prometheus_exposition registry =
  let j = Telemetry.to_json registry in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s;
                                   Buffer.add_char buf '\n') fmt in
  let fields key =
    match Json.member key j with Some (Json.Obj fields) -> fields | _ -> []
  in
  let num = function
    | Json.Int n -> float_of_int n
    | Json.Float f -> f
    | _ -> Float.nan
  in
  let get k o = match Json.member k o with Some v -> num v | None -> Float.nan in
  List.iter
    (fun (name, v) ->
      let m = sanitize name ^ "_total" in
      line "# TYPE %s counter" m;
      line "%s %s" m (prom_float (num v)))
    (fields "counters");
  List.iter
    (fun (name, v) ->
      let m = sanitize name in
      line "# TYPE %s gauge" m;
      line "%s %s" m (prom_float (get "last" v));
      line "# TYPE %s_max gauge" m;
      line "%s_max %s" m (prom_float (get "max" v)))
    (fields "gauges");
  List.iter
    (fun (name, v) ->
      let m = sanitize name in
      line "# TYPE %s summary" m;
      line "%s{quantile=\"0.5\"} %s" m (prom_float (get "p50" v));
      line "%s{quantile=\"0.9\"} %s" m (prom_float (get "p90" v));
      line "%s{quantile=\"0.99\"} %s" m (prom_float (get "p99" v));
      line "%s_sum %s" m
        (prom_float (get "mean" v *. get "count" v));
      line "%s_count %s" m (prom_float (get "count" v)))
    (fields "histograms");
  List.iter
    (fun (name, v) ->
      let m = sanitize name in
      line "# TYPE %s_seconds_total counter" m;
      line "%s_seconds_total %s" m (prom_float (get "wall_seconds" v));
      line "# TYPE %s_calls_total counter" m;
      line "%s_calls_total %s" m (prom_float (get "calls" v)))
    (fields "spans");
  (* Trace-ring health: when a sink is recording, expose its drop
     counter and per-domain ring occupancy so a scrape shows when
     serving-rate tracing is lossy (rings are fixed-capacity; overflow
     drops events silently from the trace's point of view). *)
  (match Atomic.get current with
  | None -> ()
  | Some sink ->
      let bufs = snapshot_buffers sink in
      line "# TYPE mrsl_trace_dropped_total counter";
      line "mrsl_trace_dropped_total %d"
        (List.fold_left (fun acc b -> acc + b.buf_dropped) 0 bufs);
      line "# TYPE mrsl_trace_ring_capacity gauge";
      line "mrsl_trace_ring_capacity %d" sink.capacity;
      line "# TYPE mrsl_trace_ring_events gauge";
      List.iter
        (fun b ->
          line "mrsl_trace_ring_events{domain=\"%d\"} %d" b.owner b.len)
        (List.sort (fun a b -> compare a.owner b.owner) bufs));
  List.iter (fun f -> f buf) (List.rev (Atomic.get exposition_extras));
  Buffer.contents buf

(* --- trace-file summary ----------------------------------------------- *)

type slice_acc = {
  mutable s_count : int;
  mutable s_total_us : float;
  mutable s_max_us : float;
}

let summarize j =
  let evs =
    match Json.member "traceEvents" j with
    | Some (Json.List evs) -> evs
    | _ -> invalid_arg "Trace.summarize: no traceEvents array"
  in
  let str k o = match Json.member k o with Some (Json.String s) -> Some s | _ -> None in
  let num k o =
    match Json.member k o with
    | Some (Json.Int n) -> Some (float_of_int n)
    | Some (Json.Float f) -> Some f
    | _ -> None
  in
  let slices = Hashtbl.create 64 in
  let tracks = Hashtbl.create 8 in
  let counters = Hashtbl.create 16 in
  let flow_starts = Hashtbl.create 64 in
  let steal_lat = ref [] in
  let n_events = ref 0 and t_min = ref infinity and t_max = ref neg_infinity in
  (* serve category rollup: batches (with their request counts), request
     flows, and the per-request phase decomposition instants emitted by
     the serving daemon. *)
  let serve_batches = ref 0 and serve_batch_reqs = ref 0 in
  let serve_flow_starts = ref 0 and serve_flow_ends = ref 0 in
  let serve_phases : (string, float list ref) Hashtbl.t = Hashtbl.create 4 in
  let serve_outcomes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let serve_done = ref 0 in
  let arg_num key ev =
    match Json.member "args" ev with
    | Some args -> (
        match Json.member key args with
        | Some (Json.Int n) -> Some (float_of_int n)
        | Some (Json.Float f) -> Some f
        | _ -> None)
    | None -> None
  in
  let arg_str key ev =
    match Json.member "args" ev with
    | Some args -> (
        match Json.member key args with
        | Some (Json.String s) -> Some s
        | _ -> None)
    | None -> None
  in
  let record_serve_done ev =
    incr serve_done;
    List.iter
      (fun phase ->
        match arg_num (phase ^ "_us") ev with
        | Some v ->
            let cell =
              match Hashtbl.find_opt serve_phases phase with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.add serve_phases phase c;
                  c
            in
            cell := v :: !cell
        | None -> ())
      [ "queue_wait"; "compute"; "flush" ];
    match arg_str "outcome" ev with
    | Some o ->
        Hashtbl.replace serve_outcomes o
          (1 + Option.value ~default:0 (Hashtbl.find_opt serve_outcomes o))
    | None -> ()
  in
  List.iter
    (fun ev ->
      match str "ph" ev with
      | Some "M" -> ()
      | Some ph ->
          incr n_events;
          let ts = Option.value ~default:0. (num "ts" ev) in
          if ts < !t_min then t_min := ts;
          let pid = Option.value ~default:0. (num "pid" ev) in
          let name = Option.value ~default:"?" (str "name" ev) in
          let cat = Option.value ~default:"?" (str "cat" ev) in
          (match ph with
          | "X" ->
              let dur = Option.value ~default:0. (num "dur" ev) in
              if ts +. dur > !t_max then t_max := ts +. dur;
              if cat = "serve" && name = "serve.batch" then begin
                incr serve_batches;
                match arg_num "requests" ev with
                | Some r -> serve_batch_reqs := !serve_batch_reqs + int_of_float r
                | None -> ()
              end;
              let key = cat ^ "/" ^ name in
              let acc =
                match Hashtbl.find_opt slices key with
                | Some a -> a
                | None ->
                    let a = { s_count = 0; s_total_us = 0.; s_max_us = 0. } in
                    Hashtbl.add slices key a;
                    a
              in
              acc.s_count <- acc.s_count + 1;
              acc.s_total_us <- acc.s_total_us +. dur;
              if dur > acc.s_max_us then acc.s_max_us <- dur;
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt tracks pid)
              in
              Hashtbl.replace tracks pid ((ts, ts +. dur) :: prev)
          | "C" ->
              if ts > !t_max then t_max := ts;
              Hashtbl.replace counters (cat ^ "/" ^ name)
                (1
                + Option.value ~default:0
                    (Hashtbl.find_opt counters (cat ^ "/" ^ name)))
          | "s" ->
              if ts > !t_max then t_max := ts;
              if cat = "serve" && name = "serve.request" then
                incr serve_flow_starts;
              (match num "id" ev with
              | Some id -> Hashtbl.replace flow_starts (cat, id) ts
              | None -> ())
          | "f" ->
              if ts > !t_max then t_max := ts;
              if cat = "serve" && name = "serve.request" then
                incr serve_flow_ends;
              (match num "id" ev with
              | Some id when cat = "steal" -> (
                  match Hashtbl.find_opt flow_starts (cat, id) with
                  | Some t0 -> steal_lat := (ts -. t0) :: !steal_lat
                  | None -> ())
              | _ -> ())
          | _ ->
              if ts > !t_max then t_max := ts;
              if cat = "serve" && name = "serve.request.done" then
                record_serve_done ev;
              (* ensure every event's track shows up even if it never
                 hosted a slice *)
              if not (Hashtbl.mem tracks pid) then Hashtbl.add tracks pid [])
      | None -> ())
    evs;
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let span_us =
    if !t_max > !t_min then !t_max -. !t_min else 0.
  in
  let dropped =
    match Json.member "dropped" j with Some (Json.Int n) -> n | _ -> 0
  in
  line "trace: %d events over %.3f ms, %d dropped" !n_events (span_us /. 1e3)
    dropped;
  let track_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tracks [])
  in
  line "tracks: %d" (List.length track_list);
  (* Busy time is the union of a track's slice intervals — nested slices
     (a Gibbs task containing its chain-init) count once. *)
  let union_us intervals =
    let sorted = List.sort compare intervals in
    let total, last =
      List.fold_left
        (fun (acc, cur) (s, e) ->
          match cur with
          | None -> (acc, Some (s, e))
          | Some (cs, ce) ->
              if s <= ce then (acc, Some (cs, Float.max ce e))
              else (acc +. (ce -. cs), Some (s, e)))
        (0., None) sorted
    in
    match last with None -> total | Some (cs, ce) -> total +. (ce -. cs)
  in
  List.iter
    (fun (pid, intervals) ->
      let busy = union_us intervals in
      line "  domain-%-4d busy %8.3f ms  (%5.1f%% of trace)" (int_of_float pid)
        (busy /. 1e3)
        (if span_us > 0. then 100. *. busy /. span_us else 0.))
    track_list;
  let top =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) slices []
    |> List.sort (fun (_, a) (_, b) -> Float.compare b.s_total_us a.s_total_us)
  in
  line "top slices by total duration:";
  List.iteri
    (fun i (key, a) ->
      if i < 12 then
        line "  %-32s %6d calls  total %9.3f ms  max %8.3f ms" key a.s_count
          (a.s_total_us /. 1e3) (a.s_max_us /. 1e3))
    top;
  let steals = List.length !steal_lat in
  if steals > 0 then begin
    let lats = List.sort Float.compare !steal_lat in
    let arr = Array.of_list lats in
    let pct p = arr.(min (Array.length arr - 1)
                       (int_of_float (p *. float_of_int (Array.length arr)))) in
    line "steals: %d stitched flows, latency p50 %.1f us, p90 %.1f us, max %.1f us"
      steals (pct 0.5) (pct 0.9) arr.(Array.length arr - 1)
  end
  else line "steals: none recorded";
  let counter_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters [])
  in
  if counter_list <> [] then begin
    line "counter series:";
    List.iter
      (fun (k, n) -> line "  %-32s %6d points" k n)
      counter_list
  end;
  if !serve_batches > 0 || !serve_flow_starts > 0 || !serve_done > 0 then begin
    line "serve:";
    line "  batches: %d (%d requests, mean batch %.1f)" !serve_batches
      !serve_batch_reqs
      (if !serve_batches > 0 then
         float_of_int !serve_batch_reqs /. float_of_int !serve_batches
       else 0.);
    line "  request flows: %d started, %d finished%s" !serve_flow_starts
      !serve_flow_ends
      (if !serve_flow_starts = !serve_flow_ends then "" else "  (UNBALANCED)");
    List.iter
      (fun phase ->
        match Hashtbl.find_opt serve_phases phase with
        | None -> ()
        | Some cell ->
            let arr = Array.of_list (List.sort Float.compare !cell) in
            let n = Array.length arr in
            if n > 0 then begin
              let pct p = arr.(min (n - 1) (int_of_float (p *. float_of_int n))) in
              line "  %-12s %6d reqs  p50 %9.1f us  p99 %9.1f us  max %9.1f us"
                phase n (pct 0.5) (pct 0.99) arr.(n - 1)
            end)
      [ "queue_wait"; "compute"; "flush" ];
    let outcome_list =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) serve_outcomes [])
    in
    if outcome_list <> [] then
      line "  outcomes: %s"
        (String.concat ", "
           (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) outcome_list))
  end;
  Buffer.contents buf
