(** Deterministic fault injection across the MRSL pipeline.

    Chaos testing for the library's fault-containment layer: seeded,
    rate-configurable injection of (1) task exceptions inside the
    work-stealing scheduler ({!Parallel}), (2) corrupted CSV rows
    ({!corrupt_csv}, consumed by the lenient reader), (3) forced Gibbs
    non-convergence ({!Diagnostics.run_with_retries}), and (4) dropped
    voter sets (the {!Infer_single} degradation ladder).

    {b Determinism.} Every decision is a pure function of
    [(seed, site, key)] — a splitmix64-style hash compared against the
    configured rate — independent of call order, domain count, and steal
    interleavings. Re-running with the same seed injects exactly the same
    faults at exactly the same places, which is what makes the
    containment guarantees testable (the scheduler test asserts surviving
    estimates are bit-identical at domain counts 1/2/4 under injection).

    Injection is process-global and {e off by default} ({!disabled});
    nothing in the library pays more than a single atomic read when it is
    inactive. *)

type config = {
  seed : int;
  task_failure_rate : float;  (** P(a scheduler task raises), per node *)
  csv_corruption_rate : float;  (** P(a CSV data row is corrupted), per line *)
  nonconvergence_rate : float;
      (** P(a tuple's R̂ check is forced to fail), per tuple *)
  voter_drop_rate : float;
      (** P(an inference task sees an empty voter set), per task *)
  torn_frame_rate : float;
      (** P(a serving read is cut mid-frame and the peer vanishes), per read *)
  stall_write_rate : float;
      (** P(a serving write stalls or trickles one byte), per write *)
  conn_drop_rate : float;
      (** P(a connection dies before its batch's response is sent), per
          response delivery *)
}

val disabled : config
(** Seed 0, all rates 0 — the default state. *)

val configure : config -> unit
(** Install a configuration globally. Raises [Invalid_argument] when any
    rate is outside [0, 1]. *)

val reset : unit -> unit
(** Back to {!disabled}. *)

val current : unit -> config
val active : unit -> bool

val with_config : config -> (unit -> 'a) -> 'a
(** Scoped configuration: install, run, restore the previous
    configuration even on exceptions. The tool of choice in tests. *)

val install_from_env : unit -> bool
(** Read [MRSL_FAULT_SEED], [MRSL_FAULT_TASK_RATE], [MRSL_FAULT_CSV_RATE],
    [MRSL_FAULT_NONCONV_RATE], [MRSL_FAULT_VOTER_RATE],
    [MRSL_FAULT_TORN_FRAME_RATE], [MRSL_FAULT_STALL_WRITE_RATE],
    [MRSL_FAULT_CONN_DROP_RATE] and {!configure} accordingly. Returns
    [false] (and leaves the state untouched) when none of the variables
    is set. Called by the CLI and the bench harness at startup,
    deliberately {e not} by the library. *)

val describe : config -> string
(** One-line human-readable summary. *)

(** {1 Decision points}

    Each consults the current configuration; [key] identifies the
    decision site stably (node index, 1-based CSV line, tuple hash). *)

val should_fail_task : node:int -> bool
val should_corrupt_row : line:int -> bool
val should_force_nonconvergence : key:int -> bool
val should_drop_voters : key:int -> bool

val should_tear_frame : key:int -> bool
(** Serving chaos: cut this socket read mid-frame and treat the peer as
    gone — exercises the truncated-frame accounting. [key] should mix
    the connection id with a per-connection read counter. *)

val should_stall_write : key:int -> bool
(** Serving chaos: this socket write makes no (or one byte of) progress,
    as if the peer stopped draining — exercises output-buffer bounds. *)

val should_drop_conn : key:int -> bool
(** Serving chaos: this connection dies between batch execution and
    response delivery — exercises the closed-connection guards. *)

val unit_float : seed:int -> site:int -> key:int -> float
(** The raw deterministic uniform draw in [0, 1) behind every decision
    point — exposed so callers needing reproducible randomness outside a
    rate check (e.g. {!Serving.Client}'s backoff jitter) share the same
    splitmix64 machinery instead of growing ad-hoc hashes. *)

val corrupt_csv : string -> string * int list
(** Corrupt a CSV document's data rows at the configured
    [csv_corruption_rate]: per hit, one of three shapes (extra trailing
    field / unterminated quote / out-of-domain value), chosen
    deterministically. The header line is never corrupted. Returns the
    corrupted document and the 1-based line numbers touched. *)
