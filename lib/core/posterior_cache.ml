(* Evidence-keyed posterior cache: sharded mutex-protected hash tables
   threaded onto intrusive LRU lists, keyed by (model epoch, attribute,
   voting method, lattice-relevant evidence signature). See the .mli for
   the full design discussion. *)

let default_max_bytes = 64 * 1024 * 1024
let default_shards = 16

(* --- wrapping full-traversal mixed-radix codes ----------------------- *)

(* splitmix64 finalizer (same constants as Fault_inject): folded in after
   every mixed-radix step so high-order digits survive the 2^64 wrap even
   when the radices are powers of two — pure left-shifting accumulation
   would push early cells' bits off the top on wide schemas, which is
   exactly the class of systematic collision this code exists to kill. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fold_digit h ~radix ~digit =
  mix64 (Int64.add (Int64.mul h (Int64.of_int radix)) (Int64.of_int digit))

let tuple_code64 ~cards (tup : Relation.Tuple.t) =
  if Array.length cards <> Array.length tup then
    invalid_arg "Posterior_cache.tuple_code: cards/tuple arity mismatch";
  let h = ref 1L in
  Array.iteri
    (fun i cell ->
      let digit = match cell with None -> 0 | Some v -> v + 1 in
      h := fold_digit !h ~radix:(cards.(i) + 1) ~digit)
    tup;
  !h

let tuple_code ~cards tup = Int64.to_int (tuple_code64 ~cards tup)

let evidence_key ~cards tup a =
  Int64.to_int
    (fold_digit (tuple_code64 ~cards tup)
       ~radix:(Array.length cards + 1)
       ~digit:(a + 1))

(* --- keys ------------------------------------------------------------- *)

let method_code (m : Voting.method_) =
  (match m.choice with Voting.All -> 0 | Voting.Best -> 1)
  lor ((match m.scheme with Voting.Averaged -> 0 | Voting.Weighted -> 1) lsl 1)

let signature model (tup : Relation.Tuple.t) a =
  let attrs = Lattice.body_attrs (Model.lattice model a) in
  Array.map
    (fun b -> match tup.(b) with None -> 0 | Some v -> v + 1)
    attrs

(* Key namespaces: [ns = 0] keys carry the interpreted signature digit
   array; [ns = 1] keys carry the compiled kernel's exact mixed-radix
   context code as a one-element array. The namespaces are disjoint by
   construction so the two key schemes can never collide — an attribute
   whose context code would overflow falls back to ns 0 (see Kernel). *)
type key = {
  ns : int;
  epoch : int;
  attr : int;
  meth : int;
  sig_ : int array;
  khash : int;  (* precomputed; array hashing is the lookup's only O(n) *)
}

let key_hash ~ns ~epoch ~attr ~meth sig_ =
  let h = ref (Int64.of_int epoch) in
  h := fold_digit !h ~radix:31 ~digit:ns;
  h := fold_digit !h ~radix:31 ~digit:attr;
  h := fold_digit !h ~radix:31 ~digit:meth;
  Array.iter (fun d -> h := fold_digit !h ~radix:31 ~digit:d) sig_;
  Int64.to_int !h land max_int

let make_key model ~method_ tup a =
  let epoch = Model.epoch model in
  let meth = method_code method_ in
  match Kernel.cache_code model tup a with
  | Some code ->
      let sig_ = [| code |] in
      {
        ns = 1;
        epoch;
        attr = a;
        meth;
        sig_;
        khash = key_hash ~ns:1 ~epoch ~attr:a ~meth sig_;
      }
  | None ->
      let sig_ = signature model tup a in
      {
        ns = 0;
        epoch;
        attr = a;
        meth;
        sig_;
        khash = key_hash ~ns:0 ~epoch ~attr:a ~meth sig_;
      }

module Key = struct
  type t = key

  let equal a b =
    a.khash = b.khash && a.ns = b.ns && a.epoch = b.epoch && a.attr = b.attr
    && a.meth = b.meth
    && Array.length a.sig_ = Array.length b.sig_
    &&
    let rec eq i = i < 0 || (a.sig_.(i) = b.sig_.(i) && eq (i - 1)) in
    eq (Array.length a.sig_ - 1)

  let hash k = k.khash
end

module Table = Hashtbl.Make (Key)

(* --- shards: hash table + intrusive LRU ------------------------------- *)

type node = {
  nkey : key;
  dist : Prob.Dist.t;
  nbytes : int;
  mutable prev : node;  (* toward MRU / sentinel *)
  mutable next : node;  (* toward LRU / sentinel *)
}

type shard = {
  lock : Mutex.t;
  table : node Table.t;
  sentinel : node;  (* sentinel.next = MRU, sentinel.prev = LRU *)
  mutable bytes : int;
  mutable entries : int;
}

let dummy_key =
  { ns = 0; epoch = -1; attr = -1; meth = -1; sig_ = [||]; khash = 0 }

let make_shard () =
  let rec sentinel =
    { nkey = dummy_key; dist = Prob.Dist.uniform 1; nbytes = 0;
      prev = sentinel; next = sentinel }
  in
  { lock = Mutex.create (); table = Table.create 256; sentinel; bytes = 0;
    entries = 0 }

let detach n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front sh n =
  n.next <- sh.sentinel.next;
  n.prev <- sh.sentinel;
  sh.sentinel.next.prev <- n;
  sh.sentinel.next <- n

let with_lock sh f =
  Mutex.lock sh.lock;
  match f () with
  | v ->
      Mutex.unlock sh.lock;
      v
  | exception e ->
      Mutex.unlock sh.lock;
      raise e

(* --- the cache -------------------------------------------------------- *)

type t = {
  shards : shard array;
  shard_mask : int;
  max_bytes_per_shard : int;
  telemetry : Telemetry.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  dedup_fanout : int Atomic.t;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = default_shards) ?(max_bytes = default_max_bytes)
    ?(telemetry = Telemetry.global) () =
  if shards < 1 then invalid_arg "Posterior_cache.create: shards must be >= 1";
  if max_bytes < 1 then
    invalid_arg "Posterior_cache.create: max_bytes must be >= 1";
  let n = pow2_at_least shards 1 in
  {
    shards = Array.init n (fun _ -> make_shard ());
    shard_mask = n - 1;
    max_bytes_per_shard = max 1 (max_bytes / n);
    telemetry;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    dedup_fanout = Atomic.make 0;
  }

let shard_of t key = t.shards.(key.khash land t.shard_mask)

(* Per-entry footprint on a 64-bit heap, kept at or above the true cost
   so the byte budget never under-counts (the [Obj.reachable_words]
   cross-check in the resources report and test suite holds it honest):
   node record (6 words), key record (6 words), signature int array
   (len + 1 words), distribution float array (len + 1 words), hashtable
   bucket cell (4 words), plus amortized slot-array and resize slack.
   48 + 48 + 32 + 16 = 144 structural bytes, padded to 208 for the
   array headers and table slack. *)
let entry_bytes key dist =
  208 + (8 * Array.length key.sig_) + (8 * Prob.Dist.size dist)

let publish t =
  let bytes = ref 0 and entries = ref 0 in
  Array.iter
    (fun sh ->
      bytes := !bytes + sh.bytes;
      entries := !entries + sh.entries)
    t.shards;
  Telemetry.gauge t.telemetry "cache.bytes" (float_of_int !bytes);
  Telemetry.gauge t.telemetry "cache.entries" (float_of_int !entries)

let find_key t key =
  let sh = shard_of t key in
  let found =
    with_lock sh (fun () ->
        match Table.find_opt sh.table key with
        | Some n ->
            detach n;
            push_front sh n;
            Some n.dist
        | None -> None)
  in
  (match found with
  | Some _ ->
      Atomic.incr t.hits;
      Telemetry.incr t.telemetry "cache.hits"
  | None ->
      Atomic.incr t.misses;
      Telemetry.incr t.telemetry "cache.misses");
  found

let add_key t key dist =
  let sh = shard_of t key in
  let evicted =
    with_lock sh (fun () ->
        if Table.mem sh.table key then 0
        else begin
          let n =
            { nkey = key; dist; nbytes = entry_bytes key dist;
              prev = sh.sentinel; next = sh.sentinel }
          in
          Table.replace sh.table key n;
          push_front sh n;
          sh.bytes <- sh.bytes + n.nbytes;
          sh.entries <- sh.entries + 1;
          let evicted = ref 0 in
          while sh.bytes > t.max_bytes_per_shard && sh.entries > 1 do
            let lru = sh.sentinel.prev in
            Table.remove sh.table lru.nkey;
            detach lru;
            sh.bytes <- sh.bytes - lru.nbytes;
            sh.entries <- sh.entries - 1;
            incr evicted
          done;
          !evicted
        end)
  in
  Trace.instant ~cat:"cache"
    ~args:[ ("attr", Trace.Int key.attr) ]
    "cache.fill";
  if evicted > 0 then begin
    Atomic.fetch_and_add t.evictions evicted |> ignore;
    Telemetry.incr ~by:evicted t.telemetry "cache.evictions";
    Trace.instant ~cat:"cache"
      ~args:[ ("evicted", Trace.Int evicted) ]
      "cache.evict"
  end;
  publish t

(* Degraded posteriors must never be cached or served: voter-drop fault
   injection changes [Infer_single.infer]'s output without a model-epoch
   change, so while it is active the cache steps aside entirely. *)
let bypassed () =
  (Fault_inject.current ()).Fault_inject.voter_drop_rate > 0.

let find t model ~method_ tup a =
  if bypassed () then None
  else begin
    let key = make_key model ~method_ tup a in
    let t0 = Clock.now () in
    let found = find_key t key in
    Telemetry.observe t.telemetry "cache.lookup_seconds" (Clock.now () -. t0);
    found
  end

let find_or_compute t model ~method_ tup a f =
  if bypassed () then f ()
  else begin
    let key = make_key model ~method_ tup a in
    let t0 = Clock.now () in
    let found = find_key t key in
    Telemetry.observe t.telemetry "cache.lookup_seconds"
      (Clock.now () -. t0);
    match found with
    | Some d -> d
    | None ->
        let d = f () in
        add_key t key d;
        d
  end

let prewarm t model ~method_ ~compute workload =
  if bypassed () then (0, 0)
  else begin
    let seen = Table.create 256 in
    let tasks = ref 0 and distinct = ref 0 in
    let body () =
      List.iter
        (fun tup ->
          List.iter
            (fun a ->
              incr tasks;
              let key = make_key model ~method_ tup a in
              if Table.mem seen key then ()
              else begin
                Table.replace seen key ();
                incr distinct;
                match find_key t key with
                | Some _ -> ()
                | None -> add_key t key (compute tup a)
              end)
            (Relation.Tuple.missing tup))
        workload
    in
    (* One slice per prewarm pass, emitted after the fact so its args can
       carry the dedup shape discovered during the pass. *)
    let t0 = Clock.now_ns () in
    body ();
    let fanout = !tasks - !distinct in
    Trace.complete_span ~cat:"cache"
      ~args:
        [
          ("tasks", Trace.Int !tasks);
          ("distinct", Trace.Int !distinct);
          ("fanout", Trace.Int fanout);
        ]
      ~start_ns:t0 "cache.prewarm";
    if fanout > 0 then begin
      Atomic.fetch_and_add t.dedup_fanout fanout |> ignore;
      Telemetry.incr ~by:fanout t.telemetry "cache.dedup_fanout"
    end;
    (!distinct, fanout)
  end

(* --- maintenance ------------------------------------------------------ *)

let clear t =
  Array.iter
    (fun sh ->
      with_lock sh (fun () ->
          Table.reset sh.table;
          (* Re-point the sentinel at itself; detached nodes are garbage. *)
          sh.sentinel.next <- sh.sentinel;
          sh.sentinel.prev <- sh.sentinel;
          sh.bytes <- 0;
          sh.entries <- 0))
    t.shards;
  publish t

let invalidate_stale t ~current =
  let epoch = Model.epoch current in
  let dropped = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh (fun () ->
          let stale =
            Table.fold
              (fun k n acc -> if k.epoch <> epoch then n :: acc else acc)
              sh.table []
          in
          List.iter
            (fun n ->
              Table.remove sh.table n.nkey;
              detach n;
              sh.bytes <- sh.bytes - n.nbytes;
              sh.entries <- sh.entries - 1;
              incr dropped)
            stale))
    t.shards;
  if !dropped > 0 then begin
    Atomic.fetch_and_add t.evictions !dropped |> ignore;
    Telemetry.incr ~by:!dropped t.telemetry "cache.evictions"
  end;
  publish t

(* --- stats ------------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  dedup_fanout : int;
  entries : int;
  bytes : int;
}

let stats t =
  let bytes = ref 0 and entries = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh (fun () ->
          bytes := !bytes + sh.bytes;
          entries := !entries + sh.entries))
    t.shards;
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    dedup_fanout = Atomic.get t.dedup_fanout;
    entries = !entries;
    bytes = !bytes;
  }

let hit_rate (t : t) =
  let h = Atomic.get t.hits and m = Atomic.get t.misses in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

(* True heap footprint of the shard tables: every node, key, signature,
   distribution, bucket and LRU link is reachable from a shard's table
   (the sentinel via the node prev/next chain), so one traversal per
   shard covers the lot. Each shard's lock is held during its walk so a
   concurrent writer can't mutate the structure mid-traversal; the walk
   is O(entries) and only runs from stats/report paths, never the
   serving hot path. *)
let reachable_bytes t =
  let words = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh (fun () ->
          words := !words + Obj.reachable_words (Obj.repr sh.table)))
    t.shards;
  !words * (Sys.word_size / 8)
