(* Work-stealing multicore workload inference.

   The unit of work is one tuple-DAG node (Algorithm 3 task), not a
   static chunk: roots are dealt round-robin across per-worker deques in
   task-id order, and whenever a node completes, subsumees whose parents
   are all done either finish outright on donated samples or are pushed
   onto the completing worker's deque — stealable by any idle domain, so
   no domain serializes behind the slowest static chunk.

   Determinism: every node draws from its own RNG stream seeded by the
   node's index in the (deterministic) tuple DAG — a stable task
   identity, independent of which domain runs it, of the steal order,
   and of the domain count. Sample donation is pull-based: a node
   collects from its parents only once ALL of them have completed,
   scanning parents in ascending node order and each parent's samples
   oldest-first. Both rules together make results bit-identical for a
   fixed seed across any [domains] setting. *)

let task_seed ~seed node =
  (* Odd multiplier => injective in [node] modulo the native int width;
     Rng.create finishes the mixing. Stable across domain counts because
     node indices come from the deterministic DAG build, not from chunk
     or bucket positions. *)
  seed + ((node + 1) * 0x2545F4914F6CDD1D)

(* --- per-domain sampler cache --------------------------------------- *)

(* Conditional-CPD memo tables are the dominant inference cache (the
   per-ensemble caching of Section I-B); rebuilding them cold per run was
   the seed's biggest waste. Samplers live in domain-local storage keyed
   by the model's physical identity, so a pool domain reuses its memo —
   hit/miss counters included — across tasks and across Parallel.run
   calls against the same model. *)
module Sampler_cache = struct
  type entry = {
    model : Model.t;
    method_ : Voting.method_ option;
    memoize : bool option;
    pcache : Posterior_cache.t option;
    kernel : bool;  (* Kernel.enabled at creation: a sampler whose memo
                       was filled under one engine setting is never
                       reused under the other, so toggling --kernel
                       between runs cannot blur benchmarks *)
    sampler : Gibbs.sampler;
  }

  let max_entries = 4

  let key : entry list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl

  let same_pcache a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x == y
    | _ -> false

  let get ?method_ ?memoize ?pcache model =
    let cache = Domain.DLS.get key in
    let kernel = Kernel.enabled () in
    match
      List.find_opt
        (fun e ->
          e.model == model && e.method_ = method_ && e.memoize = memoize
          && e.kernel = kernel
          && same_pcache e.pcache pcache)
        !cache
    with
    | Some e -> e.sampler
    | None ->
        let sampler = Gibbs.sampler ?method_ ?memoize ?cache:pcache model in
        cache :=
          { model; method_; memoize; pcache; kernel; sampler }
          :: take (max_entries - 1) !cache;
        sampler
end

(* --- scheduler ------------------------------------------------------ *)

type fault_policy = Fail_fast | Skip_and_report

type tuple_fault = {
  node : int;
  tuple : Relation.Tuple.t;
  error : Error.t;
  upstream : int option;
}

type contained = {
  result : Workload.result;
  faults : tuple_fault list;
}

type node = {
  tuple : Relation.Tuple.t;
  mutable samples : int array list;  (* newest first *)
  mutable count : int;
  mutable pending : int;  (* parents not yet completed *)
  mutable completed : bool;
  mutable failed : Error.t option;  (* Skip_and_report containment *)
  mutable failed_upstream : int option;  (* root-cause node when skipped *)
  mutable donors : int list;  (* parents that donated samples (trace flows) *)
}

type worker_log = {
  mutable sweeps : int;
  mutable recorded : int;
  mutable tasks : int;
  mutable steals : int;
  mutable max_depth : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable busy_ns : int;  (* time inside task execution *)
  mutable wall_ns : int;  (* the worker body's total wall *)
}

let fresh_log () =
  {
    sweeps = 0;
    recorded = 0;
    tasks = 0;
    steals = 0;
    max_depth = 0;
    memo_hits = 0;
    memo_misses = 0;
    busy_ns = 0;
    wall_ns = 0;
  }

let empty_result () =
  {
    Workload.estimates = [];
    stats = { sweeps = 0; recorded = 0; shared = 0; wall_seconds = 0. };
  }

let run_contained ?(config = Gibbs.default_config)
    ?(strategy = Workload.Tuple_dag) ?method_ ?memoize ?cache ?domains
    ?(telemetry = Telemetry.global) ?(policy = Fail_fast) ?quality
    ?request_flow ~seed model workload =
  let requested =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Parallel.run: domains must be >= 1";
        d
    | None -> Domain.recommended_domain_count ()
  in
  if config.Gibbs.burn_in < 0 || config.Gibbs.samples < 1 then
    invalid_arg "Parallel.run: bad burn-in or sample count";
  match strategy with
  | Workload.All_at_a_time ->
      (* One chain over the fully unknown tuple: inherently sequential.
         Run it on the calling domain with the caller-visible seed.
         Per-task containment does not apply — there is one task.
         [Workload.run] performs the posterior-cache prewarm itself. *)
      let sampler = Sampler_cache.get ?method_ ?memoize ?pcache:cache model in
      let result =
        Workload.run ~config ~strategy ~telemetry ?quality
          (Prob.Rng.create seed)
          sampler workload
      in
      { result; faults = [] }
  | Workload.Tuple_at_a_time | Workload.Tuple_dag ->
      Telemetry.span telemetry "parallel.run" @@ fun () ->
      Trace.complete ~cat:"sched"
        ~args:[ ("seed", Trace.Int seed) ]
        "parallel.run"
      @@ fun () ->
      let dag =
        Trace.complete ~cat:"dag" "dag.build" (fun () ->
            Tuple_dag.build workload)
      in
      let n = Tuple_dag.node_count dag in
      if n = 0 then { result = empty_result (); faults = [] }
      else begin
        let workers = max 1 (min requested n) in
        Telemetry.gauge telemetry "parallel.domains" (float_of_int workers);
        (* Request dedup: compute each distinct evidence-signature
           posterior once on the orchestrating domain before any task is
           dealt; workers' chain inits then hit the shared cache. Over the
           raw workload (repeated client tuples count toward fan-out), on
           top of — not replacing — the tuple-DAG sample sharing below.
           Observation-only for sampling: cached posteriors are
           bit-identical, and per-task RNG streams are untouched. *)
        (match cache with
        | None -> ()
        | Some c ->
            let method_v = Option.value method_ ~default:Voting.best_averaged in
            ignore
              (Posterior_cache.prewarm c model ~method_:method_v
                 ~compute:(fun tup a ->
                   Infer_single.infer ~method_:method_v ~telemetry model tup a)
                 workload));
        let use_dag = strategy = Workload.Tuple_dag in
        let parents i = if use_dag then Tuple_dag.parents dag i else [] in
        let children i = if use_dag then Tuple_dag.children dag i else [] in
        let nodes =
          Array.init n (fun i ->
              {
                tuple = Tuple_dag.tuple dag i;
                samples = [];
                count = 0;
                pending = List.length (parents i);
                completed = false;
                failed = None;
                failed_upstream = None;
                donors = [];
              })
        in
        let target = config.Gibbs.samples in
        let coord = Mutex.create () in
        let remaining = Atomic.make n in
        let abort = Atomic.make false in
        let failure = ref None in
        let shared = ref 0 and donated = ref 0 in
        let deques = Array.init workers (fun _ -> Wsdeque.create ()) in
        let initial =
          if use_dag then Tuple_dag.roots dag else List.init n Fun.id
        in
        List.iteri
          (fun k i ->
            Trace.flow_start ~cat:"sched"
              ~id:(Trace.task_flow_id ~seed ~node:i)
              "task.run";
            Wsdeque.push deques.(k mod workers) i)
          initial;
        (* Worker wid's Perfetto track (its domain id); -1 until the
           worker starts. Used to attach steal-arrow tails to the victim's
           track even though the thief records the event. *)
        let tracks = Array.make workers (-1) in
        (* Close the sharing arrows opened when parents donated samples;
           called either when the child task executes or when donations
           alone completed it. *)
        let end_share_flows i =
          if Trace.enabled () then
            List.iter
              (fun p ->
                Trace.flow_end ~cat:"share"
                  ~id:(Trace.share_flow_id ~seed ~parent:p ~child:i)
                  "share.donate")
              nodes.(i).donors
        in
        (* DAG bookkeeping; call with [coord] held. Marks [i] done,
           promotes children whose last parent just finished: each pulls
           donations (parents in ascending order, samples oldest-first),
           completes transitively if satisfied, otherwise joins the
           returned list of newly runnable tasks. *)
        let rec complete i newly =
          let st = nodes.(i) in
          st.completed <- true;
          Atomic.decr remaining;
          List.fold_left
            (fun newly j ->
              let cj = nodes.(j) in
              if cj.failed <> None then newly
              else begin
              cj.pending <- cj.pending - 1;
              if cj.pending > 0 then newly
              else begin
                List.iter
                  (fun p ->
                    let before = cj.count in
                    List.iter
                      (fun point ->
                        if
                          cj.count < target
                          && Relation.Tuple.matches ~point cj.tuple
                        then begin
                          cj.samples <- point :: cj.samples;
                          cj.count <- cj.count + 1;
                          incr donated;
                          incr shared
                        end)
                      (List.rev nodes.(p).samples);
                    if cj.count > before then begin
                      cj.donors <- p :: cj.donors;
                      Trace.flow_start ~cat:"share"
                        ~args:[ ("samples", Trace.Int (cj.count - before)) ]
                        ~id:(Trace.share_flow_id ~seed ~parent:p ~child:j)
                        "share.donate"
                    end)
                  (parents j);
                if cj.count >= target then begin
                  end_share_flows j;
                  complete j newly
                end
                else j :: newly
              end
              end)
            newly (children i)
        in
        (* Skip_and_report containment; call with [coord] held. A failed
           node never completes, so none of its children's [pending]
           counts reach zero through it — descendants can therefore never
           have started, and are marked skipped (with the root cause)
           rather than left hanging. Surviving nodes' sample streams are
           untouched: their own RNG streams are seeded by node index and
           their donations come only from ancestors that all completed,
           so their estimates stay bit-identical to a fault-free run at
           any domain count. *)
        let rec fail_node ?upstream i err =
          let st = nodes.(i) in
          if (not st.completed) && st.failed = None then begin
            st.failed <- Some err;
            st.failed_upstream <- upstream;
            Atomic.decr remaining;
            let root = Option.value upstream ~default:i in
            List.iter
              (fun j ->
                fail_node ~upstream:root j
                  (Error.make Error.Scheduler ~code:"task.upstream_failed"
                     ~context:[ ("failed_ancestor", string_of_int root) ]
                     (Printf.sprintf
                        "skipped: depends on failed task %d" root)))
              (children i)
          end
        in
        let sample_task st i sampler log =
          if Fault_inject.should_fail_task ~node:i then
            Error.raise_
              (Error.make Error.Scheduler ~code:"fault_inject.task"
                 ~context:[ ("node", string_of_int i) ]
                 "injected task fault");
          if st.count < target then begin
            let rng = Prob.Rng.create (task_seed ~seed i) in
            let c = Gibbs.chain ~telemetry rng sampler st.tuple in
            for _ = 1 to config.Gibbs.burn_in do
              ignore (Gibbs.sweep rng c);
              log.sweeps <- log.sweeps + 1
            done;
            let stride = max 8 (target / 8) in
            while st.count < target do
              st.samples <- Gibbs.sweep rng c :: st.samples;
              st.count <- st.count + 1;
              log.sweeps <- log.sweeps + 1;
              log.recorded <- log.recorded + 1;
              if st.count mod stride = 0 && Trace.enabled () then begin
                let rhat, ess =
                  Diagnostics.convergence_snapshot sampler st.tuple
                    (List.rev st.samples)
                in
                Trace.counter ~id:i ~cat:"gibbs" "gibbs.convergence"
                  [
                    ("rhat", (if Float.is_finite rhat then rhat else 1e6));
                    ("ess", ess);
                    ("node", float_of_int i);
                  ]
              end
            done
          end
        in
        let exec log sampler dq i =
          let st = nodes.(i) in
          Trace.flow_end ~cat:"sched"
            ~id:(Trace.task_flow_id ~seed ~node:i)
            "task.run";
          (* A serving request's flow arrow terminates on the worker that
             actually runs its tuple — node 0 of the single-tuple workload
             the engine submits per distinct request tuple. *)
          (match request_flow with
          | Some id when i = 0 -> Trace.flow_end ~cat:"serve" ~id "serve.request"
          | _ -> ());
          end_share_flows i;
          match
            Trace.complete ~cat:"gibbs"
              ~args:[ ("node", Trace.Int i) ]
              "parallel.task"
              (fun () -> sample_task st i sampler log)
          with
          | exception e when policy = Skip_and_report ->
              (* Contain the fault to this tuple: record it, skip its
                 dependents, keep the domain pool alive. *)
              log.tasks <- log.tasks + 1;
              Telemetry.incr telemetry "fault.task_failures";
              let err = Error.of_exn e in
              Mutex.lock coord;
              (match fail_node i err with
              | () -> Mutex.unlock coord
              | exception e2 ->
                  Mutex.unlock coord;
                  raise e2)
          | () ->
              log.tasks <- log.tasks + 1;
              Mutex.lock coord;
              let newly =
                match complete i [] with
                | newly -> newly
                | exception e ->
                    Mutex.unlock coord;
                    raise e
              in
              Mutex.unlock coord;
              List.iter
                (fun j ->
                  Trace.flow_start ~cat:"sched"
                    ~id:(Trace.task_flow_id ~seed ~node:j)
                    "task.run";
                  Wsdeque.push dq j)
                newly;
              log.max_depth <- max log.max_depth (Wsdeque.length dq)
        in
        let logs = Array.init workers (fun _ -> fresh_log ()) in
        let worker_body wid =
          tracks.(wid) <- (Domain.self () :> int);
          let sampler = Sampler_cache.get ?method_ ?memoize ?pcache:cache model in
          let h0, m0 = Gibbs.cache_stats sampler in
          let log = logs.(wid) in
          let dq = deques.(wid) in
          let next_task () =
            match Wsdeque.pop dq with
            | Some _ as t -> t
            | None ->
                let rec scan k =
                  if k >= workers then None
                  else
                    let victim = (wid + k) mod workers in
                    match Wsdeque.steal deques.(victim) with
                    | Some j as t ->
                        log.steals <- log.steals + 1;
                        if Trace.enabled () then begin
                          (* The thief records both ends of the arrow; the
                             tail is drawn on the victim's track. The flow
                             id is deterministic (seed × node identity). *)
                          let sid = Trace.steal_flow_id ~seed ~node:j in
                          let vt = tracks.(victim) in
                          Trace.flow_start ~cat:"steal"
                            ?track:(if vt >= 0 then Some vt else None)
                            ~args:
                              [
                                ("victim", Trace.Int victim);
                                ("thief", Trace.Int wid);
                                ("node", Trace.Int j);
                              ]
                            ~id:sid "steal";
                          Trace.flow_end ~cat:"steal" ~id:sid "steal"
                        end;
                        t
                    | None -> scan (k + 1)
                in
                scan 1
          in
          (* Busy-vs-idle stamps on the monotonic clock: [busy_ns] sums
             task execution; everything else in the body's wall is steal
             scans and [cpu_relax] idling. Always on — two clock reads
             per task, observation only, so monitored and unmonitored
             runs stay bit-identical either way. *)
          let w0 = Clock.now_ns () in
          (try
             while (not (Atomic.get abort)) && Atomic.get remaining > 0 do
               match next_task () with
               | Some i ->
                   let b0 = Clock.now_ns () in
                   let finish () =
                     log.busy_ns <-
                       log.busy_ns
                       + Clock.duration_ns ~start:b0 ~stop:(Clock.now_ns ())
                   in
                   (match exec log sampler dq i with
                   | () -> finish ()
                   | exception e ->
                       finish ();
                       raise e)
               | None -> Domain.cpu_relax ()
             done
           with e ->
             Mutex.lock coord;
             if !failure = None then failure := Some e;
             Mutex.unlock coord;
             Atomic.set abort true);
          log.wall_ns <- Clock.duration_ns ~start:w0 ~stop:(Clock.now_ns ());
          let h1, m1 = Gibbs.cache_stats sampler in
          log.memo_hits <- h1 - h0;
          log.memo_misses <- m1 - m0
        in
        let t0 = Clock.now () in
        if workers = 1 then worker_body 0
        else Domain_pool.run (Domain_pool.get ()) ~workers worker_body;
        (match !failure with Some e -> raise e | None -> ());
        let wall = Clock.duration ~start:t0 ~stop:(Clock.now ()) in
        (* Merge: node order (first-seen workload order), exactly like the
           sequential strategies. Failed/skipped nodes are excluded from
           the estimates and reported in [faults] instead. *)
        let est_sampler =
          Sampler_cache.get ?method_ ?memoize ?pcache:cache model
        in
        let estimates = ref [] and faults = ref [] in
        for i = n - 1 downto 0 do
          let st = nodes.(i) in
          match st.failed with
          | Some error ->
              faults :=
                {
                  node = i;
                  tuple = st.tuple;
                  error;
                  upstream = st.failed_upstream;
                }
                :: !faults
          | None ->
              estimates :=
                ( st.tuple,
                  Gibbs.estimate_of_points est_sampler st.tuple st.samples )
                :: !estimates
        done;
        let estimates = !estimates and faults = !faults in
        if faults <> [] then begin
          Telemetry.add telemetry "fault.tuples_skipped" (List.length faults);
          Telemetry.add telemetry "fault.upstream_skipped"
            (List.length (List.filter (fun f -> f.upstream <> None) faults))
        end;
        let sum f = Array.fold_left (fun acc l -> acc + f l) 0 logs in
        let sweeps = sum (fun l -> l.sweeps) in
        let recorded = sum (fun l -> l.recorded) + !donated in
        Telemetry.add telemetry "parallel.tasks" (sum (fun l -> l.tasks));
        Telemetry.add telemetry "parallel.steals" (sum (fun l -> l.steals));
        Telemetry.add telemetry "parallel.sweeps" sweeps;
        Telemetry.add telemetry "parallel.shared" !shared;
        Array.iter
          (fun l ->
            Telemetry.observe telemetry "parallel.queue_depth.max"
              (float_of_int l.max_depth);
            let probes = l.memo_hits + l.memo_misses in
            if probes > 0 then
              Telemetry.observe telemetry "gibbs.memo_hit_rate"
                (float_of_int l.memo_hits /. float_of_int probes))
          logs;
        (* Per-worker busy-vs-idle utilization from the task stamps:
           busy time is a subset of the worker body's wall, so each
           slot's ratio is ≤ 1 by construction. The snapshot also feeds
           the labeled mrsl_domain_utilization exposition. *)
        Telemetry.add telemetry "sched.busy_ns"
          (sum (fun l -> l.busy_ns));
        Telemetry.add telemetry "sched.idle_ns"
          (sum (fun l -> max 0 (l.wall_ns - l.busy_ns)));
        let utilization =
          Array.to_list
            (Array.mapi
               (fun wid l ->
                 let u =
                   if l.wall_ns <= 0 then 0.
                   else
                     Float.min 1.
                       (float_of_int l.busy_ns /. float_of_int l.wall_ns)
                 in
                 Telemetry.observe telemetry "sched.utilization" u;
                 (wid, u))
               logs)
        in
        Resource.set_utilization utilization;
        (* Quality hook: pure observation of the merged estimates, after
           all sampling and on the orchestrating domain only — workers
           never see the monitor, so monitored runs stay bit-identical. *)
        (match quality with
        | None -> ()
        | Some q ->
            Quality.attach_model q model;
            Quality.observe_estimates q estimates);
        {
          result =
            {
              Workload.estimates;
              stats =
                { sweeps; recorded; shared = !shared; wall_seconds = wall };
            };
          faults;
        }
      end

let run ?config ?strategy ?method_ ?memoize ?cache ?domains ?telemetry
    ?quality ~seed model workload =
  (run_contained ?config ?strategy ?method_ ?memoize ?cache ?domains
     ?telemetry ~policy:Fail_fast ?quality ~seed model workload)
    .result

(* Retained for callers that want the seed's subsumption-aware static
   partition (benchmarks compare against it); no longer used by [run]. *)
let partition chunks workload =
  let sorted =
    List.sort
      (fun a b ->
        Mining.Itemset.compare (Mining.Itemset.of_tuple a)
          (Mining.Itemset.of_tuple b))
      workload
  in
  let buckets = Array.make chunks [] in
  List.iteri
    (fun i tup -> buckets.(i mod chunks) <- tup :: buckets.(i mod chunks))
    sorted;
  Array.to_list buckets |> List.filter (fun b -> b <> [])
