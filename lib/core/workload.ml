module Log = (val Logs.src_log (Logs.Src.create "mrsl.workload"))

type strategy = Tuple_at_a_time | Tuple_dag | All_at_a_time

let strategy_name = function
  | Tuple_at_a_time -> "tuple-at-a-time"
  | Tuple_dag -> "tuple-DAG"
  | All_at_a_time -> "all-at-a-time"

type stats = {
  sweeps : int;
  recorded : int;
  shared : int;
  wall_seconds : float;
}

type result = {
  estimates : (Relation.Tuple.t * Gibbs.estimate) list;
  stats : stats;
}

(* Mutable per-node sampling state shared by the strategies. *)
type node_state = {
  tuple : Relation.Tuple.t;
  mutable samples : int array list;  (* newest first *)
  mutable count : int;
  mutable chain : Gibbs.chain option;
  mutable completed : bool;
}

let fresh_state tup =
  { tuple = tup; samples = []; count = 0; chain = None; completed = false }

let record st point =
  st.samples <- point :: st.samples;
  st.count <- st.count + 1

let estimate_of_state sampler st =
  Gibbs.estimate_of_points sampler st.tuple st.samples

(* Convergence timeline: one [gibbs.convergence] counter event per
   [convergence_stride target] recorded sweeps, carrying the running
   split-R̂ and min-ESS of the node's chain. Guarded by [Trace.enabled]
   so untraced runs never pay the O(n · cardinality) snapshot. *)
let convergence_stride target = max 8 (target / 8)

let trace_convergence sampler st node =
  if Trace.enabled () then begin
    let rhat, ess =
      Diagnostics.convergence_snapshot sampler st.tuple (List.rev st.samples)
    in
    Trace.counter ~id:node ~cat:"gibbs" "gibbs.convergence"
      [
        ("rhat", (if Float.is_finite rhat then rhat else 1e6));
        ("ess", ess);
        ("node", float_of_int node);
      ]
  end

let tuple_at_a_time config telemetry rng sampler dag sweeps recorded =
  let n = Tuple_dag.node_count dag in
  let states = Array.init n (fun i -> fresh_state (Tuple_dag.tuple dag i)) in
  let stride = convergence_stride config.Gibbs.samples in
  Array.iteri
    (fun i st ->
      Trace.complete ~cat:"gibbs"
        ~args:[ ("node", Trace.Int i) ]
        "workload.node"
      @@ fun () ->
      let c = Gibbs.chain ~telemetry rng sampler st.tuple in
      for _ = 1 to config.Gibbs.burn_in do
        ignore (Gibbs.sweep rng c);
        incr sweeps
      done;
      for _ = 1 to config.Gibbs.samples do
        record st (Gibbs.sweep rng c);
        incr sweeps;
        incr recorded;
        if st.count mod stride = 0 then trace_convergence sampler st i
      done;
      st.completed <- true)
    states;
  states

(* Algorithm 3. The active frontier is a FIFO visited round-robin, one
   sweep per visit. Completion cascades: a node finished by sharing also
   shares onward immediately. *)
let tuple_dag_strategy config telemetry rng sampler dag sweeps recorded
    shared =
  let n = Tuple_dag.node_count dag in
  let states = Array.init n (fun i -> fresh_state (Tuple_dag.tuple dag i)) in
  let target = config.Gibbs.samples in
  let stride = convergence_stride target in
  let frontier = Queue.create () in
  List.iter (fun i -> Queue.add i frontier) (Tuple_dag.roots dag);
  let all_parents_done i =
    List.for_all (fun p -> states.(p).completed) (Tuple_dag.parents dag i)
  in
  let rec complete i =
    let st = states.(i) in
    st.completed <- true;
    List.iter
      (fun j ->
        let sj = states.(j) in
        if not sj.completed then begin
          (* ShareSamples(r, s): donate matching samples, oldest first so
             reruns are deterministic, up to the target. *)
          List.iter
            (fun point ->
              if sj.count < target
                 && Relation.Tuple.matches ~point sj.tuple
              then begin
                record sj point;
                incr recorded;
                incr shared
              end)
            (List.rev st.samples);
          if sj.count >= target then complete j
          else if all_parents_done j then Queue.add j frontier
        end)
      (Tuple_dag.children dag i)
  in
  while not (Queue.is_empty frontier) do
    let i = Queue.pop frontier in
    let st = states.(i) in
    if not st.completed then begin
      let c =
        match st.chain with
        | Some c -> c
        | None ->
            let c = Gibbs.chain ~telemetry rng sampler st.tuple in
            for _ = 1 to config.Gibbs.burn_in do
              ignore (Gibbs.sweep rng c);
              incr sweeps
            done;
            st.chain <- Some c;
            c
      in
      record st (Gibbs.sweep rng c);
      incr sweeps;
      incr recorded;
      if st.count mod stride = 0 then trace_convergence sampler st i;
      if st.count >= target then complete i else Queue.add i frontier
    end
  done;
  states

let all_at_a_time config telemetry rng sampler dag max_draws sweeps recorded =
  let n = Tuple_dag.node_count dag in
  let states = Array.init n (fun i -> fresh_state (Tuple_dag.tuple dag i)) in
  if n > 0 then begin
    let arity = Array.length (Tuple_dag.tuple dag 0) in
    let star = Array.make arity None in
    let c = Gibbs.chain ~telemetry rng sampler star in
    for _ = 1 to config.Gibbs.burn_in do
      ignore (Gibbs.sweep rng c);
      incr sweeps
    done;
    let target = config.Gibbs.samples in
    let remaining = ref n in
    let draws = ref 0 in
    while !remaining > 0 && !draws < max_draws do
      let point = Gibbs.sweep rng c in
      incr sweeps;
      incr draws;
      Array.iter
        (fun st ->
          if (not st.completed)
             && st.count < target
             && Relation.Tuple.matches ~point st.tuple
          then begin
            record st point;
            incr recorded;
            if st.count >= target then begin
              st.completed <- true;
              decr remaining
            end
          end)
        states
    done;
    (* Tuples whose evidence the global chain never produced get a direct
       chain so every workload member still receives an estimate. *)
    Array.iter
      (fun st ->
        if st.count = 0 then begin
          let c = Gibbs.chain ~telemetry rng sampler st.tuple in
          for _ = 1 to config.Gibbs.burn_in do
            ignore (Gibbs.sweep rng c);
            incr sweeps
          done;
          for _ = 1 to target do
            record st (Gibbs.sweep rng c);
            incr sweeps;
            incr recorded
          done
        end;
        st.completed <- true)
      states
  end;
  states

let run ?(config = Gibbs.default_config) ?(strategy = Tuple_dag)
    ?(max_draws = 10_000_000) ?(telemetry = Telemetry.global) ?quality rng
    sampler workload =
  if max_draws < 1 then invalid_arg "Workload.run: max_draws must be positive";
  let dag =
    Trace.complete ~cat:"dag" "dag.build" (fun () -> Tuple_dag.build workload)
  in
  (* Request dedup: when the sampler carries a posterior cache, group the
     raw workload's (tuple, missing attribute) tasks by evidence signature
     and compute each distinct posterior once up front — chain inits then
     hit the cache instead of re-running lattice matching + voting. Runs
     over the raw workload (not the deduplicated DAG) so repeated client
     tuples count toward the fan-out. Purely a wall-time move: cached
     posteriors are bit-identical to the uncached computation, and the
     inference RNG is untouched. *)
  (match Gibbs.posterior_cache sampler with
  | None -> ()
  | Some cache ->
      let model = Gibbs.model sampler in
      let method_ = Gibbs.voting_method sampler in
      ignore
        (Posterior_cache.prewarm cache model ~method_
           ~compute:(fun tup a ->
             Infer_single.infer ~method_ ~telemetry model tup a)
           workload));
  let sweeps = ref 0 and recorded = ref 0 and shared = ref 0 in
  let memo_hits0, memo_misses0 = Gibbs.cache_stats sampler in
  let t0 = Clock.now () in
  let states =
    Telemetry.span telemetry "workload.run" (fun () ->
        match strategy with
        | Tuple_at_a_time ->
            tuple_at_a_time config telemetry rng sampler dag sweeps recorded
        | Tuple_dag ->
            tuple_dag_strategy config telemetry rng sampler dag sweeps
              recorded shared
        | All_at_a_time ->
            all_at_a_time config telemetry rng sampler dag max_draws sweeps
              recorded)
  in
  let wall = Clock.duration ~start:t0 ~stop:(Clock.now ()) in
  Telemetry.add telemetry "workload.sweeps" !sweeps;
  Telemetry.add telemetry "workload.recorded" !recorded;
  Telemetry.add telemetry "workload.shared" !shared;
  Telemetry.observe telemetry "workload.tuples"
    (float_of_int (Tuple_dag.node_count dag));
  let memo_hits1, memo_misses1 = Gibbs.cache_stats sampler in
  let probes = memo_hits1 - memo_hits0 + (memo_misses1 - memo_misses0) in
  if probes > 0 then
    Telemetry.observe telemetry "gibbs.memo_hit_rate"
      (float_of_int (memo_hits1 - memo_hits0) /. float_of_int probes);
  Log.info (fun m ->
      m "%s: %d distinct tuples, %d sweeps (%d recorded, %d shared) in %.3fs"
        (strategy_name strategy)
        (Tuple_dag.node_count dag)
        !sweeps !recorded !shared wall);
  let estimates =
    Array.to_list
      (Array.map (fun st -> (st.tuple, estimate_of_state sampler st)) states)
  in
  (* Quality hook: observation only, after every sample has been drawn —
     the monitor never touches the sampler or the inference RNG. *)
  (match quality with
  | None -> ()
  | Some q ->
      Quality.attach_model q (Gibbs.model sampler);
      Quality.observe_estimates q estimates);
  {
    estimates;
    stats =
      { sweeps = !sweeps; recorded = !recorded; shared = !shared;
        wall_seconds = wall };
  }
