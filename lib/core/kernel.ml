(* Compiled per-epoch inference kernels (see kernel.mli). The compiled
   vote replays the interpreted float program exactly — same voter
   order, same accumulation order, same Dist.of_weights normalization —
   so compiled posteriors are bit-identical to the interpreted oracle,
   and anything the compiled path cannot guarantee returns None to the
   interpreted path instead of approximating. *)

(* --- per-attribute compiled form -------------------------------------- *)

(* Rules are stored in Lattice.meta_rules order minus the root: (body
   size ascending, Itemset.compare ascending). For rules that co-match a
   tuple this equals Lattice.matching's discovery order — matching
   enumerates known-cell subsets by size then lexicographically by
   attribute sequence, and co-matching bodies agree on shared values, so
   Itemset.compare degenerates to the attribute-sequence order. A linear
   scan in index order therefore collects matches in discovery order,
   and iterating the matched array backwards (root last) reproduces the
   interpreted voter list exactly. *)
type attr_kernel = {
  nrules : int;  (* excluding the root; the root is virtual rule [nrules] *)
  head_card : int;
  body_attrs : int array;  (* the lattice's, ascending *)
  offsets : int array;  (* bit offset of each body_attrs position *)
  vmask : int array;  (* per rule: field mask over its body positions *)
  vbits : int array;  (* per rule: packed body assignment (digits v+1) *)
  cpds : float array;  (* (nrules + 1) × head_card, root row last *)
  weights : float array;  (* nrules + 1, root weight last *)
  sup_off : int array;  (* nrules + 1 prefix offsets into sup_idx *)
  sup_idx : int array;  (* strict-superset rule ids, ascending per rule *)
  ok : bool;  (* false → fallback attribute (code wider than 62 bits) *)
}

type t = { epoch : int; attrs : attr_kernel array }

let attr_compiled t a = t.attrs.(a).ok

(* The packed evidence code — one bit field per body attribute, holding
   digit 0 for missing and v+1 for value v — must fit a native int; 62
   bits leaves the tag bit and a sign margin on 64-bit. Wide tuples or
   large cardinalities that exceed it are detected here, at compile
   time, and the whole attribute falls back to the interpreted path
   (never a silently truncated code). *)
let max_code_bits = 62

(* Bits for the digit range 0..card (card+1 distinct digits). *)
let bits_for card =
  let b = ref 1 in
  while 1 lsl !b <= card do
    incr b
  done;
  !b

let compile_attr ~cards lattice =
  let root = Lattice.root lattice in
  let rules =
    Lattice.meta_rules lattice
    |> List.filter (fun (m : Meta_rule.t) ->
           not (Mining.Itemset.is_empty m.body))
    |> Array.of_list
  in
  let nrules = Array.length rules in
  let ba = Lattice.body_attrs lattice in
  let nba = Array.length ba in
  let card = Lattice.head_card lattice in
  let offsets = Array.make (max 1 nba) 0 in
  let total_bits = ref 0 in
  Array.iteri
    (fun p attr ->
      offsets.(p) <- min !total_bits max_code_bits;
      total_bits := !total_bits + bits_for cards.(attr))
    ba;
  let ok = !total_bits <= max_code_bits in
  let pos_of =
    let max_attr = Array.fold_left max 0 ba in
    let pos = Array.make (max_attr + 1) (-1) in
    Array.iteri (fun p attr -> pos.(attr) <- p) ba;
    fun attr -> pos.(attr)
  in
  let vmask = Array.make (max 1 nrules) 0 in
  let vbits = Array.make (max 1 nrules) 0 in
  let cpds = Array.make ((nrules + 1) * card) 0. in
  let weights = Array.make (nrules + 1) 0. in
  Array.iteri
    (fun r (m : Meta_rule.t) ->
      if ok then
        List.iter
          (fun (attr, v) ->
            let p = pos_of attr in
            vmask.(r) <-
              vmask.(r) lor (((1 lsl bits_for cards.(attr)) - 1) lsl offsets.(p));
            vbits.(r) <- vbits.(r) lor ((v + 1) lsl offsets.(p)))
          (Mining.Itemset.to_list m.body);
      Array.blit (m.cpd : Prob.Dist.t :> float array) 0 cpds (r * card) card;
      weights.(r) <- m.weight)
    rules;
  Array.blit (root.cpd : Prob.Dist.t :> float array) 0 cpds (nrules * card) card;
  weights.(nrules) <- root.weight;
  (* Strict-superset index ranges: rule [i]'s range lists every rule
     whose body strictly contains [i]'s — precomputed subsumption, so
     the Best filter is a membership test instead of an itemset scan. *)
  let sup_lists = Array.make (max 1 nrules) [] in
  let total_sup = ref 0 in
  for i = 0 to nrules - 1 do
    let acc = ref [] in
    for j = nrules - 1 downto 0 do
      if Mining.Itemset.proper_subset rules.(i).body rules.(j).body then
        acc := j :: !acc
    done;
    sup_lists.(i) <- !acc;
    total_sup := !total_sup + List.length !acc
  done;
  let sup_off = Array.make (nrules + 1) 0 in
  let sup_idx = Array.make (max 1 !total_sup) 0 in
  let soff = ref 0 in
  for i = 0 to nrules - 1 do
    sup_off.(i) <- !soff;
    List.iter
      (fun j ->
        sup_idx.(!soff) <- j;
        incr soff)
      sup_lists.(i)
  done;
  sup_off.(nrules) <- !soff;
  {
    nrules;
    head_card = card;
    body_attrs = ba;
    offsets;
    vmask;
    vbits;
    cpds;
    weights;
    sup_off;
    sup_idx;
    ok;
  }

let compile model =
  let schema = Model.schema model in
  let arity = Relation.Schema.arity schema in
  let cards = Array.init arity (Relation.Schema.cardinality schema) in
  {
    epoch = Model.epoch model;
    attrs = Array.init arity (fun a -> compile_attr ~cards (Model.lattice model a));
  }

(* --- registry ---------------------------------------------------------- *)

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Small MRU list behind an atomic: kernels are immutable, epochs are
   process-unique, so a lost CAS just means another domain published the
   same (or a different) epoch's kernel first — retry and find it. *)
let max_entries = 8
let registry : t list Atomic.t = Atomic.make []

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let rec ensure ?(telemetry = Telemetry.global) model =
  let epoch = Model.epoch model in
  let cur = Atomic.get registry in
  match List.find_opt (fun k -> k.epoch = epoch) cur with
  | Some k -> k
  | None ->
      let k =
        Trace.complete ~cat:"kernel"
          ~args:[ ("epoch", Trace.Int epoch) ]
          "kernel.compile"
          (fun () -> compile model)
      in
      if Atomic.compare_and_set registry cur (k :: take (max_entries - 1) cur)
      then begin
        Telemetry.incr telemetry "kernel.compiles";
        k
      end
      else ensure ~telemetry model

let rec invalidate_stale ~current =
  let epoch = Model.epoch current in
  let cur = Atomic.get registry in
  let next = List.filter (fun k -> k.epoch = epoch) cur in
  if not (Atomic.compare_and_set registry cur next) then
    invalidate_stale ~current

(* Degraded posteriors must come from the interpreted ladder: voter-drop
   fault injection changes infer's output without an epoch change, so
   while it is active the kernel steps aside (like Posterior_cache). *)
let bypassed () =
  (Fault_inject.current ()).Fault_inject.voter_drop_rate > 0.

(* --- the compiled vote ------------------------------------------------- *)

(* The tuple's packed evidence over the lattice's body attributes:
   digit 0 for a missing cell, v+1 for value v, each in its own bit
   field. Rule [r] matches iff [vector land vmask.(r) = vbits.(r)] —
   a missing cell's 0 digit can never equal the v+1 a rule demands, so
   the single compare covers both known-ness and value equality. *)
let tuple_vector ak tup =
  let t = ref 0 in
  for p = 0 to Array.length ak.body_attrs - 1 do
    match tup.(ak.body_attrs.(p)) with
    | Some v -> t := !t lor ((v + 1) lsl ak.offsets.(p))
    | None -> ()
  done;
  !t

(* Matched rule ids live in a small bitset (one bit per rule) rather
   than an index buffer: per-vote allocation is a handful of words, and
   the Best subsumption check is a bit probe. 62 bits per word keeps
   every shift on tagged-int-safe ground. *)
let bitset_bits = 62

let vote ak (method_ : Voting.method_) tup =
  let nwords = (ak.nrules / bitset_bits) + 1 in
  let matched = Array.make nwords 0 in
  let tv = tuple_vector ak tup in
  let kk = ref 0 in
  for r = 0 to ak.nrules - 1 do
    if tv land ak.vmask.(r) = ak.vbits.(r) then begin
      matched.(r / bitset_bits) <-
        matched.(r / bitset_bits) lor (1 lsl (r mod bitset_bits));
      incr kk
    end
  done;
  let kk = !kk in
  let mem r =
    matched.(r / bitset_bits) land (1 lsl (r mod bitset_bits)) <> 0
  in
  (* Best = Lattice.most_specific: drop every match with a matched
     strict superset. The root's empty body is a strict subset of any
     non-root body, so it survives only when nothing else matched. *)
  let voters =
    match method_.choice with
    | Voting.All -> matched
    | Voting.Best ->
        let kept = Array.copy matched in
        for r = 0 to ak.nrules - 1 do
          if mem r then begin
            let stop = ak.sup_off.(r + 1) in
            let rec subsumed j =
              j < stop && (mem ak.sup_idx.(j) || subsumed (j + 1))
            in
            if subsumed ak.sup_off.(r) then
              kept.(r / bitset_bits) <-
                kept.(r / bitset_bits) land lnot (1 lsl (r mod bitset_bits))
          end
        done;
        kept
  in
  let include_root =
    match method_.choice with Voting.All -> true | Voting.Best -> kk = 0
  in
  (* Voters in the interpreted list order: matched rules in reverse
     discovery order (= descending rule index), then the root. *)
  let each f =
    for w = nwords - 1 downto 0 do
      let word = voters.(w) in
      if word <> 0 then
        for b = bitset_bits - 1 downto 0 do
          if word land (1 lsl b) <> 0 then f ((w * bitset_bits) + b)
        done
    done;
    if include_root then f ak.nrules
  in
  let card = ak.head_card in
  let averaged () =
    let acc = Array.make card 0. in
    each (fun r ->
        let row = r * card in
        for c = 0 to card - 1 do
          acc.(c) <- acc.(c) +. ak.cpds.(row + c)
        done);
    acc
  in
  let acc =
    match method_.scheme with
    | Voting.Averaged -> averaged ()
    | Voting.Weighted ->
        let wsum = ref 0. in
        each (fun r -> wsum := !wsum +. ak.weights.(r));
        if !wsum <= 0. then averaged ()
        else begin
          let acc = Array.make card 0. in
          each (fun r ->
              let w = ak.weights.(r) in
              let row = r * card in
              for c = 0 to card - 1 do
                acc.(c) <- acc.(c) +. (w *. ak.cpds.(row + c))
              done);
          acc
        end
  in
  (* The same normalization call the interpreted combine ends with; its
     Invalid_argument cases are exactly the ones infer_rung degrades on,
     so they go back to the interpreted ladder (telemetry included). *)
  match Prob.Dist.of_weights acc with
  | d when Array.for_all Float.is_finite (d : Prob.Dist.t :> float array) ->
      Some d
  | _ -> None
  | exception Invalid_argument _ -> None

let posterior ?(telemetry = Telemetry.global) ~method_ model tup a =
  if (not (enabled ())) || bypassed () then None
  else begin
    let k = ensure ~telemetry model in
    let ak = k.attrs.(a) in
    if not ak.ok then begin
      Telemetry.incr telemetry "kernel.fallback";
      None
    end
    else
      match vote ak method_ tup with
      | Some d ->
          Telemetry.incr telemetry "kernel.hits";
          Some d
      | None ->
          Telemetry.incr telemetry "kernel.fallback";
          None
  end

(* --- coded cache keys --------------------------------------------------- *)

(* The packed evidence vector doubles as the cache context code: it is
   a mixed-radix code with power-of-two place values, injective over
   the lattice-relevant evidence contexts whenever the attribute
   compiled ([ok]). *)
let cache_code model tup a =
  if (not (enabled ())) || bypassed () then None
  else
    let k = ensure model in
    let ak = k.attrs.(a) in
    if ak.ok then Some (tuple_vector ak tup) else None
