(** Monotonic time source.

    [Unix.gettimeofday] is a wall clock; NTP steps can move it backwards,
    which made {!Telemetry.span} durations and the wall budgets of
    {!Parallel}, {!Workload}, and {!Diagnostics.run_with_retries}
    occasionally negative. This module reads [CLOCK_MONOTONIC] via a tiny
    C stub (with a guarded realtime fallback on exotic hosts) and is the
    single time source for spans, trace events, and wall budgets. *)

val now_ns : unit -> int
(** Nanoseconds since an unspecified (boot-relative) epoch. Monotonic:
    never decreases within a process. *)

val now : unit -> float
(** [now_ns] in seconds. *)

val duration_ns : start:int -> stop:int -> int
(** [max 0 (stop - start)] — clamped so that even a non-monotonic
    fallback source can never yield a negative duration. *)

val duration : start:float -> stop:float -> float
(** Same clamp in seconds. *)
