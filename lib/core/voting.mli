(** Voter selection and vote combination (Section IV).

    The paper implements two voter-selection mechanisms and two voting
    schemes, giving the four methods evaluated in Table II:
    all-averaged, all-weighted, best-averaged, best-weighted. *)

type choice = All | Best
(** [All] — every matching meta-rule votes. [Best] — only the most
    specific matches (those subsuming no other match) vote. *)

type scheme = Averaged | Weighted
(** [Averaged] — position-wise mean of the voters' CPDs. [Weighted] —
    mean weighted by meta-rule support. *)

type method_ = { choice : choice; scheme : scheme }

val all_averaged : method_
val all_weighted : method_
val best_averaged : method_
val best_weighted : method_

val all_methods : method_ list
(** The four methods, in Table II column order. *)

val method_name : method_ -> string
(** e.g. ["best averaged"]. *)

val method_of_string : string -> method_ option
(** Parse ["all-averaged"], ["best_weighted"], etc. (separator and case
    insensitive). *)

val select : choice -> Meta_rule.t list -> Meta_rule.t list
(** Apply the voter-selection mechanism to a set of matches. *)

val combine : scheme -> Meta_rule.t list -> Prob.Dist.t
(** Combine the selected voters' CPDs. Raises [Invalid_argument] on an
    empty voter list — callers inside the library go through
    {!Infer_single.infer}, whose degradation ladder guarantees the
    empty-voter case falls back to the attribute's marginal prior (or
    uniform) instead of escaping as an exception. *)
