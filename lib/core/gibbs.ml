type config = { burn_in : int; samples : int }

let default_config = { burn_in = 100; samples = 1000 }

type sampler = {
  model : Model.t;
  method_ : Voting.method_;
  cards : int array;
  (* Mixed-radix code of a full point (with the resampled attribute zeroed)
     composed with the attribute index; [None] when the schema's domain is
     too large to key safely. *)
  memo : (int, Prob.Dist.t) Hashtbl.t option;
  domain_size : int;
  cache : Posterior_cache.t option;
      (* cross-run, cross-sampler evidence-keyed posterior cache; the memo
         above remains the per-sampler full-point fast path *)
  mutable hits : int;
  mutable misses : int;
}

(* Distinguish "the joint domain is too large to key the memo" (an
   [int] overflow — expected for wide schemas, and merely disables
   memoization) from a malformed schema (cardinality < 1 — a real
   programming error). The seed implementation folded both into a [-1]
   sentinel, silently masking the latter. *)
let memo_domain_size cards =
  Array.iter
    (fun c ->
      if c < 1 then
        invalid_arg "Gibbs.sampler: schema cardinality must be >= 1")
    cards;
  match Relation.Domain.count cards with
  | n -> Some n
  | exception Invalid_argument _ -> None (* overflow only: cards validated *)

let sampler ?(method_ = Voting.best_averaged) ?(memoize = true) ?cache model =
  let schema = Model.schema model in
  let arity = Relation.Schema.arity schema in
  let cards = Array.init arity (Relation.Schema.cardinality schema) in
  let domain_size =
    match memo_domain_size cards with Some n -> n | None -> -1
  in
  let memo =
    if memoize && domain_size > 0 && domain_size < 1 lsl 40 then
      Some (Hashtbl.create 4096)
    else None
  in
  { model; method_; cards; memo; domain_size; cache; hits = 0; misses = 0 }

let model s = s.model
let voting_method s = s.method_
let posterior_cache s = s.cache

let evidence_tuple point a =
  Array.mapi (fun i v -> if i = a then None else Some v) point

let compute_conditional s point a =
  Infer_single.infer ~method_:s.method_ ?cache:s.cache s.model
    (evidence_tuple point a) a

let conditional s point a =
  match s.memo with
  | None -> compute_conditional s point a
  | Some memo ->
      let saved = point.(a) in
      point.(a) <- 0;
      let code = Relation.Domain.encode s.cards point in
      point.(a) <- saved;
      let key = (a * s.domain_size) + code in
      (match Hashtbl.find_opt memo key with
      | Some d ->
          s.hits <- s.hits + 1;
          d
      | None ->
          s.misses <- s.misses + 1;
          let d = compute_conditional s point a in
          Hashtbl.add memo key d;
          d)

let cache_stats s = (s.hits, s.misses)

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let publish_cache_stats ?(telemetry = Telemetry.global) s =
  let hits, misses = cache_stats s in
  Telemetry.add telemetry "gibbs.memo_hits" hits;
  Telemetry.add telemetry "gibbs.memo_misses" misses;
  if hits + misses > 0 then
    Telemetry.observe telemetry "gibbs.memo_hit_rate" (hit_rate s)

type chain = {
  sampler : sampler;
  tuple : Relation.Tuple.t;
  missing : int array;
  state : int array;  (* current complete point; evidence slots fixed *)
}

let chain ?(telemetry = Telemetry.global) rng s tup =
  (* Allocation accounting (ROADMAP item 2 baseline): one atomic load
     when no Resource monitor is installed; observation only either
     way. *)
  Resource.alloc_span ~telemetry "mem.alloc_per_chain_bytes" @@ fun () ->
  let arity = Relation.Schema.arity (Model.schema s.model) in
  if Array.length tup <> arity then
    invalid_arg "Gibbs.chain: tuple arity does not match model schema";
  let missing = Array.of_list (Relation.Tuple.missing tup) in
  if Array.length missing = 0 then
    invalid_arg "Gibbs.chain: tuple is complete";
  (* Ensemble-health denominator: chains started, so nonconvergence and
     degradation counts can be read as shares of sampling activity. *)
  Telemetry.incr telemetry "gibbs.chains";
  let state = Array.map (function Some v -> v | None -> 0) tup in
  (* Initialize each missing attribute from its single-attribute estimate
     given the evidence only — a valid positive starting state. This is
     where the ensemble-voting layer runs un-memoized, so it carries the
     [voting] trace slice for the chain. *)
  Trace.complete ~cat:"voting"
    ~args:[ ("missing", Trace.Int (Array.length missing)) ]
    "gibbs.chain_init"
  @@ fun () ->
  Array.iter
    (fun a ->
      let d =
        Infer_single.infer ~method_:s.method_ ?cache:s.cache s.model tup a
      in
      state.(a) <- Prob.Dist.sample rng d)
    missing;
  { sampler = s; tuple = tup; missing; state }

let sweep rng c =
  Array.iter
    (fun a ->
      let d = conditional c.sampler c.state a in
      c.state.(a) <- Prob.Dist.sample rng d)
    c.missing;
  Array.copy c.state

type estimate = {
  tuple : Relation.Tuple.t;
  missing : int list;
  cards : int array;
  joint : Prob.Dist.t;
  samples_used : int;
}

let estimate_of_points (s : sampler) tup points =
  if points = [] then invalid_arg "Gibbs.estimate_of_points: no samples";
  let missing = Relation.Tuple.missing tup in
  let missing_arr = Array.of_list missing in
  let cards = Array.map (fun a -> s.cards.(a)) missing_arr in
  let total = Relation.Domain.count cards in
  let counts = Array.make total 0. in
  let values = Array.make (Array.length missing_arr) 0 in
  let n = ref 0 in
  List.iter
    (fun point ->
      Array.iteri (fun k a -> values.(k) <- point.(a)) missing_arr;
      let code = Relation.Domain.encode cards values in
      counts.(code) <- counts.(code) +. 1.;
      incr n)
    points;
  let freq = Array.map (fun c -> c /. float_of_int !n) counts in
  {
    tuple = tup;
    missing;
    cards;
    joint = Prob.Dist.smooth freq;
    samples_used = !n;
  }

let marginal est a =
  let missing_arr = Array.of_list est.missing in
  let pos =
    match Array.find_index (Int.equal a) missing_arr with
    | Some p -> p
    | None -> invalid_arg "Gibbs.marginal: attribute not missing in estimate"
  in
  let marg = Array.make est.cards.(pos) 0. in
  Relation.Domain.iter est.cards (fun code values ->
      marg.(values.(pos)) <- marg.(values.(pos)) +. Prob.Dist.prob est.joint code);
  Prob.Dist.of_weights marg

let run ?(config = default_config) rng s tup =
  if config.burn_in < 0 || config.samples < 1 then
    invalid_arg "Gibbs.run: bad burn-in or sample count";
  let c = chain rng s tup in
  for _ = 1 to config.burn_in do
    ignore (sweep rng c)
  done;
  let points = List.init config.samples (fun _ -> sweep rng c) in
  estimate_of_points s tup points
