type config = {
  seed : int;
  task_failure_rate : float;
  csv_corruption_rate : float;
  nonconvergence_rate : float;
  voter_drop_rate : float;
  torn_frame_rate : float;
  stall_write_rate : float;
  conn_drop_rate : float;
}

let disabled =
  {
    seed = 0;
    task_failure_rate = 0.;
    csv_corruption_rate = 0.;
    nonconvergence_rate = 0.;
    voter_drop_rate = 0.;
    torn_frame_rate = 0.;
    stall_write_rate = 0.;
    conn_drop_rate = 0.;
  }

let check_rate name r =
  if not (Float.is_finite r) || r < 0. || r > 1. then
    invalid_arg (Printf.sprintf "Fault_inject: %s must be in [0, 1]" name)

let validate c =
  check_rate "task_failure_rate" c.task_failure_rate;
  check_rate "csv_corruption_rate" c.csv_corruption_rate;
  check_rate "nonconvergence_rate" c.nonconvergence_rate;
  check_rate "voter_drop_rate" c.voter_drop_rate;
  check_rate "torn_frame_rate" c.torn_frame_rate;
  check_rate "stall_write_rate" c.stall_write_rate;
  check_rate "conn_drop_rate" c.conn_drop_rate

let state = Atomic.make disabled

let configure c =
  validate c;
  Atomic.set state c

let reset () = Atomic.set state disabled
let current () = Atomic.get state

let active () =
  let c = current () in
  c.task_failure_rate > 0. || c.csv_corruption_rate > 0.
  || c.nonconvergence_rate > 0. || c.voter_drop_rate > 0.
  || c.torn_frame_rate > 0. || c.stall_write_rate > 0.
  || c.conn_drop_rate > 0.

let with_config c f =
  let prev = Atomic.get state in
  configure c;
  Fun.protect ~finally:(fun () -> Atomic.set state prev) f

let describe c =
  Printf.sprintf
    "fault injection: seed=%d task=%.3f csv=%.3f nonconv=%.3f voters=%.3f \
     torn=%.3f stall=%.3f drop=%.3f"
    c.seed c.task_failure_rate c.csv_corruption_rate c.nonconvergence_rate
    c.voter_drop_rate c.torn_frame_rate c.stall_write_rate c.conn_drop_rate

(* --- deterministic decisions ---------------------------------------- *)

(* splitmix64 finalizer: decisions are a pure function of
   (config seed, site, key) — independent of call order, domain count,
   and steal interleavings, which is what makes injected faults
   reproducible and the containment tests meaningful. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash ~seed ~site ~key =
  mix64
    (Int64.add
       (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
       (Int64.add
          (Int64.mul (Int64.of_int site) 0xC2B2AE3D27D4EB4FL)
          (Int64.of_int key)))

let two_pow_53 = 9007199254740992.0

let unit_float ~seed ~site ~key =
  Int64.to_float (Int64.shift_right_logical (hash ~seed ~site ~key) 11)
  /. two_pow_53

let hit rate ~site ~key =
  if rate <= 0. then false
  else if rate >= 1. then true
  else unit_float ~seed:(current ()).seed ~site ~key < rate

let site_task = 1
let site_csv = 2
let site_nonconv = 3
let site_voters = 4
let site_shape = 5
let site_torn = 6
let site_stall = 7
let site_drop = 8

let should_fail_task ~node =
  hit (current ()).task_failure_rate ~site:site_task ~key:node

let should_corrupt_row ~line =
  hit (current ()).csv_corruption_rate ~site:site_csv ~key:line

let should_force_nonconvergence ~key =
  hit (current ()).nonconvergence_rate ~site:site_nonconv ~key

let should_drop_voters ~key =
  hit (current ()).voter_drop_rate ~site:site_voters ~key

let should_tear_frame ~key = hit (current ()).torn_frame_rate ~site:site_torn ~key
let should_stall_write ~key = hit (current ()).stall_write_rate ~site:site_stall ~key
let should_drop_conn ~key = hit (current ()).conn_drop_rate ~site:site_drop ~key

(* --- CSV corruption -------------------------------------------------- *)

(* Three corruption shapes, chosen by the same deterministic hash:
   an extra trailing field (ragged row), an unterminated quote, and a
   value outside any schema domain. The header (line 1) is never
   corrupted. Returns the document plus the 1-based corrupted lines. *)
let corrupt_line ~line text =
  let shape =
    Int64.to_int
      (Int64.rem
         (Int64.shift_right_logical
            (hash ~seed:(current ()).seed ~site:site_shape ~key:line) 17)
         3L)
  in
  match shape with
  | 0 -> text ^ ",__extra__"
  | 1 -> text ^ ",\"unterminated"
  | _ -> (
      match String.index_opt text ',' with
      | Some i ->
          "__FAULT__" ^ String.sub text i (String.length text - i)
      | None -> "__FAULT__")

let corrupt_csv text =
  let lines = String.split_on_char '\n' text in
  let corrupted = ref [] in
  let out =
    List.mapi
      (fun i l ->
        let line = i + 1 in
        if line > 1 && String.trim l <> "" && should_corrupt_row ~line then begin
          corrupted := line :: !corrupted;
          corrupt_line ~line l
        end
        else l)
      lines
  in
  (String.concat "\n" out, List.rev !corrupted)

(* --- environment ------------------------------------------------------ *)

let install_from_env () =
  let getf name = Option.bind (Sys.getenv_opt name) float_of_string_opt in
  let geti name = Option.bind (Sys.getenv_opt name) int_of_string_opt in
  let seed = geti "MRSL_FAULT_SEED" in
  let task = getf "MRSL_FAULT_TASK_RATE" in
  let csv = getf "MRSL_FAULT_CSV_RATE" in
  let nonconv = getf "MRSL_FAULT_NONCONV_RATE" in
  let voters = getf "MRSL_FAULT_VOTER_RATE" in
  let torn = getf "MRSL_FAULT_TORN_FRAME_RATE" in
  let stall = getf "MRSL_FAULT_STALL_WRITE_RATE" in
  let drop = getf "MRSL_FAULT_CONN_DROP_RATE" in
  if
    List.for_all Option.is_none [ task; csv; nonconv; voters; torn; stall; drop ]
    && seed = None
  then false
  else begin
    configure
      {
        seed = Option.value seed ~default:0;
        task_failure_rate = Option.value task ~default:0.;
        csv_corruption_rate = Option.value csv ~default:0.;
        nonconvergence_rate = Option.value nonconv ~default:0.;
        voter_drop_rate = Option.value voters ~default:0.;
        torn_frame_rate = Option.value torn ~default:0.;
        stall_write_rate = Option.value stall ~default:0.;
        conn_drop_rate = Option.value drop ~default:0.;
      };
    true
  end
