(** Convergence diagnostics for the Gibbs sampler.

    Section V-A: "The length of burn-in (B), and the subsequent number of
    iterations (N), may be estimated using standard techniques." This
    module implements those standard techniques for the MRSL sampler:

    - {e Gelman–Rubin} potential scale reduction (R̂) across several
      independent chains, computed on the indicator series of every
      (missing attribute, value) pair and reported as the maximum;
    - {e effective sample size} per chain from the autocorrelation of the
      same indicator series (initial-positive-sequence estimator),
      reported as the minimum over indicators. *)

type report = {
  psrf_max : float;  (** max Gelman–Rubin R̂ over all value indicators *)
  ess_min : float;  (** min effective sample size over all indicators *)
  chains : int;
  draws_per_chain : int;
}

val potential_scale_reduction : float array array -> float
(** [potential_scale_reduction series] — R̂ for one scalar statistic from
    [m] chains of equal length [n] ([series.(i)] is chain [i]). Returns 1.0
    when the statistic is constant. Raises [Invalid_argument] with fewer
    than 2 chains, chains shorter than 4, or ragged lengths. *)

val effective_sample_size : float array -> float
(** ESS of a single scalar series via the initial positive sequence of
    autocorrelations; at most the series length, at least 1. *)

val diagnose : ?chains:int -> ?draws:int -> ?burn_in:int -> Prob.Rng.t ->
  Gibbs.sampler -> Relation.Tuple.t -> report
(** Run several independent chains (default 4 × 500 draws after a burn-in
    of 100) for an incomplete tuple and summarize convergence. A
    well-mixed sampler has [psrf_max] close to 1 (≤ 1.1 is the customary
    threshold) and a healthy [ess_min]. *)

val converged : ?threshold:float -> report -> bool
(** [psrf_max <= threshold] (default 1.1). *)

(** {1 Convergence-driven retry}

    The fault-containment layer's answer to "the chain did not mix":
    instead of returning a silently unconverged estimate, the driver
    measures split-R̂ on the recorded points, retries with doubled draws
    while the budget lasts, and finally returns the estimate {e flagged}
    as non-converged. *)

type retry_policy = {
  rhat_threshold : float;  (** retry while split-R̂ exceeds this (1.1) *)
  max_retries : int;  (** additional attempts after the first (2) *)
  max_total_sweeps : int;
      (** sweep budget across all attempts, burn-ins included (200 000) *)
  max_wall_seconds : float;  (** wall-clock budget (infinite) *)
}

val default_retry_policy : retry_policy

type checked = {
  estimate : Gibbs.estimate;  (** the final attempt's estimate *)
  rhat : float;  (** its split-R̂ (1.0 when too short to diagnose) *)
  converged : bool;  (** false ⇒ degraded: budget ran out unconverged *)
  attempts : int;  (** >= 1 *)
  total_sweeps : int;  (** sweeps spent across all attempts *)
}

val split_rhat : Gibbs.sampler -> Relation.Tuple.t -> int array list -> float
(** Max split-halves R̂ over every (missing attribute, value) indicator
    series of one run's recorded points (oldest first). Returns 1.0 for
    fewer than 8 points. *)

val convergence_snapshot :
  Gibbs.sampler -> Relation.Tuple.t -> int array list -> float * float
(** [(split-R̂, min ESS)] over one run's recorded points so far — the
    payload of the event-tracing layer's per-chain convergence timeline
    ({!Trace} counter events named [gibbs.convergence], emitted every few
    recorded sweeps by {!Parallel}, {!Workload}, and
    {!run_with_retries} when a trace sink is installed). ESS is the
    minimum over every (missing attribute, value) indicator series. *)

val run_with_retries : ?config:Gibbs.config -> ?policy:retry_policy ->
  ?telemetry:Telemetry.t -> Prob.Rng.t -> Gibbs.sampler ->
  Relation.Tuple.t -> checked
(** Gibbs inference for one incomplete tuple with convergence retries:
    run burn-in + N draws, check split-R̂; while it exceeds
    [rhat_threshold] and the retry/sweep/wall budgets allow, run a fresh
    chain with doubled draws. Each checked run counts [gibbs.checked] in
    [telemetry] (default {!Telemetry.global}) — the denominator of the
    {!Quality} nonconvergence-share health metric; each retry counts
    [gibbs.retries]; budget exhaustion counts [degrade.nonconverged]
    and returns [converged = false].
    {!Fault_inject.should_force_nonconvergence} (keyed by the tuple) can
    force the check to fail, exercising the retry and degradation paths
    deterministically. Raises [Invalid_argument] on a complete tuple or
    a non-positive budget. *)
