type report = {
  psrf_max : float;
  ess_min : float;
  chains : int;
  draws_per_chain : int;
}

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let potential_scale_reduction series =
  let m = Array.length series in
  if m < 2 then
    invalid_arg "Diagnostics.potential_scale_reduction: need >= 2 chains";
  let n = Array.length series.(0) in
  if n < 4 then
    invalid_arg "Diagnostics.potential_scale_reduction: chains too short";
  Array.iter
    (fun chain ->
      if Array.length chain <> n then
        invalid_arg "Diagnostics.potential_scale_reduction: ragged chains")
    series;
  let nf = float_of_int n and mf = float_of_int m in
  let chain_means = Array.map mean series in
  let grand = mean chain_means in
  (* Between-chain variance B and within-chain variance W. *)
  let b =
    nf /. (mf -. 1.)
    *. Array.fold_left
         (fun acc mu -> acc +. ((mu -. grand) ** 2.))
         0. chain_means
  in
  let w =
    mean
      (Array.map
         (fun chain ->
           let mu = mean chain in
           Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. chain
           /. (nf -. 1.))
         series)
  in
  if w <= 1e-12 then 1.0
  else
    let var_plus = (((nf -. 1.) /. nf) *. w) +. (b /. nf) in
    sqrt (var_plus /. w)

let effective_sample_size series =
  let n = Array.length series in
  if n < 2 then 1.
  else begin
    let mu = mean series in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. series
      /. float_of_int n
    in
    if var <= 1e-12 then float_of_int n
    else begin
      let autocov k =
        let acc = ref 0. in
        for i = 0 to n - 1 - k do
          acc := !acc +. ((series.(i) -. mu) *. (series.(i + k) -. mu))
        done;
        !acc /. float_of_int n
      in
      (* Initial positive sequence: sum pair sums Γ_k = ρ_{2k} + ρ_{2k+1}
         while positive (Geyer 1992). *)
      let rec accumulate k acc =
        if 2 * k + 1 >= n then acc
        else
          let gamma = (autocov (2 * k) +. autocov ((2 * k) + 1)) /. var in
          if gamma <= 0. then acc else accumulate (k + 1) (acc +. gamma)
      in
      (* k = 0 contributes ρ0 + ρ1 where ρ0 = 1. *)
      let tau = Float.max 1. ((2. *. accumulate 0 0.) -. 1.) in
      Float.max 1. (Float.min (float_of_int n) (float_of_int n /. tau))
    end
  end

let diagnose ?(chains = 4) ?(draws = 500) ?(burn_in = 100) rng sampler tup =
  if chains < 2 then invalid_arg "Diagnostics.diagnose: need >= 2 chains";
  if draws < 4 then invalid_arg "Diagnostics.diagnose: need >= 4 draws";
  let missing = Relation.Tuple.missing tup in
  if missing = [] then invalid_arg "Diagnostics.diagnose: tuple is complete";
  let schema = Model.schema (Gibbs.model sampler) in
  (* Record every chain's trajectory over the missing attributes. *)
  let trajectories =
    Array.init chains (fun _ ->
        let chain_rng = Prob.Rng.split rng in
        let c = Gibbs.chain chain_rng sampler tup in
        for _ = 1 to burn_in do
          ignore (Gibbs.sweep chain_rng c)
        done;
        Array.init draws (fun _ -> Gibbs.sweep chain_rng c))
  in
  let indicators =
    List.concat_map
      (fun a ->
        List.init (Relation.Schema.cardinality schema a) (fun v -> (a, v)))
      missing
  in
  let psrf_max = ref 1. and ess_min = ref (float_of_int draws) in
  List.iter
    (fun (a, v) ->
      let series =
        Array.map
          (Array.map (fun point -> if point.(a) = v then 1. else 0.))
          trajectories
      in
      let r = potential_scale_reduction series in
      if r > !psrf_max then psrf_max := r;
      Array.iter
        (fun chain ->
          let ess = effective_sample_size chain in
          if ess < !ess_min then ess_min := ess)
        series)
    indicators;
  { psrf_max = !psrf_max; ess_min = !ess_min; chains; draws_per_chain = draws }

let converged ?(threshold = 1.1) report = report.psrf_max <= threshold

(* --- convergence-driven retry (fault-contained inference) ------------- *)

type retry_policy = {
  rhat_threshold : float;
  max_retries : int;
  max_total_sweeps : int;
  max_wall_seconds : float;
}

let default_retry_policy =
  {
    rhat_threshold = 1.1;
    max_retries = 2;
    max_total_sweeps = 200_000;
    max_wall_seconds = Float.infinity;
  }

type checked = {
  estimate : Gibbs.estimate;
  rhat : float;
  converged : bool;
  attempts : int;
  total_sweeps : int;
}

(* Split-R̂ over one run's recorded points: each (missing attribute,
   value) indicator series is split into halves treated as two chains —
   the standard single-run proxy for the multi-chain Gelman–Rubin
   statistic. 1.0 (trivially converged) when there are fewer than 8
   points, where halves would be too short to diagnose. *)
let split_rhat sampler tup points =
  let pts = Array.of_list points in
  let n = Array.length pts in
  if n < 8 then 1.0
  else begin
    let half = n / 2 in
    let schema = Model.schema (Gibbs.model sampler) in
    let rmax = ref 1.0 in
    List.iter
      (fun a ->
        for v = 0 to Relation.Schema.cardinality schema a - 1 do
          let indicator i = if pts.(i).(a) = v then 1. else 0. in
          let series =
            [|
              Array.init half indicator;
              Array.init half (fun i -> indicator (n - half + i));
            |]
          in
          let r = potential_scale_reduction series in
          if r > !rmax then rmax := r
        done)
      (Relation.Tuple.missing tup);
    !rmax
  end

(* One (split-R̂, min ESS) reading over a prefix of a chain's recorded
   points — the payload of the trace layer's per-chain convergence
   timeline (Trace counter events named [gibbs.convergence]). ESS is the
   minimum initial-positive-sequence estimate over every (missing
   attribute, value) indicator series, mirroring [diagnose]. *)
let convergence_snapshot sampler tup points =
  let rhat = split_rhat sampler tup points in
  let pts = Array.of_list points in
  let n = Array.length pts in
  if n < 2 then (rhat, float_of_int n)
  else begin
    let schema = Model.schema (Gibbs.model sampler) in
    let ess_min = ref (float_of_int n) in
    List.iter
      (fun a ->
        for v = 0 to Relation.Schema.cardinality schema a - 1 do
          let series =
            Array.init n (fun i -> if pts.(i).(a) = v then 1. else 0.)
          in
          let ess = effective_sample_size series in
          if ess < !ess_min then ess_min := ess
        done)
      (Relation.Tuple.missing tup);
    (rhat, !ess_min)
  end

let run_with_retries ?(config = Gibbs.default_config)
    ?(policy = default_retry_policy) ?(telemetry = Telemetry.global) rng
    sampler tup =
  if policy.max_retries < 0 then
    invalid_arg "Diagnostics.run_with_retries: max_retries must be >= 0";
  if policy.max_total_sweeps < 1 then
    invalid_arg "Diagnostics.run_with_retries: max_total_sweeps must be >= 1";
  if not (policy.rhat_threshold > 0.) then
    invalid_arg "Diagnostics.run_with_retries: rhat_threshold must be > 0";
  let t0 = Clock.now () in
  let total_sweeps = ref 0 in
  let draw draws =
    let c = Gibbs.chain ~telemetry rng sampler tup in
    for _ = 1 to config.Gibbs.burn_in do
      ignore (Gibbs.sweep rng c)
    done;
    let points = List.init draws (fun _ -> Gibbs.sweep rng c) in
    total_sweeps := !total_sweeps + config.Gibbs.burn_in + draws;
    points
  in
  let forced =
    (* Full mixed-radix evidence code, not [Hashtbl.hash]: the latter's
       bounded traversal collapses wide tuples onto shared keys, so one
       forced-nonconvergence decision silently covered whole families of
       tuples and skewed the injected rate. *)
    let schema = Model.schema (Gibbs.model sampler) in
    let cards =
      Array.init (Relation.Schema.arity schema)
        (Relation.Schema.cardinality schema)
    in
    Fault_inject.should_force_nonconvergence
      ~key:(Posterior_cache.tuple_code ~cards tup)
  in
  (* Ensemble-health denominator: convergence-checked runs, so
     [degrade.nonconverged] reads as a nonconvergence *share*. *)
  Telemetry.incr telemetry "gibbs.checked";
  let rec go attempt draws =
    let points =
      Trace.complete ~cat:"gibbs"
        ~args:[ ("attempt", Trace.Int attempt); ("draws", Trace.Int draws) ]
        "gibbs.attempt"
        (fun () -> draw draws)
    in
    let estimate = Gibbs.estimate_of_points sampler tup points in
    let rhat =
      if forced then Float.infinity else split_rhat sampler tup points
    in
    if Trace.enabled () then begin
      let _, ess = convergence_snapshot sampler tup points in
      Trace.counter ~cat:"gibbs" "gibbs.convergence"
        [
          ("rhat", (if Float.is_finite rhat then rhat else 1e6));
          ("ess", ess);
          ("attempt", float_of_int attempt);
        ]
    end;
    if rhat <= policy.rhat_threshold then
      { estimate; rhat; converged = true; attempts = attempt;
        total_sweeps = !total_sweeps }
    else begin
      let next = 2 * draws in
      let within_budget =
        attempt <= policy.max_retries
        && !total_sweeps + config.Gibbs.burn_in + next
           <= policy.max_total_sweeps
        && Clock.duration ~start:t0 ~stop:(Clock.now ())
           < policy.max_wall_seconds
      in
      if within_budget then begin
        Telemetry.incr telemetry "gibbs.retries";
        go (attempt + 1) next
      end
      else begin
        (* Budget exhausted: return the best estimate we have, flagged —
           never silently. *)
        Telemetry.incr telemetry "degrade.nonconverged";
        { estimate; rhat; converged = false; attempts = attempt;
          total_sweeps = !total_sweeps }
      end
    end
  in
  go 1 config.Gibbs.samples
