(** Compiled per-epoch inference kernels (ROADMAP item 2).

    {!Infer_single.infer}'s interpreted vote walks pointer-heavy
    structures per call: {!Lattice.matching} re-enumerates subsets of
    the tuple's known cells through a hashtable of {!Mining.Itemset}
    keys, allocating a combination odometer, itemsets and list cells on
    every query. This module compiles each per-attribute lattice — once
    per {!Model.epoch} — into flat arrays so a vote becomes a linear
    scan over ints and floats:

    - the evidence context as an {e exact} packed code over
      [body_attrs] digits — one bit field per attribute, digit [0] for
      a missing cell, [v + 1] for value [v]: a mixed-radix code with
      power-of-two place values, the same digit string
      {!Posterior_cache} keys on, but un-hashed, so equal codes mean
      equal evidence. {!Posterior_cache} uses it as a cheap coded key
      ([ns = 1]) in place of the allocated signature array;
    - every meta-rule body as a {e (mask, bits)} pair over those same
      fields, so a rule matches iff [code land mask = bits] — one
      [land] and one compare per rule, covering known-ness and value
      equality at once (a missing cell's [0] digit never equals the
      [v + 1] a rule demands);
    - all CPDs as {e one contiguous float array} ([(nrules + 1) ×
      head_card], root row last) indexed by rule id;
    - subsumption ({!Lattice.most_specific}) as {e precomputed
      strict-superset index ranges} probed against the matched-rule
      {e bitset}, so the Best-voters filter is a bit test instead of an
      [O(n²)] itemset scan.

    {2 Bit-exactness}

    The interpreted path remains the oracle. A compiled vote replays the
    {e exact} float program of the interpreted one: voters are combined
    in {!Lattice.matching}'s list order (reverse discovery order, root
    last), accumulated position-wise in that order, and normalized by
    the very same {!Prob.Dist.of_weights} — so compiled posteriors are
    bit-identical to interpreted ones (the differential fuzz suite and
    the CI [client verify] pass assert this). Whenever the compiled path
    cannot guarantee that (a packed code wider than 62 bits, a combine
    the interpreted ladder would degrade on), it
    returns [None] and the caller runs the interpreted path, telemetry
    and all.

    {2 Fallback and overflow}

    The packed context code overflows a native [int] on wide lattices
    over large cardinalities (the digit fields sum past 62 bits).
    Overflow is detected at {e compile} time from the schema's
    cardinalities; an overflowing attribute is marked fallback, served
    by the interpreted path, counted on [kernel.fallback], and keyed in
    the posterior cache under the interpreted namespace ([ns = 0]) —
    distinct from coded keys, so the two key schemes can never
    collide.

    {2 Lifecycle}

    Kernels are cached in a small process-global registry keyed by
    {!Model.epoch} (process-unique), compiled on first use and rebuilt
    at every epoch bump — a hot-reloaded serving engine re-compiles
    {e before} mutating any serving state, so a failed reload leaves the
    old kernel serving and a successful one can never serve a stale
    kernel. While {!Fault_inject} voter drops are active the kernel
    steps aside entirely, exactly like {!Posterior_cache}.

    Counters: [kernel.compiles], [kernel.hits], [kernel.fallback]
    (catalogued in METRICS.md). *)

type t
(** A compiled model: one kernel slot per attribute. *)

val set_enabled : bool -> unit
(** Process-global switch (CLI [--kernel] / [--no-kernel]); default
    enabled. Disabling makes {!posterior} and {!cache_code} return
    [None] unconditionally, restoring the pure interpreted path. *)

val enabled : unit -> bool
(** One atomic load. *)

val compile : Model.t -> t
(** Compile every attribute's lattice. Pure construction: no registry
    interaction, no telemetry. Exposed for tests and benchmarks;
    normal callers want {!ensure}. *)

val ensure : ?telemetry:Telemetry.t -> Model.t -> t
(** The registry's kernel for the model's epoch, compiling (and
    counting [kernel.compiles], with a [kernel.compile] trace slice) on
    first use. Thread-safe: concurrent callers race on a CAS and one
    compilation wins. Works whether or not the kernel is {!enabled} —
    the serving engine precompiles at load/reload time so the first
    request never pays the build. *)

val invalidate_stale : current:Model.t -> unit
(** Drop every registry entry whose epoch differs from [current]'s.
    Correctness never depends on this — epochs are process-unique and
    part of the registry key — it only releases memory earlier than the
    registry's LRU cap would. *)

val attr_compiled : t -> int -> bool
(** Whether the attribute's lattice compiled without fallback (its
    packed context code fits in 62 bits). Exposed for the overflow
    regression tests. *)

val posterior :
  ?telemetry:Telemetry.t ->
  method_:Voting.method_ ->
  Model.t ->
  Relation.Tuple.t ->
  int ->
  Prob.Dist.t option
(** The compiled vote: [Some d] with [d] bit-identical to what
    {!Infer_single.infer}'s interpreted rung would produce, or [None]
    when the kernel is disabled, voter-drop injection is active, the
    attribute is marked fallback, or the combine would take the
    interpreted path's degradation ladder (all but the first counted on
    [kernel.fallback]; successes counted on [kernel.hits]). The caller
    must have validated the task ({!Infer_single} does). *)

val cache_code : Model.t -> Relation.Tuple.t -> int -> int option
(** The exact packed context code of the tuple's evidence over the
    attribute's [body_attrs] — the coded posterior-cache key. [None]
    whenever {!posterior} would decline (so cache keys and compute path
    always agree on a namespace). *)
