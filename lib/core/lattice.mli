(** Meta-rule semi-lattices (paper Def 2.8): all meta-rules with a common
    head attribute, ordered by subsumption.

    The lattice always contains a *root* meta-rule with an empty body — the
    marginal P(a) — so every inference task has at least one voter (the
    top-level rule of Fig 2, weight 1). Matching is by subset enumeration
    over the queried tuple's known attributes, probing a body-keyed hash
    table, so a lookup costs Σ_s C(#known, s) probes for body sizes [s]
    actually present rather than a scan of the whole lattice. *)

type t

val create : head_attr:int -> head_card:int -> root:Meta_rule.t ->
  Meta_rule.t list -> t
(** [create ~head_attr ~head_card ~root rules]. The root must have an empty
    body; all meta-rules must have the given head attribute, CPDs of size
    [head_card], and pairwise distinct bodies. A non-root rule with an
    empty body is rejected (the root already covers it). *)

val head_attr : t -> int
val head_card : t -> int

val size : t -> int
(** Number of meta-rules, root included — the "model size" unit of
    Fig 4(c). *)

val root : t -> Meta_rule.t
val meta_rules : t -> Meta_rule.t list
val find : t -> Mining.Itemset.t -> Meta_rule.t option
val max_body_size : t -> int

val body_attrs : t -> int array
(** Sorted, duplicate-free attribute indices mentioned by at least one rule
    body in the lattice (never includes the head attribute). Only these
    attributes' observed values can change the outcome of {!matching} — the
    lattice-relevant evidence context used by {!Posterior_cache} keys. The
    returned array is owned by the lattice; do not mutate. *)

val matching : t -> Relation.Tuple.t -> Meta_rule.t list
(** All meta-rules whose body holds in the tuple's known values — the
    [vChoice = all] voter set. Never empty (contains the root). The head
    attribute's own value in the tuple, if any, is ignored. *)

val most_specific : Meta_rule.t list -> Meta_rule.t list
(** Filter to meta-rules that do not subsume any other in the list — the
    [vChoice = best] voter set (Section IV). *)

val cover_edges : t -> (Meta_rule.t * Meta_rule.t) list
(** Hasse-diagram edges (parent, child): parent subsumes child with no
    meta-rule strictly between. For inspection, rendering, and tests. *)

val pp : Format.formatter -> t -> unit

val pp_named : Relation.Schema.t -> Format.formatter -> t -> unit
(** Like {!pp}, with the schema's attribute and value labels. *)
