(* Two-stack deque under a mutex. [young] holds recent pushes newest
   first; [old] holds older tasks oldest first. The owner pops from
   [young]; thieves (and an owner finding [young] empty) take from [old],
   reversing [young] into it when needed.

   [size] is an [Atomic.t]: {!length} is read by other domains without
   taking the mutex (the scheduler samples queue depths while workers
   mutate their deques), and a plain [mutable int] read outside the lock
   is a data race under the OCaml 5 memory model — the reader could see a
   torn/stale value with no happens-before edge. The atomic gives the
   read a well-defined (if momentarily stale) value; all writes still
   happen inside the locked sections, so the counter stays consistent
   with the lists. *)

type 'a t = {
  lock : Mutex.t;
  mutable young : 'a list;  (* newest first *)
  mutable old : 'a list;  (* oldest first *)
  size : int Atomic.t;
}

let create () =
  { lock = Mutex.create (); young = []; old = []; size = Atomic.make 0 }

let with_lock d f =
  Mutex.lock d.lock;
  match f () with
  | v ->
      Mutex.unlock d.lock;
      v
  | exception e ->
      Mutex.unlock d.lock;
      raise e

let push d x =
  with_lock d (fun () ->
      d.young <- x :: d.young;
      Atomic.incr d.size)

let pop d =
  with_lock d (fun () ->
      match d.young with
      | x :: tl ->
          d.young <- tl;
          Atomic.decr d.size;
          Some x
      | [] -> (
          match d.old with
          | x :: tl ->
              d.old <- tl;
              Atomic.decr d.size;
              Some x
          | [] -> None))

let steal d =
  with_lock d (fun () ->
      (match d.old with
      | [] when d.young <> [] ->
          d.old <- List.rev d.young;
          d.young <- []
      | _ -> ());
      match d.old with
      | x :: tl ->
          d.old <- tl;
          Atomic.decr d.size;
          Some x
      | [] -> None)

let length d = Atomic.get d.size
