(* Two-stack deque under a mutex. [young] holds recent pushes newest
   first; [old] holds older tasks oldest first. The owner pops from
   [young]; thieves (and an owner finding [young] empty) take from [old],
   reversing [young] into it when needed. *)

type 'a t = {
  lock : Mutex.t;
  mutable young : 'a list;  (* newest first *)
  mutable old : 'a list;  (* oldest first *)
  mutable size : int;
}

let create () = { lock = Mutex.create (); young = []; old = []; size = 0 }

let with_lock d f =
  Mutex.lock d.lock;
  match f () with
  | v ->
      Mutex.unlock d.lock;
      v
  | exception e ->
      Mutex.unlock d.lock;
      raise e

let push d x =
  with_lock d (fun () ->
      d.young <- x :: d.young;
      d.size <- d.size + 1)

let pop d =
  with_lock d (fun () ->
      match d.young with
      | x :: tl ->
          d.young <- tl;
          d.size <- d.size - 1;
          Some x
      | [] -> (
          match d.old with
          | x :: tl ->
              d.old <- tl;
              d.size <- d.size - 1;
              Some x
          | [] -> None))

let steal d =
  with_lock d (fun () ->
      (match d.old with
      | [] when d.young <> [] ->
          d.old <- List.rev d.young;
          d.young <- []
      | _ -> ());
      match d.old with
      | x :: tl ->
          d.old <- tl;
          d.size <- d.size - 1;
          Some x
      | [] -> None)

let length d = d.size
