external monotonic_ns : unit -> int = "mrsl_clock_monotonic_ns" [@@noalloc]

let now_ns () = monotonic_ns ()
let now () = float_of_int (monotonic_ns ()) *. 1e-9
let duration_ns ~start ~stop = if stop > start then stop - start else 0
let duration ~start ~stop = if stop > start then stop -. start else 0.
