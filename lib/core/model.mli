(** The MRSL model (paper Def 2.9) and its learning algorithm
    (Algorithm 1): one meta-rule semi-lattice per attribute, learned from
    the complete portion of a relation. *)

type miner = Apriori | Fp_growth
(** Section III: "the essence of our method is not dependent on which
    frequent itemset mining algorithm is used" — both are available and
    produce identical models. *)

type params = {
  support_threshold : float;  (** θ; the paper sweeps 0.001 … 0.1 *)
  max_itemsets : int;  (** Apriori per-round cap; the paper uses 1000 *)
  smoothing_floor : float;  (** per-value CPD floor; the paper uses 1e-5 *)
  miner : miner;  (** frequent-itemset algorithm; the paper uses Apriori *)
}

val default_params : params
(** θ = 0.02 (the paper's median), max_itemsets = 1000,
    smoothing_floor = 1e-5, miner = Apriori. *)

type t

val learn : ?params:params -> Relation.Instance.t -> t
(** Algorithm 1 over the complete part [Rc] of the relation: mine frequent
    itemsets (Apriori), derive association rules per head attribute, group
    them into meta-rules, and assemble per-attribute semi-lattices. The
    root meta-rule of every lattice is built from the attribute's exact
    marginal frequencies (weight 1), so inference always has a voter.
    Raises [Invalid_argument] on bad parameters. *)

val learn_points : ?params:params -> Relation.Schema.t -> int array array -> t
(** Learn directly from an array of points. *)

val of_parts : ?params:params -> ?frequent_itemsets:int -> ?truncated:bool ->
  Relation.Schema.t -> Lattice.t array -> t
(** Reassemble a model from its lattices — the deserialization constructor
    used by {!Model_io}. Validates that there is exactly one lattice per
    schema attribute, in order, with matching head attributes and
    cardinalities. *)

val schema : t -> Relation.Schema.t
val params : t -> params
val lattice : t -> int -> Lattice.t
(** The MRSL of the attribute at the given position. *)

val lattices : t -> Lattice.t array

val size : t -> int
(** Total number of meta-rules across all lattices — the "model size" of
    Fig 4(c) and Fig 9. *)

val frequent_itemsets : t -> int
(** Number of frequent itemsets retained by the mining pass. *)

val truncated : t -> bool
(** Whether Apriori's per-round cap fired during learning. *)

val epoch : t -> int
(** Process-unique model generation, assigned at construction. Every call
    to {!learn}, {!learn_points} or {!of_parts} (and therefore every
    {!Model_io.load}) yields a fresh epoch, so caches keyed by it —
    {!Posterior_cache} — can never serve entries computed against a
    different model, including a retrained one over the same schema. *)

val pp : Format.formatter -> t -> unit
