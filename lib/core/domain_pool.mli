(** Persistent domain pool.

    The seed implementation spawned one fresh domain per chunk on every
    [Parallel.run] — paying domain start-up (minor-heap creation, STW
    registration) per call and discarding every per-domain memo table on
    exit. This pool spawns domains lazily, parks them on a condition
    variable between jobs, and reuses them for the life of the process, so
    domain-local state ({!Parallel}'s sampler cache) survives across runs.
    Workers are shut down and joined via [at_exit]. *)

type t

val get : unit -> t
(** The process-wide pool. *)

val size : t -> int
(** Domains currently alive in the pool (monitoring only). *)

val run : t -> workers:int -> (int -> unit) -> unit
(** [run t ~workers f] executes [f 0 .. f (workers - 1)] concurrently
    and returns when all have finished: [f 0] on the calling domain,
    the rest on pool domains (spawning new ones only when no parked
    domain is free). If any [f i] raises, the first exception observed
    is re-raised after every worker has finished. Raises
    [Invalid_argument] when [workers < 1]. Must not be called from
    inside a pool worker (no nested fan-out). *)
