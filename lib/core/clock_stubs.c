/* Monotonic clock for Mrsl.Clock.

   Unix.gettimeofday is a wall clock: NTP steps (and, on some hosts,
   leap-second smearing) can move it backwards, producing negative span
   durations and corrupting wall-clock budgets. CLOCK_MONOTONIC never
   steps. The value is returned as an OCaml int of nanoseconds since an
   unspecified epoch: 63 bits of nanoseconds cover ~146 years of uptime,
   so the subtraction of two readings never overflows in practice. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value mrsl_clock_monotonic_ns(value unit)
{
  (void)unit;
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
#endif
  {
    /* Fallback: realtime (still better than failing); Clock.duration
       guards against the negative deltas this can produce. */
    clock_gettime(CLOCK_REALTIME, &ts);
  }
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
