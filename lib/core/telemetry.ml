module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  (* ---- emitter ---- *)

  let escape_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then
      (* keep a fraction marker so it re-parses as Float *)
      Printf.sprintf "%.1f" f
    else
      (* shortest representation that round-trips *)
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let to_string ?(pretty = true) v =
    let buf = Buffer.create 1024 in
    let indent n = if pretty then Buffer.add_string buf (String.make n ' ') in
    let newline () = if pretty then Buffer.add_char buf '\n' in
    let rec emit depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (string_of_bool b)
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Float f ->
          if Float.is_nan f || f = infinity || f = neg_infinity then
            Buffer.add_string buf "null"
          else Buffer.add_string buf (float_repr f)
      | String s -> escape_string buf s
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
          Buffer.add_char buf '[';
          newline ();
          List.iteri
            (fun i item ->
              if i > 0 then begin
                Buffer.add_char buf ',';
                newline ()
              end;
              indent ((depth + 1) * 2);
              emit (depth + 1) item)
            items;
          newline ();
          indent (depth * 2);
          Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
          Buffer.add_char buf '{';
          newline ();
          List.iteri
            (fun i (k, item) ->
              if i > 0 then begin
                Buffer.add_char buf ',';
                newline ()
              end;
              indent ((depth + 1) * 2);
              escape_string buf k;
              Buffer.add_string buf (if pretty then ": " else ":");
              emit (depth + 1) item)
            fields;
          newline ();
          indent (depth * 2);
          Buffer.add_char buf '}'
    in
    emit 0 v;
    Buffer.contents buf

  (* ---- parser: recursive descent ---- *)

  type parser_state = { src : string; mutable pos : int }

  let fail st msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some d when d = c -> advance st
    | _ -> fail st (Printf.sprintf "expected %C" c)

  let literal st word value =
    let n = String.length word in
    if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
    then begin
      st.pos <- st.pos + n;
      value
    end
    else fail st (Printf.sprintf "expected %s" word)

  let parse_string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek st with
      | None -> fail st "unterminated string"
      | Some '"' -> advance st
      | Some '\\' -> (
          advance st;
          match peek st with
          | None -> fail st "unterminated escape"
          | Some c ->
              advance st;
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if st.pos + 4 > String.length st.src then
                    fail st "truncated \\u escape";
                  let hex = String.sub st.src st.pos 4 in
                  st.pos <- st.pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with Failure _ -> fail st "bad \\u escape"
                  in
                  (match Uchar.of_int code with
                  | u -> Buffer.add_utf_8_uchar buf u
                  | exception Invalid_argument _ -> Buffer.add_char buf '?')
              | _ -> fail st "bad escape character");
              loop ())
      | Some c ->
          advance st;
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf

  let parse_number st =
    let start = st.pos in
    let is_float = ref false in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some ('0' .. '9' | '-' | '+') -> advance st
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance st
      | _ -> continue := false
    done;
    if st.pos = start then fail st "expected number";
    let s = String.sub st.src start (st.pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "malformed number"
    else
      match int_of_string_opt s with
      | Some n -> Int n
      | None -> (
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail st "malformed number")

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> fail st "unexpected end of input"
    | Some 'n' -> literal st "null" Null
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some '"' -> String (parse_string st)
    | Some '[' ->
        advance st;
        skip_ws st;
        if peek st = Some ']' then begin
          advance st;
          List []
        end
        else
          let rec items acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                items (v :: acc)
            | Some ']' ->
                advance st;
                List (List.rev (v :: acc))
            | _ -> fail st "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance st;
        skip_ws st;
        if peek st = Some '}' then begin
          advance st;
          Obj []
        end
        else
          let field () =
            skip_ws st;
            let k = parse_string st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                fields (f :: acc)
            | Some '}' ->
                advance st;
                Obj (List.rev (f :: acc))
            | _ -> fail st "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number st

  let of_string s =
    let st = { src = s; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_float = function
    | Int n -> float_of_int n
    | Float f -> f
    | _ -> raise (Parse_error "expected a number")

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool x, Bool y -> x = y
    | Int x, Int y -> x = y
    | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
    | Int x, Float y | Float y, Int x -> float_of_int x = y
    | String x, String y -> x = y
    | List xs, List ys ->
        List.length xs = List.length ys && List.for_all2 equal xs ys
    | Obj xs, Obj ys ->
        let sort l =
          List.sort (fun (ka, _) (kb, _) -> String.compare ka kb) l
        in
        List.length xs = List.length ys
        && List.for_all2
             (fun (ka, va) (kb, vb) -> ka = kb && equal va vb)
             (sort xs) (sort ys)
    | _ -> false
end

(* ------------------------------------------------------------------ *)

let reservoir_cap = 8192

(* splitmix64 step — the deterministic PRNG behind Algorithm-R reservoir
   sampling. Seeded per histogram from the metric name, so replacement
   decisions are a pure function of (name, observation index): two runs
   observing the same sequence keep identical reservoirs. *)
let splitmix64_next state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let x =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let x =
    Int64.mul
      (Int64.logxor x (Int64.shift_right_logical x 27))
      0x94D049BB133111EBL
  in
  (z, Int64.logxor x (Int64.shift_right_logical x 31))

type histogram_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  reservoir : float array;  (* uniform Algorithm-R sample, [stored] live *)
  mutable stored : int;
  mutable rng : int64;  (* splitmix64 state for replacement draws *)
}

type gauge_state = { mutable last : float; mutable max_seen : float }

type span_state = {
  mutable calls : int;
  mutable wall : float;
  mutable cpu : float;
}

type metric =
  | Counter of int Atomic.t
  | Gauge of gauge_state
  | Histogram of histogram_state
  | Span of span_state

type t = { lock : Mutex.t; metrics : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); metrics = Hashtbl.create 64 }

let global = create ()

let wrong_kind name =
  invalid_arg
    (Printf.sprintf "Telemetry: metric %S already exists with another kind"
       name)

(* Find-or-create under the registry lock; the returned metric's own
   fields are then mutated under the same lock (histograms, gauges,
   spans) or atomically (counters). *)
let intern t name make =
  Mutex.lock t.lock;
  let m =
    match Hashtbl.find_opt t.metrics name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add t.metrics name m;
        m
  in
  Mutex.unlock t.lock;
  m

let incr ?(by = 1) t name =
  if by < 0 then invalid_arg "Telemetry.incr: counters are monotone (by < 0)";
  match intern t name (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> ignore (Atomic.fetch_and_add c by)
  | _ -> wrong_kind name

let add t name n = incr ~by:n t name

let counter t name =
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.metrics name with
    | Some (Counter c) -> Atomic.get c
    | Some _ ->
        Mutex.unlock t.lock;
        wrong_kind name
    | None -> 0
  in
  Mutex.unlock t.lock;
  v

let snapshot_counters t =
  Mutex.lock t.lock;
  let rows =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | Counter c -> (name, Atomic.get c) :: acc
        | _ -> acc)
      t.metrics []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let gauge t name v =
  match
    intern t name (fun () -> Gauge { last = v; max_seen = v })
  with
  | Gauge g ->
      Mutex.lock t.lock;
      g.last <- v;
      if v > g.max_seen then g.max_seen <- v;
      Mutex.unlock t.lock
  | _ -> wrong_kind name

let gauge_value t name =
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.metrics name with
    | Some (Gauge g) -> Some g.last
    | Some _ ->
        Mutex.unlock t.lock;
        wrong_kind name
    | None -> None
  in
  Mutex.unlock t.lock;
  v

let observe t name v =
  match
    intern t name (fun () ->
        Histogram
          {
            h_count = 0;
            h_sum = 0.;
            h_min = infinity;
            h_max = neg_infinity;
            reservoir = Array.make reservoir_cap 0.;
            stored = 0;
            rng = Int64.of_int (Hashtbl.hash name);
          })
  with
  | Histogram h ->
      Mutex.lock t.lock;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      (* Algorithm R (Vitter): after the reservoir fills, observation i
         (1-based) replaces a uniformly random slot with probability
         cap/i — every observation, not just the first [reservoir_cap],
         ends up in the percentile sample with equal probability. The
         seed implementation kept only the head of the stream, so long
         runs reported warm-up-only percentiles. *)
      if h.stored < reservoir_cap then begin
        h.reservoir.(h.stored) <- v;
        h.stored <- h.stored + 1
      end
      else begin
        let state, draw = splitmix64_next h.rng in
        h.rng <- state;
        let j =
          Int64.to_int
            (Int64.rem
               (Int64.logand draw Int64.max_int)
               (Int64.of_int h.h_count))
        in
        if j < reservoir_cap then h.reservoir.(j) <- v
      end;
      Mutex.unlock t.lock
  | _ -> wrong_kind name

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize h =
  let arr = Array.sub h.reservoir 0 h.stored in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  let pct p =
    if n = 0 then Float.nan
    else
      let idx =
        Stdlib.min (n - 1)
          (int_of_float (Float.ceil (p *. float_of_int n)) - 1)
      in
      arr.(Stdlib.max 0 idx)
  in
  {
    count = h.h_count;
    min = h.h_min;
    max = h.h_max;
    mean = (if h.h_count = 0 then Float.nan else h.h_sum /. float_of_int h.h_count);
    p50 = pct 0.5;
    p90 = pct 0.9;
    p99 = pct 0.99;
  }

let histogram t name =
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.metrics name with
    | Some (Histogram h) -> Some (summarize h)
    | Some _ ->
        Mutex.unlock t.lock;
        wrong_kind name
    | None -> None
  in
  Mutex.unlock t.lock;
  v

let span t name f =
  let s =
    match
      intern t name (fun () -> Span { calls = 0; wall = 0.; cpu = 0. })
    with
    | Span s -> s
    | _ -> wrong_kind name
  in
  let w0 = Clock.now () and c0 = Sys.time () in
  let record () =
    let w = Clock.duration ~start:w0 ~stop:(Clock.now ())
    and c = Float.max 0. (Sys.time () -. c0) in
    Mutex.lock t.lock;
    s.calls <- s.calls + 1;
    s.wall <- s.wall +. w;
    s.cpu <- s.cpu +. c;
    Mutex.unlock t.lock
  in
  match f () with
  | r ->
      record ();
      r
  | exception e ->
      record ();
      raise e

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.metrics;
  Mutex.unlock t.lock

let to_json t =
  Mutex.lock t.lock;
  let snapshot = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.metrics [] in
  (* Summaries read mutable state, so build them before unlocking. *)
  let classify (name, m) =
    match m with
    | Counter c -> `Counter (name, Json.Int (Atomic.get c))
    | Gauge g ->
        `Gauge
          ( name,
            Json.Obj [ ("last", Json.Float g.last); ("max", Json.Float g.max_seen) ]
          )
    | Histogram h ->
        let s = summarize h in
        `Histogram
          ( name,
            Json.Obj
              [
                ("count", Json.Int s.count);
                ("min", Json.Float s.min);
                ("max", Json.Float s.max);
                ("mean", Json.Float s.mean);
                ("p50", Json.Float s.p50);
                ("p90", Json.Float s.p90);
                ("p99", Json.Float s.p99);
              ] )
    | Span s ->
        `Span
          ( name,
            Json.Obj
              [
                ("calls", Json.Int s.calls);
                ("wall_seconds", Json.Float s.wall);
                ("cpu_seconds", Json.Float s.cpu);
              ] )
  in
  let classified = List.map classify snapshot in
  Mutex.unlock t.lock;
  let bucket f =
    classified
    |> List.filter_map f
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj (bucket (function `Counter kv -> Some kv | _ -> None)) );
      ("gauges", Json.Obj (bucket (function `Gauge kv -> Some kv | _ -> None)));
      ( "histograms",
        Json.Obj (bucket (function `Histogram kv -> Some kv | _ -> None)) );
      ("spans", Json.Obj (bucket (function `Span kv -> Some kv | _ -> None)));
    ]
