(** Per-worker work-stealing deque.

    One worker owns each deque: the owner pushes and pops at the "young"
    end (LIFO, for locality with freshly promoted subsumees), thieves
    steal from the "old" end (FIFO, so they take the tasks the owner
    queued earliest). A coarse per-deque mutex is deliberate: tasks are
    whole Gibbs chains (thousands of conditional-CPD evaluations each),
    so queue operations are nowhere near the critical path and a
    lock-free Chase–Lev structure would buy nothing but risk. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner end. *)

val pop : 'a t -> 'a option
(** Owner end (newest first; falls back to the old end when the young
    stack is empty). *)

val steal : 'a t -> 'a option
(** Thief end (oldest first). Safe from any domain. *)

val length : 'a t -> int
(** Current number of queued tasks — a momentary snapshot, for
    telemetry. Implemented as an [Atomic.get] of a counter maintained
    inside the locked sections, so reading it from another domain is a
    well-defined atomic read rather than the unsynchronized (racy under
    the OCaml 5 memory model) plain-field read the seed performed. The
    value is never negative and never exceeds the number of pushes. *)
