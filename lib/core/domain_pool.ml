type worker = {
  wlock : Mutex.t;
  wcond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
  mutable busy : bool;  (* owned by the pool lock, not wlock *)
  mutable handle : unit Domain.t option;
}

type t = { lock : Mutex.t; mutable workers : worker list }

let create () = { lock = Mutex.create (); workers = [] }

let worker_loop w =
  let rec loop () =
    Mutex.lock w.wlock;
    while w.job = None && not w.stop do
      Condition.wait w.wcond w.wlock
    done;
    if w.stop then Mutex.unlock w.wlock
    else begin
      let job = Option.get w.job in
      w.job <- None;
      Mutex.unlock w.wlock;
      (* Jobs are wrapped by [run]; they never raise. *)
      job ();
      loop ()
    end
  in
  loop ()

let spawn_worker () =
  let w =
    {
      wlock = Mutex.create ();
      wcond = Condition.create ();
      job = None;
      stop = false;
      busy = true;  (* born assigned: [acquire] hands it out immediately *)
      handle = None;
    }
  in
  w.handle <- Some (Domain.spawn (fun () -> worker_loop w));
  w

(* Claim [k] idle workers, spawning extras as needed. *)
let acquire t k =
  Mutex.lock t.lock;
  let idle = List.filter (fun w -> not w.busy) t.workers in
  let free = List.filteri (fun i _ -> i < k) idle in
  List.iter (fun w -> w.busy <- true) free;
  let missing = k - List.length free in
  let fresh = List.init missing (fun _ -> spawn_worker ()) in
  t.workers <- t.workers @ fresh;
  Mutex.unlock t.lock;
  free @ fresh

let release t w =
  Mutex.lock t.lock;
  w.busy <- false;
  Mutex.unlock t.lock

let submit w job =
  Mutex.lock w.wlock;
  w.job <- Some job;
  Condition.signal w.wcond;
  Mutex.unlock w.wlock

let size t =
  Mutex.lock t.lock;
  let n = List.length t.workers in
  Mutex.unlock t.lock;
  n

type latch = {
  llock : Mutex.t;
  lcond : Condition.t;
  mutable pending : int;
  mutable error : exn option;
}

let run t ~workers f =
  if workers < 1 then invalid_arg "Domain_pool.run: workers must be >= 1";
  if workers = 1 then f 0
  else begin
    let helpers = acquire t (workers - 1) in
    let latch =
      {
        llock = Mutex.create ();
        lcond = Condition.create ();
        pending = workers - 1;
        error = None;
      }
    in
    List.iteri
      (fun i w ->
        let wid = i + 1 in
        submit w (fun () ->
            (try f wid
             with e ->
               Mutex.lock latch.llock;
               if latch.error = None then latch.error <- Some e;
               Mutex.unlock latch.llock);
            release t w;
            Mutex.lock latch.llock;
            latch.pending <- latch.pending - 1;
            if latch.pending = 0 then Condition.broadcast latch.lcond;
            Mutex.unlock latch.llock))
      helpers;
    let caller_error = (try f 0; None with e -> Some e) in
    Mutex.lock latch.llock;
    while latch.pending > 0 do
      Condition.wait latch.lcond latch.llock
    done;
    let helper_error = latch.error in
    Mutex.unlock latch.llock;
    match (caller_error, helper_error) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let shutdown t =
  Mutex.lock t.lock;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter
    (fun w ->
      Mutex.lock w.wlock;
      w.stop <- true;
      Condition.broadcast w.wcond;
      Mutex.unlock w.wlock)
    ws;
  List.iter (fun w -> Option.iter Domain.join w.handle) ws

let global =
  lazy
    (let t = create () in
     at_exit (fun () -> shutdown t);
     t)

let get () = Lazy.force global
