(* Statistical quality observability (see quality.mli).

   Everything here is observation-only: the monitor consumes no
   inference RNG and shares no sampler state, so a monitored run is
   bit-identical to an unmonitored one. All accumulator mutation happens
   under one mutex; the observation volume (one update per shadow cell /
   per estimate) is far off the Gibbs hot path. *)

module Json = Telemetry.Json

type config = {
  mask_fraction : float;
  seed : int;
  bins : int;
  drift_threshold : float;
  sharpen : float;
}

let default_config =
  {
    mask_fraction = 0.2;
    seed = 2011;
    bins = 10;
    drift_threshold = 0.05;
    sharpen = 1.0;
  }

(* Per-attribute drift aggregate: running sum of posterior probability
   vectors plus the observation count. *)
type drift_acc = { mutable sum : float array; mutable n : int }

type t = {
  cfg : config;
  sink : Telemetry.t;
  lock : Mutex.t;
  (* scoring *)
  mutable cells : int;
  mutable brier_sum : float;
  mutable logloss_sum : float;
  mutable top1 : int;
  bin_count : int array;
  bin_conf : float array;
  bin_hit : int array;
  (* ensemble health *)
  mutable tasks : int;
  mutable voters_total : int;
  mutable root_only : int;
  strata : (int, int) Hashtbl.t;
  mutable rung_total : int;
  mutable rung_marginal : int;
  mutable rung_uniform : int;
  (* drift *)
  posteriors : (int, drift_acc) Hashtbl.t;
  mutable reference : (string * Prob.Dist.t option) array option;
  mutable alerted : int;  (* drift.alerts already counted into the sink *)
}

let create ?(config = default_config) ?(telemetry = Telemetry.global) () =
  if
    (not (Float.is_finite config.mask_fraction))
    || config.mask_fraction < 0. || config.mask_fraction > 1.
  then invalid_arg "Quality.create: mask_fraction must be in [0, 1]";
  if config.bins < 1 then invalid_arg "Quality.create: bins must be >= 1";
  if not (config.sharpen > 0.) then
    invalid_arg "Quality.create: sharpen must be positive";
  {
    cfg = config;
    sink = telemetry;
    lock = Mutex.create ();
    cells = 0;
    brier_sum = 0.;
    logloss_sum = 0.;
    top1 = 0;
    bin_count = Array.make config.bins 0;
    bin_conf = Array.make config.bins 0.;
    bin_hit = Array.make config.bins 0;
    tasks = 0;
    voters_total = 0;
    root_only = 0;
    strata = Hashtbl.create 8;
    rung_total = 0;
    rung_marginal = 0;
    rung_uniform = 0;
    posteriors = Hashtbl.create 8;
    reference = None;
    alerted = 0;
  }

let config t = t.cfg

(* --- deterministic cell selection ------------------------------------ *)

(* splitmix64 finalizer, as in {!Fault_inject}: the masking decision is
   a pure function of (seed, row, attr) — independent of call order and
   domain count. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let two_pow_53 = 9007199254740992.0

let should_mask cfg ~row ~attr =
  cfg.mask_fraction > 0.
  &&
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int cfg.seed) 0x9E3779B97F4A7C15L)
         (Int64.add
            (Int64.mul (Int64.of_int row) 0xC2B2AE3D27D4EB4FL)
            (Int64.of_int attr)))
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. two_pow_53
  < cfg.mask_fraction

(* --- injection hook --------------------------------------------------- *)

let sharpen d gamma =
  if gamma = 1.0 then d
  else
    Prob.Dist.of_weights
      (Array.map (fun p -> p ** gamma) (Prob.Dist.to_array d))

(* --- observation ------------------------------------------------------ *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bin_index bins conf =
  (* conf in [0, 1]; exactly 1.0 lands in the last bin *)
  let i = int_of_float (conf *. float_of_int bins) in
  if i >= bins then bins - 1 else if i < 0 then 0 else i

let trace_stride = 64

let score_cell t ~attr ~truth d =
  let n = Prob.Dist.size d in
  if truth < 0 || truth >= n then
    invalid_arg "Quality.score_cell: truth outside the distribution";
  let cells_now =
    locked t (fun () ->
        (* multiclass Brier: Σ_j (p_j - 1{j = truth})² *)
        let b = ref 0. in
        for j = 0 to n - 1 do
          let y = if j = truth then 1. else 0. in
          let diff = Prob.Dist.prob d j -. y in
          b := !b +. (diff *. diff)
        done;
        t.brier_sum <- t.brier_sum +. !b;
        let p_true = Float.max (Prob.Dist.prob d truth) 1e-300 in
        t.logloss_sum <- t.logloss_sum -. log p_true;
        let top = Prob.Dist.mode d in
        let conf = Prob.Dist.prob d top in
        if top = truth then t.top1 <- t.top1 + 1;
        let bi = bin_index t.cfg.bins conf in
        t.bin_count.(bi) <- t.bin_count.(bi) + 1;
        t.bin_conf.(bi) <- t.bin_conf.(bi) +. conf;
        if top = truth then t.bin_hit.(bi) <- t.bin_hit.(bi) + 1;
        (* drift aggregate *)
        (let acc =
           match Hashtbl.find_opt t.posteriors attr with
           | Some acc ->
               if Array.length acc.sum <> n then
                 invalid_arg
                   "Quality.score_cell: cardinality changed for attribute";
               acc
           | None ->
               let acc = { sum = Array.make n 0.; n = 0 } in
               Hashtbl.add t.posteriors attr acc;
               acc
         in
         for j = 0 to n - 1 do
           acc.sum.(j) <- acc.sum.(j) +. Prob.Dist.prob d j
         done;
         acc.n <- acc.n + 1);
        t.cells <- t.cells + 1;
        t.cells)
  in
  Telemetry.incr t.sink "quality.cells";
  Telemetry.observe t.sink "quality.confidence"
    (Prob.Dist.prob d (Prob.Dist.mode d));
  if Trace.enabled () && cells_now mod trace_stride = 0 then
    locked t (fun () ->
        let fc = float_of_int t.cells in
        Trace.counter ~cat:"quality" "quality.scores"
          [
            ("brier", t.brier_sum /. fc);
            ("log_loss", t.logloss_sum /. fc);
            ("top1_accuracy", float_of_int t.top1 /. fc);
            ("cells", fc);
          ])

let observe_voters t voters =
  locked t (fun () ->
      t.tasks <- t.tasks + 1;
      t.voters_total <- t.voters_total + List.length voters;
      (match voters with
      | [ v ] when Meta_rule.specificity v = 0 ->
          t.root_only <- t.root_only + 1
      | _ -> ());
      List.iter
        (fun v ->
          let s = Meta_rule.specificity v in
          Hashtbl.replace t.strata s
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.strata s)))
        voters);
  (match voters with
  | [ v ] when Meta_rule.specificity v = 0 ->
      Telemetry.incr t.sink "quality.voters.root_only"
  | _ -> ());
  Telemetry.observe t.sink "quality.voters.count"
    (float_of_int (List.length voters));
  List.iter
    (fun v ->
      Telemetry.observe t.sink "quality.voters.specificity"
        (float_of_int (Meta_rule.specificity v)))
    voters

let observe_rung t rung =
  locked t (fun () ->
      t.rung_total <- t.rung_total + 1;
      match (rung : Infer_single.rung) with
      | Infer_single.Voters -> ()
      | Infer_single.Marginal_prior -> t.rung_marginal <- t.rung_marginal + 1
      | Infer_single.Uniform -> t.rung_uniform <- t.rung_uniform + 1)

let attach_model t model =
  let schema = Model.schema model in
  let arity = Relation.Schema.arity schema in
  locked t (fun () ->
      match t.reference with
      | Some r when Array.length r = arity -> ()
      | Some _ ->
          invalid_arg
            "Quality.attach_model: a model with a different arity is already \
             attached"
      | None ->
          t.reference <-
            Some
              (Array.init arity (fun a ->
                   ( Relation.Attribute.name (Relation.Schema.attribute schema a),
                     Infer_single.marginal_prior model a ))))

let accumulate_posterior t ~attr d =
  locked t (fun () ->
      let n = Prob.Dist.size d in
      let acc =
        match Hashtbl.find_opt t.posteriors attr with
        | Some acc ->
            if Array.length acc.sum <> n then
              invalid_arg
                "Quality.observe_estimates: cardinality changed for attribute";
            acc
        | None ->
            let acc = { sum = Array.make n 0.; n = 0 } in
            Hashtbl.add t.posteriors attr acc;
            acc
      in
      for j = 0 to n - 1 do
        acc.sum.(j) <- acc.sum.(j) +. Prob.Dist.prob d j
      done;
      acc.n <- acc.n + 1)

let observe_estimates t estimates =
  List.iter
    (fun ((_tup : Relation.Tuple.t), (est : Gibbs.estimate)) ->
      List.iter
        (fun a -> accumulate_posterior t ~attr:a (Gibbs.marginal est a))
        est.Gibbs.missing)
    estimates

(* --- the shadow-masking evaluator ------------------------------------- *)

let shadow_eval ?(method_ = Voting.best_averaged) t model tuples =
  attach_model t model;
  let cfg = t.cfg in
  let scored = ref 0 in
  Trace.complete ~cat:"quality"
    ~args:[ ("tuples", Trace.Int (Array.length tuples)) ]
    "quality.shadow_eval"
  @@ fun () ->
  Array.iteri
    (fun row tup ->
      List.iter
        (fun (a, truth) ->
          if should_mask cfg ~row ~attr:a then begin
            let masked = Array.copy tup in
            masked.(a) <- None;
            let e = Infer_single.explain ~method_ model masked a in
            observe_voters t (List.map fst e.Infer_single.contributions);
            observe_rung t e.Infer_single.rung;
            let d =
              if cfg.sharpen = 1.0 then e.Infer_single.estimate
              else sharpen e.Infer_single.estimate cfg.sharpen
            in
            score_cell t ~attr:a ~truth d;
            incr scored
          end)
        (Relation.Tuple.known tup))
    tuples;
  !scored

(* --- reports ----------------------------------------------------------- *)

type bin = {
  lo : float;
  hi : float;
  count : int;
  confidence : float;
  accuracy : float;
}

let reliability t =
  locked t (fun () ->
      let b = t.cfg.bins in
      let w = 1. /. float_of_int b in
      Array.init b (fun i ->
          let n = t.bin_count.(i) in
          {
            lo = float_of_int i *. w;
            hi = (if i = b - 1 then 1.0 else float_of_int (i + 1) *. w);
            count = n;
            confidence = (if n = 0 then 0. else t.bin_conf.(i) /. float_of_int n);
            accuracy =
              (if n = 0 then 0.
               else float_of_int t.bin_hit.(i) /. float_of_int n);
          }))

let calibration_errors t =
  let bins = reliability t in
  let total =
    Array.fold_left (fun acc (b : bin) -> acc + b.count) 0 bins
  in
  if total = 0 then (0., 0.)
  else
    Array.fold_left
      (fun (ece, mce) (b : bin) ->
        if b.count = 0 then (ece, mce)
        else
          let gap = Float.abs (b.accuracy -. b.confidence) in
          ( ece +. (float_of_int b.count /. float_of_int total *. gap),
            Float.max mce gap ))
      (0., 0.) bins

let ece t = fst (calibration_errors t)
let mce t = snd (calibration_errors t)

type scores = {
  cells : int;
  brier : float;
  log_loss : float;
  top1_accuracy : float;
  ece : float;
  mce : float;
}

let scores t =
  let ece_v, mce_v = calibration_errors t in
  locked t (fun () ->
      if t.cells = 0 then
        {
          cells = 0;
          brier = 0.;
          log_loss = 0.;
          top1_accuracy = 0.;
          ece = ece_v;
          mce = mce_v;
        }
      else
        let n = float_of_int t.cells in
        {
          cells = t.cells;
          brier = t.brier_sum /. n;
          log_loss = t.logloss_sum /. n;
          top1_accuracy = float_of_int t.top1 /. n;
          ece = ece_v;
          mce = mce_v;
        })

type drift = {
  attr : int;
  name : string;
  observations : int;
  js : float;
  hellinger : float;
  kl : float;
  alert : bool;
}

let drift_epsilon = 1e-6

let drift_report t =
  locked t (fun () ->
      match t.reference with
      | None -> []
      | Some reference ->
          let rows = ref [] in
          Array.iteri
            (fun attr (name, ref_marginal) ->
              match (ref_marginal, Hashtbl.find_opt t.posteriors attr) with
              | Some reference_d, Some acc when acc.n > 0 ->
                  let mean =
                    Prob.Dist.of_weights
                      (Array.map (fun s -> s /. float_of_int acc.n) acc.sum)
                  in
                  if Prob.Dist.size reference_d = Prob.Dist.size mean then begin
                    let js = Prob.Divergence.jensen_shannon reference_d mean in
                    let hellinger =
                      Prob.Divergence.hellinger reference_d mean
                    in
                    let kl =
                      Prob.Divergence.kl ~epsilon:drift_epsilon reference_d
                        mean
                    in
                    rows :=
                      {
                        attr;
                        name;
                        observations = acc.n;
                        js;
                        hellinger;
                        kl;
                        alert = js > t.cfg.drift_threshold;
                      }
                      :: !rows
                  end
              | _ -> ())
            reference;
          List.rev !rows)

type health = {
  tasks : int;
  voters_per_task : float;
  root_only_share : float;
  strata : (int * int) list;
  degrade_marginal_share : float;
  degrade_uniform_share : float;
  chains : int;
  checked_runs : int;
  nonconverged_share : float;
}

let health ?(registry = Telemetry.global) t =
  let chains = Telemetry.counter registry "gibbs.chains" in
  let checked = Telemetry.counter registry "gibbs.checked" in
  let nonconverged = Telemetry.counter registry "degrade.nonconverged" in
  locked t (fun () ->
      let share num den =
        if den = 0 then 0. else float_of_int num /. float_of_int den
      in
      {
        tasks = t.tasks;
        voters_per_task =
          (if t.tasks = 0 then 0.
           else float_of_int t.voters_total /. float_of_int t.tasks);
        root_only_share = share t.root_only t.tasks;
        strata =
          Hashtbl.fold (fun s n acc -> (s, n) :: acc) t.strata []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
        degrade_marginal_share = share t.rung_marginal t.rung_total;
        degrade_uniform_share = share t.rung_uniform t.rung_total;
        chains;
        checked_runs = checked;
        nonconverged_share = share nonconverged checked;
      })

(* --- export ------------------------------------------------------------ *)

let drift_maxima rows =
  List.fold_left
    (fun (js, h, alerts) r ->
      ( Float.max js r.js,
        Float.max h r.hellinger,
        alerts + if r.alert then 1 else 0 ))
    (0., 0., 0) rows

let publish ?registry t =
  let s = scores t in
  let rows = drift_report t in
  let h = health ?registry t in
  let js_max, hellinger_max, alerts = drift_maxima rows in
  let g = Telemetry.gauge t.sink in
  g "quality.brier" s.brier;
  g "quality.log_loss" s.log_loss;
  g "quality.top1_accuracy" s.top1_accuracy;
  g "quality.ece" s.ece;
  g "quality.mce" s.mce;
  g "quality.drift.js_max" js_max;
  g "quality.drift.hellinger_max" hellinger_max;
  g "quality.voters.per_task" h.voters_per_task;
  g "quality.voters.root_only_share" h.root_only_share;
  g "quality.degrade.marginal_prior_share" h.degrade_marginal_share;
  g "quality.degrade.uniform_share" h.degrade_uniform_share;
  g "quality.nonconverged_share" h.nonconverged_share;
  (* count alert *transitions* so the counter stays monotone across
     repeated publishes of a steady state *)
  let newly =
    locked t (fun () ->
        let newly = max 0 (alerts - t.alerted) in
        t.alerted <- max t.alerted alerts;
        newly)
  in
  if newly > 0 then Telemetry.add t.sink "quality.drift.alerts" newly;
  if Trace.enabled () then
    List.iter
      (fun r ->
        if r.alert then
          Trace.instant ~cat:"quality"
            ~args:[ ("attr", Trace.Int r.attr); ("js", Trace.Float r.js) ]
            "quality.drift.alert")
      rows

let json_of_config cfg =
  Json.Obj
    [
      ("mask_fraction", Json.Float cfg.mask_fraction);
      ("seed", Json.Int cfg.seed);
      ("bins", Json.Int cfg.bins);
      ("drift_threshold", Json.Float cfg.drift_threshold);
      ("sharpen", Json.Float cfg.sharpen);
    ]

let to_json ?registry t =
  let s = scores t in
  let rows = drift_report t in
  let h = health ?registry t in
  let js_max, hellinger_max, alerts = drift_maxima rows in
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("config", json_of_config t.cfg);
      ( "scores",
        Json.Obj
          [
            ("cells", Json.Int s.cells);
            ("brier", Json.Float s.brier);
            ("log_loss", Json.Float s.log_loss);
            ("top1_accuracy", Json.Float s.top1_accuracy);
            ("ece", Json.Float s.ece);
            ("mce", Json.Float s.mce);
          ] );
      ( "reliability",
        Json.List
          (Array.to_list
             (Array.map
                (fun (b : bin) ->
                  Json.Obj
                    [
                      ("lo", Json.Float b.lo);
                      ("hi", Json.Float b.hi);
                      ("count", Json.Int b.count);
                      ("confidence", Json.Float b.confidence);
                      ("accuracy", Json.Float b.accuracy);
                    ])
                (reliability t))) );
      ( "drift",
        Json.Obj
          [
            ("js_max", Json.Float js_max);
            ("hellinger_max", Json.Float hellinger_max);
            ("alerts", Json.Int alerts);
            ( "attrs",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("attr", Json.Int r.attr);
                         ("name", Json.String r.name);
                         ("observations", Json.Int r.observations);
                         ("js", Json.Float r.js);
                         ("hellinger", Json.Float r.hellinger);
                         ("kl", Json.Float r.kl);
                         ("alert", Json.Bool r.alert);
                       ])
                   rows) );
          ] );
      ( "health",
        Json.Obj
          [
            ("tasks", Json.Int h.tasks);
            ("voters_per_task", Json.Float h.voters_per_task);
            ("root_only_share", Json.Float h.root_only_share);
            ( "strata",
              Json.List
                (List.map
                   (fun (s, n) ->
                     Json.Obj
                       [
                         ("specificity", Json.Int s); ("voters", Json.Int n);
                       ])
                   h.strata) );
            ("degrade_marginal_share", Json.Float h.degrade_marginal_share);
            ("degrade_uniform_share", Json.Float h.degrade_uniform_share);
            ("chains", Json.Int h.chains);
            ("checked_runs", Json.Int h.checked_runs);
            ("nonconverged_share", Json.Float h.nonconverged_share);
          ] );
    ]

let render ?registry t =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let s = scores t in
  out "shadow-masked cells scored: %d (mask fraction %.2f, seed %d)\n"
    s.cells t.cfg.mask_fraction t.cfg.seed;
  out "  brier %.4f | log loss %.4f | top-1 %.4f | ECE %.4f | MCE %.4f\n"
    s.brier s.log_loss s.top1_accuracy s.ece s.mce;
  out "reliability diagram (%d fixed-width bins over top-1 confidence):\n"
    t.cfg.bins;
  out "  %-14s %8s %12s %10s %8s\n" "bin" "count" "confidence" "accuracy"
    "gap";
  Array.iter
    (fun (b : bin) ->
      if b.count > 0 then
        out "  [%.2f, %.2f%c %8d %12.4f %10.4f %+8.4f\n" b.lo b.hi
          (if b.hi >= 1.0 then ']' else ')')
          b.count b.confidence b.accuracy
          (b.accuracy -. b.confidence))
    (reliability t);
  let rows = drift_report t in
  out "drift (empirical marginal vs mean inferred posterior, threshold JS > %.3f):\n"
    t.cfg.drift_threshold;
  if rows = [] then out "  (no posteriors observed)\n"
  else
    List.iter
      (fun r ->
        out "  %-12s obs %6d  JS %.5f  Hellinger %.5f  KL(ε) %.5f%s\n"
          r.name r.observations r.js r.hellinger r.kl
          (if r.alert then "  ** DRIFT ALERT **" else ""))
      rows;
  let h = health ?registry t in
  out "ensemble health:\n";
  out "  tasks %d | voters/task %.2f | root-only share %.4f\n" h.tasks
    h.voters_per_task h.root_only_share;
  List.iter
    (fun (s, n) -> out "    stratum %d (body size %d): %d voters\n" s s n)
    h.strata;
  out
    "  degrade shares: marginal-prior %.4f | uniform %.4f (over %d observed \
     rungs)\n"
    h.degrade_marginal_share h.degrade_uniform_share t.rung_total;
  out "  gibbs: %d chains, %d convergence-checked, nonconverged share %.4f\n"
    h.chains h.checked_runs h.nonconverged_share;
  Buffer.contents buf
