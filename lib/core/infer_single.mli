(** Single-attribute inference (paper Algorithm 2).

    Given an incomplete tuple and the MRSL of a missing attribute, collect
    the matching meta-rules, apply a voter-selection mechanism and a voting
    scheme, and return the estimated CPD over the attribute's domain.

    {b Degradation ladder.} {!infer} never lets an empty or degenerate
    voter set escape as [Invalid_argument] from [Voting.combine]. When the
    selected voter set is empty (impossible for well-formed models — every
    lattice carries a root — but reachable through corrupt deserialized
    models or {!Fault_inject} voter drops) or the combined CPD is
    non-finite, inference degrades one rung at a time:

    + MRSL voters (the normal path);
    + the attribute's {e marginal prior} — the lattice root's CPD —
      counted as [degrade.marginal_prior] in {!Telemetry};
    + the {e uniform} distribution over the attribute's domain, counted
      as [degrade.uniform], when even the root CPD is unavailable or
      non-finite.

    Structural misuse (wrong arity, attribute not missing, index out of
    range) still raises [Invalid_argument] from {!infer} — or comes back
    as an [Error.Input] from {!infer_result}. *)

type rung = Voters | Marginal_prior | Uniform
(** The degradation-ladder rung an inference task actually took:
    [Voters] is the normal MRSL path, the other two are the fallback
    rungs described above. Surfaced by {!explain} (and from there by
    [mrsl explain --json] and the {!Quality} shadow evaluator) so a
    derived probability's provenance records {e how} it was derived. *)

val rung_name : rung -> string
(** ["voters"], ["marginal-prior"], ["uniform"] — the stable identifiers
    used in machine-readable output. *)

val infer : ?method_:Voting.method_ -> ?telemetry:Telemetry.t ->
  ?cache:Posterior_cache.t -> Model.t -> Relation.Tuple.t -> int ->
  Prob.Dist.t
(** [infer model t a] — estimated distribution of the missing attribute [a]
    in [t]. The method defaults to best-averaged (the paper's most accurate
    setting). Raises [Invalid_argument] when [a] is not missing in [t] or
    out of range. Values of other missing attributes are simply absent
    evidence — the matching meta-rules condition only on known values.
    Degraded rungs are counted in [telemetry] (default
    {!Telemetry.global}); see the ladder above.

    [?cache] memoizes the result by evidence signature (see
    {!Posterior_cache}): a hit returns the bit-identical distribution the
    uncached computation would have produced, without re-running lattice
    matching or voting. On a hit the [degrade.*] telemetry of the original
    computation is {e not} re-counted — degradations are counted once per
    distinct evidence signature, not once per request. *)

val infer_result : ?method_:Voting.method_ -> ?telemetry:Telemetry.t ->
  ?cache:Posterior_cache.t -> Model.t -> Relation.Tuple.t -> int ->
  (Prob.Dist.t, Error.t) result
(** Non-raising boundary variant of {!infer}: structural misuse comes back
    as [Error Input/infer.bad_task] instead of [Invalid_argument]. *)

val infer_all_missing : ?method_:Voting.method_ -> Model.t ->
  Relation.Tuple.t -> (int * Prob.Dist.t) list
(** Independent single-attribute estimates for every missing attribute of
    the tuple (the naive per-attribute baseline that multi-attribute Gibbs
    inference improves on, Section V). *)

val voters : ?method_:Voting.method_ -> Model.t -> Relation.Tuple.t -> int ->
  Meta_rule.t list
(** The selected voter set for an inference task — exposed for inspection,
    explanation, and tests. *)

val marginal_prior : Model.t -> int -> Prob.Dist.t option
(** Rung 2 of the ladder: the lattice root's CPD (the attribute's exact
    marginal over the training data), or [None] when the lattice is
    unavailable or the root CPD is non-finite. *)

val degrade : ?telemetry:Telemetry.t -> card:int -> Prob.Dist.t option ->
  Prob.Dist.t
(** The lower rungs: [degrade ~card (Some prior)] returns the prior and
    counts [degrade.marginal_prior]; [degrade ~card None] returns
    [uniform card] and counts [degrade.uniform]. Exposed so the ladder is
    unit-testable without corrupting a model. *)

type explanation = {
  estimate : Prob.Dist.t;
  contributions : (Meta_rule.t * float) list;
      (** each selected voter with its normalized vote weight (summing to
          1): uniform under the averaged scheme, support-proportional
          under the weighted scheme; empty when the task degraded below
          the voter rung *)
  rung : rung;  (** the degradation rung actually taken *)
}

val explain : ?method_:Voting.method_ -> Model.t -> Relation.Tuple.t -> int ->
  explanation
(** Like {!infer}, but also reports how much each meta-rule contributed —
    the provenance of a derived probability — and which degradation rung
    produced the estimate. Walks exactly the same ladder as {!infer}
    (fault-injected voter drops included) but records nothing in
    telemetry, so explaining a task never double-counts a degradation
    the inference already counted. *)
