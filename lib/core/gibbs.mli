(** Ordered Gibbs sampling over MRSL models (Section V-A).

    For a tuple with several missing values, the sampler fixes the known
    attributes as evidence, initializes the missing ones, and repeatedly
    cycles through them in attribute order, resampling each from its
    single-attribute MRSL estimate with all other attributes as evidence
    (Heckerman et al.'s ordered Gibbs sampler over a dependency network).
    Smoothed meta-rule CPDs are strictly positive, so the chain is ergodic
    on the evidence-consistent slice of the space.

    Conditional CPDs are memoized across sweeps *and across tuples* keyed
    by (attribute, full evidence assignment): revisited chain states cost a
    hash probe instead of a lattice match — the "caching the results of
    partial computations" of Section I-B. *)

type config = {
  burn_in : int;  (** B — discarded leading sweeps per chain *)
  samples : int;  (** N — recorded sweeps per tuple *)
}

val default_config : config
(** B = 100, N = 1000. The voting method for the local CPDs is a property
    of the {!sampler}. *)

type sampler
(** A model wrapped with the conditional-CPD memo table. *)

val memo_domain_size : int array -> int option
(** [memo_domain_size cards] — the joint domain size used to key the
    conditional-CPD memo, or [None] when the product overflows [int]
    (memoization is then disabled). Raises [Invalid_argument] when any
    cardinality is [< 1] — a malformed schema is a programming error,
    not a reason to silently disable the memo. Exposed for tests. *)

val sampler : ?method_:Voting.method_ -> ?memoize:bool ->
  ?cache:Posterior_cache.t -> Model.t -> sampler
(** [memoize] (default [true]) controls the conditional-CPD cache. Turning
    it off reproduces the cost model of the paper's prototype, where every
    Gibbs sweep pays the full ensemble-voting cost — used by the Fig 11
    harness so sampling counts and wall time stay proportional, and ablated
    in the benchmarks.

    [?cache] attaches an evidence-keyed {!Posterior_cache}: chain
    initialization and memo-missed conditionals consult it before paying
    the lattice-match + vote, and fill it afterwards. Because cached
    posteriors are bit-identical to the uncached computation, attaching a
    cache never changes sampling output — only wall time. *)

val model : sampler -> Model.t

val voting_method : sampler -> Voting.method_
(** The voting method the sampler's inference calls use. *)

val posterior_cache : sampler -> Posterior_cache.t option
(** The attached evidence-keyed posterior cache, if any. *)

val conditional : sampler -> int array -> int -> Prob.Dist.t
(** [conditional s point a] — memoized MRSL estimate of attribute [a]
    given the values of all other attributes in [point]. *)

val cache_stats : sampler -> int * int
(** (hits, misses) of the conditional-CPD memo table. *)

val hit_rate : sampler -> float
(** hits / (hits + misses), or [0.] before any probe (or when the memo
    is disabled). *)

val publish_cache_stats : ?telemetry:Telemetry.t -> sampler -> unit
(** Record the memo counters into [telemetry] (default
    {!Telemetry.global}): counters [gibbs.memo_hits] /
    [gibbs.memo_misses] and one [gibbs.memo_hit_rate] histogram
    observation (skipped when the sampler was never probed). *)

type chain
(** One Gibbs chain: a tuple's evidence plus the current assignment of its
    missing attributes. *)

val chain : ?telemetry:Telemetry.t -> Prob.Rng.t -> sampler ->
  Relation.Tuple.t -> chain
(** Start a chain for an incomplete tuple: missing attributes are
    initialized by sampling their single-attribute MRSL estimates given
    the evidence. Raises [Invalid_argument] on a complete tuple.
    Counts [gibbs.chains] in [telemetry] (default {!Telemetry.global}) —
    the denominator the {!Quality} ensemble-health report uses to turn
    [degrade.*] counts into shares. *)

val sweep : Prob.Rng.t -> chain -> int array
(** Resample every missing attribute once, in attribute order; returns the
    resulting complete point (a fresh copy). *)

type estimate = {
  tuple : Relation.Tuple.t;
  missing : int list;  (** missing attribute indices, ascending *)
  cards : int array;  (** their cardinalities, same order *)
  joint : Prob.Dist.t;  (** joint distribution in mixed-radix code order *)
  samples_used : int;
}

val estimate_of_points : sampler -> Relation.Tuple.t -> int array list ->
  estimate
(** Empirical (smoothed) joint distribution of the tuple's missing
    attributes over a bag of complete points — used both by [run] and by
    the sample-sharing tuple-DAG strategy. Raises [Invalid_argument] on an
    empty bag. *)

val marginal : estimate -> int -> Prob.Dist.t
(** Marginal distribution of one missing attribute of an estimate. *)

val run : ?config:config -> Prob.Rng.t -> sampler -> Relation.Tuple.t ->
  estimate
(** Tuple-at-a-time inference for one tuple: burn-in, then N recorded
    sweeps, then the empirical joint estimate. *)
