(** Multicore workload inference: persistent domain pool + work stealing.

    Distinct incomplete tuples are independent inference tasks, but the
    tuple DAG (Algorithm 3) couples them through sample sharing. Instead
    of the static per-domain chunks of the seed implementation — which
    forfeited cross-chunk sharing and serialized behind the slowest
    chunk — the scheduler makes every DAG node a stealable task on
    per-worker deques ({!Wsdeque}): roots are dealt round-robin in task
    order, and when a node completes, subsumees whose parents have all
    finished either complete outright on donated samples or re-enter the
    deques. Domains come from the process-wide {!Domain_pool} and keep
    their conditional-CPD memo tables (with hit/miss counters) in
    domain-local storage across tasks and across runs.

    {b Determinism.} Each task draws from an RNG stream seeded by its
    node index in the deterministic tuple DAG — a stable task identity —
    and donation pulls parent samples in ascending node order,
    oldest-first, only after every parent has completed. Consequently a
    fixed [seed] yields bit-identical estimates and identical
    sweep/recorded/shared counters for any [domains] value and any steal
    interleaving; only [wall_seconds] varies.

    Cross-node sharing is global (not chunk-local), so tuple-DAG runs do
    strictly fewer sweeps than the seed's static partition at every
    domain count. Steal counts, queue depths, and memo hit rates are
    recorded in the {!Telemetry} registry. *)

type fault_policy =
  | Fail_fast  (** first task exception aborts the pool and re-raises *)
  | Skip_and_report
      (** a task exception is contained to its tuple: the tuple (and its
          DAG descendants, which would otherwise inherit a truncated
          donation stream) is skipped and reported; every other task runs
          to completion *)

type tuple_fault = {
  node : int;  (** node index in the tuple DAG *)
  tuple : Relation.Tuple.t;
  error : Error.t;
  upstream : int option;
      (** [Some r] when the tuple was skipped only because ancestor node
          [r] failed (error code [task.upstream_failed]); [None] when
          the task itself raised *)
}

type contained = {
  result : Workload.result;  (** estimates for the surviving tuples *)
  faults : tuple_fault list;  (** skipped tuples, in node order *)
}

val run_contained : ?config:Gibbs.config -> ?strategy:Workload.strategy ->
  ?method_:Voting.method_ -> ?memoize:bool -> ?cache:Posterior_cache.t ->
  ?domains:int -> ?telemetry:Telemetry.t -> ?policy:fault_policy ->
  ?quality:Quality.t -> ?request_flow:int -> seed:int -> Model.t ->
  Relation.Tuple.t list -> contained
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    by the number of distinct tuples; it must be [>= 1]. Estimates are
    returned in first-seen workload order. [telemetry] (default
    {!Telemetry.global}) receives counters [parallel.tasks],
    [parallel.steals], [parallel.sweeps], [parallel.shared], gauge
    [parallel.domains], histograms [parallel.queue_depth.max] and
    [gibbs.memo_hit_rate], and span [parallel.run].

    [cache], when given, is the evidence-keyed {!Posterior_cache} shared
    by every worker's sampler: before any task is dealt, the orchestrator
    groups the raw workload's [(tuple, missing attribute)] tasks by
    evidence signature and computes each distinct posterior once (request
    dedup — counted as [cache.dedup_fanout]); workers' chain inits and
    memo-missed conditionals then hit the cache. Cached posteriors are
    bit-identical to the uncached computation and per-task RNG streams
    are untouched, so a cached run's estimates equal an uncached run's at
    any [domains] count (asserted by the test suite).

    [strategy] defaults to [Tuple_dag]. [Tuple_at_a_time] uses the same
    scheduler with no sharing edges. [All_at_a_time] is a single global
    chain and runs sequentially on the calling domain via
    {!Workload.run}; per-task containment does not apply to it.

    {b Fault containment.} Under [policy = Skip_and_report] (default
    [Fail_fast]) a task exception no longer unwinds the domain pool: the
    offending tuple is recorded in [faults] with the structured
    {!Error.t} ({!Error.of_exn}), its DAG descendants are marked skipped
    with code [task.upstream_failed] naming the root cause, and all
    remaining tasks run to completion. Because every task's RNG stream
    is seeded by its node index and donations are pulled only from fully
    completed ancestors, the surviving tuples' estimates are
    bit-identical to a fault-free run at any [domains] count. Counters
    [fault.task_failures], [fault.tuples_skipped], and
    [fault.upstream_skipped] land in [telemetry].
    {!Fault_inject.should_fail_task} (keyed by node index) injects
    deterministic task faults (code [fault_inject.task]) for testing.

    [quality], when given, observes the merged estimates after all
    sampling completes ({!Quality.attach_model} +
    {!Quality.observe_estimates}), on the orchestrating domain only.
    The monitor consumes no inference RNG and no worker ever sees it,
    so a quality-monitored run is bit-identical to an unmonitored one
    at any [domains] count (asserted by the test suite).

    [request_flow], when given, is a serving-request flow id
    ({!Trace.request_flow_id}): the worker that executes node 0 emits a
    [serve]/[serve.request] {!Trace.flow_end} on its own track just
    before the task slice, terminating the daemon's admission → batch →
    task arrow. Pure observation — no effect on scheduling or output. *)

val run : ?config:Gibbs.config -> ?strategy:Workload.strategy ->
  ?method_:Voting.method_ -> ?memoize:bool -> ?cache:Posterior_cache.t ->
  ?domains:int -> ?telemetry:Telemetry.t -> ?quality:Quality.t ->
  seed:int -> Model.t -> Relation.Tuple.t list -> Workload.result
(** [run_contained] under [Fail_fast], returning only the result — the
    pre-containment interface, unchanged. *)

val partition : int -> Relation.Tuple.t list -> Relation.Tuple.t list list
(** The seed implementation's subsumption-aware static partition
    (itemset-sorted round-robin deal into at most [chunks] non-empty
    buckets). No longer used by [run]; kept as the baseline that
    benchmarks measure the work-stealing scheduler against. *)
