(** Multi-attribute inference over workloads of incomplete tuples
    (Section V): the three sampling strategies the paper compares.

    - {e tuple-at-a-time}: an independent Gibbs chain per distinct tuple —
      the baseline of Fig 11.
    - {e tuple-DAG} (Algorithm 3): chains run only for the subsumption
      roots; completed nodes donate matching samples to their subsumees,
      which are promoted to the sampling frontier only if still short of N
      once every parent has finished.
    - {e all-at-a-time}: one chain over the fully unknown tuple t*; every
      draw is offered to every workload tuple it matches. Kept for
      completeness (Section V-A shows why it wastes samples on selective
      evidence).

    Cost is reported as the number of Gibbs sweeps (sampled points,
    burn-in included) and wall-clock seconds — the two y-axes of
    Fig 11. *)

type strategy = Tuple_at_a_time | Tuple_dag | All_at_a_time

val strategy_name : strategy -> string

type stats = {
  sweeps : int;  (** Gibbs draws performed, burn-in included *)
  recorded : int;  (** sample points recorded into per-tuple buffers *)
  shared : int;  (** of [recorded], how many arrived by DAG sharing *)
  wall_seconds : float;
}

type result = {
  estimates : (Relation.Tuple.t * Gibbs.estimate) list;
      (** one estimate per distinct incomplete tuple, in first-seen order *)
  stats : stats;
}

val run : ?config:Gibbs.config -> ?strategy:strategy -> ?max_draws:int ->
  ?telemetry:Telemetry.t -> ?quality:Quality.t -> Prob.Rng.t ->
  Gibbs.sampler -> Relation.Tuple.t list -> result
(** Infer the joint distribution of the missing values of every distinct
    incomplete tuple in the workload. Complete tuples are rejected with
    [Invalid_argument]. [strategy] defaults to [Tuple_dag]. [max_draws]
    (default [10_000_000]) bounds the all-at-a-time chain, which otherwise
    need not terminate when some tuple's evidence is never hit; tuples
    still short of samples when the cap fires are estimated from what was
    collected (or from one forced direct chain if they matched nothing).
    [telemetry] (default {!Telemetry.global}) receives the
    [workload.run] span, [workload.sweeps] / [workload.recorded] /
    [workload.shared] counters, the [workload.tuples] histogram, and a
    [gibbs.memo_hit_rate] observation covering this run's memo probes.

    [quality], when given, receives the run's estimates {e after} every
    sample has been drawn ({!Quality.attach_model} on the sampler's
    model, then {!Quality.observe_estimates}): pure observation feeding
    the drift monitor. The hook consumes no inference RNG and runs
    outside the sampling loops, so a monitored run is bit-identical to
    an unmonitored one.

    When the sampler carries a {!Posterior_cache}
    ([Gibbs.sampler ~cache]), the run first dedups the raw workload's
    [(tuple, missing attribute)] tasks by evidence signature and computes
    each distinct posterior once ([cache.dedup_fanout]); chain inits then
    hit the cache. Cached posteriors are bit-identical to the uncached
    computation and the inference RNG is untouched, so cached and
    uncached runs produce identical estimates. *)
