let check_task model tup a =
  let arity = Relation.Schema.arity (Model.schema model) in
  if Array.length tup <> arity then
    invalid_arg "Infer_single: tuple arity does not match model schema";
  if a < 0 || a >= arity then
    invalid_arg "Infer_single: attribute index out of range";
  match tup.(a) with
  | Some _ ->
      invalid_arg "Infer_single: attribute is not missing in the tuple"
  | None -> ()

let voters ?(method_ = Voting.best_averaged) model tup a =
  check_task model tup a;
  let matches = Lattice.matching (Model.lattice model a) tup in
  Voting.select method_.choice matches

(* --- graceful-degradation ladder ------------------------------------- *)

(* [Dist.t] is a private [float array]; the coercion reads without
   copying, keeping the finiteness check cheap on the Gibbs hot path. *)
let finite_dist d = Array.for_all Float.is_finite (d : Prob.Dist.t :> float array)

let marginal_prior model a =
  match Lattice.root (Model.lattice model a) with
  | (root : Meta_rule.t) ->
      if finite_dist root.cpd then Some root.cpd else None
  | exception _ -> None

let degrade ?(telemetry = Telemetry.global) ~card prior =
  match prior with
  | Some p ->
      Telemetry.incr telemetry "degrade.marginal_prior";
      Trace.instant ~cat:"voting" "degrade.marginal_prior";
      p
  | None ->
      Telemetry.incr telemetry "degrade.uniform";
      Trace.instant ~cat:"voting" "degrade.uniform";
      Prob.Dist.uniform card

type rung = Voters | Marginal_prior | Uniform

let rung_name = function
  | Voters -> "voters"
  | Marginal_prior -> "marginal-prior"
  | Uniform -> "uniform"

(* Fault injection: a dropped voter set exercises the ladder end to end.
   Keyed by (attribute, evidence) via the full mixed-radix evidence code —
   [Stdlib.Hashtbl.hash]'s bounded traversal ignored the tail of wide
   tuples, making tuples that differ only in late attributes share one
   drop decision and systematically skewing the injected fault rate. *)
let apply_voter_drop model tup a selected =
  if (Fault_inject.current ()).Fault_inject.voter_drop_rate > 0. then begin
    let schema = Model.schema model in
    let cards =
      Array.init (Relation.Schema.arity schema)
        (Relation.Schema.cardinality schema)
    in
    if
      Fault_inject.should_drop_voters
        ~key:(Posterior_cache.evidence_key ~cards tup a)
    then []
    else selected
  end
  else selected

(* One ladder walk shared by {!infer} and {!explain}: the estimate, the
   voters that actually voted (empty below rung 1), and the rung taken.
   [count] gates the [degrade.*] telemetry/trace emissions so that
   explaining a task never double-counts a degradation that {!infer}
   already recorded. *)
let infer_rung ~count ?(method_ = Voting.best_averaged) ?telemetry model tup a =
  let selected = apply_voter_drop model tup a (voters ~method_ model tup a) in
  let fallback () =
    let card = Relation.Schema.cardinality (Model.schema model) a in
    let prior = marginal_prior model a in
    let rung = match prior with Some _ -> Marginal_prior | None -> Uniform in
    let d =
      if count then degrade ?telemetry ~card prior
      else
        match prior with Some p -> p | None -> Prob.Dist.uniform card
    in
    (d, [], rung)
  in
  match selected with
  | [] -> fallback ()
  | vs -> (
      match Voting.combine method_.scheme vs with
      | d when finite_dist d -> (d, vs, Voters)
      | _ -> fallback ()
      | exception Invalid_argument _ -> fallback ())

let infer ?method_ ?telemetry ?cache model tup a =
  (* Allocation accounting (ROADMAP item 2 baseline): one atomic load
     when no Resource monitor is installed; observation only either
     way. *)
  Resource.alloc_span ?telemetry "mem.alloc_per_infer_bytes" @@ fun () ->
  let method_ = Option.value method_ ~default:Voting.best_averaged in
  (* Compiled fast path first; the kernel returns None (and the
     interpreted oracle below runs, degradation telemetry included)
     whenever it cannot guarantee a bit-identical posterior. *)
  let compute () =
    match Kernel.posterior ?telemetry ~method_ model tup a with
    | Some d -> d
    | None ->
        let d, _, _ = infer_rung ~count:true ~method_ ?telemetry model tup a in
        d
  in
  match cache with
  | None ->
      check_task model tup a;
      compute ()
  | Some c ->
      (* Validate up front: a cache hit must not skip the structural
         checks a miss would have performed. *)
      check_task model tup a;
      Posterior_cache.find_or_compute c model ~method_ tup a compute

let infer_result ?method_ ?telemetry ?cache model tup a =
  match infer ?method_ ?telemetry ?cache model tup a with
  | d -> Ok d
  | exception Invalid_argument msg ->
      Result.Error (Error.make Error.Input ~code:"infer.bad_task" msg)
  | exception Error.Mrsl_error e -> Result.Error e

let infer_all_missing ?method_ model tup =
  List.map (fun a -> (a, infer ?method_ model tup a)) (Relation.Tuple.missing tup)

type explanation = {
  estimate : Prob.Dist.t;
  contributions : (Meta_rule.t * float) list;
  rung : rung;
}

let explain ?(method_ = Voting.best_averaged) model tup a =
  let estimate, selected, rung =
    infer_rung ~count:false ~method_ model tup a
  in
  let weights =
    match method_.scheme with
    | Voting.Averaged -> List.map (fun _ -> 1.) selected
    | Voting.Weighted ->
        let ws = List.map (fun (m : Meta_rule.t) -> m.weight) selected in
        if List.for_all (fun w -> w <= 0.) ws then
          List.map (fun _ -> 1.) selected
        else ws
  in
  let contributions =
    match selected with
    | [] -> []
    | _ ->
        let total = List.fold_left ( +. ) 0. weights in
        List.map2 (fun m w -> (m, w /. total)) selected weights
        |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  { estimate; contributions; rung }
