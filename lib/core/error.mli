(** Structured error taxonomy for fault-contained inference.

    A production MRSL service sees exactly the inputs the paper promises —
    incomplete, messy relations — so failures are part of the data model,
    not exceptional control flow. Every recoverable failure in the library
    is described by a {!t}: a coarse {e class} (which subsystem failed), a
    stable machine-readable {e code} (suitable for alerting and telemetry
    dimensions), a human-readable message, and a key/value context
    (file, line, node index, …).

    Library boundaries expose [result]-returning variants built on this
    type ({!Infer_single.infer_result}, {!Parallel.run_contained},
    [Relation.Csv_io.read_string_lenient]); the exception {!Mrsl_error}
    carries the same payload across layers that still raise. *)

type class_ =
  | Input  (** malformed or inconsistent caller-supplied data *)
  | Model  (** a corrupt or mismatched learned model *)
  | Inference  (** a failure inside an inference computation *)
  | Scheduler  (** a failure in the parallel execution layer *)

type t = {
  class_ : class_;
  code : string;  (** stable dotted code, e.g. ["fault_inject.task"] *)
  message : string;
  context : (string * string) list;
}

exception Mrsl_error of t

val make : ?context:(string * string) list -> class_ -> code:string ->
  string -> t

val class_name : class_ -> string
(** ["input"], ["model"], ["inference"], or ["scheduler"]. *)

val to_string : t -> string
(** ["class/code: message [k=v, …]"]. *)

val pp : Format.formatter -> t -> unit

val raise_ : t -> 'a
(** Raise as {!Mrsl_error}. *)

val of_exn : exn -> t
(** Classify an arbitrary exception: {!Mrsl_error} payloads pass through,
    [Invalid_argument] becomes [Inference/invalid_argument], [Failure]
    becomes [Input/failure], anything else [Scheduler/exception]. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting raised exceptions via {!of_exn}.
    [Stack_overflow] and [Out_of_memory] are re-raised, not captured. *)
