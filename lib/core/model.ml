let log_src = Logs.Src.create "mrsl" ~doc:"MRSL learning and inference"

module Log = (val Logs.src_log log_src)

type miner = Apriori | Fp_growth

type params = {
  support_threshold : float;
  max_itemsets : int;
  smoothing_floor : float;
  miner : miner;
}

let default_params =
  {
    support_threshold = 0.02;
    max_itemsets = 1000;
    smoothing_floor = Prob.Dist.smoothing_floor;
    miner = Apriori;
  }

type t = {
  schema : Relation.Schema.t;
  lattices : Lattice.t array;
  params : params;
  frequent_itemsets : int;
  truncated : bool;
  epoch : int;
      (* Process-unique model generation, assigned at construction from a
         global atomic counter. Two models never share an epoch, so a
         posterior cache keyed by epoch can never serve results computed
         against a different (e.g. retrained or reloaded) model. *)
}

let epoch_counter = Atomic.make 0
let next_epoch () = Atomic.fetch_and_add epoch_counter 1

(* The root meta-rule P(a): exact marginal value frequencies over the
   points, weight 1 (it is supported by the whole dataset). *)
let root_meta_rule ~floor schema points attr =
  let card = Relation.Schema.cardinality schema attr in
  let counts = Array.make card 0 in
  Array.iter (fun p -> counts.(p.(attr)) <- counts.(p.(attr)) + 1) points;
  let n = Array.length points in
  let raw =
    if n = 0 then Array.make card 0.
    else Array.map (fun c -> float_of_int c /. float_of_int n) counts
  in
  Meta_rule.make ~floor ~body:Mining.Itemset.empty ~head_attr:attr
    ~weight:1.0 ~raw_cpd:raw ()

let group_rules_by_body rules =
  let groups = Mining.Itemset.Table.create 256 in
  List.iter
    (fun (r : Mining.Assoc_rule.t) ->
      let prev =
        Option.value ~default:[]
          (Mining.Itemset.Table.find_opt groups r.body)
      in
      Mining.Itemset.Table.replace groups r.body (r :: prev))
    rules;
  groups

let learn_points ?(params = default_params) schema points =
  if params.support_threshold < 0. || params.support_threshold > 1. then
    invalid_arg "Model.learn: support_threshold must be in [0, 1]";
  if params.max_itemsets < 1 then
    invalid_arg "Model.learn: max_itemsets must be positive";
  if params.smoothing_floor <= 0. || params.smoothing_floor >= 0.5 then
    invalid_arg "Model.learn: smoothing_floor must be in (0, 0.5)";
  let arity = Relation.Schema.arity schema in
  let cards = Array.init arity (Relation.Schema.cardinality schema) in
  let config : Mining.Apriori.config =
    {
      threshold = params.support_threshold;
      max_itemsets = params.max_itemsets;
    }
  in
  Telemetry.span Telemetry.global "model.learn" @@ fun () ->
  Trace.complete ~cat:"learn"
    ~args:[ ("points", Trace.Int (Array.length points)) ]
    "model.learn"
  @@ fun () ->
  let t0 = Clock.now () in
  let apriori =
    Trace.complete ~cat:"mine"
      ~args:
        [
          ( "miner",
            Trace.Str
              (match params.miner with
              | Apriori -> "apriori"
              | Fp_growth -> "fp-growth") );
          ("points", Trace.Int (Array.length points));
        ]
      "mine.frequent_itemsets"
      (fun () ->
        match params.miner with
        | Apriori -> Mining.Apriori.mine ~config ~cards points
        | Fp_growth -> Mining.Fp_growth.mine ~config ~cards points)
  in
  Log.debug (fun m ->
      m "apriori: %d frequent itemsets in %d rounds%s (%.3fs, θ=%g, %d points)"
        (Mining.Apriori.count apriori)
        (Mining.Apriori.rounds apriori)
        (if Mining.Apriori.truncated apriori then " [truncated]" else "")
        (Clock.now () -. t0)
        params.support_threshold (Array.length points));
  let lattice_of_attr attr =
    Trace.complete ~cat:"lattice"
      ~args:[ ("attr", Trace.Int attr) ]
      "lattice.build"
    @@ fun () ->
    let head_card = cards.(attr) in
    let root =
      root_meta_rule ~floor:params.smoothing_floor schema points attr
    in
    let rules = Mining.Assoc_rule.mine_for_attr apriori attr in
    let groups = group_rules_by_body rules in
    let metas =
      Mining.Itemset.Table.fold
        (fun body group acc ->
          (* The empty body is covered by the exact-marginal root. *)
          if Mining.Itemset.is_empty body then acc
          else
            Meta_rule.of_rules ~floor:params.smoothing_floor ~head_card group
            :: acc)
        groups []
    in
    Lattice.create ~head_attr:attr ~head_card ~root metas
  in
  let lattices = Array.init arity lattice_of_attr in
  Log.info (fun m ->
      m "learned MRSL model: %d meta-rules over %d attributes (%.3fs)"
        (Array.fold_left (fun acc l -> acc + Lattice.size l) 0 lattices)
        arity
        (Clock.now () -. t0));
  {
    schema;
    lattices;
    params;
    frequent_itemsets = Mining.Apriori.count apriori;
    truncated = Mining.Apriori.truncated apriori;
    epoch = next_epoch ();
  }

let of_parts ?(params = default_params) ?(frequent_itemsets = 0)
    ?(truncated = false) schema lattices =
  let arity = Relation.Schema.arity schema in
  if Array.length lattices <> arity then
    invalid_arg "Model.of_parts: one lattice per attribute required";
  Array.iteri
    (fun i l ->
      if Lattice.head_attr l <> i then
        invalid_arg "Model.of_parts: lattice head attribute out of order";
      if Lattice.head_card l <> Relation.Schema.cardinality schema i then
        invalid_arg "Model.of_parts: lattice cardinality mismatch")
    lattices;
  { schema; lattices = Array.copy lattices; params; frequent_itemsets;
    truncated; epoch = next_epoch () }

let learn ?params inst =
  learn_points ?params (Relation.Instance.schema inst)
    (Relation.Instance.complete_part inst)

let schema t = t.schema
let params t = t.params

let lattice t i =
  if i < 0 || i >= Array.length t.lattices then
    invalid_arg "Model.lattice: attribute index out of range";
  t.lattices.(i)

let lattices t = Array.copy t.lattices

let size t =
  Array.fold_left (fun acc l -> acc + Lattice.size l) 0 t.lattices

let frequent_itemsets t = t.frequent_itemsets
let truncated t = t.truncated
let epoch t = t.epoch

let pp ppf t =
  Format.fprintf ppf "@[<v>MRSL model over %a: %d meta-rules%s@,%a@]"
    Relation.Schema.pp t.schema (size t)
    (if t.truncated then " (mining truncated)" else "")
    (Format.pp_print_seq ~pp_sep:Format.pp_print_cut Lattice.pp)
    (Array.to_seq t.lattices)
