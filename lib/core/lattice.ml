type t = {
  head_attr : int;
  head_card : int;
  by_body : Meta_rule.t Mining.Itemset.Table.t;
  max_body_size : int;
  body_attrs : int array;
      (* Sorted, duplicate-free union of the attributes mentioned by any
         rule body in the lattice — the only attributes whose observed
         values can influence [matching], and therefore the only cells a
         posterior-cache key needs to encode. *)
}

let create ~head_attr ~head_card ~root rules =
  if (root : Meta_rule.t).head_attr <> head_attr then
    invalid_arg "Lattice.create: root head attribute mismatch";
  if not (Mining.Itemset.is_empty root.body) then
    invalid_arg "Lattice.create: root body must be empty";
  if Prob.Dist.size root.cpd <> head_card then
    invalid_arg "Lattice.create: root CPD size mismatch";
  let by_body = Mining.Itemset.Table.create (List.length rules * 2 + 1) in
  Mining.Itemset.Table.replace by_body root.body root;
  let max_size = ref 0 in
  List.iter
    (fun (m : Meta_rule.t) ->
      if m.head_attr <> head_attr then
        invalid_arg "Lattice.create: head attribute mismatch";
      if Prob.Dist.size m.cpd <> head_card then
        invalid_arg "Lattice.create: CPD size mismatch";
      if Mining.Itemset.is_empty m.body then
        invalid_arg "Lattice.create: non-root meta-rule with empty body";
      if Mining.Itemset.Table.mem by_body m.body then
        invalid_arg "Lattice.create: duplicate body";
      Mining.Itemset.Table.replace by_body m.body m;
      if Mining.Itemset.size m.body > !max_size then
        max_size := Mining.Itemset.size m.body)
    rules;
  let body_attrs =
    let module IS = Set.Make (Int) in
    let set =
      Mining.Itemset.Table.fold
        (fun body _ acc ->
          List.fold_left
            (fun acc a -> if a = head_attr then acc else IS.add a acc)
            acc (Mining.Itemset.attrs body))
        by_body IS.empty
    in
    Array.of_list (IS.elements set)
  in
  { head_attr; head_card; by_body; max_body_size = !max_size; body_attrs }

let head_attr t = t.head_attr
let head_card t = t.head_card
let size t = Mining.Itemset.Table.length t.by_body

let root t =
  match Mining.Itemset.Table.find_opt t.by_body Mining.Itemset.empty with
  | Some m -> m
  | None -> assert false

let meta_rules t =
  Mining.Itemset.Table.fold (fun _ m acc -> m :: acc) t.by_body []
  |> List.sort (fun (a : Meta_rule.t) (b : Meta_rule.t) ->
         let c = Int.compare (Meta_rule.specificity a) (Meta_rule.specificity b) in
         if c <> 0 then c else Mining.Itemset.compare a.body b.body)

let find t body = Mining.Itemset.Table.find_opt t.by_body body

let max_body_size t = t.max_body_size
let body_attrs t = t.body_attrs

let matching t tup =
  (* Known assignments excluding the head attribute (bodies never mention
     it, so combinations containing it cannot be in the table). *)
  let known =
    List.filter (fun (a, _) -> a <> t.head_attr) (Relation.Tuple.known tup)
  in
  let known = Array.of_list known in
  let k = Array.length known in
  let acc = ref [ root t ] in
  let max_s = min t.max_body_size k in
  (* Enumerate subsets of each size via a combination odometer. *)
  let chosen = Array.make (max 1 max_s) 0 in
  let rec enum s pos start =
    if pos = s then begin
      let items = Array.to_list (Array.init s (fun i -> known.(chosen.(i)))) in
      match Mining.Itemset.Table.find_opt t.by_body (Mining.Itemset.of_list items) with
      | Some m -> acc := m :: !acc
      | None -> ()
    end
    else
      for c = start to k - (s - pos) do
        chosen.(pos) <- c;
        enum s (pos + 1) (c + 1)
      done
  in
  for s = 1 to max_s do
    enum s 0 0
  done;
  !acc

let most_specific matches =
  List.filter
    (fun m ->
      not (List.exists (fun other -> Meta_rule.subsumes m other) matches))
    matches

let cover_edges t =
  let rules = meta_rules t in
  let pairs = ref [] in
  List.iter
    (fun parent ->
      List.iter
        (fun child ->
          if Meta_rule.subsumes parent child then begin
            (* Keep only covering pairs: nothing strictly between. *)
            let between =
              List.exists
                (fun mid ->
                  Meta_rule.subsumes parent mid && Meta_rule.subsumes mid child)
                rules
            in
            if not between then pairs := (parent, child) :: !pairs
          end)
        rules)
    rules;
  List.rev !pairs

let pp ppf t =
  Format.fprintf ppf "@[<v>MRSL(a%d): %d meta-rules@,%a@]" t.head_attr (size t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Meta_rule.pp)
    (meta_rules t)

let pp_named schema ppf t =
  Format.fprintf ppf "@[<v>MRSL(%s): %d meta-rules@,%a@]"
    (Relation.Attribute.name (Relation.Schema.attribute schema t.head_attr))
    (size t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       (Meta_rule.pp_named schema))
    (meta_rules t)
