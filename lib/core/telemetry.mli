(** Machine-readable performance telemetry.

    A registry of named metrics written from any domain and snapshotted to
    JSON — the substrate of the BENCH_*.json artifacts that the CI
    regression gate consumes, and of the steal/queue-depth/memo-hit-rate
    instrumentation inside {!Parallel} and {!Workload}.

    Four metric kinds:

    - {e counters} — monotonically increasing ints ([incr] / [add]).
      Incremented with an atomic; safe and cheap from any domain.
    - {e gauges} — a current float value; the snapshot records both the
      last and the maximum observed.
    - {e histograms} — float observations summarized as
      count/min/max/mean/p50/p90/p99.
    - {e spans} — wall- and CPU-clocked sections ([span]), accumulated
      across calls.

    Metric names are free-form strings; dotted paths
    ([parallel.steals], [gibbs.memo_hit_rate]) are conventional. *)

(** Minimal JSON values: emitter and parser, no external dependencies.
    Floats are printed with enough digits to round-trip; non-finite
    floats are emitted as [null] (JSON has no representation for them). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : ?pretty:bool -> t -> string
  (** [pretty] (default [true]) indents objects and lists. *)

  val of_string : string -> t
  (** Raises {!Parse_error} on malformed input. Numbers with a fraction
      or exponent parse as [Float], others as [Int]. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on other constructors. *)

  val to_float : t -> float
  (** [Int] and [Float] as a float; raises [Parse_error] otherwise. *)

  val equal : t -> t -> bool
  (** Structural equality, with [Int n] equal to [Float (float n)] and
      object fields compared order-insensitively. *)
end

type t
(** A metric registry. All operations are thread- and domain-safe. *)

val create : unit -> t

val global : t
(** The process-wide default registry; the sink used by {!Parallel} and
    {!Workload} when no explicit registry is passed. *)

(** {1 Counters} *)

val incr : ?by:int -> t -> string -> unit
(** [incr ?by t name] adds [by] (default 1; must be [>= 0], negative
    increments raise [Invalid_argument] — counters are monotone). *)

val add : t -> string -> int -> unit
(** [add t name n] = [incr ~by:n t name]. *)

val counter : t -> string -> int
(** Current value; [0] if the counter was never touched. *)

val snapshot_counters : t -> (string * int) list
(** Every counter of the registry with its current value, sorted by
    name — the bulk read behind ratio-style derived metrics (the
    {!Quality} health report computes degradation-rung and
    nonconvergence shares from it) and the quality CLI. *)

(** {1 Gauges} *)

val gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float option

(** {1 Histograms} *)

val observe : t -> string -> float -> unit

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram : t -> string -> summary option
(** count/min/max/mean are exact over every observation. Percentiles are
    estimated from a uniform reservoir of at most 8192 observations
    maintained by Vitter's Algorithm R: once full, observation [i]
    replaces a uniformly random slot with probability [8192/i], so every
    observation — early or late — is equally likely to be in the sample
    (the seed implementation kept only the {e first} 8192, biasing long
    runs toward warm-up behavior). Replacement draws come from a
    splitmix64 stream seeded by the metric name, so the reservoir is a
    deterministic function of the observation sequence. *)

(** {1 Spans} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** Times [f ()] (wall via the monotonic {!Clock}, CPU via [Sys.time])
    and accumulates into the named span; re-raises [f]'s exceptions
    after recording. Durations are clamped at 0, and the monotonic
    source cannot step backwards under NTP adjustments the way the
    previous [Unix.gettimeofday] clock could. *)

(** {1 Snapshot} *)

val to_json : t -> Json.t
(** Snapshot every metric, keys sorted, as
    [{"counters": {...}, "gauges": {...}, "histograms": {...},
      "spans": {...}}]. *)

val reset : t -> unit
(** Drop every metric (used between benchmark sections). *)
