(* Resource observability (see resource.mli). Observation-only: nothing
   here touches an RNG, a sampler or a model, so installing a monitor
   cannot change inference output. *)

let word_bytes = Sys.word_size / 8

type snapshot = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  promoted_words : float;
  allocated_bytes : float;
}

let take_snapshot () =
  let s = Gc.quick_stat () in
  {
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    promoted_words = s.Gc.promoted_words;
    allocated_bytes = Gc.allocated_bytes ();
  }

type t = {
  telemetry : Telemetry.t;
  lock : Mutex.t;  (* the GC alarm and explicit samples can race *)
  mutable last : snapshot;
  mutable alarm : Gc.alarm option;
}

let create ?(telemetry = Telemetry.global) () =
  { telemetry; lock = Mutex.create (); last = take_snapshot (); alarm = None }

let current : t option Atomic.t = Atomic.make None
let enabled () = Atomic.get current <> None
let installed () = Atomic.get current

(* Deltas are clamped at zero: Telemetry counters are monotone, and the
   per-domain components of [Gc.quick_stat] mean a sample taken from a
   different domain than the previous one could otherwise go backwards. *)
let sample t =
  Mutex.lock t.lock;
  let cur = take_snapshot () in
  let prev = t.last in
  t.last <- cur;
  Mutex.unlock t.lock;
  let d a b = max 0 (a - b) in
  Telemetry.add t.telemetry "gc.minor_collections"
    (d cur.minor_collections prev.minor_collections);
  Telemetry.add t.telemetry "gc.major_collections"
    (d cur.major_collections prev.major_collections);
  Telemetry.add t.telemetry "gc.compactions"
    (d cur.compactions prev.compactions);
  Telemetry.add t.telemetry "mem.allocated_bytes"
    (max 0 (int_of_float (cur.allocated_bytes -. prev.allocated_bytes)));
  Telemetry.add t.telemetry "mem.promoted_bytes"
    (max 0
       (int_of_float ((cur.promoted_words -. prev.promoted_words)
                     *. float_of_int word_bytes)));
  let s = Gc.quick_stat () in
  Telemetry.gauge t.telemetry "mem.heap_bytes"
    (float_of_int (s.Gc.heap_words * word_bytes));
  Telemetry.gauge t.telemetry "mem.top_heap_bytes"
    (float_of_int (s.Gc.top_heap_words * word_bytes))

let sample_current () =
  match Atomic.get current with None -> () | Some t -> sample t

(* End-of-major-cycle hook: drop a [gc.major] instant on the trace's
   monotonic clock so Perfetto shows collections interleaved with
   inference slices.

   The handler runs synchronously at the end of a major cycle — which
   can be in the middle of ANY allocation, including one made while the
   interrupted thread holds a mutex (the telemetry registry's intern
   lock, this monitor's own [t.lock], the trace sink's registration
   lock). So the handler must never lock: no [sample] (Telemetry is
   mutex-protected), only the lock-free {!Trace.try_instant}. The
   gc.*/mem.* counters lose nothing — they are deltas of cumulative
   [Gc.quick_stat] numbers, refreshed at every explicit sample point
   (metrics scrape, stats op, uninstall, the CLI/bench reporters).
   [in_alarm] guards against a nested cycle completing inside the
   handler's own allocations. *)
let in_alarm = Atomic.make false

let on_major () =
  if enabled () && Atomic.compare_and_set in_alarm false true then begin
    let s = Gc.quick_stat () in
    ignore
      (Trace.try_instant ~cat:"gc"
         ~args:
           [
             ("heap_bytes", Trace.Int (s.Gc.heap_words * word_bytes));
             ("major_collections", Trace.Int s.Gc.major_collections);
           ]
         "gc.major");
    Atomic.set in_alarm false
  end

let uninstall () =
  match Atomic.get current with
  | None -> None
  | Some t ->
      (match t.alarm with
      | Some a ->
          Gc.delete_alarm a;
          t.alarm <- None
      | None -> ());
      Atomic.set current None;
      sample t;
      Some t

let install t =
  ignore (uninstall ());
  Mutex.lock t.lock;
  t.last <- take_snapshot ();
  Mutex.unlock t.lock;
  Atomic.set current (Some t);
  t.alarm <- Some (Gc.create_alarm on_major)

let monitored ?telemetry f =
  (* A previously installed monitor is put back afterwards rather than
     silently dropped; [install] re-baselines its snapshot, so activity
     inside the scoped window is published exactly once (by the scoped
     monitor) and never double-counted by the restored one. *)
  let prev = installed () in
  let t = create ?telemetry () in
  install t;
  Fun.protect
    ~finally:(fun () ->
      ignore (uninstall ());
      match prev with Some p -> install p | None -> ())
    f

let alloc_span ?telemetry name f =
  if not (enabled ()) then f ()
  else begin
    let reg =
      match telemetry with Some t -> t | None -> Telemetry.global
    in
    let a0 = Gc.allocated_bytes () in
    let r = f () in
    Telemetry.observe reg name (Gc.allocated_bytes () -. a0);
    r
  end

(* --- per-domain utilization ------------------------------------------- *)

(* Latest busy-fraction snapshot per worker slot, recorded by Parallel
   after each pooled run. A snapshot (not an aggregate) so the labeled
   Prometheus series reflects the most recent run's shape. *)
let util : (int * float) list Atomic.t = Atomic.make []

let set_utilization l =
  Atomic.set util (List.sort (fun (a, _) (b, _) -> compare a b) l)

let utilization () = Atomic.get util

(* --- report ----------------------------------------------------------- *)

module Json = Telemetry.Json

let report ?cache () =
  let s = Gc.quick_stat () in
  let gc =
    Json.Obj
      [
        ("minor_collections", Json.Int s.Gc.minor_collections);
        ("major_collections", Json.Int s.Gc.major_collections);
        ("compactions", Json.Int s.Gc.compactions);
      ]
  in
  let mem =
    Json.Obj
      [
        ("heap_bytes", Json.Int (s.Gc.heap_words * word_bytes));
        ("top_heap_bytes", Json.Int (s.Gc.top_heap_words * word_bytes));
        ("allocated_bytes", Json.Float (Gc.allocated_bytes ()));
        ( "promoted_bytes",
          Json.Float (s.Gc.promoted_words *. float_of_int word_bytes) );
      ]
  in
  let domains =
    Json.List
      (List.map
         (fun (d, u) ->
           Json.Obj [ ("domain", Json.Int d); ("utilization", Json.Float u) ])
         (utilization ()))
  in
  let base =
    [ ("gc", gc); ("mem", mem); ("domains", domains) ]
  in
  match cache with
  | None -> Json.Obj base
  | Some c ->
      let st = Posterior_cache.stats c in
      let reachable = Posterior_cache.reachable_bytes c in
      let ratio =
        if reachable = 0 then 1.
        else float_of_int st.Posterior_cache.bytes /. float_of_int reachable
      in
      Json.Obj
        (base
        @ [
            ( "cache",
              Json.Obj
                [
                  ("accounted_bytes", Json.Int st.Posterior_cache.bytes);
                  ("reachable_bytes", Json.Int reachable);
                  ("accounted_per_reachable", Json.Float ratio);
                ] );
          ])

(* The labeled per-domain utilization series can't ride the generic
   dotted-name sanitizer (labels would be mangled), so it goes out
   through Trace's exposition-extra hook — registered once at module
   init. Module initialization runs whenever this module is linked,
   which it always is: the inference hot paths reference [alloc_span]. *)
let () =
  Trace.register_exposition_extra (fun buf ->
      match utilization () with
      | [] -> ()
      | l ->
          Buffer.add_string buf "# TYPE mrsl_domain_utilization gauge\n";
          List.iter
            (fun (d, u) ->
              Buffer.add_string buf
                (Printf.sprintf "mrsl_domain_utilization{domain=\"%d\"} %.6f\n"
                   d u))
            l)
