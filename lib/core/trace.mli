(** Event-level tracing: per-domain ring buffers of timestamped events,
    exported as Chrome trace-event JSON (loadable in Perfetto / Chrome
    [about:tracing]) and summarized on the command line.

    This is the event-granular companion to the aggregate {!Telemetry}
    registry: where telemetry answers "how many steals, what p99", a
    trace answers {e when} — which attribute's lattice build dominated
    learning, how Gibbs tasks interleaved across domains, when a chain's
    split-R̂ crossed the convergence threshold.

    {2 Cost model}

    Tracing is off by default and every emission helper starts with a
    single branch on the installed-sink option — the disabled cost is one
    atomic load and a conditional. When enabled, each domain writes into
    its own fixed-capacity ring buffer with no locks or allocation beyond
    the event record itself; on overflow events are dropped and counted
    (see {!dropped}), never resized.

    {2 Determinism}

    Event {e content} (names, categories, args, flow ids) is
    deterministic: flow ids derive from the same seed/node identities as
    the scheduler's RNG streams ({!task_flow_id}, {!steal_flow_id},
    {!share_flow_id}). Timestamps and the assignment of events to domain
    buffers are exempt — they reflect real scheduling. Installing a sink
    never changes inference output: instrumentation only observes. *)

(** {1 Events} *)

type arg = Int of int | Float of float | Str of string

type phase =
  | Complete of int  (** duration in ns — a Chrome ["X"] slice *)
  | Instant  (** ["i"] *)
  | Counter  (** ["C"]; args are the sampled series values *)
  | Flow_start  (** ["s"] — arrow tail *)
  | Flow_end  (** ["f"] — arrow head *)

type event = {
  name : string;
  cat : string;  (** phase bucket: [mine], [lattice], [voting], [dag],
                     [gibbs], [sched], [steal], [share], [io], … *)
  ts_ns : int;  (** monotonic {!Clock} time, relative to sink start *)
  track : int;  (** Perfetto "process": the emitting domain's id, unless
                    overridden to draw a cross-domain arrow *)
  id : int;  (** flow id ([Flow_start]/[Flow_end]) or counter series id;
                 0 when unused *)
  args : (string * arg) list;
  phase : phase;
}

(** {1 Sinks} *)

type sink
(** A set of per-domain ring buffers plus the capture's start time. *)

val create : ?capacity_per_domain:int -> unit -> sink
(** [capacity_per_domain] defaults to [65536] events. *)

val install : sink -> unit
(** Make [sink] the process-wide recording target. Emission helpers are
    no-ops while no sink is installed. *)

val uninstall : unit -> sink option
(** Stop recording; returns the sink that was installed, ready for
    export. *)

val installed : unit -> sink option
val enabled : unit -> bool

val with_sink : ?capacity_per_domain:int -> (unit -> 'a) -> 'a * sink
(** Install a fresh sink around [f] (uninstalling it afterwards, even on
    exceptions) and return [f]'s result with the captured sink. *)

(** {1 Emission} — all no-ops when no sink is installed *)

val instant : ?args:(string * arg) list -> cat:string -> string -> unit
val counter : ?id:int -> cat:string -> string -> (string * float) list -> unit

val try_instant : ?args:(string * arg) list -> cat:string -> string -> bool
(** Lock-free variant of {!instant} for signal-like contexts
    ([Gc.alarm] handlers): emits only when the calling domain's ring is
    already registered under the current sink, never taking the sink's
    registration lock — an alarm can interrupt a thread holding it (or
    any other mutex), and a locking emission path would self-deadlock.
    Returns whether the event was recorded; [false] means no sink, or
    this domain has not traced under the installed sink yet. *)

val complete :
  ?args:(string * arg) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** Times [f] on the monotonic clock and emits one [Complete] slice;
    re-raises [f]'s exceptions after emitting. When disabled this is a
    single branch and a tail call to [f]. *)

val complete_span :
  ?args:(string * arg) list -> cat:string -> start_ns:int -> string -> unit
(** Emit a [Complete] slice (named by the trailing argument) for a
    section the caller timed itself ([start_ns] from {!Clock.now_ns}). *)

val flow_start :
  ?track:int -> ?args:(string * arg) list -> cat:string -> id:int -> string ->
  unit
(** [track] overrides the emitting domain — used to attach the tail of a
    steal arrow to the victim's track even though the thief records it. *)

val flow_end :
  ?args:(string * arg) list -> cat:string -> id:int -> string -> unit

(** {1 Deterministic flow ids}

    Hierarchical ids stitched from the run seed and stable task
    identities (tuple-DAG node indices), so a task's spawn → steal →
    execute lifecycle carries the same id at any domain count. *)

val task_flow_id : seed:int -> node:int -> int
val steal_flow_id : seed:int -> node:int -> int
val share_flow_id : seed:int -> parent:int -> child:int -> int

val request_flow_id : seed:int -> req:int -> int
(** Serving-request flow id: a pure function of the engine seed and the
    daemon's per-request admission sequence number, so a request's
    admission → batch → task arrows carry one id across tracks. *)

(** {1 Inspection and export} *)

val event_count : sink -> int
(** Events currently retained across all domain buffers. *)

val dropped : sink -> int
(** Events discarded because a domain's ring buffer was full. *)

val events : sink -> event list
(** All retained events, sorted by timestamp. Call only after the traced
    workload has finished (buffers are single-writer, reader-after). *)

val to_chrome_json : sink -> Telemetry.Json.t
(** Chrome trace-event JSON object format:
    [{"traceEvents": [...], "displayTimeUnit": "ms", "dropped": n,
      "trackCount": k}] with one metadata ["process_name"] record per
    domain track ([domain-<id>]), ["X"]/["i"]/["C"]/["s"]/["f"] phase
    records, and timestamps in microseconds relative to sink start.
    Loadable directly in Perfetto ([ui.perfetto.dev]). *)

val chrome_string : sink -> string
(** [to_chrome_json] rendered compactly, newline-terminated. *)

val write_chrome : sink -> string -> unit
(** Write {!chrome_string} to a file path. *)

val prometheus_exposition : Telemetry.t -> string
(** Prometheus text-exposition (version 0.0.4) of a {!Telemetry}
    registry snapshot: counters as [mrsl_<name>_total], gauges as
    [mrsl_<name>] (plus [_max]), histograms as summaries
    ([{quantile="0.5|0.9|0.99"}], [_sum], [_count]), spans as
    [_seconds_total] / [_calls_total]. Metric names are sanitized to
    [[a-zA-Z0-9_]] (dots become underscores).

    While a sink is {!install}ed the exposition also reports trace-ring
    health — [mrsl_trace_dropped_total] (events lost to ring overflow
    across all domains), [mrsl_trace_ring_capacity], and one
    [mrsl_trace_ring_events{domain="<id>"}] gauge per domain buffer — so
    a scrape of a traced daemon shows when serving-rate tracing is
    lossy. Without a sink these series are absent. *)

val register_exposition_extra : (Buffer.t -> unit) -> unit
(** Append a renderer run at the end of every {!prometheus_exposition}
    (in registration order). For series that can't ride the generic
    sanitizer — labeled families like
    [mrsl_domain_utilization{domain="N"}], registered by {!Resource} at
    module init. Renderers must append complete exposition lines. *)

val summarize : Telemetry.Json.t -> string
(** Human-readable summary of a parsed Chrome trace produced by
    {!to_chrome_json}: top slices by total duration, per-track
    utilization, steal count and latency, counter series, and drop
    counts. A trace containing [serve]-category events (a daemon trace)
    additionally gets a serve section: batch count and request volume
    from the [serve.batch] slices, [serve.request] flow start/finish
    balance, per-phase (queue-wait / compute / flush) p50/p99/max
    rollups and outcome counts from the [serve.request.done] instants.
    Raises [Invalid_argument] when the JSON has no [traceEvents] array.
    Backs [mrsl_cli trace]. *)
