(** Resource observability: GC, allocation, memory and scheduler
    accounting — observation-only, like {!Trace} and {!Quality}.

    The paper's ensemble inference is now served by a daemon with
    request-scoped latency phases, but latency alone says nothing about
    {e resource} cost: allocation rates, GC pressure, heap growth, cache
    heap footprint, domain utilization. Those are the quantities ROADMAP
    item 2 ("compiled inference kernels … no allocation") must improve
    against a measured baseline, and the quantities a production serving
    system alarms on. This module is that baseline's source of truth.

    {2 Cost model}

    A monitor is installed process-wide (like a {!Trace} sink). Every
    hot-path hook ({!alloc_span} in [Infer_single.infer] /
    [Gibbs.chain]) starts with a single atomic load and a branch — the
    disabled cost is one conditional. When enabled, a hook reads
    [Gc.allocated_bytes] (a domain-local float, no synchronization)
    before and after the wrapped computation and records the delta in a
    reservoir histogram.

    {2 Determinism}

    Monitoring only observes: it never touches an RNG, a sampler or a
    model, so monitored runs are bit-identical to unmonitored runs (the
    test suite asserts this). GC counters are published as {e deltas}
    since the previous {!sample} — {!Telemetry} counters are monotone
    and [Gc.quick_stat] totals are process-cumulative, so each sample
    adds only what happened since the last one.

    {2 Names}

    Counters: [gc.minor_collections], [gc.major_collections],
    [gc.compactions], [mem.allocated_bytes], [mem.promoted_bytes].
    Gauges: [mem.heap_bytes], [mem.top_heap_bytes]. Histograms (fed by
    the inference hooks): [mem.alloc_per_infer_bytes],
    [mem.alloc_per_chain_bytes]. The scheduler's [sched.*] companions
    ([sched.utilization], [sched.busy_ns], [sched.idle_ns]) are
    published by {!Parallel} from its per-worker task stamps; this
    module additionally keeps the latest per-domain utilization snapshot
    for the labeled [mrsl_domain_utilization{domain="N"}] Prometheus
    series. All names are catalogued in METRICS.md. *)

type t
(** A monitor: a telemetry registry plus the last-published
    [Gc.quick_stat] snapshot (the delta baseline). *)

val create : ?telemetry:Telemetry.t -> unit -> t
(** A monitor publishing into [telemetry] (default {!Telemetry.global}).
    Creation takes the baseline snapshot but installs nothing. *)

val install : t -> unit
(** Make [t] the process-wide monitor: hot-path hooks start recording,
    and a [Gc.create_alarm] is installed that (at the end of each major
    collection on the installing domain) emits a [gc.major] instant
    into the Chrome trace on the monotonic {!Clock}, via the lock-free
    {!Trace.try_instant} — the alarm can interrupt a thread holding a
    mutex mid-allocation, so the handler never locks and in particular
    never touches the (mutex-protected) telemetry registry; counters
    refresh at explicit {!sample} points instead. Installing over an
    existing monitor replaces it. *)

val uninstall : unit -> t option
(** Stop monitoring (deletes the GC alarm, publishes a final sample);
    returns the monitor that was installed. *)

val installed : unit -> t option

val enabled : unit -> bool
(** One atomic load — the hot-path gate. *)

val monitored : ?telemetry:Telemetry.t -> (unit -> 'a) -> 'a
(** Run [f] with a fresh installed monitor, uninstalling it afterwards
    (even on exceptions). A monitor that was installed beforehand is
    re-installed — not dropped — when the scope exits; re-installation
    re-baselines its delta snapshot, so GC activity inside the scope is
    published exactly once and back-to-back {!sample}s around a
    [monitored] window stay monotone. *)

val sample : t -> unit
(** Publish deltas of [Gc.quick_stat] / [Gc.allocated_bytes] since the
    previous sample as [gc.*] / [mem.*] counters, and refresh the heap
    gauges. Thread-safe; deltas are clamped at zero so a sample can
    never violate counter monotonicity. *)

val sample_current : unit -> unit
(** {!sample} the installed monitor, if any — called by the serving
    daemon before a [/metrics] scrape or a stats op so scraped values
    are fresh even between major collections. *)

val alloc_span : ?telemetry:Telemetry.t -> string -> (unit -> 'a) -> 'a
(** [alloc_span name f] — [f ()], recording the bytes it allocated (on
    the calling domain) into histogram [name] when a monitor is
    enabled. Disabled cost: one atomic load and a tail call. *)

val set_utilization : (int * float) list -> unit
(** Record the latest per-worker busy-fraction snapshot (worker slot →
    utilization in [0, 1]), called by {!Parallel} after each pooled run.
    Kept (not aggregated) so the Prometheus exposition can emit one
    labeled [mrsl_domain_utilization{domain="N"}] series per slot. *)

val utilization : unit -> (int * float) list
(** The latest snapshot recorded by {!set_utilization}, sorted by worker
    slot; empty before any pooled run. *)

val report : ?cache:Posterior_cache.t -> unit -> Telemetry.Json.t
(** A point-in-time resources report: process-cumulative GC counts
    ([gc]), heap and allocation totals ([mem]), the latest per-domain
    utilization ([domains]), and — when [cache] is given — the
    accounted-vs-reachable byte cross-check ([cache]:
    {!Posterior_cache.stats}[.bytes] against
    {!Posterior_cache.reachable_bytes}, with their ratio). Backs the
    serving stats op's [resources] block and [mrsl resources]. *)
