(** Divergence measures between discrete distributions.

    The paper's accuracy metric is Kullback–Leibler divergence of the inferred
    distribution from the true BN posterior (Section VI-A). The additional
    measures are used by tests and the extended evaluation. All functions
    require distributions of equal size. *)

val kl : ?epsilon:float -> Dist.t -> Dist.t -> float
(** [kl p q] = Σᵢ pᵢ log(pᵢ/qᵢ), the divergence of [q] from the reference
    [p]. Without [epsilon] (the default, preserving the seed behavior):
    terms with [pᵢ = 0] contribute 0; [qᵢ = 0] with [pᵢ > 0] yields
    [infinity] (our smoothed CPDs are always positive, so this only occurs
    on hand-built inputs).

    [?epsilon] makes the divergence {e total} under support mismatch:
    both arguments are additively smoothed — every entry gains [epsilon]
    and is renormalized by [1 + n·epsilon] — before the sum, so the
    result is always finite (and still 0 when [p = q]). Online drift
    monitoring uses this form so a transiently empty support bucket can
    never push [inf]/[nan] into a telemetry gauge. Raises
    [Invalid_argument] when [epsilon <= 0]. *)

val total_variation : Dist.t -> Dist.t -> float
(** ½ Σᵢ |pᵢ − qᵢ|, in [0, 1]. *)

val hellinger : Dist.t -> Dist.t -> float
(** Hellinger distance, in [0, 1]. *)

val jensen_shannon : Dist.t -> Dist.t -> float
(** Symmetrized, bounded KL: JS(p, q) = ½KL(p‖m) + ½KL(q‖m), m = ½(p+q).
    The mixture is computed exactly per component (no renormalization or
    smoothing — the seed routed it through {!Dist.of_weights}, whose
    float-sum renormalization made [js p p] nonzero and distorted
    near-degenerate scores), so [jensen_shannon p p = 0.] {e exactly} and
    the result always lies in [[0, ln 2]]. *)
