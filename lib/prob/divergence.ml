let check p q name =
  if Dist.size p <> Dist.size q then invalid_arg (name ^ ": size mismatch")

let kl ?epsilon p q =
  check p q "Divergence.kl";
  let n = Dist.size p in
  match epsilon with
  | None ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let pi = Dist.prob p i and qi = Dist.prob q i in
        if pi > 0. then
          if qi > 0. then acc := !acc +. (pi *. log (pi /. qi))
          else acc := infinity
      done;
      !acc
  | Some eps ->
      (* Additive smoothing on both sides keeps the divergence total
         (finite) under support mismatch while preserving kl p p = 0. *)
      if not (eps > 0.) then
        invalid_arg "Divergence.kl: epsilon must be positive";
      let z = 1. +. (float_of_int n *. eps) in
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let pi = (Dist.prob p i +. eps) /. z
        and qi = (Dist.prob q i +. eps) /. z in
        acc := !acc +. (pi *. log (pi /. qi))
      done;
      !acc

let total_variation p q =
  check p q "Divergence.total_variation";
  let acc = ref 0. in
  for i = 0 to Dist.size p - 1 do
    acc := !acc +. Float.abs (Dist.prob p i -. Dist.prob q i)
  done;
  0.5 *. !acc

let hellinger p q =
  check p q "Divergence.hellinger";
  let acc = ref 0. in
  for i = 0 to Dist.size p - 1 do
    let d = sqrt (Dist.prob p i) -. sqrt (Dist.prob q i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (0.5 *. !acc)

let jensen_shannon p q =
  check p q "Divergence.jensen_shannon";
  (* The mixture is built exactly, per term — routing it through
     [Dist.of_weights] renormalized it by its own float sum, perturbing
     every component, so [js p p] came back as a small nonzero value and
     near-degenerate distributions got distorted scores that leaked into
     the Quality drift alerts. With mᵢ = (pᵢ + qᵢ)/2 computed inline,
     p = q gives mᵢ = pᵢ exactly and every log term is log 1 = 0. *)
  let n = Dist.size p in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let pi = Dist.prob p i and qi = Dist.prob q i in
    let mi = 0.5 *. (pi +. qi) in
    if pi > 0. then acc := !acc +. (0.5 *. pi *. log (pi /. mi));
    if qi > 0. then acc := !acc +. (0.5 *. qi *. log (qi /. mi))
  done;
  (* Clamp float jitter to the theoretical range [0, ln 2]. *)
  Float.min (log 2.) (Float.max 0. !acc)
