(** Minimal CSV reader/writer for relation instances.

    Hand-rolled (the container has no CSV package): comma-separated, first
    row is the header, ["?"] (or an empty cell) marks a missing value,
    double-quoted fields with doubled inner quotes are supported. A UTF-8
    BOM before the header and CRLF line endings are tolerated by both
    readers.

    Two read modes:
    - {e strict} (default; {!read_string}, {!read_file}): the first
      malformed row aborts the load with [Failure];
    - {e lenient} ({!read_string_lenient}, {!read_file_lenient}): malformed
      rows are skipped and reported as {!row_error}s naming the file,
      1-based physical line, and cause — the mode a service ingesting
      autonomous sources should use. *)

val parse_line : string -> string list
(** Split one CSV record into fields. Raises [Failure] on an unterminated
    quoted field. *)

val escape_field : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

(** {1 Row errors (lenient mode)} *)

type error_cause =
  | Unterminated_quote
  | Ragged_row of { got : int; expected : int }
  | Unknown_value of { field : string; attribute : string }
      (** only with an explicit schema; inferred schemas admit every
          value seen in a well-shaped row *)

type row_error = { file : string; line : int; cause : error_cause }
(** [line] is the 1-based physical line in the document (blank lines
    count); [file] is the source path, or ["<string>"] for in-memory
    documents. *)

val cause_to_string : error_cause -> string
val row_error_to_string : row_error -> string
(** ["file:line: cause"]. *)

(** {1 Reading} *)

val read_string : ?schema:Schema.t -> string -> Instance.t
(** Parse a whole CSV document (strict mode). Without [schema], the domain
    of each column is the set of distinct non-missing values in file
    order. With [schema], column count and value labels are validated
    against it. Raises [Failure] on ragged rows, an empty document, or
    (with [schema]) unknown labels. *)

val read_string_lenient : ?schema:Schema.t -> ?file:string -> string ->
  Instance.t * row_error list
(** Like {!read_string}, but rows that fail to parse (unterminated quote,
    ragged) or decode (unknown value under an explicit schema) are dropped
    and reported, in line order. Schema inference uses only the
    well-shaped rows. A missing or column-count-mismatched header is still
    fatal ([Failure]) — there is no relation to return without one. *)

val read_file : ?schema:Schema.t -> string -> Instance.t

val read_file_lenient : ?schema:Schema.t -> string ->
  Instance.t * row_error list
(** Lenient {!read_file}; reported errors carry the file path. *)

(** {1 Writing} *)

val write_string : Instance.t -> string
(** Render an instance back to CSV, using ["?"] for missing values. *)

val write_file : string -> Instance.t -> unit
