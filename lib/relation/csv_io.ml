let missing_marker = "?"

exception Unterminated

let parse_line_exn line =
  let n = String.length line in
  let buf = Buffer.create 32 in
  let fields = ref [] in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* Two-state scanner: inside/outside a quoted field. *)
  let rec outside i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          outside (i + 1)
      | '"' -> inside (i + 1)
      | c ->
          Buffer.add_char buf c;
          outside (i + 1)
  and inside i =
    if i >= n then raise Unterminated
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          inside (i + 2)
      | '"' -> outside (i + 1)
      | c ->
          Buffer.add_char buf c;
          inside (i + 1)
  in
  outside 0;
  List.rev !fields

let parse_line line =
  try parse_line_exn line
  with Unterminated -> failwith "Csv_io.parse_line: unterminated quoted field"

let escape_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let strip_bom text =
  if String.length text >= 3 && String.sub text 0 3 = "\xef\xbb\xbf" then
    String.sub text 3 (String.length text - 3)
  else text

(* Non-blank lines with their 1-based physical line numbers; a UTF-8 BOM
   before the header and trailing CRs (CRLF documents) are stripped. *)
let numbered_lines text =
  String.split_on_char '\n' (strip_bom text)
  |> List.mapi (fun i l ->
         let l =
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l
         in
         (i + 1, l))
  |> List.filter (fun (_, l) -> String.trim l <> "")

let is_missing field = field = missing_marker || String.trim field = ""

let infer_schema header rows =
  let ncols = List.length header in
  let domains = Array.make ncols [] in
  List.iter
    (fun row ->
      List.iteri
        (fun i field ->
          if (not (is_missing field)) && not (List.mem field domains.(i)) then
            domains.(i) <- domains.(i) @ [ field ])
        row)
    rows;
  let attrs =
    List.mapi
      (fun i name ->
        let dom = if domains.(i) = [] then [ "v0" ] else domains.(i) in
        Attribute.make name dom)
      header
  in
  Schema.make attrs

(* --- error reporting -------------------------------------------------- *)

type error_cause =
  | Unterminated_quote
  | Ragged_row of { got : int; expected : int }
  | Unknown_value of { field : string; attribute : string }

type row_error = { file : string; line : int; cause : error_cause }

let cause_to_string = function
  | Unterminated_quote -> "unterminated quoted field"
  | Ragged_row { got; expected } ->
      Printf.sprintf "ragged row: %d fields, expected %d" got expected
  | Unknown_value { field; attribute } ->
      Printf.sprintf "unknown value %S for attribute %s" field attribute

let row_error_to_string e =
  Printf.sprintf "%s:%d: %s" e.file e.line (cause_to_string e.cause)

(* --- reading ---------------------------------------------------------- *)

(* Decode one well-shaped row against the schema. *)
let decode_row schema row =
  let exception Bad of error_cause in
  match
    Array.of_list
      (List.mapi
         (fun i field ->
           if is_missing field then None
           else
             let attr = Schema.attribute schema i in
             match Attribute.value_index attr field with
             | v -> Some v
             | exception Not_found ->
                 raise_notrace
                   (Bad
                      (Unknown_value
                         { field; attribute = Attribute.name attr })))
         row)
  with
  | tup -> Ok tup
  | exception Bad cause -> Error cause

let header_of ?schema text =
  match numbered_lines text with
  | [] -> failwith "Csv_io.read_string: empty document"
  | (_, header_line) :: data ->
      let header = parse_line header_line in
      let ncols = List.length header in
      (match schema with
      | Some s when Schema.arity s <> ncols ->
          failwith "Csv_io.read_string: column count does not match schema"
      | _ -> ());
      (header, ncols, data)

let read_string ?schema text =
  let header, ncols, data = header_of ?schema text in
  let rows =
    List.map
      (fun (line, text) ->
        let row = parse_line text in
        if List.length row <> ncols then
          failwith
            (Printf.sprintf
               "Csv_io.read_string: row %d has %d fields, expected %d" line
               (List.length row) ncols);
        (line, row))
      data
  in
  let schema =
    match schema with
    | Some s -> s
    | None -> infer_schema header (List.map snd rows)
  in
  let decode (_line, row) =
    match decode_row schema row with
    | Ok tup -> tup
    | Error cause -> failwith ("Csv_io.read_string: " ^ cause_to_string cause)
  in
  Instance.make schema (List.map decode rows)

let read_string_lenient ?schema ?(file = "<string>") text =
  let header, ncols, data = header_of ?schema text in
  let errors = ref [] in
  let err line cause = errors := { file; line; cause } :: !errors in
  let parsed =
    List.filter_map
      (fun (line, text) ->
        match parse_line_exn text with
        | exception Unterminated ->
            err line Unterminated_quote;
            None
        | row ->
            let got = List.length row in
            if got <> ncols then begin
              err line (Ragged_row { got; expected = ncols });
              None
            end
            else Some (line, row))
      data
  in
  let schema =
    match schema with
    | Some s -> s
    | None -> infer_schema header (List.map snd parsed)
  in
  let tuples =
    List.filter_map
      (fun (line, row) ->
        match decode_row schema row with
        | Ok tup -> Some tup
        | Error cause ->
            err line cause;
            None)
      parsed
  in
  (* Parse errors and decode errors are collected in two passes; merge
     them back into document order. *)
  let errors =
    List.stable_sort
      (fun a b -> compare a.line b.line)
      (List.rev !errors)
  in
  (Instance.make schema tuples, errors)

let with_file path f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> f (In_channel.input_all ic))

let read_file ?schema path = with_file path (read_string ?schema)

let read_file_lenient ?schema path =
  with_file path (read_string_lenient ?schema ~file:path)

(* --- writing ---------------------------------------------------------- *)

let write_string inst =
  let schema = Instance.schema inst in
  let buf = Buffer.create 1024 in
  let row fields =
    Buffer.add_string buf (String.concat "," (List.map escape_field fields));
    Buffer.add_char buf '\n'
  in
  row
    (Array.to_list
       (Array.map Attribute.name (Schema.attributes schema)));
  Array.iter
    (fun tup ->
      row
        (List.mapi
           (fun i v ->
             match v with
             | None -> missing_marker
             | Some x -> Attribute.value_label (Schema.attribute schema i) x)
           (Array.to_list tup)))
    (Instance.tuples inst);
  Buffer.contents buf

let write_file path inst =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write_string inst))
