let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Mrsl.Telemetry.observe Mrsl.Telemetry.global "experiments.timed_seconds" dt;
  (r, dt)

type prepared = {
  entry : Bayesnet.Catalog.entry;
  network : Bayesnet.Network.t;
  train : Relation.Instance.t;
  test_points : int array array;
}

let prepare rng (scale : Scale.t) (entry : Bayesnet.Catalog.entry) ~train_size
    =
  if train_size < 10 then invalid_arg "Framework.prepare: train_size too small";
  let total = int_of_float (Float.ceil (float_of_int train_size /. 0.9)) in
  List.concat_map
    (fun _ ->
      let inst_rng = Prob.Rng.split rng in
      let network =
        Bayesnet.Network.generate inst_rng ~alpha:scale.alpha entry.topology
      in
      let data = Bayesnet.Network.sample_instance inst_rng network total in
      List.init scale.splits (fun _ ->
          let split_rng = Prob.Rng.split inst_rng in
          let train, test =
            Relation.Instance.split split_rng ~train_fraction:0.9 data
          in
          {
            entry;
            network;
            train;
            test_points = Relation.Instance.complete_part test;
          }))
    (List.init scale.instances Fun.id)

let learn_timed prepared ~support =
  let params =
    { Mrsl.Model.default_params with support_threshold = support }
  in
  time (fun () -> Mrsl.Model.learn ~params prepared.train)

type accuracy = { kl : float; top1 : float; count : int }

let merge accs =
  let count = List.fold_left (fun n a -> n + a.count) 0 accs in
  if count = 0 then { kl = 0.; top1 = 0.; count = 0 }
  else
    let weighted f =
      List.fold_left (fun s a -> s +. (f a *. float_of_int a.count)) 0. accs
      /. float_of_int count
    in
    { kl = weighted (fun a -> a.kl); top1 = weighted (fun a -> a.top1); count }

(* Mask one uniformly chosen attribute of each test point; cap the number
   of evaluation tuples. *)
let single_tasks rng prepared ~max_tuples =
  let arity =
    Bayesnet.Topology.size (Bayesnet.Network.topology prepared.network)
  in
  let points = prepared.test_points in
  let n = min max_tuples (Array.length points) in
  List.init n (fun i ->
      let a = Prob.Rng.int rng arity in
      let tup = Relation.Tuple.of_point points.(i) in
      tup.(a) <- None;
      (tup, a))

let eval_single rng prepared model ~methods ~max_tuples =
  let tasks = single_tasks rng prepared ~max_tuples in
  let per_method =
    List.map
      (fun m ->
        let kl = ref 0. and top1 = ref 0 and count = ref 0 in
        List.iter
          (fun (tup, a) ->
            let truth =
              Bayesnet.Network.posterior_single prepared.network tup a
            in
            let est = Mrsl.Infer_single.infer ~method_:m model tup a in
            kl := !kl +. Prob.Divergence.kl truth est;
            if Prob.Dist.mode truth = Prob.Dist.mode est then incr top1;
            incr count)
          tasks;
        let c = float_of_int (max 1 !count) in
        ( m,
          { kl = !kl /. c; top1 = float_of_int !top1 /. c; count = !count } ))
      methods
  in
  per_method

let single_inference_time rng prepared model ~batch =
  let arity =
    Bayesnet.Topology.size (Bayesnet.Network.topology prepared.network)
  in
  let points = prepared.test_points in
  let n_points = Array.length points in
  if n_points = 0 then invalid_arg "Framework.single_inference_time: no test points";
  let tasks =
    List.init batch (fun i ->
        let a = Prob.Rng.int rng arity in
        let tup = Relation.Tuple.of_point points.(i mod n_points) in
        tup.(a) <- None;
        (tup, a))
  in
  let (), seconds =
    time (fun () ->
        List.iter
          (fun (tup, a) -> ignore (Mrsl.Infer_single.infer model tup a))
          tasks)
  in
  seconds

let eval_joint rng prepared model ~missing ~samples ~burn_in ~max_tuples =
  let arity =
    Bayesnet.Topology.size (Bayesnet.Network.topology prepared.network)
  in
  if missing < 1 || missing >= arity then
    invalid_arg "Framework.eval_joint: missing count out of range";
  let points = prepared.test_points in
  let n = min max_tuples (Array.length points) in
  let sampler = Mrsl.Gibbs.sampler model in
  let config = { Mrsl.Gibbs.burn_in; samples } in
  let kl = ref 0. and top1 = ref 0 and count = ref 0 in
  for i = 0 to n - 1 do
    let tup = Relation.Tuple.of_point points.(i) in
    let blanks = Prob.Rng.sample_without_replacement rng missing arity in
    List.iter (fun a -> tup.(a) <- None) blanks;
    let _, truth = Bayesnet.Network.posterior_joint prepared.network tup in
    let est = Mrsl.Gibbs.run ~config rng sampler tup in
    kl := !kl +. Prob.Divergence.kl truth est.joint;
    if Prob.Dist.mode truth = Prob.Dist.mode est.joint then incr top1;
    incr count
  done;
  let c = float_of_int (max 1 !count) in
  { kl = !kl /. c; top1 = float_of_int !top1 /. c; count = !count }

let make_workload rng prepared ~size =
  let arity =
    Bayesnet.Topology.size (Bayesnet.Network.topology prepared.network)
  in
  let seen = Relation.Tuple.Table.create (size * 2) in
  let out = ref [] in
  let made = ref 0 in
  let next_point =
    let i = ref 0 in
    fun () ->
      if !i < Array.length prepared.test_points then begin
        let p = prepared.test_points.(!i) in
        incr i;
        p
      end
      else Bayesnet.Network.sample_point rng prepared.network
  in
  let attempts = ref 0 in
  let max_attempts = (size * 50) + 1000 in
  while !made < size && !attempts < max_attempts do
    incr attempts;
    let p = next_point () in
    let missing = 1 + Prob.Rng.int rng (arity - 1) in
    let tup = Relation.Tuple.of_point p in
    let blanks = Prob.Rng.sample_without_replacement rng missing arity in
    List.iter (fun a -> tup.(a) <- None) blanks;
    if not (Relation.Tuple.Table.mem seen tup) then begin
      Relation.Tuple.Table.replace seen tup ();
      out := tup :: !out;
      incr made
    end
  done;
  List.rev !out

let workload_stats ?(memoize = false) rng model ~strategy ~samples ~burn_in
    workload =
  let sampler = Mrsl.Gibbs.sampler ~memoize model in
  let config = { Mrsl.Gibbs.burn_in; samples } in
  let result = Mrsl.Workload.run ~config ~strategy rng sampler workload in
  result.stats

let parallel_workload_stats ?(memoize = true) ?telemetry ~domains ~seed model
    ~samples ~burn_in workload =
  let config = { Mrsl.Gibbs.burn_in; samples } in
  let result =
    Mrsl.Parallel.run ~config ~strategy:Mrsl.Workload.Tuple_dag ~memoize
      ~domains ?telemetry ~seed model workload
  in
  result.stats

(* The seed's static fork/join: subsumption-aware partition into [domains]
   chunks, each chunk run as an independent tuple-DAG workload (no
   cross-chunk sharing). Kept as the benchmark reference the work-stealing
   scheduler is measured against; chunks run back-to-back here, so
   [wall_seconds] is total work — the fair single-core comparison. *)
let static_partition_stats ?(memoize = true) ~domains ~seed model ~samples
    ~burn_in workload =
  let config = { Mrsl.Gibbs.burn_in; samples } in
  let parts = Mrsl.Parallel.partition domains workload in
  let t0 = Unix.gettimeofday () in
  let merged =
    List.mapi
      (fun index part ->
        let sampler = Mrsl.Gibbs.sampler ~memoize model in
        let rng = Prob.Rng.create (seed + (31 * index)) in
        Mrsl.Workload.run ~config ~strategy:Mrsl.Workload.Tuple_dag rng
          sampler part)
      parts
  in
  let sum f =
    List.fold_left
      (fun acc (r : Mrsl.Workload.result) -> acc + f r.stats)
      0 merged
  in
  {
    Mrsl.Workload.sweeps = sum (fun s -> s.Mrsl.Workload.sweeps);
    recorded = sum (fun s -> s.Mrsl.Workload.recorded);
    shared = sum (fun s -> s.Mrsl.Workload.shared);
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let joint_agreement (a : Mrsl.Workload.result) (b : Mrsl.Workload.result) =
  let table = Relation.Tuple.Table.create 64 in
  List.iter
    (fun (tup, est) -> Relation.Tuple.Table.replace table tup est)
    a.estimates;
  let total = ref 0. and n = ref 0 in
  List.iter
    (fun (tup, (est_b : Mrsl.Gibbs.estimate)) ->
      match Relation.Tuple.Table.find_opt table tup with
      | None -> invalid_arg "Framework.joint_agreement: workloads differ"
      | Some (est_a : Mrsl.Gibbs.estimate) ->
          total := !total +. Prob.Divergence.total_variation est_a.joint est_b.joint;
          incr n)
    b.estimates;
  if !n = 0 then 0. else !total /. float_of_int !n
