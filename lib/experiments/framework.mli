(** The experimental framework of Section VI-A.

    For a catalog topology: generate random network instances, forward-
    sample a dataset, split 90/10 into train/test, mask test values, learn
    the MRSL model on the training set, and score inferred distributions
    against the *exact* posterior of the generating network (KL divergence
    and top-1 agreement). Results are averaged over instances × splits per
    the scale preset. *)

val time : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds; also recorded into the
    [experiments.timed_seconds] histogram of {!Mrsl.Telemetry.global}. *)

type prepared = {
  entry : Bayesnet.Catalog.entry;
  network : Bayesnet.Network.t;
  train : Relation.Instance.t;
  test_points : int array array;
}
(** One (instance, split) repetition: the generating network, the training
    relation (complete), and the held-out complete test points (masked on
    demand by the evaluation functions). *)

val prepare : Prob.Rng.t -> Scale.t -> Bayesnet.Catalog.entry ->
  train_size:int -> prepared list
(** All instance × split repetitions for one topology, with ~[train_size]
    training points each (the 90% share of the generated dataset). *)

val learn_timed : prepared -> support:float -> Mrsl.Model.t * float
(** Learn with the given support threshold; seconds of wall time —
    Fig 4's y-axis. *)

type accuracy = { kl : float; top1 : float; count : int }
(** Mean KL divergence (truth ‖ estimate), fraction of correct top-1
    guesses, number of test tuples scored. *)

val merge : accuracy list -> accuracy
(** Pool accuracies weighted by their tuple counts. *)

val eval_single : Prob.Rng.t -> prepared -> Mrsl.Model.t ->
  methods:Mrsl.Voting.method_ list -> max_tuples:int ->
  (Mrsl.Voting.method_ * accuracy) list
(** Single-attribute inference accuracy: each test point has one uniformly
    chosen attribute masked; every voting method scores the same masked
    tuples against the exact BN posterior. *)

val single_inference_time : Prob.Rng.t -> prepared -> Mrsl.Model.t ->
  batch:int -> float
(** Wall seconds to infer one masked attribute for a batch of [batch] test
    tuples (test points recycled if fewer) — Fig 9's y-axis. *)

val eval_joint : Prob.Rng.t -> prepared -> Mrsl.Model.t -> missing:int ->
  samples:int -> burn_in:int -> max_tuples:int -> accuracy
(** Multi-attribute (Gibbs) inference accuracy: mask [missing] attributes
    per test tuple, estimate the joint by tuple-at-a-time sampling, and
    compare to the exact joint posterior. Top-1 is agreement on the modal
    joint completion. *)

val make_workload : Prob.Rng.t -> prepared -> size:int ->
  Relation.Tuple.t list
(** [size] *distinct* incomplete tuples with 1 … arity−1 missing values,
    built from test points (drawing fresh network samples if the test set
    is too small). *)

val workload_stats : ?memoize:bool -> Prob.Rng.t -> Mrsl.Model.t ->
  strategy:Mrsl.Workload.strategy -> samples:int -> burn_in:int ->
  Relation.Tuple.t list -> Mrsl.Workload.stats
(** Run a workload under a strategy and report its cost counters (Fig 11).
    [memoize] defaults to [false] here: Fig 11 measures the paper's cost
    model, where wall time is proportional to sampled points. *)

val parallel_workload_stats : ?memoize:bool -> ?telemetry:Mrsl.Telemetry.t ->
  domains:int -> seed:int -> Mrsl.Model.t -> samples:int -> burn_in:int ->
  Relation.Tuple.t list -> Mrsl.Workload.stats
(** Tuple-DAG workload cost under the work-stealing scheduler at a given
    domain count ({!Mrsl.Parallel.run}); [memoize] defaults to [true] —
    this measures the system as deployed, not the paper's cost model. *)

val static_partition_stats : ?memoize:bool -> domains:int -> seed:int ->
  Mrsl.Model.t -> samples:int -> burn_in:int -> Relation.Tuple.t list ->
  Mrsl.Workload.stats
(** Cost of the seed's static fork/join at the same domain count: the
    subsumption-aware partition with chunk-local tuple-DAG runs and no
    cross-chunk sharing, executed back-to-back (so [wall_seconds] is
    total work). The benchmark baseline for the scheduler's speedup. *)

val joint_agreement : Mrsl.Workload.result -> Mrsl.Workload.result -> float
(** Mean total-variation distance between two strategies' estimates of the
    same workload (the paper's tuple-DAG vs tuple-at-a-time accuracy-parity
    check). Requires equal workloads. *)
