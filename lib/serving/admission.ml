type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutex : Mutex.t;
  telemetry : Mrsl.Telemetry.t;
}

let create ?(telemetry = Mrsl.Telemetry.global) ~capacity () =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; q = Queue.create (); mutex = Mutex.create (); telemetry }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let gauge_depth t = Mrsl.Telemetry.gauge t.telemetry "serve.queue_depth"

(* The gauge is published from inside the locked section, with the depth
   read under the same lock that mutated it. Publishing after unlock (as
   an earlier version did, re-reading [length t]) lets two mutations
   interleave so the gauge keeps a stale depth between batches. *)
let publish_depth t = gauge_depth t (float_of_int (Queue.length t.q))

let length t = locked t (fun () -> Queue.length t.q)
let occupancy t = float_of_int (length t) /. float_of_int t.capacity

let try_add t x =
  let accepted =
    locked t (fun () ->
        let ok =
          if Queue.length t.q >= t.capacity then false
          else begin
            Queue.add x t.q;
            true
          end
        in
        publish_depth t;
        ok)
  in
  if not accepted then Mrsl.Telemetry.incr t.telemetry "serve.overloaded";
  accepted

let drain ~max t =
  if max < 0 then invalid_arg "Admission.drain: max must be >= 0";
  locked t (fun () ->
      let out = ref [] in
      let n = ref 0 in
      while !n < max && not (Queue.is_empty t.q) do
        out := Queue.pop t.q :: !out;
        incr n
      done;
      publish_depth t;
      List.rev !out)
