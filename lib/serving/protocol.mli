(** Wire protocol of the [mrsl serve] daemon: line-delimited JSON.

    Every request and every response is one compact JSON object on one
    line ([\n]-terminated; string escapes keep payloads newline-free).
    Requests carry an optional caller-chosen ["id"] that the matching
    response echoes verbatim, so a pipelining client can correlate
    responses with requests without counting lines.

    {2 Requests}

    {v
    {"id": 7, "op": "infer", "tuple": ["v1", null, "v3"]}
    {"id": 8, "op": "infer", "tuple": [null, "v2"], "deadline_ms": 250}
    {"op": "ping"} | {"op": "stats"} | {"op": "shutdown"}
    {"op": "reload"} | {"op": "reload", "path": "model.mrsl"}
    v}

    [deadline_ms] is an optional per-request latency budget counted
    from admission; a request still queued when its budget expires is
    shed with [serve.deadline_exceeded] instead of being computed.

    [tuple] entries are attribute value {e labels} in schema order;
    [null] (or the CSV missing marker ["?"]) marks a missing value.
    Label decoding happens in {!Engine} against the loaded model's
    schema — the protocol layer is schema-free.

    A connection may also open with an HTTP request line
    ([GET /metrics]); {!Server} answers it with the Prometheus text
    exposition of its telemetry registry and closes. This module only
    recognizes the prefix ({!is_http_get}).

    {2 Responses}

    Success: [{"id": …, "ok": true, "kind": …, …}] — see {!Engine} for
    the per-op payloads. Failure: [{"id": …, "ok": false, "error":
    {"class": …, "code": …, "message": …, "context": {…}}}] carrying a
    structured {!Mrsl.Error.t}; a malformed request yields an error
    response, never a closed connection or a crash. *)

type endpoint = Unix_socket of string | Tcp of string * int
(** Where a server listens / a client connects. *)

val endpoint_to_string : endpoint -> string

type op =
  | Ping
  | Stats
  | Reload of string option  (** [None] = reload the current model path *)
  | Shutdown
  | Infer of string option array
      (** value labels in schema order; [None] = missing *)

type request = {
  id : Mrsl.Telemetry.Json.t option;
  deadline_ms : int option;
      (** client-supplied latency budget, milliseconds from admission;
          [None] = the server's default budget applies *)
  op : op;
}

val req :
  ?id:Mrsl.Telemetry.Json.t -> ?deadline_ms:int -> op -> request
(** Plain constructor, so adding request metadata never churns every
    call site again. *)

val op_name : op -> string
(** The wire name of an op ([ping], [stats], [reload], [shutdown],
    [infer]) — the ["op"] field value; used by the access log. *)

val parse_request : string -> (request, Mrsl.Error.t) result
(** Parse one request line. Malformed JSON comes back as
    [Input/protocol.parse]; a structurally valid object with an unknown
    or missing ["op"], a malformed ["tuple"], or a negative or
    non-integer ["deadline_ms"], as [Input/protocol.bad_request]. When
    the broken object still carried an ["id"], it is preserved in the
    error's context under ["id"] (as compact JSON) so the server can
    echo it. *)

val request_to_line : request -> string
(** Encode a request as one newline-terminated line (the client side). *)

val ok_line :
  ?id:Mrsl.Telemetry.Json.t ->
  kind:string ->
  (string * Mrsl.Telemetry.Json.t) list ->
  string
(** [{"id": …, "ok": true, "kind": kind, …fields}] plus trailing
    newline. *)

val error_line : ?id:Mrsl.Telemetry.Json.t -> Mrsl.Error.t -> string
(** [{"id": …, "ok": false, "error": {…}}] plus trailing newline. *)

val is_http_get : string -> bool
(** Whether a first line looks like an HTTP GET request line. *)

val http_metrics_response : string -> string
(** Wrap a Prometheus exposition body in a minimal [HTTP/1.0 200]
    response. *)

val http_not_found_response : string
(** Minimal [HTTP/1.0 404] response for non-[/metrics] GET paths. *)

(** Incremental line framing with an oversize bound.

    Bytes arrive from the socket in arbitrary chunks; {!Framing.feed}
    reassembles newline-terminated frames (CRLF tolerated) and rejects
    any frame that exceeds [max_frame] before its newline arrives — the
    caller answers with [protocol.oversized] and drops the connection
    rather than buffering without bound. *)
module Framing : sig
  type t

  val default_max_frame : int
  (** 1 MiB. *)

  val create : ?max_frame:int -> unit -> t

  val feed : t -> string -> (string list, Mrsl.Error.t) result
  (** Append a chunk; return the newly completed frames, in order,
      without their line terminators. [Error Input/protocol.oversized]
      once the frame under assembly exceeds [max_frame]; the framing
      then stays poisoned (every later feed errors) — close the
      connection. *)

  val pending : t -> int
  (** Bytes of the incomplete frame under assembly — nonzero at EOF
      means the peer truncated a frame mid-line. *)
end
