let src = Logs.Src.create "mrsl.serve" ~doc:"mrsl serving daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  endpoint : Protocol.endpoint;
  batch_max : int;
  queue_capacity : int;
  max_frame : int;
  tick : float;
  max_conns : int;
  idle_timeout : float;
  out_buf_max : int;
  out_buf_total : int;
  default_deadline : float;
  shed_watermark : float;
  access_log : out_channel option;
  slow_ms : float;
  log_sample : float;
}

(* Splitmix site of the access-log sampling draw — disjoint from the
   client's backoff-jitter site (32 in client.ml) so enabling the log
   never perturbs any other deterministic stream. *)
let access_log_site = 33

(* [Unix.select] represents each fd set as a bit array of FD_SETSIZE
   slots (1024 on every platform we target); passing any fd >= that
   raises EINVAL — which, uncaught, would kill the daemon under exactly
   the accept flood it is meant to survive. So admission refuses any
   descriptor select cannot represent, and the default connection cap
   sits under the limit to leave room for the listener, stdio, and
   whatever the engine holds open. On Unix a [Unix.file_descr] is the
   raw integer, so the check can read it directly. *)
let fd_setsize = 1024

let selectable fd =
  match Sys.os_type with
  | "Unix" | "Cygwin" -> (Obj.magic fd : int) < fd_setsize
  | _ -> true

let default_config endpoint =
  {
    endpoint;
    batch_max = 64;
    queue_capacity = 1024;
    max_frame = Protocol.Framing.default_max_frame;
    tick = 0.05;
    max_conns = 1000;
    idle_timeout = 30.;
    out_buf_max = 4 * 1024 * 1024;
    out_buf_total = 64 * 1024 * 1024;
    default_deadline = 30.;
    shed_watermark = 0.75;
    access_log = None;
    slow_ms = 100.;
    log_sample = 1.0;
  }

type conn = {
  fd : Unix.file_descr;
  id : int;  (** process-unique — the fault-injection key base *)
  framing : Protocol.Framing.t;
  out : Buffer.t;
  mutable http : bool;  (** answered as HTTP — ignore further input *)
  mutable close_after_flush : bool;
  mutable last_frame : float;
      (** monotonic time of the last {e completed} frame (accept time
          before any) — byte-dripping slow-loris input does not advance
          it, so the idle reaper still fires *)
  mutable inflight : int;  (** admitted, not yet answered *)
  mutable seq : int;  (** per-connection fault-injection event counter *)
}

(* The request-scoped observability context rides on the queue item:
   admission stamps [enqueued_at], draining stamps [drained_at], the
   engine's answer stamps [answered_at], and the post-flush finalizer
   turns the three deltas into the phase histograms, the trace instant,
   and the access-log line. All stamps are monotonic-clock. *)
type item = {
  conn : conn;
  req : Protocol.request;
  seq : int;  (** daemon-wide admission sequence number (1-based) *)
  flow : int;  (** deterministic serve-request trace-flow id *)
  enqueued_at : float;  (** monotonic *)
  deadline : float;  (** monotonic absolute; [infinity] = no budget *)
  mutable drained_at : float;
  mutable answered_at : float;
  mutable outcome : Engine.outcome;
}

let overloaded_error =
  Mrsl.Error.make Mrsl.Error.Scheduler ~code:"serve.overloaded"
    "server overloaded — request queue is full, retry later"

let shutting_down_error =
  Mrsl.Error.make Mrsl.Error.Scheduler ~code:"serve.shutting_down"
    "server is shutting down"

let truncated_error =
  Mrsl.Error.make Mrsl.Error.Input ~code:"protocol.truncated"
    "connection closed mid-frame"

let deadline_error =
  Mrsl.Error.make Mrsl.Error.Scheduler ~code:"serve.deadline_exceeded"
    "deadline expired while the request was queued — shed without computing; \
     retry with a larger budget"

let conn_rejected_error =
  Mrsl.Error.make Mrsl.Error.Scheduler ~code:"serve.conn_rejected"
    "server at its connection cap — connection refused, retry later"

(* A peer that disappears between select and write raises SIGPIPE on the
   write; the default disposition kills the whole daemon. Transport code
   owns this guard (it used to live in the CLI, where every new
   entrypoint had to remember it). *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" | "Cygwin" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ()

(* Deterministic per-event fault-injection key: connection identity
   folded with a per-connection event counter, so a given (seed, rate)
   always tears/stalls/drops the same events of the same connections. *)
let inj_key conn =
  let k = (conn.id * 8191) + conn.seq in
  conn.seq <- conn.seq + 1;
  k

let bind_listener endpoint =
  let fd =
    match endpoint with
    | Protocol.Unix_socket path ->
        (* A dead server leaves its socket file behind; a live one holds
           the listen — refuse to steal it. *)
        (match (Unix.lstat path).st_kind with
        | Unix.S_SOCK -> (
            let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            match Unix.connect probe (Unix.ADDR_UNIX path) with
            | () ->
                Unix.close probe;
                failwith
                  (Printf.sprintf "another server is listening on %s" path)
            | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
              ->
                (* Nobody holds the listen (or the file vanished under
                   us): the socket is a dead server's leftover. *)
                (try Unix.close probe with Unix.Unix_error _ -> ());
                (try Unix.unlink path
                 with Unix.Unix_error (Unix.ENOENT, _, _) -> ())
            | exception Unix.Unix_error (err, _, _) ->
                (* A live server can answer the probe with a transient
                   error (EAGAIN on a full backlog, EINTR, ...) —
                   unlinking here would steal its traffic. Refuse to
                   start instead. *)
                (try Unix.close probe with Unix.Unix_error _ -> ());
                failwith
                  (Printf.sprintf
                     "probing %s failed (%s) — another server may be \
                      listening; remove the socket manually if it is stale"
                     path (Unix.error_message err)))
        | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Protocol.Tcp (host, port) ->
        let addr =
          try (Unix.gethostbyname host).h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        fd
  in
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let http_path line =
  (* "GET /metrics HTTP/1.1" -> "/metrics" *)
  match String.split_on_char ' ' line with
  | _ :: path :: _ -> path
  | _ -> "/"

let run ?stop ?hup ?on_ready config engine =
  ignore_sigpipe ();
  let telemetry = Engine.telemetry engine in
  (* Resource monitor for the daemon's lifetime: GC deltas land in the
     registry (alarm-driven, refreshed on scrape/stats), so /metrics
     carries the mrsl_gc_* / mrsl_mem_* families. Observation only —
     client verify asserts served posteriors stay bit-identical to an
     unmonitored local reference. *)
  let monitor = Mrsl.Resource.create ~telemetry () in
  Mrsl.Resource.install monitor;
  Fun.protect ~finally:(fun () -> ignore (Mrsl.Resource.uninstall ()))
  @@ fun () ->
  let eng_seed = (Engine.config engine).Engine.seed in
  let req_seq = ref 0 in
  let queue =
    Admission.create ~telemetry ~capacity:config.queue_capacity ()
  in
  let listener = bind_listener config.endpoint in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 32 in
  let conn_ids = ref 0 in
  let stopping = ref false in
  (* Graceful-drain bound: a peer that stops reading must not be able to
     wedge shutdown behind its unflushable response buffer. *)
  let drain_deadline = ref infinity in
  let begin_stopping () =
    if not !stopping then begin
      stopping := true;
      drain_deadline := Mrsl.Clock.now () +. 5.0
    end
  in
  let closed = ref [] in
  let close_conn conn =
    if Hashtbl.mem conns conn.fd then begin
      Hashtbl.remove conns conn.fd;
      closed := conn.fd :: !closed;
      try Unix.close conn.fd with Unix.Unix_error _ -> ()
    end
  in
  let send conn line = Buffer.add_string conn.out line in
  (* Liveness must be the same record, not the same fd: the OS recycles
     descriptor numbers, so a queued item whose connection died can
     alias a fresh connection through [Hashtbl.mem] alone — and deliver
     the dead peer's responses to the new one. *)
  let conn_live conn =
    match Hashtbl.find_opt conns conn.fd with
    | Some c -> c == conn
    | None -> false
  in
  (* HTTP connections are exempt: the metrics exposition is
     server-generated, bounded by the registry, and closes after one
     flush — only peer-driven response pileup is a hostile signal. *)
  let check_out_ceiling conn =
    if
      (not conn.http)
      && Buffer.length conn.out > config.out_buf_max
      && conn_live conn
    then begin
      Mrsl.Telemetry.incr telemetry "serve.out_buf_killed";
      Log.warn (fun m ->
          m "output buffer over %d bytes on a non-reading peer — dropping"
            config.out_buf_max);
      close_conn conn
    end
  in
  let handle_http conn line =
    conn.http <- true;
    conn.close_after_flush <- true;
    match http_path line with
    | "/metrics" ->
        Mrsl.Telemetry.incr telemetry "serve.metrics_scrapes";
        Mrsl.Resource.sample_current ();
        send conn
          (Protocol.http_metrics_response
             (Mrsl.Trace.prometheus_exposition telemetry))
    | _ -> send conn Protocol.http_not_found_response
  in
  let handle_line conn line =
    if not conn.http then
      if Protocol.is_http_get line then handle_http conn line
      else if String.trim line = "" then ()
      else
        match Protocol.parse_request line with
        | Error e ->
            Mrsl.Telemetry.incr telemetry "serve.errors";
            send conn (Protocol.error_line e)
        | Ok req ->
            if !stopping then begin
              Mrsl.Telemetry.incr telemetry "serve.errors";
              send conn (Protocol.error_line ?id:req.id shutting_down_error)
            end
            else begin
              let now = Mrsl.Clock.now () in
              let budget =
                match req.deadline_ms with
                | Some ms -> float_of_int ms /. 1000.
                | None -> config.default_deadline
              in
              let deadline =
                if budget >= infinity then infinity else now +. budget
              in
              incr req_seq;
              let seq = !req_seq in
              let flow =
                Mrsl.Trace.request_flow_id ~seed:eng_seed ~req:seq
              in
              let item =
                {
                  conn;
                  req;
                  seq;
                  flow;
                  enqueued_at = now;
                  deadline;
                  drained_at = now;
                  answered_at = now;
                  outcome = Engine.Served;
                }
              in
              if Admission.try_add queue item then begin
                conn.inflight <- conn.inflight + 1;
                (* Start the request's trace flow on the server-loop
                   track; the batch that answers it terminates the
                   arrow ({!Engine.handle_batch}). *)
                Mrsl.Trace.flow_start ~cat:"serve"
                  ~args:
                    [
                      ("conn", Mrsl.Trace.Int conn.id);
                      ("seq", Mrsl.Trace.Int seq);
                      ("op", Mrsl.Trace.Str (Protocol.op_name req.op));
                    ]
                  ~id:flow "serve.request"
              end
              else send conn (Protocol.error_line ?id:req.id overloaded_error)
            end
  in
  let handle_writable conn =
    let data = Buffer.contents conn.out in
    let len = String.length data in
    if len > 0 then begin
      (* Stalled-write injection: flush at most one byte this round —
         the response trickles out and the buffer backs up, exactly like
         a peer with a wedged receive window. *)
      let wlen =
        if Mrsl.Fault_inject.should_stall_write ~key:(inj_key conn) then begin
          Mrsl.Telemetry.incr telemetry "fault.injected.stalled_writes";
          1
        end
        else len
      in
      match Unix.write_substring conn.fd data 0 wlen with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> close_conn conn
      | written ->
          Buffer.clear conn.out;
          if written < len then
            Buffer.add_substring conn.out data written (len - written)
    end;
    if conn_live conn then begin
      if Buffer.length conn.out = 0 && conn.close_after_flush then
        close_conn conn
      else check_out_ceiling conn
    end
  in
  let read_buf = Bytes.create 65536 in
  let handle_readable conn =
    match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn conn
    | 0 ->
        (* EOF; a half-assembled frame means the peer truncated it. *)
        if Protocol.Framing.pending conn.framing > 0 && not conn.http then begin
          Mrsl.Telemetry.incr telemetry "serve.errors";
          Log.warn (fun m -> m "%a" Mrsl.Error.pp truncated_error)
        end;
        (* Responses already queued for this connection can no longer be
           read by anyone if the peer fully closed; keep flushing anyway
           in case it only shut down its write side. *)
        if Buffer.length conn.out = 0 then close_conn conn
        else conn.close_after_flush <- true
    | n ->
        (* Torn-frame injection: deliver only a prefix of the chunk and
           drop the connection, as if the peer died mid-frame. *)
        let torn =
          (not conn.http) && Mrsl.Fault_inject.should_tear_frame ~key:(inj_key conn)
        in
        let len = if torn then max 1 (n / 2) else n in
        (match Protocol.Framing.feed conn.framing (Bytes.sub_string read_buf 0 len) with
        | Ok lines ->
            if lines <> [] then conn.last_frame <- Mrsl.Clock.now ();
            List.iter (handle_line conn) lines;
            (* A burst of synchronous replies (rejects, parse errors)
               can pile up inside this one callback; give the socket a
               chance to drain before the ceiling judges the buffer —
               [handle_writable] flushes and then checks it. *)
            if Buffer.length conn.out > 0 then handle_writable conn
        | Error e ->
            Mrsl.Telemetry.incr telemetry "serve.errors";
            send conn (Protocol.error_line e);
            conn.close_after_flush <- true);
        if torn then begin
          Mrsl.Telemetry.incr telemetry "fault.injected.torn_frames";
          if conn_live conn && Protocol.Framing.pending conn.framing > 0
          then begin
            Mrsl.Telemetry.incr telemetry "serve.errors";
            Log.warn (fun m -> m "%a" Mrsl.Error.pp truncated_error)
          end;
          close_conn conn
        end
  in
  let accept_all () =
    let continue = ref (not !stopping) in
    while !continue do
      match Unix.accept listener with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          continue := false
      | fd, _ ->
          Unix.set_nonblock fd;
          (* [selectable] is a hard floor under the configured cap: an
             fd select cannot represent must never reach the select set,
             whatever [max_conns] says. *)
          if Hashtbl.length conns >= config.max_conns || not (selectable fd)
          then begin
            (* Immediate structured reject: one best-effort write so a
               well-behaved client learns why, then close. Never admit
               the fd into the select set. *)
            Mrsl.Telemetry.incr telemetry "serve.conn_rejected";
            let line = Protocol.error_line conn_rejected_error in
            (try
               ignore (Unix.write_substring fd line 0 (String.length line))
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            Mrsl.Telemetry.incr telemetry "serve.connections";
            incr conn_ids;
            Hashtbl.replace conns fd
              {
                fd;
                id = !conn_ids;
                framing = Protocol.Framing.create ~max_frame:config.max_frame ();
                out = Buffer.create 256;
                http = false;
                close_after_flush = false;
                last_frame = Mrsl.Clock.now ();
                inflight = 0;
                seq = 0;
              }
          end
    done
  in
  let answer item (a : Engine.answer) =
    item.conn.inflight <- item.conn.inflight - 1;
    item.answered_at <- Mrsl.Clock.now ();
    item.outcome <- a.outcome;
    if conn_live item.conn then begin
      (* Connection-drop injection: kill the connection at the moment
         its answer would have been delivered — the worst time. *)
      if Mrsl.Fault_inject.should_drop_conn ~key:(inj_key item.conn) then begin
        Mrsl.Telemetry.incr telemetry "fault.injected.conn_drops";
        close_conn item.conn
      end
      else send item.conn a.line
    end
  in
  (* One flush per connection per batch — flushing inside [answer] would
     cost a write syscall per response and halve pipelined throughput.
     [handle_writable] also applies the output ceiling right after the
     flush attempt, so a non-reading peer is judged on what the socket
     refused to take, never on a transient unflushed burst. *)
  let flush_batch batch =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun item ->
        if not (Hashtbl.mem seen item.conn.id) then begin
          Hashtbl.add seen item.conn.id ();
          if conn_live item.conn && Buffer.length item.conn.out > 0 then
            handle_writable item.conn
        end)
      batch
  in
  (* The lifecycle finalizer: runs once per request after its batch's
     flush attempt, when all three phase boundaries are stamped. The
     phase durations sum to the end-to-end latency by construction
     (queue_wait + compute + flush_wait = flushed - enqueued), so the
     per-phase histograms stay sum-consistent with
     [serve.latency_seconds] — which, as of this observability pass,
     measures admission → flush, not admission → answer. Everything
     here observes; nothing feeds back into serving. *)
  let finalize flushed item =
    let queue_wait = Float.max 0. (item.drained_at -. item.enqueued_at) in
    let compute = Float.max 0. (item.answered_at -. item.drained_at) in
    let flush_wait = Float.max 0. (flushed -. item.answered_at) in
    let total = Float.max 0. (flushed -. item.enqueued_at) in
    Mrsl.Telemetry.observe telemetry "serve.queue_wait_seconds" queue_wait;
    Mrsl.Telemetry.observe telemetry "serve.compute_seconds" compute;
    Mrsl.Telemetry.observe telemetry "serve.flush_wait_seconds" flush_wait;
    Mrsl.Telemetry.observe telemetry "serve.latency_seconds" total;
    let label = Engine.outcome_label item.outcome in
    Mrsl.Telemetry.observe telemetry ("serve.latency_seconds." ^ label) total;
    Mrsl.Trace.instant ~cat:"serve"
      ~args:
        [
          ("flow", Mrsl.Trace.Int item.flow);
          ("outcome", Mrsl.Trace.Str label);
          ("queue_wait_us", Mrsl.Trace.Float (queue_wait *. 1e6));
          ("compute_us", Mrsl.Trace.Float (compute *. 1e6));
          ("flush_us", Mrsl.Trace.Float (flush_wait *. 1e6));
        ]
      "serve.request.done";
    match config.access_log with
    | None -> ()
    | Some oc ->
        (* Errors, sheds, and deadline expiries always land in the log;
           so does anything over the slow threshold. The rest is thinned
           by a deterministic splitmix draw keyed on (seed, seq) — the
           same workload under the same seed samples the same lines. *)
        let always =
          (match item.outcome with
          | Engine.Failed | Engine.Shed | Engine.Expired -> true
          | Engine.Served | Engine.Cache_hit -> false)
          || (total *. 1000. > config.slow_ms)
        in
        let sampled =
          config.log_sample > 0.
          && Mrsl.Fault_inject.unit_float ~seed:eng_seed
               ~site:access_log_site ~key:item.seq
             < config.log_sample
        in
        if always || sampled then begin
          let module Json = Mrsl.Telemetry.Json in
          let line =
            Json.Obj
              [
                ("ts", Json.Float (Unix.gettimeofday ()));
                ("seq", Json.Int item.seq);
                ( "id",
                  match item.req.id with Some id -> id | None -> Json.Null );
                ("op", Json.String (Protocol.op_name item.req.op));
                ("outcome", Json.String label);
                ("conn", Json.Int item.conn.id);
                ("epoch", Json.Int (Engine.epoch engine));
                ("queue_wait_ms", Json.Float (queue_wait *. 1000.));
                ("compute_ms", Json.Float (compute *. 1000.));
                ("flush_ms", Json.Float (flush_wait *. 1000.));
                ("total_ms", Json.Float (total *. 1000.));
              ]
          in
          output_string oc (Json.to_string ~pretty:false line);
          output_char oc '\n';
          flush oc;
          Mrsl.Telemetry.incr telemetry "serve.access_log_lines"
        end
  in
  let run_batch () =
    (* Pressure is read where the batch is formed: a queue at or above
       the watermark when we drain means arrivals are outrunning
       service, so this batch runs on the cache-hit-only rung. *)
    let pressure =
      if Admission.occupancy queue >= config.shed_watermark then
        Engine.Cache_only
      else Engine.Normal
    in
    match Admission.drain ~max:config.batch_max queue with
    | [] -> ()
    | batch ->
        let now = Mrsl.Clock.now () in
        List.iter (fun item -> item.drained_at <- now) batch;
        let expired, live =
          List.partition (fun item -> now > item.deadline) batch
        in
        List.iter
          (fun item ->
            Mrsl.Telemetry.incr telemetry "serve.deadline_exceeded";
            (* No batch ran this request, so close its admission arrow
               here — per-flow start/finish counts stay balanced. *)
            Mrsl.Trace.flow_end ~cat:"serve" ~id:item.flow "serve.request";
            answer item
              {
                Engine.line = Protocol.error_line ?id:item.req.id deadline_error;
                outcome = Engine.Expired;
              })
          expired;
        if live <> [] then begin
          let reqs = List.map (fun item -> item.req) live in
          let flows =
            Array.of_list (List.map (fun item -> item.flow) live)
          in
          let answers = Engine.handle_batch ~pressure ~flows engine reqs in
          List.iter2 answer live answers;
          if Engine.wants_shutdown reqs then begin_stopping ()
        end;
        flush_batch batch;
        let flushed = Mrsl.Clock.now () in
        List.iter (finalize flushed) batch
  in
  (* The idle reaper: a connection with nothing admitted and no
     completed frame for [idle_timeout] is a slow-loris (or a peer that
     stopped reading its responses) — kill it. [inflight > 0] exempts
     connections that are only waiting on us. *)
  let sweep_idle () =
    if config.idle_timeout > 0. then begin
      let now = Mrsl.Clock.now () in
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.iter (fun c ->
             if c.inflight = 0 && now -. c.last_frame > config.idle_timeout
             then begin
               Mrsl.Telemetry.incr telemetry "serve.idle_killed";
               Log.warn (fun m ->
                   m "idle connection killed after %.1fs" config.idle_timeout);
               close_conn c
             end)
    end
  in
  (* Per-connection ceilings compose into a large aggregate: [max_conns]
     peers each just under [out_buf_max] is gigabytes of buffered
     responses with every individual limit respected. The aggregate
     budget bounds total buffered memory by killing the worst offenders
     (largest buffers first) until the rest fits. HTTP connections are
     exempt from the kill for the same reason as the per-connection
     ceiling — their output is server-generated and bounded — but their
     bytes still count toward the total, because memory is memory. *)
  let sweep_out_budget () =
    let total =
      Hashtbl.fold (fun _ c acc -> acc + Buffer.length c.out) conns 0
    in
    if total > config.out_buf_total then begin
      let offenders =
        Hashtbl.fold (fun _ c acc -> c :: acc) conns []
        |> List.filter (fun c -> (not c.http) && Buffer.length c.out > 0)
        |> List.sort (fun a b ->
               compare (Buffer.length b.out) (Buffer.length a.out))
      in
      let excess = ref (total - config.out_buf_total) in
      List.iter
        (fun c ->
          if !excess > 0 then begin
            excess := !excess - Buffer.length c.out;
            Mrsl.Telemetry.incr telemetry "serve.out_buf_killed";
            Log.warn (fun m ->
                m
                  "aggregate output buffers over %d bytes — dropping the \
                   largest (%d bytes buffered)"
                  config.out_buf_total (Buffer.length c.out));
            close_conn c
          end)
        offenders
    end
  in
  let maybe_reload () =
    match hup with
    | Some flag when Atomic.compare_and_set flag true false -> (
        match Engine.reload engine with
        | Ok fresh ->
            Log.info (fun m ->
                m "reloaded %s (epoch %d)" (Engine.model_path engine)
                  (Mrsl.Model.epoch fresh))
        | Error e ->
            Mrsl.Telemetry.incr telemetry "serve.errors";
            Log.err (fun m -> m "reload failed: %a" Mrsl.Error.pp e))
    | _ -> ()
  in
  Log.info (fun m ->
      m "serving %s on %s (epoch %d)"
        (Engine.model_path engine)
        (Protocol.endpoint_to_string config.endpoint)
        (Engine.epoch engine));
  Option.iter (fun f -> f ()) on_ready;
  let finished () =
    !stopping
    && (Admission.length queue = 0
        && Hashtbl.fold
             (fun _ c acc -> acc && Buffer.length c.out = 0)
             conns true
       || Mrsl.Clock.now () > !drain_deadline)
  in
  (try
     while not (finished ()) do
       (match stop with
       | Some flag when Atomic.get flag -> begin_stopping ()
       | _ -> ());
       maybe_reload ();
       let read_fds =
         (if !stopping then [] else [ listener ])
         @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
       in
       let write_fds =
         Hashtbl.fold
           (fun fd c acc -> if Buffer.length c.out > 0 then fd :: acc else acc)
           conns []
       in
       let readable, writable, _ =
         (* EINVAL is defensive: admission never lets an fd >=
            FD_SETSIZE into the sets, but a select failure must degrade
            to an idle tick, not kill the daemon. *)
         try Unix.select read_fds write_fds [] config.tick
         with Unix.Unix_error ((Unix.EINTR | Unix.EINVAL), _, _) ->
           ([], [], [])
       in
       closed := [];
       if List.mem listener readable then accept_all ();
       List.iter
         (fun fd ->
           if fd <> listener && not (List.mem fd !closed) then
             match Hashtbl.find_opt conns fd with
             | Some conn -> handle_readable conn
             | None -> ())
         readable;
       run_batch ();
       List.iter
         (fun fd ->
           if not (List.mem fd !closed) then
             match Hashtbl.find_opt conns fd with
             | Some conn -> handle_writable conn
             | None -> ())
         writable;
       sweep_idle ();
       sweep_out_budget ();
       (* Graceful drain must not wait on select ticks: while stopping,
          flush every pending buffer eagerly. *)
       if !stopping then
         Hashtbl.fold (fun _ c acc -> c :: acc) conns []
         |> List.iter (fun c ->
                if Buffer.length c.out > 0 then handle_writable c)
     done
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     (match config.endpoint with
     | Protocol.Unix_socket path -> (
         try Unix.unlink path with Unix.Unix_error _ -> ())
     | Protocol.Tcp _ -> ());
     raise e);
  Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter close_conn;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (match config.endpoint with
  | Protocol.Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  Log.info (fun m -> m "shut down cleanly")
