let src = Logs.Src.create "mrsl.serve" ~doc:"mrsl serving daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  endpoint : Protocol.endpoint;
  batch_max : int;
  queue_capacity : int;
  max_frame : int;
  tick : float;
}

let default_config endpoint =
  {
    endpoint;
    batch_max = 64;
    queue_capacity = 1024;
    max_frame = Protocol.Framing.default_max_frame;
    tick = 0.05;
  }

type conn = {
  fd : Unix.file_descr;
  framing : Protocol.Framing.t;
  out : Buffer.t;
  mutable http : bool;  (** answered as HTTP — ignore further input *)
  mutable close_after_flush : bool;
}

type item = { conn : conn; req : Protocol.request; enqueued_at : float }

let overloaded_error =
  Mrsl.Error.make Mrsl.Error.Scheduler ~code:"serve.overloaded"
    "server overloaded — request queue is full, retry later"

let shutting_down_error =
  Mrsl.Error.make Mrsl.Error.Scheduler ~code:"serve.shutting_down"
    "server is shutting down"

let truncated_error =
  Mrsl.Error.make Mrsl.Error.Input ~code:"protocol.truncated"
    "connection closed mid-frame"

let bind_listener endpoint =
  let fd =
    match endpoint with
    | Protocol.Unix_socket path ->
        (* A dead server leaves its socket file behind; a live one holds
           the listen — refuse to steal it. *)
        (match (Unix.lstat path).st_kind with
        | Unix.S_SOCK -> (
            let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            match Unix.connect probe (Unix.ADDR_UNIX path) with
            | () ->
                Unix.close probe;
                failwith
                  (Printf.sprintf "another server is listening on %s" path)
            | exception Unix.Unix_error _ ->
                Unix.close probe;
                Unix.unlink path)
        | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Protocol.Tcp (host, port) ->
        let addr =
          try (Unix.gethostbyname host).h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        fd
  in
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let http_path line =
  (* "GET /metrics HTTP/1.1" -> "/metrics" *)
  match String.split_on_char ' ' line with
  | _ :: path :: _ -> path
  | _ -> "/"

let run ?stop ?hup ?on_ready config engine =
  let telemetry = Engine.telemetry engine in
  let queue =
    Admission.create ~telemetry ~capacity:config.queue_capacity ()
  in
  let listener = bind_listener config.endpoint in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 32 in
  let stopping = ref false in
  (* Graceful-drain bound: a peer that stops reading must not be able to
     wedge shutdown behind its unflushable response buffer. *)
  let drain_deadline = ref infinity in
  let begin_stopping () =
    if not !stopping then begin
      stopping := true;
      drain_deadline := Unix.gettimeofday () +. 5.0
    end
  in
  let closed = ref [] in
  let close_conn conn =
    if Hashtbl.mem conns conn.fd then begin
      Hashtbl.remove conns conn.fd;
      closed := conn.fd :: !closed;
      try Unix.close conn.fd with Unix.Unix_error _ -> ()
    end
  in
  let send conn line = Buffer.add_string conn.out line in
  let handle_http conn line =
    conn.http <- true;
    conn.close_after_flush <- true;
    match http_path line with
    | "/metrics" ->
        Mrsl.Telemetry.incr telemetry "serve.metrics_scrapes";
        send conn
          (Protocol.http_metrics_response
             (Mrsl.Trace.prometheus_exposition telemetry))
    | _ -> send conn Protocol.http_not_found_response
  in
  let handle_line conn line =
    if not conn.http then
      if Protocol.is_http_get line then handle_http conn line
      else if String.trim line = "" then ()
      else
        match Protocol.parse_request line with
        | Error e ->
            Mrsl.Telemetry.incr telemetry "serve.errors";
            send conn (Protocol.error_line e)
        | Ok req ->
            if !stopping then begin
              Mrsl.Telemetry.incr telemetry "serve.errors";
              send conn (Protocol.error_line ?id:req.id shutting_down_error)
            end
            else if
              not
                (Admission.try_add queue
                   { conn; req; enqueued_at = Unix.gettimeofday () })
            then send conn (Protocol.error_line ?id:req.id overloaded_error)
  in
  let read_buf = Bytes.create 65536 in
  let handle_readable conn =
    match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn conn
    | 0 ->
        (* EOF; a half-assembled frame means the peer truncated it. *)
        if Protocol.Framing.pending conn.framing > 0 && not conn.http then begin
          Mrsl.Telemetry.incr telemetry "serve.errors";
          Log.warn (fun m -> m "%a" Mrsl.Error.pp truncated_error)
        end;
        (* Responses already queued for this connection can no longer be
           read by anyone if the peer fully closed; keep flushing anyway
           in case it only shut down its write side. *)
        if Buffer.length conn.out = 0 then close_conn conn
        else conn.close_after_flush <- true
    | n -> (
        match Protocol.Framing.feed conn.framing (Bytes.sub_string read_buf 0 n) with
        | Ok lines -> List.iter (handle_line conn) lines
        | Error e ->
            Mrsl.Telemetry.incr telemetry "serve.errors";
            send conn (Protocol.error_line e);
            conn.close_after_flush <- true)
  in
  let handle_writable conn =
    let data = Buffer.contents conn.out in
    let len = String.length data in
    if len > 0 then begin
      match Unix.write_substring conn.fd data 0 len with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> close_conn conn
      | written ->
          Buffer.clear conn.out;
          if written < len then
            Buffer.add_substring conn.out data written (len - written)
    end;
    if Buffer.length conn.out = 0 && conn.close_after_flush then close_conn conn
  in
  let accept_all () =
    let continue = ref (not !stopping) in
    while !continue do
      match Unix.accept listener with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          continue := false
      | fd, _ ->
          Unix.set_nonblock fd;
          Mrsl.Telemetry.incr telemetry "serve.connections";
          Hashtbl.replace conns fd
            {
              fd;
              framing = Protocol.Framing.create ~max_frame:config.max_frame ();
              out = Buffer.create 256;
              http = false;
              close_after_flush = false;
            }
    done
  in
  let run_batch () =
    match Admission.drain ~max:config.batch_max queue with
    | [] -> ()
    | batch ->
        let reqs = List.map (fun item -> item.req) batch in
        let lines = Engine.handle_batch engine reqs in
        let finished = Unix.gettimeofday () in
        List.iter2
          (fun item line ->
            Mrsl.Telemetry.observe telemetry "serve.latency_seconds"
              (Float.max 0. (finished -. item.enqueued_at));
            if Hashtbl.mem conns item.conn.fd then begin
              send item.conn line;
              handle_writable item.conn
            end)
          batch lines;
        if Engine.wants_shutdown reqs then begin_stopping ()
  in
  let maybe_reload () =
    match hup with
    | Some flag when Atomic.compare_and_set flag true false -> (
        match Engine.reload engine with
        | Ok fresh ->
            Log.info (fun m ->
                m "reloaded %s (epoch %d)" (Engine.model_path engine)
                  (Mrsl.Model.epoch fresh))
        | Error e ->
            Mrsl.Telemetry.incr telemetry "serve.errors";
            Log.err (fun m -> m "reload failed: %a" Mrsl.Error.pp e))
    | _ -> ()
  in
  Log.info (fun m ->
      m "serving %s on %s (epoch %d)"
        (Engine.model_path engine)
        (Protocol.endpoint_to_string config.endpoint)
        (Engine.epoch engine));
  Option.iter (fun f -> f ()) on_ready;
  let finished () =
    !stopping
    && (Admission.length queue = 0
        && Hashtbl.fold
             (fun _ c acc -> acc && Buffer.length c.out = 0)
             conns true
       || Unix.gettimeofday () > !drain_deadline)
  in
  (try
     while not (finished ()) do
       (match stop with
       | Some flag when Atomic.get flag -> begin_stopping ()
       | _ -> ());
       maybe_reload ();
       let read_fds =
         (if !stopping then [] else [ listener ])
         @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
       in
       let write_fds =
         Hashtbl.fold
           (fun fd c acc -> if Buffer.length c.out > 0 then fd :: acc else acc)
           conns []
       in
       let readable, writable, _ =
         try Unix.select read_fds write_fds [] config.tick
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       closed := [];
       if List.mem listener readable then accept_all ();
       List.iter
         (fun fd ->
           if fd <> listener && not (List.mem fd !closed) then
             match Hashtbl.find_opt conns fd with
             | Some conn -> handle_readable conn
             | None -> ())
         readable;
       run_batch ();
       List.iter
         (fun fd ->
           if not (List.mem fd !closed) then
             match Hashtbl.find_opt conns fd with
             | Some conn -> handle_writable conn
             | None -> ())
         writable;
       (* Graceful drain must not wait on select ticks: while stopping,
          flush every pending buffer eagerly. *)
       if !stopping then
         Hashtbl.fold (fun _ c acc -> c :: acc) conns []
         |> List.iter (fun c ->
                if Buffer.length c.out > 0 then handle_writable c)
     done
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     (match config.endpoint with
     | Protocol.Unix_socket path -> (
         try Unix.unlink path with Unix.Unix_error _ -> ())
     | Protocol.Tcp _ -> ());
     raise e);
  Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter close_conn;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (match config.endpoint with
  | Protocol.Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  Log.info (fun m -> m "shut down cleanly")
