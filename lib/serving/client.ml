type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let sockaddr = function
  | Protocol.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Protocol.Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.PF_INET, Unix.ADDR_INET (addr, port))

let connect endpoint =
  let domain, addr = sockaddr endpoint in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd addr with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_retry ?(attempts = 100) ?(delay = 0.05) endpoint =
  let rec go n =
    match connect endpoint with
    | t -> t
    | exception e -> if n <= 1 then raise e else (Unix.sleepf delay; go (n - 1))
  in
  go (max 1 attempts)

let close t =
  (* close_out would flush and close the shared fd; closing the fd once
     is enough and never raises on a peer reset. *)
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t line =
  output_string t.oc line;
  if not (String.length line > 0 && line.[String.length line - 1] = '\n') then
    output_char t.oc '\n';
  flush t.oc

let send t req = send_raw t (Protocol.request_to_line req)
let recv t = input_line t.ic

let rpc t req =
  send t req;
  recv t

let scrape_metrics endpoint =
  let t = connect endpoint in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      output_string t.oc "GET /metrics HTTP/1.0\r\n\r\n";
      flush t.oc;
      let status = input_line t.ic in
      if not (String.length status >= 12 && String.sub status 9 3 = "200") then
        failwith (Printf.sprintf "metrics scrape failed: %s" (String.trim status));
      (* Skip headers up to the blank line, then read the body to EOF. *)
      let rec skip_headers () =
        match String.trim (input_line t.ic) with
        | "" -> ()
        | _ -> skip_headers ()
      in
      skip_headers ();
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf t.ic 1
         done
       with End_of_file -> ());
      Buffer.contents buf)
