exception Timeout

type t = {
  endpoint : Protocol.endpoint;
  mutable fd : Unix.file_descr;
  inbuf : Buffer.t;
  recv_timeout : float option;
}

(* Site number for the backoff-jitter draws — disjoint from the server's
   injection sites so a shared seed never correlates client jitter with
   server faults. *)
let jitter_site = 32

let backoff_delay ?(base = 0.05) ?(max_delay = 1.0) ?(seed = 0) attempt =
  let exp = base *. (2. ** float_of_int (max 0 attempt)) in
  let capped = Float.min max_delay exp in
  (* Deterministic jitter in [capped/2, capped): breaks retry herds
     without making tests flaky. *)
  let u = Mrsl.Fault_inject.unit_float ~seed ~site:jitter_site ~key:attempt in
  capped *. (0.5 +. (0.5 *. u))

let sockaddr = function
  | Protocol.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Protocol.Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.PF_INET, Unix.ADDR_INET (addr, port))

(* See {!Server.ignore_sigpipe}: a send to a server that already dropped
   the connection must surface as EPIPE, not kill the process. *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" | "Cygwin" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ()

let connect_fd endpoint =
  let domain, addr = sockaddr endpoint in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd addr with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  fd

let connect ?timeout endpoint =
  ignore_sigpipe ();
  {
    endpoint;
    fd = connect_fd endpoint;
    inbuf = Buffer.create 4096;
    recv_timeout = timeout;
  }

let connect_retry ?(attempts = 100) ?(delay = 0.05) ?(max_delay = 1.0)
    ?(seed = 0) ?timeout endpoint =
  let rec go n =
    match connect ?timeout endpoint with
    | t -> t
    | exception e ->
        if n >= max 1 attempts then raise e
        else begin
          Unix.sleepf (backoff_delay ~base:delay ~max_delay ~seed (n - 1));
          go (n + 1)
        end
  in
  go 1

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let reconnect t =
  close t;
  Buffer.clear t.inbuf;
  t.fd <- connect_fd t.endpoint

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | n -> off := !off + n
  done

let send_raw t line =
  let line =
    if String.length line > 0 && line.[String.length line - 1] = '\n' then line
    else line ^ "\n"
  in
  write_all t.fd line

let send t req = send_raw t (Protocol.request_to_line req)
let send_partial t s = write_all t.fd s

(* Take one complete line out of the receive buffer, or [None]. *)
let take_line buf =
  let data = Buffer.contents buf in
  match String.index_opt data '\n' with
  | None -> None
  | Some nl ->
      let line =
        if nl > 0 && data.[nl - 1] = '\r' then String.sub data 0 (nl - 1)
        else String.sub data 0 nl
      in
      Buffer.clear buf;
      Buffer.add_substring buf data (nl + 1) (String.length data - nl - 1);
      Some line

let read_chunk_size = 4096

(* One bounded read into [t.inbuf]; [false] at EOF. Raises [Timeout]
   once [deadline] (monotonic, [infinity] = none) passes — the whole
   point of this client: a dead or stalled server surfaces as a typed
   exception instead of a process blocked in [input_line] forever. *)
let fill ~deadline t =
  let rec wait () =
    let remaining = deadline -. Mrsl.Clock.now () in
    if remaining <= 0. then raise Timeout;
    let tick = if remaining = infinity then -1. else remaining in
    match Unix.select [ t.fd ] [] [] tick with
    | [], _, _ -> raise Timeout
    | _ :: _, _, _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  let chunk = Bytes.create read_chunk_size in
  let rec read () =
    match Unix.read t.fd chunk 0 read_chunk_size with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read ()
    | 0 -> false
    | n ->
        Buffer.add_subbytes t.inbuf chunk 0 n;
        true
  in
  read ()

let op_deadline t =
  match t.recv_timeout with
  | None -> infinity
  | Some s -> Mrsl.Clock.now () +. s

let recv t =
  let deadline = op_deadline t in
  let rec go () =
    match take_line t.inbuf with
    | Some line -> line
    | None -> if fill ~deadline t then go () else raise End_of_file
  in
  go ()

let rpc t req =
  send t req;
  recv t

let stats_json t =
  let line = rpc t (Protocol.req Protocol.Stats) in
  let module Json = Mrsl.Telemetry.Json in
  match Json.of_string (String.trim line) with
  | exception Json.Parse_error msg ->
      failwith (Printf.sprintf "stats response is not JSON (%s)" msg)
  | Json.Obj _ as obj when Json.member "ok" obj = Some (Json.Bool true) -> obj
  | _ -> failwith (Printf.sprintf "stats failed: %s" (String.trim line))

let idempotent = function
  | Protocol.Ping | Protocol.Stats | Protocol.Infer _ -> true
  | Protocol.Reload _ | Protocol.Shutdown -> false

let rpc_retry ?(attempts = 3) ?(delay = 0.05) ?(max_delay = 1.0) ?(seed = 0) t
    req =
  if not (idempotent req.Protocol.op) then
    (* A reload or shutdown that died mid-flight may or may not have
       been applied — blind re-send could double it. One shot only. *)
    rpc t req
  else begin
    let rec go n =
      match rpc t req with
      | line -> line
      | exception ((End_of_file | Timeout | Unix.Unix_error _) as e) ->
          if n >= max 1 attempts then raise e
          else begin
            Unix.sleepf (backoff_delay ~base:delay ~max_delay ~seed (n - 1));
            (* The dead connection may still hold half a response;
               reconnecting resets framing so the retry can't read a
               stale line as its answer. *)
            (try reconnect t with _ -> ());
            go (n + 1)
          end
    in
    go 1
  end

let scrape_metrics ?timeout endpoint =
  let t = connect ?timeout endpoint in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      write_all t.fd "GET /metrics HTTP/1.0\r\n\r\n";
      let status = recv t in
      if not (String.length status >= 12 && String.sub status 9 3 = "200") then
        failwith (Printf.sprintf "metrics scrape failed: %s" (String.trim status));
      (* Skip headers up to the blank line, then read the body to EOF in
         4 KiB chunks (this used to go through the channel one byte per
         call). *)
      let rec skip_headers () =
        match String.trim (recv t) with "" -> () | _ -> skip_headers ()
      in
      skip_headers ();
      let deadline = op_deadline t in
      while fill ~deadline t do
        ()
      done;
      Buffer.contents t.inbuf)
