module Json = Mrsl.Telemetry.Json

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type op =
  | Ping
  | Stats
  | Reload of string option
  | Shutdown
  | Infer of string option array

type request = { id : Json.t option; deadline_ms : int option; op : op }

let req ?id ?deadline_ms op = { id; deadline_ms; op }

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Reload _ -> "reload"
  | Shutdown -> "shutdown"
  | Infer _ -> "infer"

let missing_marker = "?"

let bad_request ?id fmt =
  Printf.ksprintf
    (fun msg ->
      let context =
        match id with
        | Some id -> [ ("id", Json.to_string ~pretty:false id) ]
        | None -> []
      in
      Error (Mrsl.Error.make ~context Mrsl.Error.Input ~code:"protocol.bad_request" msg))
    fmt

let parse_tuple ?id cells =
  let n = List.length cells in
  let labels = Array.make (max n 1) None in
  let rec fill i = function
    | [] -> Ok (Infer labels)
    | Json.Null :: rest ->
        labels.(i) <- None;
        fill (i + 1) rest
    | Json.String s :: rest ->
        labels.(i) <- (if s = missing_marker then None else Some s);
        fill (i + 1) rest
    | v :: _ ->
        bad_request ?id "tuple cell %d must be a string label or null (got %s)"
          i
          (Json.to_string ~pretty:false v)
  in
  if n = 0 then bad_request ?id "tuple must be a non-empty array"
  else fill 0 cells

let parse_request line =
  match Json.of_string line with
  | exception Json.Parse_error msg ->
      Error (Mrsl.Error.make Mrsl.Error.Input ~code:"protocol.parse" msg)
  | Json.Obj _ as obj -> (
      let id = Json.member "id" obj in
      let deadline =
        match Json.member "deadline_ms" obj with
        | None | Some Json.Null -> Ok None
        | Some (Json.Int ms) when ms >= 0 -> Ok (Some ms)
        | Some _ ->
            bad_request ?id "\"deadline_ms\" must be a non-negative integer"
      in
      match deadline with
      | Error e -> Error e
      | Ok deadline_ms -> (
          match Json.member "op" obj with
          | Some (Json.String op) -> (
              let req op = Ok { id; deadline_ms; op } in
              match op with
              | "ping" -> req Ping
              | "stats" -> req Stats
              | "shutdown" -> req Shutdown
              | "reload" -> (
                  match Json.member "path" obj with
                  | None | Some Json.Null -> req (Reload None)
                  | Some (Json.String p) -> req (Reload (Some p))
                  | Some _ -> bad_request ?id "reload path must be a string")
              | "infer" -> (
                  match Json.member "tuple" obj with
                  | Some (Json.List cells) ->
                      Result.map
                        (fun op -> { id; deadline_ms; op })
                        (parse_tuple ?id cells)
                  | Some _ | None ->
                      bad_request ?id "infer requires a \"tuple\" array")
              | other -> bad_request ?id "unknown op %S" other)
          | Some _ -> bad_request ?id "\"op\" must be a string"
          | None -> bad_request ?id "request has no \"op\" field"))
  | _ -> Error (Mrsl.Error.make Mrsl.Error.Input ~code:"protocol.parse" "not a JSON object")

let request_to_line { id; deadline_ms; op } =
  let fields =
    match op with
    | Ping -> [ ("op", Json.String "ping") ]
    | Stats -> [ ("op", Json.String "stats") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
    | Reload None -> [ ("op", Json.String "reload") ]
    | Reload (Some p) ->
        [ ("op", Json.String "reload"); ("path", Json.String p) ]
    | Infer labels ->
        [
          ("op", Json.String "infer");
          ( "tuple",
            Json.List
              (Array.to_list
                 (Array.map
                    (function
                      | None -> Json.Null | Some s -> Json.String s)
                    labels)) );
        ]
  in
  let fields =
    match deadline_ms with
    | Some ms -> fields @ [ ("deadline_ms", Json.Int ms) ]
    | None -> fields
  in
  let fields =
    match id with Some id -> ("id", id) :: fields | None -> fields
  in
  Json.to_string ~pretty:false (Json.Obj fields) ^ "\n"

let ok_line ?id ~kind fields =
  let fields =
    (match id with Some id -> [ ("id", id) ] | None -> [])
    @ [ ("ok", Json.Bool true); ("kind", Json.String kind) ]
    @ fields
  in
  Json.to_string ~pretty:false (Json.Obj fields) ^ "\n"

let error_line ?id (e : Mrsl.Error.t) =
  (* An id recovered from the broken request's context (stored by
     [bad_request]) is echoed when the caller did not pass one. *)
  let id =
    match id with
    | Some _ -> id
    | None -> (
        match List.assoc_opt "id" e.context with
        | Some raw -> ( try Some (Json.of_string raw) with _ -> None)
        | None -> None)
  in
  let context =
    List.filter (fun (k, _) -> k <> "id") e.context
    |> List.map (fun (k, v) -> (k, Json.String v))
  in
  let error =
    Json.Obj
      ([
         ("class", Json.String (Mrsl.Error.class_name e.class_));
         ("code", Json.String e.code);
         ("message", Json.String e.message);
       ]
      @ if context = [] then [] else [ ("context", Json.Obj context) ])
  in
  let fields =
    (match id with Some id -> [ ("id", id) ] | None -> [])
    @ [ ("ok", Json.Bool false); ("error", error) ]
  in
  Json.to_string ~pretty:false (Json.Obj fields) ^ "\n"

let is_http_get line =
  String.length line >= 4 && String.sub line 0 4 = "GET "

let http_metrics_response body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

let http_not_found_response =
  "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"

module Framing = struct
  type t = {
    buf : Buffer.t;
    max_frame : int;
    mutable poisoned : bool;
  }

  let default_max_frame = 1 lsl 20

  let create ?(max_frame = default_max_frame) () =
    if max_frame < 1 then invalid_arg "Framing.create: max_frame must be >= 1";
    { buf = Buffer.create 256; max_frame; poisoned = false }

  let oversized t =
    t.poisoned <- true;
    Error
      (Mrsl.Error.make Mrsl.Error.Input ~code:"protocol.oversized"
         ~context:[ ("max_frame", string_of_int t.max_frame) ]
         "frame exceeds the maximum length")

  let strip_cr s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

  let feed t chunk =
    if t.poisoned then oversized t
    else begin
      Buffer.add_string t.buf chunk;
      let data = Buffer.contents t.buf in
      let lines = ref [] in
      let start = ref 0 in
      (try
         while true do
           let nl = String.index_from data !start '\n' in
           lines := strip_cr (String.sub data !start (nl - !start)) :: !lines;
           start := nl + 1
         done
       with Not_found -> ());
      Buffer.clear t.buf;
      Buffer.add_substring t.buf data !start (String.length data - !start);
      if Buffer.length t.buf > t.max_frame then oversized t
      else if
        List.exists (fun l -> String.length l > t.max_frame) !lines
      then oversized t
      else Ok (List.rev !lines)
    end

  let pending t = Buffer.length t.buf
end
