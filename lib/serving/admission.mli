(** Admission control: a bounded FIFO of pending requests.

    The serving loop parses requests as fast as the sockets deliver
    them, but executes them in batches; this queue is the buffer in
    between, and its bound is the daemon's overload valve. When the
    queue is full, {!try_add} refuses immediately — the server answers
    [serve.overloaded] in microseconds instead of letting latency grow
    without bound — and counts [serve.overloaded] in telemetry.

    Mutex-protected: the core server loop is single-threaded, but tests
    and future multi-domain accept loops may probe it concurrently. *)

type 'a t

val create : ?telemetry:Mrsl.Telemetry.t -> capacity:int -> unit -> 'a t
(** [capacity] must be [>= 1] ([Invalid_argument] otherwise).
    [telemetry] (default {!Mrsl.Telemetry.global}) receives the
    [serve.overloaded] counter and the [serve.queue_depth] gauge. *)

val capacity : 'a t -> int
val length : 'a t -> int

val occupancy : 'a t -> float
(** [length / capacity] — the load-shedding ladder's pressure signal
    ([0.] empty, [1.] full). *)

val try_add : 'a t -> 'a -> bool
(** Enqueue, or return [false] without blocking when the queue is at
    capacity (counted as [serve.overloaded]). Publishes the
    [serve.queue_depth] gauge from inside the critical section either
    way, so the gauge always reflects the depth this mutation left
    behind — never a stale interleaved read. *)

val drain : max:int -> 'a t -> 'a list
(** Dequeue up to [max] items, oldest first ([max >= 0]; an empty list
    when the queue is empty). Publishes the [serve.queue_depth] gauge
    from inside the critical section, like {!try_add}. *)
