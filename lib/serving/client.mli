(** Blocking client for the [mrsl serve] protocol.

    One connection, synchronous line-at-a-time I/O — the scripting and
    testing counterpart of the nonblocking server. {!send} and {!recv}
    are split (rather than fused into one RPC call) so tests and
    benches can pipeline: write a burst of requests, then read the
    burst of responses — which is exactly what makes the server batch
    them into one engine call. *)

type t

val connect : Protocol.endpoint -> t
(** Raises [Unix.Unix_error] when nobody is listening. *)

val connect_retry : ?attempts:int -> ?delay:float -> Protocol.endpoint -> t
(** Retry [connect] up to [attempts] (default 100) times, sleeping
    [delay] (default 0.05 s) between tries — for racing a server that
    is still binding its socket. Re-raises the last error. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
(** Write one encoded request line and flush. *)

val send_raw : t -> string -> unit
(** Write an arbitrary line (plus ["\n"] unless already terminated) and
    flush — for driving the server with malformed input. *)

val recv : t -> string
(** Read one response line (without the terminator). Raises
    [End_of_file] when the server closed the connection. *)

val rpc : t -> Protocol.request -> string
(** [send] then [recv]. *)

val scrape_metrics : Protocol.endpoint -> string
(** Open a fresh connection, issue [GET /metrics HTTP/1.0], and return
    the response {e body} (the Prometheus exposition). Raises [Failure]
    on a non-200 status. *)
