(** Blocking client for the [mrsl serve] protocol.

    One connection, synchronous line-at-a-time I/O — the scripting and
    testing counterpart of the nonblocking server. {!send} and {!recv}
    are split (rather than fused into one RPC call) so tests and
    benches can pipeline: write a burst of requests, then read the
    burst of responses — which is exactly what makes the server batch
    them into one engine call.

    {2 Resilience}

    Every receive honors the connection's [timeout]: a dead, wedged, or
    maliciously silent server surfaces as {!Timeout} instead of a
    process blocked in a read forever. {!connect_retry} backs off
    exponentially with deterministic jitter ({!backoff_delay}), and
    {!rpc_retry} re-sends {e idempotent} requests (ping / stats /
    infer — the answer is a pure function of model and tuple) across a
    reconnect with the same backoff; [reload] and [shutdown] are never
    blindly re-sent, because a mid-flight death leaves their effect
    unknown. *)

type t

exception Timeout
(** A receive exceeded the connection's [timeout] budget. *)

val connect : ?timeout:float -> Protocol.endpoint -> t
(** Raises [Unix.Unix_error] when nobody is listening. [timeout]
    (seconds, default none) bounds every subsequent receive operation
    on the connection. Installs the [SIGPIPE]-ignore disposition, so a
    send to a vanished server raises [EPIPE] instead of killing the
    process. *)

val connect_retry :
  ?attempts:int ->
  ?delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  ?timeout:float ->
  Protocol.endpoint ->
  t
(** Retry [connect] up to [attempts] (default 100) times — for racing a
    server that is still binding its socket. Sleeps
    [backoff_delay ~base:delay ~max_delay ~seed attempt] between tries:
    exponential from [delay] (default 0.05 s) capped at [max_delay]
    (default 1 s), jittered deterministically from [seed]. Re-raises
    the last error. *)

val backoff_delay :
  ?base:float -> ?max_delay:float -> ?seed:int -> int -> float
(** [backoff_delay attempt] — the sleep before retry [attempt]
    (0-based): [min max_delay (base * 2^attempt)] scaled into its upper
    half by a deterministic uniform draw
    ({!Mrsl.Fault_inject.unit_float} on a client-reserved site), so
    retry herds spread out but tests stay reproducible. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
(** Write one encoded request line (handles short writes). *)

val send_raw : t -> string -> unit
(** Write an arbitrary line (plus ["\n"] unless already terminated) —
    for driving the server with malformed input. *)

val send_partial : t -> string -> unit
(** Write bytes verbatim, {e no} newline appended — for half-frame /
    slow-loris traffic in tests and the chaos harness. *)

val recv : t -> string
(** Read one response line (without the terminator), buffering in 4 KiB
    chunks. Raises [End_of_file] when the server closed the connection,
    {!Timeout} when the connection's [timeout] budget elapses first. *)

val rpc : t -> Protocol.request -> string
(** [send] then [recv]. *)

val stats_json : t -> Mrsl.Telemetry.Json.t
(** Issue a [stats] request and return the parsed response object —
    including the daemon's live per-phase latency breakdown under
    ["phases"] (queue-wait / compute / flush-wait / total, each with
    count and p50/p99/max in milliseconds), which backs
    [mrsl client profile]. Raises [Failure] when the response is not an
    [ok:true] JSON object. *)

val rpc_retry :
  ?attempts:int ->
  ?delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  t ->
  Protocol.request ->
  string
(** [rpc] with an idempotent-retry budget: on [End_of_file], {!Timeout}
    or [Unix_error], sleep {!backoff_delay}, reconnect (dropping any
    half-read response so a retry can never consume a stale line), and
    re-send — up to [attempts] (default 3) total tries. Non-idempotent
    requests ([reload] / [shutdown]) get exactly one try; their
    failures re-raise immediately. *)

val scrape_metrics : ?timeout:float -> Protocol.endpoint -> string
(** Open a fresh connection, issue [GET /metrics HTTP/1.0], and return
    the response {e body} (the Prometheus exposition), reading in 4 KiB
    chunks. Raises [Failure] on a non-200 status, {!Timeout} under
    [timeout]. *)
