(** The [mrsl serve] event loop: sockets, batching, admission, swap.

    A single-threaded [Unix.select] loop (inference parallelism lives
    inside {!Engine} via {!Mrsl.Parallel}'s domain pool, so the
    transport needs no threads): accept connections on one endpoint,
    reassemble line frames per connection ({!Protocol.Framing}), push
    parsed requests through the bounded {!Admission} queue, and — once
    per loop iteration — drain up to [batch_max] of them into one
    {!Engine.handle_batch} call. Batching is what lets the posterior
    cache's prewarm dedup identical concurrent requests from different
    clients into one computation.

    {2 Hostile-traffic defenses}

    Every limit answers with a structured error and its own counter, so
    an operator can tell shedding (the defenses working) from failure:

    - {e connection cap} — past [max_conns] live connections, an accept
      is answered with one [Scheduler/serve.conn_rejected] line and
      closed immediately, never admitted to the select set
      ([serve.conn_rejected]); the same reject fires for any accepted
      descriptor numbered at or above [FD_SETSIZE] (1024), which
      [Unix.select] cannot represent — a hard floor under the
      configured cap, so a flood can never push an unrepresentable fd
      into the select set and crash the loop with [EINVAL];
    - {e idle reaper} — a connection that completes no frame for
      [idle_timeout] seconds while nothing of its is queued is killed
      ([serve.idle_killed]); byte-dripping slow-loris input does not
      reset the timer, only completed frames do;
    - {e output ceiling} — a peer that stops reading while responses
      pile up is dropped once its buffer passes [out_buf_max] bytes
      ([serve.out_buf_killed]); and because per-connection ceilings
      compose — [max_conns] peers each just under [out_buf_max] is
      gigabytes with every individual limit respected — an {e
      aggregate} budget [out_buf_total] bounds the sum across all
      connections, killing the largest buffers first until the rest
      fits (also [serve.out_buf_killed]);
    - {e request deadlines} — each admitted request carries a latency
      budget (the request's own [deadline_ms], else
      [default_deadline]); a request still queued past its budget is
      shed with [Scheduler/serve.deadline_exceeded] instead of being
      computed ([serve.deadline_exceeded]);
    - {e load-shedding ladder} — admission-queue overflow is refused
      with [serve.overloaded] as before; when the queue is at or above
      [shed_watermark] of capacity at drain time the batch runs on
      {!Engine.Cache_only}: posterior-cache hits are answered
      bit-identically for free, everything else is shed with
      [serve.shed].

    Sheds and kills count their own [serve.*] counters, {e not}
    [serve.errors] — shedding is the ladder working, not a failure.

    {2 Fault injection}

    Three {!Mrsl.Fault_inject} sites exercise the defenses from inside:
    torn frames (a read delivers a prefix, then the connection dies),
    stalled writes (a flush moves one byte), and connection drops at
    answer-delivery time. Each injected event counts
    [fault.injected.torn_frames] / [.stalled_writes] / [.conn_drops].

    {2 Request-scoped observability}

    Every admitted request carries a lifecycle record stamped on the
    monotonic clock at admission, batch drain, engine answer, and
    post-batch flush. After the flush the finalizer turns the deltas
    into the phase histograms [serve.queue_wait_seconds] /
    [serve.compute_seconds] / [serve.flush_wait_seconds], the
    end-to-end [serve.latency_seconds] (admission → flush; the three
    phases sum to it by construction), and an outcome-labelled
    [serve.latency_seconds.<outcome>] ({!Engine.outcome_label}). Each
    request also gets a deterministic trace flow
    ({!Mrsl.Trace.request_flow_id}): started on the server-loop track
    at admission, terminated inside the answering [serve.batch] slice,
    and — for multi-missing inference — continued onto the worker
    domain's task slice. A [serve.request.done] trace instant carries
    the phase breakdown and outcome. With [access_log] set, finalized
    requests are written as JSON lines under the deterministic sampling
    policy described at {!type-config}. All of it is observation-only:
    served bytes are bit-identical with tracing and logging on or off.

    A connection whose first frame is an HTTP GET line is answered as
    HTTP and closed: [GET /metrics] returns the live Prometheus
    exposition of the engine's telemetry registry
    ({!Mrsl.Trace.prometheus_exposition}, counted as
    [serve.metrics_scrapes]); any other path returns 404.

    Shutdown — a [shutdown] request, [Atomic.set stop true], or (as
    wired by the CLI) SIGTERM/SIGINT — is graceful: the listener closes
    first, every queued request is still answered, every response
    buffer is flushed, and a Unix-socket path is unlinked. A raised
    [hup] flag (SIGHUP under the CLI) triggers {!Engine.reload} between
    batches; in-flight requests are never dropped by the swap. *)

type config = {
  endpoint : Protocol.endpoint;
  batch_max : int;  (** max requests drained into one engine batch *)
  queue_capacity : int;  (** admission bound *)
  max_frame : int;  (** per-connection line bound, bytes *)
  tick : float;  (** select timeout, seconds — stop/hup poll latency *)
  max_conns : int;
      (** live-connection cap — excess accepts rejected; fds [select]
          cannot represent (>= 1024) are rejected regardless *)
  idle_timeout : float;
      (** seconds without a completed frame before an idle connection
          is killed; [0.] disables the reaper *)
  out_buf_max : int;
      (** per-connection response-buffer ceiling, bytes *)
  out_buf_total : int;
      (** aggregate response-buffer budget across all connections,
          bytes — largest buffers are killed first past it *)
  default_deadline : float;
      (** latency budget, seconds, for requests that carry no
          [deadline_ms]; [infinity] disables the default budget *)
  shed_watermark : float;
      (** queue-occupancy fraction at which batches degrade to
          cache-hit-only ({!Engine.Cache_only}) *)
  access_log : out_channel option;
      (** structured JSON access log, one object per logged request
          ([ts], [seq], [id], [op], [outcome], [conn], [epoch],
          [queue_wait_ms], [compute_ms], [flush_ms], [total_ms]);
          flushed per line; [None] disables *)
  slow_ms : float;
      (** requests whose end-to-end latency exceeds this are always
          logged, regardless of sampling *)
  log_sample : float;
      (** fraction of ordinary (ok / cache-hit, not slow) requests to
          log, decided by a deterministic splitmix draw keyed on
          [(engine seed, admission seq)] — same seed + workload, same
          sampled lines; errors, sheds, and deadline expiries are
          always logged *)
}

val default_config : Protocol.endpoint -> config
(** [batch_max = 64], [queue_capacity = 1024],
    [max_frame = Protocol.Framing.default_max_frame], [tick = 0.05],
    [max_conns = 1000] (under [FD_SETSIZE] with room for the listener,
    stdio, and the engine's own descriptors), [idle_timeout = 30.],
    [out_buf_max = 4 MiB], [out_buf_total = 64 MiB],
    [default_deadline = 30.], [shed_watermark = 0.75],
    [access_log = None], [slow_ms = 100.], [log_sample = 1.0]. *)

val run :
  ?stop:bool Atomic.t ->
  ?hup:bool Atomic.t ->
  ?on_ready:(unit -> unit) ->
  config ->
  Engine.t ->
  unit
(** Serve until shut down. Installs the [SIGPIPE]-ignore disposition
    (a peer vanishing between select and write must not kill the
    daemon). [on_ready] fires once the endpoint is bound and listening
    (tests and benches connect from another domain on it). [stop]
    forces a graceful shutdown when set; [hup] is consumed (reset to
    [false]) and triggers a model reload. All internal timing
    (deadlines, idle reaping, drain bound, latency histograms) uses the
    monotonic {!Mrsl.Clock}, immune to wall-clock steps. Raises
    [Unix.Unix_error] when the endpoint cannot be bound. *)
