(** The [mrsl serve] event loop: sockets, batching, admission, swap.

    A single-threaded [Unix.select] loop (inference parallelism lives
    inside {!Engine} via {!Mrsl.Parallel}'s domain pool, so the
    transport needs no threads): accept connections on one endpoint,
    reassemble line frames per connection ({!Protocol.Framing}), push
    parsed requests through the bounded {!Admission} queue, and — once
    per loop iteration — drain up to [batch_max] of them into one
    {!Engine.handle_batch} call. Batching is what lets the posterior
    cache's prewarm dedup identical concurrent requests from different
    clients into one computation.

    Overload ({!Admission.try_add} refusal) is answered immediately
    with a [Scheduler/serve.overloaded] error line — the client learns
    in microseconds instead of waiting behind an unbounded queue.

    A connection whose first frame is an HTTP GET line is answered as
    HTTP and closed: [GET /metrics] returns the live Prometheus
    exposition of the engine's telemetry registry
    ({!Mrsl.Trace.prometheus_exposition}, counted as
    [serve.metrics_scrapes]); any other path returns 404.

    Shutdown — a [shutdown] request, [Atomic.set stop true], or (as
    wired by the CLI) SIGTERM/SIGINT — is graceful: the listener closes
    first, every queued request is still answered, every response
    buffer is flushed, and a Unix-socket path is unlinked. A raised
    [hup] flag (SIGHUP under the CLI) triggers {!Engine.reload} between
    batches; in-flight requests are never dropped by the swap. *)

type config = {
  endpoint : Protocol.endpoint;
  batch_max : int;  (** max requests drained into one engine batch *)
  queue_capacity : int;  (** admission bound *)
  max_frame : int;  (** per-connection line bound, bytes *)
  tick : float;  (** select timeout, seconds — stop/hup poll latency *)
}

val default_config : Protocol.endpoint -> config
(** [batch_max = 64], [queue_capacity = 1024],
    [max_frame = Protocol.Framing.default_max_frame], [tick = 0.05]. *)

val run :
  ?stop:bool Atomic.t ->
  ?hup:bool Atomic.t ->
  ?on_ready:(unit -> unit) ->
  config ->
  Engine.t ->
  unit
(** Serve until shut down. [on_ready] fires once the endpoint is bound
    and listening (tests and benches connect from another domain on
    it). [stop] forces a graceful shutdown when set; [hup] is consumed
    (reset to [false]) and triggers a model reload. Raises
    [Unix.Unix_error] when the endpoint cannot be bound. *)
