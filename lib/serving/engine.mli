(** The serving engine: a loaded model plus everything needed to answer
    request batches.

    The engine owns the model, the evidence-keyed
    {!Mrsl.Posterior_cache}, and the inference configuration; {!Server}
    owns sockets and scheduling. Splitting them keeps the engine directly
    drivable from tests and benchmarks without a socket in sight.

    {2 Determinism}

    Served posteriors are bit-identical to what the one-shot CLI
    produces on the same tuples:

    - a single-missing-value request is answered by
      {!Mrsl.Infer_single.infer} — exact and RNG-free;
    - a multi-missing request runs {!Mrsl.Parallel.run_contained} over
      the one-tuple workload [{tuple}] with the engine's fixed [seed],
      so its Gibbs estimate is a deterministic function of
      [(model, tuple, seed, method, gibbs config)] — independent of
      batch composition, request order, and domain count.

    {2 Batching}

    {!handle_batch} answers a drained batch as a unit: the
    single-missing tasks of each batch segment are prewarmed through
    {!Mrsl.Posterior_cache.prewarm}, so identical concurrent requests
    from different clients pay one posterior computation
    ([cache.dedup_fanout]) and multi-missing requests are computed once
    per distinct tuple per segment. A [reload] request splits the batch
    into segments: requests ahead of it are answered by the old model,
    requests behind it by the new one — in-flight requests are never
    dropped by a swap.

    {2 Hot swap}

    {!reload} loads a model file ({!Mrsl.Model_io.load}), refuses a
    schema change ([serve.reload_schema]), swaps the engine's model,
    bumps the [serve.epoch] gauge, counts [serve.reloads], and eagerly
    drops the stale cache generation
    ({!Mrsl.Posterior_cache.invalidate_stale}). On any failure the old
    model keeps serving. *)

type config = {
  seed : int;  (** Gibbs RNG seed — fixed per engine for determinism *)
  method_ : Mrsl.Voting.method_;
  gibbs : Mrsl.Gibbs.config;
  domains : int option;
      (** worker domains for multi-missing inference; [None] = let
          {!Mrsl.Parallel.run_contained} pick *)
  cache_bytes : int;  (** posterior-cache budget *)
}

val default_config : config
(** seed 42, best-averaged voting, {!Mrsl.Gibbs.default_config},
    [domains = None], {!Mrsl.Posterior_cache.default_max_bytes}. *)

type t

val create :
  ?telemetry:Mrsl.Telemetry.t -> config:config -> model_path:string -> unit -> t
(** Load the model at [model_path] ({!Mrsl.Model_io.load} — raises on a
    missing or malformed file; the daemon should fail to start rather
    than serve nothing) and build the engine around it. [telemetry]
    (default {!Mrsl.Telemetry.global}) receives every [serve.*] metric
    and is the registry exposed on [GET /metrics]. *)

val of_model :
  ?telemetry:Mrsl.Telemetry.t ->
  config:config ->
  ?model_path:string ->
  Mrsl.Model.t ->
  t
(** Wrap an already-constructed model — the test/bench entry point.
    [model_path] (default ["<memory>"]) is what a pathless [reload]
    will try to load. *)

val model : t -> Mrsl.Model.t
val epoch : t -> int
val model_path : t -> string
val config : t -> config
val telemetry : t -> Mrsl.Telemetry.t
val cache : t -> Mrsl.Posterior_cache.t

val reload : ?path:string -> t -> (Mrsl.Model.t, Mrsl.Error.t) result
(** Swap in the model at [path] (default: the current model path; a
    given [path] becomes the new current path on success). Returns the
    new model, or — leaving the old model serving — an error:
    [Model/serve.reload] when loading fails, [Model/serve.reload_schema]
    when the new model's schema differs from the old one's (live clients
    hold tuples in the old schema's shape; refusing the swap beats
    answering them against the wrong attribute domains). *)

type pressure = Normal | Cache_only
    (** The engine rung of the overload ladder. [Normal] computes.
        [Cache_only] answers single-missing requests from the posterior
        cache when the evidence signature is already there (payload
        bit-identical to the uncontended answer) and sheds everything
        else — cache misses and all multi-missing Gibbs work — with a
        [Scheduler/serve.shed] error line, counted as [serve.shed] (not
        [serve.errors]: shedding is the ladder working, not a failure).
        {!Server} selects the rung from admission-queue occupancy. *)

type outcome = Served | Failed | Shed | Expired | Cache_hit
    (** How a request's lifecycle ended, labelling the per-outcome
        latency histograms and the access log. [Served] = a computed
        answer (or a non-infer op's reply); [Failed] = an [ok:false]
        error line; [Shed] = refused by the overload ladder;
        [Cache_hit] = answered for free from the posterior cache on the
        [Cache_only] rung. [Expired] is assigned by {!Server} to
        requests whose deadline passed while queued — the engine never
        produces it. *)

val outcome_label : outcome -> string
(** The wire/metric label: [ok], [error], [shed], [deadline_exceeded],
    [cache_hit]. *)

type answer = { line : string; outcome : outcome }
(** One response: the newline-terminated wire line plus how it ended. *)

val handle_request : t -> Protocol.request -> string
(** Answer one request — [handle_batch] on a singleton batch, outcome
    discarded. *)

val handle_batch :
  ?pressure:pressure -> ?flows:int array -> t -> Protocol.request list ->
  answer list
(** Answer a batch: one {!answer} per request, in request order. Never
    raises — per-request failures (bad labels, arity mismatches,
    contained inference faults) become [ok:false] response lines with
    [outcome = Failed] and count [serve.errors]. [pressure] (default
    [Normal]) picks the overload rung described above. Counts
    [serve.requests] / [serve.batches], observes [serve.batch_size],
    times the batch under the [serve.batch] span and trace slice.

    [flows], when given, carries each slot's serve-request flow id
    ({!Mrsl.Trace.request_flow_id}; [0] or out-of-range = untracked):
    the batch slice emits a [serve.request] {!Mrsl.Trace.flow_end} per
    tracked slot (terminating the admission arrow {!Server} started),
    and a multi-missing request restarts the flow into
    {!Mrsl.Parallel.run_contained} so the arrow continues onto the
    worker domain's task slice — one arrow per distinct deduped tuple.
    Flow emission is observation-only; answers are bit-identical with
    or without it.

    [shutdown] requests are acknowledged ([kind:"bye"]) but transport
    shutdown is the caller's job — see {!wants_shutdown}. *)

val wants_shutdown : Protocol.request list -> bool
(** Whether the batch contains a [shutdown] request. *)
