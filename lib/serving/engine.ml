module Json = Mrsl.Telemetry.Json

type config = {
  seed : int;
  method_ : Mrsl.Voting.method_;
  gibbs : Mrsl.Gibbs.config;
  domains : int option;
  cache_bytes : int;
}

let default_config =
  {
    seed = 42;
    method_ = Mrsl.Voting.best_averaged;
    gibbs = Mrsl.Gibbs.default_config;
    domains = None;
    cache_bytes = Mrsl.Posterior_cache.default_max_bytes;
  }

type t = {
  mutable model : Mrsl.Model.t;
  mutable model_path : string;
  config : config;
  telemetry : Mrsl.Telemetry.t;
  cache : Mrsl.Posterior_cache.t;
}

let set_epoch_gauge t =
  Mrsl.Telemetry.gauge t.telemetry "serve.epoch"
    (float_of_int (Mrsl.Model.epoch t.model))

let of_model ?(telemetry = Mrsl.Telemetry.global) ~config
    ?(model_path = "<memory>") model =
  let cache =
    Mrsl.Posterior_cache.create ~max_bytes:config.cache_bytes ~telemetry ()
  in
  let t = { model; model_path; config; telemetry; cache } in
  (* Precompile the inference kernel so the first request never pays the
     build; a no-op when the compiled path is disabled. *)
  if Mrsl.Kernel.enabled () then
    ignore (Mrsl.Kernel.ensure ~telemetry model : Mrsl.Kernel.t);
  set_epoch_gauge t;
  t

let create ?telemetry ~config ~model_path () =
  of_model ?telemetry ~config ~model_path (Mrsl.Model_io.load model_path)

let model t = t.model
let epoch t = Mrsl.Model.epoch t.model
let model_path t = t.model_path
let config t = t.config
let telemetry t = t.telemetry
let cache t = t.cache

let reload ?path t =
  let path = Option.value path ~default:t.model_path in
  match Mrsl.Error.guard (fun () -> Mrsl.Model_io.load path) with
  | Error e ->
      Error
        (Mrsl.Error.make Mrsl.Error.Model ~code:"serve.reload"
           ~context:(("path", path) :: e.context)
           e.message)
  | Ok fresh ->
      if
        not
          (Relation.Schema.equal
             (Mrsl.Model.schema fresh)
             (Mrsl.Model.schema t.model))
      then
        Error
          (Mrsl.Error.make Mrsl.Error.Model ~code:"serve.reload_schema"
             ~context:[ ("path", path) ]
             "new model's schema differs from the serving schema; \
              refusing the swap")
      else begin
        (* Compile the fresh model's kernel BEFORE mutating any serving
           state: if compilation fails the old model, epoch, cache and
           kernel keep serving untouched; if it succeeds the epoch bump
           below can never serve a stale kernel (registry keys are
           process-unique epochs). *)
        match
          Mrsl.Error.guard (fun () ->
              if Mrsl.Kernel.enabled () then
                ignore (Mrsl.Kernel.ensure ~telemetry:t.telemetry fresh
                        : Mrsl.Kernel.t))
        with
        | Error e ->
            Error
              (Mrsl.Error.make Mrsl.Error.Model ~code:"serve.reload_kernel"
                 ~context:(("path", path) :: e.context)
                 e.message)
        | Ok () ->
        t.model <- fresh;
        t.model_path <- path;
        Mrsl.Posterior_cache.invalidate_stale t.cache ~current:fresh;
        if Mrsl.Kernel.enabled () then
          Mrsl.Kernel.invalidate_stale ~current:fresh;
        Mrsl.Telemetry.incr t.telemetry "serve.reloads";
        set_epoch_gauge t;
        Mrsl.Trace.instant ~cat:"serve"
          ~args:[ ("epoch", Mrsl.Trace.Int (Mrsl.Model.epoch fresh)) ]
          "serve.reload";
        Ok fresh
      end

(* ------------------------------------------------------------------ *)
(* Request decoding against the loaded schema *)

let input ~code fmt =
  Printf.ksprintf (fun msg -> Mrsl.Error.make Mrsl.Error.Input ~code msg) fmt

let decode_tuple model (labels : string option array) :
    (Relation.Tuple.t, Mrsl.Error.t) result =
  let schema = Mrsl.Model.schema model in
  let arity = Relation.Schema.arity schema in
  if Array.length labels <> arity then
    Error
      (input ~code:"serve.bad_tuple"
         "tuple has %d cells but the serving schema has %d attributes"
         (Array.length labels) arity)
  else begin
    let tup = Array.make arity None in
    let err = ref None in
    Array.iteri
      (fun i cell ->
        match (!err, cell) with
        | Some _, _ | None, None -> ()
        | None, Some label -> (
            let attr = Relation.Schema.attribute schema i in
            match Relation.Attribute.value_index attr label with
            | v -> tup.(i) <- Some v
            | exception Not_found ->
                err :=
                  Some
                    (input ~code:"serve.bad_tuple"
                       "unknown value %S for attribute %s" label
                       (Relation.Attribute.name attr))))
      labels;
    match !err with Some e -> Error e | None -> Ok tup
  end

(* ------------------------------------------------------------------ *)
(* Response payloads *)

let dist_json attr dist =
  Json.Obj
    (List.init (Prob.Dist.size dist) (fun v ->
         (Relation.Attribute.value_label attr v, Json.Float (Prob.Dist.prob dist v))))

let attr_json schema a dist =
  let attr = Relation.Schema.attribute schema a in
  Json.Obj
    [
      ("attr", Json.String (Relation.Attribute.name attr));
      ("index", Json.Int a);
      ("posterior", dist_json attr dist);
    ]

let posterior_line t ?id ~mode ?samples_used attrs =
  let fields =
    [
      ("epoch", Json.Int (epoch t));
      ("mode", Json.String mode);
      ("attrs", Json.List attrs);
    ]
    @
    match samples_used with
    | None -> []
    | Some n -> [ ("samples_used", Json.Int n) ]
  in
  Protocol.ok_line ?id ~kind:"posterior" fields

(* ------------------------------------------------------------------ *)
(* Outcomes *)

type outcome = Served | Failed | Shed | Expired | Cache_hit

let outcome_label = function
  | Served -> "ok"
  | Failed -> "error"
  | Shed -> "shed"
  | Expired -> "deadline_exceeded"
  | Cache_hit -> "cache_hit"

type answer = { line : string; outcome : outcome }

let served line = { line; outcome = Served }

let error_response t ?id e =
  Mrsl.Telemetry.incr t.telemetry "serve.errors";
  { line = Protocol.error_line ?id e; outcome = Failed }

let stats_line t ?id () =
  (* Refresh GC/memory counters so the stats op reflects now, not the
     last major collection. *)
  Mrsl.Resource.sample_current ();
  let c name = Json.Int (Mrsl.Telemetry.counter t.telemetry name) in
  let cs = Mrsl.Posterior_cache.stats t.cache in
  let phase key =
    match Mrsl.Telemetry.histogram t.telemetry key with
    | None -> Json.Obj [ ("count", Json.Int 0) ]
    | Some (s : Mrsl.Telemetry.summary) ->
        Json.Obj
          [
            ("count", Json.Int s.count);
            ("p50_ms", Json.Float (s.p50 *. 1000.));
            ("p99_ms", Json.Float (s.p99 *. 1000.));
            ("max_ms", Json.Float (s.max *. 1000.));
          ]
  in
  Protocol.ok_line ?id ~kind:"stats"
    [
      ("epoch", Json.Int (epoch t));
      ("path", Json.String t.model_path);
      ("model_size", Json.Int (Mrsl.Model.size t.model));
      ("requests", c "serve.requests");
      ("errors", c "serve.errors");
      ("overloaded", c "serve.overloaded");
      ("shed", c "serve.shed");
      ("deadline_exceeded", c "serve.deadline_exceeded");
      ("batches", c "serve.batches");
      ("reloads", c "serve.reloads");
      ("connections", c "serve.connections");
      ("conn_rejected", c "serve.conn_rejected");
      ("idle_killed", c "serve.idle_killed");
      ("out_buf_killed", c "serve.out_buf_killed");
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int cs.hits);
            ("misses", Json.Int cs.misses);
            ("entries", Json.Int cs.entries);
            ("dedup_fanout", Json.Int cs.dedup_fanout);
          ] );
      ( "phases",
        Json.Obj
          [
            ("queue_wait", phase "serve.queue_wait_seconds");
            ("compute", phase "serve.compute_seconds");
            ("flush_wait", phase "serve.flush_wait_seconds");
            ("total", phase "serve.latency_seconds");
          ] );
      ("resources", Mrsl.Resource.report ~cache:t.cache ());
    ]

(* ------------------------------------------------------------------ *)
(* Batch execution *)

type pressure = Normal | Cache_only

(* One decoded infer task, positioned in the response array. [flow] is
   the request's serve-flow id (0 = untracked). *)
type infer_task = {
  slot : int;
  req_id : Json.t option;
  tuple : Relation.Tuple.t;
  flow : int;
}

let shed_error =
  Mrsl.Error.make Mrsl.Error.Scheduler ~code:"serve.shed"
    "server overloaded — request shed without computing (cache-hit-only \
     degradation); retry later"

(* Sheds follow the [serve.overloaded] accounting style: their own
   counter, not [serve.errors] — shedding is the ladder working as
   designed, not a request failure. *)
let shed_response t ?id () =
  Mrsl.Telemetry.incr t.telemetry "serve.shed";
  { line = Protocol.error_line ?id shed_error; outcome = Shed }

let run_single t ~pressure responses tasks =
  match tasks with
  | [] -> ()
  | _ ->
      let { method_; _ } = t.config in
      let telemetry = t.telemetry in
      let model = t.model in
      (match pressure with
      | Cache_only -> ()
      | Normal ->
          (* Workload-level dedup: identical concurrent requests (same
             evidence signature) pay one posterior computation; the
             per-task lookups below fan it out (cache.dedup_fanout). *)
          ignore
            (Mrsl.Posterior_cache.prewarm t.cache model ~method_
               ~compute:(fun tup a ->
                 Mrsl.Infer_single.infer ~method_ ~telemetry model tup a)
               (List.map (fun task -> task.tuple) tasks)));
      List.iter
        (fun { slot; req_id = id; tuple; _ } ->
          let a =
            match Relation.Tuple.missing tuple with
            | [ a ] -> a
            | _ -> assert false
          in
          responses.(slot) <-
            (match pressure with
            | Cache_only -> (
                (* Degraded rung: answer for free from the cache —
                   payload identical to the uncontended path — or shed.
                   Never compute under pressure. *)
                match
                  Mrsl.Posterior_cache.find t.cache model ~method_ tuple a
                with
                | Some dist ->
                    {
                      line =
                        posterior_line t ?id ~mode:"exact"
                          [ attr_json (Mrsl.Model.schema model) a dist ];
                      outcome = Cache_hit;
                    }
                | None -> shed_response t ?id ())
            | Normal -> (
                match
                  Mrsl.Infer_single.infer_result ~method_ ~telemetry
                    ~cache:t.cache model tuple a
                with
                | Ok dist ->
                    served
                      (posterior_line t ?id ~mode:"exact"
                         [ attr_json (Mrsl.Model.schema model) a dist ])
                | Error e -> error_response t ?id e)))
        tasks

let run_multi t ~pressure responses tasks =
  match (tasks, pressure) with
  | [], _ -> ()
  | _, Cache_only ->
      (* Gibbs has no cheap cached answer (the posterior cache keys
         single-attribute votes); under pressure multi-missing work is
         always shed. *)
      List.iter
        (fun { slot; req_id = id; _ } ->
          responses.(slot) <- shed_response t ?id ())
        tasks
  | _, Normal ->
      let { seed; method_; gibbs; domains; _ } = t.config in
      let model = t.model in
      let schema = Mrsl.Model.schema model in
      (* Compute once per distinct tuple; identical requests in the
         batch share the result. Each tuple is its own one-element
         workload so its estimate is independent of batch composition
         (and therefore bit-identical to a one-shot CLI run). *)
      let distinct = Relation.Tuple.Table.create 8 in
      List.iter
        (fun { tuple; flow; _ } ->
          if not (Relation.Tuple.Table.mem distinct tuple) then
            (* Only the first request of a deduped tuple threads its flow
               into the worker pool — one arrow per computation, and the
               per-id start/finish counts stay balanced. *)
            let request_flow = if flow <> 0 then Some flow else None in
            Relation.Tuple.Table.add distinct tuple
              (lazy
                ((match request_flow with
                 | Some id ->
                     Mrsl.Trace.flow_start ~cat:"serve" ~id "serve.request"
                 | None -> ());
                 let contained =
                   Mrsl.Parallel.run_contained ~config:gibbs ~method_
                     ~cache:t.cache ?domains ~telemetry:t.telemetry
                     ~policy:Mrsl.Parallel.Skip_and_report ?request_flow
                     ~seed model [ tuple ]
                 in
                 match contained.faults with
                 | fault :: _ -> Error fault.error
                 | [] -> (
                     match contained.result.estimates with
                     | [ (_, est) ] -> Ok est
                     | _ ->
                         Error
                           (Mrsl.Error.make Mrsl.Error.Inference
                              ~code:"serve.no_estimate"
                              "inference produced no estimate")))))
        tasks;
      List.iter
        (fun { slot; req_id = id; tuple; _ } ->
          responses.(slot) <-
            (match Lazy.force (Relation.Tuple.Table.find distinct tuple) with
            | Ok (est : Mrsl.Gibbs.estimate) ->
                let attrs =
                  List.map
                    (fun a -> attr_json schema a (Mrsl.Gibbs.marginal est a))
                    est.missing
                in
                served
                  (posterior_line t ?id ~mode:"gibbs"
                     ~samples_used:est.samples_used attrs)
            | Error e -> error_response t ?id e))
        tasks

(* A segment is a maximal run of requests with no reload between them:
   everything in it is answered by one model generation. *)
let run_segment t ~pressure ~flow_of responses segment =
  let singles = ref [] and multis = ref [] in
  List.iter
    (fun (slot, (req : Protocol.request)) ->
      let id = req.id in
      match req.op with
      | Protocol.Ping ->
          responses.(slot) <-
            served
              (Protocol.ok_line ?id ~kind:"pong"
                 [ ("epoch", Json.Int (epoch t)) ])
      | Protocol.Stats -> responses.(slot) <- served (stats_line t ?id ())
      | Protocol.Shutdown ->
          responses.(slot) <- served (Protocol.ok_line ?id ~kind:"bye" [])
      | Protocol.Reload _ -> assert false (* segment boundary *)
      | Protocol.Infer labels -> (
          match decode_tuple t.model labels with
          | Error e -> responses.(slot) <- error_response t ?id e
          | Ok tuple -> (
              let task = { slot; req_id = id; tuple; flow = flow_of slot } in
              match Relation.Tuple.missing_count tuple with
              | 0 ->
                  responses.(slot) <-
                    error_response t ?id
                      (input ~code:"serve.complete_tuple"
                         "tuple has no missing values — nothing to infer")
              | 1 -> singles := task :: !singles
              | _ -> multis := task :: !multis)))
    (List.rev segment);
  run_single t ~pressure responses (List.rev !singles);
  run_multi t ~pressure responses (List.rev !multis)

let handle_batch ?(pressure = Normal) ?(flows = [||]) t reqs =
  match reqs with
  | [] -> []
  | _ ->
      let n = List.length reqs in
      let flow_of slot =
        if slot < Array.length flows then flows.(slot) else 0
      in
      Mrsl.Telemetry.incr ~by:n t.telemetry "serve.requests";
      Mrsl.Telemetry.incr t.telemetry "serve.batches";
      Mrsl.Telemetry.observe t.telemetry "serve.batch_size" (float_of_int n);
      Mrsl.Trace.complete ~cat:"serve"
        ~args:[ ("requests", Mrsl.Trace.Int n) ]
        "serve.batch"
        (fun () ->
          Mrsl.Telemetry.span t.telemetry "serve.batch" (fun () ->
              (* Terminate each admitted request's admission arrow inside
                 the batch slice — the Perfetto view shows the request
                 landing in the batch that answered it. *)
              for slot = 0 to n - 1 do
                let id = flow_of slot in
                if id <> 0 then
                  Mrsl.Trace.flow_end ~cat:"serve" ~id "serve.request"
              done;
              let responses = Array.make n (served "") in
              (* Split at reloads: requests ahead of a reload are
                 answered by the old model, requests behind it by the
                 new one — a swap never drops in-flight requests. *)
              let segment = ref [] in
              List.iteri
                (fun slot (req : Protocol.request) ->
                  match req.op with
                  | Protocol.Reload path ->
                      run_segment t ~pressure ~flow_of responses !segment;
                      segment := [];
                      responses.(slot) <-
                        (match reload ?path t with
                        | Ok fresh ->
                            served
                              (Protocol.ok_line ?id:req.id ~kind:"reloaded"
                                 [
                                   ("epoch", Json.Int (Mrsl.Model.epoch fresh));
                                   ("path", Json.String t.model_path);
                                   ( "model_size",
                                     Json.Int (Mrsl.Model.size fresh) );
                                 ])
                        | Error e -> error_response t ?id:req.id e)
                  | _ -> segment := (slot, req) :: !segment)
                reqs;
              run_segment t ~pressure ~flow_of responses !segment;
              Array.to_list responses))

let handle_request t req =
  match handle_batch t [ req ] with
  | [ answer ] -> answer.line
  | _ -> assert false

let wants_shutdown reqs =
  List.exists (fun (r : Protocol.request) -> r.op = Protocol.Shutdown) reqs
