(* Matchmaking at scale: the paper's motivating scenario (a dating-site
   profile table) on a realistically sized synthetic population.

   A hand-built Bayesian network encodes plausible dependencies
   (age → income → net worth; education → income), a few thousand profiles
   are sampled, 30% of them lose one or two attribute values, and the MRSL
   pipeline fills the gaps. Because the generating network is known we can
   score the inferred distributions against the exact posterior — the same
   protocol as the paper's Section VI. The example also contrasts the four
   voting methods and the two workload sampling strategies.

   Run with: dune exec examples/matchmaking.exe *)

let topology =
  (* age, edu are roots; inc depends on both; nw depends on inc and age. *)
  Bayesnet.Topology.make
    ~names:[| "age"; "edu"; "inc"; "nw" |]
    ~cards:[| 3; 3; 2; 2 |]
    ~parents:[| [||]; [||]; [| 0; 1 |]; [| 2; 0 |] |]

let dist ws = Prob.Dist.of_weights ws

let network =
  (* Hand-tuned CPTs: older and better-educated people earn more; earners
     accumulate net worth. *)
  Bayesnet.Network.make topology
    [|
      [| dist [| 0.4; 0.35; 0.25 |] |];
      [| dist [| 0.45; 0.4; 0.15 |] |];
      (* P(inc | age, edu): rows in mixed-radix order over (age, edu). *)
      [|
        dist [| 0.9; 0.1 |]; dist [| 0.8; 0.2 |]; dist [| 0.6; 0.4 |];
        dist [| 0.7; 0.3 |]; dist [| 0.5; 0.5 |]; dist [| 0.3; 0.7 |];
        dist [| 0.6; 0.4 |]; dist [| 0.35; 0.65 |]; dist [| 0.15; 0.85 |];
      |];
      (* P(nw | inc, age). *)
      [|
        dist [| 0.95; 0.05 |]; dist [| 0.85; 0.15 |]; dist [| 0.7; 0.3 |];
        dist [| 0.6; 0.4 |]; dist [| 0.35; 0.65 |]; dist [| 0.15; 0.85 |];
      |]
    |]

let () =
  let rng = Prob.Rng.create 7 in
  let population = Bayesnet.Network.sample_instance rng network 6000 in
  let train, test = Relation.Instance.split rng ~train_fraction:0.9 population in
  let masked = Relation.Instance.mask_uniform rng ~max_missing:2 test in
  let relation = Relation.Instance.append train masked in
  Format.printf "profiles: %d complete + %d incomplete@.@."
    (Array.length (Relation.Instance.complete_part relation))
    (Array.length (Relation.Instance.incomplete_part relation));

  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.005 }
      relation
  in
  Format.printf "MRSL model: %d meta-rules@.@." (Mrsl.Model.size model);

  (* Score the four voting methods on the single-missing tuples, against
     the exact posterior of the generating network. *)
  let singles =
    Array.to_list (Relation.Instance.incomplete_part masked)
    |> List.filter (fun t -> Relation.Tuple.missing_count t = 1)
  in
  Format.printf "single-attribute accuracy on %d tuples:@."
    (List.length singles);
  List.iter
    (fun m ->
      let kl = ref 0. and top1 = ref 0 in
      List.iter
        (fun tup ->
          let a = List.hd (Relation.Tuple.missing tup) in
          let truth = Bayesnet.Network.posterior_single network tup a in
          let est = Mrsl.Infer_single.infer ~method_:m model tup a in
          kl := !kl +. Prob.Divergence.kl truth est;
          if Prob.Dist.mode truth = Prob.Dist.mode est then incr top1)
        singles;
      let n = float_of_int (List.length singles) in
      Format.printf "  %-14s KL %.4f   top-1 %.1f%%@."
        (Mrsl.Voting.method_name m)
        (!kl /. n)
        (100. *. float_of_int !top1 /. n))
    Mrsl.Voting.all_methods;
  Format.printf "@.";

  (* Multi-attribute inference over the whole incomplete workload: compare
     tuple-at-a-time with the tuple-DAG optimization (Section V-B). *)
  let workload = Array.to_list (Relation.Instance.incomplete_part masked) in
  let sampler = Mrsl.Gibbs.sampler model in
  let config = { Mrsl.Gibbs.burn_in = 100; samples = 500 } in
  let run strategy =
    Mrsl.Workload.run ~config ~strategy (Prob.Rng.create 13) sampler workload
  in
  let baseline = run Mrsl.Workload.Tuple_at_a_time in
  let dag = run Mrsl.Workload.Tuple_dag in
  Format.printf "workload of %d distinct incomplete tuples:@."
    (List.length baseline.estimates);
  let report name (r : Mrsl.Workload.result) =
    Format.printf "  %-16s %7d sampled points   %.3fs   (%d shared)@." name
      r.stats.sweeps r.stats.wall_seconds r.stats.shared
  in
  report "tuple-at-a-time" baseline;
  report "tuple-DAG" dag;

  (* Accuracy parity between the strategies (Section VI-D). *)
  let table = Relation.Tuple.Table.create 64 in
  List.iter
    (fun (t, e) -> Relation.Tuple.Table.replace table t e)
    baseline.estimates;
  let tv = ref 0. in
  List.iter
    (fun (t, (e : Mrsl.Gibbs.estimate)) ->
      let (b : Mrsl.Gibbs.estimate) = Relation.Tuple.Table.find table t in
      tv := !tv +. Prob.Divergence.total_variation b.joint e.joint)
    dag.estimates;
  Format.printf "  mean TV between strategies: %.4f@.@."
    (!tv /. float_of_int (List.length dag.estimates));

  (* Finally: who are the likely wealthy matches? *)
  let db =
    Probdb.Pdb.derive ~config (Prob.Rng.create 13) model masked
  in
  let schema = Bayesnet.Topology.schema topology in
  let wealthy =
    Probdb.Predicate.conj
      [
        Probdb.Predicate.eq_label schema "nw" "v1";
        Probdb.Predicate.eq_label schema "inc" "v1";
      ]
  in
  Format.printf
    "derived DB over the test profiles: E[#wealthy matches] = %.1f@."
    (Probdb.Pdb.expected_count db wealthy)
