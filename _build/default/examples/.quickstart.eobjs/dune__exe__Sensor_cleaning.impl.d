examples/sensor_cleaning.ml: Array Bayesnet Format List Mrsl Prob Probdb Relation
