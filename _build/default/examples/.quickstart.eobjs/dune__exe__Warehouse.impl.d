examples/warehouse.ml: Array Filename Format List Mrsl Prob Probdb Relation Sys
