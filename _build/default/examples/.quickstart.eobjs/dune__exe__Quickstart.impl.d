examples/quickstart.ml: Array Format List Mrsl Prob Probdb Relation
