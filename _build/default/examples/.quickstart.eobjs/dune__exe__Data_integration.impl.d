examples/data_integration.ml: Array Bayesnet Float Format List Mrsl Prob Probdb Relation
