examples/matchmaking.ml: Array Bayesnet Format List Mrsl Prob Probdb Relation
