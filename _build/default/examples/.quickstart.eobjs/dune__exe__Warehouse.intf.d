examples/warehouse.mli:
