examples/matchmaking.mli:
