examples/quickstart.mli:
