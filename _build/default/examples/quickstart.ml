(* Quickstart: the paper's running example (Fig 1).

   Builds the 17-tuple matchmaking relation, learns an MRSL model from its
   complete part, prints the MRSL for [age] (the paper's Fig 2), infers the
   single missing attribute of t1 under all four voting methods (Section
   I-B), and derives the joint distribution ∆t12 for the two missing values
   of t12 (the call-out of Fig 1).

   Run with: dune exec examples/quickstart.exe *)

let schema =
  Relation.Schema.make
    [
      Relation.Attribute.make "age" [ "20"; "30"; "40" ];
      Relation.Attribute.make "edu" [ "HS"; "BS"; "MS" ];
      Relation.Attribute.make "inc" [ "50K"; "100K" ];
      Relation.Attribute.make "nw" [ "100K"; "500K" ];
    ]

let csv =
  "age,edu,inc,nw\n\
   20,HS,?,?\n\
   20,BS,50K,100K\n\
   20,?,50K,?\n\
   20,HS,100K,500K\n\
   20,?,?,?\n\
   20,HS,50K,100K\n\
   20,HS,50K,500K\n\
   ?,HS,?,?\n\
   30,BS,100K,100K\n\
   30,?,100K,?\n\
   30,HS,?,?\n\
   30,MS,?,?\n\
   40,BS,100K,100K\n\
   40,HS,?,?\n\
   40,BS,50K,500K\n\
   40,HS,?,500K\n\
   40,HS,100K,500K\n"

let () =
  let relation = Relation.Csv_io.read_string ~schema csv in
  Format.printf "Relation R: %d tuples (%d complete, %d incomplete)@.@."
    (Relation.Instance.size relation)
    (Array.length (Relation.Instance.complete_part relation))
    (Array.length (Relation.Instance.incomplete_part relation));

  (* Learning phase (Algorithm 1). The toy relation has only 8 points, so
     we use a low support threshold. *)
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.1 }
      relation
  in
  let age = Relation.Schema.index_of schema "age" in
  Format.printf "MRSL for age (cf. paper Fig 2):@.%a@.@."
    (Mrsl.Lattice.pp_named schema)
    (Mrsl.Model.lattice model age);

  (* Single-attribute inference (Algorithm 2) for
     t1 = ⟨age=?, edu=HS, inc=50K, nw=500K⟩ — the Section I-B example. *)
  let t1 : Relation.Tuple.t = [| None; Some 0; Some 0; Some 1 |] in
  Format.printf "Estimates of P(age) for t1 = %a:@."
    (Relation.Tuple.pp schema) t1;
  List.iter
    (fun m ->
      let d = Mrsl.Infer_single.infer ~method_:m model t1 age in
      Format.printf "  %-14s %a@." (Mrsl.Voting.method_name m) Prob.Dist.pp d)
    Mrsl.Voting.all_methods;
  Format.printf "@.";

  (* Multi-attribute inference (Section V) for
     t12 = ⟨30, MS, ?, ?⟩ — the ∆t12 call-out of Fig 1. *)
  let t12 : Relation.Tuple.t = [| Some 1; Some 2; None; None |] in
  let sampler = Mrsl.Gibbs.sampler model in
  let est =
    Mrsl.Gibbs.run
      ~config:{ burn_in = 200; samples = 5000 }
      (Prob.Rng.create 2011) sampler t12
  in
  let block = Probdb.Block.of_estimate est in
  Format.printf
    "∆t12 — joint distribution over (inc, nw) for t12 = %a@.(with only 8 \
     training points the estimate is sharper than the paper's call-out, \
     whose numbers come from a larger hypothetical dataset):@."
    (Relation.Tuple.pp schema) t12;
  List.iteri
    (fun i (a : Probdb.Block.alternative) ->
      Format.printf "  t12.%d %a  prob %.2f@." (i + 1)
        (Relation.Tuple.pp schema)
        (Relation.Tuple.of_point a.point)
        a.prob)
    block.alternatives;

  (* The derived rows form a block of the disjoint-independent model. *)
  let db =
    Probdb.Pdb.derive
      ~config:{ burn_in = 100; samples = 2000 }
      (Prob.Rng.create 2011) model relation
  in
  Format.printf "@.Derived probabilistic database: %d blocks, %.4g worlds@."
    (Probdb.Pdb.block_count db)
    (Probdb.Pdb.possible_worlds db);
  let rich = Probdb.Predicate.eq_label schema "nw" "500K" in
  Format.printf "E[#tuples with nw=500K] = %.2f; P(∃ nw=500K) = %.3f@."
    (Probdb.Pdb.expected_count db rich)
    (Probdb.Pdb.prob_exists db rich)
