(* Warehouse analytics: cross-relation correlations and lazy queries.

   Demonstrates the extensions around the core pipeline:
   - a primary–foreign-key join (Section I-B: correlations across relations
     become learnable in the joined relation);
   - saving the learned model and reloading it for inference (off-line
     learning, Section VI-B);
   - the lazy query-targeted view (Section VIII future work): only blocks
     whose completions a query depends on are ever sampled;
   - Gibbs convergence diagnostics for the sampler settings.

   Scenario: an orders table references a small product dimension. Order
   rows from one ingest batch lost their [channel] field; product rows are
   complete. Analysts ask channel × product-tier questions that need the
   joined, imputed relation.

   Run with: dune exec examples/warehouse.exe *)

let product_schema =
  Relation.Schema.make
    [
      Relation.Attribute.make "sku" [ "s0"; "s1"; "s2"; "s3" ];
      Relation.Attribute.make "tier" [ "budget"; "premium" ];
      Relation.Attribute.make "bulky" [ "no"; "yes" ];
    ]

let products =
  Relation.Instance.make product_schema
    [
      [| Some 0; Some 0; Some 0 |];
      [| Some 1; Some 0; Some 1 |];
      [| Some 2; Some 1; Some 0 |];
      [| Some 3; Some 1; Some 1 |];
    ]

let order_schema =
  Relation.Schema.make
    [
      Relation.Attribute.make "sku" [ "s0"; "s1"; "s2"; "s3" ];
      Relation.Attribute.make "region" [ "east"; "west" ];
      Relation.Attribute.make "channel" [ "web"; "store" ];
    ]

(* Order generator: premium SKUs skew to the web channel; bulky products
   skew to stores; region is independent. The generator knows the product
   table, the learner must rediscover the correlation through the join. *)
let generate_orders rng n =
  let tier sku = if sku >= 2 then 1 else 0 in
  let bulky sku = sku land 1 in
  List.init n (fun _ ->
      let sku = Prob.Rng.int rng 4 in
      let region = Prob.Rng.int rng 2 in
      let p_web =
        match (tier sku, bulky sku) with
        | 1, 0 -> 0.9
        | 1, 1 -> 0.6
        | 0, 0 -> 0.5
        | _ -> 0.2
      in
      let channel = if Prob.Rng.float rng < p_web then 0 else 1 in
      [| sku; region; channel |])

let () =
  let rng = Prob.Rng.create 31 in
  let orders_points = generate_orders rng 4000 in
  (* One ingest batch (25%) lost the channel column. *)
  let orders =
    Relation.Instance.make order_schema
      (List.mapi
         (fun i p ->
           let t = Relation.Tuple.of_point p in
           if i mod 4 = 0 then t.(2) <- None;
           t)
         orders_points)
  in
  Format.printf "orders: %d rows, %d missing channel@."
    (Relation.Instance.size orders)
    (Array.length (Relation.Instance.incomplete_part orders));

  (* Join against the product dimension so tier/bulky become evidence. *)
  let joined =
    Relation.Join.primary_foreign ~fact:orders ~fk:0 ~dim:products ~pk:0
  in
  let schema = Relation.Instance.schema joined in
  Format.printf "joined schema: %a@.@." Relation.Schema.pp schema;

  (* Learn, persist, reload (the off-line learning workflow). *)
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.005 }
      joined
  in
  let path = Filename.temp_file "warehouse" ".mrsl" in
  Mrsl.Model_io.save path model;
  let model = Mrsl.Model_io.load path in
  Sys.remove path;
  Format.printf "model: %d meta-rules (saved and reloaded)@.@."
    (Mrsl.Model.size model);

  (* Check the sampler is trustworthy before answering questions. *)
  let sampler = Mrsl.Gibbs.sampler model in
  let sample_tuple =
    (Relation.Instance.incomplete_part joined).(0)
  in
  let report =
    Mrsl.Diagnostics.diagnose ~chains:4 ~draws:400 ~burn_in:50
      (Prob.Rng.create 8) sampler sample_tuple
  in
  Format.printf "Gibbs diagnostics on a sample tuple: R-hat %.4f, ESS %.0f (%s)@.@."
    report.psrf_max report.ess_min
    (if Mrsl.Diagnostics.converged report then "converged" else "not converged");

  (* Lazy view: ask channel-mix questions; blocks are sampled on demand. *)
  let view =
    Probdb.Lazy_pdb.create
      ~config:{ Mrsl.Gibbs.burn_in = 50; samples = 400 }
      (Prob.Rng.create 17) model joined
  in
  let premium_web =
    Probdb.Predicate.conj
      [
        Probdb.Predicate.eq_label schema "sku_tier" "premium";
        Probdb.Predicate.eq_label schema "channel" "web";
      ]
  in
  let expected = Probdb.Lazy_pdb.expected_count view premium_web in
  Format.printf "E[#premium web orders] = %.1f@." expected;
  Format.printf "materialized %d of %d incomplete blocks for that query@."
    (Probdb.Lazy_pdb.materialized_count view)
    (Array.length (Relation.Instance.incomplete_part joined));

  (* Ground truth from the generator, for honesty. *)
  let truth =
    List.fold_left
      (fun acc p -> if p.(0) >= 2 && p.(2) = 0 then acc +. 1. else acc)
      0. orders_points
  in
  Format.printf "(generator's true count: %.0f)@." truth
