(* Scientific-data cleaning: noisy sensor logs with dropped readings.

   The paper's introduction motivates MRSL with scientific data management,
   where "experimental results are often noisy or missing". This example
   simulates a greenhouse sensor deployment: each record carries bucketed
   readings (hour-of-day, temperature, humidity, light, ventilation state)
   with strong physical correlations. Sensors drop readings in bursts — a
   *correlated* missingness pattern, unlike the benchmark's uniform masking
   — and MRSL still recovers calibrated distributions because learning only
   ever uses the complete records.

   Run with: dune exec examples/sensor_cleaning.exe *)

let topology =
  (* hour → light → temperature → ventilation; humidity ← temperature. *)
  Bayesnet.Topology.make
    ~names:[| "hour"; "light"; "temp"; "humid"; "vent" |]
    ~cards:[| 4; 3; 3; 3; 2 |]
    ~parents:[| [||]; [| 0 |]; [| 1 |]; [| 2 |]; [| 2 |] |]

let dist ws = Prob.Dist.of_weights ws

let network =
  Bayesnet.Network.make topology
    [|
      [| dist [| 0.25; 0.25; 0.25; 0.25 |] |];
      (* light | hour: night, morning, noon, evening. *)
      [|
        dist [| 0.9; 0.08; 0.02 |]; dist [| 0.2; 0.6; 0.2 |];
        dist [| 0.02; 0.18; 0.8 |]; dist [| 0.3; 0.55; 0.15 |];
      |];
      (* temp | light. *)
      [|
        dist [| 0.7; 0.25; 0.05 |]; dist [| 0.25; 0.55; 0.2 |];
        dist [| 0.05; 0.35; 0.6 |];
      |];
      (* humid | temp: hotter is drier. *)
      [|
        dist [| 0.1; 0.3; 0.6 |]; dist [| 0.25; 0.5; 0.25 |];
        dist [| 0.6; 0.3; 0.1 |];
      |];
      (* vent | temp: fans kick in when hot. *)
      [| dist [| 0.95; 0.05 |]; dist [| 0.7; 0.3 |]; dist [| 0.15; 0.85 |] |]
    |]

(* Bursty sensor dropout: each record loses the temp+humid pair with
   probability [p_pair] (a failing combined sensor), and any single reading
   with probability [p_single]. *)
let burst_mask rng p_pair p_single inst =
  let schema = Relation.Instance.schema inst in
  let tuples = Relation.Instance.tuples inst in
  Array.iteri
    (fun i tup ->
      let tup = Array.copy tup in
      if Prob.Rng.float rng < p_pair then begin
        tup.(2) <- None;
        tup.(3) <- None
      end;
      if Prob.Rng.float rng < p_single then begin
        let a = Prob.Rng.int rng (Relation.Schema.arity schema) in
        tup.(a) <- None
      end;
      tuples.(i) <- tup)
    tuples;
  Relation.Instance.make schema (Array.to_list tuples)

let () =
  let rng = Prob.Rng.create 42 in
  let log = Bayesnet.Network.sample_instance rng network 8000 in
  let observed = burst_mask rng 0.08 0.05 log in
  let complete = Array.length (Relation.Instance.complete_part observed) in
  let incomplete = Array.length (Relation.Instance.incomplete_part observed) in
  Format.printf "sensor log: %d records (%d intact, %d with dropouts)@.@."
    (Relation.Instance.size observed)
    complete incomplete;

  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.002 }
      observed
  in
  Format.printf "learned %d meta-rules from the intact records@.@."
    (Mrsl.Model.size model);

  (* Derive the probabilistic database for the whole log. *)
  let db =
    Probdb.Pdb.derive
      ~config:{ Mrsl.Gibbs.burn_in = 100; samples = 500 }
      (Prob.Rng.create 9) model observed
  in
  let schema = Bayesnet.Topology.schema topology in

  (* Accuracy on the correlated temp+humid dropouts, against the exact
     posterior of the simulated greenhouse. *)
  let pair_dropouts =
    Array.to_list (Relation.Instance.incomplete_part observed)
    |> List.filter (fun t -> t.(2) = None && t.(3) = None)
  in
  let sampler = Mrsl.Gibbs.sampler model in
  let kl = ref 0. and n = ref 0 in
  List.iter
    (fun tup ->
      if !n < 100 then begin
        let _, truth = Bayesnet.Network.posterior_joint network tup in
        let est =
          Mrsl.Gibbs.run
            ~config:{ burn_in = 100; samples = 1000 }
            (Prob.Rng.create !n) sampler tup
        in
        kl := !kl +. Prob.Divergence.kl truth est.joint;
        incr n
      end)
    pair_dropouts;
  Format.printf
    "paired temp+humid dropouts: mean KL vs true posterior = %.4f (%d records)@.@."
    (!kl /. float_of_int (max 1 !n))
    !n;

  (* Queries a greenhouse operator would run, answered with calibrated
     uncertainty instead of discarded rows. *)
  let hot = Probdb.Predicate.eq_label schema "temp" "v2" in
  let hot_and_fans_off =
    Probdb.Predicate.And (hot, Probdb.Predicate.eq_label schema "vent" "v0")
  in
  Format.printf "E[#hot readings]                = %.1f@."
    (Probdb.Pdb.expected_count db hot);
  Format.printf "E[#hot readings with fans off]  = %.1f@."
    (Probdb.Pdb.expected_count db hot_and_fans_off);
  Format.printf "P(any hot-with-fans-off record) = %.4f@."
    (Probdb.Pdb.prob_exists db hot_and_fans_off);

  (* Compare with the naive fix of dropping incomplete rows. *)
  let naive =
    Array.fold_left
      (fun acc p -> if Probdb.Predicate.eval hot p then acc +. 1. else acc)
      0.
      (Relation.Instance.complete_part observed)
  in
  Format.printf
    "(dropping incomplete rows would report %.0f hot readings — an \
     undercount)@."
    naive
