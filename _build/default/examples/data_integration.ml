(* Data integration: merging sources with mismatched schemas.

   The paper's other motivating scenario is data integration, where merged
   sources disagree on which attributes they record. Here, source A is a
   full customer table; source B records the same kind of customers but
   never captured the [segment] column and has spotty [region] coverage.
   After the union, every B row is an incomplete tuple; the MRSL model
   learned from A's complete rows imputes calibrated distributions for B,
   and the result is queried as one probabilistic database.

   Run with: dune exec examples/data_integration.exe *)

let topology =
  (* region and age_band drive plan; plan and age_band drive segment. *)
  Bayesnet.Topology.make
    ~names:[| "region"; "age_band"; "plan"; "segment" |]
    ~cards:[| 3; 3; 3; 2 |]
    ~parents:[| [||]; [||]; [| 0; 1 |]; [| 2; 1 |] |]

let network = Bayesnet.Network.generate (Prob.Rng.create 77) ~alpha:0.4 topology

let () =
  let rng = Prob.Rng.create 123 in
  let schema = Bayesnet.Topology.schema topology in

  (* Source A: 5000 fully observed customers. *)
  let source_a = Bayesnet.Network.sample_instance rng network 5000 in

  (* Source B: 1200 customers; [segment] was never recorded, [region] is
     missing for a third of the rows. *)
  let source_b_points = Bayesnet.Network.sample_instance rng network 1200 in
  let source_b =
    Relation.Instance.make schema
      (Array.to_list (Relation.Instance.tuples source_b_points)
      |> List.map (fun tup ->
             let tup = Array.copy tup in
             tup.(3) <- None;
             if Prob.Rng.float rng < 0.33 then tup.(0) <- None;
             tup))
  in
  let merged = Relation.Instance.append source_a source_b in
  Format.printf
    "merged relation: %d rows (%d complete from source A, %d incomplete \
     from source B)@.@."
    (Relation.Instance.size merged)
    (Array.length (Relation.Instance.complete_part merged))
    (Array.length (Relation.Instance.incomplete_part merged));

  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.002 }
      merged
  in
  let db =
    Probdb.Pdb.derive
      ~config:{ Mrsl.Gibbs.burn_in = 100; samples = 600 }
      (Prob.Rng.create 5) model merged
  in

  (* Marketing wants segment counts across the merged base. Source B alone
     would contribute nothing (its segment column is empty); the derived
     database contributes expectations instead. *)
  let seg v = Probdb.Predicate.eq_label schema "segment" ("v" ^ string_of_int v) in
  Format.printf "segment totals over the merged base:@.";
  for v = 0 to 1 do
    Format.printf "  E[#segment=v%d] = %.1f@." v
      (Probdb.Pdb.expected_count db (seg v))
  done;

  (* Ground truth check: how close are the imputed segment counts for the B
     rows to the true (hidden) ones? *)
  let true_b =
    Array.fold_left
      (fun acc p -> if p.(3) = 1 then acc +. 1. else acc)
      0.
      (Relation.Instance.complete_part source_b_points)
  in
  let blocks = Probdb.Pdb.blocks db in
  let imputed_b = ref 0. in
  Array.iteri
    (fun i _ ->
      if i >= 5000 then
        imputed_b := !imputed_b +. Probdb.Pdb.tuple_prob db (seg 1) i)
    blocks;
  Format.printf
    "@.source B, segment=v1: true count %.0f vs imputed expectation %.1f@."
    true_b !imputed_b;

  (* Per-row: show the three most uncertain imputations. *)
  let uncertainty (b : Probdb.Block.t) =
    match b.alternatives with
    | top :: _ -> 1. -. top.prob
    | [] -> 0.
  in
  let b_blocks =
    Array.to_list (Array.sub blocks 5000 (Array.length blocks - 5000))
  in
  let most_uncertain =
    List.sort (fun a b -> Float.compare (uncertainty b) (uncertainty a)) b_blocks
    |> List.filteri (fun i _ -> i < 3)
  in
  Format.printf "@.most uncertain source-B rows:@.";
  List.iter
    (fun (b : Probdb.Block.t) ->
      Format.printf "  %a -> top completion %a (prob %.2f of %d alternatives)@."
        (Relation.Tuple.pp schema) b.source (Relation.Tuple.pp schema)
        (Relation.Tuple.of_point (Probdb.Block.top b).point)
        (Probdb.Block.top b).prob
        (Probdb.Block.alternative_count b))
    most_uncertain
