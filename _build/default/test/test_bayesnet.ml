(* Tests for the Bayesian-network substrate: topologies, networks (forward
   sampling + exact posteriors), and the Table I catalog. *)

open Helpers

let test_chain_shape () =
  let t = Bayesnet.Topology.chain [ 2; 2; 2 ] in
  Alcotest.(check int) "size" 3 (Bayesnet.Topology.size t);
  Alcotest.(check (array int)) "parents of 1" [| 0 |]
    (Bayesnet.Topology.parents t 1);
  Alcotest.(check (array int)) "children of 0" [| 1 |]
    (Bayesnet.Topology.children t 0);
  Alcotest.(check int) "depth counts nodes" 3 (Bayesnet.Topology.depth t);
  Alcotest.(check int) "edges" 2 (Bayesnet.Topology.edge_count t)

let test_independent_shape () =
  let t = Bayesnet.Topology.independent [ 2; 3 ] in
  Alcotest.(check int) "depth 0" 0 (Bayesnet.Topology.depth t);
  Alcotest.(check int) "edges" 0 (Bayesnet.Topology.edge_count t)

let test_crown_shape () =
  let t = Bayesnet.Topology.crown [ 2; 2; 2; 2 ] in
  Alcotest.(check int) "depth 2" 2 (Bayesnet.Topology.depth t);
  Alcotest.(check (array int)) "roots have no parents" [||]
    (Bayesnet.Topology.parents t 0);
  Alcotest.(check int) "children have two parents" 2
    (Array.length (Bayesnet.Topology.parents t 2))

let test_layered_shape () =
  let t = Bayesnet.Topology.layered ~layers:[ 2; 2; 1 ] [ 2; 2; 2; 2; 2 ] in
  Alcotest.(check int) "depth = layers" 3 (Bayesnet.Topology.depth t);
  Alcotest.(check int) "last node has parents in layer 2" 2
    (Array.length (Bayesnet.Topology.parents t 4))

let test_topology_validation () =
  let mk parents =
    Bayesnet.Topology.make ~names:[| "a"; "b" |] ~cards:[| 2; 2 |] ~parents
  in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Topology.make: self-loop") (fun () ->
      ignore (mk [| [| 0 |]; [||] |]));
  Alcotest.check_raises "cycle"
    (Invalid_argument "Topology.make: graph contains a cycle") (fun () ->
      ignore (mk [| [| 1 |]; [| 0 |] |]));
  Alcotest.check_raises "card too small"
    (Invalid_argument "Topology.make: cardinalities must be >= 2") (fun () ->
      ignore
        (Bayesnet.Topology.make ~names:[| "a" |] ~cards:[| 1 |]
           ~parents:[| [||] |]))

let test_topological_order () =
  let t = Bayesnet.Topology.chain [ 2; 2; 2; 2 ] in
  let order = Bayesnet.Topology.topological_order t in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  for v = 0 to 3 do
    Array.iter
      (fun p ->
        Alcotest.(check bool) "parents precede children" true (pos.(p) < pos.(v)))
      (Bayesnet.Topology.parents t v)
  done

let test_topology_schema () =
  let t = Bayesnet.Topology.chain [ 2; 3 ] in
  let s = Bayesnet.Topology.schema t in
  Alcotest.(check int) "arity" 2 (Relation.Schema.arity s);
  Alcotest.(check int) "cards carried over" 3 (Relation.Schema.cardinality s 1)

(* A hand-built 2-variable network: P(a0=1)=0.3; P(a1=1|a0=0)=0.2,
   P(a1=1|a0=1)=0.9. All posterior checks below are analytic. *)
let hand_network () =
  let topo =
    Bayesnet.Topology.make ~names:[| "x"; "y" |] ~cards:[| 2; 2 |]
      ~parents:[| [||]; [| 0 |] |]
  in
  Bayesnet.Network.make topo
    [|
      [| Prob.Dist.of_weights [| 0.7; 0.3 |] |];
      [|
        Prob.Dist.of_weights [| 0.8; 0.2 |];
        Prob.Dist.of_weights [| 0.1; 0.9 |];
      |];
    |]

let test_network_validation () =
  let topo = Bayesnet.Topology.chain [ 2; 2 ] in
  Alcotest.check_raises "row count"
    (Invalid_argument "Network.make: variable 1 expects 2 CPT rows") (fun () ->
      ignore
        (Bayesnet.Network.make topo
           [|
             [| Prob.Dist.uniform 2 |];
             [| Prob.Dist.uniform 2 |];
           |]))

let test_network_prob () =
  let net = hand_network () in
  check_float "P(0,0)" (0.7 *. 0.8) (Bayesnet.Network.prob net [| 0; 0 |]);
  check_float "P(1,1)" (0.3 *. 0.9) (Bayesnet.Network.prob net [| 1; 1 |]);
  check_float "log consistency"
    (log (0.3 *. 0.1))
    (Bayesnet.Network.log_prob net [| 1; 0 |])

let test_network_cpd () =
  let net = hand_network () in
  check_float "cpd row" 0.9 (Prob.Dist.prob (Bayesnet.Network.cpd net 1 [| 1 |]) 1)

let test_posterior_single_analytic () =
  let net = hand_network () in
  (* P(x | y = 1) ∝ [0.7*0.2; 0.3*0.9]. *)
  let post =
    Bayesnet.Network.posterior_single net [| None; Some 1 |] 0
  in
  let z = (0.7 *. 0.2) +. (0.3 *. 0.9) in
  check_float "posterior x=0" (0.7 *. 0.2 /. z) (Prob.Dist.prob post 0);
  check_float "posterior x=1" (0.3 *. 0.9 /. z) (Prob.Dist.prob post 1)

let test_posterior_joint_no_evidence () =
  let net = hand_network () in
  let missing, joint = Bayesnet.Network.posterior_joint net [| None; None |] in
  Alcotest.(check (list int)) "missing attrs" [ 0; 1 ] missing;
  (* Joint code order: x varies slowest. *)
  check_float "P(0,0)" (0.7 *. 0.8) (Prob.Dist.prob joint 0);
  check_float "P(0,1)" (0.7 *. 0.2) (Prob.Dist.prob joint 1);
  check_float "P(1,0)" (0.3 *. 0.1) (Prob.Dist.prob joint 2);
  check_float "P(1,1)" (0.3 *. 0.9) (Prob.Dist.prob joint 3)

let test_posterior_rejects_complete () =
  let net = hand_network () in
  Alcotest.check_raises "complete tuple"
    (Invalid_argument "Network.posterior_joint: tuple is complete") (fun () ->
      ignore (Bayesnet.Network.posterior_joint net [| Some 0; Some 0 |]))

let test_posterior_single_marginalizes () =
  (* With two missing attributes, posterior_single must sum the other one
     out: P(x | nothing) = prior of x. *)
  let net = hand_network () in
  let post = Bayesnet.Network.posterior_single net [| None; None |] 0 in
  check_float "marginal prior" 0.3 (Prob.Dist.prob post 1)

let test_forward_sampling_frequencies () =
  let net = hand_network () in
  let r = rng () in
  let n = 50_000 in
  let c00 = ref 0 and c11 = ref 0 in
  for _ = 1 to n do
    match Bayesnet.Network.sample_point r net with
    | [| 0; 0 |] -> incr c00
    | [| 1; 1 |] -> incr c11
    | _ -> ()
  done;
  check_float ~eps:0.01 "freq(0,0)" (0.7 *. 0.8)
    (float_of_int !c00 /. float_of_int n);
  check_float ~eps:0.01 "freq(1,1)" (0.3 *. 0.9)
    (float_of_int !c11 /. float_of_int n)

let test_sample_instance () =
  let net = hand_network () in
  let inst = Bayesnet.Network.sample_instance (rng ()) net 25 in
  Alcotest.(check int) "size" 25 (Relation.Instance.size inst);
  Alcotest.(check int) "all complete" 25
    (Array.length (Relation.Instance.complete_part inst))

let test_generate_valid_cpts () =
  let topo = Bayesnet.Topology.crown [ 3; 3; 3; 3 ] in
  let net = Bayesnet.Network.generate (rng ()) topo in
  (* Every CPT row of every variable must be a proper distribution. *)
  for v = 0 to 3 do
    let parents = Bayesnet.Topology.parents topo v in
    let cards = Array.map (Bayesnet.Topology.cardinality topo) parents in
    Relation.Domain.iter cards (fun _ values ->
        let row = Bayesnet.Network.cpd net v values in
        check_dist_sums_to_one "row normalized" row)
  done

let test_generate_deterministic () =
  let topo = Bayesnet.Topology.chain [ 2; 2 ] in
  let a = Bayesnet.Network.generate (Prob.Rng.create 5) topo in
  let b = Bayesnet.Network.generate (Prob.Rng.create 5) topo in
  check_float "same seed, same parameters"
    (Bayesnet.Network.prob a [| 0; 1 |])
    (Bayesnet.Network.prob b [| 0; 1 |])

(* Catalog: every entry must match its Table I row. *)
let test_catalog_matches_table1 () =
  Alcotest.(check int) "20 networks" 20 (List.length Bayesnet.Catalog.all);
  List.iter
    (fun (e : Bayesnet.Catalog.entry) ->
      Alcotest.(check int)
        (e.id ^ " attrs")
        e.paper_num_attrs
        (Bayesnet.Topology.size e.topology);
      Alcotest.(check int)
        (e.id ^ " depth")
        e.paper_depth
        (Bayesnet.Topology.depth e.topology);
      check_float (e.id ^ " dom size") e.paper_dom_size
        (Bayesnet.Topology.domain_size e.topology);
      (* Cardinalities match the paper's average within half a unit
         (integer factorization constraint, documented in DESIGN.md). *)
      let avg = Bayesnet.Topology.average_cardinality e.topology in
      if Float.abs (avg -. e.paper_avg_card) > 0.5 then
        Alcotest.failf "%s avg card %f vs paper %f" e.id avg e.paper_avg_card)
    Bayesnet.Catalog.all

let test_catalog_find () =
  let e = Bayesnet.Catalog.find "bn8" in
  Alcotest.(check string) "case insensitive" "BN8" e.id;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Bayesnet.Catalog.find "BN99"))

let test_catalog_subsets () =
  Alcotest.(check int) "model building set" 10
    (List.length Bayesnet.Catalog.model_building_networks);
  Alcotest.(check int) "single inference set" 14
    (List.length Bayesnet.Catalog.single_inference_networks);
  Alcotest.(check int) "multi inference set" 10
    (List.length Bayesnet.Catalog.multi_inference_networks);
  List.iter
    (fun (e : Bayesnet.Catalog.entry) ->
      Alcotest.(check string) (e.id ^ " crown") "crown" e.shape)
    Bayesnet.Catalog.fig8_size_networks;
  List.iter
    (fun (e : Bayesnet.Catalog.entry) ->
      Alcotest.(check string) (e.id ^ " line") "line" e.shape)
    Bayesnet.Catalog.fig8_cardinality_networks

let test_posterior_sums_to_one_random_net () =
  let e = Bayesnet.Catalog.find "BN9" in
  let net = Bayesnet.Network.generate (rng ()) e.topology in
  let tup = Array.make 6 None in
  tup.(0) <- Some 0;
  tup.(3) <- Some 1;
  let _, joint = Bayesnet.Network.posterior_joint net tup in
  check_dist_sums_to_one "posterior normalized" joint

(* Property: for random small networks, the posterior of one variable given
   full evidence matches Bayes' rule computed from the joint. *)
let prop_posterior_consistent =
  qcheck ~count:50 "posterior consistent with joint enumeration"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let topo = Bayesnet.Topology.chain [ 2; 3; 2 ] in
      let net = Bayesnet.Network.generate r topo in
      let tup = [| Some 1; None; Some 0 |] in
      let post = Bayesnet.Network.posterior_single net tup 1 in
      let weights =
        Array.init 3 (fun v -> Bayesnet.Network.prob net [| 1; v; 0 |])
      in
      let z = Array.fold_left ( +. ) 0. weights in
      Array.for_all
        (fun i -> float_close ~eps:1e-9 (weights.(i) /. z) (Prob.Dist.prob post i))
        [| 0; 1; 2 |])

let suite =
  [
    ("chain shape", `Quick, test_chain_shape);
    ("independent shape", `Quick, test_independent_shape);
    ("crown shape", `Quick, test_crown_shape);
    ("layered shape", `Quick, test_layered_shape);
    ("topology validation", `Quick, test_topology_validation);
    ("topological order", `Quick, test_topological_order);
    ("topology schema", `Quick, test_topology_schema);
    ("network validation", `Quick, test_network_validation);
    ("joint probability", `Quick, test_network_prob);
    ("cpd lookup", `Quick, test_network_cpd);
    ("posterior single (analytic)", `Quick, test_posterior_single_analytic);
    ("posterior joint without evidence", `Quick, test_posterior_joint_no_evidence);
    ("posterior rejects complete tuples", `Quick, test_posterior_rejects_complete);
    ("posterior single marginalizes", `Quick, test_posterior_single_marginalizes);
    ("forward sampling frequencies", `Slow, test_forward_sampling_frequencies);
    ("sample instance", `Quick, test_sample_instance);
    ("generated CPTs valid", `Quick, test_generate_valid_cpts);
    ("generation deterministic", `Quick, test_generate_deterministic);
    ("catalog matches Table I", `Quick, test_catalog_matches_table1);
    ("catalog find", `Quick, test_catalog_find);
    ("catalog experiment subsets", `Quick, test_catalog_subsets);
    ("posterior normalized on catalog net", `Quick,
     test_posterior_sums_to_one_random_net);
    prop_posterior_consistent;
  ]
