(* Shared helpers for the test suites. *)

let rng () = Prob.Rng.create 42

let float_close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (float_close ~eps expected actual) then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

let check_dist_sums_to_one ?(eps = 1e-9) msg (d : Prob.Dist.t) =
  let s = Array.fold_left ( +. ) 0. (Prob.Dist.to_array d) in
  check_float ~eps msg 1.0 s

let check_dist_positive msg (d : Prob.Dist.t) =
  Array.iteri
    (fun i p ->
      if p <= 0. then Alcotest.failf "%s: position %d not positive (%g)" msg i p)
    (Prob.Dist.to_array d)

(* The running-example relation of Fig 1 (ids t1..t17; non-key attributes
   age/edu/inc/nw). Missing values are None. *)
let fig1_schema =
  Relation.Schema.make
    [
      Relation.Attribute.make "age" [ "20"; "30"; "40" ];
      Relation.Attribute.make "edu" [ "HS"; "BS"; "MS" ];
      Relation.Attribute.make "inc" [ "50K"; "100K" ];
      Relation.Attribute.make "nw" [ "100K"; "500K" ];
    ]

let fig1_csv =
  "age,edu,inc,nw\n\
   20,HS,?,?\n\
   20,BS,50K,100K\n\
   20,?,50K,?\n\
   20,HS,100K,500K\n\
   20,?,?,?\n\
   20,HS,50K,100K\n\
   20,HS,50K,500K\n\
   ?,HS,?,?\n\
   30,BS,100K,100K\n\
   30,?,100K,?\n\
   30,HS,?,?\n\
   30,MS,?,?\n\
   40,BS,100K,100K\n\
   40,HS,?,?\n\
   40,BS,50K,500K\n\
   40,HS,?,500K\n\
   40,HS,100K,500K\n"

let fig1_relation () = Relation.Csv_io.read_string ~schema:fig1_schema fig1_csv

(* A deterministic 3-attribute dataset with a hard functional dependency
   a0 -> a1 (a1 = a0) and an independent a2, handy for inference tests. *)
let dependent_schema = Relation.Schema.of_cardinalities [ 2; 2; 2 ]

let dependent_points n =
  Array.init n (fun i ->
      let a0 = i mod 2 in
      [| a0; a0; i / 2 mod 2 |])

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
