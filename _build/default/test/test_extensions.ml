(* Tests for the paper's future-work extensions: PK–FK joins (Section
   I-B), three-valued predicates, and lazy query-targeted inference
   (Section VIII). *)

open Helpers

(* Join *)

let dim_schema =
  Relation.Schema.make
    [
      Relation.Attribute.make "dept" [ "eng"; "sales" ];
      Relation.Attribute.make "floor" [ "f1"; "f2" ];
      Relation.Attribute.make "budget" [ "low"; "high" ];
    ]

let fact_schema =
  Relation.Schema.make
    [
      Relation.Attribute.make "name" [ "ann"; "bob"; "cat" ];
      Relation.Attribute.make "dept" [ "eng"; "sales"; "hr" ];
    ]

let dim () =
  Relation.Instance.make dim_schema
    [
      [| Some 0; Some 1; Some 1 |]; (* eng, f2, high *)
      [| Some 1; Some 0; None |]; (* sales, f1, ? *)
    ]

let fact () =
  Relation.Instance.make fact_schema
    [
      [| Some 0; Some 0 |]; (* ann, eng *)
      [| Some 1; Some 1 |]; (* bob, sales *)
      [| Some 2; None |]; (* cat, ? *)
      [| Some 0; Some 2 |]; (* ann, hr — dangling reference *)
    ]

let test_join_basic () =
  let joined =
    Relation.Join.primary_foreign ~fact:(fact ()) ~fk:1 ~dim:(dim ()) ~pk:0
  in
  let schema = Relation.Instance.schema joined in
  Alcotest.(check int) "arity = fact + dim - key" 4 (Relation.Schema.arity schema);
  Alcotest.(check int) "renamed columns" 2
    (Relation.Schema.index_of schema "dept_floor");
  let tuples = Relation.Instance.tuples joined in
  (* ann/eng picks up (f2, high). *)
  Alcotest.(check bool) "matched row extended" true
    (Relation.Tuple.equal tuples.(0) [| Some 0; Some 0; Some 1; Some 1 |]);
  (* bob/sales picks up (f1, ?) — dimension gap preserved. *)
  Alcotest.(check bool) "dimension gap preserved" true
    (Relation.Tuple.equal tuples.(1) [| Some 1; Some 1; Some 0; None |]);
  (* cat has no fk: appended attributes missing. *)
  Alcotest.(check bool) "missing fk" true
    (Relation.Tuple.equal tuples.(2) [| Some 2; None; None; None |]);
  (* hr is dangling: appended attributes missing. *)
  Alcotest.(check bool) "dangling fk" true
    (Relation.Tuple.equal tuples.(3) [| Some 0; Some 2; None; None |])

let test_join_rejects_bad_key () =
  let dup =
    Relation.Instance.make dim_schema
      [ [| Some 0; Some 0; Some 0 |]; [| Some 0; Some 1; Some 1 |] ]
  in
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Join.primary_foreign: duplicate dimension key")
    (fun () ->
      ignore
        (Relation.Join.primary_foreign ~fact:(fact ()) ~fk:1 ~dim:dup ~pk:0));
  let holey =
    Relation.Instance.make dim_schema [ [| None; Some 0; Some 0 |] ]
  in
  Alcotest.check_raises "missing key"
    (Invalid_argument "Join.primary_foreign: dimension key column has missing values")
    (fun () ->
      ignore
        (Relation.Join.primary_foreign ~fact:(fact ()) ~fk:1 ~dim:holey ~pk:0))

let test_join_feeds_learning () =
  (* Correlations across relations become learnable after the join. *)
  let joined =
    Relation.Join.primary_foreign ~fact:(fact ()) ~fk:1 ~dim:(dim ()) ~pk:0
  in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.2 }
      joined
  in
  Alcotest.(check int) "one lattice per joined attribute" 4
    (Array.length (Mrsl.Model.lattices model))

(* eval_partial *)

let test_eval_partial_atoms () =
  let open Probdb.Predicate in
  let tup : Relation.Tuple.t = [| Some 1; None |] in
  Alcotest.(check (option bool)) "decided eq" (Some true)
    (eval_partial (Eq (0, 1)) tup);
  Alcotest.(check (option bool)) "decided neq" (Some false)
    (eval_partial (Neq (0, 1)) tup);
  Alcotest.(check (option bool)) "undecided" None (eval_partial (Eq (1, 0)) tup);
  Alcotest.(check (option bool)) "in decided" (Some true)
    (eval_partial (In (0, [ 0; 1 ])) tup)

let test_eval_partial_connectives () =
  let open Probdb.Predicate in
  let tup : Relation.Tuple.t = [| Some 1; None |] in
  (* Short-circuiting: false ∧ unknown = false; true ∨ unknown = true. *)
  Alcotest.(check (option bool)) "and short-circuit" (Some false)
    (eval_partial (And (Eq (0, 0), Eq (1, 0))) tup);
  Alcotest.(check (option bool)) "or short-circuit" (Some true)
    (eval_partial (Or (Eq (0, 1), Eq (1, 0))) tup);
  Alcotest.(check (option bool)) "and unknown" None
    (eval_partial (And (Eq (0, 1), Eq (1, 0))) tup);
  Alcotest.(check (option bool)) "not unknown" None
    (eval_partial (Not (Eq (1, 0))) tup)

let prop_eval_partial_sound =
  (* Whenever eval_partial decides, every completion agrees. *)
  qcheck ~count:150 "eval_partial is sound"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let tup =
        Array.init 3 (fun _ ->
            if Prob.Rng.bool r then Some (Prob.Rng.int r 2) else None)
      in
      let rec gen_pred depth =
        if depth = 0 || Prob.Rng.int r 3 = 0 then
          Probdb.Predicate.Eq (Prob.Rng.int r 3, Prob.Rng.int r 2)
        else
          match Prob.Rng.int r 3 with
          | 0 -> Probdb.Predicate.And (gen_pred (depth - 1), gen_pred (depth - 1))
          | 1 -> Probdb.Predicate.Or (gen_pred (depth - 1), gen_pred (depth - 1))
          | _ -> Probdb.Predicate.Not (gen_pred (depth - 1))
      in
      let pred = gen_pred 3 in
      match Probdb.Predicate.eval_partial pred tup with
      | None -> true
      | Some expected ->
          let ok = ref true in
          let missing = Array.of_list (Relation.Tuple.missing tup) in
          let cards = Array.map (fun _ -> 2) missing in
          Relation.Domain.iter cards (fun _ values ->
              let point = Array.map (function Some v -> v | None -> 0) tup in
              Array.iteri (fun k a -> point.(a) <- values.(k)) missing;
              if Probdb.Predicate.eval pred point <> expected then ok := false);
          !ok)

(* Lazy pdb *)

let lazy_fixture () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 300) in
  let inst =
    Relation.Instance.make dependent_schema
      ([ Relation.Tuple.of_point [| 0; 0; 0 |];
         Relation.Tuple.of_point [| 1; 1; 1 |] ]
      @ [ [| Some 1; None; Some 0 |]; [| None; None; Some 1 |] ])
  in
  ( model,
    inst,
    Probdb.Lazy_pdb.create
      ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 200 }
      (rng ()) model inst )

let test_lazy_no_upfront_inference () =
  let _, _, view = lazy_fixture () in
  Alcotest.(check int) "nothing materialized" 0
    (Probdb.Lazy_pdb.materialized_count view);
  Alcotest.(check int) "tuple count" 4 (Probdb.Lazy_pdb.tuple_count view)

let test_lazy_decided_queries_skip_sampling () =
  let _, _, view = lazy_fixture () in
  (* a2 is known in every tuple: the query is decided everywhere. *)
  let pred = Probdb.Predicate.Eq (2, 0) in
  let count = Probdb.Lazy_pdb.expected_count view pred in
  check_float "decided count" 2. count;
  Alcotest.(check int) "still nothing materialized" 0
    (Probdb.Lazy_pdb.materialized_count view)

let test_lazy_partial_materialization () =
  let _, _, view = lazy_fixture () in
  (* a0 = 1 is decided for three tuples, undecided only for the last. *)
  let pred = Probdb.Predicate.Eq (0, 1) in
  let _ = Probdb.Lazy_pdb.expected_count view pred in
  Alcotest.(check int) "one block materialized" 1
    (Probdb.Lazy_pdb.materialized_count view);
  (* Re-running the same query must not re-infer. *)
  let _ = Probdb.Lazy_pdb.expected_count view pred in
  Alcotest.(check int) "cache reused" 1
    (Probdb.Lazy_pdb.materialized_count view)

let test_lazy_agrees_with_eager () =
  let model, inst, view = lazy_fixture () in
  let pred = Probdb.Predicate.And (Probdb.Predicate.Eq (0, 1), Probdb.Predicate.Eq (1, 1)) in
  let lazy_count = Probdb.Lazy_pdb.expected_count view pred in
  let eager =
    Probdb.Pdb.derive
      ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 200 }
      (rng ()) model inst
  in
  let eager_count = Probdb.Pdb.expected_count eager pred in
  (* Same model, same seed policy differs per block ordering; allow
     sampling noise. *)
  check_float ~eps:0.15 "lazy ≈ eager" eager_count lazy_count

let test_lazy_force () =
  let _, _, view = lazy_fixture () in
  let db = Probdb.Lazy_pdb.force view in
  Alcotest.(check int) "full database" 4 (Probdb.Pdb.block_count db);
  Alcotest.(check int) "all incomplete materialized" 2
    (Probdb.Lazy_pdb.materialized_count view)

let test_lazy_prob_exists () =
  let _, _, view = lazy_fixture () in
  let p = Probdb.Lazy_pdb.prob_exists view (Probdb.Predicate.Eq (2, 1)) in
  (* Tuple 2 (point 1,1,1) and tuple 4 (a2=1 known) guarantee existence. *)
  check_float "certain existence" 1.0 p

let suite =
  [
    ("pk-fk join", `Quick, test_join_basic);
    ("pk-fk join key validation", `Quick, test_join_rejects_bad_key);
    ("pk-fk join feeds learning", `Quick, test_join_feeds_learning);
    ("eval_partial atoms", `Quick, test_eval_partial_atoms);
    ("eval_partial connectives", `Quick, test_eval_partial_connectives);
    prop_eval_partial_sound;
    ("lazy view defers inference", `Quick, test_lazy_no_upfront_inference);
    ("decided queries skip sampling", `Quick,
     test_lazy_decided_queries_skip_sampling);
    ("partial materialization", `Quick, test_lazy_partial_materialization);
    ("lazy agrees with eager", `Quick, test_lazy_agrees_with_eager);
    ("force materializes everything", `Quick, test_lazy_force);
    ("lazy prob_exists", `Quick, test_lazy_prob_exists);
  ]
