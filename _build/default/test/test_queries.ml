(* Tests for the query-layer extensions: top-k worlds, the probabilistic
   relational algebra, inference explanations, and missingness
   mechanisms. *)

open Helpers

(* A small hand-built database with known world probabilities:
   block 1: certain (0,0,0)
   block 2: (1,0,0) @ 0.6, (1,1,0) @ 0.3, (1,1,1) @ 0.1
   block 3: (0,1,0) @ 0.7, (0,1,1) @ 0.3 *)
let alt_points = [ ([| 1; 0; 0 |], 6), ([| 1; 1; 0 |], 3), ([| 1; 1; 1 |], 1) ]

let hand_db () =
  let est weights tup =
    let model = Mrsl.Model.learn_points dependent_schema (dependent_points 50) in
    let s = Mrsl.Gibbs.sampler model in
    let missing = Array.of_list (Relation.Tuple.missing tup) in
    let cards = Array.map (fun _ -> 2) missing in
    let points = ref [] in
    Relation.Domain.iter cards (fun code values ->
        let point = Array.map (function Some v -> v | None -> 0) tup in
        Array.iteri (fun k a -> point.(a) <- values.(k)) missing;
        for _ = 1 to weights.(code) do
          points := point :: !points
        done);
    Mrsl.Gibbs.estimate_of_points s tup !points
  in
  ignore alt_points;
  let block2 =
    (* missing a1, a2 with evidence a0=1; weights over (a1,a2) codes:
       (0,0)=6, (0,1)=0->skip via tiny, (1,0)=3, (1,1)=1 *)
    Probdb.Block.of_estimate ~min_prob:0.05
      (est [| 12; 0; 6; 2 |] [| Some 1; None; None |])
  in
  let block3 =
    Probdb.Block.of_estimate ~min_prob:0.05
      (est [| 7; 3 |] [| Some 0; Some 1; None |])
  in
  Probdb.Pdb.make dependent_schema
    [ Probdb.Block.of_point [| 0; 0; 0 |]; block2; block3 ]

let test_top_k_first_is_modal () =
  let db = hand_db () in
  match Probdb.Pdb.top_k_worlds db 1 with
  | [ (world, logp) ] ->
      let modal, modal_logp = Probdb.Pdb.most_probable_world db in
      Alcotest.(check bool) "same world" true (world = modal);
      check_float ~eps:1e-9 "same log prob" modal_logp logp
  | _ -> Alcotest.fail "expected exactly one world"

let test_top_k_ordering_and_count () =
  let db = hand_db () in
  let worlds = Probdb.Pdb.top_k_worlds db 6 in
  Alcotest.(check int) "six worlds" 6 (List.length worlds);
  let probs = List.map snd worlds in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> Float.compare b a) probs = probs);
  (* Exhaustive k larger than world count: 1 * 3 * 2 = 6 worlds. *)
  let all = Probdb.Pdb.top_k_worlds db 100 in
  Alcotest.(check int) "capped at world count" 6 (List.length all);
  (* Their probabilities sum to (within truncation) 1. *)
  let total = List.fold_left (fun acc (_, lp) -> acc +. exp lp) 0. all in
  check_float ~eps:0.05 "probabilities sum to ~1" 1.0 total

let test_top_k_rejects () =
  let db = hand_db () in
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Pdb.top_k_worlds: k must be >= 1") (fun () ->
      ignore (Probdb.Pdb.top_k_worlds db 0))

(* Algebra *)

let test_select_preserves_expected_count () =
  let db = hand_db () in
  let pred = Probdb.Predicate.Eq (1, 1) in
  let selected = Probdb.Algebra.select pred db in
  check_float ~eps:1e-9 "selection consistent with expected_count"
    (Probdb.Pdb.expected_count db pred)
    (Array.fold_left
       (fun acc (b : Probdb.Block.t) ->
         List.fold_left
           (fun acc (a : Probdb.Block.alternative) -> acc +. a.prob)
           acc b.alternatives)
       0.
       (Probdb.Pdb.blocks selected));
  (* The certain block (0,0,0) fails the predicate and is dropped. *)
  Alcotest.(check int) "blocks without survivors dropped" 2
    (Probdb.Pdb.block_count selected)

let test_project_expected_totals () =
  let db = hand_db () in
  let rows = Probdb.Algebra.project_expected [ 1 ] db in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. rows in
  (* Sum of block masses: block 2 and 3 are truncated slightly below 1. *)
  Alcotest.(check bool) "totals near 3" true (Float.abs (total -. 3.) < 0.1);
  (* Expected count of a1=1 matches Pdb.expected_count. *)
  let a1_1 = List.assoc [| 1 |] (List.map (fun (k, v) -> (Array.to_list k |> Array.of_list, v)) rows |> List.map (fun (k,v) -> (k,v))) in
  ignore a1_1

let test_project_expected_matches_pdb () =
  let db = hand_db () in
  let rows = Probdb.Algebra.project_expected [ 1 ] db in
  let lookup key =
    match List.find_opt (fun (k, _) -> k = key) rows with
    | Some (_, v) -> v
    | None -> 0.
  in
  check_float ~eps:1e-9 "a1=0 expected"
    (Probdb.Pdb.expected_count db (Probdb.Predicate.Eq (1, 0)))
    (lookup [| 0 |]);
  check_float ~eps:1e-9 "a1=1 expected"
    (Probdb.Pdb.expected_count db (Probdb.Predicate.Eq (1, 1)))
    (lookup [| 1 |])

let test_project_exists_matches_pdb () =
  let db = hand_db () in
  let rows = Probdb.Algebra.project_exists [ 2 ] db in
  let lookup key =
    match List.find_opt (fun (k, _) -> k = key) rows with
    | Some (_, v) -> v
    | None -> 0.
  in
  check_float ~eps:1e-9 "exists a2=1"
    (Probdb.Pdb.prob_exists db (Probdb.Predicate.Eq (2, 1)))
    (lookup [| 1 |])

let test_group_expected_count () =
  let db = hand_db () in
  let groups = Probdb.Algebra.group_expected_count ~by:1 db in
  Alcotest.(check int) "one row per value" 2 (List.length groups);
  List.iter
    (fun (v, count) ->
      check_float ~eps:1e-9 "group matches expected_count"
        (Probdb.Pdb.expected_count db (Probdb.Predicate.Eq (1, v)))
        count)
    groups

let test_expected_join_count () =
  (* Two single-block certain databases joining on attribute 0. *)
  let a = Probdb.Pdb.make dependent_schema [ Probdb.Block.of_point [| 1; 0; 0 |] ] in
  let b = Probdb.Pdb.make dependent_schema [ Probdb.Block.of_point [| 1; 1; 1 |] ] in
  check_float "certain match" 1.0
    (Probdb.Algebra.expected_join_count a b ~on:[ (0, 0) ]);
  let c = Probdb.Pdb.make dependent_schema [ Probdb.Block.of_point [| 0; 1; 1 |] ] in
  check_float "certain non-match" 0.0
    (Probdb.Algebra.expected_join_count a c ~on:[ (0, 0) ]);
  (* Uncertain join: the hand DB's block 2 has a0=1 with mass ~1. *)
  let db = hand_db () in
  let expected = Probdb.Algebra.expected_join_count db a ~on:[ (0, 0) ] in
  (* Only block 2 (a0 = 1, mass ~0.95 after truncation) pairs with [a]. *)
  Alcotest.(check bool) "uncertain join mass" true
    (expected > 0.9 && expected <= 1.0)

let test_join_rejects_empty_condition () =
  let db = hand_db () in
  Alcotest.check_raises "empty on"
    (Invalid_argument "Algebra.expected_join_count: empty join condition")
    (fun () -> ignore (Probdb.Algebra.expected_join_count db db ~on:[]))

(* Explanations *)

let test_explain_contributions () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 300) in
  let tup : Relation.Tuple.t = [| Some 1; None; Some 0 |] in
  List.iter
    (fun method_ ->
      let exp = Mrsl.Infer_single.explain ~method_ model tup 1 in
      let direct = Mrsl.Infer_single.infer ~method_ model tup 1 in
      check_float ~eps:1e-9
        ("estimate matches infer: " ^ Mrsl.Voting.method_name method_)
        (Prob.Dist.prob direct 0)
        (Prob.Dist.prob exp.estimate 0);
      let total =
        List.fold_left (fun acc (_, w) -> acc +. w) 0. exp.contributions
      in
      check_float ~eps:1e-9 "contributions sum to 1" 1.0 total;
      (* Descending. *)
      let ws = List.map snd exp.contributions in
      Alcotest.(check bool) "descending" true
        (List.sort (fun a b -> Float.compare b a) ws = ws))
    Mrsl.Voting.all_methods

let test_explain_weighted_prefers_supported () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 300) in
  let tup : Relation.Tuple.t = [| Some 1; None; Some 0 |] in
  let exp =
    Mrsl.Infer_single.explain ~method_:Mrsl.Voting.all_weighted model tup 1
  in
  (* Under weighted voting the root (weight 1) has the largest single
     contribution. *)
  match exp.contributions with
  | ((top_rule : Mrsl.Meta_rule.t), _) :: _ ->
      Alcotest.(check int) "root contributes most" 0
        (Mrsl.Meta_rule.specificity top_rule)
  | [] -> Alcotest.fail "no contributions"

(* Missingness *)

let base_instance n =
  Relation.Instance.of_points dependent_schema
    (Array.to_list (dependent_points n))

let missing_rate inst =
  let total = ref 0 and missing = ref 0 in
  Array.iter
    (fun tup ->
      Array.iter
        (fun v ->
          incr total;
          if v = None then incr missing)
        tup)
    (Relation.Instance.tuples inst);
  float_of_int !missing /. float_of_int !total

let test_mcar_rate () =
  let inst = base_instance 2000 in
  let masked =
    Relation.Missingness.mask (rng ()) (Relation.Missingness.Mcar 0.2) inst
  in
  check_float ~eps:0.02 "MCAR rate" 0.2 (missing_rate masked)

let test_mcar_zero_and_one () =
  let inst = base_instance 100 in
  let zero = Relation.Missingness.mask (rng ()) (Relation.Missingness.Mcar 0.) inst in
  check_float "no masking" 0. (missing_rate zero);
  let one = Relation.Missingness.mask (rng ()) (Relation.Missingness.Mcar 1.) inst in
  check_float "full masking" 1. (missing_rate one)

let test_mar_depends_on_trigger () =
  let inst = base_instance 2000 in
  let mech =
    Relation.Missingness.Mar
      { trigger = 0; value = 0; p_match = 0.8; p_other = 0.05; targets = [ 1; 2 ] }
  in
  let masked = Relation.Missingness.mask (rng ()) mech inst in
  (* Trigger never masked; targets missing mostly when a0 = 0. *)
  let m_when_0 = ref 0 and n0 = ref 0 and m_when_1 = ref 0 and n1 = ref 0 in
  Array.iter
    (fun tup ->
      Alcotest.(check bool) "trigger kept" true (tup.(0) <> None);
      match tup.(0) with
      | Some 0 ->
          incr n0;
          if tup.(1) = None then incr m_when_0
      | Some _ ->
          incr n1;
          if tup.(1) = None then incr m_when_1
      | None -> ())
    (Relation.Instance.tuples masked);
  let r0 = float_of_int !m_when_0 /. float_of_int !n0 in
  let r1 = float_of_int !m_when_1 /. float_of_int !n1 in
  Alcotest.(check bool) "conditional rates differ" true (r0 > 0.6 && r1 < 0.15)

let test_mnar_depends_on_value () =
  let inst = base_instance 2000 in
  let mech =
    Relation.Missingness.Mnar { target = 2; value = 1; p_match = 0.9; p_other = 0.02 }
  in
  let masked = Relation.Missingness.mask (rng ()) mech inst in
  (* Among *surviving* a2 values, value 1 is now rare (self-censoring). *)
  let ones = ref 0 and zeros = ref 0 in
  Array.iter
    (fun tup ->
      match tup.(2) with
      | Some 1 -> incr ones
      | Some 0 -> incr zeros
      | _ -> ())
    (Relation.Instance.tuples masked);
  Alcotest.(check bool) "value-1 censored" true
    (float_of_int !ones < 0.2 *. float_of_int !zeros)

let test_missingness_validation () =
  let inst = base_instance 10 in
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Missingness: probabilities must be in [0, 1]")
    (fun () ->
      ignore
        (Relation.Missingness.mask (rng ()) (Relation.Missingness.Mcar 1.5) inst));
  Alcotest.check_raises "trigger as target"
    (Invalid_argument "Missingness: trigger cannot be a target") (fun () ->
      ignore
        (Relation.Missingness.mask (rng ())
           (Relation.Missingness.Mar
              { trigger = 0; value = 0; p_match = 0.5; p_other = 0.1;
                targets = [ 0 ] })
           inst))

let test_expected_rate_helper () =
  let schema = dependent_schema in
  check_float "mcar" 0.3
    (Relation.Missingness.expected_missing_rate (Relation.Missingness.Mcar 0.3)
       schema);
  let mar =
    Relation.Missingness.Mar
      { trigger = 0; value = 0; p_match = 0.4; p_other = 0.; targets = [ 1; 2 ] }
  in
  (* p_avg = 0.4/2 = 0.2 over 2 of 3 attributes. *)
  check_float ~eps:1e-9 "mar" (0.2 *. 2. /. 3.)
    (Relation.Missingness.expected_missing_rate mar schema)

let test_sampler_memoize_off_matches_on () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 200) in
  let s_on = Mrsl.Gibbs.sampler ~memoize:true model in
  let s_off = Mrsl.Gibbs.sampler ~memoize:false model in
  let point = [| 1; 0; 1 |] in
  check_float "same conditional"
    (Prob.Dist.prob (Mrsl.Gibbs.conditional s_on point 1) 0)
    (Prob.Dist.prob (Mrsl.Gibbs.conditional s_off point 1) 0);
  let _, misses = Mrsl.Gibbs.cache_stats s_off in
  Alcotest.(check int) "no cache activity when off" 0 misses

let suite =
  [
    ("top-k first is modal", `Quick, test_top_k_first_is_modal);
    ("top-k ordering and exhaustion", `Quick, test_top_k_ordering_and_count);
    ("top-k rejects k=0", `Quick, test_top_k_rejects);
    ("algebra select", `Quick, test_select_preserves_expected_count);
    ("algebra project expected matches pdb", `Quick,
     test_project_expected_matches_pdb);
    ("algebra project exists matches pdb", `Quick,
     test_project_exists_matches_pdb);
    ("algebra group expected count", `Quick, test_group_expected_count);
    ("algebra expected join count", `Quick, test_expected_join_count);
    ("algebra join validation", `Quick, test_join_rejects_empty_condition);
    ("explain matches infer", `Quick, test_explain_contributions);
    ("explain weighted ranking", `Quick, test_explain_weighted_prefers_supported);
    ("MCAR rate", `Quick, test_mcar_rate);
    ("MCAR extremes", `Quick, test_mcar_zero_and_one);
    ("MAR depends on trigger", `Quick, test_mar_depends_on_trigger);
    ("MNAR self-censors", `Quick, test_mnar_depends_on_value);
    ("missingness validation", `Quick, test_missingness_validation);
    ("expected rate helper", `Quick, test_expected_rate_helper);
    ("sampler memoize off", `Quick, test_sampler_memoize_off_matches_on);
  ]

(* Regression: top-k against brute-force world enumeration on random
   databases (guards the best-first heap). *)
let est_for_q tup weights =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 50) in
  let s = Mrsl.Gibbs.sampler model in
  let missing = Array.of_list (Relation.Tuple.missing tup) in
  let cards = Array.map (fun _ -> 2) missing in
  let points = ref [] in
  Relation.Domain.iter cards (fun code values ->
      let point = Array.map (function Some v -> v | None -> 0) tup in
      Array.iteri (fun k a -> point.(a) <- values.(k)) missing;
      for _ = 1 to weights.(code) do
        points := point :: !points
      done);
  Mrsl.Gibbs.estimate_of_points s tup !points

let prop_top_k_matches_bruteforce =
  qcheck ~count:30 "top-k equals brute-force enumeration"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let db =
        let blocks =
          List.init
            (1 + Prob.Rng.int r 3)
            (fun _ ->
              let weights = Array.init 4 (fun _ -> 1 + Prob.Rng.int r 9) in
              Probdb.Block.of_estimate
                (est_for_q [| Some (Prob.Rng.int r 2); None; None |] weights))
        in
        Probdb.Pdb.make dependent_schema blocks
      in
      let blocks = Probdb.Pdb.blocks db in
      let alt_counts = Array.map Probdb.Block.alternative_count blocks in
      (* Brute force: every rank vector. *)
      let all = ref [] in
      Relation.Domain.iter alt_counts (fun _ ranks ->
          let world =
            Array.mapi
              (fun i rank ->
                (List.nth (blocks.(i) : Probdb.Block.t).alternatives rank)
                  .Probdb.Block.point)
              ranks
          in
          all :=
            (Array.map Array.copy world, Probdb.Pdb.world_log_prob db world)
            :: !all);
      let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) !all in
      let k = 5 in
      let got = Probdb.Pdb.top_k_worlds db k in
      let want = List.filteri (fun i _ -> i < k) sorted in
      List.length got = min k (List.length sorted)
      && List.for_all2
           (fun (_, lg) (_, lw) -> Float.abs (lg -. lw) < 1e-9)
           got want)

let suite = suite @ [ prop_top_k_matches_bruteforce ]
