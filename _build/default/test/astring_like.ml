(* Tiny substring helper (no external string package in the container). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0
  end
