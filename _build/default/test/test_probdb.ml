(* Tests for the probabilistic-database substrate: blocks, predicates, and
   the disjoint-independent database (possible worlds + query answers). *)

open Helpers

let est_for tup joint_weights : Mrsl.Gibbs.estimate =
  (* Build a Gibbs estimate by hand through estimate_of_points-compatible
     structure: we use the sampler path to keep the invariants honest. *)
  let model =
    Mrsl.Model.learn_points dependent_schema (dependent_points 50)
  in
  let s = Mrsl.Gibbs.sampler model in
  (* Synthesize sample points proportional to the requested weights. *)
  let missing = Array.of_list (Relation.Tuple.missing tup) in
  let cards = Array.map (fun _ -> 2) missing in
  let points = ref [] in
  Relation.Domain.iter cards (fun code values ->
      let point = Array.map (function Some v -> v | None -> 0) tup in
      Array.iteri (fun k a -> point.(a) <- values.(k)) missing;
      for _ = 1 to joint_weights.(code) do
        points := point :: !points
      done);
  Mrsl.Gibbs.estimate_of_points s tup !points

let test_block_of_estimate () =
  let tup : Relation.Tuple.t = [| Some 1; None; None |] in
  let est = est_for tup [| 6; 2; 1; 1 |] in
  let block = Probdb.Block.of_estimate est in
  Alcotest.(check int) "four alternatives" 4
    (Probdb.Block.alternative_count block);
  let top = Probdb.Block.top block in
  Alcotest.(check (array int)) "top completion" [| 1; 0; 0 |] top.point;
  check_float ~eps:1e-3 "top probability" 0.6 top.prob;
  (* Alternatives are sorted descending. *)
  let probs =
    List.map (fun (a : Probdb.Block.alternative) -> a.prob) block.alternatives
  in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> Float.compare b a) probs = probs)

let test_block_truncation () =
  let tup : Relation.Tuple.t = [| Some 1; None; None |] in
  let est = est_for tup [| 90; 8; 1; 1 |] in
  let block = Probdb.Block.of_estimate ~min_prob:0.05 est in
  Alcotest.(check int) "kept two" 2 (Probdb.Block.alternative_count block);
  Alcotest.(check bool) "records dropped mass" true
    (block.truncated_mass > 0.015 && block.truncated_mass < 0.025)

let test_block_of_point () =
  let block = Probdb.Block.of_point [| 0; 1; 0 |] in
  Alcotest.(check int) "one alternative" 1 (Probdb.Block.alternative_count block);
  check_float "certain" 1.0 (Probdb.Block.top block).prob;
  check_float "prob_of_point" 1.0
    (Probdb.Block.prob_of_point block [| 0; 1; 0 |]);
  check_float "prob of absent point" 0.
    (Probdb.Block.prob_of_point block [| 1; 1; 0 |])

let test_predicate_eval () =
  let open Probdb.Predicate in
  let p = And (Eq (0, 1), Or (Neq (1, 0), In (2, [ 0; 1 ]))) in
  Alcotest.(check bool) "holds" true (eval p [| 1; 0; 1 |]);
  Alcotest.(check bool) "eq fails" false (eval p [| 0; 0; 1 |]);
  Alcotest.(check bool) "true" true (eval True [| 9; 9; 9 |]);
  Alcotest.(check bool) "not" false (eval (Not True) [| 0; 0; 0 |]);
  Alcotest.(check bool) "conj empty" true (eval (conj []) [| 0 |]);
  Alcotest.(check bool) "disj empty" false (eval (disj []) [| 0 |])

let test_predicate_labels () =
  let p = Probdb.Predicate.eq_label fig1_schema "age" "30" in
  Alcotest.(check bool) "label atom" true (Probdb.Predicate.eval p [| 1; 0; 0; 0 |])

(* A tiny hand-built database: one certain block and one uncertain block
   over the dependent 3-attribute schema. *)
let hand_db () =
  let certain = Probdb.Block.of_point [| 0; 0; 0 |] in
  let est = est_for [| Some 1; None; None |] [| 1; 1; 1; 1 |] in
  let uncertain = Probdb.Block.of_estimate est in
  Probdb.Pdb.make dependent_schema [ certain; uncertain ]

let test_pdb_possible_worlds () =
  let db = hand_db () in
  check_float "worlds = 1 * 4" 4. (Probdb.Pdb.possible_worlds db)

let test_pdb_expected_count () =
  let db = hand_db () in
  (* a0 = 1 holds for every alternative of block 2 only. *)
  check_float ~eps:1e-6 "expected count" 1.0
    (Probdb.Pdb.expected_count db (Probdb.Predicate.Eq (0, 1)));
  (* a1 = 0: certain block yes (1.0) + uncertain block 0.5. *)
  check_float ~eps:1e-3 "expected count mixed" 1.5
    (Probdb.Pdb.expected_count db (Probdb.Predicate.Eq (1, 0)))

let test_pdb_prob_exists () =
  let db = hand_db () in
  (* a1 = 1 never holds in block 1, holds w.p. 0.5 in block 2. *)
  check_float ~eps:1e-3 "exists" 0.5
    (Probdb.Pdb.prob_exists db (Probdb.Predicate.Eq (1, 1)));
  check_float "exists certain" 1.0
    (Probdb.Pdb.prob_exists db (Probdb.Predicate.Eq (0, 0)))

let test_pdb_tuple_prob () =
  let db = hand_db () in
  check_float ~eps:1e-3 "block marginal" 0.5
    (Probdb.Pdb.tuple_prob db (Probdb.Predicate.Eq (2, 0)) 1);
  Alcotest.check_raises "range"
    (Invalid_argument "Pdb.tuple_prob: block index out of range") (fun () ->
      ignore (Probdb.Pdb.tuple_prob db Probdb.Predicate.True 7))

let test_pdb_most_probable_world () =
  let db = hand_db () in
  let world, logp = Probdb.Pdb.most_probable_world db in
  Alcotest.(check int) "one point per block" 2 (Array.length world);
  Alcotest.(check (array int)) "certain block choice" [| 0; 0; 0 |] world.(0);
  Alcotest.(check bool) "finite log prob" true (Float.is_finite logp);
  (* Modal world probability: 1.0 * 0.25 (uniform over 4). *)
  check_float ~eps:2e-2 "log prob value" (log 0.25) logp

let test_pdb_world_log_prob_invalid_choice () =
  let db = hand_db () in
  let world = [| [| 0; 0; 0 |]; [| 0; 0; 0 |] |] in
  (* Second choice has a0 = 0, impossible in the uncertain block. *)
  Alcotest.(check bool) "impossible world" true
    (Probdb.Pdb.world_log_prob db world = neg_infinity)

let test_pdb_sample_world () =
  let db = hand_db () in
  let r = rng () in
  for _ = 1 to 50 do
    let world = Probdb.Pdb.sample_world r db in
    Alcotest.(check (array int)) "certain block" [| 0; 0; 0 |] world.(0);
    Alcotest.(check int) "uncertain keeps evidence" 1 world.(1).(0)
  done

let test_pdb_derive_end_to_end () =
  (* The paper's full pipeline: learn from Fig-1-like data, derive a
     probabilistic DB for a relation with incomplete tuples. *)
  let complete = dependent_points 300 in
  let incomplete : Relation.Tuple.t list =
    [ [| Some 1; None; None |]; [| None; Some 0; None |] ]
  in
  let inst =
    Relation.Instance.make dependent_schema
      (Array.to_list (Array.map Relation.Tuple.of_point complete) @ incomplete)
  in
  let model = Mrsl.Model.learn inst in
  let db =
    Probdb.Pdb.derive
      ~config:{ burn_in = 20; samples = 300 }
      (rng ()) model inst
  in
  Alcotest.(check int) "one block per tuple" 302 (Probdb.Pdb.block_count db);
  (* The derived block for (1,?,?) must favor a1 = 1 (the dependency). *)
  let blocks = Probdb.Pdb.blocks db in
  let block = blocks.(300) in
  let top = Probdb.Block.top block in
  Alcotest.(check int) "evidence kept" 1 top.point.(0);
  Alcotest.(check int) "dependency in top completion" 1 top.point.(1)

let test_pdb_derive_schema_mismatch () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 20) in
  let other = Relation.Schema.of_cardinalities [ 2; 2 ] in
  let inst = Relation.Instance.of_points other [ [| 0; 0 |] ] in
  Alcotest.check_raises "schema mismatch"
    (Invalid_argument "Pdb.derive: instance schema does not match model schema")
    (fun () -> ignore (Probdb.Pdb.derive (rng ()) model inst))

(* Property: expected_count is linear — for any database and predicate it
   equals the sum of block marginals, and prob_exists never exceeds it. *)
let prop_exists_le_expected =
  qcheck ~count:40 "P(exists) <= E[count]"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let est = est_for [| Some 1; None; None |]
          [| 1 + Prob.Rng.int r 5; 1 + Prob.Rng.int r 5;
             1 + Prob.Rng.int r 5; 1 + Prob.Rng.int r 5 |]
      in
      let db =
        Probdb.Pdb.make dependent_schema
          [ Probdb.Block.of_estimate est; Probdb.Block.of_point [| 1; 1; 0 |] ]
      in
      let pred = Probdb.Predicate.Eq (1, 1) in
      Probdb.Pdb.prob_exists db pred
      <= Probdb.Pdb.expected_count db pred +. 1e-9)

let suite =
  [
    ("block from estimate", `Quick, test_block_of_estimate);
    ("block truncation", `Quick, test_block_truncation);
    ("certain block", `Quick, test_block_of_point);
    ("predicate evaluation", `Quick, test_predicate_eval);
    ("predicate from labels", `Quick, test_predicate_labels);
    ("possible worlds count", `Quick, test_pdb_possible_worlds);
    ("expected count", `Quick, test_pdb_expected_count);
    ("prob exists", `Quick, test_pdb_prob_exists);
    ("tuple prob", `Quick, test_pdb_tuple_prob);
    ("most probable world", `Quick, test_pdb_most_probable_world);
    ("impossible world log prob", `Quick, test_pdb_world_log_prob_invalid_choice);
    ("sample world", `Quick, test_pdb_sample_world);
    ("derive end-to-end", `Quick, test_pdb_derive_end_to_end);
    ("derive schema mismatch", `Quick, test_pdb_derive_schema_mismatch);
    prop_exists_le_expected;
  ]

(* Export *)

let test_export_csv_shape () =
  let db = hand_db () in
  let csv = Probdb.Export.to_csv db in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> l <> "")
  in
  (* Header + one row per alternative (1 + 4). *)
  Alcotest.(check int) "row count" (1 + 1 + 4) (List.length lines);
  (match lines with
  | header :: _ ->
      Alcotest.(check string) "header" "block,a0,a1,a2,prob" header
  | [] -> Alcotest.fail "empty export");
  Alcotest.(check bool) "fig1-style ids" true
    (Astring_like.contains csv "t2.1")

let test_export_probabilities_parse_back () =
  let db = hand_db () in
  let csv = Probdb.Export.to_csv db in
  let rows =
    String.split_on_char '\n' csv
    |> List.filter (fun l -> l <> "")
    |> List.tl
  in
  let total_block2 =
    List.fold_left
      (fun acc row ->
        match Relation.Csv_io.parse_line row with
        | id :: rest when String.length id >= 2 && String.sub id 0 2 = "t2" ->
            acc +. float_of_string (List.nth rest (List.length rest - 1))
        | _ -> acc)
      0. rows
  in
  check_float ~eps:1e-3 "block 2 mass" 1.0 total_block2

let test_export_summary () =
  let db = hand_db () in
  let s = Probdb.Export.summary db in
  Alcotest.(check bool) "mentions blocks" true
    (Astring_like.contains s "2 blocks");
  Alcotest.(check bool) "mentions worlds" true
    (Astring_like.contains s "4 possible worlds")

let test_export_file () =
  let db = hand_db () in
  let path = Filename.temp_file "mrsl_pdb" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Probdb.Export.to_file path db;
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "file matches string" (Probdb.Export.to_csv db)
        contents)

let suite =
  suite
  @ [
      ("export csv shape", `Quick, test_export_csv_shape);
      ("export probabilities sum", `Quick, test_export_probabilities_parse_back);
      ("export summary", `Quick, test_export_summary);
      ("export to file", `Quick, test_export_file);
    ]
