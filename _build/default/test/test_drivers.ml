(* Smoke-scale unit tests for the experiment drivers: each artifact's
   compute function must produce well-formed rows/series (this is the
   bench harness's own test coverage). *)



let scale = Experiments.Scale.smoke
let finite x = Float.is_finite x

let test_fig4_shapes () =
  let rng = Prob.Rng.create 1 in
  let vs_train = Experiments.Fig4.compute_vs_train rng scale in
  Alcotest.(check int) "one point per train size"
    (List.length scale.train_sizes)
    (List.length vs_train);
  List.iter
    (fun (p : Experiments.Fig4.point) ->
      Alcotest.(check bool) "positive time" true (p.build_time >= 0.);
      Alcotest.(check bool) "nonzero model" true (p.model_size > 0.))
    vs_train;
  let vs_support = Experiments.Fig4.compute_vs_support rng scale in
  Alcotest.(check int) "one point per support"
    (List.length scale.supports)
    (List.length vs_support);
  (* Model size decreases (weakly) as support rises. *)
  let sizes = List.map (fun (p : Experiments.Fig4.point) -> p.model_size) vs_support in
  let sorted = List.sort (fun a b -> Float.compare b a) sizes in
  Alcotest.(check bool) "model size anti-monotone in support" true
    (sizes = sorted)

let test_table2_shapes () =
  let rng = Prob.Rng.create 2 in
  let rows = Experiments.Table2.compute rng scale in
  Alcotest.(check int) "14 networks" 14 (List.length rows);
  List.iter
    (fun (r : Experiments.Table2.row) ->
      Alcotest.(check int) "four methods" 4 (List.length r.per_method);
      List.iter
        (fun (_, (a : Experiments.Framework.accuracy)) ->
          Alcotest.(check bool) "finite KL" true (finite a.kl);
          Alcotest.(check bool) "top1 in [0,1]" true
            (a.top1 >= 0. && a.top1 <= 1.))
        r.per_method)
    rows

let test_fig5_fig6_shapes () =
  let rng = Prob.Rng.create 3 in
  let f5 = Experiments.Fig5.compute rng scale in
  Alcotest.(check int) "fig5 x count" (List.length scale.train_sizes)
    (List.length f5);
  let f6 = Experiments.Fig6.compute rng scale in
  Alcotest.(check int) "fig6 x count" (List.length scale.supports)
    (List.length f6);
  List.iter
    (fun (p : Experiments.Fig5.point) ->
      Alcotest.(check int) "four methods" 4 (List.length p.per_method))
    (f5 @ f6)

let test_fig8_shapes () =
  let rng = Prob.Rng.create 4 in
  Alcotest.(check int) "topology panel" 3
    (List.length (Experiments.Fig8.compute_topology rng scale));
  Alcotest.(check int) "size panel" 4
    (List.length (Experiments.Fig8.compute_size rng scale));
  Alcotest.(check int) "cardinality panel" 4
    (List.length (Experiments.Fig8.compute_cardinality rng scale))

let test_fig9_shapes () =
  let rng = Prob.Rng.create 5 in
  let points = Experiments.Fig9.compute rng scale in
  Alcotest.(check bool) "points exist" true (points <> []);
  List.iter
    (fun (p : Experiments.Fig9.point) ->
      Alcotest.(check bool) "positive batch" true (p.batch > 0);
      Alcotest.(check bool) "time finite" true (finite p.seconds))
    points

let test_fig10_shapes () =
  let rng = Prob.Rng.create 6 in
  let points = Experiments.Fig10.compute rng scale in
  List.iter
    (fun (p : Experiments.Fig10.point) ->
      Alcotest.(check bool) "network known" true
        (List.mem p.network Experiments.Fig10.networks);
      Alcotest.(check bool) "finite kl" true (finite p.kl))
    points;
  (* BN8 is 4 attributes: a 3-missing cell exists, 5-missing cannot. *)
  Alcotest.(check bool) "no impossible cells" true
    (List.for_all
       (fun (p : Experiments.Fig10.point) ->
         p.network <> "BN8" || p.missing < 4)
       points)

let test_fig11_shapes () =
  let rng = Prob.Rng.create 7 in
  let points = Experiments.Fig11.compute rng scale in
  Alcotest.(check bool) "points exist" true (points <> []);
  (* For every (network, workload) pair, the tuple-DAG run uses no more
     sampled points than tuple-at-a-time. *)
  List.iter
    (fun (p : Experiments.Fig11.point) ->
      if p.strategy = Mrsl.Workload.Tuple_dag then
        match
          List.find_opt
            (fun (q : Experiments.Fig11.point) ->
              q.network = p.network && q.workload = p.workload
              && q.strategy = Mrsl.Workload.Tuple_at_a_time)
            points
        with
        | Some q ->
            Alcotest.(check bool) "DAG never samples more" true
              (p.sampled_points <= q.sampled_points)
        | None -> Alcotest.fail "missing baseline observation")
    points

let test_baselines_shapes () =
  let rng = Prob.Rng.create 8 in
  let rows = Experiments.Baselines_exp.compute rng scale in
  Alcotest.(check int) "4 methods x 3 networks" 12 (List.length rows);
  List.iter
    (fun (r : Experiments.Baselines_exp.row) ->
      Alcotest.(check bool) "finite" true (finite r.kl && finite r.learn_seconds))
    rows

let test_missingness_shapes () =
  let rng = Prob.Rng.create 9 in
  let rows = Experiments.Missingness_exp.compute rng scale in
  Alcotest.(check int) "3 mechanisms x 2 networks" 6 (List.length rows);
  List.iter
    (fun (r : Experiments.Missingness_exp.row) ->
      Alcotest.(check bool) "fraction in (0,1]" true
        (r.complete_fraction > 0. && r.complete_fraction <= 1.);
      Alcotest.(check bool) "scored something" true (r.tuples > 0))
    rows

let test_ablation_shapes () =
  let rng = Prob.Rng.create 10 in
  let caps = Experiments.Ablations.max_itemsets rng scale in
  Alcotest.(check int) "four caps" 4 (List.length caps);
  (* Model size grows (weakly) with the cap. *)
  let sizes = List.map (fun (r : Experiments.Ablations.max_itemsets_row) -> r.model_size) caps in
  Alcotest.(check bool) "monotone in cap" true
    (List.sort Float.compare sizes = sizes);
  let strategies = Experiments.Ablations.strategies rng scale in
  Alcotest.(check int) "three strategies" 3 (List.length strategies);
  let memo = Experiments.Ablations.memoization rng scale in
  (match memo with
  | [ off; on ] ->
      Alcotest.(check bool) "cache on is faster" true (on.seconds <= off.seconds);
      Alcotest.(check bool) "cache hits recorded" true (on.cache_hits > 0)
  | _ -> Alcotest.fail "expected off/on rows")

let suite =
  [
    ("fig4 driver", `Slow, test_fig4_shapes);
    ("table2 driver", `Slow, test_table2_shapes);
    ("fig5/fig6 drivers", `Slow, test_fig5_fig6_shapes);
    ("fig8 driver", `Slow, test_fig8_shapes);
    ("fig9 driver", `Slow, test_fig9_shapes);
    ("fig10 driver", `Slow, test_fig10_shapes);
    ("fig11 driver", `Slow, test_fig11_shapes);
    ("baselines driver", `Slow, test_baselines_shapes);
    ("missingness driver", `Slow, test_missingness_shapes);
    ("ablations driver", `Slow, test_ablation_shapes);
  ]
