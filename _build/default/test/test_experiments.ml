(* Tests for the experimental framework: report rendering, scale presets,
   and framework plumbing at smoke scale. *)

open Helpers

let scale = Experiments.Scale.smoke

let test_report_render () =
  let out =
    Experiments.Report.render ~title:"T" ~header:[ "a"; "b" ]
      [ [ Experiments.Report.S "x"; Experiments.Report.I 3 ] ]
  in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.sub out 0 1 = "T");
  Alcotest.(check bool) "contains row" true
    (Astring_like.contains out "x")

and test_report_width_mismatch () =
  Alcotest.check_raises "width"
    (Invalid_argument "Report.render: row width does not match header")
    (fun () ->
      ignore
        (Experiments.Report.render ~title:"T" ~header:[ "a"; "b" ]
           [ [ Experiments.Report.I 3 ] ]))

let test_report_series () =
  let out =
    Experiments.Report.render_series ~title:"S" ~x_label:"x"
      ~series:[ "s1"; "s2" ]
      [ (1., [ 0.5; 0.25 ]) ]
  in
  Alcotest.(check bool) "contains values" true
    (Astring_like.contains out "0.5000" && Astring_like.contains out "0.2500")

let test_scale_presets () =
  Alcotest.(check string) "smoke" "smoke" Experiments.Scale.smoke.name;
  Alcotest.(check string) "default" "default" Experiments.Scale.default.name;
  Alcotest.(check string) "full" "full" Experiments.Scale.full.name;
  (* The full preset must reproduce the paper's headline parameters. *)
  Alcotest.(check int) "paper max train" 100_000
    (List.fold_left max 0 Experiments.Scale.full.train_sizes);
  Alcotest.(check bool) "paper min support" true
    (List.mem 0.001 Experiments.Scale.full.supports);
  Alcotest.(check int) "paper workload samples" 500
    Experiments.Scale.full.workload_samples;
  Alcotest.(check int) "paper instances" 3 Experiments.Scale.full.instances;
  Alcotest.(check int) "paper splits" 3 Experiments.Scale.full.splits

let test_framework_prepare () =
  let entry = Bayesnet.Catalog.find "BN8" in
  let reps = Experiments.Framework.prepare (rng ()) scale entry ~train_size:200 in
  Alcotest.(check int) "instances × splits" (scale.instances * scale.splits)
    (List.length reps);
  List.iter
    (fun (p : Experiments.Framework.prepared) ->
      Alcotest.(check bool) "train close to requested" true
        (abs (Relation.Instance.size p.train - 200) <= 3);
      Alcotest.(check bool) "test points exist" true
        (Array.length p.test_points > 0))
    reps

let test_framework_learn_and_eval () =
  let entry = Bayesnet.Catalog.find "BN8" in
  let prepared =
    List.hd (Experiments.Framework.prepare (rng ()) scale entry ~train_size:800)
  in
  let model, seconds =
    Experiments.Framework.learn_timed prepared ~support:0.01
  in
  Alcotest.(check bool) "learning takes time" true (seconds >= 0.);
  Alcotest.(check bool) "model nonempty" true (Mrsl.Model.size model > 4);
  let accs =
    Experiments.Framework.eval_single (rng ()) prepared model
      ~methods:Mrsl.Voting.all_methods ~max_tuples:20
  in
  Alcotest.(check int) "four methods" 4 (List.length accs);
  List.iter
    (fun (_, (a : Experiments.Framework.accuracy)) ->
      Alcotest.(check bool) "kl finite" true (Float.is_finite a.kl);
      Alcotest.(check bool) "top1 in range" true (a.top1 >= 0. && a.top1 <= 1.);
      Alcotest.(check bool) "counted tuples" true (a.count > 0))
    accs

let test_framework_merge () =
  let a = { Experiments.Framework.kl = 0.1; top1 = 1.0; count = 10 } in
  let b = { Experiments.Framework.kl = 0.3; top1 = 0.5; count = 30 } in
  let m = Experiments.Framework.merge [ a; b ] in
  check_float "pooled kl" 0.25 m.kl;
  check_float "pooled top1" 0.625 m.top1;
  Alcotest.(check int) "pooled count" 40 m.count;
  let empty = Experiments.Framework.merge [] in
  Alcotest.(check int) "empty merge" 0 empty.count

let test_framework_eval_joint () =
  let entry = Bayesnet.Catalog.find "BN8" in
  let prepared =
    List.hd (Experiments.Framework.prepare (rng ()) scale entry ~train_size:800)
  in
  let model, _ = Experiments.Framework.learn_timed prepared ~support:0.01 in
  let acc =
    Experiments.Framework.eval_joint (rng ()) prepared model ~missing:2
      ~samples:200 ~burn_in:20 ~max_tuples:5
  in
  Alcotest.(check bool) "finite" true (Float.is_finite acc.kl);
  Alcotest.(check int) "five tuples" 5 acc.count

let test_framework_workload () =
  let entry = Bayesnet.Catalog.find "BN8" in
  let prepared =
    List.hd (Experiments.Framework.prepare (rng ()) scale entry ~train_size:400)
  in
  let workload =
    Experiments.Framework.make_workload (rng ()) prepared ~size:30
  in
  Alcotest.(check int) "requested size" 30 (List.length workload);
  (* All distinct. *)
  let dag = Mrsl.Tuple_dag.build workload in
  Alcotest.(check int) "all distinct" 30 (Mrsl.Tuple_dag.node_count dag);
  let model, _ = Experiments.Framework.learn_timed prepared ~support:0.02 in
  let stats =
    Experiments.Framework.workload_stats (rng ()) model
      ~strategy:Mrsl.Workload.Tuple_dag ~samples:50 ~burn_in:10 workload
  in
  Alcotest.(check bool) "sweeps counted" true (stats.sweeps > 0)

let test_table1_rows () =
  let rows = Experiments.Table1.compute () in
  Alcotest.(check int) "20 rows" 20 (List.length rows);
  List.iter
    (fun (r : Experiments.Table1.row) ->
      Alcotest.(check int) (r.id ^ " attrs match") r.paper_num_attrs r.num_attrs;
      Alcotest.(check int) (r.id ^ " depth match") r.paper_depth r.depth)
    rows;
  let rendered = Experiments.Table1.render () in
  Alcotest.(check bool) "rendered contains BN20" true
    (Astring_like.contains rendered "BN20")

let suite =
  [
    ("report render", `Quick, test_report_render);
    ("report width mismatch", `Quick, test_report_width_mismatch);
    ("report series", `Quick, test_report_series);
    ("scale presets", `Quick, test_scale_presets);
    ("framework prepare", `Quick, test_framework_prepare);
    ("framework learn + eval_single", `Quick, test_framework_learn_and_eval);
    ("framework merge", `Quick, test_framework_merge);
    ("framework eval_joint", `Quick, test_framework_eval_joint);
    ("framework workload", `Quick, test_framework_workload);
    ("table1 rows", `Quick, test_table1_rows);
  ]

let test_report_percentage_cells () =
  let out =
    Experiments.Report.render ~title:"P" ~header:[ "v" ]
      [ [ Experiments.Report.P 0.255 ]; [ Experiments.Report.P 1.0 ] ]
  in
  Alcotest.(check bool) "renders percentages" true
    (Astring_like.contains out "25.5%" && Astring_like.contains out "100.0%")

let test_report_tiny_floats_scientific () =
  let out =
    Experiments.Report.render ~title:"F" ~header:[ "v" ]
      [ [ Experiments.Report.F 1e-7 ] ]
  in
  Alcotest.(check bool) "scientific for tiny magnitudes" true
    (Astring_like.contains out "1.00e-07")

let test_scale_env_selection () =
  (* current () must fall back to default on unknown values. *)
  let saved = Sys.getenv_opt "MRSL_SCALE" in
  Unix.putenv "MRSL_SCALE" "bogus-value";
  let s = Experiments.Scale.current () in
  Alcotest.(check string) "fallback" "default" s.name;
  Unix.putenv "MRSL_SCALE" "smoke";
  Alcotest.(check string) "smoke selected" "smoke"
    (Experiments.Scale.current ()).name;
  (match saved with
  | Some v -> Unix.putenv "MRSL_SCALE" v
  | None -> Unix.putenv "MRSL_SCALE" "default")

let suite =
  suite
  @ [
      ("report percentage cells", `Quick, test_report_percentage_cells);
      ("report tiny floats", `Quick, test_report_tiny_floats_scientific);
      ("scale env selection", `Quick, test_scale_env_selection);
    ]
