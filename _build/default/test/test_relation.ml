(* Tests for the relation substrate: Attribute, Schema, Tuple, Instance,
   Domain, Csv_io. Several cases check the paper's running example
   (Fig 1 / Section II definitions). *)

open Helpers

let test_attribute_make () =
  let a = Relation.Attribute.make "age" [ "20"; "30"; "40" ] in
  Alcotest.(check string) "name" "age" (Relation.Attribute.name a);
  Alcotest.(check int) "cardinality" 3 (Relation.Attribute.cardinality a);
  Alcotest.(check string) "label" "30" (Relation.Attribute.value_label a 1);
  Alcotest.(check int) "index" 2 (Relation.Attribute.value_index a "40")

let test_attribute_rejects () =
  let iv msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  ignore iv;
  Alcotest.check_raises "empty name"
    (Invalid_argument "Attribute.make: empty name") (fun () ->
      ignore (Relation.Attribute.make "" [ "x" ]));
  Alcotest.check_raises "empty domain"
    (Invalid_argument "Attribute.make: empty domain") (fun () ->
      ignore (Relation.Attribute.make "a" []));
  Alcotest.check_raises "duplicate value"
    (Invalid_argument "Attribute.make: duplicate value x") (fun () ->
      ignore (Relation.Attribute.make "a" [ "x"; "x" ]));
  Alcotest.check_raises "reserved marker"
    (Invalid_argument "Attribute.make: \"?\" is reserved for missing values")
    (fun () -> ignore (Relation.Attribute.make "a" [ "?" ]))

let test_attribute_unknown_label () =
  let a = Relation.Attribute.make "a" [ "x" ] in
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Relation.Attribute.value_index a "y"))

let test_indexed_attribute () =
  let a = Relation.Attribute.indexed "b" 4 in
  Alcotest.(check int) "card" 4 (Relation.Attribute.cardinality a);
  Alcotest.(check string) "labels" "v3" (Relation.Attribute.value_label a 3)

let test_schema_basics () =
  let s = fig1_schema in
  Alcotest.(check int) "arity" 4 (Relation.Schema.arity s);
  Alcotest.(check int) "index_of edu" 1 (Relation.Schema.index_of s "edu");
  Alcotest.(check int) "card inc" 2 (Relation.Schema.cardinality s 2);
  check_float "domain size" 36. (Relation.Schema.domain_size s)

let test_schema_rejects_duplicates () =
  Alcotest.check_raises "duplicate attribute"
    (Invalid_argument "Schema.make: duplicate attribute a") (fun () ->
      ignore
        (Relation.Schema.make
           [ Relation.Attribute.indexed "a" 2; Relation.Attribute.indexed "a" 3 ]))

let test_schema_of_cardinalities () =
  let s = Relation.Schema.of_cardinalities [ 2; 3 ] in
  Alcotest.(check string) "names" "a1"
    (Relation.Attribute.name (Relation.Schema.attribute s 1));
  Alcotest.(check bool) "equal to itself" true (Relation.Schema.equal s s)

(* Tuple: the paper's Section II examples. *)

let t1 : Relation.Tuple.t = [| Some 0; Some 0; None; None |] (* 20,HS,?,? *)
let t2_point = [| 0; 1; 0; 0 |] (* 20,BS,50K,100K *)
let t3 : Relation.Tuple.t = [| Some 0; None; Some 0; None |] (* 20,?,50K,? *)
let t4_point = [| 0; 0; 1; 1 |] (* 20,HS,100K,500K *)
let t5 : Relation.Tuple.t = [| Some 0; None; None; None |] (* 20,?,?,? *)
let t8 : Relation.Tuple.t = [| None; Some 0; None; None |] (* ?,HS,?,? *)

let test_tuple_complete () =
  Alcotest.(check bool) "t1 incomplete" false (Relation.Tuple.is_complete t1);
  let p = Relation.Tuple.of_point t2_point in
  Alcotest.(check bool) "point complete" true (Relation.Tuple.is_complete p);
  (match Relation.Tuple.to_point p with
  | Some q -> Alcotest.(check (array int)) "roundtrip" t2_point q
  | None -> Alcotest.fail "expected point");
  Alcotest.(check bool) "to_point of incomplete" true
    (Relation.Tuple.to_point t1 = None)

let test_tuple_known_missing () =
  Alcotest.(check (list (pair int int))) "known of t1" [ (0, 0); (1, 0) ]
    (Relation.Tuple.known t1);
  Alcotest.(check (list int)) "missing of t1" [ 2; 3 ]
    (Relation.Tuple.missing t1);
  Alcotest.(check int) "known_count" 2 (Relation.Tuple.known_count t1);
  Alcotest.(check int) "missing_count" 2 (Relation.Tuple.missing_count t1)

let test_tuple_matches_paper_example () =
  (* "point t4 supports tuple t1, while point t2 does not" (Def 2.3). *)
  Alcotest.(check bool) "t4 matches t1" true
    (Relation.Tuple.matches ~point:t4_point t1);
  Alcotest.(check bool) "t2 does not match t1" false
    (Relation.Tuple.matches ~point:t2_point t1)

let test_tuple_subsumption_paper_example () =
  (* "t1 ≺ t5 and t3 ≺ t5. No subsumption holds between t1 and t3." *)
  Alcotest.(check bool) "t5 subsumes t1" true (Relation.Tuple.subsumes t5 t1);
  Alcotest.(check bool) "t5 subsumes t3" true (Relation.Tuple.subsumes t5 t3);
  Alcotest.(check bool) "t1 vs t3" false (Relation.Tuple.subsumes t1 t3);
  Alcotest.(check bool) "t3 vs t1" false (Relation.Tuple.subsumes t3 t1);
  Alcotest.(check bool) "no self subsumption" false
    (Relation.Tuple.subsumes t1 t1);
  (* t8 subsumes t1 (Section II: t1 ≺ t8). *)
  Alcotest.(check bool) "t8 subsumes t1" true (Relation.Tuple.subsumes t8 t1)

let test_tuple_agrees_on_known () =
  Alcotest.(check bool) "t1 agrees t5" true
    (Relation.Tuple.agrees_on_known t1 t5);
  let conflicting : Relation.Tuple.t = [| Some 1; Some 0; None; None |] in
  Alcotest.(check bool) "conflict detected" false
    (Relation.Tuple.agrees_on_known t1 conflicting)

let test_tuple_pp () =
  Alcotest.(check string) "render" "⟨20, HS, ?, ?⟩"
    (Relation.Tuple.to_string fig1_schema t1)

let test_tuple_hash_equal () =
  let a : Relation.Tuple.t = [| Some 1; None |] in
  let b : Relation.Tuple.t = [| Some 1; None |] in
  Alcotest.(check bool) "equal" true (Relation.Tuple.equal a b);
  Alcotest.(check int) "hash equal" (Relation.Tuple.hash a)
    (Relation.Tuple.hash b);
  let tbl = Relation.Tuple.Table.create 4 in
  Relation.Tuple.Table.replace tbl a 1;
  Alcotest.(check (option int)) "table lookup" (Some 1)
    (Relation.Tuple.Table.find_opt tbl b)

(* Instance *)

let test_instance_parts () =
  let r = fig1_relation () in
  Alcotest.(check int) "size" 17 (Relation.Instance.size r);
  Alcotest.(check int) "complete part" 8
    (Array.length (Relation.Instance.complete_part r));
  Alcotest.(check int) "incomplete part" 9
    (Array.length (Relation.Instance.incomplete_part r))

let test_instance_support_paper () =
  (* supp(t1) = 3/8 in Fig 1 (points t4, t6, t7 match). *)
  let r = fig1_relation () in
  check_float "supp(t1)" (3. /. 8.) (Relation.Instance.support r t1)

let test_instance_validation () =
  let s = Relation.Schema.of_cardinalities [ 2; 2 ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Instance.make: tuple arity does not match schema")
    (fun () -> ignore (Relation.Instance.make s [ [| Some 0 |] ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Instance.make: value 7 out of range for attribute a0")
    (fun () -> ignore (Relation.Instance.make s [ [| Some 7; Some 0 |] ]))

let test_instance_split () =
  let s = Relation.Schema.of_cardinalities [ 2 ] in
  let points = List.init 100 (fun i -> [| i mod 2 |]) in
  let inst = Relation.Instance.of_points s points in
  let train, test = Relation.Instance.split (rng ()) ~train_fraction:0.9 inst in
  Alcotest.(check int) "train size" 90 (Relation.Instance.size train);
  Alcotest.(check int) "test size" 10 (Relation.Instance.size test);
  Alcotest.(check int) "partition" 100
    (Relation.Instance.size train + Relation.Instance.size test)

let test_instance_split_invalid () =
  let s = Relation.Schema.of_cardinalities [ 2 ] in
  let inst = Relation.Instance.of_points s [ [| 0 |]; [| 1 |] ] in
  Alcotest.check_raises "fraction 1"
    (Invalid_argument "Instance.split: train_fraction must be in (0, 1)")
    (fun () -> ignore (Relation.Instance.split (rng ()) ~train_fraction:1.0 inst))

let test_mask_exact () =
  let s = Relation.Schema.of_cardinalities [ 2; 2; 2; 2 ] in
  let inst = Relation.Instance.of_points s (List.init 50 (fun _ -> [| 0; 1; 0; 1 |])) in
  let masked = Relation.Instance.mask_exact (rng ()) ~missing:2 inst in
  Array.iter
    (fun tup ->
      Alcotest.(check int) "two missing" 2 (Relation.Tuple.missing_count tup))
    (Relation.Instance.tuples masked)

let test_mask_preserves_existing () =
  let s = Relation.Schema.of_cardinalities [ 2; 2 ] in
  let inst = Relation.Instance.make s [ [| None; Some 1 |] ] in
  let masked = Relation.Instance.mask_exact (rng ()) ~missing:1 inst in
  (* Already one missing: the tuple is unchanged. *)
  Alcotest.(check bool) "unchanged" true
    (Relation.Tuple.equal (Relation.Instance.tuples masked).(0)
       [| None; Some 1 |])

let test_mask_uniform_range () =
  let s = Relation.Schema.of_cardinalities [ 2; 2; 2 ] in
  let inst =
    Relation.Instance.of_points s (List.init 200 (fun _ -> [| 0; 0; 0 |]))
  in
  let masked = Relation.Instance.mask_uniform (rng ()) ~max_missing:2 inst in
  let counts = Array.make 4 0 in
  Array.iter
    (fun tup ->
      let m = Relation.Tuple.missing_count tup in
      counts.(m) <- counts.(m) + 1)
    (Relation.Instance.tuples masked);
  Alcotest.(check int) "none with zero missing" 0 counts.(0);
  Alcotest.(check int) "none beyond max" 0 counts.(3);
  Alcotest.(check bool) "both counts appear" true
    (counts.(1) > 0 && counts.(2) > 0)

let test_instance_append () =
  let s = Relation.Schema.of_cardinalities [ 2 ] in
  let a = Relation.Instance.of_points s [ [| 0 |] ] in
  let b = Relation.Instance.of_points s [ [| 1 |] ] in
  Alcotest.(check int) "appended" 2
    (Relation.Instance.size (Relation.Instance.append a b))

(* Domain *)

let test_domain_roundtrip () =
  let cards = [| 3; 2; 4 |] in
  Alcotest.(check int) "count" 24 (Relation.Domain.count cards);
  for code = 0 to 23 do
    let values = Relation.Domain.decode cards code in
    Alcotest.(check int) "roundtrip" code (Relation.Domain.encode cards values)
  done

let test_domain_order () =
  let cards = [| 2; 3 |] in
  Alcotest.(check (array int)) "code 0" [| 0; 0 |]
    (Relation.Domain.decode cards 0);
  Alcotest.(check (array int)) "code 1 varies last" [| 0; 1 |]
    (Relation.Domain.decode cards 1);
  Alcotest.(check (array int)) "code 3 carries" [| 1; 0 |]
    (Relation.Domain.decode cards 3)

let test_domain_iter () =
  let cards = [| 2; 2 |] in
  let seen = ref [] in
  Relation.Domain.iter cards (fun code values ->
      seen := (code, Array.copy values) :: !seen);
  Alcotest.(check int) "visits all" 4 (List.length !seen);
  List.iteri
    (fun i (code, values) ->
      let expected_code = 3 - i in
      Alcotest.(check int) "code order" expected_code code;
      Alcotest.(check (array int)) "values consistent"
        (Relation.Domain.decode cards code)
        values)
    !seen

let test_domain_rejects () =
  Alcotest.check_raises "bad radix"
    (Invalid_argument "Domain.count: radix must be >= 1") (fun () ->
      ignore (Relation.Domain.count [| 0 |]));
  Alcotest.check_raises "value range"
    (Invalid_argument "Domain.encode: value out of range") (fun () ->
      ignore (Relation.Domain.encode [| 2 |] [| 2 |]))

(* CSV *)

let test_csv_parse_line () =
  Alcotest.(check (list string)) "plain" [ "a"; "b"; "c" ]
    (Relation.Csv_io.parse_line "a,b,c");
  Alcotest.(check (list string)) "quoted" [ "a,b"; "c\"d" ]
    (Relation.Csv_io.parse_line "\"a,b\",\"c\"\"d\"");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "" ]
    (Relation.Csv_io.parse_line ",,")

let test_csv_escape () =
  Alcotest.(check string) "plain untouched" "abc"
    (Relation.Csv_io.escape_field "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\""
    (Relation.Csv_io.escape_field "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\""
    (Relation.Csv_io.escape_field "a\"b")

let test_csv_roundtrip () =
  let r = fig1_relation () in
  let text = Relation.Csv_io.write_string r in
  let r2 = Relation.Csv_io.read_string ~schema:fig1_schema text in
  Alcotest.(check int) "size preserved" (Relation.Instance.size r)
    (Relation.Instance.size r2);
  Array.iteri
    (fun i tup ->
      Alcotest.(check bool) "tuple preserved" true
        (Relation.Tuple.equal tup (Relation.Instance.tuples r2).(i)))
    (Relation.Instance.tuples r)

let test_csv_infer_schema () =
  let r = Relation.Csv_io.read_string "x,y\n1,a\n2,b\n?,a\n" in
  let s = Relation.Instance.schema r in
  Alcotest.(check int) "arity" 2 (Relation.Schema.arity s);
  Alcotest.(check int) "x card" 2 (Relation.Schema.cardinality s 0);
  Alcotest.(check int) "incomplete" 1
    (Array.length (Relation.Instance.incomplete_part r))

let test_csv_errors () =
  Alcotest.check_raises "ragged"
    (Failure "Csv_io.read_string: row 3 has 1 fields, expected 2") (fun () ->
      ignore (Relation.Csv_io.read_string "x,y\n1,2\nonly\n"));
  Alcotest.check_raises "empty"
    (Failure "Csv_io.read_string: empty document") (fun () ->
      ignore (Relation.Csv_io.read_string "  \n"))

let test_csv_file_roundtrip () =
  let r = fig1_relation () in
  let path = Filename.temp_file "mrsl_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Relation.Csv_io.write_file path r;
      let r2 = Relation.Csv_io.read_file ~schema:fig1_schema path in
      Alcotest.(check int) "file roundtrip" (Relation.Instance.size r)
        (Relation.Instance.size r2))

(* Properties *)

let tuple_gen =
  QCheck2.Gen.(
    list_size (int_range 1 6) (opt (int_range 0 3)) >|= Array.of_list)

let prop_subsumption_irreflexive =
  qcheck "subsumption is irreflexive" tuple_gen (fun t ->
      not (Relation.Tuple.subsumes t t))

let prop_subsumption_antisymmetric =
  qcheck "subsumption is antisymmetric"
    QCheck2.Gen.(tup2 tuple_gen tuple_gen)
    (fun (a, b) ->
      Array.length a <> Array.length b
      || not (Relation.Tuple.subsumes a b && Relation.Tuple.subsumes b a))

let prop_domain_roundtrip =
  qcheck "domain encode/decode roundtrip"
    QCheck2.Gen.(
      list_size (int_range 1 5) (int_range 1 5) >>= fun cards ->
      let cards = Array.of_list cards in
      let total = Relation.Domain.count cards in
      int_range 0 (total - 1) >|= fun code -> (cards, code))
    (fun (cards, code) ->
      Relation.Domain.encode cards (Relation.Domain.decode cards code) = code)

let prop_mask_count =
  qcheck "mask_exact leaves the requested number missing"
    QCheck2.Gen.(int_range 0 3)
    (fun missing ->
      let s = Relation.Schema.of_cardinalities [ 2; 2; 2 ] in
      let inst = Relation.Instance.of_points s [ [| 0; 1; 0 |] ] in
      let masked = Relation.Instance.mask_exact (rng ()) ~missing inst in
      Relation.Tuple.missing_count (Relation.Instance.tuples masked).(0)
      = missing)

let suite =
  [
    ("attribute make", `Quick, test_attribute_make);
    ("attribute rejects", `Quick, test_attribute_rejects);
    ("attribute unknown label", `Quick, test_attribute_unknown_label);
    ("indexed attribute", `Quick, test_indexed_attribute);
    ("schema basics", `Quick, test_schema_basics);
    ("schema duplicate names", `Quick, test_schema_rejects_duplicates);
    ("schema of cardinalities", `Quick, test_schema_of_cardinalities);
    ("tuple completeness", `Quick, test_tuple_complete);
    ("tuple known/missing", `Quick, test_tuple_known_missing);
    ("tuple matching (paper Def 2.3)", `Quick, test_tuple_matches_paper_example);
    ("tuple subsumption (paper Def 2.4)", `Quick,
     test_tuple_subsumption_paper_example);
    ("tuple agrees_on_known", `Quick, test_tuple_agrees_on_known);
    ("tuple rendering", `Quick, test_tuple_pp);
    ("tuple hash/equal/table", `Quick, test_tuple_hash_equal);
    ("instance complete/incomplete parts", `Quick, test_instance_parts);
    ("instance support (paper supp(t1)=3/8)", `Quick,
     test_instance_support_paper);
    ("instance validation", `Quick, test_instance_validation);
    ("instance split", `Quick, test_instance_split);
    ("instance split invalid", `Quick, test_instance_split_invalid);
    ("mask exact", `Quick, test_mask_exact);
    ("mask preserves existing gaps", `Quick, test_mask_preserves_existing);
    ("mask uniform range", `Quick, test_mask_uniform_range);
    ("instance append", `Quick, test_instance_append);
    ("domain roundtrip", `Quick, test_domain_roundtrip);
    ("domain code order", `Quick, test_domain_order);
    ("domain iter", `Quick, test_domain_iter);
    ("domain rejects", `Quick, test_domain_rejects);
    ("csv parse line", `Quick, test_csv_parse_line);
    ("csv escape", `Quick, test_csv_escape);
    ("csv roundtrip", `Quick, test_csv_roundtrip);
    ("csv schema inference", `Quick, test_csv_infer_schema);
    ("csv errors", `Quick, test_csv_errors);
    ("csv file roundtrip", `Quick, test_csv_file_roundtrip);
    prop_subsumption_irreflexive;
    prop_subsumption_antisymmetric;
    prop_domain_roundtrip;
    prop_mask_count;
  ]

(* Profile *)

let test_profile_attributes () =
  let r = fig1_relation () in
  let summaries = Relation.Profile.attributes r in
  Alcotest.(check int) "one summary per attribute" 4 (List.length summaries);
  let age = List.hd summaries in
  Alcotest.(check string) "name" "age" age.Relation.Profile.name;
  (* One of 17 tuples misses age (t8). *)
  check_float ~eps:1e-9 "missing rate" (1. /. 17.)
    age.Relation.Profile.missing_rate;
  Alcotest.(check bool) "entropy positive" true
    (age.Relation.Profile.entropy > 0.)

let test_profile_mi_detects_dependency () =
  let s = Relation.Schema.of_cardinalities [ 2; 2; 2 ] in
  let r = rng () in
  let points =
    List.init 400 (fun _ ->
        let a = Prob.Rng.int r 2 in
        [| a; a; Prob.Rng.int r 2 |])
  in
  let inst = Relation.Instance.of_points s points in
  match Relation.Profile.mutual_information inst with
  | top :: rest ->
      Alcotest.(check (pair int int)) "dependent pair ranks first" (0, 1)
        (top.Relation.Profile.a, top.Relation.Profile.b);
      Alcotest.(check bool) "near-deterministic pair" true
        (top.Relation.Profile.normalized > 0.9);
      List.iter
        (fun p ->
          Alcotest.(check bool) "independent pairs near zero" true
            (p.Relation.Profile.normalized < 0.2))
        rest
  | [] -> Alcotest.fail "expected MI rows"

let test_profile_mi_empty_complete_part () =
  let s = Relation.Schema.of_cardinalities [ 2; 2 ] in
  let inst = Relation.Instance.make s [ [| None; Some 0 |] ] in
  Alcotest.(check int) "no MI rows" 0
    (List.length (Relation.Profile.mutual_information inst))

let test_profile_render () =
  let out = Relation.Profile.render (fig1_relation ()) in
  Alcotest.(check bool) "mentions counts" true
    (Astring_like.contains out "17 tuples (8 complete)");
  Alcotest.(check bool) "mentions MI" true
    (Astring_like.contains out "mutual information")

let suite =
  suite
  @ [
      ("profile attributes", `Quick, test_profile_attributes);
      ("profile MI detects dependency", `Quick, test_profile_mi_detects_dependency);
      ("profile MI on empty complete part", `Quick,
       test_profile_mi_empty_complete_part);
      ("profile render", `Quick, test_profile_render);
    ]
