(* Tests for model serialization (Model_io) and discretization. *)

open Helpers

let models_equivalent a b =
  (* Structural equivalence: same schema, same lattices (bodies, weights,
     CPDs), same params. *)
  Relation.Schema.equal (Mrsl.Model.schema a) (Mrsl.Model.schema b)
  && Mrsl.Model.params a = Mrsl.Model.params b
  && Mrsl.Model.size a = Mrsl.Model.size b
  && Array.for_all2
       (fun la lb ->
         List.for_all2
           (fun (ma : Mrsl.Meta_rule.t) (mb : Mrsl.Meta_rule.t) ->
             Mining.Itemset.equal ma.body mb.body
             && float_close ~eps:1e-12 ma.weight mb.weight
             && Array.for_all2
                  (fun x y -> float_close ~eps:1e-12 x y)
                  (Prob.Dist.to_array ma.cpd)
                  (Prob.Dist.to_array mb.cpd))
           (Mrsl.Lattice.meta_rules la)
           (Mrsl.Lattice.meta_rules lb))
       (Mrsl.Model.lattices a) (Mrsl.Model.lattices b)

let test_roundtrip_synthetic () =
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
      dependent_schema (dependent_points 200)
  in
  let restored = Mrsl.Model_io.of_string (Mrsl.Model_io.to_string model) in
  Alcotest.(check bool) "roundtrip equivalent" true
    (models_equivalent model restored)

let test_roundtrip_fig1_labels () =
  (* Real labels (with K suffixes etc.) survive the round trip. *)
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.1 }
      (fig1_relation ())
  in
  let restored = Mrsl.Model_io.of_string (Mrsl.Model_io.to_string model) in
  Alcotest.(check bool) "labels preserved" true
    (models_equivalent model restored);
  let schema = Mrsl.Model.schema restored in
  Alcotest.(check string) "label text" "100K"
    (Relation.Attribute.value_label (Relation.Schema.attribute schema 2) 1)

let test_roundtrip_awkward_labels () =
  (* Labels containing tabs, percent signs, and newlines. *)
  let schema =
    Relation.Schema.make
      [
        Relation.Attribute.make "a" [ "x\ty"; "p%q" ];
        Relation.Attribute.make "b" [ "new\nline"; "plain" ];
      ]
  in
  let points = List.init 20 (fun i -> [| i mod 2; i / 2 mod 2 |]) in
  let model =
    Mrsl.Model.learn (Relation.Instance.of_points schema points)
  in
  let restored = Mrsl.Model_io.of_string (Mrsl.Model_io.to_string model) in
  Alcotest.(check bool) "awkward labels survive" true
    (models_equivalent model restored)

let test_restored_model_infers_identically () =
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.02 }
      dependent_schema (dependent_points 300)
  in
  let restored = Mrsl.Model_io.of_string (Mrsl.Model_io.to_string model) in
  let tup : Relation.Tuple.t = [| Some 1; None; Some 0 |] in
  List.iter
    (fun m ->
      let a = Mrsl.Infer_single.infer ~method_:m model tup 1 in
      let b = Mrsl.Infer_single.infer ~method_:m restored tup 1 in
      check_float ~eps:1e-9
        ("identical inference: " ^ Mrsl.Voting.method_name m)
        (Prob.Dist.prob a 0) (Prob.Dist.prob b 0))
    Mrsl.Voting.all_methods

let test_file_roundtrip () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 100) in
  let path = Filename.temp_file "mrsl_model" ".mrsl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mrsl.Model_io.save path model;
      let restored = Mrsl.Model_io.load path in
      Alcotest.(check bool) "file roundtrip" true
        (models_equivalent model restored))

let test_of_string_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (try
       ignore (Mrsl.Model_io.of_string "nope");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Mrsl.Model_io.of_string "mrsl-model\tv1\nparams\t0.02\t1000\t1e-05\n");
       false
     with Failure _ -> true)

(* --- Discretize --- *)

let test_cut_points_equal_width () =
  let cuts =
    Relation.Discretize.cut_points Relation.Discretize.Equal_width ~bins:4
      [| 0.; 10. |]
  in
  Alcotest.(check int) "three cuts" 3 (Array.length cuts);
  check_float "cut 1" 2.5 cuts.(0);
  check_float "cut 2" 5.0 cuts.(1);
  check_float "cut 3" 7.5 cuts.(2)

let test_cut_points_equal_frequency () =
  let values = Array.init 100 (fun i -> float_of_int i) in
  let cuts =
    Relation.Discretize.cut_points Relation.Discretize.Equal_frequency ~bins:4
      values
  in
  check_float "quartile 1" 25. cuts.(0);
  check_float "median" 50. cuts.(1);
  check_float "quartile 3" 75. cuts.(2)

let test_bucket_of () =
  let cuts = [| 1.; 2.; 3. |] in
  Alcotest.(check int) "below" 0 (Relation.Discretize.bucket_of cuts 0.5);
  Alcotest.(check int) "boundary goes right" 1
    (Relation.Discretize.bucket_of cuts 1.0);
  Alcotest.(check int) "top" 3 (Relation.Discretize.bucket_of cuts 99.)

let test_column_roundtrip () =
  let values = [| Some 1.0; None; Some 5.0; Some 9.0; Some 2.0 |] in
  let attr, col =
    Relation.Discretize.column ~strategy:Relation.Discretize.Equal_width
      ~bins:3 ~name:"temp" values
  in
  Alcotest.(check int) "three buckets" 3 (Relation.Attribute.cardinality attr);
  Alcotest.(check (option int)) "missing preserved" None col.(1);
  Alcotest.(check (option int)) "low bucket" (Some 0) col.(0);
  Alcotest.(check (option int)) "high bucket" (Some 2) col.(3);
  (* Labels spell sub-ranges. *)
  Alcotest.(check bool) "range labels" true
    (String.length (Relation.Attribute.value_label attr 0) > 2)

let test_column_distinct_labels_under_ties () =
  (* Heavy ties: equal-frequency cut points coincide; labels must still be
     distinct so Attribute.make accepts them. *)
  let values = Array.make 50 (Some 1.0) in
  let attr, _ =
    Relation.Discretize.column ~bins:4 ~name:"tied" values
  in
  Alcotest.(check int) "still four buckets" 4
    (Relation.Attribute.cardinality attr)

let test_cut_points_rejects () =
  Alcotest.check_raises "nan"
    (Invalid_argument "Discretize.cut_points: NaN value") (fun () ->
      ignore
        (Relation.Discretize.cut_points Relation.Discretize.Equal_width ~bins:2
           [| Float.nan |]));
  Alcotest.check_raises "no values"
    (Invalid_argument "Discretize.cut_points: no values") (fun () ->
      ignore
        (Relation.Discretize.cut_points Relation.Discretize.Equal_width ~bins:2
           [||]))

let prop_discretize_covers =
  qcheck ~count:100 "every value lands in a valid bucket"
    QCheck2.Gen.(list_size (int_range 1 30) (float_range (-100.) 100.))
    (fun values ->
      let arr = Array.of_list values in
      let bins = 1 + (Array.length arr mod 5) in
      let cuts =
        Relation.Discretize.cut_points Relation.Discretize.Equal_frequency
          ~bins arr
      in
      Array.for_all
        (fun x ->
          let b = Relation.Discretize.bucket_of cuts x in
          b >= 0 && b < bins)
        arr)

let suite =
  [
    ("model roundtrip (synthetic)", `Quick, test_roundtrip_synthetic);
    ("model roundtrip (Fig 1 labels)", `Quick, test_roundtrip_fig1_labels);
    ("model roundtrip (awkward labels)", `Quick, test_roundtrip_awkward_labels);
    ("restored model infers identically", `Quick,
     test_restored_model_infers_identically);
    ("model file roundtrip", `Quick, test_file_roundtrip);
    ("deserialization rejects garbage", `Quick, test_of_string_rejects_garbage);
    ("equal-width cut points", `Quick, test_cut_points_equal_width);
    ("equal-frequency cut points", `Quick, test_cut_points_equal_frequency);
    ("bucket_of", `Quick, test_bucket_of);
    ("column discretization", `Quick, test_column_roundtrip);
    ("distinct labels under ties", `Quick, test_column_distinct_labels_under_ties);
    ("cut point validation", `Quick, test_cut_points_rejects);
    prop_discretize_covers;
  ]
