(* Tests for the baselines (structure-learned BN, backoff DN, independent
   product) and the Gibbs convergence diagnostics. *)

open Helpers

(* --- BN structure learning --- *)

let chain_data n =
  (* a0 → a1 (equal), a2 independent. *)
  dependent_points n

let test_bic_prefers_true_edge () =
  let points = chain_data 500 in
  let cards = [| 2; 2; 2 |] in
  let with_parent =
    Bayesnet.Structure_learn.bic_family_score ~cards points 1 [ 0 ]
  in
  let without =
    Bayesnet.Structure_learn.bic_family_score ~cards points 1 []
  in
  Alcotest.(check bool) "dependent family scores higher" true
    (with_parent > without);
  let spurious =
    Bayesnet.Structure_learn.bic_family_score ~cards points 2 [ 0 ]
  in
  let independent =
    Bayesnet.Structure_learn.bic_family_score ~cards points 2 []
  in
  Alcotest.(check bool) "independent family penalized" true
    (independent > spurious)

let test_fit_recovers_dependency () =
  let points = chain_data 500 in
  let net, stats = Bayesnet.Structure_learn.fit ~cards:[| 2; 2; 2 |] points in
  let topo = Bayesnet.Network.topology net in
  (* a0–a1 must be linked (either direction); a2 isolated. *)
  let linked a b =
    Array.mem a (Bayesnet.Topology.parents topo b)
    || Array.mem b (Bayesnet.Topology.parents topo a)
  in
  Alcotest.(check bool) "a0-a1 edge found" true (linked 0 1);
  Alcotest.(check bool) "a2 isolated" false (linked 0 2 || linked 1 2);
  Alcotest.(check bool) "took steps" true (stats.iterations >= 1);
  Alcotest.(check bool) "finite score" true (Float.is_finite stats.score)

let test_fit_posterior_accuracy () =
  (* Learn a BN from samples of a known network; its posterior must be
     close to the truth. *)
  let entry = Bayesnet.Catalog.find "BN8" in
  let r = rng () in
  let truth_net = Bayesnet.Network.generate r entry.topology in
  let points =
    Array.init 3000 (fun _ -> Bayesnet.Network.sample_point r truth_net)
  in
  let learned, _ =
    Bayesnet.Structure_learn.fit
      ~cards:(Bayesnet.Topology.cardinalities entry.topology)
      points
  in
  let tup : Relation.Tuple.t = [| Some 0; None; None; Some 1 |] in
  let _, want = Bayesnet.Network.posterior_joint truth_net tup in
  let _, got = Bayesnet.Network.posterior_joint learned tup in
  let kl = Prob.Divergence.kl want got in
  if kl > 0.1 then Alcotest.failf "learned BN posterior KL too large: %f" kl

let test_fit_respects_max_parents () =
  let r = rng () in
  let points =
    Array.init 400 (fun _ -> Array.init 5 (fun _ -> Prob.Rng.int r 2))
  in
  let net, _ =
    Bayesnet.Structure_learn.fit ~max_parents:1 ~cards:(Array.make 5 2) points
  in
  let topo = Bayesnet.Network.topology net in
  for v = 0 to 4 do
    Alcotest.(check bool) "parent bound" true
      (Array.length (Bayesnet.Topology.parents topo v) <= 1)
  done

let test_fit_rejects_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Structure_learn.fit: empty data") (fun () ->
      ignore (Bayesnet.Structure_learn.fit ~cards:[| 2 |] [||]))

(* --- DN backoff --- *)

let test_dn_conditional_dense_context () =
  let dn = Baselines.Dn_backoff.fit ~cards:[| 2; 2; 2 |] (dependent_points 400) in
  (* Context (a0=1, a2=0) appears ~100 times; conditional of a1 must be
     sharply 1 (a1 = a0). *)
  let d = Baselines.Dn_backoff.conditional dn [| 1; 0; 0 |] 1 in
  Alcotest.(check bool) "dependency captured" true (Prob.Dist.prob d 1 > 0.95)

let test_dn_backoff_on_sparse_context () =
  (* Train on 8 points over 3 attributes of cardinality 2: most full
     contexts are unseen, so queries back off to the marginal. *)
  let points = Array.sub (dependent_points 8) 0 8 in
  let dn = Baselines.Dn_backoff.fit ~min_count:5 ~cards:[| 2; 2; 2 |] points in
  let _ = Baselines.Dn_backoff.conditional dn [| 1; 0; 1 |] 1 in
  Alcotest.(check bool) "some backoff happened" true
    (Baselines.Dn_backoff.backoff_fraction dn > 0.)

let test_dn_infer_joint () =
  let dn = Baselines.Dn_backoff.fit ~cards:[| 2; 2; 2 |] (dependent_points 400) in
  let joint =
    Baselines.Dn_backoff.infer_joint ~burn_in:20 ~samples:500 (rng ()) dn
      [| Some 1; None; None |]
  in
  check_dist_sums_to_one "joint normalized" joint;
  (* Marginal over a1 (first missing attribute, slowest-varying): codes 2,3
     have a1=1. *)
  let p_a1_1 = Prob.Dist.prob joint 2 +. Prob.Dist.prob joint 3 in
  Alcotest.(check bool) "dependency via Gibbs" true (p_a1_1 > 0.85)

let test_dn_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Dn_backoff.fit: empty data")
    (fun () -> ignore (Baselines.Dn_backoff.fit ~cards:[| 2 |] [||]));
  let dn = Baselines.Dn_backoff.fit ~cards:[| 2 |] [| [| 0 |] |] in
  Alcotest.check_raises "complete"
    (Invalid_argument "Dn_backoff.infer_joint: tuple is complete") (fun () ->
      ignore (Baselines.Dn_backoff.infer_joint (rng ()) dn [| Some 0 |]))

(* --- independent product --- *)

let test_independent_product_factorizes () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 400) in
  let tup : Relation.Tuple.t = [| Some 1; None; None |] in
  let joint = Baselines.Independent_product.infer_joint model tup in
  let d1 = Mrsl.Infer_single.infer model tup 1 in
  let d2 = Mrsl.Infer_single.infer model tup 2 in
  Relation.Domain.iter [| 2; 2 |] (fun code values ->
      check_float ~eps:1e-9 "product structure"
        (Prob.Dist.prob d1 values.(0) *. Prob.Dist.prob d2 values.(1))
        (Prob.Dist.prob joint code))

let test_independent_product_misses_correlation () =
  (* XOR-style dependency between the two missing attributes: the product
     baseline cannot represent it; Gibbs can. *)
  let r = rng () in
  let points =
    Array.init 600 (fun _ ->
        let a = Prob.Rng.int r 2 and b = Prob.Rng.int r 2 in
        [| a; b; a lxor b |])
  in
  let schema = Relation.Schema.of_cardinalities [ 2; 2; 2 ] in
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
      schema points
  in
  (* Observe a2 = 0: the joint over (a0, a1) concentrates on {00, 11}. *)
  let tup : Relation.Tuple.t = [| None; None; Some 0 |] in
  let product = Baselines.Independent_product.infer_joint model tup in
  let sampler = Mrsl.Gibbs.sampler model in
  let gibbs =
    (Mrsl.Gibbs.run ~config:{ burn_in = 50; samples = 2000 } r sampler tup).joint
  in
  let mass_correct d = Prob.Dist.prob d 0 +. Prob.Dist.prob d 3 in
  Alcotest.(check bool) "gibbs recovers the XOR correlation" true
    (mass_correct gibbs > 0.9);
  Alcotest.(check bool) "product cannot" true (mass_correct product < 0.7)

(* --- diagnostics --- *)

let test_psrf_identical_chains () =
  let chain = Array.init 100 (fun i -> float_of_int (i mod 7)) in
  let r =
    Mrsl.Diagnostics.potential_scale_reduction [| chain; Array.copy chain |]
  in
  check_float ~eps:0.05 "identical chains converge" 1.0 r

let test_psrf_divergent_chains () =
  let a = Array.make 100 0. and b = Array.make 100 1. in
  (* Perturb to keep within-chain variance nonzero. *)
  a.(0) <- 0.1;
  b.(0) <- 0.9;
  let r = Mrsl.Diagnostics.potential_scale_reduction [| a; b |] in
  Alcotest.(check bool) "divergent chains flagged" true (r > 2.)

let test_psrf_rejects () =
  Alcotest.check_raises "one chain"
    (Invalid_argument "Diagnostics.potential_scale_reduction: need >= 2 chains")
    (fun () ->
      ignore (Mrsl.Diagnostics.potential_scale_reduction [| [| 1.; 2.; 3.; 4. |] |]))

let test_ess_iid_vs_correlated () =
  let r = rng () in
  let iid = Array.init 500 (fun _ -> Prob.Rng.float r) in
  let sticky = Array.make 500 0. in
  (* Strongly autocorrelated: change rarely. *)
  let state = ref 0. in
  Array.iteri
    (fun i _ ->
      if Prob.Rng.float r < 0.02 then state := Prob.Rng.float r;
      sticky.(i) <- !state)
    sticky;
  let ess_iid = Mrsl.Diagnostics.effective_sample_size iid in
  let ess_sticky = Mrsl.Diagnostics.effective_sample_size sticky in
  Alcotest.(check bool) "iid keeps most samples" true (ess_iid > 250.);
  Alcotest.(check bool) "autocorrelation shrinks ESS" true
    (ess_sticky < ess_iid /. 4.)

let test_diagnose_converges_on_easy_model () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 400) in
  let sampler = Mrsl.Gibbs.sampler model in
  let report =
    Mrsl.Diagnostics.diagnose ~chains:3 ~draws:300 ~burn_in:50 (rng ()) sampler
      [| Some 0; None; None |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "converged (R-hat %.3f)" report.psrf_max)
    true
    (Mrsl.Diagnostics.converged report);
  Alcotest.(check bool) "positive ESS" true (report.ess_min >= 1.)

let test_diagnose_rejects_complete () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 50) in
  let sampler = Mrsl.Gibbs.sampler model in
  Alcotest.check_raises "complete"
    (Invalid_argument "Diagnostics.diagnose: tuple is complete") (fun () ->
      ignore
        (Mrsl.Diagnostics.diagnose (rng ()) sampler [| Some 0; Some 0; Some 0 |]))

let suite =
  [
    ("BIC prefers true edges", `Quick, test_bic_prefers_true_edge);
    ("hill climbing recovers dependency", `Quick, test_fit_recovers_dependency);
    ("learned BN posterior accuracy", `Slow, test_fit_posterior_accuracy);
    ("max_parents respected", `Quick, test_fit_respects_max_parents);
    ("structure learning rejects empty data", `Quick, test_fit_rejects_empty);
    ("DN conditional on dense context", `Quick, test_dn_conditional_dense_context);
    ("DN backoff on sparse context", `Quick, test_dn_backoff_on_sparse_context);
    ("DN joint inference", `Quick, test_dn_infer_joint);
    ("DN rejects", `Quick, test_dn_rejects);
    ("independent product factorizes", `Quick, test_independent_product_factorizes);
    ("independent product misses XOR", `Quick,
     test_independent_product_misses_correlation);
    ("PSRF on identical chains", `Quick, test_psrf_identical_chains);
    ("PSRF on divergent chains", `Quick, test_psrf_divergent_chains);
    ("PSRF input validation", `Quick, test_psrf_rejects);
    ("ESS: iid vs autocorrelated", `Quick, test_ess_iid_vs_correlated);
    ("diagnose converges", `Quick, test_diagnose_converges_on_easy_model);
    ("diagnose rejects complete tuples", `Quick, test_diagnose_rejects_complete);
  ]
