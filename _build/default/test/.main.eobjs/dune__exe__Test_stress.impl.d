test/test_stress.ml: Alcotest Array Bayesnet Helpers List Mining Mrsl Prob Relation
