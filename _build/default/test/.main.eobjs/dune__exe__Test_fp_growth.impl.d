test/test_fp_growth.ml: Alcotest Array Float Helpers List Mining Prob QCheck2 Relation
