test/test_baselines.ml: Alcotest Array Baselines Bayesnet Float Helpers Mrsl Printf Prob Relation
