test/test_experiments.ml: Alcotest Array Astring_like Bayesnet Experiments Float Helpers List Mrsl Relation String Sys Unix
