test/main.mli:
