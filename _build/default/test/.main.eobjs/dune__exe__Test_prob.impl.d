test/test_prob.ml: Alcotest Array Float Fun Helpers Int List Prob QCheck2
