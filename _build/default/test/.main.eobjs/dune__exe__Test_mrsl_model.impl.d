test/test_mrsl_model.ml: Alcotest Array Helpers List Mining Mrsl Prob QCheck2 Relation
