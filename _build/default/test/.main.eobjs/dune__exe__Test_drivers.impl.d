test/test_drivers.ml: Alcotest Experiments Float List Mrsl Prob
