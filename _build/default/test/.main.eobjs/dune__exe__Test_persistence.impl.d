test/test_persistence.ml: Alcotest Array Filename Float Fun Helpers List Mining Mrsl Prob QCheck2 Relation String Sys
