test/test_mining.ml: Alcotest Array Format Helpers List Mining Prob QCheck2 Relation
