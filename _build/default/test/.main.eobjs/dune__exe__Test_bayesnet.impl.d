test/test_bayesnet.ml: Alcotest Array Bayesnet Float Helpers List Prob QCheck2 Relation
