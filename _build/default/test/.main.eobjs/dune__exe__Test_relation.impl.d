test/test_relation.ml: Alcotest Array Astring_like Filename Fun Helpers List Prob QCheck2 Relation Sys
