test/test_probdb.ml: Alcotest Array Astring_like Filename Float Fun Helpers In_channel List Mrsl Prob Probdb QCheck2 Relation String Sys
