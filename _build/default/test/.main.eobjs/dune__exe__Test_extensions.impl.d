test/test_extensions.ml: Alcotest Array Helpers Mrsl Prob Probdb QCheck2 Relation
