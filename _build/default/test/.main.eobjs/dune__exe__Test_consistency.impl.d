test/test_consistency.ml: Alcotest Array Bayesnet Float Helpers List Mining Mrsl Prob Probdb QCheck2 Relation
