test/helpers.ml: Alcotest Array Float Prob QCheck2 QCheck_alcotest Relation
