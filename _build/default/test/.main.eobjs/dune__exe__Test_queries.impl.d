test/test_queries.ml: Alcotest Array Float Helpers List Mrsl Prob Probdb QCheck2 Relation
