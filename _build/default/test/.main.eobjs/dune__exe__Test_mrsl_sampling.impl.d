test/test_mrsl_sampling.ml: Alcotest Array Bayesnet Experiments Float Helpers Int List Mrsl Prob QCheck2 Relation
