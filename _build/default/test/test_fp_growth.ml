(* FP-Growth tests: exact equivalence with Apriori (Section III's
   miner-independence claim, made executable). *)

open Helpers

let canon result =
  List.sort compare
    (List.map
       (fun (s, supp) -> (Mining.Itemset.to_list s, Float.round (supp *. 1e9)))
       (Mining.Apriori.frequent result))

let test_equivalence_small () =
  let points =
    [|
      [| 0; 0; 0 |]; [| 0; 0; 1 |]; [| 0; 1; 0 |]; [| 1; 1; 1 |];
      [| 1; 1; 0 |]; [| 0; 0; 0 |]; [| 1; 0; 1 |]; [| 0; 1; 1 |];
    |]
  in
  let config : Mining.Apriori.config = { threshold = 0.1; max_itemsets = 10_000 } in
  let a = Mining.Apriori.mine ~config ~cards:[| 2; 2; 2 |] points in
  let f = Mining.Fp_growth.mine ~config ~cards:[| 2; 2; 2 |] points in
  Alcotest.(check bool) "identical frequent sets" true (canon a = canon f)

let test_equivalence_fig1 () =
  let points = Relation.Instance.complete_part (fig1_relation ()) in
  let config : Mining.Apriori.config = { threshold = 0.05; max_itemsets = 10_000 } in
  let a = Mining.Apriori.mine ~config ~cards:[| 3; 3; 2; 2 |] points in
  let f = Mining.Fp_growth.mine ~config ~cards:[| 3; 3; 2; 2 |] points in
  Alcotest.(check int) "same count" (Mining.Apriori.count a)
    (Mining.Apriori.count f);
  Alcotest.(check bool) "identical frequent sets" true (canon a = canon f)

let test_empty_data () =
  let f = Mining.Fp_growth.mine ~cards:[| 2 |] [||] in
  Alcotest.(check int) "no itemsets" 0 (Mining.Apriori.count f)

let test_rejects () =
  Alcotest.check_raises "threshold"
    (Invalid_argument "Fp_growth.mine: threshold must be in [0, 1]") (fun () ->
      ignore
        (Mining.Fp_growth.mine
           ~config:{ threshold = -1.; max_itemsets = 10 }
           ~cards:[| 2 |] [| [| 0 |] |]))

let test_model_learning_with_either_miner () =
  (* An MRSL learned from FP-Growth supports must equal one learned from
     Apriori (same supports ⇒ same meta-rules). We check by swapping the
     mining result into the rule pipeline directly. *)
  let points = dependent_points 200 in
  let config : Mining.Apriori.config = { threshold = 0.05; max_itemsets = 10_000 } in
  let a = Mining.Apriori.mine ~config ~cards:[| 2; 2; 2 |] points in
  let f = Mining.Fp_growth.mine ~config ~cards:[| 2; 2; 2 |] points in
  List.iter
    (fun attr ->
      let rules_a = Mining.Assoc_rule.mine_for_attr a attr in
      let rules_f = Mining.Assoc_rule.mine_for_attr f attr in
      Alcotest.(check int) "same rule count" (List.length rules_a)
        (List.length rules_f))
    [ 0; 1; 2 ]

let prop_equivalence_random =
  qcheck ~count:40 "FP-Growth ≡ Apriori on random data"
    QCheck2.Gen.(tup2 (int_range 0 100_000) (int_range 10 60))
    (fun (seed, n) ->
      let r = Prob.Rng.create seed in
      let cards = [| 2; 3; 2; 2 |] in
      let points =
        Array.init n (fun _ ->
            Array.init 4 (fun a -> Prob.Rng.int r cards.(a)))
      in
      let config : Mining.Apriori.config =
        { threshold = 0.1 +. (0.2 *. Prob.Rng.float r); max_itemsets = 10_000 }
      in
      let a = Mining.Apriori.mine ~config ~cards points in
      let f = Mining.Fp_growth.mine ~config ~cards points in
      canon a = canon f)

let test_low_support_deep_patterns () =
  (* Perfectly correlated data produces maximal-depth patterns; both miners
     must find all of them. *)
  let points = Array.init 100 (fun i -> Array.make 5 (i mod 2)) in
  let config : Mining.Apriori.config = { threshold = 0.3; max_itemsets = 100_000 } in
  let cards = Array.make 5 2 in
  let a = Mining.Apriori.mine ~config ~cards points in
  let f = Mining.Fp_growth.mine ~config ~cards points in
  Alcotest.(check bool) "deep patterns equal" true (canon a = canon f);
  Alcotest.(check int) "reaches size 5" 5 (Mining.Apriori.rounds f)

let test_cap_semantics () =
  let r = rng () in
  let points =
    Array.init 300 (fun _ -> Array.init 6 (fun _ -> Prob.Rng.int r 2))
  in
  let cards = Array.make 6 2 in
  let config : Mining.Apriori.config = { threshold = 0.001; max_itemsets = 10 } in
  let f = Mining.Fp_growth.mine ~config ~cards points in
  Alcotest.(check bool) "truncated flagged" true (Mining.Apriori.truncated f);
  let free =
    Mining.Fp_growth.mine
      ~config:{ threshold = 0.001; max_itemsets = 1_000_000 }
      ~cards points
  in
  Alcotest.(check bool) "cap reduces output" true
    (Mining.Apriori.count f < Mining.Apriori.count free)

let suite =
  [
    ("equivalence on small data", `Quick, test_equivalence_small);
    ("equivalence on Fig 1", `Quick, test_equivalence_fig1);
    ("empty data", `Quick, test_empty_data);
    ("input validation", `Quick, test_rejects);
    ("rule pipeline miner-independent", `Quick,
     test_model_learning_with_either_miner);
    prop_equivalence_random;
    ("deep correlated patterns", `Quick, test_low_support_deep_patterns);
    ("cap semantics", `Quick, test_cap_semantics);
  ]
