(* Tests for Meta_rule, Lattice, Voting, Model (Algorithm 1), and
   Infer_single (Algorithm 2), including the paper's worked examples. *)

open Helpers

let iset = Mining.Itemset.of_list

let mk_rule body head_attr head_value confidence body_support :
    Mining.Assoc_rule.t =
  {
    body;
    head_attr;
    head_value;
    confidence;
    body_support;
    rule_support = confidence *. body_support;
  }

(* Meta_rule *)

let test_meta_rule_paper_cpd () =
  (* Section II: meta-rule m = {r1, r2, r3} with body {edu = HS}, head age,
     estimating P(age|edu=HS) = [0.06/0.41; 0.29/0.41; 0.06/0.41]
     = [0.15; 0.70; 0.15] (after rounding; Fig 2). *)
  let body = iset [ (1, 0) ] in
  let m =
    Mrsl.Meta_rule.of_rules ~head_card:3
      [
        mk_rule body 0 0 (0.06 /. 0.41) 0.41;
        mk_rule body 0 1 (0.29 /. 0.41) 0.41;
        mk_rule body 0 2 (0.06 /. 0.41) 0.41;
      ]
  in
  check_float ~eps:1e-6 "P(20|HS)" (0.06 /. 0.41) (Prob.Dist.prob m.cpd 0);
  check_float ~eps:1e-6 "P(30|HS)" (0.29 /. 0.41) (Prob.Dist.prob m.cpd 1);
  check_float "weight is body support" 0.41 m.weight

let test_meta_rule_smooths_missing_values () =
  (* Only one head value accounted for at confidence 0.6: the remaining
     0.4 is distributed equally, per Section III. *)
  let body = iset [ (1, 0) ] in
  let m = Mrsl.Meta_rule.of_rules ~head_card:2 [ mk_rule body 0 0 0.6 0.5 ] in
  check_float ~eps:1e-6 "observed value" 0.8 (Prob.Dist.prob m.cpd 0);
  check_float ~eps:1e-6 "unobserved value" 0.2 (Prob.Dist.prob m.cpd 1);
  check_dist_positive "positive" m.cpd

let test_meta_rule_rejects () =
  let body = iset [ (1, 0) ] in
  Alcotest.check_raises "empty"
    (Invalid_argument "Meta_rule.of_rules: empty rule list") (fun () ->
      ignore (Mrsl.Meta_rule.of_rules ~head_card:2 []));
  Alcotest.check_raises "different bodies"
    (Invalid_argument "Meta_rule.of_rules: bodies differ") (fun () ->
      ignore
        (Mrsl.Meta_rule.of_rules ~head_card:2
           [ mk_rule body 0 0 0.5 0.5; mk_rule (iset [ (2, 0) ]) 0 1 0.5 0.5 ]));
  Alcotest.check_raises "duplicate head value"
    (Invalid_argument "Meta_rule.of_rules: duplicate head value") (fun () ->
      ignore
        (Mrsl.Meta_rule.of_rules ~head_card:2
           [ mk_rule body 0 0 0.5 0.5; mk_rule body 0 0 0.3 0.5 ]));
  Alcotest.check_raises "head in body"
    (Invalid_argument "Meta_rule.make: head attribute appears in the body")
    (fun () ->
      ignore
        (Mrsl.Meta_rule.make ~body:(iset [ (0, 1) ]) ~head_attr:0 ~weight:0.5
           ~raw_cpd:[| 0.5; 0.5 |] ()))

let test_meta_rule_subsumption () =
  let m1 =
    Mrsl.Meta_rule.make ~body:(iset [ (1, 0) ]) ~head_attr:0 ~weight:0.5
      ~raw_cpd:[| 0.5; 0.5 |] ()
  in
  let m2 =
    Mrsl.Meta_rule.make ~body:(iset [ (1, 0); (2, 1) ]) ~head_attr:0
      ~weight:0.3 ~raw_cpd:[| 0.5; 0.5 |] ()
  in
  Alcotest.(check bool) "m1 subsumes m2" true (Mrsl.Meta_rule.subsumes m1 m2);
  Alcotest.(check bool) "m2 does not subsume m1" false
    (Mrsl.Meta_rule.subsumes m2 m1);
  Alcotest.(check bool) "no self subsumption" false
    (Mrsl.Meta_rule.subsumes m1 m1);
  Alcotest.(check int) "specificity" 2 (Mrsl.Meta_rule.specificity m2)

let test_meta_rule_matches () =
  let m =
    Mrsl.Meta_rule.make ~body:(iset [ (1, 0) ]) ~head_attr:0 ~weight:0.5
      ~raw_cpd:[| 0.5; 0.5 |] ()
  in
  Alcotest.(check bool) "matches" true
    (Mrsl.Meta_rule.matches m [| None; Some 0; Some 1 |]);
  Alcotest.(check bool) "wrong value" false
    (Mrsl.Meta_rule.matches m [| None; Some 1; Some 1 |]);
  Alcotest.(check bool) "missing body attr" false
    (Mrsl.Meta_rule.matches m [| None; None; Some 1 |])

(* Lattice *)

let root2 attr =
  Mrsl.Meta_rule.make ~body:Mining.Itemset.empty ~head_attr:attr ~weight:1.0
    ~raw_cpd:[| 0.5; 0.5 |] ()

let mk_meta body weight =
  Mrsl.Meta_rule.make ~body ~head_attr:0 ~weight ~raw_cpd:[| 0.7; 0.3 |] ()

let sample_lattice () =
  Mrsl.Lattice.create ~head_attr:0 ~head_card:2 ~root:(root2 0)
    [
      mk_meta (iset [ (1, 0) ]) 0.5;
      mk_meta (iset [ (2, 1) ]) 0.4;
      mk_meta (iset [ (1, 0); (2, 1) ]) 0.2;
      mk_meta (iset [ (1, 1) ]) 0.5;
    ]

let test_lattice_size_and_find () =
  let l = sample_lattice () in
  Alcotest.(check int) "size includes root" 5 (Mrsl.Lattice.size l);
  Alcotest.(check int) "max body size" 2 (Mrsl.Lattice.max_body_size l);
  Alcotest.(check bool) "find" true
    (Mrsl.Lattice.find l (iset [ (1, 0) ]) <> None);
  Alcotest.(check bool) "find absent" true
    (Mrsl.Lattice.find l (iset [ (2, 0) ]) = None)

let test_lattice_matching () =
  let l = sample_lattice () in
  (* Tuple with a1=0, a2=1 known: matches root, {a1=0}, {a2=1}, both. *)
  let matches = Mrsl.Lattice.matching l [| None; Some 0; Some 1 |] in
  Alcotest.(check int) "all matches" 4 (List.length matches);
  (* Tuple with only a1=1: root and {a1=1}. *)
  let matches2 = Mrsl.Lattice.matching l [| None; Some 1; None |] in
  Alcotest.(check int) "fewer matches" 2 (List.length matches2);
  (* Nothing known: root only. *)
  let matches3 = Mrsl.Lattice.matching l [| None; None; None |] in
  Alcotest.(check int) "root always matches" 1 (List.length matches3)

let test_lattice_most_specific () =
  let l = sample_lattice () in
  let matches = Mrsl.Lattice.matching l [| None; Some 0; Some 1 |] in
  let best = Mrsl.Lattice.most_specific matches in
  Alcotest.(check int) "single most specific" 1 (List.length best);
  Alcotest.(check int) "it is the 2-item body" 2
    (Mrsl.Meta_rule.specificity (List.hd best))

let test_lattice_most_specific_incomparable () =
  let l = sample_lattice () in
  (* Remove the deep rule from play by matching a tuple where only the two
     1-item bodies apply: both are maximal. *)
  let matches = Mrsl.Lattice.matching l [| None; Some 0; None |] in
  let best = Mrsl.Lattice.most_specific matches in
  Alcotest.(check int) "one maximal" 1 (List.length best)

let test_lattice_cover_edges () =
  let l = sample_lattice () in
  let edges = Mrsl.Lattice.cover_edges l in
  (* Root covers the three 1-item bodies; the two compatible 1-item bodies
     cover the 2-item body: 3 + 2 = 5 cover edges. The root must NOT have a
     direct edge to the 2-item body (transitively reduced). *)
  Alcotest.(check int) "edge count" 5 (List.length edges);
  let root_to_deep =
    List.exists
      (fun ((p : Mrsl.Meta_rule.t), (c : Mrsl.Meta_rule.t)) ->
        Mining.Itemset.is_empty p.body && Mrsl.Meta_rule.specificity c = 2)
      edges
  in
  Alcotest.(check bool) "no transitive edge" false root_to_deep

let test_lattice_rejects () =
  Alcotest.check_raises "root with body"
    (Invalid_argument "Lattice.create: root body must be empty") (fun () ->
      ignore
        (Mrsl.Lattice.create ~head_attr:0 ~head_card:2
           ~root:(mk_meta (iset [ (1, 0) ]) 0.5)
           []));
  Alcotest.check_raises "duplicate body"
    (Invalid_argument "Lattice.create: duplicate body") (fun () ->
      ignore
        (Mrsl.Lattice.create ~head_attr:0 ~head_card:2 ~root:(root2 0)
           [ mk_meta (iset [ (1, 0) ]) 0.5; mk_meta (iset [ (1, 0) ]) 0.4 ]))

(* Voting *)

let test_voting_names () =
  Alcotest.(check string) "name" "best averaged"
    (Mrsl.Voting.method_name Mrsl.Voting.best_averaged);
  Alcotest.(check bool) "parse dashes" true
    (Mrsl.Voting.method_of_string "Best-Weighted"
    = Some Mrsl.Voting.best_weighted);
  Alcotest.(check bool) "parse underscores" true
    (Mrsl.Voting.method_of_string "all_averaged"
    = Some Mrsl.Voting.all_averaged);
  Alcotest.(check bool) "reject junk" true
    (Mrsl.Voting.method_of_string "bogus" = None);
  Alcotest.(check int) "four methods" 4 (List.length Mrsl.Voting.all_methods)

let test_voting_combine () =
  let a =
    Mrsl.Meta_rule.make ~body:Mining.Itemset.empty ~head_attr:0 ~weight:1.0
      ~raw_cpd:[| 1.; 0. |] ()
  in
  let b =
    Mrsl.Meta_rule.make ~body:(iset [ (1, 0) ]) ~head_attr:0 ~weight:0.25
      ~raw_cpd:[| 0.; 1. |] ()
  in
  let avg = Mrsl.Voting.combine Mrsl.Voting.Averaged [ a; b ] in
  check_float ~eps:1e-4 "averaged" 0.5 (Prob.Dist.prob avg 0);
  let wavg = Mrsl.Voting.combine Mrsl.Voting.Weighted [ a; b ] in
  check_float ~eps:1e-4 "weighted" 0.8 (Prob.Dist.prob wavg 0)

(* Model learning (Algorithm 1) *)

let test_model_learn_dependent_data () =
  let points = dependent_points 400 in
  let model = Mrsl.Model.learn_points dependent_schema points in
  Alcotest.(check int) "three lattices" 3
    (Array.length (Mrsl.Model.lattices model));
  (* Dependency a1 = a0 must be captured: the lattice for a1 has a meta-rule
     with body {a0 = 0} predicting a1 = 0 with near-certainty. *)
  let l1 = Mrsl.Model.lattice model 1 in
  match Mrsl.Lattice.find l1 (iset [ (0, 0) ]) with
  | None -> Alcotest.fail "missing meta-rule for a0=0"
  | Some m ->
      Alcotest.(check bool) "dependency captured" true
        (Prob.Dist.prob m.cpd 0 > 0.99)

let test_model_root_always_present () =
  let points = dependent_points 50 in
  let model = Mrsl.Model.learn_points dependent_schema points in
  Array.iter
    (fun l ->
      let root = Mrsl.Lattice.root l in
      check_float "root weight" 1.0 root.weight;
      check_dist_positive "root positive" root.cpd)
    (Mrsl.Model.lattices model)

let test_model_root_matches_marginals () =
  let points = dependent_points 400 in
  let model = Mrsl.Model.learn_points dependent_schema points in
  let root = Mrsl.Lattice.root (Mrsl.Model.lattice model 0) in
  (* a0 alternates 0/1 evenly. *)
  check_float ~eps:1e-3 "marginal" 0.5 (Prob.Dist.prob root.cpd 0)

let test_model_size_decreases_with_threshold () =
  let points = dependent_points 400 in
  let learn th =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = th }
      dependent_schema points
  in
  Alcotest.(check bool) "monotone" true
    (Mrsl.Model.size (learn 0.4) <= Mrsl.Model.size (learn 0.01))

let test_model_learn_from_instance_uses_complete_part () =
  (* Incomplete tuples must not contribute to supports. *)
  let tuples =
    List.init 100 (fun i ->
        if i < 50 then Relation.Tuple.of_point [| 0; 0; 0 |]
        else [| Some 1; None; Some 1 |])
  in
  let inst = Relation.Instance.make dependent_schema tuples in
  let model = Mrsl.Model.learn inst in
  let root = Mrsl.Lattice.root (Mrsl.Model.lattice model 0) in
  (* All complete points have a0 = 0. *)
  Alcotest.(check bool) "only complete part counted" true
    (Prob.Dist.prob root.cpd 0 > 0.99)

let test_model_rejects_bad_params () =
  Alcotest.check_raises "threshold"
    (Invalid_argument "Model.learn: support_threshold must be in [0, 1]")
    (fun () ->
      ignore
        (Mrsl.Model.learn_points
           ~params:{ Mrsl.Model.default_params with support_threshold = 2. }
           dependent_schema (dependent_points 10)));
  Alcotest.check_raises "floor"
    (Invalid_argument "Model.learn: smoothing_floor must be in (0, 0.5)")
    (fun () ->
      ignore
        (Mrsl.Model.learn_points
           ~params:{ Mrsl.Model.default_params with smoothing_floor = 0.9 }
           dependent_schema (dependent_points 10)))

let test_model_empty_training () =
  (* No points at all: roots fall back to uniform, no other meta-rules. *)
  let model = Mrsl.Model.learn_points dependent_schema [||] in
  Alcotest.(check int) "only roots" 3 (Mrsl.Model.size model);
  let root = Mrsl.Lattice.root (Mrsl.Model.lattice model 2) in
  check_float "uniform root" 0.5 (Prob.Dist.prob root.cpd 0)

(* Single-attribute inference (Algorithm 2) *)

let test_infer_single_learns_dependency () =
  let points = dependent_points 400 in
  let model = Mrsl.Model.learn_points dependent_schema points in
  let d =
    Mrsl.Infer_single.infer ~method_:Mrsl.Voting.best_averaged model
      [| Some 1; None; Some 0 |] 1
  in
  Alcotest.(check int) "predicts a1 = a0" 1 (Prob.Dist.mode d);
  Alcotest.(check bool) "confident" true (Prob.Dist.prob d 1 > 0.9)

let test_infer_single_no_evidence_gives_marginal () =
  let points = dependent_points 400 in
  let model = Mrsl.Model.learn_points dependent_schema points in
  let d = Mrsl.Infer_single.infer model [| None; None; None |] 0 in
  check_float ~eps:1e-3 "marginal" 0.5 (Prob.Dist.prob d 0)

let test_infer_single_rejects () =
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 10) in
  Alcotest.check_raises "not missing"
    (Invalid_argument "Infer_single: attribute is not missing in the tuple")
    (fun () ->
      ignore (Mrsl.Infer_single.infer model [| Some 0; Some 0; Some 0 |] 0));
  Alcotest.check_raises "arity"
    (Invalid_argument "Infer_single: tuple arity does not match model schema")
    (fun () -> ignore (Mrsl.Infer_single.infer model [| None |] 0))

let test_infer_single_voters () =
  let points = dependent_points 400 in
  let model = Mrsl.Model.learn_points dependent_schema points in
  let tup : Relation.Tuple.t = [| Some 0; None; Some 1 |] in
  let all = Mrsl.Infer_single.voters ~method_:Mrsl.Voting.all_averaged model tup 1 in
  let best =
    Mrsl.Infer_single.voters ~method_:Mrsl.Voting.best_averaged model tup 1
  in
  Alcotest.(check bool) "best is a subset" true
    (List.length best <= List.length all);
  Alcotest.(check bool) "all includes root" true
    (List.exists
       (fun (m : Mrsl.Meta_rule.t) -> Mining.Itemset.is_empty m.body)
       all)

let test_infer_all_missing () =
  let points = dependent_points 400 in
  let model = Mrsl.Model.learn_points dependent_schema points in
  let ests = Mrsl.Infer_single.infer_all_missing model [| Some 0; None; None |] in
  Alcotest.(check (list int)) "covers missing attrs" [ 1; 2 ]
    (List.map fst ests)

let test_voting_methods_differ_on_example () =
  (* Section I-B: for tuple t1 of Fig 1, all-averaged and best-weighted give
     different CPDs. We verify the four methods all produce valid, not
     necessarily equal, estimates on the Fig 1 data. *)
  let r = fig1_relation () in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
      r
  in
  let tup : Relation.Tuple.t = [| None; Some 0; Some 0; Some 1 |] in
  List.iter
    (fun m ->
      let d = Mrsl.Infer_single.infer ~method_:m model tup 0 in
      check_dist_positive (Mrsl.Voting.method_name m) d;
      check_dist_sums_to_one (Mrsl.Voting.method_name m) d)
    Mrsl.Voting.all_methods

(* Properties *)

let prop_inference_always_valid =
  qcheck ~count:80 "inference yields positive normalized CPDs"
    QCheck2.Gen.(tup2 (int_range 0 1000) (int_range 0 2))
    (fun (seed, attr) ->
      let r = Prob.Rng.create seed in
      let points =
        Array.init 60 (fun _ ->
            Array.init 3 (fun _ -> Prob.Rng.int r 2))
      in
      let model =
        Mrsl.Model.learn_points
          ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
          dependent_schema points
      in
      let tup = Array.init 3 (fun i -> if i = attr then None else Some 0) in
      List.for_all
        (fun m ->
          let d = Mrsl.Infer_single.infer ~method_:m model tup attr in
          let arr = Prob.Dist.to_array d in
          Array.for_all (fun p -> p > 0.) arr
          && float_close ~eps:1e-9 1.0 (Array.fold_left ( +. ) 0. arr))
        Mrsl.Voting.all_methods)

let prop_best_voters_are_maximal =
  qcheck ~count:80 "best voters subsume no other match"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let points =
        Array.init 80 (fun _ -> Array.init 3 (fun _ -> Prob.Rng.int r 2))
      in
      let model =
        Mrsl.Model.learn_points
          ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
          dependent_schema points
      in
      let tup : Relation.Tuple.t = [| None; Some 0; Some 1 |] in
      let all = Mrsl.Infer_single.voters ~method_:Mrsl.Voting.all_averaged model tup 0 in
      let best =
        Mrsl.Infer_single.voters ~method_:Mrsl.Voting.best_averaged model tup 0
      in
      List.for_all
        (fun b -> not (List.exists (fun o -> Mrsl.Meta_rule.subsumes b o) all))
        best)

let suite =
  [
    ("meta-rule CPD from paper example", `Quick, test_meta_rule_paper_cpd);
    ("meta-rule smoothing", `Quick, test_meta_rule_smooths_missing_values);
    ("meta-rule rejects", `Quick, test_meta_rule_rejects);
    ("meta-rule subsumption (Def 2.7)", `Quick, test_meta_rule_subsumption);
    ("meta-rule matching", `Quick, test_meta_rule_matches);
    ("lattice size/find", `Quick, test_lattice_size_and_find);
    ("lattice matching", `Quick, test_lattice_matching);
    ("lattice most specific", `Quick, test_lattice_most_specific);
    ("lattice most specific incomparable", `Quick,
     test_lattice_most_specific_incomparable);
    ("lattice cover edges", `Quick, test_lattice_cover_edges);
    ("lattice rejects", `Quick, test_lattice_rejects);
    ("voting names", `Quick, test_voting_names);
    ("voting combine", `Quick, test_voting_combine);
    ("model learns dependency", `Quick, test_model_learn_dependent_data);
    ("model roots present", `Quick, test_model_root_always_present);
    ("model root marginals", `Quick, test_model_root_matches_marginals);
    ("model size vs threshold", `Quick, test_model_size_decreases_with_threshold);
    ("model uses complete part only", `Quick,
     test_model_learn_from_instance_uses_complete_part);
    ("model rejects bad params", `Quick, test_model_rejects_bad_params);
    ("model from empty training", `Quick, test_model_empty_training);
    ("inference learns dependency", `Quick, test_infer_single_learns_dependency);
    ("inference without evidence", `Quick,
     test_infer_single_no_evidence_gives_marginal);
    ("inference rejects", `Quick, test_infer_single_rejects);
    ("inference voters", `Quick, test_infer_single_voters);
    ("inference over all missing attrs", `Quick, test_infer_all_missing);
    ("voting methods on Fig 1 data", `Quick, test_voting_methods_differ_on_example);
    prop_inference_always_valid;
    prop_best_voters_are_maximal;
  ]
