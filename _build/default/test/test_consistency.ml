(* Cross-module consistency tests: brute-force oracles checked against the
   optimized implementations, and statistical end-to-end identities. *)

open Helpers

let random_points rng n arity card =
  Array.init n (fun _ -> Array.init arity (fun _ -> Prob.Rng.int rng card))

(* Lattice.matching (subset-enumeration with a hash probe) must equal the
   brute-force scan over all meta-rules. *)
let prop_lattice_matching_equals_bruteforce =
  qcheck ~count:60 "lattice matching equals brute force"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let points = random_points r 60 4 2 in
      let schema = Relation.Schema.of_cardinalities [ 2; 2; 2; 2 ] in
      let model =
        Mrsl.Model.learn_points
          ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
          schema points
      in
      let tup =
        Array.init 4 (fun _ ->
            if Prob.Rng.bool r then Some (Prob.Rng.int r 2) else None)
      in
      List.for_all
        (fun attr ->
          let lattice = Mrsl.Model.lattice model attr in
          let probe = Array.copy tup in
          probe.(attr) <- None;
          let fast =
            List.sort compare
              (List.map
                 (fun (m : Mrsl.Meta_rule.t) -> Mining.Itemset.to_list m.body)
                 (Mrsl.Lattice.matching lattice probe))
          in
          let brute =
            List.sort compare
              (List.filter_map
                 (fun (m : Mrsl.Meta_rule.t) ->
                   if Mrsl.Meta_rule.matches m probe then
                     Some (Mining.Itemset.to_list m.body)
                   else None)
                 (Mrsl.Lattice.meta_rules lattice))
          in
          fast = brute)
        [ 0; 1; 2; 3 ])

(* Meta-rule CPDs must equal conditional relative frequencies (before
   smoothing's tiny floor) on the training data. *)
let prop_meta_rule_cpds_are_conditional_frequencies =
  qcheck ~count:40 "meta-rule CPDs = conditional frequencies"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let points = random_points r 100 3 2 in
      let schema = Relation.Schema.of_cardinalities [ 2; 2; 2 ] in
      let model =
        Mrsl.Model.learn_points
          ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
          schema points
      in
      (* Independent oracle: reconstruct each meta-rule's raw confidence
         vector by brute-force counting under the mining criterion (a rule
         exists iff count(body ∪ {a = v}) reaches ⌈θ·N⌉), then apply the
         same smoothing. *)
      let n_points = Array.length points in
      let min_count =
        max 1 (int_of_float (Float.ceil (0.05 *. float_of_int n_points)))
      in
      let count pred = Array.fold_left (fun acc p -> if pred p then acc + 1 else acc) 0 points in
      let ok = ref true in
      Array.iter
        (fun lattice ->
          let attr = Mrsl.Lattice.head_attr lattice in
          List.iter
            (fun (m : Mrsl.Meta_rule.t) ->
              if not (Mining.Itemset.is_empty m.body) then begin
                let body_count =
                  count (fun p -> Mining.Itemset.matches_point m.body p)
                in
                let raw =
                  Array.init 2 (fun v ->
                      let c =
                        count (fun p ->
                            Mining.Itemset.matches_point m.body p
                            && p.(attr) = v)
                      in
                      if c >= min_count then
                        float_of_int c /. float_of_int body_count
                      else 0.)
                in
                let expected = Prob.Dist.smooth raw in
                for v = 0 to 1 do
                  if
                    not
                      (float_close ~eps:1e-9
                         (Prob.Dist.prob expected v)
                         (Prob.Dist.prob m.cpd v))
                  then ok := false
                done
              end)
            (Mrsl.Lattice.meta_rules lattice))
        (Mrsl.Model.lattices model);
      !ok)

(* Instance.support must agree with Apriori supports on the same data. *)
let prop_instance_support_matches_apriori =
  qcheck ~count:40 "Instance.support = Apriori support"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let points = random_points r 50 3 2 in
      let schema = Relation.Schema.of_cardinalities [ 2; 2; 2 ] in
      let inst = Relation.Instance.of_points schema (Array.to_list points) in
      let apriori =
        Mining.Apriori.mine
          ~config:{ threshold = 0.05; max_itemsets = 10_000 }
          ~cards:[| 2; 2; 2 |] points
      in
      List.for_all
        (fun (s, supp) ->
          let tup = Mining.Itemset.to_tuple ~arity:3 s in
          float_close ~eps:1e-9 supp (Relation.Instance.support inst tup))
        (Mining.Apriori.frequent apriori))

(* On the Fig 1 data, the weight of P(age | edu=HS) equals the support of
   the frequent itemset {edu = HS} — "precisely the support" per Section
   III. *)
let test_meta_rule_weight_is_body_support () =
  let rel = fig1_relation () in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.1 }
      rel
  in
  let age = 0 in
  let lattice = Mrsl.Model.lattice model age in
  match Mrsl.Lattice.find lattice (Mining.Itemset.of_list [ (1, 0) ]) with
  | None -> Alcotest.fail "P(age | edu=HS) not learned"
  | Some m ->
      check_float "weight = supp(edu=HS)"
        (Relation.Instance.support rel [| None; Some 0; None; None |])
        m.weight

(* Gibbs single-missing estimate must agree with Algorithm 2's direct
   estimate (the chain just resamples one attribute from its own
   conditional). *)
let test_gibbs_degenerates_to_single_inference () =
  let model =
    Mrsl.Model.learn_points dependent_schema (dependent_points 300)
  in
  let sampler = Mrsl.Gibbs.sampler model in
  let tup : Relation.Tuple.t = [| Some 1; None; Some 0 |] in
  let direct = Mrsl.Infer_single.infer model tup 1 in
  let est =
    Mrsl.Gibbs.run
      ~config:{ burn_in = 20; samples = 4000 }
      (rng ()) sampler tup
  in
  let sampled = Mrsl.Gibbs.marginal est 1 in
  Alcotest.(check bool) "within sampling noise" true
    (Prob.Divergence.total_variation direct sampled < 0.03)

(* End-to-end statistical identity: on an independent network (BN4) the
   inferred CPD for any attribute is close to its marginal, regardless of
   evidence. *)
let test_independent_network_ignores_evidence () =
  let entry = Bayesnet.Catalog.find "BN4" in
  let r = rng () in
  let net = Bayesnet.Network.generate r entry.topology in
  let data = Bayesnet.Network.sample_instance r net 5000 in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
      data
  in
  let point = Bayesnet.Network.sample_point r net in
  let tup = Relation.Tuple.of_point point in
  tup.(0) <- None;
  let with_evidence = Mrsl.Infer_single.infer model tup 0 in
  let no_evidence =
    Mrsl.Infer_single.infer model
      (Array.map (fun _ -> None) tup)
      0
  in
  Alcotest.(check bool) "evidence changes little" true
    (Prob.Divergence.total_variation with_evidence no_evidence < 0.12)

(* The tuple-DAG shares only matching samples: estimates conditioned on
   incompatible evidence stay distinct. *)
let test_dag_sharing_respects_evidence () =
  let model =
    Mrsl.Model.learn_points dependent_schema (dependent_points 300)
  in
  let sampler = Mrsl.Gibbs.sampler model in
  let workload : Relation.Tuple.t list =
    [
      [| None; None; None |];
      (* Children with contradictory evidence on a0. *)
      [| Some 0; None; None |];
      [| Some 1; None; None |];
    ]
  in
  let result =
    Mrsl.Workload.run
      ~config:{ burn_in = 20; samples = 500 }
      ~strategy:Mrsl.Workload.Tuple_dag (rng ()) sampler workload
  in
  let find tup =
    snd (List.find (fun (t, _) -> Relation.Tuple.equal t tup) result.estimates)
  in
  let e0 : Mrsl.Gibbs.estimate = find [| Some 0; None; None |] in
  let e1 : Mrsl.Gibbs.estimate = find [| Some 1; None; None |] in
  (* a1 = a0 in the data, so the two marginals must be near-opposite. *)
  let m0 = Mrsl.Gibbs.marginal e0 1 and m1 = Mrsl.Gibbs.marginal e1 1 in
  Alcotest.(check bool) "evidence drives the shared samples apart" true
    (Prob.Dist.prob m0 0 > 0.8 && Prob.Dist.prob m1 1 > 0.8)

(* Blocks derived from estimates re-expose the estimate's probabilities. *)
let prop_block_roundtrip =
  qcheck ~count:30 "block alternatives sum to estimate mass"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let model =
        Mrsl.Model.learn_points dependent_schema (dependent_points 100)
      in
      let sampler = Mrsl.Gibbs.sampler model in
      let est =
        Mrsl.Gibbs.run
          ~config:{ burn_in = 5; samples = 100 }
          (Prob.Rng.create seed) sampler
          [| Some 0; None; None |]
      in
      let block = Probdb.Block.of_estimate est in
      let total =
        List.fold_left
          (fun acc (a : Probdb.Block.alternative) -> acc +. a.prob)
          0. block.alternatives
      in
      float_close ~eps:1e-9 1.0 (total +. block.truncated_mass))

let suite =
  [
    prop_lattice_matching_equals_bruteforce;
    prop_meta_rule_cpds_are_conditional_frequencies;
    prop_instance_support_matches_apriori;
    ("meta-rule weight = body support (Fig 1)", `Quick,
     test_meta_rule_weight_is_body_support);
    ("gibbs degenerates to Algorithm 2", `Slow,
     test_gibbs_degenerates_to_single_inference);
    ("independent network ignores evidence", `Slow,
     test_independent_network_ignores_evidence);
    ("DAG sharing respects evidence", `Quick, test_dag_sharing_respects_evidence);
    prop_block_roundtrip;
  ]
