(* Tests for the mining substrate: Itemset, Apriori, Assoc_rule. Support
   values are cross-checked against brute-force counting and the paper's
   worked example. *)

open Helpers

let iset = Mining.Itemset.of_list

let test_itemset_of_list_sorted () =
  let s = iset [ (2, 1); (0, 3) ] in
  Alcotest.(check (list (pair int int))) "sorted by attribute" [ (0, 3); (2, 1) ]
    (Mining.Itemset.to_list s)

let test_itemset_rejects () =
  Alcotest.check_raises "duplicate attr"
    (Invalid_argument "Itemset.of_list: duplicate attribute") (fun () ->
      ignore (iset [ (0, 1); (0, 2) ]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Itemset.of_list: negative attribute or value") (fun () ->
      ignore (iset [ (-1, 0) ]))

let test_itemset_lookup () =
  let s = iset [ (0, 3); (2, 1); (5, 0) ] in
  Alcotest.(check (option int)) "value_of present" (Some 1)
    (Mining.Itemset.value_of s 2);
  Alcotest.(check (option int)) "value_of absent" None
    (Mining.Itemset.value_of s 3);
  Alcotest.(check bool) "mem" true (Mining.Itemset.mem_attr s 5)

let test_itemset_add_remove () =
  let s = iset [ (1, 0) ] in
  let s2 = Mining.Itemset.add s 0 2 in
  Alcotest.(check (list (pair int int))) "added" [ (0, 2); (1, 0) ]
    (Mining.Itemset.to_list s2);
  Alcotest.check_raises "add duplicate"
    (Invalid_argument "Itemset.add: attribute already present") (fun () ->
      ignore (Mining.Itemset.add s 1 1));
  Alcotest.(check bool) "remove" true
    (Mining.Itemset.equal s (Mining.Itemset.remove_attr s2 0));
  Alcotest.(check bool) "remove absent is identity" true
    (Mining.Itemset.equal s (Mining.Itemset.remove_attr s 7))

let test_itemset_subset () =
  let small = iset [ (0, 1) ] in
  let big = iset [ (0, 1); (2, 0) ] in
  let conflicting = iset [ (0, 2); (2, 0) ] in
  Alcotest.(check bool) "subset" true (Mining.Itemset.subset small big);
  Alcotest.(check bool) "proper" true (Mining.Itemset.proper_subset small big);
  Alcotest.(check bool) "not proper of itself" false
    (Mining.Itemset.proper_subset big big);
  Alcotest.(check bool) "value conflict" false
    (Mining.Itemset.subset small conflicting);
  Alcotest.(check bool) "empty is subset" true
    (Mining.Itemset.subset Mining.Itemset.empty small)

let test_itemset_union () =
  let a = iset [ (0, 1); (1, 0) ] in
  let b = iset [ (1, 0); (2, 1) ] in
  (match Mining.Itemset.union_disjoint a b with
  | Some u ->
      Alcotest.(check (list (pair int int))) "union" [ (0, 1); (1, 0); (2, 1) ]
        (Mining.Itemset.to_list u)
  | None -> Alcotest.fail "expected union");
  let c = iset [ (1, 1) ] in
  Alcotest.(check bool) "conflict yields None" true
    (Mining.Itemset.union_disjoint a c = None)

let test_itemset_matching () =
  let s = iset [ (0, 1); (2, 0) ] in
  Alcotest.(check bool) "matches point" true
    (Mining.Itemset.matches_point s [| 1; 9; 0 |]);
  Alcotest.(check bool) "rejects point" false
    (Mining.Itemset.matches_point s [| 0; 9; 0 |]);
  Alcotest.(check bool) "matches tuple knowns" true
    (Mining.Itemset.matches_tuple s [| Some 1; None; Some 0 |]);
  Alcotest.(check bool) "missing slot does not match" false
    (Mining.Itemset.matches_tuple s [| Some 1; None; None |])

let test_itemset_tuple_roundtrip () =
  let tup : Relation.Tuple.t = [| Some 2; None; Some 0 |] in
  let s = Mining.Itemset.of_tuple tup in
  Alcotest.(check bool) "roundtrip" true
    (Relation.Tuple.equal tup (Mining.Itemset.to_tuple ~arity:3 s))

(* Brute-force support for cross-checking Apriori. *)
let brute_support points s =
  let n = Array.length points in
  let hits =
    Array.fold_left
      (fun acc p -> if Mining.Itemset.matches_point s p then acc + 1 else acc)
      0 points
  in
  float_of_int hits /. float_of_int n

let small_points =
  [|
    [| 0; 0; 0 |]; [| 0; 0; 1 |]; [| 0; 1; 0 |]; [| 1; 1; 1 |];
    [| 1; 1; 0 |]; [| 0; 0; 0 |]; [| 1; 0; 1 |]; [| 0; 1; 1 |];
  |]

let test_apriori_supports_exact () =
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.1; max_itemsets = 1000 }
      ~cards:[| 2; 2; 2 |] small_points
  in
  List.iter
    (fun (s, supp) ->
      check_float
        (Format.asprintf "support of %a" Mining.Itemset.pp s)
        (brute_support small_points s)
        supp)
    (Mining.Apriori.frequent result)

let test_apriori_threshold_monotone () =
  let mine th =
    Mining.Apriori.mine
      ~config:{ threshold = th; max_itemsets = 1000 }
      ~cards:[| 2; 2; 2 |] small_points
  in
  let low = Mining.Apriori.count (mine 0.05) in
  let high = Mining.Apriori.count (mine 0.4) in
  Alcotest.(check bool) "higher threshold, fewer itemsets" true (high <= low);
  Alcotest.(check bool) "low threshold finds many" true (low > high)

let test_apriori_empty_itemset_present () =
  let result =
    Mining.Apriori.mine ~cards:[| 2; 2; 2 |] small_points
  in
  Alcotest.(check (option (float 1e-9))) "empty itemset support 1" (Some 1.)
    (Mining.Apriori.support result Mining.Itemset.empty)

let test_apriori_downward_closure () =
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.1; max_itemsets = 1000 }
      ~cards:[| 2; 2; 2 |] small_points
  in
  List.iter
    (fun (s, _) ->
      List.iter
        (fun a ->
          let sub = Mining.Itemset.remove_attr s a in
          if Mining.Apriori.support result sub = None then
            Alcotest.failf "subset of a frequent itemset is missing")
        (Mining.Itemset.attrs s))
    (Mining.Apriori.frequent result)

let test_apriori_empty_data () =
  let result = Mining.Apriori.mine ~cards:[| 2 |] [||] in
  Alcotest.(check int) "no itemsets" 0 (Mining.Apriori.count result);
  Alcotest.(check int) "no rounds" 0 (Mining.Apriori.rounds result)

let test_apriori_max_itemsets_cap () =
  (* A 6-attribute dataset with every combination frequent: a tiny cap must
     truncate and mark it. *)
  let r = rng () in
  let points =
    Array.init 400 (fun _ -> Array.init 6 (fun _ -> Prob.Rng.int r 2))
  in
  let capped =
    Mining.Apriori.mine
      ~config:{ threshold = 0.001; max_itemsets = 10 }
      ~cards:(Array.make 6 2) points
  in
  let free =
    Mining.Apriori.mine
      ~config:{ threshold = 0.001; max_itemsets = 100_000 }
      ~cards:(Array.make 6 2) points
  in
  Alcotest.(check bool) "cap fired" true (Mining.Apriori.truncated capped);
  Alcotest.(check bool) "cap reduces itemsets" true
    (Mining.Apriori.count capped < Mining.Apriori.count free);
  Alcotest.(check bool) "uncapped explored deeper" true
    (Mining.Apriori.rounds free >= Mining.Apriori.rounds capped)

let test_apriori_rounds () =
  (* Perfectly correlated attributes: itemsets of every size are frequent. *)
  let points = Array.init 100 (fun i -> Array.make 4 (i mod 2)) in
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.4; max_itemsets = 1000 }
      ~cards:(Array.make 4 2) points
  in
  Alcotest.(check int) "reaches size 4" 4 (Mining.Apriori.rounds result);
  Alcotest.(check int) "all correlated itemsets"
    (* sizes 1..4 with 2 value combos each: 2*(C(4,1)+C(4,2)+C(4,3)+C(4,4)) *)
    (2 * (4 + 6 + 4 + 1))
    (Mining.Apriori.count result)

let test_apriori_rejects () =
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Apriori.mine: threshold must be in [0, 1]") (fun () ->
      ignore
        (Mining.Apriori.mine
           ~config:{ threshold = 2.; max_itemsets = 10 }
           ~cards:[| 2 |] [| [| 0 |] |]));
  Alcotest.check_raises "value out of range"
    (Invalid_argument "Apriori.mine: value out of range") (fun () ->
      ignore (Mining.Apriori.mine ~cards:[| 2 |] [| [| 5 |] |]))

(* Association rules *)

let test_assoc_rules_confidence () =
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.1; max_itemsets = 1000 }
      ~cards:[| 2; 2; 2 |] small_points
  in
  let rules = Mining.Assoc_rule.mine_for_attr result 1 in
  Alcotest.(check bool) "rules exist" true (rules <> []);
  List.iter
    (fun (r : Mining.Assoc_rule.t) ->
      Alcotest.(check int) "head attr" 1 r.head_attr;
      let whole = Mining.Itemset.add r.body 1 r.head_value in
      check_float "confidence = supp(whole)/supp(body)"
        (brute_support small_points whole
        /. brute_support small_points r.body)
        r.confidence;
      Alcotest.(check bool) "confidence in (0,1]" true
        (r.confidence > 0. && r.confidence <= 1. +. 1e-9))
    rules

let test_assoc_rules_empty_body_present () =
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.1; max_itemsets = 1000 }
      ~cards:[| 2; 2; 2 |] small_points
  in
  let rules = Mining.Assoc_rule.mine_for_attr result 0 in
  Alcotest.(check bool) "has empty-body rules" true
    (List.exists
       (fun (r : Mining.Assoc_rule.t) -> Mining.Itemset.is_empty r.body)
       rules)

let test_assoc_rules_paper_example () =
  (* Section II defines confidence as supp(body ∪ head)/supp(body). On the
     Fig 1 complete part, 4 of the 8 points have edu=HS (t4, t6, t7, t17),
     of which 3 have age=20 — so conf(age=20 | edu=HS) = 3/4. *)
  let r = fig1_relation () in
  let points = Relation.Instance.complete_part r in
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.01; max_itemsets = 1000 }
      ~cards:[| 3; 3; 2; 2 |] points
  in
  let rules = Mining.Assoc_rule.mine_for_attr result 0 in
  let rule =
    List.find
      (fun (r : Mining.Assoc_rule.t) ->
        Mining.Itemset.equal r.body (iset [ (1, 0) ]) && r.head_value = 0)
      rules
  in
  check_float "conf(age=20 | edu=HS)" (3. /. 4.) rule.confidence;
  check_float "body support" (4. /. 8.) rule.body_support

let test_assoc_rules_all_attrs () =
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.1; max_itemsets = 1000 }
      ~cards:[| 2; 2; 2 |] small_points
  in
  let all = Mining.Assoc_rule.mine result ~arity:3 in
  let per_attr a =
    List.length (Mining.Assoc_rule.mine_for_attr result a)
  in
  Alcotest.(check int) "mine = concat of per-attr"
    (per_attr 0 + per_attr 1 + per_attr 2)
    (List.length all)

(* Properties *)

let points_gen =
  QCheck2.Gen.(
    list_size (int_range 8 40)
      (tup3 (int_range 0 1) (int_range 0 2) (int_range 0 1))
    >|= fun rows ->
    Array.of_list (List.map (fun (a, b, c) -> [| a; b; c |]) rows))

let prop_apriori_supports_match_bruteforce =
  qcheck ~count:60 "apriori supports equal brute force" points_gen
    (fun points ->
      let result =
        Mining.Apriori.mine
          ~config:{ threshold = 0.15; max_itemsets = 1000 }
          ~cards:[| 2; 3; 2 |] points
      in
      List.for_all
        (fun (s, supp) -> float_close ~eps:1e-9 (brute_support points s) supp)
        (Mining.Apriori.frequent result))

let prop_apriori_respects_threshold =
  qcheck ~count:60 "every frequent itemset passes the threshold" points_gen
    (fun points ->
      let threshold = 0.2 in
      let result =
        Mining.Apriori.mine
          ~config:{ threshold; max_itemsets = 1000 }
          ~cards:[| 2; 3; 2 |] points
      in
      List.for_all
        (fun (s, supp) -> Mining.Itemset.is_empty s || supp >= threshold -. 1e-9)
        (Mining.Apriori.frequent result))

let prop_rule_support_decomposition =
  qcheck ~count:60 "rule_support = confidence * body_support" points_gen
    (fun points ->
      let result =
        Mining.Apriori.mine
          ~config:{ threshold = 0.1; max_itemsets = 1000 }
          ~cards:[| 2; 3; 2 |] points
      in
      List.for_all
        (fun (r : Mining.Assoc_rule.t) ->
          float_close ~eps:1e-9 r.rule_support (r.confidence *. r.body_support))
        (Mining.Assoc_rule.mine result ~arity:3))

let suite =
  [
    ("itemset sorted construction", `Quick, test_itemset_of_list_sorted);
    ("itemset rejects", `Quick, test_itemset_rejects);
    ("itemset lookup", `Quick, test_itemset_lookup);
    ("itemset add/remove", `Quick, test_itemset_add_remove);
    ("itemset subset", `Quick, test_itemset_subset);
    ("itemset union", `Quick, test_itemset_union);
    ("itemset matching", `Quick, test_itemset_matching);
    ("itemset/tuple roundtrip", `Quick, test_itemset_tuple_roundtrip);
    ("apriori exact supports", `Quick, test_apriori_supports_exact);
    ("apriori threshold monotone", `Quick, test_apriori_threshold_monotone);
    ("apriori empty itemset", `Quick, test_apriori_empty_itemset_present);
    ("apriori downward closure", `Quick, test_apriori_downward_closure);
    ("apriori empty data", `Quick, test_apriori_empty_data);
    ("apriori maxItemsets cap", `Quick, test_apriori_max_itemsets_cap);
    ("apriori round count", `Quick, test_apriori_rounds);
    ("apriori rejects", `Quick, test_apriori_rejects);
    ("association rule confidence", `Quick, test_assoc_rules_confidence);
    ("association rules with empty body", `Quick,
     test_assoc_rules_empty_body_present);
    ("association rules on the paper's example", `Quick,
     test_assoc_rules_paper_example);
    ("mine covers all attributes", `Quick, test_assoc_rules_all_attrs);
    prop_apriori_supports_match_bruteforce;
    prop_apriori_respects_threshold;
    prop_rule_support_decomposition;
  ]
