type t = {
  body : Itemset.t;
  head_attr : int;
  head_value : int;
  confidence : float;
  body_support : float;
  rule_support : float;
}

let mine_for_attr apriori attr =
  List.filter_map
    (fun (itemset, rule_support) ->
      match Itemset.value_of itemset attr with
      | None -> None
      | Some head_value ->
          let body = Itemset.remove_attr itemset attr in
          (* Downward closure guarantees the body is frequent too. *)
          let body_support =
            match Apriori.support apriori body with
            | Some s -> s
            | None -> assert false
          in
          Some
            {
              body;
              head_attr = attr;
              head_value;
              confidence = rule_support /. body_support;
              body_support;
              rule_support;
            })
    (Apriori.frequent apriori)

let mine apriori ~arity =
  List.concat_map (mine_for_attr apriori) (List.init arity Fun.id)

let pp ppf r =
  Format.fprintf ppf "%a => a%d=%d (conf %.3f, supp %.3f)" Itemset.pp r.body
    r.head_attr r.head_value r.confidence r.rule_support
