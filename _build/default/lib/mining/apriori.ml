type config = { threshold : float; max_itemsets : int }

let default_config = { threshold = 0.02; max_itemsets = 1000 }

type t = {
  supports : float Itemset.Table.t;
  rounds : int;
  truncated : bool;
}

let of_supports ~rounds ~truncated pairs =
  let supports = Itemset.Table.create (List.length pairs * 2 + 1) in
  Itemset.Table.replace supports Itemset.empty 1.0;
  List.iter (fun (s, supp) -> Itemset.Table.replace supports s supp) pairs;
  { supports; rounds; truncated }

let support t s = Itemset.Table.find_opt t.supports s

let frequent t =
  Itemset.Table.fold (fun s supp acc -> (s, supp) :: acc) t.supports []
  |> List.sort (fun (a, _) (b, _) ->
         let c = Int.compare (Itemset.size a) (Itemset.size b) in
         if c <> 0 then c else Itemset.compare a b)

let frequent_of_size t k =
  List.filter (fun (s, _) -> Itemset.size s = k) (frequent t)

let count t = Itemset.Table.length t.supports - 1
let rounds t = t.rounds
let truncated t = t.truncated

(* Level-1 counting: one pass, a dense counter per (attribute, value). *)
let level1 cards points threshold =
  let n_points = Array.length points in
  let counters = Array.map (fun c -> Array.make c 0) cards in
  Array.iter
    (fun p ->
      if Array.length p <> Array.length cards then
        invalid_arg "Apriori.mine: tuple arity mismatch";
      Array.iteri
        (fun a v ->
          if v < 0 || v >= cards.(a) then
            invalid_arg "Apriori.mine: value out of range";
          counters.(a).(v) <- counters.(a).(v) + 1)
        p)
    points;
  let min_count =
    int_of_float (Float.ceil (threshold *. float_of_int n_points))
  in
  let frequent = ref [] in
  Array.iteri
    (fun a row ->
      Array.iteri
        (fun v c ->
          if c >= min_count && c > 0 then
            frequent :=
              ( Itemset.of_list [ (a, v) ],
                float_of_int c /. float_of_int n_points )
              :: !frequent)
        row)
    counters;
  List.rev !frequent

(* Candidate generation: join two frequent (k−1)-itemsets sharing their
   first k−2 items; the two trailing items must be on distinct attributes.
   Then prune candidates with an infrequent (k−1)-subset. *)
let candidates prev_level prev_table =
  let arr = Array.of_list prev_level in
  let n = Array.length arr in
  let out = ref [] in
  let prefix s =
    let items = Itemset.to_list s in
    match List.rev items with
    | [] -> ([], (0, 0))
    | last :: rev_front -> (List.rev rev_front, last)
  in
  for i = 0 to n - 1 do
    let pi, (ai, vi) = prefix (fst arr.(i)) in
    for j = i + 1 to n - 1 do
      let pj, (aj, vj) = prefix (fst arr.(j)) in
      if pi = pj && ai <> aj then begin
        let cand = Itemset.of_list ((ai, vi) :: (aj, vj) :: pi) in
        (* Downward-closure prune. *)
        let all_subsets_frequent =
          List.for_all
            (fun a ->
              Itemset.Table.mem prev_table (Itemset.remove_attr cand a))
            (Itemset.attrs cand)
        in
        if all_subsets_frequent then out := cand :: !out
      end
    done
  done;
  !out

(* Count candidate supports with one data pass. For each point we probe the
   candidate table with the point's k-subsets when that is cheaper than
   testing every candidate against the point. *)
let count_candidates cands points k =
  let table = Itemset.Table.create (List.length cands * 2) in
  List.iter (fun c -> Itemset.Table.replace table c 0) cands;
  let n_cands = List.length cands in
  let arity = if Array.length points = 0 then 0 else Array.length points.(0) in
  let choose n r =
    let rec go n r acc =
      if r = 0 then acc
      else if n <= 0 then max_int
      else if acc > 1_000_000 then max_int
      else go (n - 1) (r - 1) (acc * n / (max 1 r))
    in
    go n r 1
  in
  let subsets_per_point = choose arity k in
  if subsets_per_point <= 4 * max 1 n_cands then begin
    (* Enumerate each point's k-subsets of attributes and probe. *)
    let idx = Array.make k 0 in
    let probe point =
      let rec enum pos start =
        if pos = k then begin
          let items =
            Array.to_list (Array.map (fun a -> (a, point.(a))) idx)
          in
          let s = Itemset.of_list items in
          match Itemset.Table.find_opt table s with
          | Some c -> Itemset.Table.replace table s (c + 1)
          | None -> ()
        end
        else
          for a = start to arity - (k - pos) do
            idx.(pos) <- a;
            enum (pos + 1) (a + 1)
          done
      in
      enum 0 0
    in
    Array.iter probe points
  end
  else
    (* Scan candidates per point. *)
    Array.iter
      (fun point ->
        List.iter
          (fun c ->
            if Itemset.matches_point c point then
              Itemset.Table.replace table c
                (Itemset.Table.find table c + 1))
          cands)
      points;
  table

let mine ?(config = default_config) ~cards points =
  if config.threshold < 0. || config.threshold > 1. then
    invalid_arg "Apriori.mine: threshold must be in [0, 1]";
  if config.max_itemsets < 1 then
    invalid_arg "Apriori.mine: max_itemsets must be positive";
  let supports = Itemset.Table.create 1024 in
  Itemset.Table.replace supports Itemset.empty 1.0;
  let n_points = Array.length points in
  if n_points = 0 then { supports; rounds = 0; truncated = false }
  else begin
    let min_count =
      max 1 (int_of_float (Float.ceil (config.threshold *. float_of_int n_points)))
    in
    let l1 = level1 cards points config.threshold in
    List.iter (fun (s, supp) -> Itemset.Table.replace supports s supp) l1;
    let rec loop level prev rounds =
      match prev with
      | [] -> (rounds, false)
      | _ ->
          if List.length prev > config.max_itemsets then (rounds, true)
          else begin
            let prev_table = Itemset.Table.create (List.length prev * 2) in
            List.iter (fun (s, _) -> Itemset.Table.replace prev_table s ()) prev;
            let cands = candidates prev prev_table in
            if cands = [] then (rounds, false)
            else begin
              let counts = count_candidates cands points level in
              let freq =
                Itemset.Table.fold
                  (fun s c acc ->
                    if c >= min_count then
                      (s, float_of_int c /. float_of_int n_points) :: acc
                    else acc)
                  counts []
              in
              if freq = [] then (rounds, false)
              else begin
                List.iter
                  (fun (s, supp) -> Itemset.Table.replace supports s supp)
                  freq;
                loop (level + 1) freq (rounds + 1)
              end
            end
          end
    in
    let rounds, truncated = loop 2 l1 (if l1 = [] then 0 else 1) in
    { supports; rounds; truncated }
  end
