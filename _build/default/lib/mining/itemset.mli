(** Itemsets of attribute–value pairs.

    In this paper's setting (footnote 1, Section II) an itemset is the
    complete portion of a tuple: a set of assignments [attr = value] with at
    most one assignment per attribute. Itemsets are kept as arrays sorted by
    attribute index, giving canonical keys for hashing and O(|s|) subset
    tests. *)

type t = private (int * int) array
(** Sorted by attribute index; attribute indices are unique. *)

val empty : t

val of_list : (int * int) list -> t
(** Raises [Invalid_argument] on duplicate attributes or negative
    components. *)

val of_tuple : Relation.Tuple.t -> t
(** The complete portion of an incomplete tuple, as an itemset. *)

val to_list : t -> (int * int) list
val size : t -> int
val is_empty : t -> bool

val attrs : t -> int list
(** Attribute indices, ascending. *)

val mem_attr : t -> int -> bool
val value_of : t -> int -> int option

val add : t -> int -> int -> t
(** [add s attr v] — raises [Invalid_argument] if [attr] is already
    assigned. *)

val remove_attr : t -> int -> t
(** Identity when the attribute is absent. *)

val union_disjoint : t -> t -> t option
(** Union of two itemsets; [None] when they assign different values to a
    common attribute, or assign the same attribute twice with equal values
    (a set union is still fine in that case — only *conflicts* yield
    [None]). *)

val subset : t -> t -> bool
(** [subset a b]: every assignment of [a] appears in [b]. *)

val proper_subset : t -> t -> bool

val matches_point : t -> int array -> bool
(** All assignments hold in the complete tuple. *)

val matches_tuple : t -> Relation.Tuple.t -> bool
(** All assignments appear among the tuple's *known* values — the
    meta-rule-applicability test of Section IV. *)

val to_tuple : arity:int -> t -> Relation.Tuple.t
(** Embed as an incomplete tuple of the given arity. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
module Map : Map.S with type key = t
module Set : Set.S with type elt = t
