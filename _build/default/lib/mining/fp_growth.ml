(* FP-tree node. Children are keyed by item id (the index into the
   frequency-ordered item table). *)
type node = {
  item : int;  (* -1 for the root *)
  mutable count : int;
  parent : node option;
  children : (int, node) Hashtbl.t;
}

let new_node ?parent item = { item; count = 0; parent; children = Hashtbl.create 4 }

let mine ?(config = Apriori.default_config) ~cards points =
  if config.threshold < 0. || config.threshold > 1. then
    invalid_arg "Fp_growth.mine: threshold must be in [0, 1]";
  if config.max_itemsets < 1 then
    invalid_arg "Fp_growth.mine: max_itemsets must be positive";
  let n_points = Array.length points in
  if n_points = 0 then Apriori.of_supports ~rounds:0 ~truncated:false []
  else begin
    let arity = Array.length cards in
    let min_count =
      max 1 (int_of_float (Float.ceil (config.threshold *. float_of_int n_points)))
    in
    (* Pass 1: frequent single items, ordered by descending count. *)
    let counters = Array.map (fun c -> Array.make c 0) cards in
    Array.iter
      (fun p ->
        if Array.length p <> arity then
          invalid_arg "Fp_growth.mine: tuple arity mismatch";
        Array.iteri
          (fun a v ->
            if v < 0 || v >= cards.(a) then
              invalid_arg "Fp_growth.mine: value out of range";
            counters.(a).(v) <- counters.(a).(v) + 1)
          p)
      points;
    let frequent_items = ref [] in
    Array.iteri
      (fun a row ->
        Array.iteri
          (fun v c -> if c >= min_count then frequent_items := ((a, v), c) :: !frequent_items)
          row)
      counters;
    let items =
      Array.of_list
        (List.sort
           (fun ((a1, v1), c1) ((a2, v2), c2) ->
             let c = Int.compare c2 c1 in
             if c <> 0 then c else Stdlib.compare (a1, v1) (a2, v2))
           !frequent_items)
    in
    let item_id = Hashtbl.create (Array.length items * 2) in
    Array.iteri (fun i ((av : int * int), _) -> Hashtbl.replace item_id av i) items;
    (* Pass 2: insert each point's frequent items (in item-id order) into
       the tree; maintain per-item node lists for the header table. *)
    let root = new_node (-1) in
    let header = Array.make (Array.length items) [] in
    Array.iter
      (fun p ->
        let ids =
          Array.to_list (Array.mapi (fun a v -> Hashtbl.find_opt item_id (a, v)) p)
          |> List.filter_map Fun.id
          |> List.sort Int.compare
        in
        let rec insert node = function
          | [] -> ()
          | id :: rest ->
              let child =
                match Hashtbl.find_opt node.children id with
                | Some c -> c
                | None ->
                    let c = new_node ~parent:node id in
                    Hashtbl.replace node.children id c;
                    header.(id) <- c :: header.(id);
                    c
              in
              child.count <- child.count + 1;
              insert child rest
        in
        insert root ids)
      points;
    (* Recursive projection. [suffix] is the itemset grown so far;
       [header]/[items] describe the current (conditional) tree. *)
    let found = ref [] in
    let rec grow header item_table suffix =
      Array.iteri
        (fun id nodes ->
          let support_count =
            List.fold_left (fun acc n -> acc + n.count) 0 nodes
          in
          if support_count >= min_count then begin
            let (a, v), _ = item_table.(id) in
            let pattern = Itemset.add suffix a v in
            found :=
              (pattern, float_of_int support_count /. float_of_int n_points)
              :: !found;
            (* Items frequent within the conditional pattern base (the
               prefix paths above this item's nodes, weighted by the
               nodes' counts). *)
            let cond_item_counts = Hashtbl.create 16 in
            List.iter
              (fun n ->
                let rec walk = function
                  | Some p when p.item >= 0 ->
                      let prev =
                        Option.value ~default:0
                          (Hashtbl.find_opt cond_item_counts p.item)
                      in
                      Hashtbl.replace cond_item_counts p.item (prev + n.count);
                      walk p.parent
                  | _ -> ()
                in
                walk n.parent)
              nodes;
            let cond_items =
              Hashtbl.fold
                (fun old_id c acc ->
                  if c >= min_count then (fst item_table.(old_id), c) :: acc
                  else acc)
                cond_item_counts []
              |> List.sort (fun ((a1, v1), c1) ((a2, v2), c2) ->
                     let c = Int.compare c2 c1 in
                     if c <> 0 then c else Stdlib.compare (a1, v1) (a2, v2))
              |> Array.of_list
            in
            if Array.length cond_items > 0 then begin
              let cond_id = Hashtbl.create 16 in
              Array.iteri
                (fun i ((av : int * int), _) -> Hashtbl.replace cond_id av i)
                cond_items;
              let cond_root = new_node (-1) in
              let cond_header = Array.make (Array.length cond_items) [] in
              (* Re-insert each prefix path, filtered to the conditional
                 frequent items, weighted by the leaf count. *)
              List.iter
                (fun n ->
                  let rec path acc = function
                    | Some p when p.item >= 0 ->
                        path (fst item_table.(p.item) :: acc) p.parent
                    | _ -> acc
                  in
                  let prefix = path [] n.parent in
                  let ids =
                    List.filter_map (Hashtbl.find_opt cond_id) prefix
                    |> List.sort Int.compare
                  in
                  let rec insert node = function
                    | [] -> ()
                    | id :: rest ->
                        let child =
                          match Hashtbl.find_opt node.children id with
                          | Some c -> c
                          | None ->
                              let c = new_node ~parent:node id in
                              Hashtbl.replace node.children id c;
                              cond_header.(id) <- c :: cond_header.(id);
                              c
                        in
                        child.count <- child.count + n.count;
                        insert child rest
                  in
                  insert cond_root ids)
                nodes;
              grow cond_header cond_items pattern
            end
          end)
        header
    in
    grow header items Itemset.empty;
    (* Apply Apriori's per-size cap semantics: find the smallest size class
       that exceeds the cap, keep everything up to it, drop deeper sizes. *)
    let by_size = Hashtbl.create 8 in
    List.iter
      (fun (s, _) ->
        let k = Itemset.size s in
        Hashtbl.replace by_size k
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_size k)))
      !found;
    let max_size = Hashtbl.fold (fun k _ acc -> max k acc) by_size 0 in
    let cap_size = ref max_size in
    let truncated = ref false in
    for k = 1 to max_size do
      if
        (not !truncated)
        && Option.value ~default:0 (Hashtbl.find_opt by_size k)
           > config.max_itemsets
      then begin
        truncated := true;
        cap_size := k
      end
    done;
    let kept =
      List.filter (fun (s, _) -> Itemset.size s <= !cap_size) !found
    in
    Apriori.of_supports ~rounds:!cap_size ~truncated:!truncated kept
  end
