(** Apriori frequent-itemset mining (Agrawal & Srikant 1994), as used by the
    MRSL learning algorithm (Section III).

    Bottom-up, level-wise: frequent 1-itemsets first, then candidate
    k-itemsets joined from frequent (k−1)-itemsets and pruned by downward
    closure, then counted against the data. Two termination conditions, per
    the paper: a round finds no frequent itemsets, or a round finds more
    than [max_itemsets] (the paper sets 1000), which bounds the quadratic
    candidate join. *)

type config = { threshold : float; max_itemsets : int }
(** [threshold] — minimum support (fraction of points), in [0, 1].
    [max_itemsets] — the early-termination cap on per-round results. *)

val default_config : config
(** θ = 0.02 (the paper's median), max_itemsets = 1000. *)

type t
(** Mining result: the frequent itemsets with their supports. The empty
    itemset is always present with support 1. *)

val mine : ?config:config -> cards:int array -> int array array -> t
(** [mine ~cards points] over complete tuples whose attribute [i] ranges in
    [0 .. cards.(i) - 1]. Raises [Invalid_argument] on a bad configuration
    or on tuples inconsistent with [cards]. An empty [points] array yields
    just the empty itemset. *)

val support : t -> Itemset.t -> float option
(** Support of a *frequent* itemset; [None] if it was not retained. *)

val frequent : t -> (Itemset.t * float) list
(** All frequent itemsets with supports, smallest first; includes the empty
    itemset. *)

val frequent_of_size : t -> int -> (Itemset.t * float) list

val count : t -> int
(** Number of frequent itemsets (excluding the empty itemset). *)

val rounds : t -> int
(** Number of completed Apriori rounds (largest itemset size found). *)

val truncated : t -> bool
(** Whether the [max_itemsets] cap fired. *)

val of_supports : rounds:int -> truncated:bool -> (Itemset.t * float) list ->
  t
(** Assemble a result from explicit (itemset, support) pairs — the
    constructor used by alternative miners ({!Fp_growth}) so they share
    this result type. The empty itemset is added automatically. *)
