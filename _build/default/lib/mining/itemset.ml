type t = (int * int) array

let empty = [||]

let of_list items =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) items
  in
  let rec check = function
    | [] -> ()
    | (a, v) :: rest ->
        if a < 0 || v < 0 then
          invalid_arg "Itemset.of_list: negative attribute or value";
        (match rest with
        | (b, _) :: _ when a = b ->
            invalid_arg "Itemset.of_list: duplicate attribute"
        | _ -> ());
        check rest
  in
  check sorted;
  Array.of_list sorted

let of_tuple tup = Array.of_list (Relation.Tuple.known tup)
let to_list = Array.to_list
let size = Array.length
let is_empty s = Array.length s = 0
let attrs s = Array.to_list (Array.map fst s)

let find_attr s attr =
  (* Binary search on the sorted attribute column. *)
  let lo = ref 0 and hi = ref (Array.length s - 1) in
  let found = ref None in
  while !lo <= !hi && !found = None do
    let mid = (!lo + !hi) / 2 in
    let a, v = s.(mid) in
    if a = attr then found := Some v
    else if a < attr then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem_attr s attr = find_attr s attr <> None
let value_of = find_attr

let add s attr v =
  if mem_attr s attr then invalid_arg "Itemset.add: attribute already present";
  of_list ((attr, v) :: to_list s)

let remove_attr s attr = Array.of_seq (Seq.filter (fun (a, _) -> a <> attr) (Array.to_seq s))

let union_disjoint a b =
  (* Merge two sorted runs, failing on conflicting assignments. *)
  let na = Array.length a and nb = Array.length b in
  let out = ref [] in
  let conflict = ref false in
  let i = ref 0 and j = ref 0 in
  while (!i < na || !j < nb) && not !conflict do
    if !i = na then begin
      out := b.(!j) :: !out;
      incr j
    end
    else if !j = nb then begin
      out := a.(!i) :: !out;
      incr i
    end
    else
      let ai, av = a.(!i) and bj, bv = b.(!j) in
      if ai < bj then begin
        out := a.(!i) :: !out;
        incr i
      end
      else if bj < ai then begin
        out := b.(!j) :: !out;
        incr j
      end
      else if av = bv then begin
        out := a.(!i) :: !out;
        incr i;
        incr j
      end
      else conflict := true
  done;
  if !conflict then None else Some (Array.of_list (List.rev !out))

let subset a b =
  let nb = Array.length b in
  let rec walk i j =
    if i = Array.length a then true
    else if j = nb then false
    else
      let ai, av = a.(i) and bj, bv = b.(j) in
      if ai = bj then av = bv && walk (i + 1) (j + 1)
      else if ai > bj then walk i (j + 1)
      else false
  in
  walk 0 0

let proper_subset a b = Array.length a < Array.length b && subset a b

let matches_point s point =
  Array.for_all (fun (a, v) -> point.(a) = v) s

let matches_tuple s tup =
  Array.for_all (fun (a, v) -> tup.(a) = Some v) s

let to_tuple ~arity s =
  let tup = Array.make arity None in
  Array.iter
    (fun (a, v) ->
      if a >= arity then invalid_arg "Itemset.to_tuple: arity too small";
      tup.(a) <- Some v)
    s;
  tup

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let hash (s : t) =
  Array.fold_left
    (fun h (a, v) -> ((h * 1000003) lxor a) * 1000003 lxor v)
    0x811C9DC5 s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, v) -> Format.fprintf ppf "a%d=%d" a v))
    (Array.to_seq s)

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Table = Hashtbl.Make (Key)
module Map = Map.Make (Key)
module Set = Set.Make (Key)
