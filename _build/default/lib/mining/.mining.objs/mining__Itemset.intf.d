lib/mining/itemset.mli: Format Hashtbl Map Relation Set
