lib/mining/apriori.ml: Array Float Int Itemset List
