lib/mining/assoc_rule.mli: Apriori Format Itemset
