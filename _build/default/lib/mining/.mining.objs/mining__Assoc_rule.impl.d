lib/mining/assoc_rule.ml: Apriori Format Fun Itemset List
