lib/mining/itemset.ml: Array Format Hashtbl Int List Map Relation Seq Set Stdlib
