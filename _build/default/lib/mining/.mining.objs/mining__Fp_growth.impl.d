lib/mining/fp_growth.ml: Apriori Array Float Fun Hashtbl Int Itemset List Option Stdlib
