(** Association rules over frequent itemsets (paper Def 2.5).

    A rule pairs a body itemset with a single attribute–value assignment in
    the head; its confidence supp(body ∪ head)/supp(body) estimates the
    conditional probability of the head given the body. Per Section III, no
    confidence threshold is applied — every frequent itemset containing the
    head attribute yields a rule. *)

type t = {
  body : Itemset.t;
  head_attr : int;
  head_value : int;
  confidence : float;  (** supp(body ∪ head) / supp(body) *)
  body_support : float;  (** supp(body) — the meta-rule weight source *)
  rule_support : float;  (** supp(body ∪ head) *)
}

val mine_for_attr : Apriori.t -> int -> t list
(** All rules with the given head attribute, derived from every frequent
    itemset that assigns it. Bodies may be empty (rules feeding the
    top-level meta-rule P(a)). *)

val mine : Apriori.t -> arity:int -> t list
(** Rules for every head attribute [0 .. arity-1]. *)

val pp : Format.formatter -> t -> unit
