(** FP-Growth frequent-itemset mining (Han, Pei & Yin 2000).

    Section III: "the essence of our method is not dependent on which
    frequent itemset mining algorithm is used." This second miner makes
    that claim executable: it produces exactly the same frequent itemsets
    and supports as {!Apriori} (a property checked in the test suite), via
    a compressed FP-tree and recursive conditional-tree projection instead
    of level-wise candidate generation — typically faster at low support
    thresholds, where Apriori's candidate sets explode.

    The [max_itemsets] cap is honored in spirit: mining stops growing
    *longer* patterns once a size class exceeds the cap, mirroring
    Apriori's per-round termination (results up to and including the
    offending size are kept, and the result is marked truncated). *)

val mine : ?config:Apriori.config -> cards:int array -> int array array ->
  Apriori.t
(** Same contract as {!Apriori.mine} — including the result type, so the
    two miners are interchangeable downstream. *)
