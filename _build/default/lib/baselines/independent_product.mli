(** The naive multi-attribute baseline of Section V: estimate each missing
    attribute's CPD independently with Algorithm 2 and take the product —
    "that would rely on independence assumptions that are not warranted".
    Gibbs sampling over the same MRSL model is the paper's remedy; this
    module exists so the gap can be measured. *)

val infer_joint : ?method_:Mrsl.Voting.method_ -> Mrsl.Model.t ->
  Relation.Tuple.t -> Prob.Dist.t
(** Joint distribution over the tuple's missing attributes (mixed-radix
    code order) as the product of independent single-attribute estimates.
    Deterministic — no sampling involved. Raises [Invalid_argument] on a
    complete tuple. *)
