(** A plain dependency-network baseline (Heckerman et al. 2000, without the
    MRSL ensemble): each attribute's conditional distribution given *all*
    other attributes is estimated directly by exact-match counting over the
    training data, backing off to the attribute's marginal when too few
    matching points exist.

    This is the natural strawman between MRSL and full BN learning: local
    CPDs like a dependency network, but a single brittle estimator per
    conditioning context instead of MRSL's lattice of partial-context
    voters. On sparse contexts it collapses to the marginal, which is
    exactly the failure mode the meta-rule ensemble repairs. *)

type t

val fit : ?min_count:int -> ?alpha:float -> cards:int array ->
  int array array -> t
(** [fit ~cards points]. [min_count] (default 5) is the exact-match support
    below which the estimator backs off to the marginal; [alpha]
    (default 1) is the Laplace pseudo-count. Raises [Invalid_argument] on
    empty data. *)

val conditional : t -> int array -> int -> Prob.Dist.t
(** [conditional t point a] — P(a | all other attributes as in [point]),
    memoized per conditioning context. *)

val backoff_fraction : t -> float
(** Fraction of conditional queries so far that hit the marginal backoff —
    a sparseness diagnostic. *)

val infer_joint : ?burn_in:int -> ?samples:int -> Prob.Rng.t -> t ->
  Relation.Tuple.t -> Prob.Dist.t
(** Ordered Gibbs sampling over the backoff conditionals: joint
    distribution of the tuple's missing attributes, in mixed-radix code
    order (same convention as [Mrsl.Gibbs]). Raises [Invalid_argument] on
    a complete tuple. *)
