type t = {
  cards : int array;
  points : int array array;
  min_count : int;
  alpha : float;
  marginals : Prob.Dist.t array;
  memo : (int, Prob.Dist.t) Hashtbl.t;
  domain_size : int;  (* -1 when too large to memo-key *)
  mutable queries : int;
  mutable backoffs : int;
}

let fit ?(min_count = 5) ?(alpha = 1.0) ~cards points =
  if Array.length points = 0 then invalid_arg "Dn_backoff.fit: empty data";
  if min_count < 1 then invalid_arg "Dn_backoff.fit: min_count must be >= 1";
  if alpha <= 0. then invalid_arg "Dn_backoff.fit: alpha must be positive";
  let n = Array.length points in
  let marginals =
    Array.mapi
      (fun a card ->
        let counts = Array.make card 0 in
        Array.iter (fun p -> counts.(p.(a)) <- counts.(p.(a)) + 1) points;
        ignore n;
        Prob.Dist.of_weights
          (Array.map (fun c -> float_of_int c +. alpha) counts))
      cards
  in
  let domain_size =
    match Relation.Domain.count cards with
    | d when d < 1 lsl 40 -> d
    | _ -> -1
    | exception Invalid_argument _ -> -1
  in
  {
    cards;
    points;
    min_count;
    alpha;
    marginals;
    memo = Hashtbl.create 1024;
    domain_size;
    queries = 0;
    backoffs = 0;
  }

let compute_conditional t point a =
  (* Exact-match context: all attributes except [a]. *)
  let card = t.cards.(a) in
  let counts = Array.make card 0 in
  let matched = ref 0 in
  let arity = Array.length t.cards in
  Array.iter
    (fun p ->
      let rec agrees i =
        i = arity || ((i = a || p.(i) = point.(i)) && agrees (i + 1))
      in
      if agrees 0 then begin
        counts.(p.(a)) <- counts.(p.(a)) + 1;
        incr matched
      end)
    t.points;
  if !matched >= t.min_count then
    Some
      (Prob.Dist.of_weights
         (Array.map (fun c -> float_of_int c +. t.alpha) counts))
  else None

let conditional t point a =
  t.queries <- t.queries + 1;
  let cached_key =
    if t.domain_size > 0 then begin
      let saved = point.(a) in
      point.(a) <- 0;
      let code = Relation.Domain.encode t.cards point in
      point.(a) <- saved;
      Some ((a * t.domain_size) + code)
    end
    else None
  in
  let compute () =
    match compute_conditional t point a with
    | Some d -> d
    | None ->
        t.backoffs <- t.backoffs + 1;
        t.marginals.(a)
  in
  match cached_key with
  | None -> compute ()
  | Some key -> (
      match Hashtbl.find_opt t.memo key with
      | Some d -> d
      | None ->
          let d = compute () in
          Hashtbl.add t.memo key d;
          d)

let backoff_fraction t =
  if t.queries = 0 then 0.
  else float_of_int t.backoffs /. float_of_int t.queries

let infer_joint ?(burn_in = 100) ?(samples = 1000) rng t tup =
  if Array.length tup <> Array.length t.cards then
    invalid_arg "Dn_backoff.infer_joint: arity mismatch";
  let missing = Array.of_list (Relation.Tuple.missing tup) in
  if Array.length missing = 0 then
    invalid_arg "Dn_backoff.infer_joint: tuple is complete";
  let state = Array.map (function Some v -> v | None -> 0) tup in
  Array.iter
    (fun a -> state.(a) <- Prob.Dist.sample rng t.marginals.(a))
    missing;
  let sweep () =
    Array.iter
      (fun a -> state.(a) <- Prob.Dist.sample rng (conditional t state a))
      missing
  in
  for _ = 1 to burn_in do
    sweep ()
  done;
  let cards = Array.map (fun a -> t.cards.(a)) missing in
  let counts = Array.make (Relation.Domain.count cards) 0. in
  let values = Array.make (Array.length missing) 0 in
  for _ = 1 to samples do
    sweep ();
    Array.iteri (fun k a -> values.(k) <- state.(a)) missing;
    let code = Relation.Domain.encode cards values in
    counts.(code) <- counts.(code) +. 1.
  done;
  Prob.Dist.smooth (Array.map (fun c -> c /. float_of_int samples) counts)
