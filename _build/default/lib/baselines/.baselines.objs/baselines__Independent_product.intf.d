lib/baselines/independent_product.mli: Mrsl Prob Relation
