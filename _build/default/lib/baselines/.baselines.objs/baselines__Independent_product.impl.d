lib/baselines/independent_product.ml: Array Mrsl Prob Relation
