lib/baselines/dn_backoff.mli: Prob Relation
