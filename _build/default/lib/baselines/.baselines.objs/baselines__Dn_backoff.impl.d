lib/baselines/dn_backoff.ml: Array Hashtbl Prob Relation
