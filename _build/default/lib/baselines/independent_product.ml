let infer_joint ?method_ model tup =
  let missing = Array.of_list (Relation.Tuple.missing tup) in
  if Array.length missing = 0 then
    invalid_arg "Independent_product.infer_joint: tuple is complete";
  let schema = Mrsl.Model.schema model in
  let cards = Array.map (Relation.Schema.cardinality schema) missing in
  let per_attr =
    Array.map (fun a -> Mrsl.Infer_single.infer ?method_ model tup a) missing
  in
  let total = Relation.Domain.count cards in
  let weights = Array.make total 0. in
  Relation.Domain.iter cards (fun code values ->
      let p = ref 1. in
      Array.iteri
        (fun k v -> p := !p *. Prob.Dist.prob per_attr.(k) v)
        values;
      weights.(code) <- !p);
  Prob.Dist.of_weights weights
