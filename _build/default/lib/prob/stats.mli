(** Summary statistics for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : float list -> float

val mean_ci95 : float list -> float * float
(** [(mean, halfwidth)] of a normal-approximation 95% confidence interval. *)

val median : float list -> float
(** Median; 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0, 100], by linear interpolation between
    order statistics. Raises on the empty list or out-of-range [p]. *)

val linear_fit : (float * float) list -> float * float
(** Least-squares [(slope, intercept)] — used to overlay the regression
    lines of the paper's Fig 9. Requires at least two points with distinct
    abscissae. *)
