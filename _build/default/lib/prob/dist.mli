(** Discrete probability distributions over [0 .. n-1].

    A distribution is represented as a plain [float array]; all constructors
    in this module guarantee the *positive CPD* invariant the paper's Gibbs
    sampler requires (Section III): every entry is at least the smoothing
    floor and the entries sum to 1 (within floating-point tolerance). *)

type t = private float array
(** A normalized distribution. The [private] view allows read access
    ([(d :> float array)] or {!prob}) while forcing construction through
    the smart constructors below. *)

val smoothing_floor : float
(** The paper's minimum probability per value, 0.00001 (Section III). *)

val of_weights : float array -> t
(** [of_weights w] normalizes non-negative weights to a distribution.
    Raises [Invalid_argument] if the array is empty, any weight is negative
    or non-finite, or all weights are zero. No smoothing is applied beyond
    normalization; use {!smooth} for the paper's flooring. *)

val smooth : ?floor:float -> float array -> t
(** [smooth w] implements the paper's CPD repair: treat [w] as partial
    probability mass (entries in [0, 1], summing to at most ~1), distribute
    any missing mass equally among all values, raise every entry to at least
    [floor] (default {!smoothing_floor}), and re-normalize. *)

val uniform : int -> t
(** [uniform n] is the uniform distribution on [n] values. [n >= 1]. *)

val point : int -> int -> t
(** [point n i] puts (almost) all mass on value [i], smoothed to stay
    positive. *)

val size : t -> int
val prob : t -> int -> float

val to_array : t -> float array
(** A fresh copy of the underlying probabilities. *)

val sample : Rng.t -> t -> int
(** Draw a value by inverse-CDF walk. *)

val mode : t -> int
(** Index of the largest probability (ties broken toward the smaller
    index) — the "top-1" prediction of the paper's accuracy measure. *)

val average : t list -> t
(** Position-wise unweighted average of distributions of equal size — the
    paper's [averaged] voting scheme. Requires a non-empty list. *)

val weighted_average : (float * t) list -> t
(** Support-weighted average — the paper's [weighted] voting scheme. If all
    weights are zero, falls back to the unweighted average. *)

val entropy : t -> float
(** Shannon entropy in nats. *)

val pp : Format.formatter -> t -> unit
