type t = float array

let smoothing_floor = 0.00001

let check_weights name w =
  if Array.length w = 0 then invalid_arg (name ^ ": empty weight array");
  Array.iter
    (fun x ->
      if not (Float.is_finite x) || x < 0. then
        invalid_arg (name ^ ": weights must be finite and non-negative"))
    w

let total w = Array.fold_left ( +. ) 0. w

let of_weights w =
  check_weights "Dist.of_weights" w;
  let s = total w in
  if s <= 0. then invalid_arg "Dist.of_weights: all weights are zero";
  Array.map (fun x -> x /. s) w

let smooth ?(floor = smoothing_floor) w =
  check_weights "Dist.smooth" w;
  let n = Array.length w in
  let s = total w in
  (* Mass unaccounted for by the mined association rules is spread equally
     (Section III). If the rules overshoot 1 slightly we just normalize. *)
  let leftover = Float.max 0. (1. -. s) in
  let padded = Array.map (fun x -> x +. (leftover /. float_of_int n)) w in
  let floored = Array.map (fun x -> Float.max floor x) padded in
  of_weights floored

let uniform n =
  if n < 1 then invalid_arg "Dist.uniform: need at least one value";
  Array.make n (1. /. float_of_int n)

let point n i =
  if n < 1 || i < 0 || i >= n then invalid_arg "Dist.point";
  let w = Array.make n 0. in
  w.(i) <- 1.;
  smooth w

let size = Array.length
let prob d i = d.(i)
let to_array d = Array.copy d

let sample rng d =
  let u = Rng.float rng in
  let n = Array.length d in
  let rec walk i acc =
    if i = n - 1 then i
    else
      let acc = acc +. d.(i) in
      if u < acc then i else walk (i + 1) acc
  in
  walk 0 0.

let mode d =
  let best = ref 0 in
  for i = 1 to Array.length d - 1 do
    if d.(i) > d.(!best) then best := i
  done;
  !best

let average = function
  | [] -> invalid_arg "Dist.average: empty voter list"
  | d0 :: _ as ds ->
      let n = Array.length d0 in
      let acc = Array.make n 0. in
      List.iter
        (fun d ->
          if Array.length d <> n then
            invalid_arg "Dist.average: size mismatch";
          Array.iteri (fun i p -> acc.(i) <- acc.(i) +. p) d)
        ds;
      of_weights acc

let weighted_average = function
  | [] -> invalid_arg "Dist.weighted_average: empty voter list"
  | (_, d0) :: _ as ds ->
      let n = Array.length d0 in
      let wsum = List.fold_left (fun s (w, _) -> s +. w) 0. ds in
      if wsum <= 0. then average (List.map snd ds)
      else begin
        let acc = Array.make n 0. in
        List.iter
          (fun (w, d) ->
            if Array.length d <> n then
              invalid_arg "Dist.weighted_average: size mismatch";
            Array.iteri (fun i p -> acc.(i) <- acc.(i) +. (w *. p)) d)
          ds;
        of_weights acc
      end

let entropy d =
  Array.fold_left (fun acc p -> if p > 0. then acc -. (p *. log p) else acc) 0. d

let pp ppf d =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf p -> Format.fprintf ppf "%.4f" p))
    d
