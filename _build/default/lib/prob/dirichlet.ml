let sample_asymmetric rng alphas =
  if Array.length alphas = 0 then invalid_arg "Dirichlet.sample_asymmetric";
  Array.iter
    (fun a ->
      if a <= 0. then
        invalid_arg "Dirichlet.sample_asymmetric: concentrations must be > 0")
    alphas;
  (* Standard construction: normalize independent Gamma(alpha_i) draws.
     A tiny floor guards against underflow for very small alpha. *)
  let g = Array.map (fun a -> Float.max 1e-300 (Rng.gamma rng a)) alphas in
  Dist.of_weights g

let sample rng ~alpha n =
  if n < 1 then invalid_arg "Dirichlet.sample: need at least one value";
  sample_asymmetric rng (Array.make n alpha)
