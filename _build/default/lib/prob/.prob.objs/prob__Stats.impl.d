lib/prob/stats.ml: Array Float List
