lib/prob/stats.mli:
