lib/prob/rng.mli:
