lib/prob/dirichlet.ml: Array Dist Float Rng
