lib/prob/divergence.ml: Array Dist Float
