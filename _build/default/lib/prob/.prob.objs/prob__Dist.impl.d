lib/prob/dist.ml: Array Float Format List Rng
