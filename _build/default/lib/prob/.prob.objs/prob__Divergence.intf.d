lib/prob/divergence.mli: Dist
