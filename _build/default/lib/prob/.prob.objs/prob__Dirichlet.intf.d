lib/prob/dirichlet.mli: Dist Rng
