let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
      /. (n -. 1.)

let stddev xs = sqrt (variance xs)

let mean_ci95 xs =
  let n = float_of_int (List.length xs) in
  if n < 1. then (0., 0.)
  else (mean xs, 1.96 *. stddev xs /. sqrt n)

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = match xs with [] -> 0. | _ -> percentile 50. xs

let linear_fit pts =
  match pts with
  | [] | [ _ ] -> invalid_arg "Stats.linear_fit: need at least two points"
  | _ ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-12 then
        invalid_arg "Stats.linear_fit: degenerate abscissae";
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. n in
      (slope, intercept)
