(** Deterministic pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed. The generator is a
    hand-rolled splitmix64 (Steele, Lea & Flood 2014): a tiny, statistically
    solid, splittable PRNG. We do not use [Stdlib.Random] because its global
    state makes experiment pipelines order-dependent. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each experiment repetition its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on \[0, bound). Requires [bound > 0]. *)

val float : t -> float
(** Uniform on \[0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct indices from
    \[0, n), in increasing order. Requires [0 <= k <= n]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate). Requires [rate > 0]. *)

val gamma : t -> float -> float
(** [gamma t shape] draws from Gamma(shape, 1) via Marsaglia–Tsang (with the
    standard boost for shape < 1). Requires [shape > 0]. *)
