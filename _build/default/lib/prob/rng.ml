(* splitmix64: state advances by the golden-gamma constant; the output
   function is a 64-bit finalizer (variant 13 of Stafford's mixers). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let copy t = { state = t.state }

(* Uniform int in [0, bound) by rejection on the top 62 bits, avoiding the
   modulo bias that a plain [mod] would introduce. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    (* Reject the final partial block so every residue is equally likely. *)
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Selection sampling (Knuth, TAOCP 3.4.2, Algorithm S): one pass over
     [0, n), keeping each index with the exact conditional probability. *)
  let rec loop i chosen acc =
    if chosen = k then List.rev acc
    else if n - i <= k - chosen then loop (i + 1) (chosen + 1) (i :: acc)
    else if int t (n - i) < k - chosen then loop (i + 1) (chosen + 1) (i :: acc)
    else loop (i + 1) chosen acc
  in
  loop 0 0 []

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.float t) /. rate

(* Marsaglia & Tsang (2000): squeeze-accept for shape >= 1; for shape < 1 use
   Gamma(shape) = Gamma(shape + 1) * U^(1/shape). *)
let rec gamma t shape =
  if shape <= 0. then invalid_arg "Rng.gamma: shape must be positive";
  if shape < 1. then
    let u = float t in
    gamma t (shape +. 1.) *. (u ** (1. /. shape))
  else
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let normal () =
      (* Box–Muller; we only need one coordinate per attempt. *)
      let u1 = float t and u2 = float t in
      let u1 = if u1 <= 0. then epsilon_float else u1 in
      sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
    in
    let rec attempt () =
      let x = normal () in
      let v = 1. +. (c *. x) in
      if v <= 0. then attempt ()
      else
        let v = v *. v *. v in
        let u = float t in
        let x2 = x *. x in
        if u < 1. -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1. -. v +. log v)) then d *. v
        else attempt ()
    in
    attempt ()
