(** Dirichlet sampling, used to generate random Bayesian-network parameters.

    The paper "randomly select[s] probability distributions for each random
    variable" (Section VI-A) without specifying the law; we use a symmetric
    Dirichlet whose concentration is an explicit, documented experiment
    parameter (see DESIGN.md, substitutions table). *)

val sample : Rng.t -> alpha:float -> int -> Dist.t
(** [sample rng ~alpha n] draws from Dirichlet(alpha, …, alpha) over [n]
    values. [alpha < 1] yields peaked distributions (meaningful top-1
    targets); [alpha = 1] is uniform on the simplex. Requires [alpha > 0]
    and [n >= 1]. *)

val sample_asymmetric : Rng.t -> float array -> Dist.t
(** Draw from Dirichlet with the given per-coordinate concentrations
    (all positive). *)
