lib/core/parallel.ml: Array Domain Gibbs List Mining Prob Tuple_dag Unix Workload
