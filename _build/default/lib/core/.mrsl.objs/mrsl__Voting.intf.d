lib/core/voting.mli: Meta_rule Prob
