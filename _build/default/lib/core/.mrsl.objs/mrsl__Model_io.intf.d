lib/core/model_io.mli: Model
