lib/core/diagnostics.ml: Array Float Gibbs List Model Prob Relation
