lib/core/model_io.ml: Array Buffer Char In_channel Lattice List Meta_rule Mining Model Out_channel Printf Prob Relation String
