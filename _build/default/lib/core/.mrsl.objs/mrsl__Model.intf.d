lib/core/model.mli: Format Lattice Relation
