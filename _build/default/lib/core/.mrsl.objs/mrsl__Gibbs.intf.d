lib/core/gibbs.mli: Model Prob Relation Voting
