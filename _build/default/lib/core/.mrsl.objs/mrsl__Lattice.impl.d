lib/core/lattice.ml: Array Format Int List Meta_rule Mining Prob Relation
