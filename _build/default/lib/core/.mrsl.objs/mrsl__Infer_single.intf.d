lib/core/infer_single.mli: Meta_rule Model Prob Relation Voting
