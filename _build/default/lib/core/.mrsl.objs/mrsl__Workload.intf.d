lib/core/workload.mli: Gibbs Prob Relation
