lib/core/diagnostics.mli: Gibbs Prob Relation
