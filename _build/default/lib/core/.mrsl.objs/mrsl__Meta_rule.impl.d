lib/core/meta_rule.ml: Array Format List Mining Prob Relation
