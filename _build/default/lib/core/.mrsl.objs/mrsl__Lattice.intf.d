lib/core/lattice.mli: Format Meta_rule Mining Relation
