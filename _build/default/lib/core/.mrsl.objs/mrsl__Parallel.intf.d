lib/core/parallel.mli: Gibbs Model Relation Voting Workload
