lib/core/workload.ml: Array Gibbs List Logs Queue Relation Tuple_dag Unix
