lib/core/gibbs.ml: Array Hashtbl Infer_single Int List Model Prob Relation Voting
