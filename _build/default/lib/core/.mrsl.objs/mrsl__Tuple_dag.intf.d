lib/core/tuple_dag.mli: Format Relation
