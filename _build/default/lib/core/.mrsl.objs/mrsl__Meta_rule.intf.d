lib/core/meta_rule.mli: Format Mining Prob Relation
