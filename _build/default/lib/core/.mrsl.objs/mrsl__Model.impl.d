lib/core/model.ml: Array Format Lattice List Logs Meta_rule Mining Option Prob Relation Unix
