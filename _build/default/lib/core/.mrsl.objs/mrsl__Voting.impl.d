lib/core/voting.ml: Lattice List Meta_rule Prob String
