lib/core/tuple_dag.ml: Array Format Fun Int List Mining Relation
