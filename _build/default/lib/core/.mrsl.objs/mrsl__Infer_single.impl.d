lib/core/infer_single.ml: Array Float Lattice List Meta_rule Model Prob Relation Voting
