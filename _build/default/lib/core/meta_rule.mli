(** Meta-rules (paper Def 2.6).

    A meta-rule groups the association rules that share a body and assign
    different values to one head attribute, and carries an estimated CPD
    over the head attribute's *entire* domain. CPDs are smoothed to be
    strictly positive (Section III): rule confidences fill the observed
    positions, any unaccounted probability mass is spread equally, and every
    value is floored at 0.00001 before re-normalizing — the positivity the
    Gibbs sampler requires. *)

type t = private {
  body : Mining.Itemset.t;
  head_attr : int;
  cpd : Prob.Dist.t;
  weight : float;  (** support of the body — the meta-rule's voting weight *)
}

val of_rules : ?floor:float -> head_card:int -> Mining.Assoc_rule.t list -> t
(** Build a meta-rule from association rules sharing a body and head
    attribute. Raises [Invalid_argument] on an empty list, mismatched
    bodies or head attributes, duplicate head values, or a head value
    outside [0 .. head_card-1]. [floor] overrides the paper's 0.00001
    smoothing floor (ablation hook). *)

val make : ?floor:float -> body:Mining.Itemset.t -> head_attr:int ->
  weight:float -> raw_cpd:float array -> unit -> t
(** Direct constructor (used for the always-present root meta-rule built
    from marginal value frequencies); [raw_cpd] goes through the same
    smoothing as rule confidences. *)

val of_distribution : body:Mining.Itemset.t -> head_attr:int ->
  weight:float -> Prob.Dist.t -> t
(** Constructor for an already-smoothed CPD (no re-smoothing) — used when
    deserializing, where re-applying the floor would perturb stored
    probabilities. Validation as in {!make}. *)

val matches : t -> Relation.Tuple.t -> bool
(** The body's assignments all appear among the tuple's known values. *)

val subsumes : t -> t -> bool
(** [subsumes m1 m2] ⇔ m2 ≺ m1 (Def 2.7): equal head attributes and
    body(m1) ⊊ body(m2). *)

val specificity : t -> int
(** Body size; the root meta-rule has specificity 0. *)

val pp : Format.formatter -> t -> unit
(** Render with positional attribute names (a0, a1, …). *)

val pp_named : Relation.Schema.t -> Format.formatter -> t -> unit
(** Render with the schema's attribute and value labels, e.g.
    [P(age | edu=HS) = ...]. *)
