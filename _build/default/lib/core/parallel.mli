(** Multicore workload inference (OCaml 5 domains).

    The paper's prototype is single-threaded; on a modern multicore host
    the workload of Section V-B parallelizes naturally because distinct
    incomplete tuples are independent inference tasks. The workload's
    distinct tuples are partitioned into per-domain chunks (round-robin
    after a subsumption-aware grouping so DAG sharing still fires within a
    chunk), each domain runs the chosen strategy over its chunk with its
    own sampler and deterministic RNG stream, and the results are merged.

    Sample sharing across chunks is forgone — the price of parallelism —
    so with [strategy = Tuple_dag] total sweeps can exceed a sequential
    tuple-DAG run while wall time drops. On a single-core host (e.g. a
    constrained container) domains only add scheduling overhead; check
    [Domain.recommended_domain_count] before fanning out. *)

val run : ?config:Gibbs.config -> ?strategy:Workload.strategy ->
  ?method_:Voting.method_ -> ?memoize:bool -> ?domains:int -> seed:int ->
  Model.t -> Relation.Tuple.t list -> Workload.result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped by
    the number of distinct tuples. [seed] derives every chunk's RNG, so
    results are reproducible for a fixed domain count. The merged stats sum
    the chunks' counters; [wall_seconds] is the true elapsed time. *)
