(** The tuple DAG (Section V-B): distinct incomplete tuples ordered by
    subsumption (Def 2.4), used to share Gibbs samples between related
    inference tasks.

    A tuple with fewer known values subsumes — and can donate matching
    samples to — tuples that extend its complete portion. Nodes are keyed
    by their complete portions (two incomplete tuples over one schema are
    equal iff those agree), ancestors are found by subset enumeration over
    each node's known assignments, and edges are the Hasse cover relation
    (transitively reduced). *)

type t

val build : Relation.Tuple.t list -> t
(** Deduplicates the workload and builds the DAG. Raises
    [Invalid_argument] if any tuple is complete or arities differ. *)

val node_count : t -> int
(** Number of distinct incomplete tuples. *)

val tuple : t -> int -> Relation.Tuple.t
val tuples : t -> Relation.Tuple.t array

val index_of : t -> Relation.Tuple.t -> int option

val parents : t -> int -> int list
(** Direct subsumers (cover edges only), ascending node index. *)

val children : t -> int -> int list
(** Direct subsumees, ascending node index. *)

val roots : t -> int list
(** Nodes with no parents — the initial sampling frontier of
    Algorithm 3. *)

val ancestors : t -> int -> int list
(** All (transitive) subsumers present in the workload. *)

val edge_count : t -> int

val pp : Relation.Schema.t -> Format.formatter -> t -> unit
