(** Convergence diagnostics for the Gibbs sampler.

    Section V-A: "The length of burn-in (B), and the subsequent number of
    iterations (N), may be estimated using standard techniques." This
    module implements those standard techniques for the MRSL sampler:

    - {e Gelman–Rubin} potential scale reduction (R̂) across several
      independent chains, computed on the indicator series of every
      (missing attribute, value) pair and reported as the maximum;
    - {e effective sample size} per chain from the autocorrelation of the
      same indicator series (initial-positive-sequence estimator),
      reported as the minimum over indicators. *)

type report = {
  psrf_max : float;  (** max Gelman–Rubin R̂ over all value indicators *)
  ess_min : float;  (** min effective sample size over all indicators *)
  chains : int;
  draws_per_chain : int;
}

val potential_scale_reduction : float array array -> float
(** [potential_scale_reduction series] — R̂ for one scalar statistic from
    [m] chains of equal length [n] ([series.(i)] is chain [i]). Returns 1.0
    when the statistic is constant. Raises [Invalid_argument] with fewer
    than 2 chains, chains shorter than 4, or ragged lengths. *)

val effective_sample_size : float array -> float
(** ESS of a single scalar series via the initial positive sequence of
    autocorrelations; at most the series length, at least 1. *)

val diagnose : ?chains:int -> ?draws:int -> ?burn_in:int -> Prob.Rng.t ->
  Gibbs.sampler -> Relation.Tuple.t -> report
(** Run several independent chains (default 4 × 500 draws after a burn-in
    of 100) for an incomplete tuple and summarize convergence. A
    well-mixed sampler has [psrf_max] close to 1 (≤ 1.1 is the customary
    threshold) and a healthy [ess_min]. *)

val converged : ?threshold:float -> report -> bool
(** [psrf_max <= threshold] (default 1.1). *)
