(* Group tuples so subsumption-related ones tend to share a chunk: sort by
   the known-attribute set's itemset order (tuples over the same known
   attributes cluster), then deal groups round-robin. *)
let partition chunks workload =
  let sorted =
    List.sort
      (fun a b ->
        Mining.Itemset.compare (Mining.Itemset.of_tuple a)
          (Mining.Itemset.of_tuple b))
      workload
  in
  let buckets = Array.make chunks [] in
  List.iteri (fun i tup -> buckets.(i mod chunks) <- tup :: buckets.(i mod chunks)) sorted;
  Array.to_list buckets |> List.filter (fun b -> b <> [])

let run ?(config = Gibbs.default_config) ?(strategy = Workload.Tuple_dag)
    ?method_ ?memoize ?domains ~seed model workload =
  let distinct = Tuple_dag.build workload in
  let n = Tuple_dag.node_count distinct in
  let requested =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Parallel.run: domains must be >= 1";
        d
    | None -> Domain.recommended_domain_count ()
  in
  let chunks = max 1 (min requested n) in
  let t0 = Unix.gettimeofday () in
  let parts =
    partition chunks (Array.to_list (Tuple_dag.tuples distinct))
  in
  let work index part () =
    let sampler = Gibbs.sampler ?method_ ?memoize model in
    let rng = Prob.Rng.create (seed + (31 * index)) in
    Workload.run ~config ~strategy rng sampler part
  in
  let handles =
    List.mapi (fun i part -> Domain.spawn (work i part)) parts
  in
  let results = List.map Domain.join handles in
  let wall = Unix.gettimeofday () -. t0 in
  let estimates = List.concat_map (fun (r : Workload.result) -> r.estimates) results in
  let sum f = List.fold_left (fun acc (r : Workload.result) -> acc + f r.stats) 0 results in
  {
    Workload.estimates;
    stats =
      {
        sweeps = sum (fun s -> s.Workload.sweeps);
        recorded = sum (fun s -> s.Workload.recorded);
        shared = sum (fun s -> s.Workload.shared);
        wall_seconds = wall;
      };
  }
