let check_task model tup a =
  let arity = Relation.Schema.arity (Model.schema model) in
  if Array.length tup <> arity then
    invalid_arg "Infer_single: tuple arity does not match model schema";
  if a < 0 || a >= arity then
    invalid_arg "Infer_single: attribute index out of range";
  match tup.(a) with
  | Some _ ->
      invalid_arg "Infer_single: attribute is not missing in the tuple"
  | None -> ()

let voters ?(method_ = Voting.best_averaged) model tup a =
  check_task model tup a;
  let matches = Lattice.matching (Model.lattice model a) tup in
  Voting.select method_.choice matches

let infer ?(method_ = Voting.best_averaged) model tup a =
  Voting.combine method_.scheme (voters ~method_ model tup a)

let infer_all_missing ?method_ model tup =
  List.map (fun a -> (a, infer ?method_ model tup a)) (Relation.Tuple.missing tup)

type explanation = {
  estimate : Prob.Dist.t;
  contributions : (Meta_rule.t * float) list;
}

let explain ?(method_ = Voting.best_averaged) model tup a =
  let selected = voters ~method_ model tup a in
  let estimate = Voting.combine method_.scheme selected in
  let weights =
    match method_.scheme with
    | Voting.Averaged -> List.map (fun _ -> 1.) selected
    | Voting.Weighted ->
        let ws = List.map (fun (m : Meta_rule.t) -> m.weight) selected in
        if List.for_all (fun w -> w <= 0.) ws then
          List.map (fun _ -> 1.) selected
        else ws
  in
  let total = List.fold_left ( +. ) 0. weights in
  let contributions =
    List.map2 (fun m w -> (m, w /. total)) selected weights
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  { estimate; contributions }
