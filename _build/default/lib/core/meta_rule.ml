type t = {
  body : Mining.Itemset.t;
  head_attr : int;
  cpd : Prob.Dist.t;
  weight : float;
}

let make ?floor ~body ~head_attr ~weight ~raw_cpd () =
  if head_attr < 0 then invalid_arg "Meta_rule.make: negative head attribute";
  if Mining.Itemset.mem_attr body head_attr then
    invalid_arg "Meta_rule.make: head attribute appears in the body";
  if weight < 0. || weight > 1. +. 1e-9 then
    invalid_arg "Meta_rule.make: weight must be a support in [0, 1]";
  { body; head_attr; cpd = Prob.Dist.smooth ?floor raw_cpd; weight }

let of_distribution ~body ~head_attr ~weight cpd =
  if head_attr < 0 then
    invalid_arg "Meta_rule.of_distribution: negative head attribute";
  if Mining.Itemset.mem_attr body head_attr then
    invalid_arg "Meta_rule.of_distribution: head attribute appears in the body";
  if weight < 0. || weight > 1. +. 1e-9 then
    invalid_arg "Meta_rule.of_distribution: weight must be a support in [0, 1]";
  { body; head_attr; cpd; weight }

let of_rules ?floor ~head_card rules =
  match rules with
  | [] -> invalid_arg "Meta_rule.of_rules: empty rule list"
  | (first : Mining.Assoc_rule.t) :: _ ->
      let raw = Array.make head_card 0. in
      List.iter
        (fun (r : Mining.Assoc_rule.t) ->
          if not (Mining.Itemset.equal r.body first.body) then
            invalid_arg "Meta_rule.of_rules: bodies differ";
          if r.head_attr <> first.head_attr then
            invalid_arg "Meta_rule.of_rules: head attributes differ";
          if r.head_value < 0 || r.head_value >= head_card then
            invalid_arg "Meta_rule.of_rules: head value out of range";
          if raw.(r.head_value) > 0. then
            invalid_arg "Meta_rule.of_rules: duplicate head value";
          raw.(r.head_value) <- r.confidence)
        rules;
      make ?floor ~body:first.body ~head_attr:first.head_attr
        ~weight:first.body_support ~raw_cpd:raw ()

let matches m tup = Mining.Itemset.matches_tuple m.body tup

let subsumes m1 m2 =
  m1.head_attr = m2.head_attr
  && Mining.Itemset.proper_subset m1.body m2.body

let specificity m = Mining.Itemset.size m.body

let pp ppf m =
  Format.fprintf ppf "P(a%d | %a) = %a  (w=%.3f)" m.head_attr
    Mining.Itemset.pp m.body Prob.Dist.pp m.cpd m.weight

let pp_named schema ppf m =
  let attr i = Relation.Schema.attribute schema i in
  let pp_item ppf (a, v) =
    Format.fprintf ppf "%s=%s"
      (Relation.Attribute.name (attr a))
      (Relation.Attribute.value_label (attr a) v)
  in
  let pp_body ppf body =
    match Mining.Itemset.to_list body with
    | [] -> ()
    | items ->
        Format.fprintf ppf " | %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
             pp_item)
          items
  in
  Format.fprintf ppf "P(%s%a) = %a  (w=%.3f)"
    (Relation.Attribute.name (attr m.head_attr))
    pp_body m.body Prob.Dist.pp m.cpd m.weight
