(** Plain-text serialization of MRSL models.

    Learning is an offline process in the paper (Section VI-B: "learning
    the MRSL from the data as part of an off-line process is feasible");
    persisting the learned model lets the inference phase run later and
    elsewhere. The format is a line-oriented, tab-separated text format
    with a version header; labels are percent-encoded so arbitrary value
    strings survive the round trip. Probabilities are written with full
    precision ([%.17g]), making the round trip exact. *)

val to_string : Model.t -> string

val of_string : string -> Model.t
(** Raises [Failure] with a line-numbered message on malformed input, and
    [Invalid_argument] if the decoded parts are inconsistent. *)

val save : string -> Model.t -> unit
(** Write to a file. *)

val load : string -> Model.t
