let header = "mrsl-model\tv1"

(* Percent-encode the characters that would break the line/field
   structure. *)
let encode_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' | '\n' | '\r' | '%' -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_label s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec walk i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> failwith "Model_io: bad percent escape");
        walk (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        walk (i + 1)
      end
  in
  walk 0;
  Buffer.contents buf

let body_to_string body =
  match Mining.Itemset.to_list body with
  | [] -> "-"
  | items ->
      String.concat ","
        (List.map (fun (a, v) -> Printf.sprintf "%d=%d" a v) items)

let body_of_string s =
  if s = "-" then Mining.Itemset.empty
  else
    Mining.Itemset.of_list
      (List.map
         (fun item ->
           match String.split_on_char '=' item with
           | [ a; v ] -> (int_of_string a, int_of_string v)
           | _ -> failwith "Model_io: bad body item")
         (String.split_on_char ',' s))

let cpd_to_string cpd =
  String.concat ";"
    (List.map (Printf.sprintf "%.17g") (Array.to_list (Prob.Dist.to_array cpd)))

let to_string model =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  let params = Model.params model in
  line "params\t%.17g\t%d\t%.17g" params.support_threshold params.max_itemsets
    params.smoothing_floor;
  line "stats\t%d\t%b" (Model.frequent_itemsets model) (Model.truncated model);
  let schema = Model.schema model in
  line "schema\t%d" (Relation.Schema.arity schema);
  Array.iter
    (fun attr ->
      line "attr\t%s\t%s"
        (encode_label (Relation.Attribute.name attr))
        (String.concat "\t"
           (List.init
              (Relation.Attribute.cardinality attr)
              (fun v ->
                encode_label (Relation.Attribute.value_label attr v)))))
    (Relation.Schema.attributes schema);
  Array.iter
    (fun lattice ->
      let rules = Lattice.meta_rules lattice in
      line "lattice\t%d\t%d" (Lattice.head_attr lattice) (List.length rules);
      List.iter
        (fun (m : Meta_rule.t) ->
          line "meta\t%.17g\t%s\t%s" m.weight (body_to_string m.body)
            (cpd_to_string m.cpd))
        rules)
    (Model.lattices model);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let lines = List.filteri (fun _ l -> String.trim l <> "") lines in
  let lines = Array.of_list lines in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Model_io line %d: %s" (!pos + 1) msg) in
  let next () =
    if !pos >= Array.length lines then fail "unexpected end of input";
    let l = lines.(!pos) in
    incr pos;
    String.split_on_char '\t' l
  in
  (match next () with
  | [ "mrsl-model"; "v1" ] -> ()
  | _ -> fail "bad header");
  let params =
    match next () with
    | [ "params"; s; m; f ] ->
        (* The miner only affects learning, not the persisted model. *)
        {
          Model.support_threshold = float_of_string s;
          max_itemsets = int_of_string m;
          smoothing_floor = float_of_string f;
          miner = Model.Apriori;
        }
    | _ -> fail "expected params line"
  in
  let frequent_itemsets, truncated =
    match next () with
    | [ "stats"; fi; tr ] -> (int_of_string fi, bool_of_string tr)
    | _ -> fail "expected stats line"
  in
  let arity =
    match next () with
    | [ "schema"; n ] -> int_of_string n
    | _ -> fail "expected schema line"
  in
  let attrs =
    List.init arity (fun _ ->
        match next () with
        | "attr" :: name :: labels when labels <> [] ->
            Relation.Attribute.make (decode_label name)
              (List.map decode_label labels)
        | _ -> fail "expected attr line")
  in
  let schema = Relation.Schema.make attrs in
  let lattices =
    Array.init arity (fun _ ->
        match next () with
        | [ "lattice"; attr; count ] ->
            let attr = int_of_string attr and count = int_of_string count in
            let head_card = Relation.Schema.cardinality schema attr in
            let metas =
              List.init count (fun _ ->
                  match next () with
                  | [ "meta"; weight; body; cpd ] ->
                      let weight = float_of_string weight in
                      let body = body_of_string body in
                      let raw =
                        Array.of_list
                          (List.map float_of_string
                             (String.split_on_char ';' cpd))
                      in
                      if Array.length raw <> head_card then
                        fail "CPD size does not match attribute cardinality";
                      (* Stored CPDs are already smoothed: normalize only,
                         so the round trip is exact. *)
                      Meta_rule.of_distribution ~body ~head_attr:attr ~weight
                        (Prob.Dist.of_weights raw)
                  | _ -> fail "expected meta line")
            in
            let root, rest =
              match
                List.partition
                  (fun (m : Meta_rule.t) -> Mining.Itemset.is_empty m.body)
                  metas
              with
              | [ root ], rest -> (root, rest)
              | _ -> fail "lattice needs exactly one root meta-rule"
            in
            Lattice.create ~head_attr:attr ~head_card ~root rest
        | _ -> fail "expected lattice line")
  in
  if !pos <> Array.length lines then fail "trailing content";
  Model.of_parts ~params ~frequent_itemsets ~truncated schema lattices

let save path model =
  Out_channel.with_open_bin path (fun oc -> output_string oc (to_string model))

let load path =
  In_channel.with_open_bin path (fun ic -> of_string (In_channel.input_all ic))
