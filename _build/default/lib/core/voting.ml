type choice = All | Best
type scheme = Averaged | Weighted
type method_ = { choice : choice; scheme : scheme }

let all_averaged = { choice = All; scheme = Averaged }
let all_weighted = { choice = All; scheme = Weighted }
let best_averaged = { choice = Best; scheme = Averaged }
let best_weighted = { choice = Best; scheme = Weighted }
let all_methods = [ all_averaged; all_weighted; best_averaged; best_weighted ]

let method_name m =
  let c = match m.choice with All -> "all" | Best -> "best" in
  let s = match m.scheme with Averaged -> "averaged" | Weighted -> "weighted" in
  c ^ " " ^ s

let method_of_string s =
  let canon =
    String.lowercase_ascii s
    |> String.map (fun c -> if c = '-' || c = '_' || c = ' ' then ' ' else c)
  in
  match String.split_on_char ' ' canon |> List.filter (( <> ) "") with
  | [ "all"; "averaged" ] -> Some all_averaged
  | [ "all"; "weighted" ] -> Some all_weighted
  | [ "best"; "averaged" ] -> Some best_averaged
  | [ "best"; "weighted" ] -> Some best_weighted
  | _ -> None

let select choice matches =
  match choice with
  | All -> matches
  | Best -> Lattice.most_specific matches

let combine scheme voters =
  match voters with
  | [] -> invalid_arg "Voting.combine: no voters"
  | _ -> (
      match scheme with
      | Averaged ->
          Prob.Dist.average (List.map (fun (m : Meta_rule.t) -> m.cpd) voters)
      | Weighted ->
          Prob.Dist.weighted_average
            (List.map (fun (m : Meta_rule.t) -> (m.weight, m.cpd)) voters))
