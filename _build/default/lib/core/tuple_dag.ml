type t = {
  tuples : Relation.Tuple.t array;
  parents : int list array;
  children : int list array;
  by_itemset : int Mining.Itemset.Table.t;
}

(* All ancestors of node [j]: workload tuples whose complete portion is a
   proper subset of [j]'s. Found by enumerating subsets of the known
   assignments and probing the itemset index. *)
let ancestors_of by_itemset itemset j =
  let items = Array.of_list (Mining.Itemset.to_list itemset) in
  let k = Array.length items in
  let acc = ref [] in
  let chosen = Array.make (max 1 k) 0 in
  let rec enum s pos start =
    if pos = s then begin
      let sub =
        Mining.Itemset.of_list
          (Array.to_list (Array.init s (fun i -> items.(chosen.(i)))))
      in
      match Mining.Itemset.Table.find_opt by_itemset sub with
      | Some i when i <> j -> acc := i :: !acc
      | _ -> ()
    end
    else
      for c = start to k - (s - pos) do
        chosen.(pos) <- c;
        enum s (pos + 1) (c + 1)
      done
  in
  for s = 0 to k - 1 do
    enum s 0 0
  done;
  !acc

let build workload =
  let arity =
    match workload with
    | [] -> 0
    | t :: _ -> Array.length t
  in
  List.iter
    (fun tup ->
      if Array.length tup <> arity then
        invalid_arg "Tuple_dag.build: tuple arity mismatch";
      if Relation.Tuple.is_complete tup then
        invalid_arg "Tuple_dag.build: complete tuples have nothing to infer")
    workload;
  (* Deduplicate, keyed by the complete portion. *)
  let by_itemset = Mining.Itemset.Table.create 256 in
  let distinct = ref [] in
  let n = ref 0 in
  List.iter
    (fun tup ->
      let key = Mining.Itemset.of_tuple tup in
      if not (Mining.Itemset.Table.mem by_itemset key) then begin
        Mining.Itemset.Table.replace by_itemset key !n;
        distinct := tup :: !distinct;
        incr n
      end)
    workload;
  let tuples = Array.of_list (List.rev !distinct) in
  let n = Array.length tuples in
  let parents = Array.make n [] in
  let children = Array.make n [] in
  let itemsets = Array.map Mining.Itemset.of_tuple tuples in
  for j = 0 to n - 1 do
    let ancs = ancestors_of by_itemset itemsets.(j) j in
    (* Hasse reduction: an ancestor is a parent iff no other ancestor lies
       strictly between it and [j]. *)
    let direct =
      List.filter
        (fun i ->
          not
            (List.exists
               (fun k ->
                 k <> i
                 && Mining.Itemset.proper_subset itemsets.(i) itemsets.(k))
               ancs))
        ancs
    in
    parents.(j) <- List.sort Int.compare direct;
    List.iter (fun i -> children.(i) <- j :: children.(i)) direct
  done;
  Array.iteri (fun i l -> children.(i) <- List.sort Int.compare l) children;
  { tuples; parents; children; by_itemset }

let node_count t = Array.length t.tuples

let tuple t i =
  if i < 0 || i >= Array.length t.tuples then
    invalid_arg "Tuple_dag.tuple: node index out of range";
  t.tuples.(i)

let tuples t = Array.copy t.tuples

let index_of t tup =
  Mining.Itemset.Table.find_opt t.by_itemset (Mining.Itemset.of_tuple tup)

let parents t i = t.parents.(i)
let children t i = t.children.(i)

let roots t =
  List.filter
    (fun i -> t.parents.(i) = [])
    (List.init (Array.length t.tuples) Fun.id)

let ancestors t i =
  let itemsets = Array.map Mining.Itemset.of_tuple t.tuples in
  ancestors_of t.by_itemset itemsets.(i) i |> List.sort Int.compare

let edge_count t =
  Array.fold_left (fun acc ps -> acc + List.length ps) 0 t.parents

let pp schema ppf t =
  Format.fprintf ppf "@[<v>tuple DAG: %d nodes, %d edges@," (node_count t)
    (edge_count t);
  Array.iteri
    (fun i tup ->
      Format.fprintf ppf "%d: %a  parents=%a@," i (Relation.Tuple.pp schema)
        tup
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        t.parents.(i))
    t.tuples;
  Format.fprintf ppf "@]"
