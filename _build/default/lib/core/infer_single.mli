(** Single-attribute inference (paper Algorithm 2).

    Given an incomplete tuple and the MRSL of a missing attribute, collect
    the matching meta-rules, apply a voter-selection mechanism and a voting
    scheme, and return the estimated CPD over the attribute's domain. *)

val infer : ?method_:Voting.method_ -> Model.t -> Relation.Tuple.t -> int ->
  Prob.Dist.t
(** [infer model t a] — estimated distribution of the missing attribute [a]
    in [t]. The method defaults to best-averaged (the paper's most accurate
    setting). Raises [Invalid_argument] when [a] is not missing in [t] or
    out of range. Values of other missing attributes are simply absent
    evidence — the matching meta-rules condition only on known values. *)

val infer_all_missing : ?method_:Voting.method_ -> Model.t ->
  Relation.Tuple.t -> (int * Prob.Dist.t) list
(** Independent single-attribute estimates for every missing attribute of
    the tuple (the naive per-attribute baseline that multi-attribute Gibbs
    inference improves on, Section V). *)

val voters : ?method_:Voting.method_ -> Model.t -> Relation.Tuple.t -> int ->
  Meta_rule.t list
(** The selected voter set for an inference task — exposed for inspection,
    explanation, and tests. *)

type explanation = {
  estimate : Prob.Dist.t;
  contributions : (Meta_rule.t * float) list;
      (** each selected voter with its normalized vote weight (summing to
          1): uniform under the averaged scheme, support-proportional
          under the weighted scheme *)
}

val explain : ?method_:Voting.method_ -> Model.t -> Relation.Tuple.t -> int ->
  explanation
(** Like {!infer}, but also reports how much each meta-rule contributed —
    the provenance of a derived probability. *)
