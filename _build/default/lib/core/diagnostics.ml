type report = {
  psrf_max : float;
  ess_min : float;
  chains : int;
  draws_per_chain : int;
}

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let potential_scale_reduction series =
  let m = Array.length series in
  if m < 2 then
    invalid_arg "Diagnostics.potential_scale_reduction: need >= 2 chains";
  let n = Array.length series.(0) in
  if n < 4 then
    invalid_arg "Diagnostics.potential_scale_reduction: chains too short";
  Array.iter
    (fun chain ->
      if Array.length chain <> n then
        invalid_arg "Diagnostics.potential_scale_reduction: ragged chains")
    series;
  let nf = float_of_int n and mf = float_of_int m in
  let chain_means = Array.map mean series in
  let grand = mean chain_means in
  (* Between-chain variance B and within-chain variance W. *)
  let b =
    nf /. (mf -. 1.)
    *. Array.fold_left
         (fun acc mu -> acc +. ((mu -. grand) ** 2.))
         0. chain_means
  in
  let w =
    mean
      (Array.map
         (fun chain ->
           let mu = mean chain in
           Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. chain
           /. (nf -. 1.))
         series)
  in
  if w <= 1e-12 then 1.0
  else
    let var_plus = (((nf -. 1.) /. nf) *. w) +. (b /. nf) in
    sqrt (var_plus /. w)

let effective_sample_size series =
  let n = Array.length series in
  if n < 2 then 1.
  else begin
    let mu = mean series in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. series
      /. float_of_int n
    in
    if var <= 1e-12 then float_of_int n
    else begin
      let autocov k =
        let acc = ref 0. in
        for i = 0 to n - 1 - k do
          acc := !acc +. ((series.(i) -. mu) *. (series.(i + k) -. mu))
        done;
        !acc /. float_of_int n
      in
      (* Initial positive sequence: sum pair sums Γ_k = ρ_{2k} + ρ_{2k+1}
         while positive (Geyer 1992). *)
      let rec accumulate k acc =
        if 2 * k + 1 >= n then acc
        else
          let gamma = (autocov (2 * k) +. autocov ((2 * k) + 1)) /. var in
          if gamma <= 0. then acc else accumulate (k + 1) (acc +. gamma)
      in
      (* k = 0 contributes ρ0 + ρ1 where ρ0 = 1. *)
      let tau = Float.max 1. ((2. *. accumulate 0 0.) -. 1.) in
      Float.max 1. (Float.min (float_of_int n) (float_of_int n /. tau))
    end
  end

let diagnose ?(chains = 4) ?(draws = 500) ?(burn_in = 100) rng sampler tup =
  if chains < 2 then invalid_arg "Diagnostics.diagnose: need >= 2 chains";
  if draws < 4 then invalid_arg "Diagnostics.diagnose: need >= 4 draws";
  let missing = Relation.Tuple.missing tup in
  if missing = [] then invalid_arg "Diagnostics.diagnose: tuple is complete";
  let schema = Model.schema (Gibbs.model sampler) in
  (* Record every chain's trajectory over the missing attributes. *)
  let trajectories =
    Array.init chains (fun _ ->
        let chain_rng = Prob.Rng.split rng in
        let c = Gibbs.chain chain_rng sampler tup in
        for _ = 1 to burn_in do
          ignore (Gibbs.sweep chain_rng c)
        done;
        Array.init draws (fun _ -> Gibbs.sweep chain_rng c))
  in
  let indicators =
    List.concat_map
      (fun a ->
        List.init (Relation.Schema.cardinality schema a) (fun v -> (a, v)))
      missing
  in
  let psrf_max = ref 1. and ess_min = ref (float_of_int draws) in
  List.iter
    (fun (a, v) ->
      let series =
        Array.map
          (Array.map (fun point -> if point.(a) = v then 1. else 0.))
          trajectories
      in
      let r = potential_scale_reduction series in
      if r > !psrf_max then psrf_max := r;
      Array.iter
        (fun chain ->
          let ess = effective_sample_size chain in
          if ess < !ess_min then ess_min := ess)
        series)
    indicators;
  { psrf_max = !psrf_max; ess_min = !ess_min; chains; draws_per_chain = draws }

let converged ?(threshold = 1.1) report = report.psrf_max <= threshold
