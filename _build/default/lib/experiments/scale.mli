(** Experiment scale presets.

    The paper's full evaluation (100k-point training sets, 3 BN instances ×
    3 splits, 5000-sample chains, 3000-tuple workloads) takes hours; the
    default preset reproduces every trend in minutes. Selected through the
    [MRSL_SCALE] environment variable: [smoke] (CI-sized), [default], or
    [full] (the paper's parameters). *)

type t = {
  name : string;
  instances : int;  (** BN instances per topology *)
  splits : int;  (** train/test splits per instance *)
  train_sizes : int list;  (** Fig 4(a) / Fig 5 sweep *)
  supports : float list;  (** Fig 4(b,c) / Fig 6 sweep *)
  fixed_train : int;  (** "large training set" cells (Table II, Fig 6, 8) *)
  fixed_support : float;  (** high-accuracy support setting (0.001) *)
  median_support : float;  (** Fig 4(a)'s fixed support (0.02) *)
  median_train : int;  (** Fig 4(b,c)'s fixed training size (10,000) *)
  test_tuples : int;  (** max single-inference test tuples per cell *)
  joint_test_tuples : int;  (** max Gibbs-evaluated tuples per cell *)
  points_per_tuple : int list;  (** Fig 10 x-axis *)
  fig10_missing : int list;  (** numbers of missing attributes *)
  workload_sizes : int list;  (** Fig 11 x-axis *)
  workload_samples : int;  (** Fig 11 fixes 500 points per tuple *)
  burn_in : int;
  alpha : float;  (** Dirichlet concentration for CPT generation *)
  networks_cap : int;  (** max networks per averaged sweep (Figs 4–6) *)
  fig9_batches : int list;  (** inference batch sizes of Fig 9 *)
}

val smoke : t
val default : t
val full : t

val current : unit -> t
(** Chosen by [MRSL_SCALE]; [default] when unset or unrecognized. *)
