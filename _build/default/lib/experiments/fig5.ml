type point = {
  x : float;
  per_method : (Mrsl.Voting.method_ * Framework.accuracy) list;
}

let sweep rng scale ~cells =
  (* [cells]: (x, support, train_size) triples; averages the four methods'
     accuracy over the capped network list for each cell. *)
  let networks =
    Util.take scale.Scale.networks_cap
      Bayesnet.Catalog.single_inference_networks
  in
  List.map
    (fun (x, support, train_size) ->
      let per_rep =
        List.concat_map
          (fun entry ->
            let reps = Framework.prepare rng scale entry ~train_size in
            List.map
              (fun prepared ->
                let model, _ = Framework.learn_timed prepared ~support in
                Framework.eval_single rng prepared model
                  ~methods:Mrsl.Voting.all_methods
                  ~max_tuples:scale.Scale.test_tuples)
              reps)
          networks
      in
      let per_method =
        List.map
          (fun m ->
            (m, Framework.merge (List.map (fun rep -> List.assq m rep) per_rep)))
          Mrsl.Voting.all_methods
      in
      { x; per_method })
    cells

let compute rng scale =
  sweep rng scale
    ~cells:
      (List.map
         (fun n -> (float_of_int n, scale.Scale.fixed_support, n))
         scale.Scale.train_sizes)

let render_points ~title_kl ~title_top1 ~x_label points =
  let series = List.map Mrsl.Voting.method_name Mrsl.Voting.all_methods in
  let kl =
    Report.render_series ~title:title_kl ~x_label ~series
      (List.map
         (fun p ->
           (p.x, List.map (fun (_, (a : Framework.accuracy)) -> a.kl) p.per_method))
         points)
  in
  let top1 =
    Report.render_series ~title:title_top1 ~x_label ~series
      (List.map
         (fun p ->
           ( p.x,
             List.map (fun (_, (a : Framework.accuracy)) -> a.top1) p.per_method ))
         points)
  in
  kl ^ "\n" ^ top1

let render rng scale =
  let points = compute rng scale in
  render_points
    ~title_kl:
      (Printf.sprintf "Fig 5 (left): KL divergence vs training size (support=%g)"
         scale.Scale.fixed_support)
    ~title_top1:
      (Printf.sprintf
         "Fig 5 (right): top-1 accuracy vs training size (support=%g)"
         scale.Scale.fixed_support)
    ~x_label:"train size" points
