type t = {
  name : string;
  instances : int;
  splits : int;
  train_sizes : int list;
  supports : float list;
  fixed_train : int;
  fixed_support : float;
  median_support : float;
  median_train : int;
  test_tuples : int;
  joint_test_tuples : int;
  points_per_tuple : int list;
  fig10_missing : int list;
  workload_sizes : int list;
  workload_samples : int;
  burn_in : int;
  alpha : float;
  networks_cap : int;
  fig9_batches : int list;
}

let smoke =
  {
    name = "smoke";
    instances = 1;
    splits = 1;
    train_sizes = [ 500; 1000 ];
    supports = [ 0.01; 0.1 ];
    fixed_train = 1000;
    fixed_support = 0.01;
    median_support = 0.02;
    median_train = 1000;
    test_tuples = 40;
    joint_test_tuples = 10;
    points_per_tuple = [ 100; 250 ];
    fig10_missing = [ 2; 3 ];
    workload_sizes = [ 20; 50 ];
    workload_samples = 100;
    burn_in = 30;
    alpha = 0.5;
    networks_cap = 3;
    fig9_batches = [ 100 ];
  }

let default =
  {
    name = "default";
    instances = 2;
    splits = 2;
    train_sizes = [ 1000; 2000; 5000; 10_000; 20_000 ];
    supports = [ 0.001; 0.01; 0.02; 0.05; 0.1 ];
    fixed_train = 20_000;
    fixed_support = 0.001;
    median_support = 0.02;
    median_train = 10_000;
    test_tuples = 200;
    joint_test_tuples = 30;
    points_per_tuple = [ 250; 500; 1000; 2000 ];
    fig10_missing = [ 2; 3; 4 ];
    workload_sizes = [ 100; 250; 500; 1000 ];
    workload_samples = 500;
    burn_in = 100;
    alpha = 0.5;
    networks_cap = 8;
    fig9_batches = [ 500; 1000; 5000 ];
  }

let full =
  {
    name = "full";
    instances = 3;
    splits = 3;
    train_sizes = [ 1000; 5000; 10_000; 20_000; 50_000; 100_000 ];
    supports = [ 0.001; 0.01; 0.02; 0.05; 0.1 ];
    fixed_train = 100_000;
    fixed_support = 0.001;
    median_support = 0.02;
    median_train = 10_000;
    test_tuples = 1000;
    joint_test_tuples = 100;
    points_per_tuple = [ 250; 500; 1000; 2000; 5000 ];
    fig10_missing = [ 2; 3; 4; 5 ];
    workload_sizes = [ 250; 500; 1000; 2000; 3000 ];
    workload_samples = 500;
    burn_in = 100;
    alpha = 0.5;
    networks_cap = 14;
    fig9_batches = [ 1000; 5000; 10_000 ];
  }

let current () =
  match Sys.getenv_opt "MRSL_SCALE" with
  | Some "smoke" -> smoke
  | Some "full" -> full
  | Some "default" | None -> default
  | Some other ->
      Printf.eprintf "MRSL_SCALE=%s not recognized; using default scale\n%!"
        other;
      default
