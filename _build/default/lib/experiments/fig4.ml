type point = { x : float; build_time : float; model_size : float }

let networks scale =
  Util.take scale.Scale.networks_cap Bayesnet.Catalog.model_building_networks

let measure rng scale ~train_size ~support =
  let cells =
    List.concat_map
      (fun entry ->
        let reps = Framework.prepare rng scale entry ~train_size in
        List.map
          (fun prepared ->
            let model, seconds = Framework.learn_timed prepared ~support in
            (seconds, float_of_int (Mrsl.Model.size model)))
          reps)
      (networks scale)
  in
  ( Util.avg_by fst cells,
    Util.avg_by snd cells )

let compute_vs_train rng scale =
  List.map
    (fun train_size ->
      let build_time, model_size =
        measure rng scale ~train_size ~support:scale.Scale.median_support
      in
      { x = float_of_int train_size; build_time; model_size })
    scale.Scale.train_sizes

let compute_vs_support rng scale =
  List.map
    (fun support ->
      let build_time, model_size =
        measure rng scale ~train_size:scale.Scale.median_train ~support
      in
      { x = support; build_time; model_size })
    scale.Scale.supports

let render rng scale =
  let vs_train = compute_vs_train rng scale in
  let vs_support = compute_vs_support rng scale in
  let a =
    Report.render_series
      ~title:
        (Printf.sprintf
           "Fig 4(a): model building time (s) vs training size (support=%g)"
           scale.Scale.median_support)
      ~x_label:"train size" ~series:[ "build time (s)" ]
      (List.map (fun p -> (p.x, [ p.build_time ])) vs_train)
  in
  let b =
    Report.render_series
      ~title:
        (Printf.sprintf
           "Fig 4(b): model building time (s) vs support (train=%d)"
           scale.Scale.median_train)
      ~x_label:"support" ~series:[ "build time (s)" ]
      (List.map (fun p -> (p.x, [ p.build_time ])) vs_support)
  in
  let c =
    Report.render_series
      ~title:
        (Printf.sprintf "Fig 4(c): model size vs support (train=%d)"
           scale.Scale.median_train)
      ~x_label:"support" ~series:[ "model size (meta-rules)" ]
      (List.map (fun p -> (p.x, [ p.model_size ])) vs_support)
  in
  String.concat "\n" [ a; b; c ]
