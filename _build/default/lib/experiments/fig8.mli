(** Fig 8 — relationship between single-attribute inference accuracy
    (best-averaged voting) and network properties:
    (a) depth (BN18/19/20), (b) attribute count (crown-shaped
    BN8/9/17/18), (c) attribute cardinality (line-shaped BN13–16). *)

type point = { network : string; x : float; kl : float }

val compute_topology : Prob.Rng.t -> Scale.t -> point list
val compute_size : Prob.Rng.t -> Scale.t -> point list
val compute_cardinality : Prob.Rng.t -> Scale.t -> point list
val render : Prob.Rng.t -> Scale.t -> string
