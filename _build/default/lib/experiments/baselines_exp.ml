type row = {
  network : string;
  method_name : string;
  learn_seconds : float;
  kl : float;
  top1 : float;
  tuples : int;
}

let networks = [ "BN8"; "BN17"; "BN2" ]

(* Joint-inference tasks: tuples with 2 missing attributes plus the exact
   posterior of the generating network. *)
let tasks rng (prepared : Framework.prepared) ~max_tuples =
  let arity =
    Bayesnet.Topology.size (Bayesnet.Network.topology prepared.network)
  in
  let n = min max_tuples (Array.length prepared.test_points) in
  List.init n (fun i ->
      let tup = Relation.Tuple.of_point prepared.test_points.(i) in
      let blanks = Prob.Rng.sample_without_replacement rng 2 arity in
      List.iter (fun a -> tup.(a) <- None) blanks;
      let _, truth = Bayesnet.Network.posterior_joint prepared.network tup in
      (tup, truth))

let score tasks infer =
  let kl = ref 0. and top1 = ref 0 in
  List.iter
    (fun (tup, truth) ->
      let est = infer tup in
      kl := !kl +. Prob.Divergence.kl truth est;
      if Prob.Dist.mode truth = Prob.Dist.mode est then incr top1)
    tasks;
  let n = float_of_int (max 1 (List.length tasks)) in
  (!kl /. n, float_of_int !top1 /. n)

let compute rng scale =
  List.concat_map
    (fun id ->
      let entry = Bayesnet.Catalog.find id in
      let prepared =
        match
          Framework.prepare rng scale entry
            ~train_size:scale.Scale.fixed_train
        with
        | p :: _ -> p
        | [] -> assert false
      in
      let points = Relation.Instance.complete_part prepared.train in
      let cards = Bayesnet.Topology.cardinalities entry.topology in
      let tasks = tasks rng prepared ~max_tuples:scale.Scale.joint_test_tuples in
      let n_tasks = List.length tasks in
      let gibbs_config =
        {
          Mrsl.Gibbs.burn_in = scale.Scale.burn_in;
          samples = scale.Scale.workload_samples;
        }
      in
      (* MRSL (shared by the first two methods). *)
      let model, mrsl_seconds =
        Framework.learn_timed prepared ~support:scale.Scale.fixed_support
      in
      let sampler = Mrsl.Gibbs.sampler model in
      let mrsl_gibbs_kl, mrsl_gibbs_top1 =
        score tasks (fun tup ->
            (Mrsl.Gibbs.run ~config:gibbs_config rng sampler tup).joint)
      in
      let indep_kl, indep_top1 =
        score tasks (fun tup -> Baselines.Independent_product.infer_joint model tup)
      in
      (* Learned Bayesian network with exact inference. *)
      let bn, bn_stats = Bayesnet.Structure_learn.fit ~cards points in
      let bn_kl, bn_top1 =
        score tasks (fun tup -> snd (Bayesnet.Network.posterior_joint bn tup))
      in
      (* Plain dependency network with backoff. *)
      let dn, dn_seconds =
        Framework.time (fun () -> Baselines.Dn_backoff.fit ~cards points)
      in
      let dn_kl, dn_top1 =
        score tasks (fun tup ->
            Baselines.Dn_backoff.infer_joint ~burn_in:scale.Scale.burn_in
              ~samples:scale.Scale.workload_samples rng dn tup)
      in
      [
        { network = id; method_name = "MRSL + Gibbs";
          learn_seconds = mrsl_seconds; kl = mrsl_gibbs_kl;
          top1 = mrsl_gibbs_top1; tuples = n_tasks };
        { network = id; method_name = "MRSL independent product";
          learn_seconds = mrsl_seconds; kl = indep_kl; top1 = indep_top1;
          tuples = n_tasks };
        { network = id; method_name = "learned BN (BIC) exact";
          learn_seconds = bn_stats.seconds; kl = bn_kl; top1 = bn_top1;
          tuples = n_tasks };
        { network = id; method_name = "DN exact-match backoff";
          learn_seconds = dn_seconds; kl = dn_kl; top1 = dn_top1;
          tuples = n_tasks };
      ])
    networks

let render rng scale =
  Report.render
    ~title:
      (Printf.sprintf
         "Baselines: 2-missing joint inference (train=%d, support=%g)"
         scale.Scale.fixed_train scale.Scale.fixed_support)
    ~header:[ "network"; "method"; "learn (s)"; "KL"; "top-1"; "tuples" ]
    (List.map
       (fun r ->
         Report.
           [
             S r.network; S r.method_name; F r.learn_seconds; F r.kl;
             P r.top1; I r.tuples;
           ])
       (compute rng scale))
