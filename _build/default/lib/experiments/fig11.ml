type point = {
  network : string;
  workload : int;
  strategy : Mrsl.Workload.strategy;
  sampled_points : int;
  seconds : float;
}

let strategies = Mrsl.Workload.[ Tuple_at_a_time; Tuple_dag ]

let compute rng scale =
  let networks =
    Util.take scale.Scale.networks_cap
      Bayesnet.Catalog.multi_inference_networks
  in
  List.concat_map
    (fun (entry : Bayesnet.Catalog.entry) ->
      match
        Framework.prepare rng scale entry ~train_size:scale.Scale.median_train
      with
      | [] -> []
      | prepared :: _ ->
          let model, _ =
            Framework.learn_timed prepared ~support:scale.Scale.median_support
          in
          List.concat_map
            (fun workload_size ->
              let workload =
                Framework.make_workload rng prepared ~size:workload_size
              in
              let workload_size = List.length workload in
              List.map
                (fun strategy ->
                  let stats =
                    Framework.workload_stats rng model ~strategy
                      ~samples:scale.Scale.workload_samples
                      ~burn_in:scale.Scale.burn_in workload
                  in
                  {
                    network = entry.id;
                    workload = workload_size;
                    strategy;
                    sampled_points = stats.sweeps;
                    seconds = stats.wall_seconds;
                  })
                strategies)
            scale.Scale.workload_sizes)
    networks

let render rng scale =
  let points = compute rng scale in
  let rows =
    List.map
      (fun p ->
        Report.
          [
            S p.network; I p.workload;
            S (Mrsl.Workload.strategy_name p.strategy); I p.sampled_points;
            F p.seconds;
          ])
      points
  in
  let table =
    Report.render
      ~title:
        (Printf.sprintf
           "Fig 11: sampling cost vs workload size (%d points/tuple)"
           scale.Scale.workload_samples)
      ~header:[ "network"; "workload"; "strategy"; "sampled points"; "time (s)" ]
      rows
  in
  (* Per-strategy averages per workload size — the two lines of the
     figure. *)
  let sizes = List.sort_uniq Int.compare (List.map (fun p -> p.workload) points) in
  let summary_of ~title measure =
    let row w =
      let cell s =
        let matching =
          List.filter (fun p -> p.workload = w && p.strategy = s) points
        in
        Util.avg_by measure matching
      in
      (float_of_int w, List.map cell strategies)
    in
    Report.render_series ~title ~x_label:"workload"
      ~series:(List.map Mrsl.Workload.strategy_name strategies)
      (List.map row sizes)
  in
  let summary =
    summary_of ~title:"Fig 11 (summary): mean sampled points by strategy"
      (fun p -> float_of_int p.sampled_points)
  in
  let time_summary =
    summary_of ~title:"Fig 11 (summary): mean inference time (s) by strategy"
      (fun p -> p.seconds)
  in
  String.concat "\n" [ table; summary; time_summary ]
