(** Fig 10 — prediction accuracy of multi-variable (Gibbs) inference:
    average KL divergence between the sampled joint estimate and the exact
    BN posterior, as a function of points sampled per tuple, for several
    missing-attribute counts. Reported per network (BN8, BN17, BN2), as in
    the paper. *)

type point = {
  network : string;
  missing : int;
  points_per_tuple : int;
  kl : float;
  top1 : float;
}

val networks : string list
(** ["BN8"; "BN17"; "BN2"] — the three panels of Fig 10. *)

val compute : Prob.Rng.t -> Scale.t -> point list
val render : Prob.Rng.t -> Scale.t -> string
