(** Fig 11 — efficiency of multi-variable inference: total sampled points
    and wall-clock time as a function of workload size (distinct incomplete
    tuples), for the tuple-DAG strategy against the tuple-at-a-time
    baseline, at 500 points per tuple. Observations pool the
    multi-inference network set, as in the paper ("the choice of a network
    has no bearing on sampling cost"). *)

type point = {
  network : string;
  workload : int;  (** distinct incomplete tuples *)
  strategy : Mrsl.Workload.strategy;
  sampled_points : int;  (** Gibbs draws, burn-in included *)
  seconds : float;
}

val compute : Prob.Rng.t -> Scale.t -> point list
val render : Prob.Rng.t -> Scale.t -> string
