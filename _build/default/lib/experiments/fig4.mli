(** Fig 4 — building the MRSL model, averaged over the 10 learning
    networks: (a) build time vs. training-set size at the median support,
    (b) build time vs. support at the median training size, (c) model size
    (total meta-rules) vs. support. *)

type point = { x : float; build_time : float; model_size : float }

val compute_vs_train : Prob.Rng.t -> Scale.t -> point list
(** x = training-set size, support fixed at [scale.median_support]. *)

val compute_vs_support : Prob.Rng.t -> Scale.t -> point list
(** x = support threshold, training size fixed at [scale.median_train]. *)

val render : Prob.Rng.t -> Scale.t -> string
(** All three panels. *)
