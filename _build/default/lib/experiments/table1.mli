(** Table I — characteristics of the 20 benchmark Bayesian networks,
    comparing the paper's reported summary statistics with the
    reconstructed catalog's measured properties. *)

type row = {
  id : string;
  shape : string;
  num_attrs : int;
  avg_card : float;
  dom_size : float;
  depth : int;
  paper_num_attrs : int;
  paper_avg_card : float;
  paper_dom_size : float;
  paper_depth : int;
}

val compute : unit -> row list
val render : unit -> string
