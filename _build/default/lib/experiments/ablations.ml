type max_itemsets_row = {
  cap : int;
  build_time : float;
  model_size : float;
  kl : float;
  top1 : float;
}

let ablation_networks scale =
  Util.take
    (max 1 (scale.Scale.networks_cap / 2))
    (List.map Bayesnet.Catalog.find [ "BN10"; "BN14"; "BN3" ])

let caps = [ 50; 200; 1000; 5000 ]

let max_itemsets rng scale =
  let cells =
    List.concat_map
      (fun entry ->
        List.map
          (fun prepared -> prepared)
          (Framework.prepare rng scale entry
             ~train_size:scale.Scale.median_train))
      (ablation_networks scale)
  in
  List.map
    (fun cap ->
      let params =
        {
          Mrsl.Model.default_params with
          support_threshold = scale.Scale.fixed_support;
          max_itemsets = cap;
        }
      in
      let measures =
        List.map
          (fun (prepared : Framework.prepared) ->
            let model, seconds =
              Framework.time (fun () ->
                  Mrsl.Model.learn ~params prepared.train)
            in
            let acc =
              match
                Framework.eval_single rng prepared model
                  ~methods:[ Mrsl.Voting.best_averaged ]
                  ~max_tuples:scale.Scale.test_tuples
              with
              | [ (_, acc) ] -> acc
              | _ -> assert false
            in
            (seconds, float_of_int (Mrsl.Model.size model), acc))
          cells
      in
      {
        cap;
        build_time = Util.avg_by (fun (s, _, _) -> s) measures;
        model_size = Util.avg_by (fun (_, m, _) -> m) measures;
        kl =
          (Framework.merge (List.map (fun (_, _, a) -> a) measures)).Framework.kl;
        top1 =
          (Framework.merge (List.map (fun (_, _, a) -> a) measures))
            .Framework.top1;
      })
    caps

type smoothing_row = { floor : float; kl : float; top1 : float }

let floors = [ 1e-7; 1e-5; 1e-3; 0.05 ]

let smoothing rng scale =
  let cells =
    List.concat_map
      (fun entry ->
        Framework.prepare rng scale entry ~train_size:scale.Scale.median_train)
      (ablation_networks scale)
  in
  List.map
    (fun floor ->
      let params =
        {
          Mrsl.Model.default_params with
          support_threshold = scale.Scale.fixed_support;
          smoothing_floor = floor;
        }
      in
      let accs =
        List.map
          (fun (prepared : Framework.prepared) ->
            let model = Mrsl.Model.learn ~params prepared.train in
            match
              Framework.eval_single rng prepared model
                ~methods:[ Mrsl.Voting.best_averaged ]
                ~max_tuples:scale.Scale.test_tuples
            with
            | [ (_, acc) ] -> acc
            | _ -> assert false)
          cells
      in
      let acc = Framework.merge accs in
      { floor; kl = acc.Framework.kl; top1 = acc.Framework.top1 })
    floors

type strategy_row = {
  strategy : Mrsl.Workload.strategy;
  kl : float;
  tv_vs_baseline : float;
  sweeps : int;
}

let strategies rng scale =
  let entry = Bayesnet.Catalog.find "BN8" in
  let prepared =
    match
      Framework.prepare rng scale entry ~train_size:scale.Scale.median_train
    with
    | p :: _ -> p
    | [] -> assert false
  in
  let model, _ =
    Framework.learn_timed prepared ~support:scale.Scale.fixed_support
  in
  let workload =
    Framework.make_workload rng prepared
      ~size:(List.fold_left min max_int scale.Scale.workload_sizes)
  in
  let sampler = Mrsl.Gibbs.sampler model in
  let config =
    {
      Mrsl.Gibbs.burn_in = scale.Scale.burn_in;
      samples = scale.Scale.workload_samples;
    }
  in
  let run strategy =
    Mrsl.Workload.run ~config ~strategy (Prob.Rng.split rng) sampler workload
  in
  let baseline = run Mrsl.Workload.Tuple_at_a_time in
  let mean_kl (result : Mrsl.Workload.result) =
    Util.avg_by
      (fun (tup, (est : Mrsl.Gibbs.estimate)) ->
        let _, truth = Bayesnet.Network.posterior_joint prepared.network tup in
        Prob.Divergence.kl truth est.joint)
      result.estimates
  in
  List.map
    (fun strategy ->
      let result =
        if strategy = Mrsl.Workload.Tuple_at_a_time then baseline
        else run strategy
      in
      {
        strategy;
        kl = mean_kl result;
        tv_vs_baseline = Framework.joint_agreement baseline result;
        sweeps = result.stats.sweeps;
      })
    Mrsl.Workload.[ Tuple_at_a_time; Tuple_dag; All_at_a_time ]

type miner_row = {
  miner : string;
  build_time : float;
  model_size : float;
  identical : bool;
}

let miners rng scale =
  let cells =
    List.concat_map
      (fun entry ->
        Framework.prepare rng scale entry ~train_size:scale.Scale.median_train)
      (ablation_networks scale)
  in
  let learn_with miner (prepared : Framework.prepared) =
    let params =
      {
        Mrsl.Model.default_params with
        support_threshold = scale.Scale.fixed_support;
        miner;
      }
    in
    Framework.time (fun () -> Mrsl.Model.learn ~params prepared.train)
  in
  let apriori = List.map (learn_with Mrsl.Model.Apriori) cells in
  let fp = List.map (learn_with Mrsl.Model.Fp_growth) cells in
  let row name results =
    {
      miner = name;
      build_time = Util.avg_by snd results;
      model_size =
        Util.avg_by (fun (m, _) -> float_of_int (Mrsl.Model.size m)) results;
      identical =
        List.for_all2
          (fun (a, _) (b, _) -> Mrsl.Model.size a = Mrsl.Model.size b)
          apriori results;
    }
  in
  [ row "Apriori" apriori; row "FP-Growth" fp ]

type memo_row = {
  memoize : bool;
  seconds : float;
  cache_hits : int;
  cache_misses : int;
}

let memoization rng scale =
  let entry = Bayesnet.Catalog.find "BN17" in
  let prepared =
    match
      Framework.prepare rng scale entry ~train_size:scale.Scale.median_train
    with
    | p :: _ -> p
    | [] -> assert false
  in
  let model, _ =
    Framework.learn_timed prepared ~support:scale.Scale.fixed_support
  in
  let workload =
    Framework.make_workload rng prepared
      ~size:(List.fold_left min max_int scale.Scale.workload_sizes)
  in
  let config =
    {
      Mrsl.Gibbs.burn_in = scale.Scale.burn_in;
      samples = scale.Scale.workload_samples;
    }
  in
  List.map
    (fun memoize ->
      let sampler = Mrsl.Gibbs.sampler ~memoize model in
      let result =
        Mrsl.Workload.run ~config ~strategy:Mrsl.Workload.Tuple_at_a_time
          (Prob.Rng.split rng) sampler workload
      in
      let cache_hits, cache_misses = Mrsl.Gibbs.cache_stats sampler in
      { memoize; seconds = result.stats.wall_seconds; cache_hits;
        cache_misses })
    [ false; true ]

type parallel_row = { domains : int; seconds : float; sweeps : int }

let parallelism rng scale =
  let entry = Bayesnet.Catalog.find "BN17" in
  let prepared =
    match
      Framework.prepare rng scale entry ~train_size:scale.Scale.median_train
    with
    | p :: _ -> p
    | [] -> assert false
  in
  let model, _ =
    Framework.learn_timed prepared ~support:scale.Scale.median_support
  in
  let workload =
    Framework.make_workload rng prepared
      ~size:(List.fold_left min max_int scale.Scale.workload_sizes)
  in
  let config =
    {
      Mrsl.Gibbs.burn_in = scale.Scale.burn_in;
      samples = scale.Scale.workload_samples;
    }
  in
  let sequential =
    let sampler = Mrsl.Gibbs.sampler ~memoize:false model in
    Mrsl.Workload.run ~config ~strategy:Mrsl.Workload.Tuple_dag
      (Prob.Rng.create 71) sampler workload
  in
  let seq_row =
    { domains = 0; seconds = sequential.stats.wall_seconds;
      sweeps = sequential.stats.sweeps }
  in
  seq_row
  :: List.map
       (fun domains ->
         let result =
           Mrsl.Parallel.run ~config ~strategy:Mrsl.Workload.Tuple_dag
             ~memoize:false ~domains ~seed:71 model workload
         in
         { domains; seconds = result.stats.wall_seconds;
           sweeps = result.stats.sweeps })
       [ 2; 4 ]

let render rng scale =
  let cap_table =
    Report.render
      ~title:"Ablation: Apriori maxItemsets cap (build time / size / accuracy)"
      ~header:[ "cap"; "build time (s)"; "model size"; "KL"; "top-1" ]
      (List.map
         (fun r ->
           Report.[ I r.cap; F r.build_time; F r.model_size; F r.kl; P r.top1 ])
         (max_itemsets rng scale))
  in
  let floor_table =
    Report.render ~title:"Ablation: CPD smoothing floor"
      ~header:[ "floor"; "KL"; "top-1" ]
      (List.map
         (fun (r : smoothing_row) -> Report.[ F r.floor; F r.kl; P r.top1 ])
         (smoothing rng scale))
  in
  let strat_table =
    Report.render
      ~title:"Ablation: Gibbs strategy accuracy parity (BN8 workload)"
      ~header:[ "strategy"; "joint KL"; "TV vs tuple-at-a-time"; "sweeps" ]
      (List.map
         (fun (r : strategy_row) ->
           Report.
             [
               S (Mrsl.Workload.strategy_name r.strategy); F r.kl;
               F r.tv_vs_baseline; I r.sweeps;
             ])
         (strategies rng scale))
  in
  let miner_table =
    Report.render ~title:"Ablation: frequent-itemset miner (Section III claim)"
      ~header:[ "miner"; "build time (s)"; "model size"; "same model?" ]
      (List.map
         (fun (r : miner_row) ->
           Report.
             [
               S r.miner; F r.build_time; F r.model_size;
               S (if r.identical then "yes" else "NO");
             ])
         (miners rng scale))
  in
  let memo_table =
    Report.render
      ~title:"Ablation: conditional-CPD memoization (ours, BN17 workload)"
      ~header:[ "memoize"; "time (s)"; "cache hits"; "cache misses" ]
      (List.map
         (fun (r : memo_row) ->
           Report.
             [
               S (if r.memoize then "on" else "off"); F r.seconds;
               I r.cache_hits; I r.cache_misses;
             ])
         (memoization rng scale))
  in
  let parallel_table =
    Report.render
      ~title:
        (Printf.sprintf
           "Ablation: multicore workload inference (ours, BN17 workload; \
            host reports %d core%s — expect speedups only above 1)"
           (Domain.recommended_domain_count ())
           (if Domain.recommended_domain_count () = 1 then "" else "s"))
      ~header:[ "domains"; "time (s)"; "sweeps" ]
      (List.map
         (fun (r : parallel_row) ->
           Report.
             [
               S (if r.domains = 0 then "sequential" else string_of_int r.domains);
               F r.seconds; I r.sweeps;
             ])
         (parallelism rng scale))
  in
  String.concat "\n"
    [ cap_table; floor_table; strat_table; miner_table; memo_table;
      parallel_table ]
