let compute rng scale =
  Fig5.sweep rng scale
    ~cells:
      (List.map
         (fun s -> (s, s, scale.Scale.fixed_train))
         scale.Scale.supports)

let render rng scale =
  let points = compute rng scale in
  Fig5.render_points
    ~title_kl:
      (Printf.sprintf "Fig 6 (left): KL divergence vs support (train=%d)"
         scale.Scale.fixed_train)
    ~title_top1:
      (Printf.sprintf "Fig 6 (right): top-1 accuracy vs support (train=%d)"
         scale.Scale.fixed_train)
    ~x_label:"support" points
