(** Fig 6 — KL divergence and top-1 accuracy of single-attribute inference
    as a function of the support threshold, at the largest training size of
    the scale preset, for the four voting methods. *)

val compute : Prob.Rng.t -> Scale.t -> Fig5.point list
(** [x] is the support threshold. *)

val render : Prob.Rng.t -> Scale.t -> string
