let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let avg_by f = function
  | [] -> 0.
  | xs -> List.fold_left (fun acc x -> acc +. f x) 0. xs /. float_of_int (List.length xs)
