(** Table II — accuracy of single-variable inference per network, for the
    four voting methods, at the highest-accuracy setting (lowest support,
    largest training set of the scale preset). *)

type row = {
  network : string;
  per_method : (Mrsl.Voting.method_ * Framework.accuracy) list;
      (** in [Mrsl.Voting.all_methods] order *)
}

val compute : Prob.Rng.t -> Scale.t -> row list
val render : Prob.Rng.t -> Scale.t -> string
