type cell = S of string | I of int | F of float | P of float

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f ->
      if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.0f" f
      else if Float.abs f < 5e-4 then Printf.sprintf "%.2e" f
      else Printf.sprintf "%.4f" f
  | P f -> Printf.sprintf "%.1f%%" (100. *. f)

let render ~title ~header rows =
  let width = List.length header in
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg "Report.render: row width does not match header")
    rows;
  let cells = header :: List.map (List.map cell_to_string) rows in
  let widths = Array.make width 0 in
  List.iter
    (List.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)))
    cells;
  let buf = Buffer.create 1024 in
  let total =
    Array.fold_left ( + ) 0 widths + (3 * (width - 1))
  in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (max total (String.length title)) '-');
  Buffer.add_char buf '\n';
  let emit_row row =
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf s;
        Buffer.add_string buf (String.make (widths.(i) - String.length s) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match cells with
  | h :: rest ->
      emit_row h;
      Buffer.add_string buf (String.make (max total (String.length title)) '-');
      Buffer.add_char buf '\n';
      List.iter emit_row rest
  | [] -> ());
  Buffer.contents buf

let render_series ~title ~x_label ~series points =
  let header = x_label :: series in
  let rows =
    List.map
      (fun (x, ys) ->
        if List.length ys <> List.length series then
          invalid_arg "Report.render_series: series width mismatch";
        F x :: List.map (fun y -> F y) ys)
      points
  in
  render ~title ~header rows
