type row = {
  network : string;
  mechanism : string;
  complete_fraction : float;
  kl : float;
  top1 : float;
  tuples : int;
}

let networks = [ "BN9"; "BN5" ]

(* Mechanisms calibrated to comparable per-value intensity. MAR masks the
   non-trigger attributes much more often when attribute 0 takes value 0;
   MNAR censors attribute 1 predominantly when it equals 0. *)
let mechanisms arity =
  [
    Relation.Missingness.Mcar 0.05;
    Relation.Missingness.Mar
      {
        trigger = 0;
        value = 0;
        p_match = 0.3;
        p_other = 0.02;
        targets = List.init (arity - 1) (fun i -> i + 1);
      };
    Relation.Missingness.Mnar
      { target = 1; value = 0; p_match = 0.5; p_other = 0.05 };
  ]

let compute rng scale =
  List.concat_map
    (fun id ->
      let entry = Bayesnet.Catalog.find id in
      let arity = Bayesnet.Topology.size entry.topology in
      let net_rng = Prob.Rng.split rng in
      let network =
        Bayesnet.Network.generate net_rng ~alpha:scale.Scale.alpha
          entry.topology
      in
      let data =
        Bayesnet.Network.sample_instance net_rng network
          scale.Scale.fixed_train
      in
      List.map
        (fun mechanism ->
          let observed = Relation.Missingness.mask (Prob.Rng.split rng) mechanism data in
          let complete = Relation.Instance.complete_part observed in
          let complete_fraction =
            float_of_int (Array.length complete)
            /. float_of_int (Relation.Instance.size observed)
          in
          let params =
            {
              Mrsl.Model.default_params with
              support_threshold = scale.Scale.fixed_support;
            }
          in
          let model = Mrsl.Model.learn ~params observed in
          (* Score the single-missing incomplete tuples. *)
          let kl = ref 0. and top1 = ref 0 and count = ref 0 in
          Array.iter
            (fun tup ->
              if
                Relation.Tuple.missing_count tup = 1
                && !count < scale.Scale.test_tuples
              then begin
                let a = List.hd (Relation.Tuple.missing tup) in
                let truth = Bayesnet.Network.posterior_single network tup a in
                let est = Mrsl.Infer_single.infer model tup a in
                kl := !kl +. Prob.Divergence.kl truth est;
                if Prob.Dist.mode truth = Prob.Dist.mode est then incr top1;
                incr count
              end)
            (Relation.Instance.incomplete_part observed);
          let c = float_of_int (max 1 !count) in
          {
            network = id;
            mechanism = Relation.Missingness.name mechanism;
            complete_fraction;
            kl = !kl /. c;
            top1 = float_of_int !top1 /. c;
            tuples = !count;
          })
        (mechanisms arity))
    networks

let render rng scale =
  Report.render
    ~title:
      (Printf.sprintf
         "Missingness mechanisms: complete-case MRSL accuracy (train=%d, \
          support=%g)"
         scale.Scale.fixed_train scale.Scale.fixed_support)
    ~header:
      [ "network"; "mechanism"; "complete frac"; "KL"; "top-1"; "tuples" ]
    (List.map
       (fun r ->
         Report.
           [
             S r.network; S r.mechanism; F r.complete_fraction; F r.kl;
             P r.top1; I r.tuples;
           ])
       (compute rng scale))
