(** Plain-text table rendering for experiment reports. *)

type cell = S of string | I of int | F of float | P of float
(** [F] renders with 4 significant decimals, [P] as a percentage. *)

val render : title:string -> header:string list -> cell list list -> string
(** Column-aligned table with a title rule. Raises [Invalid_argument] when
    a row's width differs from the header's. *)

val render_series : title:string -> x_label:string -> series:string list ->
  (float * float list) list -> string
(** A figure rendered as text: one row per x value, one column per series
    (e.g. the four voting methods of Fig 5). *)
