type point = { network : string; model_size : float; batch : int; seconds : float }

let compute rng scale =
  let networks =
    Util.take scale.Scale.networks_cap
      Bayesnet.Catalog.single_inference_networks
  in
  List.concat_map
    (fun (entry : Bayesnet.Catalog.entry) ->
      match
        Framework.prepare rng scale entry ~train_size:scale.Scale.median_train
      with
      | [] -> []
      | prepared :: _ ->
          let model, _ =
            Framework.learn_timed prepared ~support:scale.Scale.fixed_support
          in
          let model_size = float_of_int (Mrsl.Model.size model) in
          List.map
            (fun batch ->
              let seconds =
                Framework.single_inference_time rng prepared model ~batch
              in
              { network = entry.id; model_size; batch; seconds })
            scale.Scale.fig9_batches)
    networks

let render rng scale =
  let points = compute rng scale in
  let table =
    Report.render
      ~title:
        (Printf.sprintf
           "Fig 9: inference time vs model size (support=%g)"
           scale.Scale.fixed_support)
      ~header:[ "network"; "model size"; "batch"; "time (s)"; "ms/tuple" ]
      (List.map
         (fun p ->
           Report.
             [
               S p.network; F p.model_size; I p.batch; F p.seconds;
               F (1000. *. p.seconds /. float_of_int p.batch);
             ])
         points)
  in
  let fits =
    List.filter_map
      (fun batch ->
        let pts =
          List.filter_map
            (fun p ->
              if p.batch = batch then Some (p.model_size, p.seconds) else None)
            points
        in
        let distinct_x =
          List.sort_uniq compare (List.map fst pts)
        in
        if List.length distinct_x < 2 then None
        else
          let slope, intercept = Prob.Stats.linear_fit pts in
          Some
            (Printf.sprintf
               "regression (batch %d): time = %.3e * model_size + %.3e" batch
               slope intercept))
      scale.Scale.fig9_batches
  in
  table ^ String.concat "\n" fits ^ if fits = [] then "" else "\n"
