lib/experiments/fig11.mli: Mrsl Prob Scale
