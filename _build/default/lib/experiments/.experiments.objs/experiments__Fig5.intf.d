lib/experiments/fig5.mli: Framework Mrsl Prob Scale
