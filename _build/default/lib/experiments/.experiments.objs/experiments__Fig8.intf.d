lib/experiments/fig8.mli: Prob Scale
