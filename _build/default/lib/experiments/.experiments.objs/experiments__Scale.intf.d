lib/experiments/scale.mli:
