lib/experiments/fig9.mli: Prob Scale
