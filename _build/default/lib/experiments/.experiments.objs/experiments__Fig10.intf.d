lib/experiments/fig10.mli: Prob Scale
