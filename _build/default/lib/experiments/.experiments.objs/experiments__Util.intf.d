lib/experiments/util.mli:
