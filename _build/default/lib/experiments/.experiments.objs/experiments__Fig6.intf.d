lib/experiments/fig6.mli: Fig5 Prob Scale
