lib/experiments/util.ml: List
