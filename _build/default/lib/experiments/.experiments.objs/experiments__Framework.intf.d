lib/experiments/framework.mli: Bayesnet Mrsl Prob Relation Scale
