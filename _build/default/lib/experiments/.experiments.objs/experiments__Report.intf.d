lib/experiments/report.mli:
