lib/experiments/ablations.ml: Bayesnet Domain Framework List Mrsl Printf Prob Report Scale String Util
