lib/experiments/fig5.ml: Bayesnet Framework List Mrsl Printf Report Scale Util
