lib/experiments/framework.ml: Array Bayesnet Float Fun List Mrsl Prob Relation Scale Unix
