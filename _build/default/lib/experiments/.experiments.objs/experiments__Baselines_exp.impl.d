lib/experiments/baselines_exp.ml: Array Baselines Bayesnet Framework List Mrsl Printf Prob Relation Report Scale
