lib/experiments/fig10.ml: Bayesnet Float Framework Int List Printf Report Scale String
