lib/experiments/table2.mli: Framework Mrsl Prob Scale
