lib/experiments/missingness_exp.mli: Prob Scale
