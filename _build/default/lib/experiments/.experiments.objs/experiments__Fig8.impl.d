lib/experiments/fig8.ml: Bayesnet Framework List Mrsl Report Scale String
