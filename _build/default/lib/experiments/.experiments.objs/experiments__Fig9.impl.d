lib/experiments/fig9.ml: Bayesnet Framework List Mrsl Printf Prob Report Scale String Util
