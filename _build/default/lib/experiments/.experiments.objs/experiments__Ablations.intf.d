lib/experiments/ablations.mli: Mrsl Prob Scale
