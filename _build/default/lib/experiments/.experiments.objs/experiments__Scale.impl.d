lib/experiments/scale.ml: Printf Sys
