lib/experiments/missingness_exp.ml: Array Bayesnet List Mrsl Printf Prob Relation Report Scale
