lib/experiments/fig4.ml: Bayesnet Framework List Mrsl Printf Report Scale String Util
