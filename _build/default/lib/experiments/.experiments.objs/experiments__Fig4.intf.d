lib/experiments/fig4.mli: Prob Scale
