lib/experiments/fig6.ml: Fig5 List Printf Scale
