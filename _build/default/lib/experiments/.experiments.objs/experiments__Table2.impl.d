lib/experiments/table2.ml: Bayesnet Framework List Mrsl Printf Report Scale
