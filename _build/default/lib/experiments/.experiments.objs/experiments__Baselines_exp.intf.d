lib/experiments/baselines_exp.mli: Prob Scale
