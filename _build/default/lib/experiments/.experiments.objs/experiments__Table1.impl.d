lib/experiments/table1.ml: Bayesnet List Report
