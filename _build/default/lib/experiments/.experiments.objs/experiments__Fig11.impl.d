lib/experiments/fig11.ml: Bayesnet Framework Int List Mrsl Printf Report Scale String Util
