type point = { network : string; x : float; kl : float }

let eval rng scale (entry : Bayesnet.Catalog.entry) ~x =
  let reps =
    Framework.prepare rng scale entry ~train_size:scale.Scale.fixed_train
  in
  let accs =
    List.map
      (fun prepared ->
        let model, _ =
          Framework.learn_timed prepared ~support:scale.Scale.fixed_support
        in
        match
          Framework.eval_single rng prepared model
            ~methods:[ Mrsl.Voting.best_averaged ]
            ~max_tuples:scale.Scale.test_tuples
        with
        | [ (_, acc) ] -> acc
        | _ -> assert false)
      reps
  in
  { network = entry.id; x; kl = (Framework.merge accs).kl }

let compute_topology rng scale =
  List.map
    (fun (e : Bayesnet.Catalog.entry) ->
      eval rng scale e ~x:(float_of_int (Bayesnet.Topology.depth e.topology)))
    Bayesnet.Catalog.fig8_topology_networks

let compute_size rng scale =
  List.map
    (fun (e : Bayesnet.Catalog.entry) ->
      eval rng scale e ~x:(float_of_int (Bayesnet.Topology.size e.topology)))
    Bayesnet.Catalog.fig8_size_networks

let compute_cardinality rng scale =
  List.map
    (fun (e : Bayesnet.Catalog.entry) ->
      eval rng scale e ~x:(Bayesnet.Topology.average_cardinality e.topology))
    Bayesnet.Catalog.fig8_cardinality_networks

let render_panel ~title ~x_label points =
  Report.render ~title ~header:[ "network"; x_label; "avg KL" ]
    (List.map (fun p -> Report.[ S p.network; F p.x; F p.kl ]) points)

let render rng scale =
  String.concat "\n"
    [
      render_panel
        ~title:"Fig 8(a): KL vs network depth (BN18/BN19/BN20, best averaged)"
        ~x_label:"depth"
        (compute_topology rng scale);
      render_panel
        ~title:"Fig 8(b): KL vs number of attributes (crown networks)"
        ~x_label:"attrs"
        (compute_size rng scale);
      render_panel
        ~title:"Fig 8(c): KL vs attribute cardinality (line networks)"
        ~x_label:"card"
        (compute_cardinality rng scale);
    ]
