(** Fig 5 — KL divergence and top-1 accuracy of single-attribute inference
    as a function of training-set size, for the four voting methods, at the
    lowest support threshold. Averaged over the single-inference network
    set (capped by the scale preset). *)

type point = {
  x : float;  (** training-set size *)
  per_method : (Mrsl.Voting.method_ * Framework.accuracy) list;
}

val compute : Prob.Rng.t -> Scale.t -> point list
val render : Prob.Rng.t -> Scale.t -> string

(** {2 Shared with Fig 6 (same sweep over a different axis)} *)

val sweep : Prob.Rng.t -> Scale.t -> cells:(float * float * int) list ->
  point list
(** Each cell is [(x, support, train_size)]. *)

val render_points : title_kl:string -> title_top1:string -> x_label:string ->
  point list -> string
