(** Ablation studies for the design choices DESIGN.md calls out:

    - the Apriori [maxItemsets] early-termination cap (Section III claims
      it "effectively controls model-building time, without a significant
      effect on accuracy");
    - the CPD smoothing floor (Section III fixes 0.00001);
    - the Gibbs sampling strategy (Section VI-D claims tuple-DAG matches
      tuple-at-a-time accuracy; we also measure all-at-a-time);
    - the conditional-CPD memoization this implementation adds on top of
      the paper's design. *)

type max_itemsets_row = {
  cap : int;
  build_time : float;
  model_size : float;
  kl : float;
  top1 : float;
}

val max_itemsets : Prob.Rng.t -> Scale.t -> max_itemsets_row list

type smoothing_row = { floor : float; kl : float; top1 : float }

val smoothing : Prob.Rng.t -> Scale.t -> smoothing_row list

type strategy_row = {
  strategy : Mrsl.Workload.strategy;
  kl : float;  (** joint KL against the exact posterior *)
  tv_vs_baseline : float;
      (** mean total variation against tuple-at-a-time's estimates *)
  sweeps : int;
}

val strategies : Prob.Rng.t -> Scale.t -> strategy_row list

type miner_row = {
  miner : string;
  build_time : float;
  model_size : float;
  identical : bool;  (** same meta-rule count as the Apriori model *)
}

val miners : Prob.Rng.t -> Scale.t -> miner_row list
(** Section III's miner-independence claim: Apriori vs FP-Growth build
    time at low support, and whether the resulting models coincide. *)

type memo_row = {
  memoize : bool;
  seconds : float;
  cache_hits : int;
  cache_misses : int;
}

val memoization : Prob.Rng.t -> Scale.t -> memo_row list
(** This repo's own addition on top of the paper: the conditional-CPD memo
    table. Measures a fixed workload with the cache on and off. *)

type parallel_row = {
  domains : int;  (** 0 encodes the sequential tuple-DAG reference run *)
  seconds : float;
  sweeps : int;
}

val parallelism : Prob.Rng.t -> Scale.t -> parallel_row list
(** Multicore scaling of workload inference (this repo's [Mrsl.Parallel]):
    a sequential tuple-DAG run versus 2 and 4 domains, same workload, cache
    disabled so wall time tracks sampling work. *)

val render : Prob.Rng.t -> Scale.t -> string
