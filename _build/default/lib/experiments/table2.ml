type row = {
  network : string;
  per_method : (Mrsl.Voting.method_ * Framework.accuracy) list;
}

let compute rng scale =
  List.map
    (fun (entry : Bayesnet.Catalog.entry) ->
      let reps =
        Framework.prepare rng scale entry ~train_size:scale.Scale.fixed_train
      in
      let per_rep =
        List.map
          (fun prepared ->
            let model, _ =
              Framework.learn_timed prepared
                ~support:scale.Scale.fixed_support
            in
            Framework.eval_single rng prepared model
              ~methods:Mrsl.Voting.all_methods
              ~max_tuples:scale.Scale.test_tuples)
          reps
      in
      let per_method =
        List.map
          (fun m ->
            let accs =
              List.map
                (fun rep -> List.assq m rep)
                per_rep
            in
            (m, Framework.merge accs))
          Mrsl.Voting.all_methods
      in
      { network = entry.id; per_method })
    Bayesnet.Catalog.single_inference_networks

let render rng scale =
  let rows = compute rng scale in
  let table_rows =
    List.map
      (fun r ->
        Report.S r.network
        :: List.concat_map
             (fun (_, (a : Framework.accuracy)) ->
               [ Report.P a.top1; Report.F a.kl ])
             r.per_method)
      rows
  in
  Report.render
    ~title:
      (Printf.sprintf
         "Table II: single-variable inference accuracy (support=%g, train=%d)"
         scale.Scale.fixed_support scale.Scale.fixed_train)
    ~header:
      ("network"
      :: List.concat_map
           (fun m ->
             let n = Mrsl.Voting.method_name m in
             [ n ^ " top1"; n ^ " KL" ])
           Mrsl.Voting.all_methods)
    table_rows
