(** Small helpers shared by the experiment drivers. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them when the list is shorter). *)

val avg_by : ('a -> float) -> 'a list -> float
(** Mean of a projection; 0 on the empty list. *)
