(** Extension experiment: how robust is complete-case MRSL learning to the
    missingness mechanism?

    The paper's claim of mechanism-independence (Section I-B: no assumption
    on "how many" and "which" values are missing) is only evaluated with
    uniform masking (MCAR). Here the *entire* relation is corrupted under
    MCAR / MAR / MNAR (see [Relation.Missingness]), the model is learned
    from whatever remains complete — now a selection-biased sample under
    MAR and MNAR — and single-attribute inference on the incomplete tuples
    is scored against the exact BN posterior. *)

type row = {
  network : string;
  mechanism : string;
  complete_fraction : float;  (** share of tuples that stayed complete *)
  kl : float;
  top1 : float;
  tuples : int;  (** single-missing tuples scored *)
}

val compute : Prob.Rng.t -> Scale.t -> row list
val render : Prob.Rng.t -> Scale.t -> string
