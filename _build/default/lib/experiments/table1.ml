type row = {
  id : string;
  shape : string;
  num_attrs : int;
  avg_card : float;
  dom_size : float;
  depth : int;
  paper_num_attrs : int;
  paper_avg_card : float;
  paper_dom_size : float;
  paper_depth : int;
}

let compute () =
  List.map
    (fun (e : Bayesnet.Catalog.entry) ->
      {
        id = e.id;
        shape = e.shape;
        num_attrs = Bayesnet.Topology.size e.topology;
        avg_card = Bayesnet.Topology.average_cardinality e.topology;
        dom_size = Bayesnet.Topology.domain_size e.topology;
        depth = Bayesnet.Topology.depth e.topology;
        paper_num_attrs = e.paper_num_attrs;
        paper_avg_card = e.paper_avg_card;
        paper_dom_size = e.paper_dom_size;
        paper_depth = e.paper_depth;
      })
    Bayesnet.Catalog.all

let render () =
  let rows =
    List.map
      (fun r ->
        Report.
          [
            S r.id; S r.shape; I r.num_attrs; I r.paper_num_attrs;
            F r.avg_card; F r.paper_avg_card; F r.dom_size;
            F r.paper_dom_size; I r.depth; I r.paper_depth;
          ])
      (compute ())
  in
  Report.render
    ~title:"Table I: characteristics of the 20 Bayesian networks (ours vs paper)"
    ~header:
      [ "network"; "shape"; "attrs"; "attrs(p)"; "avg card"; "avg card(p)";
        "dom size"; "dom size(p)"; "depth"; "depth(p)" ]
    rows
