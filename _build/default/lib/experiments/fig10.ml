type point = {
  network : string;
  missing : int;
  points_per_tuple : int;
  kl : float;
  top1 : float;
}

let networks = [ "BN8"; "BN17"; "BN2" ]

let compute rng scale =
  List.concat_map
    (fun id ->
      let entry = Bayesnet.Catalog.find id in
      let arity = Bayesnet.Topology.size entry.topology in
      let reps =
        Framework.prepare rng scale entry ~train_size:scale.Scale.fixed_train
      in
      let models =
        List.map
          (fun prepared ->
            let model, _ =
              Framework.learn_timed prepared ~support:scale.Scale.fixed_support
            in
            (prepared, model))
          reps
      in
      List.concat_map
        (fun missing ->
          if missing >= arity then []
          else
            List.map
              (fun samples ->
                let accs =
                  List.map
                    (fun (prepared, model) ->
                      Framework.eval_joint rng prepared model ~missing ~samples
                        ~burn_in:scale.Scale.burn_in
                        ~max_tuples:scale.Scale.joint_test_tuples)
                    models
                in
                let acc = Framework.merge accs in
                {
                  network = id;
                  missing;
                  points_per_tuple = samples;
                  kl = acc.kl;
                  top1 = acc.top1;
                })
              scale.Scale.points_per_tuple)
        scale.Scale.fig10_missing)
    networks

let render rng scale =
  let points = compute rng scale in
  String.concat "\n"
    (List.map
       (fun id ->
         let mine = List.filter (fun p -> p.network = id) points in
         let missing_counts =
           List.sort_uniq Int.compare (List.map (fun p -> p.missing) mine)
         in
         let series =
           List.map (fun m -> Printf.sprintf "%d missing" m) missing_counts
         in
         Report.render_series
           ~title:(Printf.sprintf "Fig 10 (%s): KL vs points per tuple" id)
           ~x_label:"points/tuple" ~series
           (List.map
              (fun samples ->
                ( float_of_int samples,
                  List.map
                    (fun m ->
                      match
                        List.find_opt
                          (fun p ->
                            p.missing = m && p.points_per_tuple = samples)
                          mine
                      with
                      | Some p -> p.kl
                      | None -> Float.nan)
                    missing_counts ))
              scale.Scale.points_per_tuple))
       networks)
