(** Baseline comparison (beyond the paper's own figures, supporting its
    Section I motivation and the Section V independence discussion):
    multi-attribute inference accuracy and learning cost of

    - MRSL + ordered Gibbs (the paper's method),
    - MRSL independent-product (the naive approach of Section V),
    - a score-based learned Bayesian network with exact inference (the
      "expensive exact model" alternative of Section I-A),
    - a plain dependency network with exact-match/backoff conditionals
      (MRSL without the ensemble).

    All methods see the same training data and are scored against the
    exact posterior of the generating network. *)

type row = {
  network : string;
  method_name : string;
  learn_seconds : float;
  kl : float;
  top1 : float;
  tuples : int;
}

val networks : string list
(** The Fig 10 set: BN8, BN17, BN2. *)

val compute : Prob.Rng.t -> Scale.t -> row list
val render : Prob.Rng.t -> Scale.t -> string
