(** Fig 9 — single-attribute inference time as a function of model size,
    for several batch sizes, at the lowest support threshold. Each point
    is (model size, wall seconds for the whole batch); a least-squares line
    per batch size mirrors the paper's regression overlay. *)

type point = { network : string; model_size : float; batch : int; seconds : float }

val compute : Prob.Rng.t -> Scale.t -> point list
val render : Prob.Rng.t -> Scale.t -> string
