type strategy = Equal_width | Equal_frequency

let cut_points strategy ~bins values =
  if bins < 1 then invalid_arg "Discretize.cut_points: bins must be >= 1";
  if Array.length values = 0 then
    invalid_arg "Discretize.cut_points: no values";
  Array.iter
    (fun x ->
      if Float.is_nan x then invalid_arg "Discretize.cut_points: NaN value")
    values;
  match strategy with
  | Equal_width ->
      let lo = Array.fold_left Float.min values.(0) values in
      let hi = Array.fold_left Float.max values.(0) values in
      let width = (hi -. lo) /. float_of_int bins in
      Array.init (bins - 1) (fun i -> lo +. (width *. float_of_int (i + 1)))
  | Equal_frequency ->
      let sorted = Array.copy values in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      Array.init (bins - 1) (fun i ->
          let rank = (i + 1) * n / bins in
          sorted.(min rank (n - 1)))

let bucket_of cuts x =
  let n = Array.length cuts in
  let rec count i = if i < n && cuts.(i) <= x then count (i + 1) else i in
  count 0

let range_label cuts bucket =
  let n = Array.length cuts in
  let lo = if bucket = 0 then "-inf" else Printf.sprintf "%g" cuts.(bucket - 1) in
  let hi = if bucket = n then "+inf" else Printf.sprintf "%g" cuts.(bucket) in
  Printf.sprintf "[%s,%s)" lo hi

let column ?(strategy = Equal_frequency) ~bins ~name values =
  let present =
    Array.of_seq (Seq.filter_map Fun.id (Array.to_seq values))
  in
  let cuts = cut_points strategy ~bins present in
  let labels = List.init bins (range_label cuts) in
  (* Duplicate boundaries can make duplicate labels; disambiguate. *)
  let labels =
    List.mapi
      (fun i l ->
        let earlier = List.filteri (fun j _ -> j < i) labels in
        if List.mem l earlier then Printf.sprintf "%s#%d" l i else l)
      labels
  in
  let attr = Attribute.make name labels in
  let tuple = Array.map (Option.map (bucket_of cuts)) values in
  (attr, tuple)
