type mechanism =
  | Mcar of float
  | Mar of {
      trigger : int;
      value : int;
      p_match : float;
      p_other : float;
      targets : int list;
    }
  | Mnar of { target : int; value : int; p_match : float; p_other : float }

let name = function
  | Mcar _ -> "MCAR"
  | Mar _ -> "MAR"
  | Mnar _ -> "MNAR"

let check_prob p =
  if p < 0. || p > 1. then
    invalid_arg "Missingness: probabilities must be in [0, 1]"

let validate schema = function
  | Mcar p -> check_prob p
  | Mar { trigger; p_match; p_other; targets; _ } ->
      check_prob p_match;
      check_prob p_other;
      if trigger < 0 || trigger >= Schema.arity schema then
        invalid_arg "Missingness: trigger out of range";
      List.iter
        (fun a ->
          if a < 0 || a >= Schema.arity schema then
            invalid_arg "Missingness: target out of range";
          if a = trigger then
            invalid_arg "Missingness: trigger cannot be a target")
        targets
  | Mnar { target; p_match; p_other; _ } ->
      check_prob p_match;
      check_prob p_other;
      if target < 0 || target >= Schema.arity schema then
        invalid_arg "Missingness: target out of range"

let mask rng mechanism inst =
  let schema = Instance.schema inst in
  validate schema mechanism;
  let mask_tuple tup =
    let tup = Array.copy tup in
    (match mechanism with
    | Mcar p ->
        Array.iteri
          (fun a v ->
            if v <> None && Prob.Rng.float rng < p then tup.(a) <- None)
          tup
    | Mar { trigger; value; p_match; p_other; targets } ->
        let p =
          match tup.(trigger) with
          | Some v when v = value -> p_match
          | Some _ -> p_other
          | None -> p_other
        in
        List.iter
          (fun a ->
            if tup.(a) <> None && Prob.Rng.float rng < p then tup.(a) <- None)
          targets
    | Mnar { target; value; p_match; p_other } -> (
        match tup.(target) with
        | Some v ->
            let p = if v = value then p_match else p_other in
            if Prob.Rng.float rng < p then tup.(target) <- None
        | None -> ()));
    tup
  in
  Instance.make schema (List.map mask_tuple (Array.to_list (Instance.tuples inst)))

let expected_missing_rate mechanism schema =
  let arity = float_of_int (Schema.arity schema) in
  match mechanism with
  | Mcar p -> p
  | Mar { trigger; value; p_match; p_other; targets; _ } ->
      let trigger_card =
        float_of_int (Schema.cardinality schema trigger)
      in
      ignore value;
      let p_avg =
        (p_match /. trigger_card)
        +. (p_other *. (trigger_card -. 1.) /. trigger_card)
      in
      p_avg *. float_of_int (List.length targets) /. arity
  | Mnar { target; value; p_match; p_other } ->
      let card = float_of_int (Schema.cardinality schema target) in
      ignore value;
      ((p_match /. card) +. (p_other *. (card -. 1.) /. card)) /. arity
