(** Discrete finite-valued attributes.

    The paper limits discussion to discrete finite domains, bucketing
    continuous attributes (Section II). An attribute couples a name with an
    ordered array of value labels; tuples store *value indices* into that
    array, which keeps mining and sampling allocation-free. *)

type t = private { name : string; values : string array }

val make : string -> string list -> t
(** [make name values] builds an attribute. Raises [Invalid_argument] on an
    empty name, an empty value list, duplicate values, or a value equal to
    the missing-value marker ["?"]. *)

val indexed : string -> int -> t
(** [indexed name card] builds an attribute with values ["v0" … "v<card-1>"]
    — the synthetic-domain constructor used by the Bayesian-network
    benchmark. *)

val name : t -> string
val cardinality : t -> int

val value_label : t -> int -> string
(** Label of a value index. Raises [Invalid_argument] when out of range. *)

val value_index : t -> string -> int
(** Index of a label. Raises [Not_found] for an unknown label. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
