type attribute_summary = {
  attr : int;
  name : string;
  cardinality : int;
  missing_rate : float;
  entropy : float;
  modal_value : string;
}

type pair_mi = { a : int; b : int; mi : float; normalized : float }

let entropy_of_counts counts total =
  if total = 0 then 0.
  else
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. float_of_int total in
          acc -. (p *. log p))
      0. counts

let attributes inst =
  let schema = Instance.schema inst in
  let n = Instance.size inst in
  let tuples = Instance.tuples inst in
  List.init (Schema.arity schema) (fun a ->
      let attr = Schema.attribute schema a in
      let counts = Array.make (Attribute.cardinality attr) 0 in
      let missing = ref 0 in
      Array.iter
        (fun tup ->
          match tup.(a) with
          | Some v -> counts.(v) <- counts.(v) + 1
          | None -> incr missing)
        tuples;
      let observed = n - !missing in
      let modal = ref 0 in
      Array.iteri (fun v c -> if c > counts.(!modal) then modal := v) counts;
      {
        attr = a;
        name = Attribute.name attr;
        cardinality = Attribute.cardinality attr;
        missing_rate =
          (if n = 0 then 0. else float_of_int !missing /. float_of_int n);
        entropy = entropy_of_counts counts observed;
        modal_value = Attribute.value_label attr !modal;
      })

let mutual_information inst =
  let schema = Instance.schema inst in
  let points = Instance.complete_part inst in
  let n = Array.length points in
  if n < 2 then []
  else begin
    let arity = Schema.arity schema in
    let marginal a =
      let counts = Array.make (Schema.cardinality schema a) 0 in
      Array.iter (fun p -> counts.(p.(a)) <- counts.(p.(a)) + 1) points;
      counts
    in
    let marginals = Array.init arity marginal in
    let entropies =
      Array.map (fun counts -> entropy_of_counts counts n) marginals
    in
    let pairs = ref [] in
    for a = 0 to arity - 1 do
      for b = a + 1 to arity - 1 do
        let ca = Schema.cardinality schema a in
        let cb = Schema.cardinality schema b in
        let joint = Array.make_matrix ca cb 0 in
        Array.iter
          (fun p -> joint.(p.(a)).(p.(b)) <- joint.(p.(a)).(p.(b)) + 1)
          points;
        let mi = ref 0. in
        for va = 0 to ca - 1 do
          for vb = 0 to cb - 1 do
            let c = joint.(va).(vb) in
            if c > 0 then begin
              let pxy = float_of_int c /. float_of_int n in
              let px = float_of_int marginals.(a).(va) /. float_of_int n in
              let py = float_of_int marginals.(b).(vb) /. float_of_int n in
              mi := !mi +. (pxy *. log (pxy /. (px *. py)))
            end
          done
        done;
        let mi = Float.max 0. !mi in
        let h_min = Float.min entropies.(a) entropies.(b) in
        pairs :=
          {
            a;
            b;
            mi;
            normalized = (if h_min <= 1e-12 then 0. else mi /. h_min);
          }
          :: !pairs
      done
    done;
    List.sort (fun x y -> Float.compare y.mi x.mi) !pairs
  end

let render inst =
  let schema = Instance.schema inst in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d tuples (%d complete)\n\n" (Instance.size inst)
       (Array.length (Instance.complete_part inst)));
  Buffer.add_string buf
    (Printf.sprintf "%-16s %6s %9s %9s %s\n" "attribute" "card"
       "missing" "entropy" "mode");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %6d %8.1f%% %9.3f %s\n" s.name s.cardinality
           (100. *. s.missing_rate) s.entropy s.modal_value))
    (attributes inst);
  let mis = mutual_information inst in
  if mis <> [] then begin
    Buffer.add_string buf "\npairwise mutual information (complete part):\n";
    List.iter
      (fun p ->
        Buffer.add_string buf
          (Printf.sprintf "  %s ~ %s  MI %.4f  (normalized %.3f)\n"
             (Attribute.name (Schema.attribute schema p.a))
             (Attribute.name (Schema.attribute schema p.b))
             p.mi p.normalized))
      mis
  end;
  Buffer.contents buf
