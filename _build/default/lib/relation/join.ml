let primary_foreign ~fact ~fk ~dim ~pk =
  let fact_schema = Instance.schema fact in
  let dim_schema = Instance.schema dim in
  if fk < 0 || fk >= Schema.arity fact_schema then
    invalid_arg "Join.primary_foreign: fk out of range";
  if pk < 0 || pk >= Schema.arity dim_schema then
    invalid_arg "Join.primary_foreign: pk out of range";
  let pk_attr = Schema.attribute dim_schema pk in
  (* Index dimension tuples by key label, checking key-ness as we go. *)
  let by_key = Hashtbl.create 64 in
  Array.iter
    (fun tup ->
      match tup.(pk) with
      | None ->
          invalid_arg
            "Join.primary_foreign: dimension key column has missing values"
      | Some v ->
          let label = Attribute.value_label pk_attr v in
          if Hashtbl.mem by_key label then
            invalid_arg "Join.primary_foreign: duplicate dimension key";
          Hashtbl.add by_key label tup)
    (Instance.tuples dim);
  (* Joined schema: all fact attributes, then the dimension's non-key
     attributes, renamed to stay unique. *)
  let prefix = Attribute.name pk_attr ^ "_" in
  let dim_positions =
    List.filter (fun i -> i <> pk) (List.init (Schema.arity dim_schema) Fun.id)
  in
  let appended =
    List.map
      (fun i ->
        let a = Schema.attribute dim_schema i in
        Attribute.make
          (prefix ^ Attribute.name a)
          (List.init (Attribute.cardinality a) (Attribute.value_label a)))
      dim_positions
  in
  let joined_schema =
    Schema.make
      (Array.to_list (Schema.attributes fact_schema) @ appended)
  in
  let fk_attr = Schema.attribute fact_schema fk in
  let join_tuple tup =
    let extension =
      match tup.(fk) with
      | None -> List.map (fun _ -> None) dim_positions
      | Some v -> (
          match Hashtbl.find_opt by_key (Attribute.value_label fk_attr v) with
          | None -> List.map (fun _ -> None) dim_positions
          | Some dim_tup -> List.map (fun i -> dim_tup.(i)) dim_positions)
    in
    Array.append tup (Array.of_list extension)
  in
  Instance.make joined_schema
    (List.map join_tuple (Array.to_list (Instance.tuples fact)))
