(** Dataset profiling for incomplete relations.

    Before learning an MRSL model it helps to know where the holes are and
    which attributes actually co-vary — the support threshold and the
    voting method both interact with correlation strength (Section VI-C).
    This module computes per-attribute summaries and pairwise mutual
    information over the complete part. *)

type attribute_summary = {
  attr : int;
  name : string;
  cardinality : int;
  missing_rate : float;  (** share of tuples missing this attribute *)
  entropy : float;  (** of the observed value distribution, in nats *)
  modal_value : string;  (** most frequent observed label *)
}

type pair_mi = { a : int; b : int; mi : float; normalized : float }
(** [normalized] divides MI by the smaller attribute entropy — 0 for
    independent attributes, 1 when one determines the other (0 when either
    entropy vanishes). *)

val attributes : Instance.t -> attribute_summary list
(** Per-attribute summaries, in schema order. Entropy and the modal value
    are computed over observed (non-missing) cells; both default to 0 /
    first label when a column is entirely missing. *)

val mutual_information : Instance.t -> pair_mi list
(** Pairwise MI over [Rc] (the complete tuples), all unordered pairs,
    sorted by descending MI. Empty when fewer than 2 complete tuples. *)

val render : Instance.t -> string
(** Both tables as text. *)
