(** Minimal CSV reader/writer for relation instances.

    Hand-rolled (the container has no CSV package): comma-separated, first
    row is the header, ["?"] (or an empty cell) marks a missing value,
    double-quoted fields with doubled inner quotes are supported. *)

val parse_line : string -> string list
(** Split one CSV record into fields. Raises [Failure] on an unterminated
    quoted field. *)

val escape_field : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val read_string : ?schema:Schema.t -> string -> Instance.t
(** Parse a whole CSV document. Without [schema], the domain of each column
    is the set of distinct non-missing values in file order. With [schema],
    column count and value labels are validated against it. Raises
    [Failure] on ragged rows, an empty document, or (with [schema]) unknown
    labels. *)

val read_file : ?schema:Schema.t -> string -> Instance.t

val write_string : Instance.t -> string
(** Render an instance back to CSV, using ["?"] for missing values. *)

val write_file : string -> Instance.t -> unit
