(** Complete and incomplete tuples (paper Definitions 2.1–2.4).

    A tuple over a schema of arity [n] is an [int option array] of length
    [n]: [Some v] assigns value index [v] to the attribute at that position,
    [None] marks a missing value ("?"). A *point* (complete tuple) is a plain
    [int array]. The representation is deliberately concrete: tuples are the
    data plane of the mining and sampling loops. *)

type t = int option array

val of_point : int array -> t
(** Embed a complete tuple. *)

val to_point : t -> int array option
(** [Some point] when the tuple is complete, [None] otherwise. *)

val is_complete : t -> bool

val known : t -> (int * int) list
(** [(attribute index, value)] pairs of the complete portion, in position
    order. *)

val known_count : t -> int

val missing : t -> int list
(** Attribute indices with missing values, in position order. *)

val missing_count : t -> int

val matches : point:int array -> t -> bool
(** [matches ~point t]: the point agrees with [t] on every attribute of
    [t]'s complete portion (Def 2.3). Lengths must agree. *)

val subsumes : t -> t -> bool
(** [subsumes t1 t2] holds when [t2 ≺ t1] (Def 2.4): the complete portion
    of [t1] is a *proper* subset of that of [t2], with equal values on the
    shared attributes. *)

val agrees_on_known : t -> t -> bool
(** [agrees_on_known t1 t2]: on every attribute known in both, the values
    coincide. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Schema.t -> Format.formatter -> t -> unit
(** Render with value labels, using ["?"] for missing. *)

val to_string : Schema.t -> t -> string

module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
