type t = { name : string; values : string array }

let missing_marker = "?"

let make name values =
  if name = "" then invalid_arg "Attribute.make: empty name";
  if values = [] then invalid_arg "Attribute.make: empty domain";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if v = missing_marker then
        invalid_arg "Attribute.make: \"?\" is reserved for missing values";
      if Hashtbl.mem seen v then
        invalid_arg ("Attribute.make: duplicate value " ^ v);
      Hashtbl.add seen v ())
    values;
  { name; values = Array.of_list values }

let indexed name card =
  if card < 1 then invalid_arg "Attribute.indexed: cardinality must be >= 1";
  make name (List.init card (fun i -> "v" ^ string_of_int i))

let name t = t.name
let cardinality t = Array.length t.values

let value_label t i =
  if i < 0 || i >= Array.length t.values then
    invalid_arg
      (Printf.sprintf "Attribute.value_label: %d out of range for %s" i t.name);
  t.values.(i)

let value_index t label =
  let n = Array.length t.values in
  let rec find i =
    if i = n then raise Not_found
    else if t.values.(i) = label then i
    else find (i + 1)
  in
  find 0

let equal a b = a.name = b.name && a.values = b.values

let pp ppf t =
  Format.fprintf ppf "%s{%a}" t.name
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_string)
    t.values
