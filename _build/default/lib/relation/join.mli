(** Primary–foreign-key joins between relation instances.

    The paper (Section I-B) notes that correlations holding *across*
    relations can be exploited "by computing a primary-foreign key join when
    appropriate" and then learning over the joined relation. This module
    provides that join for categorical instances: the foreign-key attribute
    of the fact relation refers to the primary-key attribute of the
    dimension relation by *value label*. *)

val primary_foreign :
  fact:Instance.t -> fk:int -> dim:Instance.t -> pk:int -> Instance.t
(** [primary_foreign ~fact ~fk ~dim ~pk] joins each fact tuple with the
    dimension tuple whose [pk] value label equals the fact's [fk] value
    label, appending the dimension's non-key attributes (prefixed with the
    dimension key attribute's name to keep schema names unique).

    - A fact tuple with a missing foreign key, or one referencing a key
      absent from the dimension, keeps all appended attributes missing —
      exactly the incomplete-tuple semantics the MRSL pipeline expects.
    - Missing values inside the matched dimension tuple stay missing.

    Raises [Invalid_argument] if [pk] is not key-like in [dim] (a complete
    column with distinct values), or on out-of-range attribute indices. *)
