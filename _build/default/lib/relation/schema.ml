type t = { attrs : Attribute.t array; by_name : (string, int) Hashtbl.t }

let make attrs =
  if attrs = [] then invalid_arg "Schema.make: empty attribute list";
  let arr = Array.of_list attrs in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i a ->
      let n = Attribute.name a in
      if Hashtbl.mem by_name n then
        invalid_arg ("Schema.make: duplicate attribute " ^ n);
      Hashtbl.add by_name n i)
    arr;
  { attrs = arr; by_name }

let of_cardinalities ?(prefix = "a") cards =
  if cards = [] then invalid_arg "Schema.of_cardinalities: empty list";
  make
    (List.mapi
       (fun i card -> Attribute.indexed (prefix ^ string_of_int i) card)
       cards)

let arity t = Array.length t.attrs

let attribute t i =
  if i < 0 || i >= Array.length t.attrs then
    invalid_arg "Schema.attribute: index out of range";
  t.attrs.(i)

let attributes t = Array.copy t.attrs

let index_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let cardinality t i = Attribute.cardinality (attribute t i)

let domain_size t =
  Array.fold_left
    (fun acc a -> acc *. float_of_int (Attribute.cardinality a))
    1. t.attrs

let equal a b =
  Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 Attribute.equal a.attrs b.attrs

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Attribute.pp)
    t.attrs
