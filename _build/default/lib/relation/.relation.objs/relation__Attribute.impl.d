lib/relation/attribute.ml: Array Format Hashtbl List Printf
