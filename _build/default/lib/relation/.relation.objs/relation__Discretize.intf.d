lib/relation/discretize.mli: Attribute Tuple
