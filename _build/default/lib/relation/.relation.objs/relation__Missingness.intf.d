lib/relation/missingness.mli: Instance Prob Schema
