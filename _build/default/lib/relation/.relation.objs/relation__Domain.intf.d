lib/relation/domain.mli:
