lib/relation/discretize.ml: Array Attribute Float Fun List Option Printf Seq
