lib/relation/csv_io.ml: Array Attribute Buffer Fun In_channel Instance List Printf Schema String
