lib/relation/attribute.mli: Format
