lib/relation/tuple.ml: Array Attribute Format Hashtbl Option Schema Set Stdlib
