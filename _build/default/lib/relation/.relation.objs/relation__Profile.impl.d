lib/relation/profile.ml: Array Attribute Buffer Float Instance List Printf Schema
