lib/relation/instance.mli: Format Prob Schema Tuple
