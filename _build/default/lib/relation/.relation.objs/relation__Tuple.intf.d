lib/relation/tuple.mli: Format Hashtbl Schema Set
