lib/relation/instance.ml: Array Attribute Float Format Fun List Printf Prob Schema Seq Tuple
