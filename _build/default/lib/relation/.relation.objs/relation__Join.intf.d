lib/relation/join.mli: Instance
