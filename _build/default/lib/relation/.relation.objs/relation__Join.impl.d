lib/relation/join.ml: Array Attribute Fun Hashtbl Instance List Schema
