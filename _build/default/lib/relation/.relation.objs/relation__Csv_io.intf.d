lib/relation/csv_io.mli: Instance Schema
