lib/relation/domain.ml: Array
