lib/relation/missingness.ml: Array Instance List Prob Schema
