lib/relation/profile.mli: Instance
