(** Discretization of continuous attributes.

    The paper limits itself to discrete finite domains and proposes "to
    break up the domains of continuous attributes into sub-ranges, treating
    each sub-range as a discrete value" (Section II). This module performs
    that bucketing for numeric columns, preserving missing values. *)

type strategy =
  | Equal_width  (** bins of equal numeric width over [min, max] *)
  | Equal_frequency  (** bins holding (approximately) equal point counts *)

val cut_points : strategy -> bins:int -> float array -> float array
(** [cut_points strategy ~bins values] — the [bins - 1] interior
    boundaries. Requires [bins >= 1], at least one finite value, and no
    NaNs. Boundaries are non-decreasing; duplicate boundaries (possible
    under [Equal_frequency] with heavy ties) are allowed and simply leave
    some buckets empty. *)

val bucket_of : float array -> float -> int
(** [bucket_of cuts x] — index of the bucket containing [x]: the number of
    boundaries ≤ [x]. *)

val column : ?strategy:strategy -> bins:int -> name:string ->
  float option array -> Attribute.t * Tuple.t
(** Discretize one column ([None] = missing). Returns the bucketed
    attribute — its value labels spell out the sub-ranges, e.g.
    ["[1.5,2.75)"] — and the column of bucket indices (a tuple in column
    orientation). [strategy] defaults to [Equal_frequency]. *)
