(** Mixed-radix encodings of joint value assignments.

    Joint distributions over a set of attributes (the Cartesian product of
    their domains — the "dom. size" of Table I) are represented as flat
    distributions indexed by a mixed-radix code: the first attribute varies
    slowest. Shared by exact BN posteriors, Gibbs estimates, and the
    probabilistic-database blocks, so the codes line up across modules. *)

val count : int array -> int
(** Product of the radices. Raises [Invalid_argument] if any radix < 1 or
    the product overflows [max_int]. *)

val encode : int array -> int array -> int
(** [encode cards values] — the code of a joint assignment. Requires equal
    lengths and each value within its radix. *)

val decode : int array -> int -> int array
(** Inverse of {!encode}. *)

val iter : int array -> (int -> int array -> unit) -> unit
(** [iter cards f] calls [f code values] for every assignment in code
    order. The [values] array is reused between calls; copy it to keep it. *)
