type t = { schema : Schema.t; tuples : Tuple.t array }

let validate schema tup =
  if Array.length tup <> Schema.arity schema then
    invalid_arg "Instance.make: tuple arity does not match schema";
  Array.iteri
    (fun i v ->
      match v with
      | None -> ()
      | Some x ->
          if x < 0 || x >= Schema.cardinality schema i then
            invalid_arg
              (Printf.sprintf
                 "Instance.make: value %d out of range for attribute %s" x
                 (Attribute.name (Schema.attribute schema i))))
    tup

let make schema tuples =
  List.iter (validate schema) tuples;
  { schema; tuples = Array.of_list tuples }

let of_points schema points =
  make schema (List.map Tuple.of_point points)

let schema t = t.schema
let size t = Array.length t.tuples
let tuples t = Array.copy t.tuples

let complete_part t =
  Array.of_seq
    (Seq.filter_map Tuple.to_point (Array.to_seq t.tuples))

let incomplete_part t =
  Array.of_seq
    (Seq.filter (fun tup -> not (Tuple.is_complete tup)) (Array.to_seq t.tuples))

let support t tup =
  let points = complete_part t in
  let n = Array.length points in
  if n = 0 then 0.
  else begin
    let hits = ref 0 in
    Array.iter (fun p -> if Tuple.matches ~point:p tup then incr hits) points;
    float_of_int !hits /. float_of_int n
  end

let split rng ~train_fraction t =
  if train_fraction <= 0. || train_fraction >= 1. then
    invalid_arg "Instance.split: train_fraction must be in (0, 1)";
  let order = Array.init (Array.length t.tuples) Fun.id in
  Prob.Rng.shuffle rng order;
  let n_train =
    int_of_float (Float.round (train_fraction *. float_of_int (Array.length order)))
  in
  let n_train = max 1 (min (Array.length order - 1) n_train) in
  let pick lo hi = Array.init (hi - lo) (fun i -> t.tuples.(order.(lo + i))) in
  ( { schema = t.schema; tuples = pick 0 n_train },
    { schema = t.schema; tuples = pick n_train (Array.length order) } )

let mask_one rng ~missing tup =
  let n = Array.length tup in
  if missing < 0 || missing > n then invalid_arg "Instance.mask_exact: missing";
  let masked = Array.copy tup in
  let already = Tuple.missing_count tup in
  if already < missing then begin
    let known_idx =
      Array.of_list (List.map fst (Tuple.known tup))
    in
    let extra =
      Prob.Rng.sample_without_replacement rng (missing - already)
        (Array.length known_idx)
    in
    List.iter (fun j -> masked.(known_idx.(j)) <- None) extra
  end;
  masked

let mask_exact rng ~missing t =
  { t with tuples = Array.map (mask_one rng ~missing) t.tuples }

let mask_uniform rng ~max_missing t =
  if max_missing < 1 || max_missing > Schema.arity t.schema then
    invalid_arg "Instance.mask_uniform: max_missing out of range";
  let mask tup =
    let k = 1 + Prob.Rng.int rng max_missing in
    mask_one rng ~missing:(max k (Tuple.missing_count tup)) tup
  in
  { t with tuples = Array.map mask t.tuples }

let append a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Instance.append: schema mismatch";
  { schema = a.schema; tuples = Array.append a.tuples b.tuples }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a: %d tuples@,%a@]" Schema.pp t.schema
    (Array.length t.tuples)
    (Format.pp_print_seq
       ~pp_sep:Format.pp_print_cut
       (Tuple.pp t.schema))
    (Array.to_seq t.tuples)
