(** Relation schemas: an ordered collection of discrete attributes. *)

type t

val make : Attribute.t list -> t
(** Raises [Invalid_argument] on an empty list or duplicate attribute
    names. *)

val of_cardinalities : ?prefix:string -> int list -> t
(** [of_cardinalities [c0; c1; …]] builds a synthetic schema with attributes
    [a0 : c0 values], [a1 : c1 values], … — the benchmark constructor.
    [prefix] defaults to ["a"]. *)

val arity : t -> int
val attribute : t -> int -> Attribute.t
val attributes : t -> Attribute.t array

val index_of : t -> string -> int
(** Position of a named attribute. Raises [Not_found]. *)

val cardinality : t -> int -> int
(** Cardinality of the attribute at a position. *)

val domain_size : t -> float
(** Product of all cardinalities (the "dom. size" column of Table I), as a
    float since it reaches 518,400 in the paper and can overflow quickly on
    wider schemas. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
