let missing_marker = "?"

let parse_line line =
  let n = String.length line in
  let buf = Buffer.create 32 in
  let fields = ref [] in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* Two-state scanner: inside/outside a quoted field. *)
  let rec outside i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          outside (i + 1)
      | '"' -> inside (i + 1)
      | c ->
          Buffer.add_char buf c;
          outside (i + 1)
  and inside i =
    if i >= n then failwith "Csv_io.parse_line: unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          inside (i + 2)
      | '"' -> outside (i + 1)
      | c ->
          Buffer.add_char buf c;
          inside (i + 1)
  in
  outside 0;
  List.rev !fields

let escape_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let non_empty_lines text =
  String.split_on_char '\n' text
  |> List.map (fun l ->
         if String.length l > 0 && l.[String.length l - 1] = '\r' then
           String.sub l 0 (String.length l - 1)
         else l)
  |> List.filter (fun l -> String.trim l <> "")

let is_missing field = field = missing_marker || String.trim field = ""

let infer_schema header rows =
  let ncols = List.length header in
  let domains = Array.make ncols [] in
  List.iter
    (fun row ->
      List.iteri
        (fun i field ->
          if (not (is_missing field)) && not (List.mem field domains.(i)) then
            domains.(i) <- domains.(i) @ [ field ])
        row)
    rows;
  let attrs =
    List.mapi
      (fun i name ->
        let dom = if domains.(i) = [] then [ "v0" ] else domains.(i) in
        Attribute.make name dom)
      header
  in
  Schema.make attrs

let read_string ?schema text =
  match non_empty_lines text with
  | [] -> failwith "Csv_io.read_string: empty document"
  | header_line :: data_lines ->
      let header = parse_line header_line in
      let ncols = List.length header in
      let rows =
        List.mapi
          (fun lineno line ->
            let row = parse_line line in
            if List.length row <> ncols then
              failwith
                (Printf.sprintf
                   "Csv_io.read_string: row %d has %d fields, expected %d"
                   (lineno + 2) (List.length row) ncols);
            row)
          data_lines
      in
      let schema =
        match schema with
        | Some s ->
            if Schema.arity s <> ncols then
              failwith "Csv_io.read_string: column count does not match schema";
            s
        | None -> infer_schema header rows
      in
      let decode row =
        Array.of_list
          (List.mapi
             (fun i field ->
               if is_missing field then None
               else
                 let attr = Schema.attribute schema i in
                 match Attribute.value_index attr field with
                 | v -> Some v
                 | exception Not_found ->
                     failwith
                       (Printf.sprintf
                          "Csv_io.read_string: unknown value %S for attribute %s"
                          field (Attribute.name attr)))
             row)
      in
      Instance.make schema (List.map decode rows)

let read_file ?schema path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> read_string ?schema (In_channel.input_all ic))

let write_string inst =
  let schema = Instance.schema inst in
  let buf = Buffer.create 1024 in
  let row fields =
    Buffer.add_string buf (String.concat "," (List.map escape_field fields));
    Buffer.add_char buf '\n'
  in
  row
    (Array.to_list
       (Array.map Attribute.name (Schema.attributes schema)));
  Array.iter
    (fun tup ->
      row
        (List.mapi
           (fun i v ->
             match v with
             | None -> missing_marker
             | Some x -> Attribute.value_label (Schema.attribute schema i) x)
           (Array.to_list tup)))
    (Instance.tuples inst);
  Buffer.contents buf

let write_file path inst =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write_string inst))
