(** Relation instances: a schema plus a bag of (possibly incomplete) tuples.

    The paper views a relation [R] as the disjoint union of its complete part
    [Rc] (points) and incomplete part [Ri] (Section II). *)

type t

val make : Schema.t -> Tuple.t list -> t
(** Validates every tuple: correct arity, every value index within its
    attribute's domain. Raises [Invalid_argument] otherwise. *)

val of_points : Schema.t -> int array list -> t
(** Build a fully complete relation. *)

val schema : t -> Schema.t
val size : t -> int
val tuples : t -> Tuple.t array

val complete_part : t -> int array array
(** [Rc] — the points, in order of appearance. *)

val incomplete_part : t -> Tuple.t array
(** [Ri] — tuples with at least one missing value, in order. *)

val support : t -> Tuple.t -> float
(** [support r t] — fraction of [Rc] matching the incomplete tuple [t]
    (Def 2.3). 0 when [Rc] is empty. *)

val split : Prob.Rng.t -> train_fraction:float -> t -> t * t
(** Random (train, test) partition of the tuples. [train_fraction] in
    (0, 1). *)

val mask_exact : Prob.Rng.t -> missing:int -> t -> t
(** Replace exactly [missing] attribute values, chosen uniformly at random,
    in each tuple (the paper's test-set processing). Requires
    [0 <= missing <= arity]. Tuples that already have missing values keep
    them and lose additional ones up to the target count. *)

val mask_uniform : Prob.Rng.t -> max_missing:int -> t -> t
(** Per tuple, draw the number of values to blank uniformly from
    [1 .. max_missing], then blank that many uniformly chosen attributes. *)

val append : t -> t -> t
(** Concatenate two instances over equal schemas. *)

val pp : Format.formatter -> t -> unit
