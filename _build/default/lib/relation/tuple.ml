type t = int option array

let of_point p = Array.map (fun v -> Some v) p

let is_complete t = Array.for_all Option.is_some t

let to_point t =
  if is_complete t then Some (Array.map Option.get t) else None

let known t =
  let acc = ref [] in
  for i = Array.length t - 1 downto 0 do
    match t.(i) with Some v -> acc := (i, v) :: !acc | None -> ()
  done;
  !acc

let known_count t =
  Array.fold_left (fun n v -> if Option.is_some v then n + 1 else n) 0 t

let missing t =
  let acc = ref [] in
  for i = Array.length t - 1 downto 0 do
    match t.(i) with None -> acc := i :: !acc | Some _ -> ()
  done;
  !acc

let missing_count t = Array.length t - known_count t

let matches ~point t =
  if Array.length point <> Array.length t then
    invalid_arg "Tuple.matches: arity mismatch";
  let n = Array.length t in
  let rec check i =
    i = n
    || (match t.(i) with Some v -> point.(i) = v | None -> true) && check (i + 1)
  in
  check 0

let agrees_on_known t1 t2 =
  if Array.length t1 <> Array.length t2 then
    invalid_arg "Tuple.agrees_on_known: arity mismatch";
  let n = Array.length t1 in
  let rec check i =
    i = n
    ||
    (match (t1.(i), t2.(i)) with
    | Some a, Some b -> a = b
    | _ -> true)
    && check (i + 1)
  in
  check 0

let subsumes t1 t2 =
  if Array.length t1 <> Array.length t2 then
    invalid_arg "Tuple.subsumes: arity mismatch";
  let n = Array.length t1 in
  (* t1's complete portion must be included in t2's with equal values … *)
  let rec included i =
    i = n
    ||
    (match (t1.(i), t2.(i)) with
    | Some a, Some b -> a = b
    | Some _, None -> false
    | None, _ -> true)
    && included (i + 1)
  in
  (* … and strictly smaller. *)
  included 0 && known_count t1 < known_count t2

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let hash (t : t) =
  (* FNV-style fold over the value slots; -1 encodes a missing value and
     cannot collide with a value index. *)
  Array.fold_left
    (fun h v -> (h * 1000003) lxor match v with Some x -> x | None -> -1)
    0x811C9DC5 t

let pp schema ppf t =
  let cell ppf (i, v) =
    match v with
    | Some x ->
        Format.pp_print_string ppf
          (Attribute.value_label (Schema.attribute schema i) x)
    | None -> Format.pp_print_string ppf "?"
  in
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       cell)
    (Array.to_seqi t)

let to_string schema t = Format.asprintf "%a" (pp schema) t

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Set = Set.Make (Key)
module Table = Hashtbl.Make (Key)
