let count cards =
  Array.fold_left
    (fun acc c ->
      if c < 1 then invalid_arg "Domain.count: radix must be >= 1";
      let next = acc * c in
      if acc <> 0 && next / acc <> c then
        invalid_arg "Domain.count: domain size overflows";
      next)
    1 cards

let encode cards values =
  if Array.length cards <> Array.length values then
    invalid_arg "Domain.encode: length mismatch";
  let code = ref 0 in
  for i = 0 to Array.length cards - 1 do
    let v = values.(i) in
    if v < 0 || v >= cards.(i) then
      invalid_arg "Domain.encode: value out of range";
    code := (!code * cards.(i)) + v
  done;
  !code

let decode cards code =
  let n = Array.length cards in
  let values = Array.make n 0 in
  let rest = ref code in
  for i = n - 1 downto 0 do
    values.(i) <- !rest mod cards.(i);
    rest := !rest / cards.(i)
  done;
  if !rest <> 0 then invalid_arg "Domain.decode: code out of range";
  values

let iter cards f =
  let n = Array.length cards in
  let total = count cards in
  let values = Array.make n 0 in
  for code = 0 to total - 1 do
    f code values;
    (* Odometer increment: bump the last position, carrying leftward. *)
    let rec bump i =
      if i >= 0 then begin
        values.(i) <- values.(i) + 1;
        if values.(i) = cards.(i) then begin
          values.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (n - 1)
  done
