(** Missingness mechanisms.

    The paper makes no assumption about "how many" and "which" attribute
    values are missing (Section I-B), but its *evaluation* only exercises
    uniform masking. This module implements the three standard mechanisms
    (Little & Rubin), so the robustness of complete-case learning — MRSL
    learns from [Rc] only — can be measured when the assumption-free claim
    is stressed:

    - {e MCAR} (missing completely at random): each value is masked
      independently.
    - {e MAR} (missing at random): target attributes are masked with a
      probability that depends on the *observed* value of a trigger
      attribute (which itself always stays observed).
    - {e MNAR} (missing not at random): an attribute is masked with a
      probability that depends on its *own* value.

    Under MCAR the complete part is an unbiased sample; under MAR and MNAR
    it is selection-biased, which is exactly what the extension experiment
    quantifies. *)

type mechanism =
  | Mcar of float  (** per-value masking probability, in [0, 1] *)
  | Mar of {
      trigger : int;  (** attribute whose observed value drives masking *)
      value : int;  (** triggering value *)
      p_match : float;  (** masking prob. for targets when trigger=value *)
      p_other : float;  (** masking prob. otherwise *)
      targets : int list;  (** attributes that can go missing *)
    }
  | Mnar of {
      target : int;  (** the self-censoring attribute *)
      value : int;
      p_match : float;  (** masking prob. when target=value *)
      p_other : float;
    }

val name : mechanism -> string
(** ["MCAR"], ["MAR"], or ["MNAR"]. *)

val mask : Prob.Rng.t -> mechanism -> Instance.t -> Instance.t
(** Apply the mechanism to every tuple (already-missing values stay
    missing; MAR triggers are never masked). Raises [Invalid_argument] on
    out-of-range probabilities or attribute indices, or if a MAR target
    list contains the trigger. *)

val expected_missing_rate : mechanism -> Schema.t -> float
(** Rough per-value masking rate assuming uniform attribute values — used
    to calibrate mechanisms to comparable intensity in experiments. *)
