type entry = {
  id : string;
  topology : Topology.t;
  shape : string;
  paper_num_attrs : int;
  paper_avg_card : float;
  paper_dom_size : float;
  paper_depth : int;
}

let entry id topology shape paper_num_attrs paper_avg_card paper_dom_size
    paper_depth =
  { id; topology; shape; paper_num_attrs; paper_avg_card; paper_dom_size;
    paper_depth }

let rep n x = List.init n (fun _ -> x)

(* Cardinalities are chosen so their product equals Table I's domain size
   exactly; where no factorization matches the reported average cardinality
   we take the closest (documented in DESIGN.md). *)
let all =
  [
    entry "BN1"
      (Topology.layered ~layers:[ 2; 2 ] [ 3; 4; 5; 5 ])
      "layered 2/2" 4 4.0 300. 2;
    entry "BN2"
      (Topology.layered ~layers:[ 2; 2; 1 ] [ 2; 4; 5; 5; 7 ])
      "layered 2/2/1" 5 4.4 1400. 3;
    entry "BN3"
      (Topology.layered ~layers:[ 2; 2; 1 ] [ 2; 5; 5; 6; 8 ])
      "layered 2/2/1" 5 5.2 2400. 3;
    entry "BN4"
      (Topology.independent [ 2; 5; 5; 6; 8 ])
      "independent" 5 5.2 2400. 0;
    entry "BN5"
      (Topology.layered ~layers:[ 3; 2 ] [ 2; 5; 5; 6; 8 ])
      "layered 3/2" 5 5.2 2400. 2;
    entry "BN6"
      (Topology.layered ~layers:[ 3; 3; 2; 2 ] (rep 10 2))
      "layered 3/3/2/2" 10 2.0 1024. 4;
    entry "BN7"
      (Topology.layered ~layers:[ 3; 3; 2; 2 ] [ 2; 2; 3; 3; 4; 4; 5; 5; 6; 6 ])
      "layered 3/3/2/2" 10 4.0 518_400. 4;
    entry "BN8" (Topology.crown (rep 4 2)) "crown" 4 2.0 16. 2;
    entry "BN9" (Topology.crown (rep 6 2)) "crown" 6 2.0 64. 2;
    entry "BN10" (Topology.crown (rep 6 4)) "crown" 6 4.0 4096. 2;
    entry "BN11" (Topology.crown (rep 6 6)) "crown" 6 6.0 46_656. 2;
    entry "BN12" (Topology.crown (rep 6 8)) "crown" 6 8.0 262_144. 2;
    entry "BN13" (Topology.chain (rep 6 2)) "line" 6 2.0 64. 6;
    entry "BN14" (Topology.chain (rep 6 4)) "line" 6 4.0 4096. 6;
    entry "BN15" (Topology.chain (rep 6 6)) "line" 6 6.0 46_656. 6;
    entry "BN16" (Topology.chain (rep 6 8)) "line" 6 8.0 262_144. 6;
    entry "BN17" (Topology.crown (rep 8 2)) "crown" 8 2.0 256. 2;
    entry "BN18" (Topology.crown (rep 10 2)) "crown" 10 2.0 1024. 2;
    entry "BN19"
      (Topology.layered ~layers:[ 4; 3; 3 ] (rep 10 2))
      "layered 4/3/3" 10 2.0 1024. 3;
    entry "BN20"
      (Topology.layered ~layers:[ 2; 2; 2; 2; 2 ] (rep 10 2))
      "layered 2/2/2/2/2" 10 2.0 1024. 5;
  ]

let find id =
  let wanted = String.uppercase_ascii id in
  match List.find_opt (fun e -> e.id = wanted) all with
  | Some e -> e
  | None -> raise Not_found

let select ids = List.map find ids

let model_building_networks =
  select
    [ "BN8"; "BN9"; "BN10"; "BN11"; "BN12"; "BN13"; "BN14"; "BN15"; "BN16";
      "BN1" ]

let single_inference_networks =
  select
    [ "BN1"; "BN2"; "BN3"; "BN4"; "BN5"; "BN6"; "BN7"; "BN8"; "BN9"; "BN10";
      "BN11"; "BN12"; "BN17"; "BN18" ]

let fig8_topology_networks = select [ "BN18"; "BN19"; "BN20" ]
let fig8_size_networks = select [ "BN8"; "BN9"; "BN17"; "BN18" ]
let fig8_cardinality_networks = select [ "BN13"; "BN14"; "BN15"; "BN16" ]

let multi_inference_networks =
  select
    [ "BN1"; "BN2"; "BN3"; "BN4"; "BN5"; "BN8"; "BN9"; "BN10"; "BN13"; "BN17" ]
