(** The 20 benchmark Bayesian networks of Table I.

    The paper describes each network only through summary statistics
    (attribute count, average cardinality, domain size, depth) plus the
    shape sketches of Fig 7 (crowns for BN8/9/17/18, lines for BN13–16).
    This catalog reconstructs concrete topologies matching every Table I
    row; see DESIGN.md ("Substitutions") for the conventions. *)

type entry = {
  id : string;  (** "BN1" … "BN20" *)
  topology : Topology.t;
  shape : string;  (** human-readable shape tag: crown / line / layered / … *)
  paper_num_attrs : int;
  paper_avg_card : float;
  paper_dom_size : float;
  paper_depth : int;
}

val all : entry list
(** BN1 … BN20 in order. *)

val find : string -> entry
(** Lookup by id (case-insensitive). Raises [Not_found]. *)

(** {2 Experiment subsets (Section VI)} *)

val model_building_networks : entry list
(** The 10 networks of the Fig 4 learning experiments (4–6 attributes,
    cardinality 2–8, domain size 16–262,144). *)

val single_inference_networks : entry list
(** The 14 networks of Table II / Figs 5–6. *)

val fig8_topology_networks : entry list
(** BN18, BN19, BN20 — same size and cardinality, varying depth. *)

val fig8_size_networks : entry list
(** Crown-shaped BN8, BN9, BN17, BN18 — varying attribute count. *)

val fig8_cardinality_networks : entry list
(** Line-shaped BN13–BN16 — varying cardinality. *)

val multi_inference_networks : entry list
(** The 10 networks of the Fig 10/11 sampling experiments (4–8 attributes,
    cardinality ≤ 5.2, domain size ≤ 4096). *)
