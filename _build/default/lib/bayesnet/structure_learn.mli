(** Score-based Bayesian-network structure learning — the "computationally
    very expensive" exact-model alternative the paper positions MRSL
    against (Section I-A).

    Greedy hill climbing over DAGs with the BIC score: at each step the
    best single-edge addition, deletion, or reversal is applied until no
    operation improves the score. BIC decomposes per family, so only the
    touched families are re-scored; family scores are cached. Parameters
    (CPT rows) are then estimated with Laplace smoothing.

    Used by the [baselines] benchmark to reproduce the paper's motivating
    trade-off: an explicit joint model buys exact inference at a learning
    cost that grows much faster than MRSL's. *)

type stats = {
  score : float;  (** BIC of the final structure *)
  iterations : int;  (** hill-climbing steps taken *)
  families_scored : int;  (** family-score evaluations (cache misses) *)
  seconds : float;
}

val bic_family_score : cards:int array -> int array array -> int ->
  int list -> float
(** [bic_family_score ~cards points var parents] — log-likelihood of
    [var]'s CPT given [parents], minus the BIC penalty
    (½·log N · #free parameters). Exposed for tests. *)

val fit : ?max_parents:int -> ?max_iterations:int -> ?alpha:float ->
  cards:int array -> int array array -> Network.t * stats
(** Learn structure and parameters from complete data. [max_parents]
    bounds in-degree (default 3), [max_iterations] bounds hill-climbing
    steps (default 200), [alpha] is the Laplace pseudo-count for parameter
    estimation (default 1). Raises [Invalid_argument] on empty data or
    inconsistent cardinalities. *)
