type stats = {
  score : float;
  iterations : int;
  families_scored : int;
  seconds : float;
}

(* Count table for one family: counts.(parent_code).(value). *)
let family_counts ~cards points var parents =
  let parent_arr = Array.of_list parents in
  let parent_cards = Array.map (fun p -> cards.(p)) parent_arr in
  let rows = Relation.Domain.count parent_cards in
  let counts = Array.make_matrix rows cards.(var) 0 in
  let values = Array.make (Array.length parent_arr) 0 in
  Array.iter
    (fun point ->
      Array.iteri (fun k p -> values.(k) <- point.(p)) parent_arr;
      let code = Relation.Domain.encode parent_cards values in
      counts.(code).(point.(var)) <- counts.(code).(point.(var)) + 1)
    points;
  counts

let bic_family_score ~cards points var parents =
  let n = Array.length points in
  let counts = family_counts ~cards points var parents in
  let ll = ref 0. in
  Array.iter
    (fun row ->
      let total = Array.fold_left ( + ) 0 row in
      if total > 0 then
        Array.iter
          (fun c ->
            if c > 0 then
              ll :=
                !ll
                +. (float_of_int c
                   *. log (float_of_int c /. float_of_int total)))
          row)
    counts;
  let free_params =
    float_of_int (Array.length counts) *. float_of_int (cards.(var) - 1)
  in
  !ll -. (0.5 *. log (float_of_int n) *. free_params)

module Family_key = struct
  type t = int * int list

  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash
end

module Cache = Hashtbl.Make (Family_key)

type op = Add of int * int | Remove of int * int | Reverse of int * int

let fit ?(max_parents = 3) ?(max_iterations = 200) ?(alpha = 1.0) ~cards
    points =
  if Array.length points = 0 then
    invalid_arg "Structure_learn.fit: empty data";
  Array.iter
    (fun p ->
      if Array.length p <> Array.length cards then
        invalid_arg "Structure_learn.fit: tuple arity mismatch";
      Array.iteri
        (fun i v ->
          if v < 0 || v >= cards.(i) then
            invalid_arg "Structure_learn.fit: value out of range")
        p)
    points;
  let t0 = Unix.gettimeofday () in
  let n_vars = Array.length cards in
  (* parents.(v) is kept sorted for stable cache keys. *)
  let parents = Array.make n_vars [] in
  let cache = Cache.create 256 in
  let families_scored = ref 0 in
  let score_family var ps =
    let key = (var, ps) in
    match Cache.find_opt cache key with
    | Some s -> s
    | None ->
        incr families_scored;
        let s = bic_family_score ~cards points var ps in
        Cache.replace cache key s;
        s
  in
  (* Acyclicity: does a directed path x ⇝ y exist under the current
     structure (edges parent → child)? *)
  let reaches x y =
    let visited = Array.make n_vars false in
    let rec walk v =
      v = y
      || (not visited.(v))
         &&
         (visited.(v) <- true;
          (* children of v: those with v among their parents *)
          let rec any i =
            i < n_vars
            && ((List.mem v parents.(i) && walk i) || any (i + 1))
          in
          any 0)
    in
    walk x
  in
  let apply = function
    | Add (p, c) -> parents.(c) <- List.sort Int.compare (p :: parents.(c))
    | Remove (p, c) -> parents.(c) <- List.filter (( <> ) p) parents.(c)
    | Reverse (p, c) ->
        parents.(c) <- List.filter (( <> ) p) parents.(c);
        parents.(p) <- List.sort Int.compare (c :: parents.(p))
  in
  (* Score delta of an operation, touching only the affected families. *)
  let delta = function
    | Add (p, c) ->
        score_family c (List.sort Int.compare (p :: parents.(c)))
        -. score_family c parents.(c)
    | Remove (p, c) ->
        score_family c (List.filter (( <> ) p) parents.(c))
        -. score_family c parents.(c)
    | Reverse (p, c) ->
        score_family c (List.filter (( <> ) p) parents.(c))
        -. score_family c parents.(c)
        +. score_family p (List.sort Int.compare (c :: parents.(p)))
        -. score_family p parents.(p)
  in
  let legal = function
    | Add (p, c) ->
        p <> c
        && (not (List.mem p parents.(c)))
        && List.length parents.(c) < max_parents
        (* adding p → c creates a cycle iff c already reaches p *)
        && not (reaches c p)
    | Remove (p, c) -> List.mem p parents.(c)
    | Reverse (p, c) ->
        List.mem p parents.(c)
        && List.length parents.(p) < max_parents
        &&
        (* After removing p → c, adding c → p must not close a cycle. *)
        (apply (Remove (p, c));
         let ok = not (reaches p c) in
         apply (Add (p, c));
         ok)
  in
  let iterations = ref 0 in
  let improved = ref true in
  while !improved && !iterations < max_iterations do
    improved := false;
    let best = ref None in
    for p = 0 to n_vars - 1 do
      for c = 0 to n_vars - 1 do
        if p <> c then
          List.iter
            (fun op ->
              if legal op then begin
                let d = delta op in
                match !best with
                | Some (_, best_d) when best_d >= d -> ()
                | _ -> if d > 1e-9 then best := Some (op, d)
              end)
            [ Add (p, c); Remove (p, c); Reverse (p, c) ]
      done
    done;
    match !best with
    | Some (op, _) ->
        apply op;
        improved := true;
        incr iterations
    | None -> ()
  done;
  (* Final score and smoothed parameter estimation. *)
  let score =
    let acc = ref 0. in
    for v = 0 to n_vars - 1 do
      acc := !acc +. score_family v parents.(v)
    done;
    !acc
  in
  let topo =
    Topology.make
      ~names:(Array.init n_vars (fun i -> "a" ^ string_of_int i))
      ~cards:(Array.copy cards)
      ~parents:(Array.map Array.of_list parents)
  in
  let cpts =
    Array.init n_vars (fun v ->
        let counts = family_counts ~cards points v parents.(v) in
        Array.map
          (fun row ->
            Prob.Dist.of_weights
              (Array.map (fun c -> float_of_int c +. alpha) row))
          counts)
  in
  let network = Network.make topo cpts in
  ( network,
    {
      score;
      iterations = !iterations;
      families_scored = !families_scored;
      seconds = Unix.gettimeofday () -. t0;
    } )
