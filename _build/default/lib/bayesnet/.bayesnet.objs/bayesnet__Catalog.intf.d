lib/bayesnet/catalog.mli: Topology
