lib/bayesnet/topology.ml: Array Format Hashtbl List Queue Relation
