lib/bayesnet/network.ml: Array Int List Printf Prob Relation Topology
