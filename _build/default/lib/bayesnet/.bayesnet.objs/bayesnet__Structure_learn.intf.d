lib/bayesnet/structure_learn.mli: Network
