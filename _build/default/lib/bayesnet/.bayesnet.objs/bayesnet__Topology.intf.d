lib/bayesnet/topology.mli: Format Relation
