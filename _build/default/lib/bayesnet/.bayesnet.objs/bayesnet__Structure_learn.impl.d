lib/bayesnet/structure_learn.ml: Array Hashtbl Int List Network Prob Relation Topology Unix
