lib/bayesnet/catalog.ml: List String Topology
