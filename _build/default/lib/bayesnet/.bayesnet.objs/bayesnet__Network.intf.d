lib/bayesnet/network.mli: Prob Relation Topology
