(** Bayesian-network topologies: a DAG over named discrete variables.

    Only the *structure* lives here; probabilities are attached by
    {!Network}. The benchmark of Section VI-A is driven entirely by
    topologies ("our framework takes as input a description of the topology
    of a Bayesian network"). *)

type t

val make : names:string array -> cards:int array -> parents:int array array -> t
(** [make ~names ~cards ~parents] builds a topology; [parents.(i)] lists the
    parent indices of variable [i]. Raises [Invalid_argument] on length
    mismatches, empty networks, cardinalities < 2, out-of-range or duplicate
    parent indices, self-loops, or cycles. *)

val size : t -> int
(** Number of variables ("num. attrs" of Table I). *)

val cardinality : t -> int -> int
val cardinalities : t -> int array
val name : t -> int -> string
val parents : t -> int -> int array
val children : t -> int -> int array

val topological_order : t -> int array
(** Variable indices in an order where parents precede children. *)

val depth : t -> int
(** Table I's "depth": the number of nodes on the longest directed path, or
    0 for an edge-free network (the paper assigns independent BN4 depth 0,
    crowns depth 2, and a 6-node chain depth 6). *)

val average_cardinality : t -> float
val domain_size : t -> float
(** Product of cardinalities ("dom. size" of Table I). *)

val edge_count : t -> int

val schema : t -> Relation.Schema.t
(** The relational schema whose attributes are the network variables. *)

(** {2 Stock shapes used by the Table I catalog} *)

val independent : ?prefix:string -> int list -> t
(** No edges. *)

val chain : ?prefix:string -> int list -> t
(** [a0 → a1 → … → a(n-1)] — the paper's "line-shaped" networks. *)

val crown : ?prefix:string -> int list -> t
(** Two layers: the first ⌈n/2⌉ variables are roots; each remaining
    variable has two cyclically adjacent roots as parents — the paper's
    "crown-shaped" networks (depth 2). Requires at least 3 variables. *)

val layered : ?prefix:string -> layers:int list -> int list -> t
(** [layered ~layers cards] splits the variables into consecutive layers of
    the given sizes (summing to the variable count); each non-root variable
    has up to two parents in the previous layer. Depth = number of
    layers. *)

val pp : Format.formatter -> t -> unit
