type t = {
  names : string array;
  cards : int array;
  parents : int array array;
  children : int array array;
  topo : int array;
}

let compute_children n parents =
  let kids = Array.make n [] in
  Array.iteri
    (fun child ps -> Array.iter (fun p -> kids.(p) <- child :: kids.(p)) ps)
    parents;
  Array.map (fun l -> Array.of_list (List.rev l)) kids

(* Kahn's algorithm; raises if a cycle remains. *)
let compute_topo n parents children =
  let indegree = Array.map Array.length parents in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    Array.iter
      (fun c ->
        indegree.(c) <- indegree.(c) - 1;
        if indegree.(c) = 0 then Queue.add c queue)
      children.(v)
  done;
  if !seen <> n then invalid_arg "Topology.make: graph contains a cycle";
  Array.of_list (List.rev !order)

let make ~names ~cards ~parents =
  let n = Array.length names in
  if n = 0 then invalid_arg "Topology.make: empty network";
  if Array.length cards <> n || Array.length parents <> n then
    invalid_arg "Topology.make: array length mismatch";
  Array.iter
    (fun c ->
      if c < 2 then invalid_arg "Topology.make: cardinalities must be >= 2")
    cards;
  Array.iteri
    (fun i ps ->
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun p ->
          if p < 0 || p >= n then
            invalid_arg "Topology.make: parent index out of range";
          if p = i then invalid_arg "Topology.make: self-loop";
          if Hashtbl.mem seen p then
            invalid_arg "Topology.make: duplicate parent";
          Hashtbl.add seen p ())
        ps)
    parents;
  let children = compute_children n parents in
  let topo = compute_topo n parents children in
  { names; cards; parents; children; topo }

let size t = Array.length t.names
let cardinality t i = t.cards.(i)
let cardinalities t = Array.copy t.cards
let name t i = t.names.(i)
let parents t i = Array.copy t.parents.(i)
let children t i = Array.copy t.children.(i)
let topological_order t = Array.copy t.topo

let depth t =
  let n = size t in
  (* Longest chain (in nodes) ending at each variable, in topo order. *)
  let chain = Array.make n 1 in
  Array.iter
    (fun v ->
      Array.iter
        (fun p -> if chain.(p) + 1 > chain.(v) then chain.(v) <- chain.(p) + 1)
        t.parents.(v))
    t.topo;
  let longest = Array.fold_left max 1 chain in
  let has_edges = Array.exists (fun ps -> Array.length ps > 0) t.parents in
  if has_edges then longest else 0

let average_cardinality t =
  float_of_int (Array.fold_left ( + ) 0 t.cards) /. float_of_int (size t)

let domain_size t =
  Array.fold_left (fun acc c -> acc *. float_of_int c) 1. t.cards

let edge_count t =
  Array.fold_left (fun acc ps -> acc + Array.length ps) 0 t.parents

let schema t =
  Relation.Schema.make
    (Array.to_list
       (Array.mapi (fun i name -> Relation.Attribute.indexed name t.cards.(i))
          t.names))

let default_names prefix n = Array.init n (fun i -> prefix ^ string_of_int i)

let independent ?(prefix = "a") cards =
  let cards = Array.of_list cards in
  let n = Array.length cards in
  make ~names:(default_names prefix n) ~cards
    ~parents:(Array.make n [||])

let chain ?(prefix = "a") cards =
  let cards = Array.of_list cards in
  let n = Array.length cards in
  make ~names:(default_names prefix n) ~cards
    ~parents:(Array.init n (fun i -> if i = 0 then [||] else [| i - 1 |]))

let crown ?(prefix = "a") cards =
  let cards = Array.of_list cards in
  let n = Array.length cards in
  if n < 3 then invalid_arg "Topology.crown: need at least 3 variables";
  let roots = (n + 1) / 2 in
  let parents =
    Array.init n (fun i ->
        if i < roots then [||]
        else
          let j = i - roots in
          [| j mod roots; (j + 1) mod roots |])
  in
  make ~names:(default_names prefix n) ~cards ~parents

let layered ?(prefix = "a") ~layers cards =
  let cards = Array.of_list cards in
  let n = Array.length cards in
  if List.exists (fun l -> l <= 0) layers then
    invalid_arg "Topology.layered: layer sizes must be positive";
  if List.fold_left ( + ) 0 layers <> n then
    invalid_arg "Topology.layered: layer sizes must sum to variable count";
  let layer_sizes = Array.of_list layers in
  let nlayers = Array.length layer_sizes in
  (* starts.(k) = first variable index of layer k. *)
  let starts = Array.make nlayers 0 in
  for k = 1 to nlayers - 1 do
    starts.(k) <- starts.(k - 1) + layer_sizes.(k - 1)
  done;
  let parents =
    Array.init n (fun i ->
        (* Find this variable's layer. *)
        let rec layer_of k = if k + 1 < nlayers && starts.(k + 1) <= i then layer_of (k + 1) else k in
        let k = layer_of 0 in
        if k = 0 then [||]
        else begin
          let prev_start = starts.(k - 1) and prev_size = layer_sizes.(k - 1) in
          let offset = i - starts.(k) in
          if prev_size = 1 then [| prev_start |]
          else
            [|
              prev_start + (offset mod prev_size);
              prev_start + ((offset + 1) mod prev_size);
            |]
        end)
  in
  make ~names:(default_names prefix n) ~cards ~parents

let pp ppf t =
  Format.fprintf ppf "@[<v>%d variables, %d edges, depth %d@," (size t)
    (edge_count t) (depth t);
  Array.iteri
    (fun i name ->
      Format.fprintf ppf "%s(card %d) <- {%a}@," name t.cards.(i)
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf p -> Format.pp_print_string ppf t.names.(p)))
        t.parents.(i))
    t.names;
  Format.fprintf ppf "@]"
