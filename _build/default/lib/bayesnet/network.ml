type t = { topo : Topology.t; cpts : Prob.Dist.t array array }

let parent_cards topo i =
  Array.map (Topology.cardinality topo) (Topology.parents topo i)

let make topo cpts =
  let n = Topology.size topo in
  if Array.length cpts <> n then
    invalid_arg "Network.make: one CPT per variable required";
  Array.iteri
    (fun i rows ->
      let expected = Relation.Domain.count (parent_cards topo i) in
      if Array.length rows <> expected then
        invalid_arg
          (Printf.sprintf "Network.make: variable %d expects %d CPT rows" i
             expected);
      Array.iter
        (fun row ->
          if Prob.Dist.size row <> Topology.cardinality topo i then
            invalid_arg "Network.make: CPT row size mismatch")
        rows)
    cpts;
  { topo; cpts }

let generate rng ?(alpha = 0.5) topo =
  let cpts =
    Array.init (Topology.size topo) (fun i ->
        let rows = Relation.Domain.count (parent_cards topo i) in
        Array.init rows (fun _ ->
            Prob.Dirichlet.sample rng ~alpha (Topology.cardinality topo i)))
  in
  make topo cpts

let topology t = t.topo

let row_of t i point =
  let ps = Topology.parents t.topo i in
  let cards = Array.map (Topology.cardinality t.topo) ps in
  let values = Array.map (fun p -> point.(p)) ps in
  t.cpts.(i).(Relation.Domain.encode cards values)

let cpd t i parent_values =
  let cards = parent_cards t.topo i in
  t.cpts.(i).(Relation.Domain.encode cards parent_values)

let sample_point rng t =
  let n = Topology.size t.topo in
  let point = Array.make n 0 in
  Array.iter
    (fun i -> point.(i) <- Prob.Dist.sample rng (row_of t i point))
    (Topology.topological_order t.topo);
  point

let sample_instance rng t n =
  if n < 0 then invalid_arg "Network.sample_instance: negative size";
  Relation.Instance.of_points (Topology.schema t.topo)
    (List.init n (fun _ -> sample_point rng t))

let log_prob t point =
  let n = Topology.size t.topo in
  if Array.length point <> n then invalid_arg "Network.log_prob: arity";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Prob.Dist.prob (row_of t i point) point.(i))
  done;
  !acc

let prob t point = exp (log_prob t point)

let posterior_joint t tup =
  let n = Topology.size t.topo in
  if Array.length tup <> n then invalid_arg "Network.posterior_joint: arity";
  let missing = Relation.Tuple.missing tup in
  if missing = [] then
    invalid_arg "Network.posterior_joint: tuple is complete";
  let missing_arr = Array.of_list missing in
  let cards = Array.map (Topology.cardinality t.topo) missing_arr in
  let total = Relation.Domain.count cards in
  let weights = Array.make total 0. in
  let point = Array.map (function Some v -> v | None -> 0) tup in
  Relation.Domain.iter cards (fun code values ->
      Array.iteri (fun k a -> point.(a) <- values.(k)) missing_arr;
      weights.(code) <- prob t point);
  let sum = Array.fold_left ( +. ) 0. weights in
  if sum <= 0. then
    invalid_arg "Network.posterior_joint: evidence has zero probability";
  (missing, Prob.Dist.of_weights weights)

let posterior_single t tup a =
  (match tup.(a) with
  | None -> ()
  | Some _ -> invalid_arg "Network.posterior_single: attribute is not missing");
  let missing, joint = posterior_joint t tup in
  let missing_arr = Array.of_list missing in
  let cards = Array.map (Topology.cardinality t.topo) missing_arr in
  let pos =
    match Array.find_index (Int.equal a) missing_arr with
    | Some p -> p
    | None -> assert false
  in
  let marg = Array.make (Topology.cardinality t.topo a) 0. in
  Relation.Domain.iter cards (fun code values ->
      marg.(values.(pos)) <- marg.(values.(pos)) +. Prob.Dist.prob joint code);
  Prob.Dist.of_weights marg
