(** Bayesian-network instances: a topology plus conditional probability
    tables.

    Provides the three capabilities the experimental framework of Section
    VI-A needs: random instantiation ("BN Instance Generator"), forward
    sampling ("BN Sampler", Koller & Friedman §12.1), and — because the
    generating network is known — *exact* posterior distributions used as
    ground truth when scoring MRSL's predictions. *)

type t

val make : Topology.t -> Prob.Dist.t array array -> t
(** [make topo cpts]: [cpts.(i).(c)] is the distribution of variable [i]
    given that its parents take the joint configuration with mixed-radix
    code [c] (parent order as in [Topology.parents], first parent varying
    slowest). Raises [Invalid_argument] on any shape mismatch. *)

val generate : Prob.Rng.t -> ?alpha:float -> Topology.t -> t
(** Random instance: every CPT row drawn from a symmetric Dirichlet.
    [alpha] defaults to 0.5, giving moderately peaked rows so that top-1
    prediction is a meaningful target (see DESIGN.md substitutions). *)

val topology : t -> Topology.t

val cpd : t -> int -> int array -> Prob.Dist.t
(** [cpd net i parent_values] — the CPT row of variable [i] for the given
    parent values (in [Topology.parents] order). *)

val sample_point : Prob.Rng.t -> t -> int array
(** One forward sample (ancestral sampling in topological order). *)

val sample_instance : Prob.Rng.t -> t -> int -> Relation.Instance.t
(** [sample_instance rng net n] — a fully complete relation of [n] forward
    samples over [Topology.schema]. *)

val log_prob : t -> int array -> float
(** Log-probability of a complete assignment. *)

val prob : t -> int array -> float

val posterior_joint : t -> Relation.Tuple.t -> int list * Prob.Dist.t
(** [posterior_joint net t] — exact conditional distribution of the missing
    attributes of [t] given its complete portion, by enumeration of all
    completions. Returns the missing attribute indices (ascending) and the
    joint distribution in their mixed-radix code order. Raises
    [Invalid_argument] if [t] is complete or has zero-probability
    evidence. *)

val posterior_single : t -> Relation.Tuple.t -> int -> Prob.Dist.t
(** [posterior_single net t a] — exact marginal posterior of attribute [a]
    (which must be missing in [t]), marginalizing out any other missing
    attributes. *)
