type alternative = { point : int array; prob : float }

type t = {
  source : Relation.Tuple.t;
  alternatives : alternative list;
  truncated_mass : float;
}

let of_estimate ?(min_prob = 0.) (est : Mrsl.Gibbs.estimate) =
  if min_prob < 0. || min_prob >= 1. then
    invalid_arg "Block.of_estimate: min_prob must be in [0, 1)";
  let missing = Array.of_list est.missing in
  let base = Array.map (function Some v -> v | None -> 0) est.tuple in
  let kept = ref [] in
  let dropped = ref 0. in
  Relation.Domain.iter est.cards (fun code values ->
      let p = Prob.Dist.prob est.joint code in
      if p >= min_prob then begin
        let point = Array.copy base in
        Array.iteri (fun k a -> point.(a) <- values.(k)) missing;
        kept := { point; prob = p } :: !kept
      end
      else dropped := !dropped +. p);
  let alternatives =
    List.sort (fun a b -> Float.compare b.prob a.prob) !kept
  in
  (match alternatives with
  | [] -> invalid_arg "Block.of_estimate: min_prob dropped every alternative"
  | _ -> ());
  { source = est.tuple; alternatives; truncated_mass = !dropped }

let of_point point =
  {
    source = Relation.Tuple.of_point point;
    alternatives = [ { point = Array.copy point; prob = 1.0 } ];
    truncated_mass = 0.;
  }

let restrict keep t =
  let kept, dropped = List.partition (fun a -> keep a.point) t.alternatives in
  match kept with
  | [] -> None
  | _ ->
      let lost = List.fold_left (fun acc a -> acc +. a.prob) 0. dropped in
      Some { t with alternatives = kept; truncated_mass = t.truncated_mass +. lost }

let alternative_count t = List.length t.alternatives

let top t =
  match t.alternatives with
  | a :: _ -> a
  | [] -> assert false

let prob_of_point t point =
  List.fold_left
    (fun acc a -> if a.point = point then acc +. a.prob else acc)
    0. t.alternatives

let pp schema ppf t =
  Format.fprintf ppf "@[<v>block for %a (%d alternatives%s)@,%a@]"
    (Relation.Tuple.pp schema) t.source (alternative_count t)
    (if t.truncated_mass > 0. then
       Printf.sprintf ", %.4f mass truncated" t.truncated_mass
     else "")
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf a ->
         Format.fprintf ppf "%a  p=%.4f"
           (Relation.Tuple.pp schema)
           (Relation.Tuple.of_point a.point) a.prob))
    t.alternatives
