let select pred db =
  let blocks =
    Array.to_list (Pdb.blocks db)
    |> List.filter_map (Block.restrict (Predicate.eval pred))
  in
  Pdb.make (Pdb.schema db) blocks

module Key = struct
  type t = int array

  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash
end

module Key_table = Hashtbl.Make (Key)

let check_attrs schema attrs =
  if attrs = [] then invalid_arg "Algebra: empty attribute list";
  List.iter
    (fun a ->
      if a < 0 || a >= Relation.Schema.arity schema then
        invalid_arg "Algebra: attribute index out of range")
    attrs

(* Per block, the probability mass of each projected value vector. *)
let block_projection attrs (b : Block.t) =
  let table = Key_table.create 8 in
  List.iter
    (fun (alt : Block.alternative) ->
      let key = Array.of_list (List.map (fun a -> alt.point.(a)) attrs) in
      let prev = Option.value ~default:0. (Key_table.find_opt table key) in
      Key_table.replace table key (prev +. alt.prob))
    b.alternatives;
  table

let project_expected attrs db =
  check_attrs (Pdb.schema db) attrs;
  let acc = Key_table.create 64 in
  Array.iter
    (fun b ->
      Key_table.iter
        (fun key p ->
          let prev = Option.value ~default:0. (Key_table.find_opt acc key) in
          Key_table.replace acc key (prev +. p))
        (block_projection attrs b))
    (Pdb.blocks db);
  Key_table.fold (fun key v l -> (key, v) :: l) acc []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let project_exists attrs db =
  check_attrs (Pdb.schema db) attrs;
  (* P(∃) per key: 1 − Π over blocks of (1 − per-block mass of the key). *)
  let acc = Key_table.create 64 in
  Array.iter
    (fun b ->
      Key_table.iter
        (fun key p ->
          let prev = Option.value ~default:1. (Key_table.find_opt acc key) in
          Key_table.replace acc key (prev *. (1. -. p)))
        (block_projection attrs b))
    (Pdb.blocks db);
  Key_table.fold (fun key none l -> (key, 1. -. none) :: l) acc []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let group_expected_count ~by ?(where = Predicate.True) db =
  let schema = Pdb.schema db in
  check_attrs schema [ by ];
  let card = Relation.Schema.cardinality schema by in
  List.init card (fun v ->
      (v, Pdb.expected_count db (Predicate.And (where, Predicate.Eq (by, v)))))

let expected_join_count left right ~on =
  if on = [] then invalid_arg "Algebra.expected_join_count: empty join condition";
  check_attrs (Pdb.schema left) (List.map fst on);
  check_attrs (Pdb.schema right) (List.map snd on);
  let left_attrs = List.map fst on and right_attrs = List.map snd on in
  (* Project each side per block, then sum products of matching masses:
     E[#pairs] = Σ_{i,j} Σ_key P_i(key) · Q_j(key) by independence. The
     per-key totals cannot be combined across blocks on the same side
     first for existence, but for *expected counts* linearity lets us sum
     sides independently. *)
  let side_totals attrs db =
    let acc = Key_table.create 64 in
    Array.iter
      (fun b ->
        Key_table.iter
          (fun key p ->
            let prev = Option.value ~default:0. (Key_table.find_opt acc key) in
            Key_table.replace acc key (prev +. p))
          (block_projection attrs b))
      (Pdb.blocks db);
    acc
  in
  let l = side_totals left_attrs left in
  let r = side_totals right_attrs right in
  Key_table.fold
    (fun key lp acc ->
      match Key_table.find_opt r key with
      | Some rp -> acc +. (lp *. rp)
      | None -> acc)
    l 0.
