(** Blocks of the disjoint-independent model (Dalvi & Suciu, PODS 2007).

    Each incomplete tuple gives rise to a block: a probability distribution
    over its mutually exclusive complete versions (the call-out of Fig 1).
    A possible world picks one alternative per block, independently across
    blocks. *)

type alternative = { point : int array; prob : float }

type t = private {
  source : Relation.Tuple.t;  (** the incomplete tuple the block completes *)
  alternatives : alternative list;
      (** descending probability; sums to 1 up to truncation *)
  truncated_mass : float;
      (** probability mass dropped by [min_prob] truncation *)
}

val of_estimate : ?min_prob:float -> Mrsl.Gibbs.estimate -> t
(** Materialize a block from a joint inference estimate. Alternatives with
    probability below [min_prob] (default 0: keep everything) are dropped
    and their mass recorded in [truncated_mass]; remaining probabilities
    are *not* re-normalized, so reported query probabilities stay
    conservative lower bounds. *)

val of_point : int array -> t
(** A certain block: one alternative with probability 1 (used for the
    complete tuples of the source relation). *)

val restrict : (int array -> bool) -> t -> t option
(** Keep only the alternatives whose point satisfies the predicate, adding
    the removed mass to [truncated_mass]; [None] when nothing survives.
    The selection operator of {!Algebra}. *)

val alternative_count : t -> int

val top : t -> alternative
(** Most probable completion. Never fails: blocks always have at least one
    alternative. *)

val prob_of_point : t -> int array -> float
(** Probability of one complete version (0 when absent). *)

val pp : Relation.Schema.t -> Format.formatter -> t -> unit
