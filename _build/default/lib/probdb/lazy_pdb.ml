type t = {
  rng : Prob.Rng.t;
  config : Mrsl.Gibbs.config;
  min_prob : float option;
  sampler : Mrsl.Gibbs.sampler;
  tuples : Relation.Tuple.t array;
  blocks : Block.t option array;  (* cache, one slot per tuple *)
  (* Identical incomplete tuples share one inference run. *)
  shared : Block.t Relation.Tuple.Table.t;
}

let create ?(config = Mrsl.Gibbs.default_config) ?method_ ?min_prob rng model
    inst =
  if
    not
      (Relation.Schema.equal
         (Relation.Instance.schema inst)
         (Mrsl.Model.schema model))
  then
    invalid_arg "Lazy_pdb.create: instance schema does not match model schema";
  {
    rng;
    config;
    min_prob;
    sampler = Mrsl.Gibbs.sampler ?method_ model;
    tuples = Relation.Instance.tuples inst;
    blocks = Array.make (Relation.Instance.size inst) None;
    shared = Relation.Tuple.Table.create 64;
  }

let tuple_count t = Array.length t.tuples

let materialized_count t =
  let n = ref 0 in
  Array.iteri
    (fun i b ->
      match b with
      | Some _ when not (Relation.Tuple.is_complete t.tuples.(i)) -> incr n
      | Some _ | None -> ())
    t.blocks;
  !n

let block t i =
  match t.blocks.(i) with
  | Some b -> b
  | None ->
      let tup = t.tuples.(i) in
      let b =
        match Relation.Tuple.to_point tup with
        | Some point -> Block.of_point point
        | None -> (
            match Relation.Tuple.Table.find_opt t.shared tup with
            | Some b -> b
            | None ->
                let est = Mrsl.Gibbs.run ~config:t.config t.rng t.sampler tup in
                let b = Block.of_estimate ?min_prob:t.min_prob est in
                Relation.Tuple.Table.replace t.shared tup b;
                b)
      in
      t.blocks.(i) <- Some b;
      b

let tuple_prob t pred i =
  if i < 0 || i >= Array.length t.tuples then
    invalid_arg "Lazy_pdb.tuple_prob: tuple index out of range";
  match Predicate.eval_partial pred t.tuples.(i) with
  | Some true -> 1.
  | Some false -> 0.
  | None ->
      List.fold_left
        (fun acc (a : Block.alternative) ->
          if Predicate.eval pred a.point then acc +. a.prob else acc)
        0.
        (block t i).alternatives

let expected_count t pred =
  let acc = ref 0. in
  for i = 0 to Array.length t.tuples - 1 do
    acc := !acc +. tuple_prob t pred i
  done;
  !acc

let prob_exists t pred =
  let none = ref 1. in
  for i = 0 to Array.length t.tuples - 1 do
    none := !none *. (1. -. tuple_prob t pred i)
  done;
  1. -. !none

let force t =
  let blocks = List.init (Array.length t.tuples) (fun i -> block t i) in
  Pdb.make (Mrsl.Model.schema (Mrsl.Gibbs.model t.sampler)) blocks
