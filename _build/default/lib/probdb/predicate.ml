type t =
  | True
  | Eq of int * int
  | Neq of int * int
  | In of int * int list
  | And of t * t
  | Or of t * t
  | Not of t

let rec eval p point =
  match p with
  | True -> true
  | Eq (a, v) -> point.(a) = v
  | Neq (a, v) -> point.(a) <> v
  | In (a, vs) -> List.mem point.(a) vs
  | And (l, r) -> eval l point && eval r point
  | Or (l, r) -> eval l point || eval r point
  | Not q -> not (eval q point)

let rec eval_partial p (tup : Relation.Tuple.t) =
  match p with
  | True -> Some true
  | Eq (a, v) -> Option.map (Int.equal v) tup.(a)
  | Neq (a, v) -> Option.map (fun x -> x <> v) tup.(a)
  | In (a, vs) -> Option.map (fun x -> List.mem x vs) tup.(a)
  | And (l, r) -> (
      match (eval_partial l tup, eval_partial r tup) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Or (l, r) -> (
      match (eval_partial l tup, eval_partial r tup) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | Not q -> Option.map not (eval_partial q tup)

let eq_label schema attr value =
  let a = Relation.Schema.index_of schema attr in
  let v = Relation.Attribute.value_index (Relation.Schema.attribute schema a) value in
  Eq (a, v)

let conj = function [] -> True | p :: ps -> List.fold_left (fun a b -> And (a, b)) p ps
let disj = function [] -> Not True | p :: ps -> List.fold_left (fun a b -> Or (a, b)) p ps

let rec pp schema ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Eq (a, v) ->
      let attr = Relation.Schema.attribute schema a in
      Format.fprintf ppf "%s=%s" (Relation.Attribute.name attr)
        (Relation.Attribute.value_label attr v)
  | Neq (a, v) ->
      let attr = Relation.Schema.attribute schema a in
      Format.fprintf ppf "%s<>%s" (Relation.Attribute.name attr)
        (Relation.Attribute.value_label attr v)
  | In (a, vs) ->
      let attr = Relation.Schema.attribute schema a in
      Format.fprintf ppf "%s in {%a}" (Relation.Attribute.name attr)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (fun ppf v ->
             Format.pp_print_string ppf (Relation.Attribute.value_label attr v)))
        vs
  | And (l, r) -> Format.fprintf ppf "(%a ∧ %a)" (pp schema) l (pp schema) r
  | Or (l, r) -> Format.fprintf ppf "(%a ∨ %a)" (pp schema) l (pp schema) r
  | Not q -> Format.fprintf ppf "¬%a" (pp schema) q
