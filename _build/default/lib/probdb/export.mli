(** Exporting a derived probabilistic database.

    The call-out of the paper's Fig 1 shows the natural tabular form of a
    derived block: one row per completion, annotated with a probability and
    grouped by source tuple (t12.1 … t12.4). This module renders a whole
    database in that form — a CSV with a block-id column and a probability
    column — which downstream probabilistic-DB systems (and spreadsheets)
    ingest directly. *)

val to_csv : Pdb.t -> string
(** Header: [block,<attr…>,prob]. Rows are grouped by block in database
    order; each block's alternatives appear in descending probability with
    ids [t<i>.<j>] echoing Fig 1's numbering. Value labels come from the
    schema; probabilities are printed with 6 decimals. *)

val to_file : string -> Pdb.t -> unit

val summary : Pdb.t -> string
(** A short human-readable digest: block count, possible worlds, expected
    size, mean/max alternatives per block, total truncated mass. *)
