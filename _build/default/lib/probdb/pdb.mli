(** Disjoint-independent probabilistic databases — the output of the
    paper's pipeline (Section I-A).

    A database is a schema plus one block per source tuple: certain blocks
    for the complete tuples, derived blocks for the incomplete ones. A
    possible world chooses one alternative per block, all choices
    independent, which makes the query-level probabilities below closed
    form. *)

type t

val make : Relation.Schema.t -> Block.t list -> t
(** Raises [Invalid_argument] on arity mismatches. *)

val derive : ?config:Mrsl.Gibbs.config -> ?method_:Mrsl.Voting.method_ ->
  ?strategy:Mrsl.Workload.strategy -> ?min_prob:float -> Prob.Rng.t ->
  Mrsl.Model.t -> Relation.Instance.t -> t
(** The paper's end-to-end derivation: keep complete tuples as certain
    blocks, run (tuple-DAG, by default) multi-attribute inference over the
    incomplete tuples, and materialize one block per tuple. Single-missing
    tuples also go through the sampler, which degenerates gracefully;
    identical incomplete tuples share one inference run but still yield
    one block each. *)

val schema : t -> Relation.Schema.t
val blocks : t -> Block.t array
val block_count : t -> int

val possible_worlds : t -> float
(** Number of possible worlds: Π (alternatives per block). A float — this
    overflows integers immediately. *)

val world_log_prob : t -> int array array -> float
(** Log-probability of a specific world given as one chosen point per
    block, in block order. Raises [Invalid_argument] on shape mismatch;
    [neg_infinity] when some choice is not among a block's
    alternatives. *)

val most_probable_world : t -> int array array * float
(** The modal world (independent blocks ⇒ per-block argmax) and its
    log-probability. *)

val top_k_worlds : t -> int -> (int array array * float) list
(** The [k] most probable worlds with log-probabilities, best first —
    lazy best-first enumeration over per-block alternative ranks, so cost
    is O(k · blocks · log) rather than the full world count. Fewer than
    [k] results when the database has fewer worlds. Requires [k >= 1]. *)

val sample_world : Prob.Rng.t -> t -> int array array
(** Draw a world from the distribution (truncated mass, if any, is
    re-normalized away within each block). *)

val tuple_prob : t -> Predicate.t -> int -> float
(** [tuple_prob db p i] — probability that block [i]'s chosen tuple
    satisfies [p]. *)

val expected_count : t -> Predicate.t -> float
(** Expected number of tuples satisfying the predicate (linearity of
    expectation across blocks). *)

val prob_exists : t -> Predicate.t -> float
(** Probability that at least one tuple satisfies the predicate:
    1 − Π (1 − pᵢ), by block independence. *)

val pp : Format.formatter -> t -> unit
