let to_csv db =
  let schema = Pdb.schema db in
  let buf = Buffer.create 4096 in
  let field s = Relation.Csv_io.escape_field s in
  Buffer.add_string buf
    (String.concat ","
       ("block"
       :: Array.to_list
            (Array.map
               (fun a -> field (Relation.Attribute.name a))
               (Relation.Schema.attributes schema))
       @ [ "prob" ]));
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i (b : Block.t) ->
      List.iteri
        (fun j (alt : Block.alternative) ->
          let cells =
            Printf.sprintf "t%d.%d" (i + 1) (j + 1)
            :: List.mapi
                 (fun a v ->
                   field
                     (Relation.Attribute.value_label
                        (Relation.Schema.attribute schema a)
                        v))
                 (Array.to_list alt.point)
            @ [ Printf.sprintf "%.6f" alt.prob ]
          in
          Buffer.add_string buf (String.concat "," cells);
          Buffer.add_char buf '\n')
        b.alternatives)
    (Pdb.blocks db);
  Buffer.contents buf

let to_file path db =
  Out_channel.with_open_bin path (fun oc -> output_string oc (to_csv db))

let summary db =
  let blocks = Pdb.blocks db in
  let n = Array.length blocks in
  let alt_counts =
    Array.map (fun b -> Block.alternative_count b) blocks
  in
  let total_alts = Array.fold_left ( + ) 0 alt_counts in
  let max_alts = Array.fold_left max 0 alt_counts in
  let truncated =
    Array.fold_left (fun acc (b : Block.t) -> acc +. b.truncated_mass) 0. blocks
  in
  let expected_size =
    Array.fold_left
      (fun acc (b : Block.t) ->
        acc
        +. List.fold_left
             (fun s (a : Block.alternative) -> s +. a.prob)
             0. b.alternatives)
      0. blocks
  in
  Printf.sprintf
    "%d blocks; %.6g possible worlds; expected size %.2f; alternatives \
     mean %.2f max %d; truncated mass %.4f"
    n (Pdb.possible_worlds db) expected_size
    (if n = 0 then 0. else float_of_int total_alts /. float_of_int n)
    max_alts truncated
