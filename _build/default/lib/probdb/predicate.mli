(** Tuple-level predicates for querying a probabilistic database. *)

type t =
  | True
  | Eq of int * int  (** attribute index = value index *)
  | Neq of int * int
  | In of int * int list  (** attribute value among a set *)
  | And of t * t
  | Or of t * t
  | Not of t

val eval : t -> int array -> bool
(** Evaluate against a complete tuple. *)

val eval_partial : t -> Relation.Tuple.t -> bool option
(** Three-valued evaluation against an incomplete tuple: [Some b] when the
    known values alone decide the predicate (every completion evaluates to
    [b]), [None] when the outcome depends on missing values. Sound and
    complete for missing-value dependence on atoms; conservative (may
    return [None] for tautologies) across connectives. *)

val eq_label : Relation.Schema.t -> string -> string -> t
(** [eq_label schema "age" "30"] — build an equality atom from attribute
    and value labels. Raises [Not_found] on unknown names. *)

val conj : t list -> t
val disj : t list -> t
val pp : Relation.Schema.t -> Format.formatter -> t -> unit
