type t = { schema : Relation.Schema.t; blocks : Block.t array }

let make schema blocks =
  let arity = Relation.Schema.arity schema in
  List.iter
    (fun (b : Block.t) ->
      if Array.length b.source <> arity then
        invalid_arg "Pdb.make: block arity does not match schema";
      List.iter
        (fun (a : Block.alternative) ->
          if Array.length a.point <> arity then
            invalid_arg "Pdb.make: alternative arity does not match schema")
        b.alternatives)
    blocks;
  { schema; blocks = Array.of_list blocks }

let derive ?config ?method_ ?strategy ?min_prob rng model inst =
  let schema = Relation.Instance.schema inst in
  if not (Relation.Schema.equal schema (Mrsl.Model.schema model)) then
    invalid_arg "Pdb.derive: instance schema does not match model schema";
  let incomplete = Array.to_list (Relation.Instance.incomplete_part inst) in
  let sampler = Mrsl.Gibbs.sampler ?method_ model in
  let by_tuple = Relation.Tuple.Table.create 64 in
  if incomplete <> [] then begin
    let result = Mrsl.Workload.run ?config ?strategy rng sampler incomplete in
    List.iter
      (fun (tup, est) -> Relation.Tuple.Table.replace by_tuple tup est)
      result.estimates
  end;
  let blocks =
    List.map
      (fun tup ->
        match Relation.Tuple.to_point tup with
        | Some point -> Block.of_point point
        | None ->
            Block.of_estimate ?min_prob
              (Relation.Tuple.Table.find by_tuple tup))
      (Array.to_list (Relation.Instance.tuples inst))
  in
  make schema blocks

let schema t = t.schema
let blocks t = Array.copy t.blocks
let block_count t = Array.length t.blocks

let possible_worlds t =
  Array.fold_left
    (fun acc b -> acc *. float_of_int (Block.alternative_count b))
    1. t.blocks

let world_log_prob t world =
  if Array.length world <> Array.length t.blocks then
    invalid_arg "Pdb.world_log_prob: one point per block required";
  let acc = ref 0. in
  Array.iteri
    (fun i point ->
      let p = Block.prob_of_point t.blocks.(i) point in
      if p <= 0. then acc := neg_infinity
      else acc := !acc +. log p)
    world;
  !acc

let most_probable_world t =
  let world =
    Array.map (fun b -> Array.copy (Block.top b).Block.point) t.blocks
  in
  (world, world_log_prob t world)

(* Best-first enumeration over per-block alternative ranks (Lawler-style
   k-best): the top world is rank-vector 0; successors bump one block's
   rank. A max-heap keyed by log-probability plus a visited set gives the
   k best without touching the exponential world space. *)
let top_k_worlds t k =
  if k < 1 then invalid_arg "Pdb.top_k_worlds: k must be >= 1";
  let blocks =
    Array.map (fun (b : Block.t) -> Array.of_list b.alternatives) t.blocks
  in
  let n = Array.length blocks in
  let logp_of ranks =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let (a : Block.alternative) = blocks.(i).(ranks.(i)) in
      acc := !acc +. log a.prob
    done;
    !acc
  in
  let world_of ranks =
    Array.init n (fun i -> Array.copy blocks.(i).(ranks.(i)).Block.point)
  in
  if n = 0 then [ ([||], 0.) ]
  else begin
    (* Priority queue on (logp, ranks). A plain list with linear-scan pop
       is fine: the frontier holds at most k·blocks entries for the k
       worlds we extract. *)
    let heap = ref [] in
    let push item = heap := item :: !heap in
    let pop () =
      match !heap with
      | [] -> None
      | first :: rest ->
          let best =
            List.fold_left
              (fun acc item -> if fst item > fst acc then item else acc)
              first rest
          in
          (* Remove one occurrence of the best element. *)
          let removed = ref false in
          heap :=
            List.filter
              (fun item ->
                if (not !removed) && item == best then begin
                  removed := true;
                  false
                end
                else true)
              !heap;
          Some best
    in
    let visited = Hashtbl.create 64 in
    let start = Array.make n 0 in
    Hashtbl.replace visited (Array.to_list start) ();
    push (logp_of start, start);
    let out = ref [] in
    let found = ref 0 in
    let continue = ref true in
    while !continue && !found < k do
      match pop () with
      | None -> continue := false
      | Some (logp, ranks) ->
          out := (world_of ranks, logp) :: !out;
          incr found;
          for i = 0 to n - 1 do
            if ranks.(i) + 1 < Array.length blocks.(i) then begin
              let next = Array.copy ranks in
              next.(i) <- next.(i) + 1;
              let key = Array.to_list next in
              if not (Hashtbl.mem visited key) then begin
                Hashtbl.replace visited key ();
                push (logp_of next, next)
              end
            end
          done
    done;
    List.rev !out
  end

let sample_world rng t =
  Array.map
    (fun (b : Block.t) ->
      let total =
        List.fold_left (fun s (a : Block.alternative) -> s +. a.prob) 0.
          b.alternatives
      in
      let u = Prob.Rng.float rng *. total in
      let rec pick acc = function
        | [ (a : Block.alternative) ] -> Array.copy a.point
        | a :: rest ->
            let acc = acc +. a.Block.prob in
            if u < acc then Array.copy a.Block.point else pick acc rest
        | [] -> assert false
      in
      pick 0. b.alternatives)
    t.blocks

let tuple_prob t pred i =
  if i < 0 || i >= Array.length t.blocks then
    invalid_arg "Pdb.tuple_prob: block index out of range";
  List.fold_left
    (fun acc (a : Block.alternative) ->
      if Predicate.eval pred a.point then acc +. a.prob else acc)
    0.
    t.blocks.(i).alternatives

let expected_count t pred =
  let acc = ref 0. in
  for i = 0 to Array.length t.blocks - 1 do
    acc := !acc +. tuple_prob t pred i
  done;
  !acc

let prob_exists t pred =
  let none = ref 1. in
  for i = 0 to Array.length t.blocks - 1 do
    none := !none *. (1. -. tuple_prob t pred i)
  done;
  1. -. !none

let pp ppf t =
  Format.fprintf ppf "@[<v>probabilistic database: %d blocks, %.3g worlds@,%a@]"
    (block_count t) (possible_worlds t)
    (Format.pp_print_seq ~pp_sep:Format.pp_print_cut (Block.pp t.schema))
    (Array.to_seq t.blocks)
