(** Lazy, query-targeted derivation of a probabilistic database.

    Section VIII of the paper names "partial materialization of probability
    values, as well as lazy, query-targeted learning and inference" as an
    opportunity opened by the MRSL approach. This module implements that
    idea for query answering: instead of running Gibbs inference for every
    incomplete tuple up front ({!Pdb.derive}), a lazy view holds the model
    and the relation, and materializes a tuple's block only when a query's
    outcome on that tuple actually depends on its missing values.

    Two savings compound:
    - tuples whose known values already decide the predicate (three-valued
      evaluation, {!Predicate.eval_partial}) are answered without any
      sampling;
    - blocks that are materialized are cached, so later queries reuse
      them. *)

type t

val create : ?config:Mrsl.Gibbs.config -> ?method_:Mrsl.Voting.method_ ->
  ?min_prob:float -> Prob.Rng.t -> Mrsl.Model.t -> Relation.Instance.t -> t
(** A lazy view over the relation. No inference happens here. Raises
    [Invalid_argument] when the instance schema differs from the
    model's. *)

val tuple_count : t -> int

val materialized_count : t -> int
(** Number of incomplete tuples whose blocks have been inferred so far —
    the "partial materialization" measure. *)

val tuple_prob : t -> Predicate.t -> int -> float
(** Probability that the tuple at the given position satisfies the
    predicate; samples only if the known values leave it undecided. *)

val expected_count : t -> Predicate.t -> float
val prob_exists : t -> Predicate.t -> float

val force : t -> Pdb.t
(** Materialize every remaining block and return the full database. *)
