lib/probdb/export.ml: Array Block Buffer List Out_channel Pdb Printf Relation String
