lib/probdb/pdb.mli: Block Format Mrsl Predicate Prob Relation
