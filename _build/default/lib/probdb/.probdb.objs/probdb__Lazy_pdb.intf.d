lib/probdb/lazy_pdb.mli: Mrsl Pdb Predicate Prob Relation
