lib/probdb/algebra.ml: Array Block Float Hashtbl List Option Pdb Predicate Relation
