lib/probdb/export.mli: Pdb
