lib/probdb/block.mli: Format Mrsl Relation
