lib/probdb/algebra.mli: Pdb Predicate
