lib/probdb/lazy_pdb.ml: Array Block List Mrsl Pdb Predicate Prob Relation
