lib/probdb/block.ml: Array Float Format List Mrsl Printf Prob Relation
