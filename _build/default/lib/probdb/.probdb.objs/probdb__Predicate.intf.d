lib/probdb/predicate.mli: Format Relation
