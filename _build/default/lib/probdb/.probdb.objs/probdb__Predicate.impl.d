lib/probdb/predicate.ml: Array Format Int List Option Relation
