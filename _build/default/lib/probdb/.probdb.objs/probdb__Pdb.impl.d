lib/probdb/pdb.ml: Array Block Format Hashtbl List Mrsl Predicate Prob Relation
