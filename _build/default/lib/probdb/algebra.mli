(** Relational-algebra operators with probabilistic semantics over
    disjoint-independent databases.

    The paper closes by calling query optimization over the derived
    databases "an intriguing problem" (Section VIII). These operators
    cover the safe fragment where block disjointness and cross-block
    independence give closed forms — no possible-world enumeration:

    - selection restricts each block's alternatives (the block then exists
      in a world only with the surviving mass — the standard
      maybe-tuple);
    - projection yields expected multiplicities or existence probabilities
      per projected value vector;
    - grouping aggregates expected counts by an attribute;
    - equi-join across two *independent* databases yields expected join
      cardinality. *)

val select : Predicate.t -> Pdb.t -> Pdb.t
(** Keep, in each block, only the alternatives satisfying the predicate;
    their lost mass becomes the block's absence probability. Blocks with
    no surviving alternative are removed entirely. Expected counts over
    the result equal [Pdb.expected_count] of the conjunction. *)

val project_expected : int list -> Pdb.t -> (int array * float) list
(** [project_expected attrs db] — for every distinct value vector of
    [attrs], the expected number of tuples carrying it (bag-projection
    semantics), descending. The floats sum to the expected database size
    (Σ block masses). *)

val project_exists : int list -> Pdb.t -> (int array * float) list
(** Same keys, with the probability that *at least one* tuple carries the
    value vector (set-projection semantics), by cross-block
    independence. *)

val group_expected_count : by:int -> ?where:Predicate.t -> Pdb.t ->
  (int * float) list
(** Expected number of tuples satisfying [where] (default [True]) per
    value of the grouping attribute, in value order. *)

val expected_join_count : Pdb.t -> Pdb.t -> on:(int * int) list -> float
(** Expected number of pairs (one tuple from each database) agreeing on
    every attribute pair in [on]. Requires the two databases to be
    independent (derived from different relations); raises
    [Invalid_argument] on an empty [on] list or out-of-range indices. *)
